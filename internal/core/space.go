package core

import (
	"math/bits"

	"sjos/internal/cost"
	"sjos/internal/pattern"
	"sjos/internal/plan"
)

// space is the status search space for one (pattern, statistics, cost
// model) triple, shared by all optimization algorithms.
type space struct {
	pat      *pattern.Pattern
	est      *Estimator
	model    cost.Model
	numEdges int
	allEdges uint32  // bit e set for every edge id e (1..n-1)
	scanCost float64 // Σ leaf access cost; paid by every plan

	// Per-node leaf access path, chosen once in newSpace: a value-index
	// probe of the predicate's postings, or a tag scan (+ filter). Leaf
	// cost is paid by every plan, so the choice never changes the join
	// order — but it changes the leaf operators and absolute plan cost.
	leafCost  []float64
	leafProbe []bool

	compMemo map[uint32][]int8  // edge mask -> per-node cluster root
	ubMemo   map[uint32]float64 // edge mask -> ubCost (order-independent)
}

// status is one node of the status graph: which edges are joined and, per
// cluster, which pattern node orders its intermediate result (encoded as a
// bitmask with exactly one set bit per cluster).
type status struct {
	edges     uint32
	orderMask uint32
	cost      float64 // accumulated Cost from the start status
	ub        float64 // ubCost: estimated remaining cost (guides DPP)
	level     int     // number of joined edges
	prev      *status
	via       move
	expanded  bool
	heapIdx   int // position in the DPP priority queue (-1 if absent)
}

// move is one alternative for evaluating an edge from some status
// (Definition 4: (aN, dN, Algo, St, Cost)).
type move struct {
	edge     int       // edge id = descendant endpoint
	algo     plan.Algo // Stack-Tree variant
	sortBy   int       // pattern node the output is re-sorted by, or pattern.NoNode
	joinCost float64
	sortCost float64
}

func (m move) cost() float64 { return m.joinCost + m.sortCost }

// key packs a status identity; two statuses with equal keys are the same
// search state.
func (s *status) key() uint64 {
	return uint64(s.edges) | uint64(s.orderMask)<<MaxPatternNodes
}

// newSpace prepares the search space.
func newSpace(pat *pattern.Pattern, est *Estimator, model cost.Model) *space {
	sp := &space{
		pat:      pat,
		est:      est,
		model:    model,
		numEdges: pat.NumEdges(),
		compMemo: make(map[uint32][]int8),
		ubMemo:   make(map[uint32]float64),
	}
	for e := 1; e < pat.N(); e++ {
		sp.allEdges |= 1 << uint(e)
	}
	// Leaf access-path selection (predicate pushdown). A node without a
	// predicate scans its tag postings. A predicated node compares the full
	// scan-and-filter (every tag posting passes through the index) with a
	// value-index probe that retrieves only the NodeCard(u) matching
	// postings, when the store offers one with identical semantics.
	sp.leafCost = make([]float64, pat.N())
	sp.leafProbe = make([]bool, pat.N())
	for u := 0; u < pat.N(); u++ {
		c := model.IndexAccess(est.ScanCard(u))
		if est.ProbeOK(u) {
			if probe := model.ValueProbe(est.NodeCard(u)); probe < c {
				c = probe
				sp.leafProbe[u] = true
			}
		}
		sp.leafCost[u] = c
		sp.scanCost += c
	}
	return sp
}

// start returns the start status S₀: no edges joined, every singleton
// cluster ordered by its own node, cost = all index accesses.
func (sp *space) start() *status {
	return &status{
		edges:     0,
		orderMask: uint32((uint64(1) << uint(sp.pat.N())) - 1),
		cost:      sp.scanCost,
		level:     0,
		heapIdx:   -1,
	}
}

// components returns, per pattern node, the root (minimum node id) of its
// cluster under the given joined-edge set. Memoised per edge mask.
func (sp *space) components(edges uint32) []int8 {
	if c, ok := sp.compMemo[edges]; ok {
		return c
	}
	n := sp.pat.N()
	comp := make([]int8, n)
	for i := range comp {
		comp[i] = int8(i)
	}
	// Edges point parent -> child with parent < child, so a single pass
	// in increasing child order settles roots.
	for v := 1; v < n; v++ {
		if edges&(1<<uint(v)) != 0 {
			comp[v] = comp[sp.pat.Parent[v]]
		}
	}
	sp.compMemo[edges] = comp
	return comp
}

// clusterMask returns the node bitmask of root's cluster.
func clusterMask(comp []int8, root int8) uint64 {
	var m uint64
	for i, r := range comp {
		if r == root {
			m |= 1 << uint(i)
		}
	}
	return m
}

// orderNode returns the pattern node ordering the cluster with the given
// node mask (the unique set bit of orderMask within the cluster).
func orderNode(orderMask uint32, cluster uint64) int {
	m := uint64(orderMask) & cluster
	return bits.TrailingZeros64(m)
}

// isFinal reports whether all edges are joined.
func (sp *space) isFinal(s *status) bool { return s.edges == sp.allEdges }

// candidate is one possible successor produced by expanding a status.
type candidate struct {
	mv        move
	edges     uint32
	orderMask uint32
	cost      float64 // successor's accumulated cost
}

// moveOpts restricts move generation for the DPAP variants and ablations.
type moveOpts struct {
	leftDeepOnly bool
	// pipelineOnly drops every sort (the sorted output variants and the
	// final OrderBy sort), restricting the space to exactly the
	// fully-pipelined plans of §3.4.
	pipelineOnly bool
}

// expand enumerates every alternative move from s, invoking yield for each
// resulting candidate successor. The enumeration implements §3's move
// model:
//
//   - a move joins one unjoined edge (u,v) and requires cluster(u) ordered
//     by u and cluster(v) ordered by v;
//   - Stack-Tree-Desc orders the merged cluster by v, Stack-Tree-Anc by u;
//   - the move's output may instead be sorted by any other node of the
//     merged cluster at n·log n cost (sorted variants start from the
//     cheaper Desc join);
//   - for the final move, only orderings that matter are generated: the
//     query's OrderBy node if it has one, or the cheapest alternative if
//     not (the paper's "we don't care about the ordering any more").
func (sp *space) expand(s *status, opts moveOpts, yield func(candidate)) {
	comp := sp.components(s.edges)
	for e := 1; e < sp.pat.N(); e++ {
		bit := uint32(1) << uint(e)
		if s.edges&bit != 0 {
			continue
		}
		u, v := sp.pat.Parent[e], e
		if s.orderMask&(1<<uint(u)) == 0 || s.orderMask&bit == 0 {
			continue // inputs not ordered by the join nodes
		}
		mu := clusterMask(comp, comp[u])
		mv := clusterMask(comp, comp[v])
		if opts.leftDeepOnly {
			// §3.3.2: at most one cluster of the resulting status may
			// hold multiple pattern nodes (the growing node). The move
			// merges mu and mv into one multi-node cluster, so every
			// other multi-node cluster must already be one of them.
			multis := popcount(s.edges) // each joined edge grew some cluster
			if bits.OnesCount64(mu) > 1 {
				multis -= bits.OnesCount64(mu) - 1
			}
			if bits.OnesCount64(mv) > 1 {
				multis -= bits.OnesCount64(mv) - 1
			}
			if multis != 0 {
				continue // a multi-node cluster exists outside the inputs
			}
			if bits.OnesCount64(mu) > 1 && bits.OnesCount64(mv) > 1 {
				continue // would merge two composites
			}
		}
		merged := mu | mv
		cardU := sp.est.ClusterCard(mu)
		cardV := sp.est.ClusterCard(mv)
		cardM := sp.est.ClusterCard(merged)
		newEdges := s.edges | bit
		baseOrder := s.orderMask &^ (uint32(1)<<uint(u) | uint32(1)<<uint(v))
		emit := func(mv move, ord int) {
			yield(candidate{
				mv:        mv,
				edges:     newEdges,
				orderMask: baseOrder | uint32(1)<<uint(ord),
				cost:      s.cost + mv.cost(),
			})
		}
		descCost := sp.model.StackTreeDesc(cardU, cardV, cardM)
		ancCost := sp.model.StackTreeAnc(cardU, cardV, cardM)
		sortCost := sp.model.Sort(cardM)

		if newEdges == sp.allEdges {
			// Final move: ordering is only constrained by the query.
			r := sp.pat.OrderBy
			switch {
			case r == pattern.NoNode:
				emit(move{edge: e, algo: plan.AlgoDesc, sortBy: pattern.NoNode, joinCost: descCost}, v)
			case r == v:
				emit(move{edge: e, algo: plan.AlgoDesc, sortBy: pattern.NoNode, joinCost: descCost}, v)
			case r == u:
				emit(move{edge: e, algo: plan.AlgoAnc, sortBy: pattern.NoNode, joinCost: ancCost}, u)
				if !opts.pipelineOnly {
					emit(move{edge: e, algo: plan.AlgoDesc, sortBy: r, joinCost: descCost, sortCost: sortCost}, r)
				}
			default:
				if !opts.pipelineOnly {
					emit(move{edge: e, algo: plan.AlgoDesc, sortBy: r, joinCost: descCost, sortCost: sortCost}, r)
				}
			}
			continue
		}

		// Natural orderings.
		emit(move{edge: e, algo: plan.AlgoDesc, sortBy: pattern.NoNode, joinCost: descCost}, v)
		emit(move{edge: e, algo: plan.AlgoAnc, sortBy: pattern.NoNode, joinCost: ancCost}, u)
		if opts.pipelineOnly {
			continue
		}
		// Sorted variants: re-order the (cheaper) Desc output by any
		// other node of the merged cluster.
		for w := 0; w < sp.pat.N(); w++ {
			if merged&(1<<uint(w)) == 0 || w == v {
				continue
			}
			emit(move{edge: e, algo: plan.AlgoDesc, sortBy: w, joinCost: descCost, sortCost: sortCost}, w)
		}
	}
}

// hasMove reports whether any move is possible from the given state — the
// deadend test of Definition 6, used by DPP's Lookahead Rule. Two facts
// make this a pure bit test: a node is its cluster's order node exactly
// when its orderMask bit is set (the mask holds one bit per cluster), and
// an unjoined edge always connects two distinct clusters (clusters are
// connected sub-trees, so both endpoints in one cluster would mean the edge
// is joined).
func (sp *space) hasMove(edges, orderMask uint32) bool {
	for e := 1; e < sp.pat.N(); e++ {
		bit := uint32(1) << uint(e)
		if edges&bit != 0 {
			continue
		}
		if orderMask&bit != 0 && orderMask&(1<<uint(sp.pat.Parent[e])) != 0 {
			return true
		}
	}
	return false
}

// ubCost estimates the cost still needed to reach a final status from any
// status with the given joined-edge set (§3.2): per unjoined edge, a Desc
// join of the current cluster holding its ancestor endpoint plus —
// pessimistically — a sort of the merged result. The estimate depends only
// on the cluster structure (the edge mask), not on orderings, so it is
// memoised per mask and effectively free. It only influences DPP's
// expansion order, never which plan is finally returned.
func (sp *space) ubCost(edges uint32) float64 {
	if ub, ok := sp.ubMemo[edges]; ok {
		return ub
	}
	comp := sp.components(edges)
	total := 0.0
	for e := 1; e < sp.pat.N(); e++ {
		if edges&(1<<uint(e)) != 0 {
			continue
		}
		u := sp.pat.Parent[e]
		mu := clusterMask(comp, comp[u])
		mv := clusterMask(comp, comp[e])
		cardU := sp.est.ClusterCard(mu)
		cardV := sp.est.ClusterCard(mv)
		cardM := sp.est.ClusterCard(mu | mv)
		// A fully-pipelined completion (Desc joins, no sorts) always
		// exists (Theorem 3.1) and is usually close to the optimal
		// completion, so it makes the sharper priority estimate: DPP
		// reaches its first full plan quickly and the dead-status rule
		// starts pruning early.
		total += sp.model.StackTreeDesc(cardU, cardV, cardM)
	}
	sp.ubMemo[edges] = total
	return total
}

// finalize turns a reached final status into a Result plan tree by
// replaying the move chain from the start status.
func (sp *space) finalize(final *status) *plan.Node {
	// Collect moves from start to final.
	var chain []*status
	for s := final; s.prev != nil; s = s.prev {
		chain = append(chain, s)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}

	n := sp.pat.N()
	comp := make([]int, n)
	plans := make([]*plan.Node, n) // indexed by cluster root
	for i := 0; i < n; i++ {
		comp[i] = i
		leaf := plan.NewIndexScan(i)
		leaf.ValueIndex = sp.leafProbe[i]
		leaf.EstCard = sp.est.NodeCard(i)
		leaf.EstCost = sp.leafCost[i]
		plans[i] = leaf
	}
	find := func(x int) int {
		for comp[x] != x {
			comp[x] = comp[comp[x]]
			x = comp[x]
		}
		return x
	}
	for _, st := range chain {
		mv := st.via
		e := mv.edge
		u, v := sp.pat.Parent[e], e
		ru, rv := find(u), find(v)
		j := plan.NewJoin(plans[ru], plans[rv], u, v, sp.pat.Axis[e], mv.algo)
		maskU, maskV := plans[ru].Columns(), plans[rv].Columns()
		j.EstCard = sp.est.ClusterCard(maskU | maskV)
		j.EstCost = plans[ru].EstCost + plans[rv].EstCost + mv.joinCost
		var top *plan.Node = j
		if mv.sortBy != pattern.NoNode {
			srt := plan.NewSort(j, mv.sortBy)
			srt.EstCard = j.EstCard
			srt.EstCost = j.EstCost + mv.sortCost
			top = srt
		}
		// Union: smaller root wins so roots stay minimal node ids.
		root := ru
		if rv < root {
			root = rv
		}
		comp[ru], comp[rv] = root, root
		plans[root] = top
	}
	return plans[find(0)]
}

// Counters reports how much work a search did; the paper's Table 2 compares
// algorithms by these numbers.
type Counters struct {
	// PlansConsidered counts every alternative (sub-)plan costed during
	// the search — each candidate move evaluated.
	PlansConsidered int
	// StatusesGenerated counts successor statuses materialised.
	StatusesGenerated int
	// StatusesExpanded counts statuses whose moves were enumerated.
	StatusesExpanded int
}

// Result is an optimization outcome.
type Result struct {
	// Plan is the chosen physical plan.
	Plan *plan.Node
	// Cost is the plan's estimated cost (including index accesses and,
	// when the query specifies an order, any final sort).
	Cost float64
	// Algorithm names the optimizer that produced the result.
	Algorithm string
	// Counters reports the search effort.
	Counters Counters
}
