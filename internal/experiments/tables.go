package experiments

import (
	"context"
	"fmt"
	"time"

	"sjos"
)

// Cell is one (optimization time, evaluation time) measurement of Table 1.
type Cell struct {
	Opt     time.Duration
	Eval    time.Duration
	EstCost float64
	Matches int
}

// Table1Row holds one query's measurements across all algorithms plus the
// bad-plan baseline.
type Table1Row struct {
	Query   Query
	Cells   map[string]Cell // keyed by method name
	BadEval time.Duration
	BadEst  float64
}

// RunQuery measures one (query, method) cell: optimization time and the
// chosen plan's execution time.
func RunQuery(db *sjos.Database, q Query, m sjos.Method) (Cell, error) {
	pat, err := sjos.ParsePattern(q.Source)
	if err != nil {
		return Cell{}, fmt.Errorf("%s: %w", q.ID, err)
	}
	var res *sjos.OptimizeResult
	opt, err := timeIt(optRepeat, func() error {
		var e error
		res, e = db.Optimize(pat, m, 0)
		return e
	})
	if err != nil {
		return Cell{}, fmt.Errorf("%s %v: %w", q.ID, m, err)
	}
	var n int
	eval, err := timeIt(evalRepeat, func() error {
		r, e := db.Run(context.Background(), pat, res.Plan, sjos.RunOptions{CountOnly: true})
		if e == nil {
			n = r.Count
		}
		return e
	})
	if err != nil {
		return Cell{}, fmt.Errorf("%s %v execute: %w", q.ID, m, err)
	}
	return Cell{Opt: opt, Eval: eval, EstCost: res.Cost, Matches: n}, nil
}

// RunBadPlan measures the bad-plan baseline for a query.
func RunBadPlan(db *sjos.Database, q Query) (time.Duration, float64, error) {
	pat, err := sjos.ParsePattern(q.Source)
	if err != nil {
		return 0, 0, err
	}
	bad, err := db.BadPlan(pat, BadPlanSamples, badPlanSeed)
	if err != nil {
		return 0, 0, err
	}
	// Single shot: bad plans run 10-100× longer than good ones, so
	// scheduler noise is irrelevant and repetition would dominate the
	// whole table's wall time at large folds.
	eval, err := timeIt(1, func() error {
		_, e := db.Run(context.Background(), pat, bad.Plan, sjos.RunOptions{CountOnly: true})
		return e
	})
	return eval, bad.Cost, err
}

// Table1 regenerates the paper's Table 1: for every query, optimization and
// evaluation time under each algorithm, plus the bad-plan evaluation time.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, q := range Queries() {
		db, err := Dataset(q.Dataset, 1)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Query: q, Cells: map[string]Cell{}}
		var matches = -1
		for _, m := range Methods() {
			cell, err := RunQuery(db, q, m)
			if err != nil {
				return nil, err
			}
			if matches == -1 {
				matches = cell.Matches
			} else if cell.Matches != matches {
				return nil, fmt.Errorf("%s: %v found %d matches, others %d",
					q.ID, m, cell.Matches, matches)
			}
			row.Cells[m.String()] = cell
		}
		row.BadEval, row.BadEst, err = RunBadPlan(db, q)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2Col is one algorithm's search effort on Q.Pers.3.d.
type Table2Col struct {
	Method          string
	Opt             time.Duration
	PlansConsidered int
}

// Table2 regenerates the paper's Table 2 (optimization time and number of
// alternative plans considered) for the given query id; the paper reports
// Q.Pers.3.d.
func Table2(queryID string) ([]Table2Col, error) {
	q, err := QueryByID(queryID)
	if err != nil {
		return nil, err
	}
	db, err := Dataset(q.Dataset, 1)
	if err != nil {
		return nil, err
	}
	pat, err := sjos.ParsePattern(q.Source)
	if err != nil {
		return nil, err
	}
	var cols []Table2Col
	for _, m := range MethodsTable2() {
		var res *sjos.OptimizeResult
		opt, err := timeIt(optRepeat, func() error {
			var e error
			res, e = db.Optimize(pat, m, 0)
			return e
		})
		if err != nil {
			return nil, err
		}
		cols = append(cols, Table2Col{
			Method:          m.String(),
			Opt:             opt,
			PlansConsidered: res.Counters.PlansConsidered,
		})
	}
	return cols, nil
}

// Table3Row is one algorithm's plan execution time across folding factors.
type Table3Row struct {
	Method string
	Eval   map[int]time.Duration // folding factor -> execution time
}

// Table3 regenerates the paper's Table 3: the execution time of each
// algorithm's chosen plan for Q.Pers.3.d as the data set is folded. The
// paper uses folds ×1, ×10, ×100 and ×500.
func Table3(folds []int) ([]Table3Row, error) {
	return table3(folds, 0, false)
}

// Table3Parallel is Table 3 with every plan executed partition-parallel
// with k workers (k <= 0 = GOMAXPROCS), for serial-vs-parallel comparisons
// on the same plans and data.
func Table3Parallel(folds []int, k int) ([]Table3Row, error) {
	if k <= 0 {
		k = -1 // force WithParallelism's GOMAXPROCS default
	}
	return table3(folds, k, false)
}

// Table3NoBatch is Table 3 executed tuple-at-a-time (the pre-batching
// executor) — xqbench's -nobatch escape hatch.
func Table3NoBatch(folds []int) ([]Table3Row, error) {
	return table3(folds, 0, true)
}

// table3 is the shared driver; parallel != 0 routes execution through
// db.WithParallelism, noBatch disables the batched execution path.
func table3(folds []int, parallel int, noBatch bool) ([]Table3Row, error) {
	q, err := QueryByID(PersQuery3)
	if err != nil {
		return nil, err
	}
	pat, err := sjos.ParsePattern(q.Source)
	if err != nil {
		return nil, err
	}
	rows := make([]Table3Row, 0, len(Methods())+1)
	for _, m := range Methods() {
		rows = append(rows, Table3Row{Method: m.String(), Eval: map[int]time.Duration{}})
	}
	bad := Table3Row{Method: "bad plan", Eval: map[int]time.Duration{}}
	for _, fold := range folds {
		db, err := Dataset(q.Dataset, fold)
		if err != nil {
			return nil, err
		}
		if parallel != 0 {
			db = db.WithParallelism(parallel)
		}
		for i, m := range Methods() {
			// Optimize on the folded data (statistics change with
			// fold, which is exactly the paper's point: larger data
			// flips the optimal plan from left-deep to bushy).
			res, err := db.Optimize(pat, m, 0)
			if err != nil {
				return nil, err
			}
			eval, err := timeIt(evalRepeat, func() error {
				_, e := db.Run(context.Background(), pat, res.Plan,
					sjos.RunOptions{ExecOptions: sjos.ExecOptions{NoBatch: noBatch}, CountOnly: true})
				return e
			})
			if err != nil {
				return nil, err
			}
			rows[i].Eval[fold] = eval
		}
		evalBad, _, err := RunBadPlan(db, q)
		if err != nil {
			return nil, err
		}
		bad.Eval[fold] = evalBad
	}
	return append(rows, bad), nil
}
