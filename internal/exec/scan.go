package exec

import (
	"fmt"

	"sjos/internal/histogram"
	"sjos/internal/pattern"
	"sjos/internal/storage"
)

// IndexScan retrieves all candidates for one pattern node through the
// element-tag index, in document order, applying the node's value predicate
// (if any) on the fly. It is the paper's "index access" leaf with cost
// f_I · n.
type IndexScan struct {
	node   int // pattern node fed by this scan
	tag    string
	op     pattern.CmpOp
	value  string
	schema *Schema

	ctx  *Context
	scan *storage.TagScanner
	done bool
}

// NewIndexScan builds a scan for pattern node u of pat.
func NewIndexScan(pat *pattern.Pattern, u int) *IndexScan {
	nd := pat.Nodes[u]
	return &IndexScan{
		node:   u,
		tag:    nd.Tag,
		op:     nd.Op,
		value:  nd.Value,
		schema: NewSchema(u),
	}
}

// Schema implements Operator.
func (s *IndexScan) Schema() *Schema { return s.schema }

// Open implements Operator.
func (s *IndexScan) Open(ctx *Context) error {
	s.ctx = ctx
	tag, ok := ctx.Doc.LookupTag(s.tag)
	if !ok {
		s.done = true // unknown tag: empty candidate stream
		return nil
	}
	if r := ctx.Range; r != nil {
		s.scan = ctx.Store.ScanTagRange(tag, r.Lo, r.Hi)
	} else {
		s.scan = ctx.Store.ScanTag(tag)
	}
	return nil
}

// Next implements Operator.
func (s *IndexScan) Next() (Tuple, bool, error) {
	if s.done {
		return nil, false, nil
	}
	for {
		id, _, ok, err := s.scan.Next()
		if err != nil {
			return nil, false, fmt.Errorf("exec: index scan of %q: %w", s.tag, err)
		}
		if !ok {
			s.done = true
			return nil, false, nil
		}
		s.ctx.Stats.ScannedTuples++
		// Poll for cancellation on long scans (every 4096 rows) so a
		// cancelled parallel query stops even inside a selective scan
		// that produces no output for the driver's drain loop to observe.
		if s.ctx.Interrupt != nil && s.ctx.Stats.ScannedTuples&0xfff == 0 {
			if err := s.ctx.Interrupt(); err != nil {
				return nil, false, err
			}
		}
		if s.op != pattern.CmpNone &&
			!histogram.EvalPredicate(s.ctx.Doc.Value(id), s.op, s.value) {
			continue
		}
		return Tuple{id}, true, nil
	}
}

// Close implements Operator.
func (s *IndexScan) Close() error { return nil }
