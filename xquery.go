package sjos

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sjos/internal/xquery"
)

// XQueryResult is the outcome of an XQuery-subset evaluation.
type XQueryResult struct {
	// Rows holds one row per distinct binding of the query's variables
	// and return paths; row slots follow the RETURN clause order.
	Rows [][]NodeID
	// Pattern is the tree pattern the query compiled to.
	Pattern *Pattern
	// Vars maps variable names to pattern nodes.
	Vars map[string]int
	// ReturnNodes lists the pattern nodes projected per row slot.
	ReturnNodes []int
	// PlanText, OptimizeTime and ExecuteTime describe the underlying
	// pattern-match evaluation.
	PlanText     string
	OptimizeTime time.Duration
	ExecuteTime  time.Duration
}

// XQuery compiles a FLWOR-subset query (see internal/xquery's docs; the
// paper's §2.1 translation), optimizes the resulting pattern with method m
// and evaluates it. FLWOR semantics: WHERE branches are existential, so
// rows are deduplicated over the bindings of the FOR variables and RETURN
// paths.
//
//	rows, err := db.XQuery(`
//	    for $m in //manager, $e in $m//employee
//	    where $e/salary >= 50000
//	    return $m/name, $e/name`, sjos.MethodDPP)
func (db *Database) XQuery(src string, m Method) (*XQueryResult, error) {
	return db.XQueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: m}})
}

// XQueryContext is XQuery under a context and explicit query options:
// cancelling ctx aborts the optimization or execution of the compiled
// pattern, and the plan cache serves recurring query shapes (unless
// opts.NoCache). opts.Limit caps the underlying pattern matches, not the
// deduplicated rows.
func (db *Database) XQueryContext(ctx context.Context, src string, opts QueryOptions) (*XQueryResult, error) {
	c, err := xquery.Compile(src)
	if err != nil {
		return nil, err
	}
	qr, err := db.QueryPatternContext(ctx, c.Pattern, opts)
	if err != nil {
		return nil, fmt.Errorf("sjos: evaluating compiled xquery pattern: %w", err)
	}
	// Projection slots: the FOR variables (for dedup identity) followed
	// by the RETURN nodes; only RETURN slots are exposed per row. The
	// variable nodes are sorted into pattern-node order so the dedup key
	// is canonical rather than dependent on Go's randomised map iteration
	// order.
	keyNodes := make([]int, 0, len(c.Vars))
	for _, v := range c.Vars {
		keyNodes = append(keyNodes, v)
	}
	sort.Ints(keyNodes)
	seen := make(map[string]bool, len(qr.Matches))
	res := &XQueryResult{
		Pattern:      c.Pattern,
		Vars:         c.Vars,
		ReturnNodes:  c.Return,
		PlanText:     qr.PlanText,
		OptimizeTime: qr.OptimizeTime,
		ExecuteTime:  qr.ExecuteTime,
	}
	keyBuf := make([]byte, 0, 64)
	for _, match := range qr.Matches {
		keyBuf = keyBuf[:0]
		for _, u := range keyNodes {
			keyBuf = fmt.Appendf(keyBuf, "%d,", match[u])
		}
		for _, u := range c.Return {
			keyBuf = fmt.Appendf(keyBuf, "%d,", match[u])
		}
		k := string(keyBuf)
		if seen[k] {
			continue
		}
		seen[k] = true
		row := make([]NodeID, len(c.Return))
		for i, u := range c.Return {
			row[i] = match[u]
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
