// Benchmarks regenerating the paper's evaluation (§4): one benchmark per
// table and figure. Run them all with
//
//	go test -bench=. -benchmem
//
// Mapping (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured comparison):
//
//	BenchmarkTable1Optimize / BenchmarkTable1Execute  — Table 1
//	BenchmarkTable1BadPlan                            — Table 1 "Bad Plan"
//	BenchmarkTable2SearchEffort                       — Table 2
//	BenchmarkTable3Folding                            — Table 3
//	BenchmarkFigure7TeSweep / BenchmarkFigure8TeSweep — Figures 7 and 8
//	BenchmarkAblation*                                — ablations (DESIGN.md A1-A3)
package sjos_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"sjos"
	"sjos/internal/experiments"
)

// mustDataset returns the cached benchmark data set.
func mustDataset(b *testing.B, name string, fold int) *sjos.Database {
	b.Helper()
	db, err := experiments.Dataset(name, fold)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func mustPattern(b *testing.B, q experiments.Query) *sjos.Pattern {
	b.Helper()
	pat, err := sjos.ParsePattern(q.Source)
	if err != nil {
		b.Fatal(err)
	}
	return pat
}

// BenchmarkTable1Optimize measures the optimization-time columns of
// Table 1: every query × algorithm.
func BenchmarkTable1Optimize(b *testing.B) {
	for _, q := range experiments.Queries() {
		db := mustDataset(b, q.Dataset, 1)
		pat := mustPattern(b, q)
		for _, m := range experiments.Methods() {
			b.Run(q.ID+"/"+m.String(), func(b *testing.B) {
				var plans int
				for i := 0; i < b.N; i++ {
					res, err := db.Optimize(pat, m, 0)
					if err != nil {
						b.Fatal(err)
					}
					plans = res.Counters.PlansConsidered
				}
				b.ReportMetric(float64(plans), "plans")
			})
		}
	}
}

// BenchmarkTable1Execute measures the plan-evaluation columns of Table 1:
// the chosen plan of every query × algorithm, executed to completion.
func BenchmarkTable1Execute(b *testing.B) {
	for _, q := range experiments.Queries() {
		db := mustDataset(b, q.Dataset, 1)
		pat := mustPattern(b, q)
		for _, m := range experiments.Methods() {
			res, err := db.Optimize(pat, m, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(q.ID+"/"+m.String(), func(b *testing.B) {
				var n int
				for i := 0; i < b.N; i++ {
					var err error
					n, _, err = execCount(db, pat, res.Plan)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n), "matches")
			})
		}
	}
}

// BenchmarkTable1BadPlan measures the "Bad Plan" column: the worst of a
// random plan sample, executed.
func BenchmarkTable1BadPlan(b *testing.B) {
	for _, q := range experiments.Queries() {
		db := mustDataset(b, q.Dataset, 1)
		pat := mustPattern(b, q)
		bad, err := db.BadPlan(pat, experiments.BadPlanSamples, 20030301)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := execCount(db, pat, bad.Plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2SearchEffort measures Table 2: optimization time and the
// number of alternative plans considered on Q.Pers.3.d, for all six
// algorithm variants including DPP′.
func BenchmarkTable2SearchEffort(b *testing.B) {
	q, err := experiments.QueryByID(experiments.PersQuery3)
	if err != nil {
		b.Fatal(err)
	}
	db := mustDataset(b, q.Dataset, 1)
	pat := mustPattern(b, q)
	for _, m := range experiments.MethodsTable2() {
		b.Run(m.String(), func(b *testing.B) {
			var plans int
			for i := 0; i < b.N; i++ {
				res, err := db.Optimize(pat, m, 0)
				if err != nil {
					b.Fatal(err)
				}
				plans = res.Counters.PlansConsidered
			}
			b.ReportMetric(float64(plans), "plans")
		})
	}
}

// BenchmarkTable3Folding measures Table 3: the execution time of each
// algorithm's chosen plan as the Pers data set is folded ×1/×10/×100.
// (The paper's ×500 point works via `xqbench -table 3 -full`; it is left
// out here to keep default benchmark runs minutes, not hours.)
func BenchmarkTable3Folding(b *testing.B) {
	q, err := experiments.QueryByID(experiments.PersQuery3)
	if err != nil {
		b.Fatal(err)
	}
	pat := mustPattern(b, q)
	for _, fold := range []int{1, 10, 100} {
		db := mustDataset(b, q.Dataset, fold)
		for _, m := range append(experiments.Methods(), -1) {
			var plan *sjos.Plan
			label := "bad"
			if m >= 0 {
				label = m.String()
				res, err := db.Optimize(pat, m, 0)
				if err != nil {
					b.Fatal(err)
				}
				plan = res.Plan
			} else {
				res, err := db.BadPlan(pat, experiments.BadPlanSamples, 20030301)
				if err != nil {
					b.Fatal(err)
				}
				plan = res.Plan
			}
			b.Run(fmt.Sprintf("x%d/%s", fold, label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := execCount(db, pat, plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchTeSweep is the shared driver of Figures 7 and 8: total query
// evaluation time (optimize + execute) of DPAP-EB as Te grows, plus the
// reference algorithms.
func benchTeSweep(b *testing.B, fold int) {
	q, err := experiments.QueryByID(experiments.PersQuery3)
	if err != nil {
		b.Fatal(err)
	}
	db := mustDataset(b, q.Dataset, fold)
	pat := mustPattern(b, q)
	total := func(b *testing.B, m sjos.Method, te int) {
		for i := 0; i < b.N; i++ {
			res, err := db.Optimize(pat, m, te)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := execCount(db, pat, res.Plan); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, m := range []sjos.Method{sjos.MethodDP, sjos.MethodDPP} {
		b.Run(m.String(), func(b *testing.B) { total(b, m, 0) })
	}
	for te := 1; te <= pat.N(); te++ {
		b.Run(fmt.Sprintf("DPAP-EB(%d)", te), func(b *testing.B) { total(b, sjos.MethodDPAPEB, te) })
	}
	for _, m := range []sjos.Method{sjos.MethodDPAPLD, sjos.MethodFP} {
		b.Run(m.String(), func(b *testing.B) { total(b, m, 0) })
	}
}

// BenchmarkFigure7TeSweep is Figure 7: the Te sweep at folding factor 100,
// where execution dominates and a large Te (or simply DPP) wins.
func BenchmarkFigure7TeSweep(b *testing.B) { benchTeSweep(b, 100) }

// BenchmarkFigure8TeSweep is Figure 8: the same sweep at folding factor 1,
// where optimization time is comparable to execution and FP wins overall.
func BenchmarkFigure8TeSweep(b *testing.B) { benchTeSweep(b, 1) }

// BenchmarkAblationLookahead isolates the Lookahead Rule (DESIGN.md A1):
// DPP vs DPP′ optimization time across all eight queries.
func BenchmarkAblationLookahead(b *testing.B) {
	for _, q := range experiments.Queries() {
		db := mustDataset(b, q.Dataset, 1)
		pat := mustPattern(b, q)
		for _, m := range []sjos.Method{sjos.MethodDPP, sjos.MethodDPPNoLookahead} {
			b.Run(q.ID+"/"+m.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := db.Optimize(pat, m, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTimeToFirstResults measures the paper's §3.4 motivation for FP:
// the latency to the first 10 result tuples for the fully-pipelined plan vs
// a blocking (sort-containing) plan, on the folded Pers data where the full
// result is expensive. Pipelined plans stream immediately; blocking plans
// must complete their sorts before the first tuple appears.
func BenchmarkTimeToFirstResults(b *testing.B) {
	q, err := experiments.QueryByID(experiments.PersQuery3)
	if err != nil {
		b.Fatal(err)
	}
	db := mustDataset(b, q.Dataset, 10)
	pat := mustPattern(b, q)
	fp, err := db.Optimize(pat, sjos.MethodFP, 0)
	if err != nil {
		b.Fatal(err)
	}
	// The cheapest sort-containing plan from a random sample stands in
	// for "a reasonable blocking plan".
	var blocking *sjos.Plan
	var blockingCost float64
	for seed := int64(0); seed < 40; seed++ {
		r, err := db.BadPlan(pat, 1, seed)
		if err != nil {
			b.Fatal(err)
		}
		if r.Plan.Sorts() > 0 && (blocking == nil || r.Cost < blockingCost) {
			blocking, blockingCost = r.Plan, r.Cost
		}
	}
	if blocking == nil {
		b.Skip("no blocking plan sampled")
	}
	for _, v := range []struct {
		label string
		plan  *sjos.Plan
	}{{"pipelined", fp.Plan}, {"blocking", blocking}} {
		b.Run(v.label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms, _, err := execLimit(db, pat, v.plan, 10)
				if err != nil {
					b.Fatal(err)
				}
				if len(ms) != 10 {
					b.Fatalf("got %d tuples", len(ms))
				}
			}
		})
	}
}

// BenchmarkAblationEstimator isolates estimation error (DESIGN.md A2): it
// executes the plan the optimizer picks under positional-histogram
// statistics vs the plan picked under exact (oracle) statistics.
func BenchmarkAblationEstimator(b *testing.B) {
	for _, q := range experiments.Queries() {
		db := mustDataset(b, q.Dataset, 1)
		pat := mustPattern(b, q)
		hist, err := db.Optimize(pat, sjos.MethodDPP, 0)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := db.OptimizeWithExactStats(pat, sjos.MethodDPP, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range []struct {
			label string
			plan  *sjos.Plan
		}{{"histogram", hist.Plan}, {"oracle", oracle.Plan}} {
			b.Run(q.ID+"/"+v.label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := execCount(db, pat, v.plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationTwigStack compares the best structural-join plan against
// the holistic TwigStack evaluation (DESIGN.md A3) on every query, with the
// plan run both serial and partition-parallel.
func BenchmarkAblationTwigStack(b *testing.B) {
	for _, q := range experiments.Queries() {
		db := mustDataset(b, q.Dataset, 1)
		pat := mustPattern(b, q)
		res, err := db.Optimize(pat, sjos.MethodDPP, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(q.ID+"/plan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := execCount(db, pat, res.Plan); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.ID+"/plan-parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := execParallelCount(db, pat, res.Plan, runtime.GOMAXPROCS(0)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.ID+"/twigstack", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.TwigStack(pat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelExecute measures partition-parallel execution of the
// DPP plan for Q.Pers.3.d on the ×100 folded Pers data set: serial
// baseline, then 1/2/4/8 workers. K=1 isolates the driver's overhead
// (single-partition fast path: it should stay within a few percent of
// serial); higher K shows the speedup on multi-core machines — on a
// single-CPU machine all worker counts collapse to roughly serial time.
func BenchmarkParallelExecute(b *testing.B) {
	q, err := experiments.QueryByID(experiments.PersQuery3)
	if err != nil {
		b.Fatal(err)
	}
	db := mustDataset(b, q.Dataset, 100)
	pat := mustPattern(b, q)
	res, err := db.Optimize(pat, sjos.MethodDPP, 0)
	if err != nil {
		b.Fatal(err)
	}
	want, _, err := execCount(db, pat, res.Plan)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := execCount(db, pat, res.Plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n, _, err := execParallelCount(db, pat, res.Plan, k)
				if err != nil {
					b.Fatal(err)
				}
				if n != want {
					b.Fatalf("parallel count %d, serial %d", n, want)
				}
			}
		})
	}
}

// BenchmarkPlanCacheColdOptimize measures the optimize phase of the
// representative query with the plan cache bypassed — every iteration runs
// a full optimizer search.
func BenchmarkPlanCacheColdOptimize(b *testing.B) {
	q, err := experiments.QueryByID(experiments.PersQuery3)
	if err != nil {
		b.Fatal(err)
	}
	db := mustDataset(b, q.Dataset, 1)
	var opt time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.QueryContext(context.Background(), q.Source,
			sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: sjos.MethodDPP, NoCache: true, Limit: 1}})
		if err != nil {
			b.Fatal(err)
		}
		opt += res.OptimizeTime
	}
	b.ReportMetric(float64(opt.Nanoseconds())/float64(b.N), "optimize-ns/op")
}

// BenchmarkPlanCacheWarmOptimize is the cached counterpart: after one
// priming run, every iteration's plan comes from the cache. Comparing
// optimize-ns/op against BenchmarkPlanCacheColdOptimize measures the
// cache's speedup (EXPERIMENTS.md records the ratio).
func BenchmarkPlanCacheWarmOptimize(b *testing.B) {
	q, err := experiments.QueryByID(experiments.PersQuery3)
	if err != nil {
		b.Fatal(err)
	}
	db := mustDataset(b, q.Dataset, 1)
	if _, err := db.QueryContext(context.Background(), q.Source,
		sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: sjos.MethodDPP, Limit: 1}}); err != nil {
		b.Fatal(err)
	}
	var opt time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.QueryContext(context.Background(), q.Source,
			sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: sjos.MethodDPP, Limit: 1}})
		if err != nil {
			b.Fatal(err)
		}
		if !res.CachedPlan {
			b.Fatal("warm iteration missed the plan cache")
		}
		opt += res.OptimizeTime
	}
	b.ReportMetric(float64(opt.Nanoseconds())/float64(b.N), "optimize-ns/op")
}

// BenchmarkBatchExecute measures the batched (vectorized) executor against
// the tuple-at-a-time executor on the Table-3 workload (Q.Pers.3.d,
// CountOnly) across folding factors — the acceptance benchmark for the
// batch execution path (target: >= 1.5x at fold 100).
func BenchmarkBatchExecute(b *testing.B) {
	q, err := experiments.QueryByID(experiments.PersQuery3)
	if err != nil {
		b.Fatal(err)
	}
	pat := mustPattern(b, q)
	for _, fold := range []int{1, 10, 100} {
		db := mustDataset(b, q.Dataset, fold)
		res, err := db.Optimize(pat, sjos.MethodDPP, 0)
		if err != nil {
			b.Fatal(err)
		}
		want, err := db.Run(context.Background(), pat, res.Plan, sjos.RunOptions{CountOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, lane := range []struct {
			name    string
			noBatch bool
		}{{"batched", false}, {"tuple", true}} {
			b.Run(fmt.Sprintf("fold=%d/%s", fold, lane.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := db.Run(context.Background(), pat, res.Plan,
						sjos.RunOptions{ExecOptions: sjos.ExecOptions{NoBatch: lane.noBatch}, CountOnly: true})
					if err != nil {
						b.Fatal(err)
					}
					if r.Count != want.Count {
						b.Fatalf("%s counted %d, want %d", lane.name, r.Count, want.Count)
					}
				}
			})
		}
	}
}

// BenchmarkBatchExecuteMaterialize is BenchmarkBatchExecute with match
// materialisation (the Drain path, exercising the output arena) at the
// largest fold.
func BenchmarkBatchExecuteMaterialize(b *testing.B) {
	q, err := experiments.QueryByID(experiments.PersQuery3)
	if err != nil {
		b.Fatal(err)
	}
	pat := mustPattern(b, q)
	db := mustDataset(b, q.Dataset, 100)
	res, err := db.Optimize(pat, sjos.MethodDPP, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, lane := range []struct {
		name    string
		noBatch bool
	}{{"batched", false}, {"tuple", true}} {
		b.Run(lane.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Run(context.Background(), pat, res.Plan,
					sjos.RunOptions{ExecOptions: sjos.ExecOptions{NoBatch: lane.noBatch}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkContentIndex measures value-index predicate pushdown against
// the scan+filter escape hatch on selective-predicate queries over the
// DBLP data set (the -contentbench workload). Each lane executes its own
// optimizer-chosen plan (ValueIndexScan vs IndexScan leaves) count-only,
// isolating the access-path difference from match materialisation. The
// probe lane should win by >=1.5x; results feed BENCH_content.json.
func BenchmarkContentIndex(b *testing.B) {
	queries := []struct {
		name string
		src  string
	}{
		{"range-year", `//article[year < 1975]/title`},
		{"eq-booktitle", `//inproceedings[booktitle = "conf-7"]/author`},
	}
	for _, q := range queries {
		pat, err := sjos.ParsePattern(q.src)
		if err != nil {
			b.Fatal(err)
		}
		for _, fold := range []int{1, 10} {
			db := mustDataset(b, "dblp", fold)
			want := -1
			for _, lane := range []struct {
				name   string
				noVidx bool
			}{{"probe", false}, {"scan", true}} {
				res, err := db.QueryPatternContext(context.Background(), pat,
					sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: sjos.MethodDPP, NoValueIndex: lane.noVidx, NoCache: true}})
				if err != nil {
					b.Fatal(err)
				}
				if want == -1 {
					want = len(res.Matches)
				} else if len(res.Matches) != want {
					b.Fatalf("%s found %d matches, want %d", lane.name, len(res.Matches), want)
				}
				if probes := res.Exec.ValueProbes; (probes > 0) == lane.noVidx {
					b.Fatalf("%s lane ran %d value probes", lane.name, probes)
				}
				b.Run(fmt.Sprintf("%s/fold=%d/%s", q.name, fold, lane.name), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						r, err := db.Run(context.Background(), pat, res.Plan,
							sjos.RunOptions{CountOnly: true})
						if err != nil {
							b.Fatal(err)
						}
						if r.Count != want {
							b.Fatalf("%s counted %d, want %d", lane.name, r.Count, want)
						}
					}
				})
			}
		}
	}
}
