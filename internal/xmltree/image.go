package xmltree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"sjos/internal/intern"
)

// Binary document images: a versioned serialisation of a Document used for
// database save/load. Unlike XML text round-trips, images preserve the
// exact region encoding and load without any parsing work (fixed-width
// records straight into the column arrays).
//
// Layout (all integers little-endian):
//
//	magic "SJDOC1\n\x00" (8 bytes)
//	numNodes uint32, numTags uint32
//	tag dictionary: per tag, uvarint length + bytes
//	per node: start, end uint32; level uint16; tag uint32; parent uint32
//	values: per node, uvarint length + bytes
const imageMagic = "SJDOC1\n\x00"

// WriteImage serialises the document to w.
func WriteImage(d *Document, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(imageMagic); err != nil {
		return err
	}
	var u32 [4]byte
	writeU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		bw.Write(u32[:])
	}
	writeU32(uint32(d.NumNodes()))
	writeU32(uint32(d.NumTags()))
	var varint [binary.MaxVarintLen64]byte
	writeBytes := func(s string) {
		n := binary.PutUvarint(varint[:], uint64(len(s)))
		bw.Write(varint[:n])
		bw.WriteString(s)
	}
	for t := 0; t < d.NumTags(); t++ {
		writeBytes(d.TagName(TagID(t)))
	}
	var u16 [2]byte
	for i := 0; i < d.NumNodes(); i++ {
		id := NodeID(i)
		writeU32(uint32(d.Start(id)))
		writeU32(uint32(d.End(id)))
		binary.LittleEndian.PutUint16(u16[:], d.Level(id))
		bw.Write(u16[:])
		writeU32(uint32(d.Tag(id)))
		writeU32(uint32(d.Parent(id)))
	}
	for i := 0; i < d.NumNodes(); i++ {
		writeBytes(d.Value(NodeID(i)))
	}
	return bw.Flush()
}

// ReadImage deserialises a document image written by WriteImage. The
// result is validated before being returned.
func ReadImage(r io.Reader) (*Document, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("xmltree: image header: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("xmltree: not a document image (bad magic %q)", magic)
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	numNodes, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("xmltree: image: %w", err)
	}
	numTags, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("xmltree: image: %w", err)
	}
	const sanityMax = 1 << 30
	if numNodes == 0 || numNodes > sanityMax || numTags == 0 || numTags > numNodes {
		return nil, fmt.Errorf("xmltree: image: implausible sizes (%d nodes, %d tags)", numNodes, numTags)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > sanityMax {
			return "", fmt.Errorf("implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}

	d := &Document{
		start:   make([]Pos, numNodes),
		end:     make([]Pos, numNodes),
		level:   make([]uint16, numNodes),
		tag:     make([]TagID, numNodes),
		parent:  make([]NodeID, numNodes),
		value:   make([]string, numNodes),
		tags:    make([]string, numTags),
		tagByNm: make(map[string]TagID, numTags),
		byTag:   make([][]NodeID, numTags),
	}
	for t := range d.tags {
		s, err := readString()
		if err != nil {
			return nil, fmt.Errorf("xmltree: image tag %d: %w", t, err)
		}
		if _, dup := d.tagByNm[s]; dup {
			return nil, fmt.Errorf("xmltree: image: duplicate tag %q", s)
		}
		d.tags[t] = s
		d.tagByNm[s] = TagID(t)
	}
	var u16 [2]byte
	for i := range d.start {
		s, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("xmltree: image node %d: %w", i, err)
		}
		e, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("xmltree: image node %d: %w", i, err)
		}
		if _, err := io.ReadFull(br, u16[:]); err != nil {
			return nil, fmt.Errorf("xmltree: image node %d: %w", i, err)
		}
		tg, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("xmltree: image node %d: %w", i, err)
		}
		if tg >= numTags {
			return nil, fmt.Errorf("xmltree: image node %d: tag %d out of range", i, tg)
		}
		par, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("xmltree: image node %d: %w", i, err)
		}
		d.start[i] = Pos(s)
		d.end[i] = Pos(e)
		d.level[i] = binary.LittleEndian.Uint16(u16[:])
		d.tag[i] = TagID(tg)
		d.parent[i] = NodeID(par)
		d.byTag[tg] = append(d.byTag[tg], NodeID(i))
	}
	// Values are interned through a scratch buffer: a repeated value is a
	// map hit on the buffer and costs no allocation, so loading an image
	// retains one string per distinct value instead of one per node.
	vals := intern.New()
	var scratch []byte
	for i := range d.value {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("xmltree: image value %d: %w", i, err)
		}
		if n > sanityMax {
			return nil, fmt.Errorf("xmltree: image value %d: implausible length %d", i, n)
		}
		if uint64(cap(scratch)) < n {
			scratch = make([]byte, n)
		}
		scratch = scratch[:n]
		if _, err := io.ReadFull(br, scratch); err != nil {
			return nil, fmt.Errorf("xmltree: image value %d: %w", i, err)
		}
		d.value[i] = vals.InternBytes(scratch)
	}
	d.intern = vals.Stats()
	if len(d.end) > 0 {
		if d.end[0] != forestRootEnd {
			d.maxPos = d.end[0]
		} else {
			// A persisted forest image: the root's end is the open-ended
			// sentinel, so the high-water mark is the largest member end.
			for _, e := range d.end[1:] {
				if e > d.maxPos {
					d.maxPos = e
				}
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("xmltree: image failed validation: %w", err)
	}
	return d, nil
}
