package sjos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sjos/internal/admission"
	"sjos/internal/core"
	"sjos/internal/datagen"
	"sjos/internal/exec"
	"sjos/internal/histogram"
	"sjos/internal/pattern"
	"sjos/internal/replica"
	"sjos/internal/shardring"
	"sjos/internal/xmltree"
)

// CorpusOptions configures corpus construction. The embedded Options apply
// per shard (pool size, histogram grid, retry policy, value index, cost
// model, plan-cache capacity) with three corpus-level exceptions:
// MaxInFlight and QueueDepth bound concurrent queries across the whole
// corpus (shards themselves admit unconditionally — the corpus is the
// admission boundary), and DiskPath names a path prefix from which each
// shard derives its own image file ("<path>.shard-NNN"). Options.PageFile
// is ignored; use ShardPageFile to inject per-shard page files.
type CorpusOptions struct {
	Options

	// Shards is the number of shards documents are distributed over by
	// consistent hashing of their IDs. <= 0 selects min(#docs, GOMAXPROCS).
	Shards int
	// Replicas is the consistent-hash ring's virtual points per shard
	// (<= 0 selects the default, see internal/shardring).
	Replicas int
	// ShardWorkers bounds how many shards one query fans out to
	// concurrently (<= 0 selects min(#shards, GOMAXPROCS)).
	ShardWorkers int
	// ReplicasPerShard is the number of independent store copies built per
	// shard (<= 0 selects 1). Replicas share the shard's merged forest and
	// statistics but each has its own page file and buffer pool; queries
	// route to the healthiest replica, fail over on error, and hedge onto
	// the next replica when the first is slow.
	ReplicasPerShard int
	// HedgeDelay fixes the hedged-read delay: how long a shard query waits
	// on its first replica before re-issuing on the next. 0 (the default)
	// adapts the delay to the observed p95 of shard executions.
	HedgeDelay time.Duration
	// DisableHedging turns hedged reads off; failover on error still
	// happens.
	DisableHedging bool
	// ReplicaProbeInterval spaces the half-open probes of a probation
	// replica (<= 0 selects the internal/replica default, 500ms).
	ReplicaProbeInterval time.Duration
	// ShardPageFile, when non-nil, supplies the page file each replica of
	// each shard's store is built on — the injection point for per-replica
	// fault wrappers (chaos testing a single failing replica) and
	// alternative backends. It takes precedence over DiskPath.
	ShardPageFile func(shard, replica int) PageFile

	// ShardWALFile, when non-nil, enables the corpus write path: every ring
	// shard is pre-created (even the ones no initial document hashed to, so
	// later inserts can land anywhere), shard s's primary replica logs its
	// mutations to ShardWALFile(s), and Corpus.Insert/Delete/Replace become
	// available. A corpus may then be built with zero documents. Additional
	// replicas per shard follow the primary's committed mutations without a
	// log of their own; a follower that fails to apply one is taken out of
	// query routing permanently (see ReplicaHealth.Down).
	ShardWALFile func(shard int) PageFile
}

// docRef locates a document: the shard holding it and its member index
// inside that shard's merged forest.
type docRef struct {
	shard  int
	member int
}

// corpusReplica is one independent copy of a shard's store: its own page
// file and buffer pool over the same merged forest, plus the health tracker
// routing decisions consult.
type corpusReplica struct {
	db     *Database
	health *replica.Tracker
	// down marks a follower that failed to apply a committed mutation: its
	// store has diverged from the shard, so routing skips it permanently
	// (health probes cannot heal a missing document).
	down atomic.Bool
}

// corpusShard is one shard: one or more replica Databases over the merged
// forest of its member documents, plus the bookkeeping to translate merged
// node IDs back into per-document ones.
type corpusShard struct {
	id int
	// replicas holds the shard's store copies; always at least one.
	replicas []*corpusReplica
	// rr rotates query routing among the healthy replicas.
	rr atomic.Uint64
	// ingest marks a write-enabled shard: its member bookkeeping lives in
	// the replica Databases' published snapshots (pinned per query), and
	// spans/docIdx/docIDs below stay nil.
	ingest bool
	// spans[i] is member i's node range inside the merged document, in
	// ascending First order (members were merged in insertion order).
	spans []xmltree.DocSpan
	// docIdx[i] / docIDs[i] are member i's global insertion index and ID.
	docIdx []int
	docIDs []string
}

// meta returns the shard's metadata replica: every replica shares the same
// merged document, tag dictionary and statistics, so replica 0 answers all
// planning and node-resolution questions regardless of routing health.
func (sh *corpusShard) meta() *Database { return sh.replicas[0].db }

// routeOrder ranks the shard's replicas for one query: a degraded replica
// whose half-open probe is due goes first (the query IS the probe — its
// outcome decides recovery, and failover covers it if the probe fails), then
// healthy replicas in rotation, then suspect ones as failover targets, then
// probation replicas as a last resort. Every replica appears exactly once,
// so failover can always exhaust the set.
func (sh *corpusShard) routeOrder(now time.Time) []*corpusReplica {
	if len(sh.replicas) == 1 {
		return sh.replicas
	}
	var probing, healthy, suspect, probation []*corpusReplica
	for _, rep := range sh.replicas {
		if rep.down.Load() {
			// A follower that failed to apply a committed mutation serves
			// stale data; keep it out of routing entirely.
			continue
		}
		switch {
		case rep.health.AllowProbe(now):
			probing = append(probing, rep)
		case rep.health.State() == replica.Healthy:
			healthy = append(healthy, rep)
		case rep.health.State() == replica.Suspect:
			suspect = append(suspect, rep)
		default:
			probation = append(probation, rep)
		}
	}
	if len(healthy) > 1 {
		k := int(sh.rr.Add(1) % uint64(len(healthy)))
		healthy = append(healthy[k:len(healthy):len(healthy)], healthy[:k]...)
	}
	order := make([]*corpusReplica, 0, len(sh.replicas))
	order = append(order, probing...)
	order = append(order, healthy...)
	order = append(order, suspect...)
	order = append(order, probation...)
	return order
}

// memberOf maps a merged-document node ID to the member that owns it.
func (sh *corpusShard) memberOf(id NodeID) int {
	return sort.Search(len(sh.spans), func(i int) bool { return sh.spans[i].First > id }) - 1
}

// corpusView is the corpus's membership directory — document IDs in global
// insertion order and their shard assignment. It is immutable; mutations
// publish a fresh view, and every query pins exactly one (mirror of dbSnap).
type corpusView struct {
	ids  []string // global document insertion order
	byID map[string]docRef
}

// corpusState is the shared identity behind a Corpus and all of its
// WithParallelism views — mirror of dbState.
type corpusState struct {
	shards []*corpusShard // one per ring shard; nil when no document hashed there
	ring   *shardring.Ring
	live   atomic.Pointer[corpusView]
	model  CostModel
	svc    *service // corpus-level: merged stats, plan cache, metrics, admission
	probe  core.ProbeEligibility
	// shardWorkers bounds scatter fan-out (resolved at Build).
	shardWorkers int

	// ingest marks a write-enabled corpus (CorpusOptions.ShardWALFile);
	// ingestMu serialises its mutations (queries never take it).
	ingest   bool
	ingestMu sync.Mutex

	// lat observes successful shard-replica execution latencies; its p95 is
	// the adaptive hedged-read delay.
	lat replica.Latency
	// hedged / failovers count hedge launches and error failovers across
	// all shards (the sjos_hedged_requests_total /
	// sjos_replica_failovers_total series).
	hedged    atomic.Uint64
	failovers atomic.Uint64
	// fixedHedge pins the hedge delay (0 = adaptive); hedgeOff disables
	// hedging entirely (failover on error still happens).
	fixedHedge time.Duration
	hedgeOff   bool
}

// view returns the current membership directory; callers pin it once per
// operation.
func (cs *corpusState) view() *corpusView { return cs.live.Load() }

// hedgeDelay returns how long a shard query waits on its first replica
// before hedging onto the next: the fixed override when set, otherwise the
// observed p95 clamped to [500µs, 100ms] (2ms before any observation).
func (cs *corpusState) hedgeDelay() time.Duration {
	if cs.fixedHedge > 0 {
		return cs.fixedHedge
	}
	d := cs.lat.Quantile(0.95)
	switch {
	case d == 0:
		return 2 * time.Millisecond
	case d < 500*time.Microsecond:
		return 500 * time.Microsecond
	case d > 100*time.Millisecond:
		return 100 * time.Millisecond
	}
	return d
}

// Corpus is many documents behind one query surface: documents are
// distributed over shards by consistent hashing of their IDs, each shard
// stores its documents as one merged forest (reusing the paged, checksummed
// store and all indexes), and queries scatter across shards and gather in
// document order. The Corpus is the primary entry point for multi-document
// workloads; Database remains the single-document convenience, and
// Database.AsCorpus adapts one into the other.
//
// Plans are optimized once per query against corpus-wide merged statistics
// and executed unchanged on every shard — correct because no structural
// relationship crosses a shard, so a corpus answer is exactly the
// concatenation of per-shard answers in document order.
type Corpus struct {
	*corpusState

	// parallelism > 0 routes each shard's execution through the
	// partition-parallel driver with that many workers (in addition to the
	// cross-shard scatter). 0 = serial per shard.
	parallelism int
}

// CorpusBuilder accumulates documents for one Corpus. Add documents in the
// order results should be reported in, then call Build.
type CorpusBuilder struct {
	opts CorpusOptions
	ids  []string
	docs []*xmltree.Document
	seen map[string]bool
	err  error
}

// NewCorpusBuilder starts a corpus build; opts may be nil for defaults.
func NewCorpusBuilder(opts *CorpusOptions) *CorpusBuilder {
	b := &CorpusBuilder{seen: make(map[string]bool)}
	if opts != nil {
		b.opts = *opts
	}
	return b
}

// add registers a parsed document under id. Errors are sticky: the first
// one fails the eventual Build.
func (b *CorpusBuilder) add(id string, doc *xmltree.Document, err error) error {
	if b.err != nil {
		return b.err
	}
	switch {
	case err != nil:
	case id == "":
		err = fmt.Errorf("sjos: corpus document needs a non-empty ID")
	case b.seen[id]:
		err = fmt.Errorf("sjos: duplicate corpus document ID %q", id)
	}
	if err != nil {
		b.err = err
		return err
	}
	b.seen[id] = true
	b.ids = append(b.ids, id)
	b.docs = append(b.docs, doc)
	return nil
}

// AddXML parses an XML document from r and adds it under id.
func (b *CorpusBuilder) AddXML(id string, r io.Reader) error {
	if b.err != nil {
		return b.err
	}
	doc, err := xmltree.Parse(r)
	return b.add(id, doc, err)
}

// AddXMLString is AddXML over a string.
func (b *CorpusBuilder) AddXMLString(id, src string) error {
	return b.AddXML(id, strings.NewReader(src))
}

// AddDataset generates one of the synthetic benchmark data sets ("mbench",
// "dblp", "pers") at the given scale and folding factor with the given PRNG
// seed, and adds it under id. Distinct seeds produce distinct documents —
// the corpus-population path of the load generator.
func (b *CorpusBuilder) AddDataset(id, name string, scale float64, fold int, seed int64) error {
	if b.err != nil {
		return b.err
	}
	doc, err := datagen.Generate(datagen.Config{Name: name, Scale: scale, Seed: seed})
	if err == nil {
		doc = xmltree.Fold(doc, fold)
	}
	return b.add(id, doc, err)
}

// NumPending reports how many documents have been added so far.
func (b *CorpusBuilder) NumPending() int { return len(b.ids) }

// Build assigns the added documents to shards, merges each shard's members
// into one forest document, and constructs the per-shard stores, indexes
// and statistics plus the corpus-wide merged statistics.
func (b *CorpusBuilder) Build() (*Corpus, error) {
	if b.err != nil {
		return nil, b.err
	}
	writable := b.opts.ShardWALFile != nil
	if len(b.docs) == 0 && !writable {
		return nil, fmt.Errorf("sjos: corpus needs at least one document")
	}
	shards := b.opts.Shards
	if shards <= 0 {
		shards = min(max(len(b.docs), 1), runtime.GOMAXPROCS(0))
	}
	ring := shardring.New(shards, b.opts.Replicas)
	shards = ring.Shards()

	cs := &corpusState{ring: ring, ingest: writable}
	cv := &corpusView{
		ids:  append([]string(nil), b.ids...),
		byID: make(map[string]docRef, len(b.ids)),
	}
	// Group documents by owning shard, preserving global insertion order
	// within each group.
	groupDocs := make([][]*xmltree.Document, shards)
	groupIdx := make([][]int, shards)
	for gi, id := range b.ids {
		s := ring.Shard(id)
		cv.byID[id] = docRef{shard: s, member: len(groupDocs[s])}
		groupDocs[s] = append(groupDocs[s], b.docs[gi])
		groupIdx[s] = append(groupIdx[s], gi)
	}

	rps := b.opts.ReplicasPerShard
	if rps <= 0 {
		rps = 1
	}
	repCfg := replica.Config{ProbeInterval: b.opts.ReplicaProbeInterval}
	cs.fixedHedge = b.opts.HedgeDelay
	cs.hedgeOff = b.opts.DisableHedging

	cs.shards = make([]*corpusShard, shards)
	var parts []*histogram.Stats
	for s := 0; s < shards; s++ {
		// A write-enabled corpus pre-creates every ring shard — a later
		// insert can hash anywhere; a static corpus skips empty ones.
		if len(groupDocs[s]) == 0 && !writable {
			continue
		}
		sh := &corpusShard{id: s, ingest: writable}
		if !writable {
			merged, spans, err := xmltree.MergeDocuments(groupDocs[s])
			if err != nil {
				return nil, fmt.Errorf("sjos: merging shard %d: %w", s, err)
			}
			sh.spans = spans
			sh.docIdx = groupIdx[s]
			sh.docIDs = make([]string, len(groupIdx[s]))
			for m, gi := range groupIdx[s] {
				sh.docIDs[m] = cv.ids[gi]
			}
			for r := 0; r < rps; r++ {
				db, err := fromDocument(merged, b.shardOptions(s, r))
				if err != nil {
					return nil, fmt.Errorf("sjos: building shard %d replica %d: %w", s, r, err)
				}
				sh.replicas = append(sh.replicas, &corpusReplica{
					db:     db,
					health: replica.NewTracker(repCfg),
				})
			}
			parts = append(parts, sh.meta().histStats())
		} else {
			seeds := make([]seedDoc, len(groupDocs[s]))
			for m, doc := range groupDocs[s] {
				seeds[m] = seedDoc{id: cv.ids[groupIdx[s][m]], doc: doc}
			}
			for r := 0; r < rps; r++ {
				opts := b.shardOptions(s, r)
				var db *Database
				var err error
				if r == 0 {
					opts.WALFile = b.opts.ShardWALFile(s)
					db, err = buildIngestDatabase(seeds, opts)
				} else {
					db, err = newFollowerIngest(seeds, opts)
				}
				if err != nil {
					return nil, fmt.Errorf("sjos: building shard %d replica %d: %w", s, r, err)
				}
				sh.replicas = append(sh.replicas, &corpusReplica{
					db:     db,
					health: replica.NewTracker(repCfg),
				})
			}
			parts = append(parts, sh.meta().statsParts()...)
		}
		cs.shards[s] = sh
	}

	if writable {
		// Shards recovered from non-empty WALs hold members the builder
		// never saw; fold them into the membership directory. Their global
		// order is reconstructed shard-grouped (per-shard insertion order
		// is exact; the interleaving across shards is not logged).
		seen := make(map[string]bool, len(cv.ids))
		for _, id := range cv.ids {
			seen[id] = true
		}
		for s, sh := range cs.shards {
			for _, id := range sh.meta().MemberIDs() {
				if !seen[id] {
					seen[id] = true
					cv.ids = append(cv.ids, id)
					cv.byID[id] = docRef{shard: s}
				}
			}
		}
	}

	grid, cacheCap := b.opts.HistogramGrid, b.opts.PlanCacheCapacity
	cs.svc = newService(histogram.Merge(parts), grid, cacheCap)
	cs.svc.admit = admission.New(b.opts.MaxInFlight, b.opts.QueueDepth)
	cs.model = b.opts.model()
	cs.probe = corpusProbe{shards: cs.shards}
	cs.shardWorkers = b.opts.ShardWorkers
	cs.live.Store(cv)
	return &Corpus{corpusState: cs}, nil
}

// shardOptions derives one replica's per-shard Options from the corpus
// options: the corpus is the admission boundary (shards admit
// unconditionally), and each replica gets its own page file.
func (b *CorpusBuilder) shardOptions(s, r int) *Options {
	sopts := b.opts.Options
	sopts.MaxInFlight, sopts.QueueDepth = 0, 0
	sopts.PageFile = nil
	sopts.WALFile = nil
	if b.opts.ShardPageFile != nil {
		sopts.PageFile = b.opts.ShardPageFile(s, r)
		sopts.DiskPath = ""
	} else if sopts.DiskPath != "" {
		// Replica 0 keeps the PR 7 path layout so existing images stay
		// addressable; extra replicas get their own files.
		sopts.DiskPath = fmt.Sprintf("%s.shard-%03d", sopts.DiskPath, s)
		if r > 0 {
			sopts.DiskPath = fmt.Sprintf("%s.r%d", sopts.DiskPath, r)
		}
	}
	return &sopts
}

// histStats returns the database's statistics when they are plain
// single-document positional histograms (always true for databases built by
// the constructors).
func (db *Database) histStats() *histogram.Stats {
	s, _ := db.svc.snapshot()
	hs, _ := s.(*histogram.Stats)
	return hs
}

// AsCorpus adapts a single-document Database into a one-shard Corpus under
// the given document ID, sharing the database's state: store, statistics,
// plan cache, metrics and admission control. Queries through either handle
// observe the same caches and limits (corpus queries bypass only the
// double admission a nested Database.Run would cost).
func (db *Database) AsCorpus(docID string) *Corpus {
	sh := &corpusShard{
		replicas: []*corpusReplica{{db: db, health: replica.NewTracker(replica.Config{})}},
		spans:    []xmltree.DocSpan{{First: 0, Nodes: db.view().doc.NumNodes()}},
		docIdx:   []int{0},
		docIDs:   []string{docID},
	}
	cs := &corpusState{
		shards:       []*corpusShard{sh},
		ring:         shardring.New(1, 0),
		model:        db.model,
		svc:          db.svc,
		probe:        db.view().store,
		shardWorkers: 1,
	}
	cs.live.Store(&corpusView{
		ids:  []string{docID},
		byID: map[string]docRef{docID: {}},
	})
	return &Corpus{corpusState: cs, parallelism: db.parallelism}
}

// corpusProbe aggregates per-shard value-index eligibility for the corpus
// planner: a probe is offered only when every populated shard can serve it
// (shards that cannot would silently fall back to scan+filter, which stays
// correct but would skew the shared plan's cost model), and the exact probe
// selectivity is the per-shard sum.
type corpusProbe struct {
	shards []*corpusShard
}

func (p corpusProbe) ProbeEligible(tag string, op pattern.CmpOp, value string) bool {
	any := false
	for _, sh := range p.shards {
		if sh == nil {
			continue
		}
		store := sh.meta().view().store
		if store.NumNodes() <= 1 {
			continue // write-enabled shard nothing has hashed to yet
		}
		if !store.ProbeEligible(tag, op, value) {
			return false
		}
		any = true
	}
	return any
}

func (p corpusProbe) ProbeSelectivity(tag string, op pattern.CmpOp, value string) (int, bool) {
	total, any := 0, false
	for _, sh := range p.shards {
		if sh == nil {
			continue
		}
		store := sh.meta().view().store
		if store.NumNodes() <= 1 {
			continue
		}
		n, ok := store.ProbeSelectivity(tag, op, value)
		if !ok {
			return 0, false
		}
		total += n
		any = true
	}
	return total, any
}

// NumShards returns the corpus's shard count (including shards no document
// hashed to).
func (c *Corpus) NumShards() int { return len(c.shards) }

// NumDocs returns the number of member documents.
func (c *Corpus) NumDocs() int { return len(c.view().ids) }

// DocIDs returns the document IDs in insertion order — the order results
// are reported in.
func (c *Corpus) DocIDs() []string { return append([]string(nil), c.view().ids...) }

// ShardOf reports which shard holds the document.
func (c *Corpus) ShardOf(docID string) (int, bool) {
	ref, ok := c.view().byID[docID]
	return ref.shard, ok
}

// Model returns the corpus's cost model.
func (c *Corpus) Model() CostModel { return c.model }

// resolve translates a (document ID, document-local node ID) pair into the
// owning shard's pinned snapshot and the merged-document node ID.
func (c *Corpus) resolve(docID string, id NodeID) (*dbSnap, NodeID, bool) {
	ref, ok := c.view().byID[docID]
	if !ok {
		return nil, 0, false
	}
	sh := c.shards[ref.shard]
	sn := sh.meta().view()
	var span xmltree.DocSpan
	if sh.ingest {
		mi, ok := sn.memberIdx[docID]
		if !ok {
			return nil, 0, false
		}
		span = sn.members[mi].span
	} else {
		span = sh.spans[ref.member]
	}
	if int(id) >= span.Nodes {
		return nil, 0, false
	}
	return sn, span.First + id, true
}

// TagName returns the element tag of a matched node of the given document.
func (c *Corpus) TagName(docID string, id NodeID) (string, bool) {
	sn, gid, ok := c.resolve(docID, id)
	if !ok {
		return "", false
	}
	return sn.doc.TagName(sn.doc.Tag(gid)), true
}

// Value returns the text value of a matched node of the given document
// ("" if none).
func (c *Corpus) Value(docID string, id NodeID) (string, bool) {
	sn, gid, ok := c.resolve(docID, id)
	if !ok {
		return "", false
	}
	return sn.doc.Value(gid), true
}

// WithParallelism returns a derived handle whose queries execute each
// shard's plan through the partition-parallel driver with k workers, on top
// of the cross-shard scatter (total concurrency ≈ ShardWorkers × k).
// k <= 0 selects runtime.GOMAXPROCS(0). Like Database.WithParallelism, the
// derived handle shares all corpus state — plan cache, statistics, metrics
// and admission control.
func (c *Corpus) WithParallelism(k int) *Corpus {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	return &Corpus{corpusState: c.corpusState, parallelism: k}
}

// Parallelism reports the per-shard worker count queries run with
// (0 = serial within each shard).
func (c *Corpus) Parallelism() int { return c.parallelism }

// Optimize picks a plan for pat against the corpus-wide merged statistics
// (summed tag counts and join estimates over all shards — exact at the
// corpus level because joins never cross shards). The chosen plan executes
// unchanged on every shard. Like Database.Optimize it bypasses the plan
// cache; cached optimization is the QueryContext path.
func (c *Corpus) Optimize(pat *Pattern, m Method, te int) (*OptimizeResult, error) {
	return c.OptimizeContext(context.Background(), pat, m, te)
}

// OptimizeContext is Optimize under a context.
func (c *Corpus) OptimizeContext(ctx context.Context, pat *Pattern, m Method, te int) (*OptimizeResult, error) {
	stats, _ := c.svc.snapshot()
	return optimizeWith(ctx, pat, stats, c.model, m, te, c.probe)
}

// CorpusMatch is one pattern match of a corpus query: the document it
// occurred in and the per-pattern-node bindings in that document's own
// node numbering — exactly the IDs a standalone Database over the same
// document would report.
type CorpusMatch struct {
	// DocID and Doc identify the document (ID and insertion index).
	DocID string
	Doc   int
	// Nodes holds the matched document nodes, slot u = pattern node u.
	Nodes Match
}

// CorpusRunResult is the outcome of one Corpus.Run call.
type CorpusRunResult struct {
	// Matches holds the matches grouped by document in insertion order,
	// and inside each document in that document's standalone match order
	// (nil if CountOnly).
	Matches []CorpusMatch
	// Count is the number of matches produced.
	Count int
	// Stats merges the physical work of every shard execution.
	Stats ExecStats
	// Trace is the plan-shaped trace with all shards' operator clones
	// merged (nil unless RunOptions.Trace).
	Trace *OpTrace
	// ShardsQueried is the number of populated shards the query was
	// scattered to.
	ShardsQueried int
}

// errCorpusLimit marks a scatter cancellation caused by the corpus-level
// Limit being satisfied — shards cancelled for this reason are not errors.
var errCorpusLimit = errors.New("sjos: corpus limit satisfied")

// Run executes one plan on every populated shard and gathers the results
// in document order. It mirrors Database.Run as the corpus's resilience
// boundary: corpus-level admission control, metrics observation and panic
// recovery wrap the scatter. Within the scatter, ShardWorkers shards
// execute concurrently (each serial or partition-parallel per
// WithParallelism / opts.Workers); the first shard error cancels the rest
// and Run returns that error with no partial results, and under
// opts.Limit the remaining shards are cancelled as soon as a document-order
// prefix of gathered results satisfies the limit.
func (c *Corpus) Run(ctx context.Context, pat *Pattern, p *Plan, opts RunOptions) (res *CorpusRunResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	release, aerr := c.svc.admit.Acquire(ctx)
	if aerr != nil {
		return nil, aerr
	}
	defer release()
	c.svc.metrics.QueryStarted()
	t0 := time.Now()
	defer func() {
		if perr := exec.RecoverPanic(recover()); perr != nil {
			res, err = nil, perr
			c.svc.recordPanic(pat, perr)
		}
		c.svc.metrics.QueryFinished(time.Since(t0), err)
		if res != nil {
			c.svc.metrics.ExecBatched(res.Stats.Batches, res.Stats.SkippedTuples)
		}
	}()
	if hook := c.svc.testHookRun; hook != nil {
		hook()
	}
	res, err = c.scatter(ctx, pat, p, opts)
	return res, err
}

// shardOut is one shard's gathered output: the raw run result, the replica
// snapshot it ran on, and its matches demultiplexed into per-document,
// document-local form (keyed by document ID — member indices are only
// stable within the pinned snapshot).
type shardOut struct {
	res   *RunResult
	snap  *dbSnap
	byDoc map[string][]Match
}

// scatter is Run without the admission/metrics/recovery envelope.
func (c *Corpus) scatter(ctx context.Context, pat *Pattern, p *Plan, opts RunOptions) (*CorpusRunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cv := c.view()
	var live []int
	for i, sh := range c.shards {
		if sh != nil {
			live = append(live, i)
		}
	}
	out := &CorpusRunResult{ShardsQueried: len(live)}
	if len(live) == 0 {
		return out, nil
	}

	shOpts := opts
	if shOpts.Workers == 0 {
		shOpts.Workers = c.parallelism
	}
	// A corpus Limit k is served by per-shard limit k: any plan's output is
	// in document-position order and members occupy disjoint ascending
	// ranges, so each shard's first k matches cover every possible prefix
	// contribution. Count-only is pushed down only when no demux is needed
	// (gathering a limited prefix requires the matches to attribute them to
	// documents).
	shOpts.CountOnly = opts.CountOnly && opts.Limit <= 0

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		results  = make([]*shardOut, len(c.shards))
		done     = make([]bool, len(c.shards))
	)
	// checkLimit (mu held): walk documents in global order while their
	// shard has finished, accumulating gathered matches; once a prefix
	// satisfies the limit the still-running shards can only contribute
	// matches past the cutoff, so cancel them.
	checkLimit := func() {
		if opts.Limit <= 0 || firstErr != nil {
			return
		}
		total := 0
		for _, id := range cv.ids {
			ref := cv.byID[id]
			if !done[ref.shard] {
				return
			}
			if so := results[ref.shard]; so != nil {
				total += len(so.byDoc[id])
			}
			if total >= opts.Limit {
				cancel(errCorpusLimit)
				return
			}
		}
	}
	runShard := func(si int) {
		sh := c.shards[si]
		r, sn, err := c.runShardReplicated(runCtx, sh, pat, p, shOpts)
		mu.Lock()
		defer mu.Unlock()
		done[si] = true
		if err != nil {
			// A shard cancelled because the corpus limit was already
			// satisfied did not fail; anything else is the query's error.
			if context.Cause(runCtx) != errCorpusLimit && firstErr == nil {
				firstErr = err
				cancel(nil)
			}
			return
		}
		so := &shardOut{res: r, snap: sn}
		if !shOpts.CountOnly {
			so.byDoc = demux(sh, sn, r.Matches)
		}
		results[si] = so
		checkLimit()
	}

	workers := c.shardWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(live) {
		workers = len(live)
	}
	jobs := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for si := range jobs {
				runShard(si)
			}
		}()
	}
	for _, si := range live {
		jobs <- si
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}

	// Gather: merge per-shard statistics and traces, then emit matches by
	// walking documents in global insertion order — each document's matches
	// come whole from its shard, already in standalone order.
	for _, si := range live {
		so := results[si]
		if so == nil {
			continue // cancelled by the satisfied limit; not part of the prefix
		}
		out.Stats.Add(so.res.Stats)
		if so.res.Trace != nil {
			if out.Trace == nil {
				out.Trace = so.res.Trace
			} else {
				out.Trace.Merge(so.res.Trace)
			}
		}
	}
	if shOpts.CountOnly {
		for _, si := range live {
			if so := results[si]; so != nil {
				out.Count += so.res.Count
			}
		}
		return out, nil
	}
	var matches []CorpusMatch
gather:
	for gi, id := range cv.ids {
		ref := cv.byID[id]
		so := results[ref.shard]
		if so == nil {
			continue
		}
		for _, m := range so.byDoc[id] {
			matches = append(matches, CorpusMatch{DocID: id, Doc: gi, Nodes: m})
			if opts.Limit > 0 && len(matches) >= opts.Limit {
				break gather
			}
		}
	}
	out.Count = len(matches)
	if !opts.CountOnly {
		if matches == nil {
			matches = []CorpusMatch{}
		}
		out.Matches = matches
	}
	return out, nil
}

// errHedgeLoser marks the cancellation of a hedged replica attempt whose
// sibling already produced the shard's result — a routing decision, not a
// failure, so losers never feed the health trackers.
var errHedgeLoser = errors.New("sjos: hedged read superseded")

// runReplicaOnce executes the shard plan on one replica. Replica attempts
// run on their own goroutines, outside Run's recovery scope — recover here
// so a panicking replica surfaces as that attempt's typed error (and a
// failover opportunity), not a process crash.
func runReplicaOnce(ctx context.Context, rep *corpusReplica, pat *Pattern, p *Plan, opts RunOptions) (r *RunResult, sn *dbSnap, err error) {
	defer func() {
		if perr := exec.RecoverPanic(recover()); perr != nil {
			r, err = nil, perr
		}
	}()
	// Pin the replica's snapshot here and run on it explicitly: the
	// scatter's demux must rebase matches against the exact member table
	// the query saw, not whatever a concurrent mutation publishes next.
	sn = rep.db.view()
	r, err = rep.db.runOn(ctx, sn, pat, p, opts)
	return r, sn, err
}

// replicaAttempt is one replica execution's outcome, tagged with its
// position in the route order.
type replicaAttempt struct {
	idx     int
	res     *RunResult
	snap    *dbSnap
	err     error
	elapsed time.Duration
}

// runShardReplicated serves one shard's slice of a scatter from its replica
// set: the query goes to the best replica per routeOrder, fails over to the
// next on a genuine error, and (unless hedging is off) is re-issued on the
// next replica after hedgeDelay when the current attempts are still
// running — first success wins and the losers are cancelled with
// errHedgeLoser. Health is recorded only for attempts that ran to their own
// conclusion: a success resets the replica, a genuine failure advances its
// state machine, and attempts cut short by the scatter's own cancellation
// (limit satisfied, caller gone, hedge already won) leave health untouched.
func (c *Corpus) runShardReplicated(ctx context.Context, sh *corpusShard, pat *Pattern, p *Plan, opts RunOptions) (*RunResult, *dbSnap, error) {
	order := sh.routeOrder(time.Now())
	if len(order) == 1 {
		rep := order[0]
		t0 := time.Now()
		r, sn, err := runReplicaOnce(ctx, rep, pat, p, opts)
		if err == nil {
			rep.health.RecordSuccess()
			c.lat.Observe(time.Since(t0))
		} else if ctx.Err() == nil {
			rep.health.RecordFailure()
		}
		return r, sn, err
	}

	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(errHedgeLoser)
	// Buffered to the full route: losers deposit their outcome and exit
	// without anyone reading it.
	attempts := make(chan replicaAttempt, len(order))
	launch := func(i int) {
		go func() {
			t0 := time.Now()
			r, sn, err := runReplicaOnce(runCtx, order[i], pat, p, opts)
			attempts <- replicaAttempt{idx: i, res: r, snap: sn, err: err, elapsed: time.Since(t0)}
		}()
	}
	next := 0
	launch(next)
	next++
	inFlight := 1

	var timerC <-chan time.Time
	if !c.hedgeOff && next < len(order) {
		timer := time.NewTimer(c.hedgeDelay())
		defer timer.Stop()
		timerC = timer.C
	}

	var lastErr error
	for {
		select {
		case <-timerC:
			// One hedge per shard query: the slow path gets exactly one
			// extra chance, bounding the amplification at 2× per shard.
			timerC = nil
			if next < len(order) {
				c.hedged.Add(1)
				launch(next)
				next++
				inFlight++
			}
		case at := <-attempts:
			inFlight--
			rep := order[at.idx]
			if at.err == nil {
				rep.health.RecordSuccess()
				c.lat.Observe(at.elapsed)
				return at.res, at.snap, nil
			}
			if ctx.Err() != nil {
				// The scatter itself was cancelled (limit satisfied or the
				// caller gave up) — not this replica's fault.
				return nil, nil, at.err
			}
			rep.health.RecordFailure()
			lastErr = at.err
			if next < len(order) {
				c.failovers.Add(1)
				launch(next)
				next++
				inFlight++
			} else if inFlight == 0 {
				return nil, nil, lastErr
			}
		}
	}
}

// demux splits one shard's matches by member document and rebases every
// binding into the member's own node numbering. Matches arrive in
// document-position order; members occupy disjoint ascending ranges, so
// each document's slice preserves its standalone order. Write-enabled
// shards attribute against the pinned snapshot's member table (sn), static
// shards against the build-time spans.
func demux(sh *corpusShard, sn *dbSnap, ms []Match) map[string][]Match {
	out := make(map[string][]Match)
	for _, m := range ms {
		var id string
		var span xmltree.DocSpan
		if sh.ingest {
			mi := sort.Search(len(sn.members), func(i int) bool { return sn.members[i].span.First > m[0] }) - 1
			if mi < 0 || !sn.members[mi].span.Contains(m[0]) {
				continue // the synthetic forest root; no member owns it
			}
			id, span = sn.members[mi].id, sn.members[mi].span
		} else {
			mi := sh.memberOf(m[0])
			id, span = sh.docIDs[mi], sh.spans[mi]
		}
		local := make(Match, len(m))
		for i, nid := range m {
			local[i] = nid - span.First
		}
		out[id] = append(out[id], local)
	}
	return out
}

// CorpusQueryResult is the outcome of a corpus Query/QueryContext call.
type CorpusQueryResult struct {
	// Matches holds the matches grouped by document in insertion order.
	Matches []CorpusMatch
	// Count is the number of matches produced.
	Count int
	// Plan is the executed plan (one plan, every shard); PlanText its
	// rendering.
	Plan     *Plan
	PlanText string
	// EstCost is the optimizer's corpus-wide estimate for the plan.
	EstCost float64
	// CachedPlan reports whether the plan came from the corpus plan cache.
	CachedPlan bool
	// OptimizeTime and ExecuteTime split the total latency; ExecuteTime
	// covers the whole scatter-gather.
	OptimizeTime time.Duration
	ExecuteTime  time.Duration
	// PlansConsidered is the optimizer's search effort.
	PlansConsidered int
	// Exec merges the physical work of every shard execution.
	Exec ExecStats
	// Trace is the merged per-operator trace (nil unless requested or a
	// slow-query log is active).
	Trace *OpTrace
	// ShardsQueried is the number of populated shards scattered to.
	ShardsQueried int
}

// Query parses src, optimizes it once against the corpus-wide statistics
// with method m, and executes the chosen plan on every shard.
func (c *Corpus) Query(src string, m Method) (*CorpusQueryResult, error) {
	return c.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: m}})
}

// QueryContext parses src, optimizes it (through the corpus plan cache,
// unless opts.NoCache) and scatter-executes the chosen plan, observing ctx
// in both phases. Options are exactly Database.QueryContext's.
func (c *Corpus) QueryContext(ctx context.Context, src string, opts QueryOptions) (*CorpusQueryResult, error) {
	pat, err := ParsePattern(src)
	if err != nil {
		return nil, err
	}
	return c.QueryPatternContext(ctx, pat, opts)
}

// QueryPatternContext is QueryContext for an already-built pattern.
func (c *Corpus) QueryPatternContext(ctx context.Context, pat *Pattern, opts QueryOptions) (*CorpusQueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	thr, slowFn := c.svc.slow.config()
	if opts.SlowQueryThreshold > 0 {
		thr = opts.SlowQueryThreshold
	}
	if opts.OnSlowQuery != nil {
		slowFn = opts.OnSlowQuery
	}
	t0 := time.Now()
	res, cached, key, err := c.svc.optimizePattern(ctx, pat, c.model, c.probe, opts.Method, opts.Te, opts.NoCache, opts.NoValueIndex)
	if err != nil {
		return nil, err
	}
	optTime := time.Since(t0)
	t1 := time.Now()
	eo := opts.ExecOptions
	eo.Trace = opts.Trace || thr > 0
	rr, err := c.Run(ctx, pat, res.Plan, RunOptions{ExecOptions: eo})
	if err != nil {
		return nil, fmt.Errorf("sjos: executing %v plan on corpus: %w", opts.Method, err)
	}
	execTime := time.Since(t1)
	c.svc.noteDrift(key, cached, eo, rr.Trace)
	c.svc.maybeLogSlow(pat, opts.Method, thr, slowFn, optTime, execTime, rr.Count, rr.Stats, rr.Trace, cached)
	return &CorpusQueryResult{
		Matches:         rr.Matches,
		Count:           rr.Count,
		Plan:            res.Plan,
		PlanText:        res.Plan.Format(pat),
		EstCost:         res.Cost,
		CachedPlan:      cached,
		OptimizeTime:    optTime,
		ExecuteTime:     execTime,
		PlansConsidered: res.Counters.PlansConsidered,
		Exec:            rr.Stats,
		Trace:           rr.Trace,
		ShardsQueried:   rr.ShardsQueried,
	}, nil
}

// ReplicaHealth is one replica's health snapshot inside a ShardHealth.
type ReplicaHealth struct {
	// Replica is the replica index within its shard.
	Replica int
	// State is the routing state ("healthy", "suspect", "probation").
	State string
	// ConsecutiveFailures is the current failure run; Failures and
	// Successes are lifetime counters.
	ConsecutiveFailures int
	Failures            uint64
	Successes           uint64
	// Down marks a write-path follower permanently removed from routing
	// after failing to apply a committed mutation.
	Down bool
	// Pool is this replica's own buffer-pool counters.
	Pool PoolStats
	// FaultsInjected counts faults this replica's page file injected, when
	// it sits on a fault-injecting file (chaos mode); 0 otherwise.
	FaultsInjected uint64
}

// ShardHealth is one shard's health snapshot.
type ShardHealth struct {
	// Shard is the shard index; Docs and Nodes its document and element
	// node populations (0 for shards no document hashed to).
	Shard int
	Docs  int
	Nodes int
	// Pool sums the buffer-pool counters of every replica of this shard
	// (zero for empty shards).
	Pool PoolStats
	// Content reports the shard's content-index counters: the index
	// structure (runs, tags, bytes) from the metadata replica — every
	// replica indexes the same forest — with the dynamic probe/decode
	// counters summed across replicas.
	Content ContentStats
	// FaultsInjected sums the injected-fault counters of every replica.
	FaultsInjected uint64
	// Replicas holds the per-replica state, replica 0 first (nil for empty
	// shards).
	Replicas []ReplicaHealth
}

// Health reports a per-shard health snapshot, one entry per shard
// (including empty ones) — the payload of xqserve's /healthz.
func (c *Corpus) Health() []ShardHealth {
	out := make([]ShardHealth, len(c.shards))
	for i, sh := range c.shards {
		out[i].Shard = i
		if sh == nil {
			continue
		}
		if sh.ingest {
			sn := sh.meta().view()
			out[i].Docs = len(sn.members)
			for _, m := range sn.members {
				out[i].Nodes += m.span.Nodes
			}
		} else {
			out[i].Docs = len(sh.spans)
			for _, sp := range sh.spans {
				out[i].Nodes += sp.Nodes
			}
		}
		out[i].Content = sh.meta().ContentStats()
		out[i].Content.ValueProbes = 0
		out[i].Content.BlocksDecoded = 0
		for r, rep := range sh.replicas {
			hs := rep.health.Snapshot()
			rh := ReplicaHealth{
				Replica:             r,
				State:               hs.State.String(),
				ConsecutiveFailures: hs.ConsecutiveFailures,
				Failures:            hs.Failures,
				Successes:           hs.Successes,
				Down:                rep.down.Load(),
				Pool:                rep.db.PoolStats(),
			}
			if ff, ok := rep.db.view().store.File().(interface{ FaultsInjected() uint64 }); ok {
				rh.FaultsInjected = ff.FaultsInjected()
			}
			cst := rep.db.ContentStats()
			out[i].Content.ValueProbes += cst.ValueProbes
			out[i].Content.BlocksDecoded += cst.BlocksDecoded
			out[i].Pool.Hits += rh.Pool.Hits
			out[i].Pool.Misses += rh.Pool.Misses
			out[i].Pool.Evicted += rh.Pool.Evicted
			out[i].Pool.Resident += rh.Pool.Resident
			out[i].Pool.Pinned += rh.Pool.Pinned
			out[i].Pool.Retries += rh.Pool.Retries
			out[i].Pool.ChecksumFailures += rh.Pool.ChecksumFailures
			out[i].FaultsInjected += rh.FaultsInjected
			out[i].Replicas = append(out[i].Replicas, rh)
		}
	}
	return out
}

// CacheStats returns the corpus plan cache's counters.
func (c *Corpus) CacheStats() CacheStats { return c.svc.cache.Stats() }

// AdmissionStats returns the corpus admission controller's counters.
func (c *Corpus) AdmissionStats() AdmissionStats { return c.svc.admit.Stats() }

// Drain flips the corpus into shutdown: queries arriving after Drain
// begins fail fast with ErrShuttingDown, and Drain returns once every
// in-flight query has finished (see Database.Drain).
func (c *Corpus) Drain(ctx context.Context) error { return c.svc.admit.Drain(ctx) }

// RebuildStats recomputes every shard's positional histograms and
// re-merges them into fresh corpus-wide statistics, invalidating the
// corpus plan cache.
//
// Each shard's fresh *Stats is derived directly from its document rather
// than read back through the shard service's snapshot: on an AsCorpus
// handle the shard shares the corpus service, so a concurrent rebuild could
// have installed the merged *Multi there in between — reading it back as a
// *Stats yielded nil and poisoned the merge.
func (c *Corpus) RebuildStats() {
	var parts []*histogram.Stats
	for _, sh := range c.shards {
		if sh == nil {
			continue
		}
		db := sh.meta()
		if sh.ingest {
			db.RebuildStats()
			parts = append(parts, db.statsParts()...)
			continue
		}
		hs := histogram.Build(db.view().doc, db.svc.grid)
		db.svc.setStats(hs)
		parts = append(parts, hs)
	}
	c.svc.setStats(histogram.Merge(parts))
}

// SetSlowQueryLog configures the corpus's slow-query log (see
// Database.SetSlowQueryLog).
func (c *Corpus) SetSlowQueryLog(threshold time.Duration, fn func(SlowQueryEntry)) {
	c.svc.slow.mu.Lock()
	c.svc.slow.threshold = threshold
	c.svc.slow.fn = fn
	c.svc.slow.mu.Unlock()
}

// SlowQueries returns the corpus's most recent slow-query log entries,
// oldest first.
func (c *Corpus) SlowQueries() []SlowQueryEntry { return c.svc.slow.entries() }

// Metrics returns a corpus-level observability snapshot: query counters,
// plan cache and admission are the corpus's own; buffer-pool, content and
// fault counters aggregate every shard.
func (c *Corpus) Metrics() Metrics {
	m := Metrics{
		Query:     c.svc.metrics.Snapshot(),
		Cache:     c.CacheStats(),
		Admission: c.AdmissionStats(),
	}
	m.Replica.HedgedRequests = c.hedged.Load()
	m.Replica.Failovers = c.failovers.Load()
	for _, sh := range c.shards {
		if sh == nil {
			continue
		}
		for _, rep := range sh.replicas {
			if rep.health.State() != replica.Healthy {
				m.Replica.Suspect++
			}
		}
	}
	for _, h := range c.Health() {
		m.Pool.Hits += h.Pool.Hits
		m.Pool.Misses += h.Pool.Misses
		m.Pool.Evicted += h.Pool.Evicted
		m.Pool.Resident += h.Pool.Resident
		m.Pool.Pinned += h.Pool.Pinned
		m.Pool.Retries += h.Pool.Retries
		m.Pool.ChecksumFailures += h.Pool.ChecksumFailures
		m.FaultsInjected += h.FaultsInjected
		m.Content.ValueIndexed = m.Content.ValueIndexed || h.Content.ValueIndexed
		m.Content.ValueRuns += h.Content.ValueRuns
		m.Content.NumericTags += h.Content.NumericTags
		m.Content.ValueProbes += h.Content.ValueProbes
		m.Content.BlocksDecoded += h.Content.BlocksDecoded
		m.Content.PostingsBytes += h.Content.PostingsBytes
		m.Content.RawPostingsBytes += h.Content.RawPostingsBytes
		m.Content.Intern.Strings += h.Content.Intern.Strings
		m.Content.Intern.Hits += h.Content.Intern.Hits
		m.Content.Intern.Misses += h.Content.Intern.Misses
		m.Content.Intern.BytesSaved += h.Content.Intern.BytesSaved
	}
	return m
}

// WriteMetrics renders the corpus's counters in the Prometheus text
// exposition format (metric prefix "sjos").
func (c *Corpus) WriteMetrics(w io.Writer) {
	writeMetricsText(w, c.Metrics())
}
