package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"sjos"
	"sjos/internal/faultfs"
	"sjos/internal/storage"
)

// ChaosConfig tunes the chaos experiment (xqbench -chaos).
type ChaosConfig struct {
	// Iters is the number of fault iterations per query × method for each
	// fault flavour (0 = 20).
	Iters int
	// Prob is the per-read probability of a transient injected failure in
	// the probabilistic rounds (0 = 0.02).
	Prob float64
	// Seed makes the probabilistic fault schedule reproducible.
	Seed int64
}

// ChaosRow summarises one query × method cell of the chaos experiment.
type ChaosRow struct {
	Query  string
	Method sjos.Method
	// Runs is the number of fault-injected executions; Correct how many
	// returned the exact fault-free result; TypedErrors how many failed
	// with the injected (typed) error. Correct + TypedErrors must equal
	// Runs — anything else (wrong answer, panic) fails the experiment.
	Runs, Correct, TypedErrors int
	// Faults and Retries are the injected-fault and pool-retry totals
	// accumulated over the cell's runs.
	Faults, Retries uint64
}

// Chaos drives every benchmark query under every optimizer method over a
// store with injected page faults: seeded probabilistic transient failures
// (which the buffer pool's retry loop must heal — every run must come back
// correct) and a sweep of permanent fail-at-read-N points (where each run
// must either produce the exact fault-free result or fail with the typed
// injected error). A wrong answer or an escaped panic aborts with an error;
// the returned rows are the per-cell tallies.
func Chaos(cfg ChaosConfig) ([]ChaosRow, error) {
	iters := cfg.Iters
	if iters <= 0 {
		iters = 20
	}
	prob := cfg.Prob
	if prob <= 0 {
		prob = 0.02
	}
	methods := Methods()
	dbs := map[string]*sjos.Database{}
	files := map[string]*faultfs.File{}
	var rows []ChaosRow
	for _, q := range Queries() {
		db, ff := dbs[q.Dataset], files[q.Dataset]
		if db == nil {
			// A deliberately tiny pool: the fold-1 datasets would otherwise
			// become fully cache-resident and give faults nothing to hit.
			ff = faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
			var err error
			db, err = sjos.GenerateDataset(q.Dataset, 1, 1, &sjos.Options{PageFile: ff, PoolFrames: 4})
			if err != nil {
				return nil, err
			}
			dbs[q.Dataset], files[q.Dataset] = db, ff
		}
		pat, err := sjos.ParsePattern(q.Source)
		if err != nil {
			return nil, err
		}
		for mi, m := range methods {
			opt, err := db.Optimize(pat, m, 0)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: optimize: %w", q.ID, m, err)
			}
			ff.SetPolicy(faultfs.Policy{})
			base, err := db.Run(context.Background(), pat, opt.Plan, sjos.RunOptions{CountOnly: true})
			if err != nil {
				return nil, fmt.Errorf("%s/%v: baseline: %w", q.ID, m, err)
			}
			reads := int(ff.Reads())
			retries0 := db.PoolStats().Retries
			row := ChaosRow{Query: q.ID, Method: m}
			check := func(label string, wantTyped func(error) bool) error {
				res, err := db.Run(context.Background(), pat, opt.Plan, sjos.RunOptions{CountOnly: true})
				row.Runs++
				switch {
				case err == nil && res.Count == base.Count:
					row.Correct++
				case err == nil:
					return fmt.Errorf("%s/%v %s: WRONG ANSWER: %d matches, want %d", q.ID, m, label, res.Count, base.Count)
				case wantTyped(err):
					row.TypedErrors++
				default:
					return fmt.Errorf("%s/%v %s: unexpected error: %w", q.ID, m, label, err)
				}
				if pinned := db.PoolStats().Pinned; pinned != 0 {
					return fmt.Errorf("%s/%v %s: %d pinned frames leaked", q.ID, m, label, pinned)
				}
				return nil
			}
			// Probabilistic transient faults: the retry loop heals them
			// (retry exhaustion — all attempts unlucky — still surfaces as
			// the typed injected error, never a wrong answer).
			for i := 0; i < iters; i++ {
				ff.SetPolicy(faultfs.Policy{FailProb: prob, Seed: cfg.Seed + int64(mi*iters+i), Transient: true})
				if err := check("transient", func(err error) bool {
					return errors.Is(err, faultfs.ErrInjected)
				}); err != nil {
					return nil, err
				}
				row.Faults += ff.FaultsInjected()
			}
			// Permanent fail-at-read-N sweep across the baseline's read
			// schedule: correct result or the injected error, nothing else.
			for i := 0; i < iters; i++ {
				n := 1 + i*(reads+1)/iters
				ff.SetPolicy(faultfs.Policy{FailNthRead: n})
				if err := check("permanent", func(err error) bool {
					return errors.Is(err, faultfs.ErrInjected)
				}); err != nil {
					return nil, err
				}
				row.Faults += ff.FaultsInjected()
			}
			ff.SetPolicy(faultfs.Policy{})
			row.Retries = db.PoolStats().Retries - retries0
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderChaos renders the chaos tallies as an aligned text table.
func RenderChaos(rows []ChaosRow, cfg ChaosConfig) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: fault-injected execution, every run correct or typed error (seed %d)\n", cfg.Seed)
	fmt.Fprintf(&b, "%-14s %-8s %6s %8s %7s %8s %8s\n",
		"Query", "Method", "runs", "correct", "errors", "faults", "retries")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-8v %6d %8d %7d %8d %8d\n",
			r.Query, r.Method, r.Runs, r.Correct, r.TypedErrors, r.Faults, r.Retries)
	}
	return b.String()
}
