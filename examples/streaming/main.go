// Streaming: the §3.4 motivation for the FP algorithm, live. Fully
// pipelined plans produce their first results immediately; blocking plans
// must finish sorting whole intermediate results first. This matters for
// online querying — a user watching results appear — which is exactly the
// application the paper recommends FP for.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sjos"
)

func main() {
	// Folded Pers: the full result has ~2M tuples, so "compute
	// everything, then show the first page" hurts.
	db, err := sjos.GenerateDataset("pers", 1, 20, nil)
	if err != nil {
		log.Fatal(err)
	}
	pat := sjos.MustParsePattern("//manager[.//employee/name]//manager/department/name")
	fmt.Printf("Pers ×20 (%d nodes); query: first 10 of many matches\n\n", db.NumNodes())

	// The fully-pipelined plan from FP.
	fp, err := db.Optimize(pat, sjos.MethodFP, 0)
	if err != nil {
		log.Fatal(err)
	}

	// A blocking alternative: the cheapest sort-containing plan from a
	// random sample (stand-in for what a naive evaluator might do).
	var blocking *sjos.Plan
	cost := 0.0
	for seed := int64(0); seed < 60; seed++ {
		r, err := db.BadPlan(pat, 1, seed)
		if err != nil {
			log.Fatal(err)
		}
		if r.Plan.Sorts() > 0 && (blocking == nil || r.Cost < cost) {
			blocking, cost = r.Plan, r.Cost
		}
	}
	if blocking == nil {
		log.Fatal("no blocking plan sampled")
	}

	measure := func(label string, p *sjos.Plan) {
		t0 := time.Now()
		fr, err := db.Run(context.Background(), pat, p, sjos.RunOptions{ExecOptions: sjos.ExecOptions{Limit: 10}})
		if err != nil {
			log.Fatal(err)
		}
		first := fr.Matches
		firstLatency := time.Since(t0)
		t0 = time.Now()
		tr, err := db.Run(context.Background(), pat, p, sjos.RunOptions{CountOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		total := tr.Count
		fullLatency := time.Since(t0)
		fmt.Printf("%-22s first %d results in %-12v full %d results in %v\n",
			label, len(first), firstLatency.Round(time.Microsecond), total, fullLatency.Round(time.Millisecond))
	}
	measure("FP (pipelined):", fp.Plan)
	measure("blocking (with sorts):", blocking)

	fmt.Println("\nThe pipelined plan streams; the blocking plan pays its sorts before")
	fmt.Println("emitting anything. That asymmetry is the paper's case for FP in")
	fmt.Println("interactive and online querying.")
}
