package pattern

// Minimize removes redundant branches from a pattern — the rewrite
// optimization the paper cites as complementary to cost-based join
// ordering ("Minimization of Tree Pattern Queries", Amer-Yahia et al.,
// SIGMOD 2001): fewer pattern nodes mean fewer structural joins for the
// cost-based optimizer to order.
//
// A branch (the subtree under a non-root node c) is redundant when a
// homomorphism maps it into the rest of the pattern: every node of the
// branch maps to a remaining node with the same tag and at least as strong
// a value predicate, descendant edges map to pattern descendant paths,
// child edges to child edges, and c's own edge constraint to its parent is
// implied by the image. Any match of the reduced pattern then extends to a
// match of the original (bind each removed node to its image's binding),
// so the match sets, projected onto the retained nodes, are identical —
// minimisation is safe without any schema knowledge.
//
// Minimize returns the reduced pattern and a mapping from original node
// indexes to new ones (-1 for removed nodes). The root and the OrderBy
// node are never removed. Patterns with nothing to remove are returned
// unchanged (same pointer) with an identity mapping.
func Minimize(p *Pattern) (*Pattern, []int) {
	keep := make([]bool, p.N())
	for i := range keep {
		keep[i] = true
	}
	changed := true
	for changed {
		changed = false
		// Try removing larger node indexes first so siblings earlier in
		// document order act as witnesses, giving deterministic output.
		for c := p.N() - 1; c >= 1; c-- {
			if !keep[c] || !removable(p, keep, c) {
				continue
			}
			for _, d := range subtreeOf(p, keep, c) {
				keep[d] = false
			}
			changed = true
		}
	}
	return rebuild(p, keep)
}

// removable reports whether the live subtree under c maps homomorphically
// into the remaining live pattern.
func removable(p *Pattern, keep []bool, c int) bool {
	sub := subtreeOf(p, keep, c)
	for _, d := range sub {
		if d == p.OrderBy {
			return false // the query needs this node's binding order
		}
	}
	inSub := make([]bool, p.N())
	for _, d := range sub {
		inSub[d] = true
	}
	// Candidate images: live nodes outside the subtree.
	var targets []int
	for v := 0; v < p.N(); v++ {
		if keep[v] && !inSub[v] {
			targets = append(targets, v)
		}
	}
	h := make([]int, p.N())
	for i := range h {
		h[i] = -1
	}
	return mapNode(p, keep, inSub, sub, 0, targets, h)
}

// mapNode assigns an image to sub[i] and recurses; sub is in increasing
// index order, so a node's parent within the subtree is already mapped.
func mapNode(p *Pattern, keep, inSub []bool, sub []int, i int, targets []int, h []int) bool {
	if i == len(sub) {
		return true
	}
	x := sub[i]
	for _, w := range targets {
		if !compatible(p, x, w) {
			continue
		}
		// Check x's incoming edge. For the subtree root the edge goes
		// to its (outside) parent; for inner nodes to the mapped image
		// of their pattern parent.
		par := p.Parent[x]
		img := par
		if inSub[par] {
			img = h[par]
		}
		ok := false
		switch p.Axis[x] {
		case Child:
			ok = p.Parent[w] == img && p.Axis[w] == Child
		case Descendant:
			ok = isProperAncestor(p, img, w)
		}
		if !ok {
			continue
		}
		h[x] = w
		if mapNode(p, keep, inSub, sub, i+1, targets, h) {
			return true
		}
		h[x] = -1
	}
	return false
}

// compatible reports whether node w can serve as the image of node x: same
// tag, and w's predicate at least as strong (identical, or x unconstrained).
func compatible(p *Pattern, x, w int) bool {
	nx, nw := p.Nodes[x], p.Nodes[w]
	if nx.Tag != nw.Tag {
		return false
	}
	if nx.Op == CmpNone {
		return true
	}
	return nx.Op == nw.Op && nx.Value == nw.Value
}

// isProperAncestor reports whether a is a proper ancestor of w in the
// pattern tree; any such pattern path implies document-level
// ancestor-descendant containment, whatever the intermediate axes.
func isProperAncestor(p *Pattern, a, w int) bool {
	for v := w; v != 0; {
		v = p.Parent[v]
		if v == a {
			return true
		}
	}
	return false
}

// subtreeOf returns the live nodes of c's subtree in increasing index
// order (c first).
func subtreeOf(p *Pattern, keep []bool, c int) []int {
	out := []int{c}
	for v := c + 1; v < p.N(); v++ {
		if !keep[v] {
			continue
		}
		if isProperAncestor(p, c, v) || v == c {
			out = append(out, v)
		}
	}
	return out
}

// rebuild compacts the kept nodes into a fresh pattern.
func rebuild(p *Pattern, keep []bool) (*Pattern, []int) {
	mapping := make([]int, p.N())
	all := true
	next := 0
	for i := range mapping {
		if keep[i] {
			mapping[i] = next
			next++
		} else {
			mapping[i] = -1
			all = false
		}
	}
	if all {
		return p, mapping
	}
	out := &Pattern{OrderBy: NoNode}
	for i := 0; i < p.N(); i++ {
		if !keep[i] {
			continue
		}
		out.Nodes = append(out.Nodes, p.Nodes[i])
		if i == 0 {
			out.Parent = append(out.Parent, NoNode)
		} else {
			out.Parent = append(out.Parent, mapping[p.Parent[i]])
		}
		out.Axis = append(out.Axis, p.Axis[i])
	}
	if p.OrderBy != NoNode {
		out.OrderBy = mapping[p.OrderBy]
	}
	return out, mapping
}
