package replica

import (
	"sync/atomic"
	"time"
)

// latBuckets is the latency histogram resolution: bucket i covers latencies
// up to 1µs·2^i, mirroring the metrics registry's exponential layout.
const latBuckets = 32

func latBound(i int) time.Duration { return time.Microsecond << uint(i) }

// Latency is a lock-free exponential latency histogram. The corpus feeds it
// every successful shard execution and reads a percentile back as the
// hedged-read delay, so the hedge fires only for requests already slower
// than the chosen quantile of their recent peers.
type Latency struct {
	buckets [latBuckets]atomic.Uint64
}

// Observe folds one latency into the histogram.
func (l *Latency) Observe(d time.Duration) {
	i := 0
	for i < latBuckets-1 && d > latBound(i) {
		i++
	}
	l.buckets[i].Add(1)
}

// Quantile returns the upper bound of the bucket holding the q-th
// observation (an upper estimate within 2×), or 0 when nothing has been
// observed yet.
func (l *Latency) Quantile(q float64) time.Duration {
	var counts [latBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = l.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > rank {
			return latBound(i)
		}
	}
	return latBound(latBuckets - 1)
}
