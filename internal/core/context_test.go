package core

import (
	"context"
	"errors"
	"testing"
)

// TestOptimizeCancelled: a pre-cancelled context must abort every method
// before (or during) its search, returning the context's error.
func TestOptimizeCancelled(t *testing.T) {
	pat := figure1Pattern()
	est := skewedEstimator(t, pat, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Method{MethodDP, MethodDPP, MethodDPPNoLookahead, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy} {
		if _, err := Optimize(ctx, pat, est, testModel(), m, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", m, err)
		}
	}
}

// TestOptimizeNilContext: nil is treated as context.Background().
func TestOptimizeNilContext(t *testing.T) {
	pat := figure1Pattern()
	est := skewedEstimator(t, pat, 1)
	var nilCtx context.Context
	r, err := Optimize(nilCtx, pat, est, testModel(), MethodDPP, nil)
	if err != nil || r.Plan == nil {
		t.Fatalf("nil ctx: %v, %v", r, err)
	}
}

// TestOptimizeCancelMidSearch: cancelling during the search (simulated by a
// context that expires after a fixed number of Err polls) stops DP and DPP
// partway and surfaces the error. This exercises the in-loop polls rather
// than the upfront check.
func TestOptimizeCancelMidSearch(t *testing.T) {
	pat := chainPattern(10) // big enough that searches poll many times
	est := skewedEstimator(t, pat, 2)
	for _, m := range []Method{MethodDP, MethodDPP} {
		ctx := &countdownCtx{Context: context.Background(), fuel: 3}
		_, err := Optimize(ctx, pat, est, testModel(), m, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", m, err)
		}
	}
}

// countdownCtx reports Canceled after fuel calls to Err. The first call
// happens in Optimize's upfront check, so fuel >= 2 reaches the search
// loops before expiring.
type countdownCtx struct {
	context.Context
	fuel int
}

func (c *countdownCtx) Err() error {
	if c.fuel > 0 {
		c.fuel--
		return nil
	}
	return context.Canceled
}
