package plan

import (
	"testing"

	"sjos/internal/pattern"
)

// twoSibling builds /a with a parent-child b branch and a descendant c
// branch, inserting the branches in the given order so the two results are
// isomorphic but numbered differently.
func twoSibling(bFirst bool) *pattern.Pattern {
	bld := pattern.NewBuilder("a")
	if bFirst {
		bld.Kid(bld.Root(), "b")
		bld.Desc(bld.Root(), "c")
	} else {
		bld.Desc(bld.Root(), "c")
		bld.Kid(bld.Root(), "b")
	}
	return bld.Pattern()
}

// planFor builds a valid two-join plan for a twoSibling pattern given the
// node indexes of b and c.
func planFor(b, c int) *Node {
	j1 := NewJoin(NewIndexScan(0), NewIndexScan(b), 0, b, pattern.Child, AlgoAnc)
	return NewJoin(j1, NewIndexScan(c), 0, c, pattern.Descendant, AlgoDesc)
}

func TestRemapIdentity(t *testing.T) {
	p := twoSibling(true)
	pl := planFor(1, 2)
	if err := pl.Validate(p, false); err != nil {
		t.Fatalf("base plan invalid: %v", err)
	}
	id := []int{0, 1, 2}
	got := Remap(pl, id)
	if got == pl || got.Left == pl.Left {
		t.Fatal("Remap must deep-copy")
	}
	if got.Format(p) != pl.Format(p) {
		t.Fatalf("identity remap changed the plan:\n%s\nvs\n%s", got.Format(p), pl.Format(p))
	}
}

func TestRemapAcrossRenumbering(t *testing.T) {
	pa := twoSibling(true)  // b=1, c=2
	pb := twoSibling(false) // c=1, b=2
	_, canonA := pattern.Fingerprint(pa)
	fpB, canonB := pattern.Fingerprint(pb)
	fpA, _ := pattern.Fingerprint(pa)
	if fpA != fpB {
		t.Fatal("setup: patterns should be isomorphic")
	}
	// a-numbering -> canonical -> b-numbering.
	invB := pattern.InversePermutation(canonB)
	iso := make([]int, pa.N())
	for u := range iso {
		iso[u] = invB[canonA[u]]
	}
	pl := planFor(1, 2)
	if err := pl.Validate(pa, false); err != nil {
		t.Fatalf("base plan invalid: %v", err)
	}
	remapped := Remap(pl, iso)
	if err := remapped.Validate(pb, false); err != nil {
		t.Fatalf("remapped plan invalid for renumbered pattern: %v\n%s",
			err, remapped.Format(pb))
	}
	if pl.Joins() != remapped.Joins() || pl.Sorts() != remapped.Sorts() {
		t.Fatal("remap changed plan shape")
	}
}
