// Package xquery compiles a small XQuery subset into tree patterns — the
// translation the paper presupposes in §2.1: "The XPath expressions used to
// bind variables in XQuery, along with the conditions in the WHERE clause,
// can be expressed as the matching of a query pattern tree".
//
// Supported form (FLWOR without LET, one RETURN):
//
//		for $m in //manager, $e in $m//employee
//		where $e/salary >= 50000 and $m/department
//		order by $m
//		return $m/name, $e/name
//
//	  - each FOR variable binds to the last step of a path, rooted either
//	    absolutely (//tag/...) or at a previously bound variable,
//	  - WHERE conjuncts are existence tests (a path) or comparisons
//	    (path op literal) — both become pattern branches, with the
//	    comparison attached to the branch's terminal node,
//	  - ORDER BY names a variable or a path from one; the result is ordered
//	    by that node's document position,
//	  - RETURN lists the projected paths.
//
// Identical steps are shared, so the compiled pattern is naturally
// minimal with respect to the query's own redundancy; pattern.Minimize can
// still be applied afterwards (the projection map is maintained).
package xquery

import (
	"fmt"
	"strings"

	"sjos/internal/pattern"
)

// Compiled is the output of Compile: the pattern tree plus the mapping
// back to the query's variables and return items.
type Compiled struct {
	// Pattern is the tree pattern to match.
	Pattern *pattern.Pattern
	// Vars maps variable names to pattern node indexes.
	Vars map[string]int
	// Return lists the pattern nodes projected by the RETURN clause, in
	// clause order.
	Return []int
}

// Compile parses and compiles the query.
func Compile(src string) (*Compiled, error) {
	q, err := parse(src)
	if err != nil {
		return nil, fmt.Errorf("xquery: %w", err)
	}
	return q.compile()
}

// ---- AST ----

type ast struct {
	bindings []binding
	wheres   []condition
	orderBy  *varPath
	returns  []varPath
}

type binding struct {
	name string
	path varPath
}

// varPath is a path rooted at a variable ("" = absolute) followed by steps.
type varPath struct {
	root  string // variable name, or "" for an absolute path
	steps []step
}

type step struct {
	axis pattern.Axis
	tag  string
}

type condition struct {
	path  varPath
	op    pattern.CmpOp
	value string
}

// ---- compiler ----

func (a *ast) compile() (*Compiled, error) {
	c := &compiler{
		vars: make(map[string]int),
		kids: make(map[childKey]int),
	}
	for _, b := range a.bindings {
		node, err := c.addPath(b.path)
		if err != nil {
			return nil, err
		}
		if _, dup := c.vars[b.name]; dup {
			return nil, fmt.Errorf("xquery: duplicate variable $%s", b.name)
		}
		c.vars[b.name] = node
	}
	for _, w := range a.wheres {
		node, err := c.addPath(w.path)
		if err != nil {
			return nil, err
		}
		if w.op != pattern.CmpNone {
			if c.pat.Nodes[node].Op != pattern.CmpNone &&
				(c.pat.Nodes[node].Op != w.op || c.pat.Nodes[node].Value != w.value) {
				return nil, fmt.Errorf("xquery: conflicting predicates on %s", w.path)
			}
			c.pat.Nodes[node].Op = w.op
			c.pat.Nodes[node].Value = w.value
		}
	}
	out := &Compiled{Vars: c.vars}
	for _, r := range a.returns {
		node, err := c.addPath(r)
		if err != nil {
			return nil, err
		}
		out.Return = append(out.Return, node)
	}
	c.pat.OrderBy = pattern.NoNode
	if a.orderBy != nil {
		node, err := c.addPath(*a.orderBy)
		if err != nil {
			return nil, err
		}
		c.pat.OrderBy = node
	}
	pat := c.pat
	if err := pat.Validate(); err != nil {
		return nil, fmt.Errorf("xquery: compiled pattern invalid: %w", err)
	}
	out.Pattern = &pat
	return out, nil
}

type childKey struct {
	parent int
	axis   pattern.Axis
	tag    string
}

type compiler struct {
	pat  pattern.Pattern
	vars map[string]int
	kids map[childKey]int // step sharing
}

// addPath resolves or extends the pattern along the varPath, returning the
// terminal node's index.
func (c *compiler) addPath(p varPath) (int, error) {
	cur := -1
	if p.root != "" {
		node, ok := c.vars[p.root]
		if !ok {
			return 0, fmt.Errorf("xquery: unbound variable $%s", p.root)
		}
		cur = node
	}
	for i, s := range p.steps {
		if cur == -1 && i == 0 {
			// Absolute first step: the pattern root.
			if c.pat.N() == 0 {
				c.pat.Nodes = append(c.pat.Nodes, pattern.Node{Tag: s.tag})
				c.pat.Parent = append(c.pat.Parent, pattern.NoNode)
				c.pat.Axis = append(c.pat.Axis, pattern.Child)
				cur = 0
				continue
			}
			if c.pat.Nodes[0].Tag != s.tag {
				return 0, fmt.Errorf("xquery: second absolute path root %q conflicts with %q — root the path at a variable instead",
					s.tag, c.pat.Nodes[0].Tag)
			}
			cur = 0
			continue
		}
		key := childKey{parent: cur, axis: s.axis, tag: s.tag}
		if existing, ok := c.kids[key]; ok {
			cur = existing
			continue
		}
		c.pat.Nodes = append(c.pat.Nodes, pattern.Node{Tag: s.tag})
		c.pat.Parent = append(c.pat.Parent, cur)
		c.pat.Axis = append(c.pat.Axis, s.axis)
		cur = len(c.pat.Nodes) - 1
		c.kids[key] = cur
	}
	if cur == -1 {
		return 0, fmt.Errorf("xquery: empty path")
	}
	return cur, nil
}

// String renders a varPath for error messages.
func (p varPath) String() string {
	var sb strings.Builder
	if p.root != "" {
		sb.WriteString("$" + p.root)
	}
	for _, s := range p.steps {
		sb.WriteString(s.axis.String())
		sb.WriteString(s.tag)
	}
	return sb.String()
}
