// Package plan defines physical evaluation plans for tree-pattern queries:
// rooted operator trees built from index scans, Stack-Tree structural joins
// and sorts (§2.3 of the paper). Plans are produced by the optimizers in
// internal/core and interpreted by the executor in internal/exec.
package plan

import (
	"fmt"
	"strings"

	"sjos/internal/pattern"
)

// Op is a physical operator kind.
type Op uint8

// Physical operator kinds.
const (
	// OpIndexScan retrieves all candidate nodes for one pattern node via
	// the element-tag index, in document order.
	OpIndexScan Op = iota
	// OpStructuralJoin joins its two inputs on one pattern edge with a
	// Stack-Tree algorithm. Left is the ancestor side, Right the
	// descendant side; both must arrive ordered by their join nodes.
	OpStructuralJoin
	// OpSort materialises its input (Left) and re-orders it by the
	// document position of one pattern node. Sorts are the only blocking
	// operators.
	OpSort
)

// Algo selects the Stack-Tree variant of a structural join.
type Algo uint8

// Stack-Tree join algorithm variants.
const (
	// AlgoDesc is Stack-Tree-Desc: output ordered by the descendant node.
	AlgoDesc Algo = iota
	// AlgoAnc is Stack-Tree-Anc: output ordered by the ancestor node.
	AlgoAnc
)

// String names the algorithm as in the paper.
func (a Algo) String() string {
	if a == AlgoAnc {
		return "STJ-Anc"
	}
	return "STJ-Desc"
}

// Node is one operator in a plan tree.
type Node struct {
	Op Op

	// PatternNode is the pattern node an OpIndexScan feeds.
	PatternNode int
	// ValueIndex marks an OpIndexScan that retrieves its candidates by a
	// value-index probe of the pattern node's predicate instead of a full
	// tag scan + filter (predicate pushdown). Only meaningful on leaves of
	// predicated pattern nodes; the executor falls back to scan+filter if
	// the store cannot serve the probe.
	ValueIndex bool

	// Left and Right are the operator inputs. OpSort uses only Left.
	Left, Right *Node

	// AncNode and DescNode are the pattern nodes joined by an
	// OpStructuralJoin (the edge's upper and lower endpoints).
	AncNode, DescNode int
	// Axis is the structural relationship the join enforces.
	Axis pattern.Axis
	// Algo is the Stack-Tree variant used.
	Algo Algo

	// SortBy is the pattern node an OpSort orders by.
	SortBy int

	// OrderedBy annotates which pattern node's position orders this
	// operator's output.
	OrderedBy int
	// EstCard is the optimizer's estimated output cardinality.
	EstCard float64
	// EstCost is the estimated cumulative cost of the subtree.
	EstCost float64
}

// NewIndexScan returns a leaf scanning candidates for pattern node u.
func NewIndexScan(u int) *Node {
	return &Node{Op: OpIndexScan, PatternNode: u, OrderedBy: u}
}

// NewJoin returns a structural join of left (ancestor side, ordered by anc)
// with right (descendant side, ordered by desc).
func NewJoin(left, right *Node, anc, desc int, ax pattern.Axis, algo Algo) *Node {
	ord := desc
	if algo == AlgoAnc {
		ord = anc
	}
	return &Node{
		Op: OpStructuralJoin, Left: left, Right: right,
		AncNode: anc, DescNode: desc, Axis: ax, Algo: algo, OrderedBy: ord,
	}
}

// NewSort returns a sort of input by pattern node u's position.
func NewSort(input *Node, u int) *Node {
	return &Node{Op: OpSort, Left: input, SortBy: u, OrderedBy: u}
}

// Columns returns the set of pattern nodes bound by this subtree's output,
// as a bitmask (pattern node i -> bit i). Patterns are small (≤ 64 nodes).
func (n *Node) Columns() uint64 {
	switch n.Op {
	case OpIndexScan:
		return 1 << uint(n.PatternNode)
	case OpSort:
		return n.Left.Columns()
	default:
		return n.Left.Columns() | n.Right.Columns()
	}
}

// Joins counts the structural joins in the subtree.
func (n *Node) Joins() int {
	switch n.Op {
	case OpIndexScan:
		return 0
	case OpSort:
		return n.Left.Joins()
	default:
		return 1 + n.Left.Joins() + n.Right.Joins()
	}
}

// Sorts counts the sort operators in the subtree.
func (n *Node) Sorts() int {
	switch n.Op {
	case OpIndexScan:
		return 0
	case OpSort:
		return 1 + n.Left.Sorts()
	default:
		return n.Left.Sorts() + n.Right.Sorts()
	}
}

// FullyPipelined reports whether the plan contains no blocking operator
// (§3.4: fully-pipelined plans are exactly the sort-free plans).
func (n *Node) FullyPipelined() bool { return n.Sorts() == 0 }

// LeftDeep reports whether every join's descendant (right) input is a leaf
// access — the XML analogue of relational left-deep plans (§3.3.2): at most
// one "growing" intermediate result.
func (n *Node) LeftDeep() bool {
	switch n.Op {
	case OpIndexScan:
		return true
	case OpSort:
		return n.Left.LeftDeep()
	default:
		if !leafAccess(n.Left) && !leafAccess(n.Right) {
			return false
		}
		return n.Left.LeftDeep() && n.Right.LeftDeep()
	}
}

// leafAccess reports whether n is an index scan, possibly under sorts.
func leafAccess(n *Node) bool {
	for n.Op == OpSort {
		n = n.Left
	}
	return n.Op == OpIndexScan
}

// Validate checks that the plan is a correct evaluation of pat: every
// pattern node scanned exactly once, every edge joined exactly once with
// matching axis, and every join input ordered by its join node. If
// requireOrder is true, the root output must be ordered by pat.OrderBy
// (when the pattern specifies one).
func (n *Node) Validate(pat *pattern.Pattern, requireOrder bool) error {
	seenEdges := make(map[int]bool)
	if err := n.validate(pat, seenEdges); err != nil {
		return err
	}
	if n.Columns() != fullMask(pat.N()) {
		return fmt.Errorf("plan: covers columns %b, want all %d pattern nodes", n.Columns(), pat.N())
	}
	if len(seenEdges) != pat.NumEdges() {
		return fmt.Errorf("plan: joined %d edges, want %d", len(seenEdges), pat.NumEdges())
	}
	if requireOrder && pat.OrderBy != pattern.NoNode && n.OrderedBy != pat.OrderBy {
		return fmt.Errorf("plan: output ordered by %d, want %d", n.OrderedBy, pat.OrderBy)
	}
	return nil
}

func fullMask(n int) uint64 { return (uint64(1) << uint(n)) - 1 }

func (n *Node) validate(pat *pattern.Pattern, seenEdges map[int]bool) error {
	switch n.Op {
	case OpIndexScan:
		if n.PatternNode < 0 || n.PatternNode >= pat.N() {
			return fmt.Errorf("plan: scan of pattern node %d out of range", n.PatternNode)
		}
		if n.OrderedBy != n.PatternNode {
			return fmt.Errorf("plan: scan of %d claims order by %d", n.PatternNode, n.OrderedBy)
		}
		if n.ValueIndex && pat.Nodes[n.PatternNode].Op == pattern.CmpNone {
			return fmt.Errorf("plan: value-index scan of %d, which has no predicate", n.PatternNode)
		}
		return nil
	case OpSort:
		if err := n.Left.validate(pat, seenEdges); err != nil {
			return err
		}
		if n.Left.Columns()&(1<<uint(n.SortBy)) == 0 {
			return fmt.Errorf("plan: sort by %d, not a column of its input", n.SortBy)
		}
		if n.OrderedBy != n.SortBy {
			return fmt.Errorf("plan: sort by %d claims order by %d", n.SortBy, n.OrderedBy)
		}
		return nil
	case OpStructuralJoin:
		if err := n.Left.validate(pat, seenEdges); err != nil {
			return err
		}
		if err := n.Right.validate(pat, seenEdges); err != nil {
			return err
		}
		edge, ok := pat.EdgeBetween(n.AncNode, n.DescNode)
		if !ok {
			return fmt.Errorf("plan: join on non-edge (%d,%d)", n.AncNode, n.DescNode)
		}
		if pat.Parent[edge] != n.AncNode || edge != n.DescNode {
			return fmt.Errorf("plan: join (%d,%d) has ancestor/descendant swapped", n.AncNode, n.DescNode)
		}
		if seenEdges[edge] {
			return fmt.Errorf("plan: edge %d joined twice", edge)
		}
		seenEdges[edge] = true
		if n.Axis != pat.Axis[edge] {
			return fmt.Errorf("plan: edge %d axis %v, pattern says %v", edge, n.Axis, pat.Axis[edge])
		}
		if n.Left.Columns()&(1<<uint(n.AncNode)) == 0 {
			return fmt.Errorf("plan: ancestor %d not in left input", n.AncNode)
		}
		if n.Right.Columns()&(1<<uint(n.DescNode)) == 0 {
			return fmt.Errorf("plan: descendant %d not in right input", n.DescNode)
		}
		if n.Left.OrderedBy != n.AncNode {
			return fmt.Errorf("plan: left input ordered by %d, join needs %d", n.Left.OrderedBy, n.AncNode)
		}
		if n.Right.OrderedBy != n.DescNode {
			return fmt.Errorf("plan: right input ordered by %d, join needs %d", n.Right.OrderedBy, n.DescNode)
		}
		want := n.DescNode
		if n.Algo == AlgoAnc {
			want = n.AncNode
		}
		if n.OrderedBy != want {
			return fmt.Errorf("plan: %v output claims order by %d, want %d", n.Algo, n.OrderedBy, want)
		}
		return nil
	default:
		return fmt.Errorf("plan: unknown operator %d", n.Op)
	}
}

// Format renders the plan as an indented tree using the pattern's tags for
// readability.
func (n *Node) Format(pat *pattern.Pattern) string {
	var sb strings.Builder
	n.format(pat, &sb, 0)
	return sb.String()
}

func (n *Node) format(pat *pattern.Pattern, sb *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	tag := func(u int) string {
		if u >= 0 && u < pat.N() {
			return fmt.Sprintf("%s($%d)", pat.Nodes[u].Tag, u)
		}
		return fmt.Sprintf("$%d", u)
	}
	switch n.Op {
	case OpIndexScan:
		name := "IndexScan"
		if n.ValueIndex {
			name = "ValueIndexScan"
		}
		fmt.Fprintf(sb, "%s%s %s", indent, name, tag(n.PatternNode))
	case OpSort:
		fmt.Fprintf(sb, "%sSort by %s", indent, tag(n.SortBy))
	case OpStructuralJoin:
		fmt.Fprintf(sb, "%s%s %s %s %s", indent, n.Algo, tag(n.AncNode), n.Axis, tag(n.DescNode))
	}
	if n.EstCard > 0 || n.EstCost > 0 {
		fmt.Fprintf(sb, "  [card≈%.0f cost≈%.0f]", n.EstCard, n.EstCost)
	}
	sb.WriteString("\n")
	if n.Left != nil {
		n.Left.format(pat, sb, depth+1)
	}
	if n.Right != nil {
		n.Right.format(pat, sb, depth+1)
	}
}
