package experiments

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"time"

	"sjos"
)

// CacheBenchRow compares one benchmark query's cold optimize phase (plan
// cache bypassed) against its warm phase (plan served from the cache).
type CacheBenchRow struct {
	Query   string
	Method  sjos.Method
	Cold    time.Duration // best cold optimize time over the rounds
	Warm    time.Duration // best warm (cache-hit) optimize time
	Speedup float64
	Matches int
}

// CacheBench measures the plan cache's effect on the optimize phase for
// all eight benchmark queries: per query the cold time is the best
// NoCache optimize over `rounds` runs, the warm time the best cache-hit
// optimize after priming. Cold and warm runs must produce byte-identical
// matches; a divergence is an error.
func CacheBench(m sjos.Method, rounds int) ([]CacheBenchRow, error) {
	if rounds < 1 {
		rounds = 3
	}
	var rows []CacheBenchRow
	for _, q := range Queries() {
		db, err := Dataset(q.Dataset, 1)
		if err != nil {
			return nil, err
		}
		var coldRes *sjos.QueryResult
		cold := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			r, err := db.QueryContext(context.Background(), q.Source, sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: m, NoCache: true}})
			if err != nil {
				return nil, fmt.Errorf("%s cold: %w", q.ID, err)
			}
			if r.OptimizeTime < cold {
				cold, coldRes = r.OptimizeTime, r
			}
		}
		if _, err := db.QueryContext(context.Background(), q.Source, sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: m}}); err != nil {
			return nil, fmt.Errorf("%s prime: %w", q.ID, err)
		}
		var warmRes *sjos.QueryResult
		warm := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			r, err := db.QueryContext(context.Background(), q.Source, sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: m}})
			if err != nil {
				return nil, fmt.Errorf("%s warm: %w", q.ID, err)
			}
			if !r.CachedPlan {
				return nil, fmt.Errorf("%s: warm run missed the plan cache", q.ID)
			}
			if r.OptimizeTime < warm {
				warm, warmRes = r.OptimizeTime, r
			}
		}
		if !reflect.DeepEqual(coldRes.Matches, warmRes.Matches) {
			return nil, fmt.Errorf("%s: warm matches differ from cold matches", q.ID)
		}
		speedup := 0.0
		if warm > 0 {
			speedup = float64(cold) / float64(warm)
		}
		rows = append(rows, CacheBenchRow{
			Query: q.ID, Method: m,
			Cold: cold, Warm: warm, Speedup: speedup,
			Matches: len(warmRes.Matches),
		})
	}
	return rows, nil
}

// RenderCacheBench formats the cold/warm comparison as a table.
func RenderCacheBench(rows []CacheBenchRow) string {
	var sb strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&sb, "Plan cache: cold vs warm optimize phase (%s)\n", rows[0].Method)
	}
	fmt.Fprintf(&sb, "%-14s %12s %12s %9s %9s\n", "Query", "cold opt", "warm opt", "speedup", "matches")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %12v %12v %8.1fx %9d\n",
			r.Query, r.Cold, r.Warm, r.Speedup, r.Matches)
	}
	return sb.String()
}
