package xmltree

import (
	"fmt"
	"sort"

	"sjos/internal/intern"
)

// NodeID identifies an element node within a Document. IDs are dense and
// assigned in document (pre-order) order, so sorting NodeIDs sorts by the
// nodes' Start positions.
type NodeID uint32

// InvalidNode is a sentinel NodeID that never refers to a real node.
const InvalidNode NodeID = ^NodeID(0)

// Pos is a position in the document's pre-order numbering.
type Pos uint32

// TagID is a dictionary-encoded element tag name.
type TagID uint32

// Document is an XML document stored column-wise. All per-node attributes
// live in parallel slices indexed by NodeID, which keeps the hot join loops
// cache-friendly and lets the storage layer persist nodes as fixed-width
// records.
//
// A Document is immutable once built (see Builder) and safe for concurrent
// readers.
type Document struct {
	start  []Pos
	end    []Pos
	level  []uint16
	tag    []TagID
	parent []NodeID // InvalidNode for the root
	value  []string // optional text/attribute payload, "" if none

	tags    []string         // TagID -> name
	tagByNm map[string]TagID // name -> TagID
	byTag   [][]NodeID       // TagID -> nodes in document order

	// maxPos is the largest position assigned in the document. It is kept
	// explicitly rather than derived from end[0] because an appendable
	// forest's root carries the forestRootEnd sentinel (see forest.go):
	// member appends must not rewrite the shared root record under
	// concurrent readers, so the root region is "everything" and the true
	// position high-water mark lives here.
	maxPos Pos

	intern intern.Stats // value intern-table behaviour during build
}

// InternStats reports the value intern table's behaviour during document
// construction: distinct values, hit/miss counts and bytes deduplicated.
func (d *Document) InternStats() intern.Stats { return d.intern }

// NumNodes returns the number of element nodes in the document.
func (d *Document) NumNodes() int { return len(d.start) }

// Start returns the pre-order start position of n.
func (d *Document) Start(n NodeID) Pos { return d.start[n] }

// End returns the region end position of n.
func (d *Document) End(n NodeID) Pos { return d.end[n] }

// Level returns the depth of n; the document root has level 0.
func (d *Document) Level(n NodeID) uint16 { return d.level[n] }

// Tag returns the dictionary-encoded tag of n.
func (d *Document) Tag(n NodeID) TagID { return d.tag[n] }

// Parent returns the parent of n, or InvalidNode for the root.
func (d *Document) Parent(n NodeID) NodeID { return d.parent[n] }

// Value returns the text payload associated with n ("" if none).
func (d *Document) Value(n NodeID) string { return d.value[n] }

// TagName returns the string name for a TagID.
func (d *Document) TagName(t TagID) string { return d.tags[t] }

// NumTags returns the number of distinct element tags.
func (d *Document) NumTags() int { return len(d.tags) }

// LookupTag resolves a tag name to its TagID. The second result reports
// whether the tag occurs in the document.
func (d *Document) LookupTag(name string) (TagID, bool) {
	t, ok := d.tagByNm[name]
	return t, ok
}

// NodesWithTag returns all nodes with the given tag, in document order
// (nil for a tag that does not occur). The returned slice is shared and
// must not be modified.
func (d *Document) NodesWithTag(t TagID) []NodeID {
	if int(t) >= len(d.byTag) {
		return nil
	}
	return d.byTag[t]
}

// TagCount returns the number of nodes carrying tag t.
func (d *Document) TagCount(t TagID) int { return len(d.NodesWithTag(t)) }

// IsAncestor reports whether a is a proper ancestor of v.
func (d *Document) IsAncestor(a, v NodeID) bool {
	return d.start[a] < d.start[v] && d.end[v] < d.end[a]
}

// IsParent reports whether a is the parent of v.
func (d *Document) IsParent(a, v NodeID) bool {
	return d.IsAncestor(a, v) && d.level[a]+1 == d.level[v]
}

// Contains reports whether the region of a contains position p.
func (d *Document) Contains(a NodeID, p Pos) bool {
	return d.start[a] < p && p < d.end[a]
}

// Root returns the document root node. Documents built by Builder always
// have node 0 as the root.
func (d *Document) Root() NodeID { return 0 }

// Children returns the child nodes of n in document order. It runs in time
// proportional to the subtree size of n and is intended for tests, examples
// and tools, not for hot paths.
func (d *Document) Children(n NodeID) []NodeID {
	var out []NodeID
	for c := n + 1; int(c) < len(d.start) && d.start[c] < d.end[n]; c++ {
		if d.parent[c] == n {
			out = append(out, c)
		}
	}
	return out
}

// MaxPos returns the largest position assigned in the document; positions
// range over [0, MaxPos].
func (d *Document) MaxPos() Pos {
	if d.maxPos == 0 && len(d.end) > 0 && d.end[0] != forestRootEnd {
		// Documents assembled before the explicit field existed (or by
		// hand in tests) carry the high-water mark in the root's end.
		return d.end[0]
	}
	return d.maxPos
}

// Validate checks the structural invariants of the region encoding. It is
// used by tests and by the data generators as a self-check, and returns the
// first violation found.
func (d *Document) Validate() error {
	n := d.NumNodes()
	if n == 0 {
		return nil
	}
	for i := 0; i < n; i++ {
		id := NodeID(i)
		if d.start[id] >= d.end[id] {
			return fmt.Errorf("node %d: start %d >= end %d", id, d.start[id], d.end[id])
		}
		if i > 0 && d.start[id] <= d.start[id-1] {
			return fmt.Errorf("node %d: start positions not strictly increasing", id)
		}
		p := d.parent[id]
		if p == InvalidNode {
			if id != 0 {
				return fmt.Errorf("node %d: only the root may lack a parent", id)
			}
			if d.level[id] != 0 {
				return fmt.Errorf("root has level %d, want 0", d.level[id])
			}
			continue
		}
		if !d.IsAncestor(p, id) {
			return fmt.Errorf("node %d: region not contained in parent %d", id, p)
		}
		if d.level[p]+1 != d.level[id] {
			return fmt.Errorf("node %d: level %d, parent level %d", id, d.level[id], d.level[p])
		}
	}
	for t, nodes := range d.byTag {
		if !sort.SliceIsSorted(nodes, func(i, j int) bool { return nodes[i] < nodes[j] }) {
			return fmt.Errorf("tag %q: postings not sorted", d.tags[t])
		}
		for _, nd := range nodes {
			if d.tag[nd] != TagID(t) {
				return fmt.Errorf("tag %q: posting %d has tag %q", d.tags[t], nd, d.tags[d.tag[nd]])
			}
		}
	}
	return nil
}
