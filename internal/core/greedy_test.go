package core

import (
	"strings"
	"testing"

	"sjos/internal/pattern"
)

// TestGreedyPlansAreSortFreeAndAboveOptimal: greedy builds FP-style
// pipelined plans, so they must contain no sorts and can never beat the
// exhaustive DP optimum.
func TestGreedyPlansAreSortFreeAndAboveOptimal(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("//a//b"),
		pattern.MustParse("//a/b//c"),
		pattern.MustParse("//a[b][c]"),
		pattern.MustParse("//a[.//b/c]//d"),
		figure1Pattern(),
		pattern.MustParse("//a#[.//b/c]//d"),
		pattern.MustParse("//a[b/c#]//d"),
	}
	for pi, pat := range pats {
		for seed := int64(0); seed < 10; seed++ {
			est := skewedEstimator(t, pat, 555+100*int64(pi)+seed)
			g, err := Greedy(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if !g.Plan.FullyPipelined() {
				t.Fatalf("pattern %d: greedy produced sorts:\n%s", pi, g.Plan.Format(pat))
			}
			if err := g.Plan.Validate(pat, true); err != nil {
				t.Fatalf("pattern %d: invalid plan: %v", pi, err)
			}
			dp, err := DP(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if g.Cost < dp.Cost-1e-6*dp.Cost {
				t.Errorf("pattern %d seed %d: greedy cost %v below optimum %v",
					pi, seed, g.Cost, dp.Cost)
			}
		}
	}
}

// TestGreedySearchEffortConstant: greedy costs exactly one plan regardless
// of pattern size — the point of skipping the search entirely.
func TestGreedySearchEffortConstant(t *testing.T) {
	for _, src := range []string{"//a//b", "//a[.//b/c]//d", "//manager[.//employee/name]//manager/department/name"} {
		pat := pattern.MustParse(src)
		est := skewedEstimator(t, pat, 7)
		g, err := Greedy(pat, est, testModel())
		if err != nil {
			t.Fatal(err)
		}
		if got, want := g.Counters.PlansConsidered, pat.NumEdges(); got != want {
			t.Errorf("%s: PlansConsidered = %d, want %d (one join decision per edge)", src, got, want)
		}
		dp, err := DP(pat, est, testModel())
		if err != nil {
			t.Fatal(err)
		}
		if pat.NumEdges() > 1 && g.Counters.PlansConsidered >= dp.Counters.PlansConsidered {
			t.Errorf("%s: greedy considered %d plans, DP %d — greedy should be far below",
				src, g.Counters.PlansConsidered, dp.Counters.PlansConsidered)
		}
	}
}

// TestGreedyJoinsMostSelectiveFirst: the child with the smallest postings
// list must be the first join under the root, pushing the tight binding to
// the bottom of the pipeline.
func TestGreedyJoinsMostSelectiveFirst(t *testing.T) {
	pat := pattern.MustParse("//a[b][c]")
	est, err := NewManualEstimator(pat,
		[]float64{10000, 5, 8000},
		[]float64{0, 0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Greedy(pat, est, testModel())
	if err != nil {
		t.Fatal(err)
	}
	// Free output order: the plan is rooted at the pattern root (the final,
	// flexible join may order its output by either endpoint), and the
	// 5-posting leaf (node 1) must join before the 8000-posting one.
	top := g.Plan
	if top.OrderedBy != 0 && top.OrderedBy != 2 {
		t.Fatalf("plan ordered by %d, want a final-join endpoint\n%s", top.OrderedBy, top.Format(pat))
	}
	if top.DescNode != 2 || top.Left.DescNode != 1 {
		t.Errorf("join order wrong: want node 1 (smallest postings) joined first, node 2 last\n%s",
			top.Format(pat))
	}
}

// TestGreedyEmptyLeafTerminatesEarly: a zero-postings leaf makes the whole
// result provably empty; the plan must still be valid, the empty leaf must
// join first (score 0 sorts first), and the remaining children attach in
// pattern order — ranking has terminated.
func TestGreedyEmptyLeafTerminatesEarly(t *testing.T) {
	pat := pattern.MustParse("//a[b][c][d]")
	est, err := NewManualEstimator(pat,
		[]float64{1000, 2000, 0, 3000},
		[]float64{0, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Greedy(pat, est, testModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Plan.Validate(pat, true); err != nil {
		t.Fatalf("invalid plan: %v\n%s", err, g.Plan.Format(pat))
	}
	// Expected shape: ((a ⋈ c) ⋈ b) ⋈ d — the empty node kills the
	// intermediate in the very first join, then pattern order.
	top := g.Plan
	if top.DescNode != 3 || top.Left.DescNode != 1 || top.Left.Left.DescNode != 2 {
		t.Errorf("want empty node 2 joined first, then nodes 1, 3 in pattern order\n%s",
			top.Format(pat))
	}
}

// TestParseMethodFlexible: the satellite contract — case-insensitive
// parsing, greedy shorthands, and an error message that enumerates every
// valid name.
func TestParseMethodFlexible(t *testing.T) {
	cases := map[string]Method{
		"dp":      MethodDP,
		"DPP":     MethodDPP,
		"dpp'":    MethodDPPNoLookahead,
		"dpap-eb": MethodDPAPEB,
		"DPAP-ld": MethodDPAPLD,
		"fp":      MethodFP,
		"Greedy":  MethodGreedy,
		"greedy":  MethodGreedy,
		"GREEDY":  MethodGreedy,
		"g":       MethodGreedy,
	}
	for in, want := range cases {
		got, err := ParseMethod(in)
		if err != nil || got != want {
			t.Errorf("ParseMethod(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	_, err := ParseMethod("quantum")
	if err == nil {
		t.Fatal("ParseMethod accepted garbage")
	}
	for _, name := range MethodNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention valid method %q", err, name)
		}
	}
	if len(MethodNames()) != 7 {
		t.Errorf("MethodNames() = %v, want 7 names", MethodNames())
	}
}
