package main

import (
	"os"
	"strings"
	"testing"

	"sjos/internal/experiments"
)

func TestPrintCensus(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "census")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := printCensus(f); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, q := range experiments.Queries() {
		if !strings.Contains(out, q.ID) {
			t.Errorf("census missing %s:\n%s", q.ID, out)
		}
	}
	if !strings.Contains(out, "deadends") {
		t.Errorf("census header missing:\n%s", out)
	}
}
