package loadgen

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunAccounting(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(Config{Rate: 2000, Duration: 100 * time.Millisecond, Workers: 4, MaxOutstanding: 8, Seed: 1},
		func() error {
			calls.Add(1)
			time.Sleep(time.Millisecond)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Started == 0 || res.Completed == 0 {
		t.Fatalf("no work ran: %+v", res)
	}
	if res.Offered != res.Started+res.Shed {
		t.Fatalf("offered %d != started %d + shed %d", res.Offered, res.Started, res.Shed)
	}
	if res.Completed+res.Errors != res.Started {
		t.Fatalf("completed %d + errors %d != started %d", res.Completed, res.Errors, res.Started)
	}
	if int(calls.Load()) != res.Started {
		t.Fatalf("workload ran %d times, started %d", calls.Load(), res.Started)
	}
	// 4 workers at 1 ms service time serve ~4000/s; offering 2000/s with
	// an 8-deep queue must shed only under scheduling jitter, and the
	// latency floor is the service time.
	if res.P50 < time.Millisecond {
		t.Fatalf("p50 %v below the service time", res.P50)
	}
	if res.P50 > res.P95 || res.P95 > res.P99 || res.P99 > res.Max {
		t.Fatalf("quantiles out of order: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput %v", res.Throughput)
	}
}

func TestRunShedsWhenSaturated(t *testing.T) {
	// One worker at 5 ms per request serves 200/s; offering 2000/s with a
	// 2-deep queue must shed most arrivals rather than queue unboundedly.
	res, err := Run(Config{Rate: 2000, Duration: 80 * time.Millisecond, Workers: 1, MaxOutstanding: 2, Seed: 2},
		func() error { time.Sleep(5 * time.Millisecond); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("saturated run shed nothing: %+v", res)
	}
	if res.Started > res.Offered/2 {
		t.Fatalf("started %d of %d offered — queue bound not enforced", res.Started, res.Offered)
	}
}

func TestRunCountsErrors(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run(Config{Rate: 1000, Duration: 50 * time.Millisecond, Workers: 2, Seed: 3},
		func() error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Started || res.Completed != 0 {
		t.Fatalf("all calls failed but accounting says %+v", res)
	}
}

func TestRunValidates(t *testing.T) {
	if _, err := Run(Config{Rate: 0, Duration: time.Second}, func() error { return nil }); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(Config{Rate: 1, Duration: 0}, func() error { return nil }); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Run(Config{Rate: 1, Duration: time.Second}, nil); err == nil {
		t.Fatal("nil workload accepted")
	}
}
