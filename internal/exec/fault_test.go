package exec

import (
	"errors"
	"math/rand"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// faultFile injects a read failure after a fixed number of physical reads,
// exercising the executor's error propagation paths end to end.
type faultFile struct {
	inner     storage.PageFile
	failAfter int
	reads     int
}

var errInjected = errors.New("injected page-read failure")

func (f *faultFile) ReadPage(id storage.PageID, dst *storage.Page) error {
	f.reads++
	if f.reads > f.failAfter {
		return errInjected
	}
	return f.inner.ReadPage(id, dst)
}

func (f *faultFile) WritePage(id storage.PageID, src *storage.Page) error {
	return f.inner.WritePage(id, src)
}

func (f *faultFile) NumPages() int { return f.inner.NumPages() }

// faultyStore builds a store whose page file starts failing after
// failAfter reads. The buffer pool is sized at 1 frame so almost every
// access is a physical read.
func faultyStore(t *testing.T, doc *xmltree.Document, failAfter int) *storage.Store {
	t.Helper()
	ff := &faultFile{inner: storage.NewMemFile(), failAfter: 1 << 30}
	st, err := storage.BuildStoreOn(ff, doc, 1)
	if err != nil {
		t.Fatal(err)
	}
	ff.failAfter = failAfter
	ff.reads = 0
	return st
}

func TestScanPropagatesStorageErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	doc := xmltree.RandomDocument(rng, 2000, []string{"a", "b"})
	st := faultyStore(t, doc, 3)
	pat := pattern.MustParse("//a")
	ctx := &Context{Doc: doc, Store: st}
	_, err := Drain(ctx, NewIndexScan(pat, 0))
	if !errors.Is(err, errInjected) {
		t.Fatalf("scan error = %v, want injected failure", err)
	}
}

func TestJoinPropagatesStorageErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	doc := xmltree.RandomDocument(rng, 2000, []string{"a", "b"})
	pat := pattern.MustParse("//a//b")
	for _, algo := range []plan.Algo{plan.AlgoDesc, plan.AlgoAnc} {
		st := faultyStore(t, doc, 10)
		j, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1),
			0, 1, pattern.Descendant, algo)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &Context{Doc: doc, Store: st}
		if _, err := Drain(ctx, j); !errors.Is(err, errInjected) {
			t.Fatalf("%v: error = %v, want injected failure", algo, err)
		}
	}
}

func TestSortPropagatesStorageErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	doc := xmltree.RandomDocument(rng, 2000, []string{"a", "b"})
	st := faultyStore(t, doc, 5)
	pat := pattern.MustParse("//a//b")
	j, _ := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1),
		0, 1, pattern.Descendant, plan.AlgoDesc)
	s, err := NewSort(j, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Doc: doc, Store: st}
	if _, err := Drain(ctx, s); !errors.Is(err, errInjected) {
		t.Fatalf("sort error = %v, want injected failure", err)
	}
}

// TestRunSurvivesZeroFailures double-checks the fault harness itself: with
// the trigger beyond the workload's read count, execution succeeds.
func TestRunSurvivesZeroFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doc := xmltree.RandomDocument(rng, 500, []string{"a", "b"})
	st := faultyStore(t, doc, 1<<30)
	pat := pattern.MustParse("//a//b")
	j, _ := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1),
		0, 1, pattern.Descendant, plan.AlgoDesc)
	ctx := &Context{Doc: doc, Store: st}
	got, err := Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceMatches(doc, pat)
	if len(got) != len(want) {
		t.Fatalf("fault-harness store returned %d matches, want %d", len(got), len(want))
	}
}
