// Package pattern defines query pattern trees — the tree-structured query
// representation of §2.1 of the paper (the tree-pattern core of TAX/XQuery
// path expressions) — and a small XPath-like parser for building them.
//
// A pattern is a rooted node-labelled tree. Each node carries an element tag
// predicate (and optionally a value predicate); each edge is either a
// parent-child edge (XPath "/") or an ancestor-descendant edge ("//", the
// paper's "*" edge label). A match binds every pattern node to a document
// node so that all predicates and all structural edge relationships hold.
package pattern

import (
	"errors"
	"fmt"
	"strings"
)

// Axis is the structural relationship an edge requires.
type Axis uint8

const (
	// Child requires the parent-child relationship (XPath "/").
	Child Axis = iota
	// Descendant requires the ancestor-descendant relationship ("//").
	Descendant
)

// String returns the XPath spelling of the axis.
func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// CmpOp is a comparison operator in a value predicate.
type CmpOp uint8

// Comparison operators for value predicates.
const (
	CmpNone CmpOp = iota // no value predicate
	CmpEq
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpContains
)

var cmpNames = map[CmpOp]string{
	CmpEq: "=", CmpNe: "!=", CmpLt: "<", CmpLe: "<=",
	CmpGt: ">", CmpGe: ">=", CmpContains: "~",
}

// String returns the operator's surface syntax.
func (op CmpOp) String() string { return cmpNames[op] }

// NoNode marks the absence of a node reference (e.g. Pattern.OrderBy when
// the query imposes no output order).
const NoNode = -1

// Node is one pattern tree node.
type Node struct {
	// Tag is the element tag the node must match.
	Tag string
	// Op/Value form an optional predicate on the matched element's text
	// value; Op == CmpNone means tag-only.
	Op    CmpOp
	Value string
}

// Pattern is a rooted pattern tree. Node 0 is the root. Parent[i] and
// Axis[i] describe the edge into node i (Parent[0] == NoNode). Edges are
// conventionally identified by their lower endpoint, so edge i (for i ≥ 1)
// is (Parent[i] -> i); a pattern with n nodes has n-1 edges.
type Pattern struct {
	Nodes  []Node
	Parent []int
	Axis   []Axis
	// OrderBy is the pattern node by whose document position the final
	// result must be ordered, or NoNode when the query leaves the order
	// free.
	OrderBy int
}

// N returns the number of pattern nodes.
func (p *Pattern) N() int { return len(p.Nodes) }

// NumEdges returns the number of edges (N()-1 for a well-formed pattern).
func (p *Pattern) NumEdges() int { return len(p.Nodes) - 1 }

// Children returns the child node indexes of node u.
func (p *Pattern) Children(u int) []int {
	var out []int
	for v := 1; v < len(p.Parent); v++ {
		if p.Parent[v] == u {
			out = append(out, v)
		}
	}
	return out
}

// Neighbors returns all nodes adjacent to u (parent and children).
func (p *Pattern) Neighbors(u int) []int {
	var out []int
	if u != 0 && p.Parent[u] != NoNode {
		out = append(out, p.Parent[u])
	}
	return append(out, p.Children(u)...)
}

// EdgeBetween returns the edge id connecting u and v (the lower endpoint's
// index) and whether such an edge exists.
func (p *Pattern) EdgeBetween(u, v int) (int, bool) {
	if u != 0 && p.Parent[u] == v {
		return u, true
	}
	if v != 0 && p.Parent[v] == u {
		return v, true
	}
	return 0, false
}

// Validate checks structural well-formedness: parent links form a tree
// rooted at node 0 with edges pointing from lower-numbered ancestors.
func (p *Pattern) Validate() error {
	n := p.N()
	if n == 0 {
		return errors.New("pattern: empty")
	}
	if len(p.Parent) != n || len(p.Axis) != n {
		return errors.New("pattern: Nodes/Parent/Axis length mismatch")
	}
	if p.Parent[0] != NoNode {
		return errors.New("pattern: root must have Parent == NoNode")
	}
	for i := 1; i < n; i++ {
		if p.Parent[i] < 0 || p.Parent[i] >= i {
			return fmt.Errorf("pattern: node %d has parent %d (want 0..%d)", i, p.Parent[i], i-1)
		}
	}
	if p.OrderBy != NoNode && (p.OrderBy < 0 || p.OrderBy >= n) {
		return fmt.Errorf("pattern: OrderBy %d out of range", p.OrderBy)
	}
	for i, nd := range p.Nodes {
		if nd.Tag == "" {
			return fmt.Errorf("pattern: node %d has empty tag", i)
		}
	}
	return nil
}

// String renders the pattern in the parser's syntax (a canonical XPath-like
// form), which round-trips through Parse.
func (p *Pattern) String() string {
	var sb strings.Builder
	p.render(&sb, 0, true)
	return sb.String()
}

func (p *Pattern) render(sb *strings.Builder, u int, isRoot bool) {
	if isRoot {
		sb.WriteString("/")
	} else {
		sb.WriteString(p.Axis[u].String())
	}
	sb.WriteString(p.Nodes[u].Tag)
	if p.OrderBy == u {
		sb.WriteString("#")
	}
	if p.Nodes[u].Op != CmpNone {
		fmt.Fprintf(sb, "[. %s %q]", p.Nodes[u].Op, p.Nodes[u].Value)
	}
	var kids []int
	for _, c := range p.Children(u) {
		if strings.HasPrefix(p.Nodes[c].Tag, "@") {
			// Attribute pseudo-nodes use the [@name op "v"] form.
			sb.WriteString("[")
			sb.WriteString(p.Nodes[c].Tag)
			if p.Nodes[c].Op != CmpNone {
				fmt.Fprintf(sb, " %s %q", p.Nodes[c].Op, p.Nodes[c].Value)
			}
			sb.WriteString("]")
			continue
		}
		kids = append(kids, c)
	}
	for i, c := range kids {
		last := i == len(kids)-1
		if last {
			p.render(sb, c, false)
		} else {
			sb.WriteString("[")
			p.render(sb, c, false)
			sb.WriteString("]")
		}
	}
}

// A BuilderNode is returned by Builder methods to allow chaining children.
type BuilderNode int

// Builder constructs patterns programmatically.
//
//	b := pattern.NewBuilder("manager")
//	emp := b.Desc(b.Root(), "employee")
//	b.Kid(emp, "name")
//	p := b.Pattern()
type Builder struct{ p Pattern }

// NewBuilder starts a pattern whose root matches tag.
func NewBuilder(rootTag string) *Builder {
	return &Builder{p: Pattern{
		Nodes:   []Node{{Tag: rootTag}},
		Parent:  []int{NoNode},
		Axis:    []Axis{Child},
		OrderBy: NoNode,
	}}
}

// Root returns the root node handle.
func (b *Builder) Root() BuilderNode { return 0 }

// Kid adds a parent-child edge from u to a new node matching tag.
func (b *Builder) Kid(u BuilderNode, tag string) BuilderNode {
	return b.add(u, tag, Child)
}

// Desc adds an ancestor-descendant edge from u to a new node matching tag.
func (b *Builder) Desc(u BuilderNode, tag string) BuilderNode {
	return b.add(u, tag, Descendant)
}

func (b *Builder) add(u BuilderNode, tag string, ax Axis) BuilderNode {
	b.p.Nodes = append(b.p.Nodes, Node{Tag: tag})
	b.p.Parent = append(b.p.Parent, int(u))
	b.p.Axis = append(b.p.Axis, ax)
	return BuilderNode(len(b.p.Nodes) - 1)
}

// Where attaches a value predicate to node u.
func (b *Builder) Where(u BuilderNode, op CmpOp, value string) *Builder {
	b.p.Nodes[u].Op = op
	b.p.Nodes[u].Value = value
	return b
}

// OrderBy requires the final result to be ordered by node u's position.
func (b *Builder) OrderBy(u BuilderNode) *Builder {
	b.p.OrderBy = int(u)
	return b
}

// Pattern returns the built pattern (a copy safe to retain).
func (b *Builder) Pattern() *Pattern {
	cp := Pattern{
		Nodes:   append([]Node(nil), b.p.Nodes...),
		Parent:  append([]int(nil), b.p.Parent...),
		Axis:    append([]Axis(nil), b.p.Axis...),
		OrderBy: b.p.OrderBy,
	}
	return &cp
}
