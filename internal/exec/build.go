package exec

import (
	"fmt"
	"sort"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/xmltree"
)

// Build compiles a physical plan tree into an operator tree ready to Open.
// The plan should have passed plan.Validate; Build still reports structural
// problems it encounters rather than mis-executing.
func Build(pat *pattern.Pattern, n *plan.Node) (Operator, error) {
	return buildWrapped(pat, n, nil)
}

// wrapFn decorates one compiled operator; the tracing and analysis layers
// use it to interpose instrumentation around every node of the tree.
type wrapFn func(n *plan.Node, op Operator) Operator

// buildWrapped is the single plan-to-operator compiler: it builds the tree
// bottom-up and, when wrap is non-nil, wraps every operator (children
// included) with it.
func buildWrapped(pat *pattern.Pattern, n *plan.Node, wrap wrapFn) (Operator, error) {
	var op Operator
	switch n.Op {
	case plan.OpIndexScan:
		var err error
		op, err = buildLeaf(pat, n)
		if err != nil {
			return nil, err
		}
	case plan.OpSort:
		in, err := buildWrapped(pat, n.Left, wrap)
		if err != nil {
			return nil, err
		}
		op, err = NewSort(in, n.SortBy)
		if err != nil {
			return nil, err
		}
	case plan.OpStructuralJoin:
		left, err := buildWrapped(pat, n.Left, wrap)
		if err != nil {
			return nil, err
		}
		right, err := buildWrapped(pat, n.Right, wrap)
		if err != nil {
			return nil, err
		}
		op, err = NewStackTreeJoin(left, right, n.AncNode, n.DescNode, n.Axis, n.Algo)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("exec: unknown plan operator %d", n.Op)
	}
	if wrap != nil {
		op = wrap(n, op)
	}
	return op, nil
}

// Run compiles and executes a plan, returning the result tuples normalised
// to pattern-node order (slot i = pattern node i), so results of different
// plans for the same query are directly comparable.
func Run(ctx *Context, pat *pattern.Pattern, p *plan.Node) ([]Tuple, error) {
	op, err := Build(pat, p)
	if err != nil {
		return nil, err
	}
	out, err := Drain(ctx, op)
	if err != nil {
		return nil, err
	}
	return NormalizeAll(op.Schema(), pat.N(), out), nil
}

// RunCount compiles and executes a plan, returning only the match count.
func RunCount(ctx *Context, pat *pattern.Pattern, p *plan.Node) (int, error) {
	op, err := Build(pat, p)
	if err != nil {
		return 0, err
	}
	return Count(ctx, op)
}

// RunBatched is Run over the batched execution path.
func RunBatched(ctx *Context, pat *pattern.Pattern, p *plan.Node) ([]Tuple, error) {
	op, err := Build(pat, p)
	if err != nil {
		return nil, err
	}
	out, err := DrainBatched(ctx, op)
	if err != nil {
		return nil, err
	}
	return NormalizeAll(op.Schema(), pat.N(), out), nil
}

// RunCountBatched is RunCount over the batched execution path.
func RunCountBatched(ctx *Context, pat *pattern.Pattern, p *plan.Node) (int, error) {
	op, err := Build(pat, p)
	if err != nil {
		return 0, err
	}
	return CountBatched(ctx, op)
}

// Normalize reorders one tuple from the schema's slot layout to
// pattern-node order.
func Normalize(s *Schema, n int, t Tuple) Tuple {
	out := make(Tuple, n)
	for slot, pn := range s.Cols() {
		out[pn] = t[slot]
	}
	return out
}

// NormalizeAll applies Normalize to every tuple.
func NormalizeAll(s *Schema, n int, ts []Tuple) []Tuple {
	out := make([]Tuple, len(ts))
	for i, t := range ts {
		out[i] = Normalize(s, n, t)
	}
	return out
}

// SortCanonical orders normalised tuples lexicographically — a canonical
// multiset representation for comparing the results of different plans.
func SortCanonical(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// ReferenceMatches computes all matches of pat in doc by brute-force
// backtracking. It is the correctness oracle for the join operators and the
// optimizers, and is exercised directly by tests; it is exponential in the
// worst case and intended only for small verification workloads. Results
// are in pattern-node order.
func ReferenceMatches(doc *xmltree.Document, pat *pattern.Pattern) []Tuple {
	// Candidate lists per pattern node.
	cand := make([][]xmltree.NodeID, pat.N())
	for u := 0; u < pat.N(); u++ {
		tag, ok := doc.LookupTag(pat.Nodes[u].Tag)
		if !ok {
			return nil
		}
		for _, id := range doc.NodesWithTag(tag) {
			if !pat.Nodes[u].MatchesValue(doc.Value(id)) {
				continue
			}
			cand[u] = append(cand[u], id)
		}
		if len(cand[u]) == 0 {
			return nil
		}
	}
	var out []Tuple
	bind := make(Tuple, pat.N())
	var rec func(u int)
	rec = func(u int) {
		if u == pat.N() {
			out = append(out, append(Tuple(nil), bind...))
			return
		}
		for _, id := range cand[u] {
			p := pat.Parent[u]
			if p != pattern.NoNode {
				if pat.Axis[u] == pattern.Child {
					if !doc.IsParent(bind[p], id) {
						continue
					}
				} else if !doc.IsAncestor(bind[p], id) {
					continue
				}
			}
			bind[u] = id
			rec(u + 1)
		}
	}
	rec(0)
	return out
}
