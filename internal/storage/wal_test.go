package storage

import (
	"bytes"
	"errors"
	"testing"
)

func walImage(page PageID, fill byte) WALPageImage {
	im := WALPageImage{Page: page}
	for i := range im.Data {
		im.Data[i] = fill
	}
	return im
}

func TestWALRoundTrip(t *testing.T) {
	file := NewMemFile()
	w, txns, err := OpenWAL(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 0 {
		t.Fatalf("fresh WAL has %d txns", len(txns))
	}
	docs := []WALDoc{{ID: "a", Image: []byte("hello image")}}
	images := []WALPageImage{walImage(3, 0xAB), walImage(4, 0xCD)}
	id1, err := w.Append(WALInsert, docs, images)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := w.Append(WALDelete, []WALDoc{{ID: "a"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1+1 {
		t.Fatalf("txids %d, %d not sequential", id1, id2)
	}

	_, got, err := OpenWAL(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("reopened WAL has %d txns, want 2", len(got))
	}
	tx := got[0]
	if tx.ID != id1 || tx.Op != WALInsert || len(tx.Docs) != 1 || tx.Docs[0].ID != "a" {
		t.Fatalf("txn 0 mismatch: %+v", tx)
	}
	if !bytes.Equal(tx.Docs[0].Image, []byte("hello image")) {
		t.Fatalf("doc image mismatch")
	}
	if len(tx.Images) != 2 || tx.Images[0].Page != 3 || tx.Images[1].Page != 4 {
		t.Fatalf("page images mismatch: %+v", tx.Images)
	}
	if tx.Images[0].Data != images[0].Data || tx.Images[1].Data != images[1].Data {
		t.Fatalf("page image bytes mismatch")
	}
	if got[1].Op != WALDelete || got[1].Docs[0].Image != nil {
		t.Fatalf("txn 1 mismatch: %+v", got[1])
	}
}

func TestWALFreshPagePerTxn(t *testing.T) {
	file := NewMemFile()
	w, _, _ := OpenWAL(file)
	if _, err := w.Append(WALInsert, []WALDoc{{ID: "x", Image: []byte{1}}}, nil); err != nil {
		t.Fatal(err)
	}
	one := file.NumPages()
	if _, err := w.Append(WALInsert, []WALDoc{{ID: "y", Image: []byte{2}}}, nil); err != nil {
		t.Fatal(err)
	}
	if file.NumPages() != 2*one {
		t.Fatalf("second txn reused the first txn's tail page: %d pages after two txns", file.NumPages())
	}
}

// A torn or missing tail must discard exactly the unfinished transaction.
func TestWALTornTailDiscarded(t *testing.T) {
	file := NewMemFile()
	w, _, _ := OpenWAL(file)
	if _, err := w.Append(WALInsert, []WALDoc{{ID: "keep", Image: []byte("k")}}, nil); err != nil {
		t.Fatal(err)
	}
	keepPages := file.NumPages()
	big := []WALPageImage{walImage(0, 1), walImage(1, 2), walImage(2, 3)}
	if _, err := w.Append(WALInsert, []WALDoc{{ID: "torn", Image: []byte("t")}}, big); err != nil {
		t.Fatal(err)
	}

	// Tear the second transaction at every one of its pages in turn: zap
	// the page's checksum and verify only "keep" survives.
	for p := keepPages; p < file.NumPages(); p++ {
		damaged := NewMemFile()
		var pg Page
		for i := 0; i < file.NumPages(); i++ {
			if err := file.ReadPage(PageID(i), &pg); err != nil {
				t.Fatal(err)
			}
			if i == p {
				pg[PageHeaderSize+100] ^= 0xFF // payload damage: checksum now fails
			}
			if err := damaged.WritePage(PageID(i), &pg); err != nil {
				t.Fatal(err)
			}
		}
		_, txns, err := OpenWAL(damaged)
		if err != nil {
			t.Fatal(err)
		}
		if len(txns) != 1 || txns[0].Docs[0].ID != "keep" {
			t.Fatalf("tear at page %d: got %d txns, want only keep", p, len(txns))
		}
	}
}

// Pages dropped from the tail (a crash before they hit the disk) must also
// discard the unfinished transaction.
func TestWALMissingTailDiscarded(t *testing.T) {
	file := NewMemFile()
	w, _, _ := OpenWAL(file)
	if _, err := w.Append(WALInsert, []WALDoc{{ID: "keep", Image: []byte("k")}}, nil); err != nil {
		t.Fatal(err)
	}
	keepPages := file.NumPages()
	if _, err := w.Append(WALInsert, []WALDoc{{ID: "lost", Image: []byte("l")}},
		[]WALPageImage{walImage(0, 9), walImage(1, 8)}); err != nil {
		t.Fatal(err)
	}
	for cut := keepPages; cut < file.NumPages(); cut++ {
		trunc := NewMemFile()
		var pg Page
		for i := 0; i < cut; i++ {
			if err := file.ReadPage(PageID(i), &pg); err != nil {
				t.Fatal(err)
			}
			if err := trunc.WritePage(PageID(i), &pg); err != nil {
				t.Fatal(err)
			}
		}
		_, txns, err := OpenWAL(trunc)
		if err != nil {
			t.Fatal(err)
		}
		if len(txns) != 1 || txns[0].Docs[0].ID != "keep" {
			t.Fatalf("cut at page %d: got %d txns, want only keep", cut, len(txns))
		}
	}
}

// After a failed append the epoch bump must prevent the stale partial tail
// from being misread once later transactions land over it.
func TestWALEpochFencesStaleTail(t *testing.T) {
	inner := NewMemFile()
	w, _, _ := OpenWAL(inner)
	if _, err := w.Append(WALInsert, []WALDoc{{ID: "a", Image: []byte("a")}}, nil); err != nil {
		t.Fatal(err)
	}

	// Fail an append partway: two of its pages land, the rest don't.
	failing := &failAfterN{inner: inner, allow: 2}
	w.file = failing
	big := []WALPageImage{walImage(0, 1), walImage(1, 2), walImage(2, 3), walImage(3, 4)}
	if _, err := w.Append(WALInsert, []WALDoc{{ID: "dead", Image: []byte("d")}}, big); err == nil {
		t.Fatal("append expected to fail")
	}
	w.file = inner

	// A later small transaction overwrites only the first stale page; the
	// second stale page (older epoch) must not be parsed behind it.
	if _, err := w.Append(WALInsert, []WALDoc{{ID: "b", Image: []byte("b")}}, nil); err != nil {
		t.Fatal(err)
	}
	_, txns, err := OpenWAL(inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 2 || txns[0].Docs[0].ID != "a" || txns[1].Docs[0].ID != "b" {
		ids := make([]string, len(txns))
		for i, tx := range txns {
			ids[i] = tx.Docs[0].ID
		}
		t.Fatalf("recovered %v, want [a b]", ids)
	}
}

// failAfterN passes through the first allow writes, then fails.
type failAfterN struct {
	inner PageFile
	allow int
	seen  int
}

func (f *failAfterN) WritePage(id PageID, src *Page) error {
	f.seen++
	if f.seen > f.allow {
		return errors.New("failAfterN: write refused")
	}
	return f.inner.WritePage(id, src)
}
func (f *failAfterN) ReadPage(id PageID, dst *Page) error { return f.inner.ReadPage(id, dst) }
func (f *failAfterN) NumPages() int                       { return f.inner.NumPages() }

func TestWALSnapshotMultiDoc(t *testing.T) {
	file := NewMemFile()
	w, _, _ := OpenWAL(file)
	docs := []WALDoc{
		{ID: "a", Image: []byte("imga")},
		{ID: "b", Image: []byte("imgb")},
		{ID: "c", Image: []byte("imgc")},
	}
	if _, err := w.Append(WALSnapshot, docs, nil); err != nil {
		t.Fatal(err)
	}
	_, txns, err := OpenWAL(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 || txns[0].Op != WALSnapshot || len(txns[0].Docs) != 3 {
		t.Fatalf("snapshot txn mismatch: %+v", txns)
	}
	for i, d := range docs {
		if txns[0].Docs[i].ID != d.ID || !bytes.Equal(txns[0].Docs[i].Image, d.Image) {
			t.Fatalf("snapshot doc %d mismatch", i)
		}
	}
}
