package core

import (
	"context"

	"fmt"
	"testing"

	"sjos/internal/pattern"
)

// chainPattern builds //t0//t1//…//t(n-1).
func chainPattern(n int) *pattern.Pattern {
	b := pattern.NewBuilder("t0")
	h := b.Root()
	for i := 1; i < n; i++ {
		h = b.Desc(h, fmt.Sprintf("t%d", i))
	}
	return b.Pattern()
}

// benchEstimator gives distinct stats per node so searches do real work.
func benchEstimator(b *testing.B, pat *pattern.Pattern) *Estimator {
	b.Helper()
	nodeCard := make([]float64, pat.N())
	edgeSel := make([]float64, pat.N())
	for i := range nodeCard {
		nodeCard[i] = float64(100 + 37*i%9000)
		edgeSel[i] = 1.0 / float64(10+13*i%500)
	}
	est, err := NewManualEstimator(pat, nodeCard, edgeSel)
	if err != nil {
		b.Fatal(err)
	}
	return est
}

// BenchmarkOptimizeScaling shows how each algorithm's optimization cost
// grows with pattern size — the theoretical complexity analysis of §3 made
// measurable. DP's exponential growth is why DPP exists.
func BenchmarkOptimizeScaling(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		pat := chainPattern(n)
		est := benchEstimator(b, pat)
		for _, m := range []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP} {
			if m == MethodDP && n > 8 {
				continue // DP at n=10 dominates the whole run
			}
			b.Run(fmt.Sprintf("n=%d/%s", n, m), func(b *testing.B) {
				var plans int
				for i := 0; i < b.N; i++ {
					res, err := Optimize(context.Background(), pat, est, testModel(), m, nil)
					if err != nil {
						b.Fatal(err)
					}
					plans = res.Counters.PlansConsidered
				}
				b.ReportMetric(float64(plans), "plans")
			})
		}
	}
}

// BenchmarkAblationSpacePrimitives measures the search-space primitives the
// optimizers are built from.
func BenchmarkAblationSpacePrimitives(b *testing.B) {
	pat := chainPattern(8)
	est := benchEstimator(b, pat)
	sp := newSpace(pat, est, testModel())
	s0 := sp.start()
	b.Run("expand-start", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			sp.expand(s0, moveOpts{}, func(candidate) { n++ })
		}
	})
	b.Run("ubCost", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp.ubCost(uint32(i) & sp.allEdges)
		}
	})
	b.Run("hasMove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp.hasMove(0, s0.orderMask)
		}
	})
}
