package xmltree

import "math/rand"

// RandomDocument builds a random tree with exactly n nodes over the given
// tag alphabet (tags[0] is used for the root). It is deterministic for a
// given rng state and is shared by property-based tests across packages and
// by the fuzz-style self-checks in the data generators.
func RandomDocument(rng *rand.Rand, n int, tags []string) *Document {
	if n < 1 {
		n = 1
	}
	b := NewBuilder()
	b.Open(tags[0], "")
	remaining := n - 1
	var gen func(budget int)
	gen = func(budget int) {
		for budget > 0 {
			take := 1
			if budget > 1 {
				take = 1 + rng.Intn(budget)
			}
			budget -= take
			b.Open(tags[rng.Intn(len(tags))], "")
			gen(take - 1)
			b.Close()
		}
	}
	gen(remaining)
	b.Close()
	return b.MustFinish()
}
