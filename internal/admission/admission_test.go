package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	for i := 0; i < 100; i++ {
		release, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if c.Stats() != (Stats{}) {
		t.Fatal("nil controller has stats")
	}
}

func TestNewUnlimited(t *testing.T) {
	if New(0, 5) != nil || New(-1, 5) != nil {
		t.Fatal("maxInFlight <= 0 should return the nil controller")
	}
}

func TestAcquireReleaseBounds(t *testing.T) {
	c := New(2, 0) // no queue: the third Acquire fast-fails
	r1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over limit: err = %v", err)
	}
	st := c.Stats()
	if st.InFlight != 2 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
	r1()
	if r3, err := c.Acquire(context.Background()); err != nil {
		t.Fatalf("after release: %v", err)
	} else {
		r3()
	}
	r2()
	r2() // double release is a no-op, not a corrupted count
	if got := c.Stats().InFlight; got != 0 {
		t.Fatalf("InFlight = %d after all releases", got)
	}
}

func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	c := New(1, 4)
	r1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		release, err := c.Acquire(context.Background())
		if err == nil {
			release()
		}
		got <- err
	}()
	// The waiter must be queued, not rejected.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	r1()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter never admitted")
	}
	if st := c.Stats(); st.Queued != 1 {
		t.Fatalf("Queued = %d, want 1", st.Queued)
	}
}

func TestQueueDepthRejects(t *testing.T) {
	c := New(1, 2)
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Acquire(ctx) // parks until cancel
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Waiting < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue full: err = %v", err)
	}
	cancel()
	wg.Wait()
}

func TestAcquireHonorsCancellation(t *testing.T) {
	c := New(1, 4)
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx)
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled acquire: err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}
	if got := c.Stats().Waiting; got != 0 {
		t.Fatalf("Waiting = %d after cancellation", got)
	}
}

func TestDrainWaitsForInFlight(t *testing.T) {
	c := New(2, 2)
	r1, _ := c.Acquire(context.Background())
	r2, _ := c.Acquire(context.Background())

	drained := make(chan error, 1)
	go func() { drained <- c.Drain(context.Background()) }()

	// New arrivals are turned away during drain.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Acquire(context.Background())
		if errors.Is(err, ErrShuttingDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("acquire during drain: err = %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned with queries in flight")
	case <-time.After(20 * time.Millisecond):
	}
	r1()
	r2()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Drain never finished after releases")
	}
	// Idempotent.
	if err := c.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestDrainTimeout(t *testing.T) {
	c := New(1, 0)
	release, _ := c.Acquire(context.Background())
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := c.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with stuck query: err = %v", err)
	}
}

// TestConcurrentHammer drives many goroutines through a small controller
// (run with -race): the in-flight bound must never be exceeded and all
// bookkeeping must settle at zero.
func TestConcurrentHammer(t *testing.T) {
	const limit = 4
	c := New(limit, 16)
	var inFlight, maxSeen atomic.Int64
	var admitted, rejected atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				release, err := c.Acquire(context.Background())
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("acquire: %v", err)
						return
					}
					rejected.Add(1)
					continue
				}
				admitted.Add(1)
				n := inFlight.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				inFlight.Add(-1)
				release()
			}
		}()
	}
	wg.Wait()
	if maxSeen.Load() > limit {
		t.Fatalf("observed %d in flight, limit %d", maxSeen.Load(), limit)
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	st := c.Stats()
	if st.InFlight != 0 || st.Waiting != 0 {
		t.Fatalf("bookkeeping did not settle: %+v", st)
	}
	if err := c.Drain(context.Background()); err != nil {
		t.Fatalf("drain after hammer: %v", err)
	}
}
