package histogram

import (
	"math/rand"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

func TestExactJoinCountAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tags := []string{"a", "b", "c"}
	for trial := 0; trial < 100; trial++ {
		d := xmltree.RandomDocument(rng, 2+rng.Intn(200), tags)
		for _, an := range tags {
			for _, bn := range tags {
				ta, okA := d.LookupTag(an)
				tb, okB := d.LookupTag(bn)
				if !okA || !okB {
					continue
				}
				for _, ax := range []pattern.Axis{pattern.Child, pattern.Descendant} {
					got := ExactJoinCount(d, ta, tb, ax)
					want := exactJoin(d, ta, tb, ax)
					if got != want {
						t.Fatalf("trial %d %s %v %s: got %d, want %d", trial, an, ax, bn, got, want)
					}
				}
			}
		}
	}
}

func TestExactJoinCountEmpty(t *testing.T) {
	d, _ := xmltree.ParseString("<a><b/></a>")
	ta, _ := d.LookupTag("a")
	if got := ExactJoinCount(d, ta, xmltree.TagID(99), pattern.Descendant); got != 0 {
		t.Fatalf("unknown tag count = %d", got)
	}
}

func TestExactJoinCountSelfJoin(t *testing.T) {
	d, _ := xmltree.ParseString("<a><a><a/></a><a/></a>")
	ta, _ := d.LookupTag("a")
	// Pairs: root-child1, root-grandchild, root-child2, child1-grandchild.
	if got := ExactJoinCount(d, ta, ta, pattern.Descendant); got != 4 {
		t.Fatalf("self descendant pairs = %d, want 4", got)
	}
	if got := ExactJoinCount(d, ta, ta, pattern.Child); got != 3 {
		t.Fatalf("self child pairs = %d, want 3", got)
	}
}
