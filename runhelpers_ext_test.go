package sjos_test

import (
	"context"

	"sjos"
)

// Benchmark-local conveniences over Run, replacing the removed Execute*
// wrappers (black-box twin of runhelpers_test.go).

func execCount(db *sjos.Database, pat *sjos.Pattern, p *sjos.Plan) (int, sjos.ExecStats, error) {
	res, err := db.Run(context.Background(), pat, p, sjos.RunOptions{CountOnly: true})
	if err != nil {
		return 0, sjos.ExecStats{}, err
	}
	return res.Count, res.Stats, nil
}

func execLimit(db *sjos.Database, pat *sjos.Pattern, p *sjos.Plan, n int) ([]sjos.Match, sjos.ExecStats, error) {
	if n <= 0 {
		return []sjos.Match{}, sjos.ExecStats{}, nil
	}
	res, err := db.Run(context.Background(), pat, p, sjos.RunOptions{ExecOptions: sjos.ExecOptions{Limit: n}})
	if err != nil {
		return nil, sjos.ExecStats{}, err
	}
	return res.Matches, res.Stats, nil
}

func execParallelCount(db *sjos.Database, pat *sjos.Pattern, p *sjos.Plan, k int) (int, sjos.ExecStats, error) {
	if k <= 0 {
		k = -1
	}
	res, err := db.Run(context.Background(), pat, p, sjos.RunOptions{Workers: k, CountOnly: true})
	if err != nil {
		return 0, sjos.ExecStats{}, err
	}
	return res.Count, res.Stats, nil
}
