package exec

// Limit caps an operator's output at n tuples and genuinely closes early:
// the moment the n-th tuple is delivered the upstream subtree is Closed, so
// its resources (sort buffers, stacks, scan cursors) are released before
// the caller finishes consuming the stream. Combined with fully-pipelined
// plans it delivers the paper's §3.4 motivation measurably: non-blocking
// plans produce their first results long before the full result is
// computed, which blocking (sort-containing) plans cannot do.
type Limit struct {
	input     Operator
	inputB    BatchOperator // lazily bound batched view of input
	n         int
	done      int
	exhausted bool  // input ended before n tuples
	closed    bool  // input has been Closed (early or via Close)
	closeErr  error // latched error from an early upstream Close
}

// NewLimit wraps input, emitting at most n tuples.
func NewLimit(input Operator, n int) *Limit {
	if n < 0 {
		n = 0
	}
	return &Limit{input: input, n: n}
}

// Schema implements Operator.
func (l *Limit) Schema() *Schema { return l.input.Schema() }

// Open implements Operator.
func (l *Limit) Open(ctx *Context) error { return l.input.Open(ctx) }

// Next implements Operator.
func (l *Limit) Next() (Tuple, bool, error) {
	if l.done >= l.n || l.exhausted {
		// The stream is over; surface a latched early-Close failure once
		// the cap was reached, otherwise plain end-of-stream.
		return nil, false, l.closeErr
	}
	t, ok, err := l.input.Next()
	if err != nil {
		// Propagate exactly what the input produced: if it paired a tuple
		// with the error, the tuple must not be silently dropped here —
		// the caller decides what an (ok, err) pair means.
		return t, ok, err
	}
	if !ok {
		l.exhausted = true
		return nil, false, nil
	}
	l.done++
	if l.done >= l.n {
		// Cap reached: stop pulling and release the upstream subtree now.
		l.closed = true
		l.closeErr = l.input.Close()
	}
	return t, true, nil
}

// NextBatch implements BatchOperator: whole batches are pulled until the
// cap, the final batch is truncated to it, and the upstream subtree is
// closed early exactly as on the tuple path.
func (l *Limit) NextBatch(b *Batch) error {
	b.Reset()
	if l.done >= l.n || l.exhausted {
		return l.closeErr
	}
	if l.inputB == nil {
		l.inputB = AsBatchOperator(l.input)
	}
	if err := l.inputB.NextBatch(b); err != nil {
		return err
	}
	if b.Len() == 0 {
		l.exhausted = true
		return nil
	}
	if l.done+b.Len() >= l.n {
		b.Truncate(l.n - l.done)
		l.done = l.n
		// Cap reached: stop pulling and release the upstream subtree now.
		l.closed = true
		l.closeErr = l.input.Close()
		return nil
	}
	l.done += b.Len()
	return nil
}

// Close implements Operator. If the cap was reached the input was already
// closed by Next; Close then reports any latched early-Close failure
// without closing the input a second time.
func (l *Limit) Close() error {
	if l.closed {
		return l.closeErr
	}
	l.closed = true
	return l.input.Close()
}
