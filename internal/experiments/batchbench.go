package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sjos"
)

// BatchBenchRow compares one fold of the Table-3 workload executed through
// the batched (vectorized) path against the tuple-at-a-time path.
type BatchBenchRow struct {
	Fold    int
	Batched time.Duration // best batched execution over the rounds
	Tuple   time.Duration // best tuple-at-a-time execution
	Speedup float64
	Matches int
	Batches int // root batches driven on the batched lane
	Skipped int // index postings bypassed by skip-ahead seeks
}

// BatchBench measures the batched executor against the tuple-at-a-time
// executor on the paper's Table-3 workload (Q.Pers.3.d, CountOnly) across
// folding factors. Per fold both lanes run the same optimized plan; their
// match counts must agree, a divergence is an error.
func BatchBench(m sjos.Method, folds []int) ([]BatchBenchRow, error) {
	q, err := QueryByID(PersQuery3)
	if err != nil {
		return nil, err
	}
	pat, err := sjos.ParsePattern(q.Source)
	if err != nil {
		return nil, err
	}
	var rows []BatchBenchRow
	for _, fold := range folds {
		db, err := Dataset(q.Dataset, fold)
		if err != nil {
			return nil, err
		}
		res, err := db.Optimize(pat, m, 0)
		if err != nil {
			return nil, err
		}
		row := BatchBenchRow{Fold: fold, Matches: -1}
		lane := func(noBatch bool) (time.Duration, error) {
			best := time.Duration(1<<63 - 1)
			for i := 0; i < evalRepeat; i++ {
				start := time.Now()
				r, err := db.Run(context.Background(), pat, res.Plan,
					sjos.RunOptions{ExecOptions: sjos.ExecOptions{NoBatch: noBatch}, CountOnly: true})
				if err != nil {
					return 0, err
				}
				if d := time.Since(start); d < best {
					best = d
				}
				if row.Matches == -1 {
					row.Matches = r.Count
				} else if r.Count != row.Matches {
					return 0, fmt.Errorf("fold %d: nobatch=%v counted %d matches, other lane %d",
						fold, noBatch, r.Count, row.Matches)
				}
				if !noBatch {
					row.Batches = r.Stats.Batches
					row.Skipped = r.Stats.SkippedTuples
				}
			}
			return best, nil
		}
		if row.Batched, err = lane(false); err != nil {
			return nil, err
		}
		if row.Tuple, err = lane(true); err != nil {
			return nil, err
		}
		if row.Batched > 0 {
			row.Speedup = float64(row.Tuple) / float64(row.Batched)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBatchBench formats the batched vs tuple comparison as a table.
func RenderBatchBench(rows []BatchBenchRow, m sjos.Method) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Batched executor vs tuple-at-a-time (%s on %s, CountOnly)\n", PersQuery3, m)
	fmt.Fprintf(&sb, "%-6s %12s %12s %9s %9s %9s %9s\n",
		"Fold", "batched", "tuple", "speedup", "matches", "batches", "skipped")
	for _, r := range rows {
		fmt.Fprintf(&sb, "x%-5d %12v %12v %8.2fx %9d %9d %9d\n",
			r.Fold, r.Batched, r.Tuple, r.Speedup, r.Matches, r.Batches, r.Skipped)
	}
	return sb.String()
}
