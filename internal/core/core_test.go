package core

import (
	"context"

	"math"
	"math/rand"
	"testing"

	"sjos/internal/cost"
	"sjos/internal/histogram"
	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/xmltree"
)

// testModel returns a fixed cost model so expectations are stable.
func testModel() cost.Model {
	return cost.Model{FI: 1, FS: 2, FIO: 3, FST: 4, FSC: 0.5}
}

// figure1Pattern is the paper's running example (Figure 1): manager A with
// descendant employee B (child name C) and descendant manager D (child
// department E with child name F). 6 nodes, 5 edges.
func figure1Pattern() *pattern.Pattern {
	return pattern.MustParse("//manager[.//employee/name]//manager/department/name")
}

// uniformEstimator builds a manual estimator with the given per-node
// cardinality and per-edge selectivity.
func uniformEstimator(t *testing.T, pat *pattern.Pattern, card, sel float64) *Estimator {
	t.Helper()
	nodeCard := make([]float64, pat.N())
	edgeSel := make([]float64, pat.N())
	for i := range nodeCard {
		nodeCard[i] = card
		edgeSel[i] = sel
	}
	est, err := NewManualEstimator(pat, nodeCard, edgeSel)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// skewedEstimator gives each node and edge a distinct, deterministic
// cardinality/selectivity so cost differences are sharp.
func skewedEstimator(t *testing.T, pat *pattern.Pattern, seed int64) *Estimator {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nodeCard := make([]float64, pat.N())
	edgeSel := make([]float64, pat.N())
	for i := range nodeCard {
		nodeCard[i] = float64(10 + rng.Intn(5000))
		edgeSel[i] = math.Pow(10, -1-3*rng.Float64())
	}
	est, err := NewManualEstimator(pat, nodeCard, edgeSel)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// recost recomputes a plan's cost bottom-up from the estimator and model,
// independently of the search's bookkeeping.
func recost(est *Estimator, m cost.Model, n *plan.Node) float64 {
	switch n.Op {
	case plan.OpIndexScan:
		return m.IndexAccess(est.NodeCard(n.PatternNode))
	case plan.OpSort:
		return recost(est, m, n.Left) + m.Sort(est.ClusterCard(n.Left.Columns()))
	default:
		l := recost(est, m, n.Left)
		r := recost(est, m, n.Right)
		cardA := est.ClusterCard(n.Left.Columns())
		cardB := est.ClusterCard(n.Right.Columns())
		cardAB := est.ClusterCard(n.Columns())
		if n.Algo == plan.AlgoAnc {
			return l + r + m.StackTreeAnc(cardA, cardB, cardAB)
		}
		return l + r + m.StackTreeDesc(cardA, cardB, cardAB)
	}
}

func allMethods() []Method {
	return []Method{MethodDP, MethodDPP, MethodDPPNoLookahead, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy}
}

func TestAllMethodsReturnValidPlans(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("//a"),
		pattern.MustParse("//a//b"),
		pattern.MustParse("//a/b//c"),
		pattern.MustParse("//a[b][c]"),
		pattern.MustParse("//a[.//b/c]//d"),
		figure1Pattern(),
		pattern.MustParse("//a#[.//b/c]//d[e]"),
		pattern.MustParse("//a[b/c#]//d"),
	}
	for pi, pat := range pats {
		est := skewedEstimator(t, pat, int64(pi+1))
		for _, m := range allMethods() {
			r, err := Optimize(context.Background(), pat, est, testModel(), m, nil)
			if err != nil {
				t.Fatalf("pattern %d, %v: %v", pi, m, err)
			}
			if err := r.Plan.Validate(pat, true); err != nil {
				t.Errorf("pattern %d, %v: invalid plan: %v\n%s", pi, m, err, r.Plan.Format(pat))
			}
			if got := recost(est, testModel(), r.Plan); math.Abs(got-r.Cost) > 1e-6*math.Max(1, r.Cost) {
				t.Errorf("pattern %d, %v: reported cost %v, recost %v", pi, m, r.Cost, got)
			}
		}
	}
}

func TestDPAndDPPFindEqualOptima(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("//a//b"),
		pattern.MustParse("//a/b//c"),
		pattern.MustParse("//a[b][c]"),
		pattern.MustParse("//a[.//b/c]//d"),
		figure1Pattern(),
		pattern.MustParse("//a#[.//b/c]//d"),
	}
	for pi, pat := range pats {
		for seed := int64(0); seed < 8; seed++ {
			est := skewedEstimator(t, pat, 100*int64(pi)+seed)
			dp, err := DP(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			dpp, err := DPP(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			dppNL, err := DPPNoLookahead(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(dp.Cost-dpp.Cost) > 1e-6*dp.Cost {
				t.Errorf("pattern %d seed %d: DP cost %v != DPP cost %v\nDP:\n%sDPP:\n%s",
					pi, seed, dp.Cost, dpp.Cost, dp.Plan.Format(pat), dpp.Plan.Format(pat))
			}
			if math.Abs(dp.Cost-dppNL.Cost) > 1e-6*dp.Cost {
				t.Errorf("pattern %d seed %d: DP cost %v != DPP' cost %v", pi, seed, dp.Cost, dppNL.Cost)
			}
		}
	}
}

func TestFPPlansAreSortFreeAndAboveOptimal(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("//a/b//c"),
		pattern.MustParse("//a[.//b/c]//d"),
		figure1Pattern(),
		pattern.MustParse("//a#[.//b/c]//d"),
	}
	for pi, pat := range pats {
		for seed := int64(0); seed < 10; seed++ {
			est := skewedEstimator(t, pat, 7777+100*int64(pi)+seed)
			fp, err := FP(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if !fp.Plan.FullyPipelined() {
				t.Fatalf("pattern %d: FP produced a plan with sorts:\n%s", pi, fp.Plan.Format(pat))
			}
			dp, err := DP(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if fp.Cost < dp.Cost-1e-6*dp.Cost {
				t.Errorf("pattern %d seed %d: FP cost %v below optimal %v — FP plan should be in DP's space",
					pi, seed, fp.Cost, dp.Cost)
			}
		}
	}
}

// TestFPOptimalAmongRandomPipelinedPlans cross-checks FP's optimality claim:
// no random fully-pipelined plan may beat FP's cost.
func TestFPOptimalAmongRandomPipelinedPlans(t *testing.T) {
	pat := figure1Pattern()
	est := skewedEstimator(t, pat, 42)
	fp, err := FP(pat, est, testModel())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	found := 0
	for i := 0; i < 3000; i++ {
		r, err := RandomPlan(pat, est, testModel(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Plan.FullyPipelined() {
			continue
		}
		found++
		if r.Cost < fp.Cost-1e-6*fp.Cost {
			t.Fatalf("random pipelined plan cost %v beats FP %v:\n%s", r.Cost, fp.Cost, r.Plan.Format(pat))
		}
	}
	if found == 0 {
		t.Fatal("no pipelined plans sampled; weak test")
	}
}

func TestDPAPEBLargeBoundMatchesDPP(t *testing.T) {
	pat := figure1Pattern()
	for seed := int64(0); seed < 6; seed++ {
		est := skewedEstimator(t, pat, 500+seed)
		dpp, err := DPP(pat, est, testModel())
		if err != nil {
			t.Fatal(err)
		}
		eb, err := DPAPEB(pat, est, testModel(), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dpp.Cost-eb.Cost) > 1e-6*dpp.Cost {
			t.Errorf("seed %d: DPAP-EB(∞) cost %v != DPP %v", seed, eb.Cost, dpp.Cost)
		}
	}
}

func TestDPAPEBBoundsValidated(t *testing.T) {
	pat := figure1Pattern()
	est := uniformEstimator(t, pat, 100, 0.01)
	if _, err := DPAPEB(pat, est, testModel(), 0); err == nil {
		t.Fatal("Te=0 accepted")
	}
	// Even Te=1 must return a valid plan.
	r, err := DPAPEB(pat, est, testModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Plan.Validate(pat, true); err != nil {
		t.Fatal(err)
	}
}

func TestDPAPLDPlansAreLeftDeep(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("//a[.//b/c]//d"),
		figure1Pattern(),
	}
	for pi, pat := range pats {
		for seed := int64(0); seed < 6; seed++ {
			est := skewedEstimator(t, pat, 900+100*int64(pi)+seed)
			r, err := DPAPLD(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if !r.Plan.LeftDeep() {
				t.Fatalf("pattern %d: DPAP-LD produced a bushy plan:\n%s", pi, r.Plan.Format(pat))
			}
			dp, err := DP(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if r.Cost < dp.Cost-1e-6*dp.Cost {
				t.Fatalf("pattern %d: LD cost %v below optimum %v", pi, r.Cost, dp.Cost)
			}
		}
	}
}

func TestSearchEffortOrdering(t *testing.T) {
	// Table 2's qualitative result: DP considers the most plans, then
	// DPP', DPP, DPAP variants, and FP the fewest.
	pat := figure1Pattern()
	est := skewedEstimator(t, pat, 31)
	n := func(m Method, te int) int {
		r, err := Optimize(context.Background(), pat, est, testModel(), m, &Options{Te: te})
		if err != nil {
			t.Fatal(err)
		}
		return r.Counters.PlansConsidered
	}
	dp := n(MethodDP, 0)
	dppNL := n(MethodDPPNoLookahead, 0)
	dpp := n(MethodDPP, 0)
	eb := n(MethodDPAPEB, 0) // Te defaults to #edges, as in Table 1
	fp := n(MethodFP, 0)
	if !(dp > dppNL && dppNL > dpp) {
		t.Errorf("expected DP > DPP' > DPP, got %d / %d / %d", dp, dppNL, dpp)
	}
	if !(dpp >= eb) {
		t.Errorf("expected DPP >= DPAP-EB, got %d / %d", dpp, eb)
	}
	if !(eb > fp) {
		t.Errorf("expected DPAP-EB > FP, got %d / %d", eb, fp)
	}
}

func TestOptimizersDeterministic(t *testing.T) {
	pat := figure1Pattern()
	est := skewedEstimator(t, pat, 64)
	for _, m := range allMethods() {
		a, err := Optimize(context.Background(), pat, est, testModel(), m, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Optimize(context.Background(), pat, est, testModel(), m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.Plan.Format(pat) != b.Plan.Format(pat) || a.Cost != b.Cost {
			t.Errorf("%v: nondeterministic result", m)
		}
	}
}

func TestSingleNodePattern(t *testing.T) {
	pat := pattern.MustParse("//only")
	est := uniformEstimator(t, pat, 42, 1)
	for _, m := range allMethods() {
		r, err := Optimize(context.Background(), pat, est, testModel(), m, nil)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if r.Plan.Op != plan.OpIndexScan {
			t.Errorf("%v: single-node plan is %v", m, r.Plan.Op)
		}
		if r.Cost != testModel().IndexAccess(42) {
			t.Errorf("%v: cost %v", m, r.Cost)
		}
	}
}

func TestOrderByRespected(t *testing.T) {
	// The same pattern with different OrderBy nodes must yield plans
	// ordered accordingly.
	base := "//a[.//b/c]//d"
	for ob := 0; ob < 4; ob++ {
		pat := pattern.MustParse(base)
		pat.OrderBy = ob
		est := skewedEstimator(t, pat, int64(200+ob))
		for _, m := range allMethods() {
			r, err := Optimize(context.Background(), pat, est, testModel(), m, nil)
			if err != nil {
				t.Fatalf("OrderBy %d, %v: %v", ob, m, err)
			}
			if r.Plan.OrderedBy != ob {
				t.Errorf("OrderBy %d, %v: plan ordered by %d\n%s", ob, m, r.Plan.OrderedBy, r.Plan.Format(pat))
			}
		}
	}
}

func TestMethodParsingAndNames(t *testing.T) {
	for _, m := range allMethods() {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMethod("nope"); err == nil {
		t.Error("ParseMethod accepted garbage")
	}
	if Method(99).String() == "" {
		t.Error("unknown method String empty")
	}
}

func TestBadPlanWorseOrEqualOptimal(t *testing.T) {
	pat := figure1Pattern()
	est := skewedEstimator(t, pat, 17)
	dp, err := DP(pat, est, testModel())
	if err != nil {
		t.Fatal(err)
	}
	bad, err := BadPlan(pat, est, testModel(), 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Plan.Validate(pat, false); err != nil {
		t.Fatalf("bad plan invalid: %v", err)
	}
	if bad.Cost < dp.Cost-1e-9 {
		t.Fatalf("bad plan cost %v below optimum %v", bad.Cost, dp.Cost)
	}
}

// TestOptimizedPlansExecuteCorrectly closes the loop: plans chosen by every
// algorithm, run by the executor, produce the reference matches.
func TestOptimizedPlansExecuteCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	pats := []*pattern.Pattern{
		pattern.MustParse("//a//b"),
		pattern.MustParse("//a[b][c]"),
		pattern.MustParse("//a[.//b/c]//d"),
		pattern.MustParse("//a#[b//c]/d"),
	}
	for trial := 0; trial < 15; trial++ {
		doc := xmltree.RandomDocument(rng, 5+rng.Intn(200), []string{"a", "b", "c", "d"})
		stats := histogram.Build(doc, 0)
		for _, pat := range pats {
			est, err := NewEstimator(pat, stats)
			if err != nil {
				t.Fatal(err)
			}
			checkPlansProduceReference(t, doc, pat, est)
		}
	}
}

func TestEstimatorClusterCard(t *testing.T) {
	pat := pattern.MustParse("//a[b]//c")
	est, err := NewManualEstimator(pat,
		[]float64{10, 20, 30},
		[]float64{0, 0.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got := est.ClusterCard(1 << 0); got != 10 {
		t.Errorf("card{a} = %v", got)
	}
	if got := est.ClusterCard(1<<0 | 1<<1); got != 10*20*0.5 {
		t.Errorf("card{a,b} = %v", got)
	}
	if got := est.ClusterCard(0b111); math.Abs(got-10*20*30*0.5*0.1) > 1e-9 {
		t.Errorf("card{a,b,c} = %v", got)
	}
	if got := est.TotalCard(); math.Abs(got-est.ClusterCard(0b111)) > 1e-9 {
		t.Errorf("TotalCard = %v", got)
	}
	// Disconnected mask multiplies only node cards (no internal edges).
	if got := est.ClusterCard(1<<1 | 1<<2); got != 20*30 {
		t.Errorf("card{b,c} = %v", got)
	}
}

func TestEstimatorRejectsBadInput(t *testing.T) {
	pat := pattern.MustParse("//a//b")
	if _, err := NewManualEstimator(pat, []float64{1}, []float64{1, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	big := pattern.NewBuilder("r")
	h := big.Root()
	for i := 0; i < MaxPatternNodes+2; i++ {
		h = big.Kid(h, "x")
	}
	bp := big.Pattern()
	cards := make([]float64, bp.N())
	if _, err := NewManualEstimator(bp, cards, cards); err == nil {
		t.Fatal("oversized pattern accepted")
	}
}

func TestOracleEstimatorExactCounts(t *testing.T) {
	doc, err := xmltree.ParseString(`<db>
	  <a><b/><b><c/></b></a>
	  <a><c/></a>
	</db>`)
	if err != nil {
		t.Fatal(err)
	}
	pat := pattern.MustParse("//a//b/c")
	est, err := NewOracleEstimator(pat, doc)
	if err != nil {
		t.Fatal(err)
	}
	if est.NodeCard(0) != 2 || est.NodeCard(1) != 2 || est.NodeCard(2) != 2 {
		t.Fatalf("node cards: %v %v %v", est.NodeCard(0), est.NodeCard(1), est.NodeCard(2))
	}
	// a//b pairs: the first a contains both b's, the second a none -> 2
	// of 4 possible -> sel 0.5; b/c: 1 of 4 -> 0.25.
	if got := est.EdgeSelectivity(1); got != 0.5 {
		t.Errorf("sel(a//b) = %v", got)
	}
	if got := est.EdgeSelectivity(2); got != 0.25 {
		t.Errorf("sel(b/c) = %v", got)
	}
	// Plans from the oracle estimator must still be valid and optimal.
	res, err := DPP(pat, est, testModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(pat, true); err != nil {
		t.Fatal(err)
	}
}

func TestOracleEstimatorWithPredicates(t *testing.T) {
	doc, err := xmltree.ParseString(`<db><x>keep</x><x>drop</x><x>keep</x></db>`)
	if err != nil {
		t.Fatal(err)
	}
	pat := pattern.MustParse(`//db/x[. = "keep"]`)
	est, err := NewOracleEstimator(pat, doc)
	if err != nil {
		t.Fatal(err)
	}
	if est.NodeCard(1) != 2 {
		t.Fatalf("filtered card = %v, want 2", est.NodeCard(1))
	}
}

// TestPipelineOnlyDPPMatchesFP is the cross-validation behind the A2
// ablation: DPP restricted to sort-free moves searches exactly the
// fully-pipelined plan space, so its optimum must equal the FP algorithm's
// on every pattern and statistics instance.
func TestPipelineOnlyDPPMatchesFP(t *testing.T) {
	pats := []*pattern.Pattern{
		pattern.MustParse("//a//b"),
		pattern.MustParse("//a/b//c"),
		pattern.MustParse("//a[b][c]"),
		pattern.MustParse("//a[.//b/c]//d"),
		figure1Pattern(),
		pattern.MustParse("//a#[.//b/c]//d"),
		pattern.MustParse("//a[b/c#]//d"),
	}
	for pi, pat := range pats {
		for seed := int64(0); seed < 10; seed++ {
			est := skewedEstimator(t, pat, 31337+100*int64(pi)+seed)
			pipe, err := DPPPipelineOnly(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if !pipe.Plan.FullyPipelined() {
				t.Fatalf("pattern %d: pipeline-only search produced sorts:\n%s",
					pi, pipe.Plan.Format(pat))
			}
			fp, err := FP(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pipe.Cost-fp.Cost) > 1e-6*fp.Cost {
				t.Errorf("pattern %d seed %d: pipeline-DPP cost %v, FP cost %v\nDPP-pipe:\n%sFP:\n%s",
					pi, seed, pipe.Cost, fp.Cost, pipe.Plan.Format(pat), fp.Plan.Format(pat))
			}
			dpp, err := DPP(pat, est, testModel())
			if err != nil {
				t.Fatal(err)
			}
			if pipe.Cost < dpp.Cost-1e-6*dpp.Cost {
				t.Errorf("pattern %d seed %d: pipeline space beat the full space: %v < %v",
					pi, seed, pipe.Cost, dpp.Cost)
			}
		}
	}
}
