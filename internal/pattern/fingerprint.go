package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Fingerprint returns a canonical identity for the pattern — equal for any
// two patterns that are isomorphic as rooted labelled trees (same tags,
// axes, value predicates and OrderBy position), regardless of how their
// nodes happen to be numbered — together with the canonical renumbering
// that witnesses it: canon[u] is the canonical index of pattern node u.
//
// Structurally recurring queries are the norm in real workloads (the same
// handful of shapes arrives over and over with different node numberings
// from different frontends), so the fingerprint is the natural plan-cache
// key: a plan optimized for one numbering is transported to another via
// plan.Remap with the two canonical permutations.
//
// The encoding is the classic bottom-up canonical form for rooted trees:
// each node's label (axis into it, tag, predicate, OrderBy marker) is
// concatenated with the sorted encodings of its child subtrees. Canonical
// indexes are assigned in preorder visiting children in that sorted order,
// so equal fingerprints come with mutually compatible numberings. When two
// sibling subtrees are identical their relative order is arbitrary, which
// is harmless: the tie is an automorphism of the pattern, and the match
// set is invariant under automorphisms.
func Fingerprint(p *Pattern) (string, []int) {
	n := p.N()
	kids := make([][]int, n)
	for v := 1; v < n; v++ {
		kids[p.Parent[v]] = append(kids[p.Parent[v]], v)
	}
	enc := make([]string, n)
	var encode func(u int, root bool) string
	encode = func(u int, root bool) string {
		var sb strings.Builder
		if root {
			sb.WriteString("/")
		} else {
			sb.WriteString(p.Axis[u].String())
		}
		fmt.Fprintf(&sb, "%q", p.Nodes[u].Tag)
		if p.Nodes[u].Op != CmpNone {
			fmt.Fprintf(&sb, "[%d %q]", p.Nodes[u].Op, p.Nodes[u].Value)
		}
		if p.OrderBy == u {
			sb.WriteString("#")
		}
		subs := make([]string, len(kids[u]))
		for i, c := range kids[u] {
			subs[i] = encode(c, false)
		}
		sort.Strings(subs)
		sb.WriteString("(")
		sb.WriteString(strings.Join(subs, ","))
		sb.WriteString(")")
		enc[u] = sb.String()
		return enc[u]
	}
	fp := encode(0, true)

	canon := make([]int, n)
	next := 0
	var assign func(u int)
	assign = func(u int) {
		canon[u] = next
		next++
		order := append([]int(nil), kids[u]...)
		sort.Slice(order, func(i, j int) bool {
			if enc[order[i]] != enc[order[j]] {
				return enc[order[i]] < enc[order[j]]
			}
			return order[i] < order[j]
		})
		for _, c := range order {
			assign(c)
		}
	}
	assign(0)
	return fp, canon
}

// InversePermutation inverts a permutation produced by Fingerprint:
// inv[canon[u]] == u. It is the mapping a cached canonical-numbered plan is
// remapped through to fit a concrete pattern's numbering.
func InversePermutation(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}
