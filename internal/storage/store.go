package storage

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"sjos/internal/intern"
	"sjos/internal/xmltree"
)

// NodeRecord is the fixed-width on-page representation of an element node:
// the region encoding plus tag and parent link. Text values stay in the
// in-memory Document; structural join processing never touches them.
type NodeRecord struct {
	Start  xmltree.Pos
	End    xmltree.Pos
	Level  uint16
	Tag    xmltree.TagID
	Parent xmltree.NodeID
}

// nodeRecSize is the serialised size of a NodeRecord.
const nodeRecSize = 4 + 4 + 2 + 4 + 4

// nodesPerPage is how many NodeRecords fit in one page's payload (the first
// PageHeaderSize bytes hold the integrity header).
const nodesPerPage = PayloadSize / nodeRecSize

// rawPostingSize is the serialised size of one uncompressed posting (a
// NodeID) — the baseline the compressed blocks are measured against.
const rawPostingSize = 4

// Store is the paged element store plus tag and value indexes for one
// document: the stand-in for Timber's SHORE-backed element storage. All
// page access goes through a BufferPool so experiments observe hit/miss
// behaviour. Postings — tag lists and value-index lists alike — are stored
// as compressed delta+varint blocks (see postings.go).
type Store struct {
	doc  *storeMeta
	file PageFile
	pool *BufferPool

	nodePages int // node records occupy pages [0, nodePages)
	tagDir    []postingsRun
	tagByName map[string]xmltree.TagID

	// vidx is the (tag, value) content index; nil when the store was built
	// with StoreOptions.NoValueIndex.
	vidx *valueIndex

	// segs is non-nil for a segmented (appendable forest) store: one entry
	// per contiguous NodeID slice, in NodeID order. A static build-once
	// store keeps segs nil and the arithmetic node-page layout. Mutations
	// never modify a published Store — they derive a new version sharing
	// file, pool and counters — so everything here is immutable after
	// construction and safe for concurrent readers.
	segs     []*segment
	tailPage PageID // next free page (segmented stores only)
	opts     StoreOptions

	// Compression and probe accounting (see ContentStats).
	postingsBytes    int
	rawPostingsBytes int
	internStats      intern.Stats
	// shared holds the monotone counters every version of a store reports
	// against: derived versions alias it so probes and block decodes stay
	// continuous across mutations.
	shared *storeCounters
}

// storeCounters are the cross-version monotone counters.
type storeCounters struct {
	probes        atomic.Uint64
	blocksDecoded atomic.Uint64
}

// storeMeta holds the document-level metadata the store needs after build.
type storeMeta struct {
	NumNodes int
	NumTags  int
	Tags     []string
}

// StoreOptions tunes store construction.
type StoreOptions struct {
	// NoValueIndex skips building the (tag, value) content index; value
	// predicates then always run as scan+filter.
	NoValueIndex bool
}

// BuildStore serialises doc into a fresh MemFile and returns a Store reading
// through a buffer pool with the given number of frames (DefaultPoolFrames
// if <= 0).
func BuildStore(doc *xmltree.Document, poolFrames int) (*Store, error) {
	return BuildStoreOn(NewMemFile(), doc, poolFrames)
}

// BuildStoreOn serialises doc into the given (empty) page file — e.g. a
// DiskFile for a persistent database image — and returns a Store reading
// through a buffer pool with the given number of frames.
func BuildStoreOn(file PageFile, doc *xmltree.Document, poolFrames int) (*Store, error) {
	return BuildStoreOnOpts(file, doc, poolFrames, StoreOptions{})
}

// BuildStoreOnOpts is BuildStoreOn with construction options.
func BuildStoreOnOpts(file PageFile, doc *xmltree.Document, poolFrames int, opts StoreOptions) (*Store, error) {
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("storage: BuildStoreOn needs an empty file, got %d pages", file.NumPages())
	}
	n := doc.NumNodes()

	// Node segment.
	var page Page
	nodePages := (n + nodesPerPage - 1) / nodesPerPage
	for p := 0; p < nodePages; p++ {
		for i := 0; i < nodesPerPage; i++ {
			id := p*nodesPerPage + i
			if id >= n {
				break
			}
			encodeNode(page[PageHeaderSize+i*nodeRecSize:], doc, xmltree.NodeID(id))
		}
		SealPage(PageID(p), &page)
		if err := file.WritePage(PageID(p), &page); err != nil {
			return nil, fmt.Errorf("storage: build node segment: %w", err)
		}
		page = Page{}
	}

	// Postings segment: all tags' postings, compressed block-wise, followed
	// by the value index's postings on the same writer.
	w := newPostingsWriter(file, PageID(nodePages))
	dir := make([]postingsRun, doc.NumTags())
	rawBytes := 0
	for t := 0; t < doc.NumTags(); t++ {
		nodes := doc.NodesWithTag(xmltree.TagID(t))
		run, err := w.writeRun(nodes, doc.Start)
		if err != nil {
			return nil, fmt.Errorf("storage: build postings: %w", err)
		}
		dir[t] = run
		rawBytes += rawPostingSize * len(nodes)
	}

	var vx *valueIndex
	if !opts.NoValueIndex {
		var err error
		var vxRaw int
		vx, vxRaw, err = buildValueIndex(w, doc)
		if err != nil {
			return nil, fmt.Errorf("storage: build value index: %w", err)
		}
		rawBytes += vxRaw
	}
	if _, err := w.finish(); err != nil {
		return nil, err
	}

	tags := make([]string, doc.NumTags())
	byName := make(map[string]xmltree.TagID, doc.NumTags())
	for t := range tags {
		tags[t] = doc.TagName(xmltree.TagID(t))
		byName[tags[t]] = xmltree.TagID(t)
	}
	return &Store{
		doc:              &storeMeta{NumNodes: n, NumTags: doc.NumTags(), Tags: tags},
		file:             file,
		pool:             NewBufferPool(file, poolFrames),
		nodePages:        nodePages,
		tagDir:           dir,
		tagByName:        byName,
		vidx:             vx,
		opts:             opts,
		postingsBytes:    w.bytes,
		rawPostingsBytes: rawBytes,
		internStats:      doc.InternStats(),
		shared:           &storeCounters{},
	}, nil
}

func encodeNode(b []byte, doc *xmltree.Document, id xmltree.NodeID) {
	binary.LittleEndian.PutUint32(b[0:], uint32(doc.Start(id)))
	binary.LittleEndian.PutUint32(b[4:], uint32(doc.End(id)))
	binary.LittleEndian.PutUint16(b[8:], doc.Level(id))
	binary.LittleEndian.PutUint32(b[10:], uint32(doc.Tag(id)))
	binary.LittleEndian.PutUint32(b[14:], uint32(doc.Parent(id)))
}

func decodeNode(b []byte) NodeRecord {
	return NodeRecord{
		Start:  xmltree.Pos(binary.LittleEndian.Uint32(b[0:])),
		End:    xmltree.Pos(binary.LittleEndian.Uint32(b[4:])),
		Level:  binary.LittleEndian.Uint16(b[8:]),
		Tag:    xmltree.TagID(binary.LittleEndian.Uint32(b[10:])),
		Parent: xmltree.NodeID(binary.LittleEndian.Uint32(b[14:])),
	}
}

// NumNodes returns the number of stored element nodes.
func (s *Store) NumNodes() int { return s.doc.NumNodes }

// Pool returns the store's buffer pool (for stats and tests).
func (s *Store) Pool() *BufferPool { return s.pool }

// PoolStats returns a snapshot of the store's buffer pool counters — the
// page-cache hit/miss behaviour of everything executed against this store,
// including concurrent partition-parallel scans (the pool counts under its
// own lock).
func (s *Store) PoolStats() PoolStats { return s.pool.Stats() }

// File returns the underlying page file (for stats and tests).
func (s *Store) File() PageFile { return s.file }

// TagCount returns the number of postings for tag t — the |candidates|
// statistic the optimizer's cost model consumes.
func (s *Store) TagCount(t xmltree.TagID) int {
	if int(t) >= len(s.tagDir) {
		return 0
	}
	return s.tagDir[t].count
}

// Node fetches one node record through the buffer pool.
func (s *Store) Node(id xmltree.NodeID) (NodeRecord, error) {
	return s.NodeCtx(context.Background(), id)
}

// nodeSlot locates node id's record: the page holding it and the byte
// offset within the page. A static store lays records out contiguously; a
// segmented store binary-searches its segment table (segments are in NodeID
// order), with the single-segment case short-circuited.
func (s *Store) nodeSlot(id xmltree.NodeID) (PageID, int, error) {
	if s.segs == nil {
		return PageID(int(id) / nodesPerPage), PageHeaderSize + (int(id)%nodesPerPage)*nodeRecSize, nil
	}
	i := sort.Search(len(s.segs), func(j int) bool { return s.segs[j].first > id }) - 1
	if i < 0 {
		return 0, 0, fmt.Errorf("storage: node %d before first segment", id)
	}
	sg := s.segs[i]
	local := int(id - sg.first)
	if local >= sg.count {
		return 0, 0, fmt.Errorf("storage: node %d outside segment %d", id, i)
	}
	return sg.nodeBase + PageID(local/nodesPerPage), PageHeaderSize + (local%nodesPerPage)*nodeRecSize, nil
}

// NodeCtx is Node under a context: cancellation aborts page-read waits
// (including the pool's retry backoffs).
func (s *Store) NodeCtx(ctx context.Context, id xmltree.NodeID) (NodeRecord, error) {
	p, off, err := s.nodeSlot(id)
	if err != nil {
		return NodeRecord{}, err
	}
	pg, err := s.pool.GetCtx(ctx, p)
	if err != nil {
		return NodeRecord{}, err
	}
	rec := decodeNode(pg[off:])
	s.pool.Unpin(p, false)
	return rec, nil
}

// TagScanner iterates one tag's postings in document order, fetching node
// records through the buffer pool. It is the physical realisation of the
// paper's "index access" leaf operator. A scanner opened with ScanTagRange
// is additionally restricted to nodes whose Start position lies inside a
// half-open range — the partition-parallel executor's leaf access path.
// All iteration mechanics (block decode, skip-ahead, range clipping) live
// in the embedded runCursor, shared with the value-index scanners.
type TagScanner struct {
	runCursor
}

// ScanTag opens a scanner over tag t's postings.
func (s *Store) ScanTag(t xmltree.TagID) *TagScanner {
	return s.ScanTagCtx(context.Background(), t)
}

// ScanTagCtx is ScanTag under a context: the scanner's page reads — and any
// retry backoffs inside them — abort when ctx is cancelled.
func (s *Store) ScanTagCtx(ctx context.Context, t xmltree.TagID) *TagScanner {
	var run postingsRun
	if int(t) < len(s.tagDir) {
		run = s.tagDir[t]
	}
	sc := &TagScanner{}
	sc.init(s, ctx, run)
	return sc
}

// ScanTagRange opens a scanner over the subset of tag t's postings whose
// Start position lies in [lo, hi). The scanner seeks to the first in-range
// posting on the first Next call — a binary search over the in-memory
// block directory plus one block decode (postings are in document order,
// and document order is Start order) — so a partition pays O(log) work
// instead of skipping every earlier posting.
func (s *Store) ScanTagRange(t xmltree.TagID, lo, hi xmltree.Pos) *TagScanner {
	return s.ScanTagRangeCtx(context.Background(), t, lo, hi)
}

// ScanTagRangeCtx is ScanTagRange under a context (see ScanTagCtx).
func (s *Store) ScanTagRangeCtx(ctx context.Context, t xmltree.TagID, lo, hi xmltree.Pos) *TagScanner {
	sc := s.ScanTagCtx(ctx, t)
	sc.restrict(lo, hi)
	return sc
}

// ContentStats reports the store's content-index and compression counters:
// how many value probes and block decodes the store has served, the
// compressed versus raw postings footprint, and the document build's
// intern-table behaviour.
type ContentStats struct {
	// ValueIndexed reports whether the (tag, value) index was built.
	ValueIndexed bool
	// ValueRuns is the number of (tag, value) postings lists persisted.
	ValueRuns int
	// NumericTags is the number of tags with a numeric-range index.
	NumericTags int
	// ValueProbes counts index probes served (sjos_value_index_probes_total).
	ValueProbes uint64
	// BlocksDecoded counts compressed postings blocks decoded
	// (sjos_postings_blocks_decoded_total).
	BlocksDecoded uint64
	// PostingsBytes is the encoded size of all postings (tag + value);
	// RawPostingsBytes the size the same lists would occupy uncompressed
	// (4 bytes per posting).
	PostingsBytes    int
	RawPostingsBytes int
	// Intern is the document build's value intern-table snapshot.
	Intern intern.Stats
}

// ContentStats returns a snapshot of the store's content-index counters.
func (s *Store) ContentStats() ContentStats {
	cs := ContentStats{
		ValueIndexed:     s.vidx != nil,
		ValueProbes:      s.shared.probes.Load(),
		BlocksDecoded:    s.shared.blocksDecoded.Load(),
		PostingsBytes:    s.postingsBytes,
		RawPostingsBytes: s.rawPostingsBytes,
		Intern:           s.internStats,
	}
	if s.vidx != nil {
		cs.ValueRuns = s.vidx.runs
		for t := range s.vidx.nums {
			if s.vidx.nums[t].allNumeric && len(s.vidx.nums[t].vals) > 0 {
				cs.NumericTags++
			}
		}
	}
	return cs
}
