package xmltree

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestImageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		d := RandomDocument(rng, 1+rng.Intn(300), []string{"a", "b", "c"})
		var buf bytes.Buffer
		if err := WriteImage(d, &buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadImage(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.NumNodes() != d.NumNodes() || got.NumTags() != d.NumTags() {
			t.Fatalf("trial %d: sizes differ", trial)
		}
		for i := 0; i < d.NumNodes(); i++ {
			id := NodeID(i)
			if got.Start(id) != d.Start(id) || got.End(id) != d.End(id) ||
				got.Level(id) != d.Level(id) || got.Parent(id) != d.Parent(id) ||
				got.TagName(got.Tag(id)) != d.TagName(d.Tag(id)) ||
				got.Value(id) != d.Value(id) {
				t.Fatalf("trial %d: node %d differs", trial, i)
			}
		}
	}
}

func TestImageWithValues(t *testing.T) {
	d, err := ParseString(`<db><item id="1">hello &amp; goodbye</item><item/></db>`)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteImage(d, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	item, _ := got.LookupTag("item")
	if got.Value(got.NodesWithTag(item)[0]) != "hello & goodbye" {
		t.Fatal("value lost")
	}
	attr, ok := got.LookupTag("@id")
	if !ok || got.TagCount(attr) != 1 {
		t.Fatal("attribute pseudo-element lost")
	}
}

func TestImageRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________"),
		append([]byte(imageMagic), 0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0), // absurd node count
	}
	for i, b := range cases {
		if _, err := ReadImage(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated valid image.
	d, _ := ParseString(`<a><b/></a>`)
	var buf bytes.Buffer
	if err := WriteImage(d, &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{9, len(full) / 2, len(full) - 1} {
		if _, err := ReadImage(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated image (%d bytes) accepted", cut)
		}
	}
}

func TestImageCorruptionDetected(t *testing.T) {
	d, _ := ParseString(`<a><b/><b/></a>`)
	var buf bytes.Buffer
	if err := WriteImage(d, &buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte inside the node records (after magic+counts+tags).
	idx := len(raw) - 10
	raw[idx] ^= 0x7F
	if _, err := ReadImage(bytes.NewReader(raw)); err == nil {
		// Some flips survive as semantically valid documents; at least
		// ensure validation ran by checking a flip in start positions.
		t.Skip("flip produced a still-valid image; validation path covered elsewhere")
	}
}

func TestImageSizeIsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	small := RandomDocument(rng, 1000, []string{"alpha", "beta"})
	big := RandomDocument(rng, 10000, []string{"alpha", "beta"})
	size := func(d *Document) int {
		var img bytes.Buffer
		if err := WriteImage(d, &img); err != nil {
			t.Fatal(err)
		}
		return img.Len()
	}
	s, b := size(small), size(big)
	// 19 fixed bytes per node plus value bytes; ratio must track node count.
	if b < 8*s || b > 12*s {
		t.Errorf("image sizes %d / %d not ~linear in node count", s, b)
	}
}
