package exec

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// ParallelExec drives one physical plan over K disjoint region partitions
// of the document, executing an independent clone of the plan per partition
// on a bounded worker pool.
//
// The region encoding makes the partitioning exact: every match of a tree
// pattern lies entirely inside the region of the node bound to the pattern
// root, and storage.PartitionDoc only cuts between top-level candidate
// regions of the root's tag, so each match is produced by exactly one
// partition and every column of every match stays inside its partition's
// position range. Partition outputs are therefore disjoint, internally
// ordered by the plan's output column, and segment the global order — the
// merge is a plain ordered append, preserving the executor's
// output-ordering invariant with no comparison work.
//
// Per-worker Stats are accumulated into the driving Context's Stats under a
// lock as partitions complete. Because the partition ranges tile the
// postings space, the semantic counters (OutputTuples, BufferedPairs,
// SortedTuples) exactly match a serial execution of the same plan; the
// work counters (ScannedTuples, StackOps) can differ by a few units per
// partition boundary, since a streaming join stops consuming its left
// input once the right side exhausts and the serial and partitioned runs
// reach that point at different places.
type ParallelExec struct {
	// Workers bounds the number of concurrently executing plan clones.
	// <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Partitions is the number of region ranges the document is split
	// into; <= 0 means Workers. More partitions than workers improve load
	// balance at a small per-partition setup cost.
	Partitions int
	// BuildOp, when non-nil, compiles each partition's fresh operator tree
	// in place of Build(pat, p). The tracing layer points it at a
	// TraceBuilder so every clone accumulates into one shared
	// plan-shaped trace.
	BuildOp func() (Operator, error)
	// Batch selects the batched execution path for every partition (and
	// for the degenerate single-partition fallback).
	Batch bool
}

// build compiles one operator tree for a partition, honouring BuildOp.
func (pe *ParallelExec) build(pat *pattern.Pattern, p *plan.Node) (Operator, error) {
	if pe.BuildOp != nil {
		return pe.BuildOp()
	}
	return Build(pat, p)
}

func (pe *ParallelExec) workers() int {
	if pe.Workers > 0 {
		return pe.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ranges computes the partition ranges for pat over c's document: split on
// the pattern root's tag, weighted by the postings counts of every tag the
// plan scans (with multiplicity — a tag scanned twice weighs twice).
func (pe *ParallelExec) ranges(c *Context, pat *pattern.Pattern) []storage.Range {
	k := pe.Partitions
	if k <= 0 {
		k = pe.workers()
	}
	rootTag, ok := c.Doc.LookupTag(pat.Nodes[0].Tag)
	if !ok {
		return []storage.Range{storage.FullRange(c.Doc)}
	}
	weight := make([]xmltree.TagID, 0, pat.N())
	for _, nd := range pat.Nodes {
		if t, ok := c.Doc.LookupTag(nd.Tag); ok {
			weight = append(weight, t)
		}
	}
	return storage.PartitionDoc(c.Doc, rootTag, weight, k)
}

// Run executes p over disjoint partitions and returns the concatenated
// result: the same tuples, in the same (document) order, as exec.Run. ctx
// cancels in-flight partitions; base collects the merged statistics.
func (pe *ParallelExec) Run(ctx context.Context, base *Context, pat *pattern.Pattern, p *plan.Node) ([]Tuple, error) {
	return pe.run(ctx, base, pat, p, -1)
}

// RunLimit is Run stopped after the first n result tuples (in output
// order). Each partition produces at most n tuples, and as soon as an
// order-prefix of completed partitions holds n tuples the remaining
// workers are cancelled — the parallel counterpart of Limit's early Close.
func (pe *ParallelExec) RunLimit(ctx context.Context, base *Context, pat *pattern.Pattern, p *plan.Node, n int) ([]Tuple, error) {
	if n < 0 {
		n = 0
	}
	return pe.run(ctx, base, pat, p, n)
}

// RunCount executes p over disjoint partitions, returning only the total
// match count.
func (pe *ParallelExec) RunCount(ctx context.Context, base *Context, pat *pattern.Pattern, p *plan.Node) (int, error) {
	parts := pe.ranges(base, pat)
	if len(parts) == 1 {
		return pe.countSerial(base, pat, p)
	}
	counts := make([]int, len(parts))
	err := pe.forEachPartition(ctx, base, pat, p, parts, func(cctx context.Context, i int, local *Context, root Operator) error {
		var n int
		var err error
		if pe.Batch {
			n, err = drainCountBatched(cctx, local, root)
		} else {
			n, err = drainCount(cctx, local, root)
		}
		counts[i] = n
		return err
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	base.Stats.OutputTuples = total
	return total, nil
}

// errLimitSatisfied signals (worker -> pool) that a complete order-prefix
// of partitions already holds the first k tuples; it is translated into a
// cooperative cancel, not a failure.
var errLimitSatisfied = errors.New("exec: parallel limit satisfied")

// run is the shared tuple-collecting driver: limit < 0 collects
// everything, limit >= 0 stops after the first limit tuples of the
// concatenated output.
func (pe *ParallelExec) run(ctx context.Context, base *Context, pat *pattern.Pattern, p *plan.Node, limit int) ([]Tuple, error) {
	parts := pe.ranges(base, pat)
	if len(parts) == 1 {
		// Degenerate split (K=1, unknown root tag, or a document whose
		// root tag admits no cut): run the ordinary serial path.
		return pe.runSerial(base, pat, p, limit)
	}

	outs := make([][]Tuple, len(parts))
	done := make([]bool, len(parts))
	var mu sync.Mutex // guards done and the prefix check
	err := pe.forEachPartition(ctx, base, pat, p, parts, func(cctx context.Context, i int, local *Context, root Operator) error {
		var rootOp Operator = root
		if limit >= 0 {
			// Each partition needs at most `limit` tuples: the final
			// answer is an order-prefix of the concatenation.
			rootOp = NewLimit(root, limit)
		}
		var out []Tuple
		var err error
		if pe.Batch {
			out, err = drainTuplesBatched(cctx, local, rootOp)
		} else {
			out, err = drainTuples(cctx, local, rootOp)
		}
		if err != nil {
			return err
		}
		outs[i] = NormalizeAll(root.Schema(), pat.N(), out)
		if limit >= 0 {
			mu.Lock()
			done[i] = true
			got := 0
			for j := 0; j < len(parts) && done[j]; j++ {
				got += len(outs[j])
			}
			mu.Unlock()
			if got >= limit {
				return errLimitSatisfied
			}
		} else {
			mu.Lock()
			done[i] = true
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Ordered append: partitions tile the position space in order, and
	// every column of a match stays inside its partition's range, so
	// concatenation preserves the plan's output order globally. Under a
	// limit, only the complete prefix of partitions is consulted — later
	// partitions may have been cancelled.
	total := 0
	for i, out := range outs {
		if !done[i] {
			break
		}
		total += len(out)
	}
	if limit >= 0 && total > limit {
		total = limit
	}
	result := make([]Tuple, 0, total)
	for _, out := range outs {
		for _, t := range out {
			if len(result) == total {
				return finishRun(base, result), nil
			}
			result = append(result, t)
		}
	}
	return finishRun(base, result), nil
}

// runSerial is the degenerate single-partition path of run. It carries the
// same panic guarantee as the partitioned path: a panicking operator
// surfaces as a *PanicError, never as a process crash.
func (pe *ParallelExec) runSerial(base *Context, pat *pattern.Pattern, p *plan.Node, limit int) (out []Tuple, err error) {
	defer func() {
		if perr := RecoverPanic(recover()); perr != nil {
			out, err = nil, perr
		}
	}()
	op, err := pe.build(pat, p)
	if err != nil {
		return nil, err
	}
	var root Operator = op
	if limit >= 0 {
		root = NewLimit(op, limit)
	}
	if pe.Batch {
		out, err = DrainBatched(base, root)
	} else {
		out, err = Drain(base, root)
	}
	if err != nil {
		return nil, err
	}
	return NormalizeAll(op.Schema(), pat.N(), out), nil
}

// countSerial is runSerial for RunCount.
func (pe *ParallelExec) countSerial(base *Context, pat *pattern.Pattern, p *plan.Node) (n int, err error) {
	defer func() {
		if perr := RecoverPanic(recover()); perr != nil {
			n, err = 0, perr
		}
	}()
	op, err := pe.build(pat, p)
	if err != nil {
		return 0, err
	}
	if pe.Batch {
		return CountBatched(base, op)
	}
	return Count(base, op)
}

// finishRun fixes up the merged OutputTuples counter (limit trimming may
// discard tuples a partition already counted).
func finishRun(base *Context, result []Tuple) []Tuple {
	base.Stats.OutputTuples = len(result)
	return result
}

// forEachPartition runs body for every partition on a bounded worker pool.
// Each invocation gets a fresh clone of the plan's operator tree and a
// partition-local Context whose Stats are merged into base as partitions
// finish. The first real error cancels the remaining work and is returned;
// errLimitSatisfied cancels the pool but reports success.
func (pe *ParallelExec) forEachPartition(
	ctx context.Context,
	base *Context,
	pat *pattern.Pattern,
	p *plan.Node,
	parts []storage.Range,
	body func(cctx context.Context, i int, local *Context, root Operator) error,
) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	nWorkers := pe.workers()
	if nWorkers > len(parts) {
		nWorkers = len(parts)
	}
	var (
		next     int32 = -1
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1))
				if i >= len(parts) || cctx.Err() != nil {
					return
				}
				rg := parts[i]
				local := &Context{
					Doc:       base.Doc,
					Store:     base.Store,
					Range:     &rg,
					Ctx:       cctx,
					Interrupt: cctx.Err,
				}
				err := pe.runPartition(pat, p, cctx, i, local, body)
				mu.Lock()
				base.Stats.Add(local.Stats)
				switch {
				case err == nil:
				case errors.Is(err, errLimitSatisfied):
					cancel() // prefix complete: stop remaining workers
				case firstErr == nil && cctx.Err() == nil:
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// A cancel initiated by the caller is an error; a limit-satisfied
	// cancel is success.
	return ctx.Err()
}

// runPartition executes one partition's build + body, converting a panic in
// either into a *PanicError: a bug in one worker fails the query instead of
// killing the process (Run-level recovery cannot see worker goroutines).
func (pe *ParallelExec) runPartition(
	pat *pattern.Pattern,
	p *plan.Node,
	cctx context.Context,
	i int,
	local *Context,
	body func(cctx context.Context, i int, local *Context, root Operator) error,
) (err error) {
	defer func() {
		if perr := RecoverPanic(recover()); perr != nil {
			err = perr
		}
	}()
	root, err := pe.build(pat, p)
	if err != nil {
		return err
	}
	return body(cctx, i, local, root)
}

// drainTuples runs root to completion on local, polling cctx between
// batches of output tuples so cancelled queries stop promptly.
func drainTuples(cctx context.Context, local *Context, root Operator) ([]Tuple, error) {
	if err := root.Open(local); err != nil {
		return nil, err
	}
	var out []Tuple
	for {
		if len(out)&63 == 0 {
			if err := cctx.Err(); err != nil {
				root.Close()
				return nil, err
			}
		}
		t, ok, err := root.Next()
		if err != nil {
			root.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := root.Close(); err != nil {
		return nil, err
	}
	local.Stats.OutputTuples = len(out)
	return out, nil
}

// drainTuplesBatched is drainTuples over the batched path, polling cctx
// once per batch; retained rows are copied out of the reusable batch.
func drainTuplesBatched(cctx context.Context, local *Context, root Operator) ([]Tuple, error) {
	bop := AsBatchOperator(root)
	if err := root.Open(local); err != nil {
		return nil, err
	}
	var (
		out   []Tuple
		arena nodeArena
		b     = NewBatch(root.Schema().Width())
	)
	for {
		if err := cctx.Err(); err != nil {
			root.Close()
			return nil, err
		}
		if err := bop.NextBatch(b); err != nil {
			root.Close()
			return nil, err
		}
		if b.Len() == 0 {
			break
		}
		local.Stats.Batches++
		for i := 0; i < b.Len(); i++ {
			out = append(out, arena.copyTuple(b.Row(i)))
		}
	}
	if err := root.Close(); err != nil {
		return nil, err
	}
	local.Stats.OutputTuples = len(out)
	return out, nil
}

// drainCountBatched is drainCount over the batched path.
func drainCountBatched(cctx context.Context, local *Context, root Operator) (int, error) {
	bop := AsBatchOperator(root)
	if err := root.Open(local); err != nil {
		return 0, err
	}
	n := 0
	b := NewBatch(root.Schema().Width())
	for {
		if err := cctx.Err(); err != nil {
			root.Close()
			return 0, err
		}
		if err := bop.NextBatch(b); err != nil {
			root.Close()
			return 0, err
		}
		if b.Len() == 0 {
			break
		}
		local.Stats.Batches++
		n += b.Len()
	}
	if err := root.Close(); err != nil {
		return 0, err
	}
	local.Stats.OutputTuples = n
	return n, nil
}

// drainCount is drainTuples without materialisation.
func drainCount(cctx context.Context, local *Context, root Operator) (int, error) {
	if err := root.Open(local); err != nil {
		return 0, err
	}
	n := 0
	for {
		if n&63 == 0 {
			if err := cctx.Err(); err != nil {
				root.Close()
				return 0, err
			}
		}
		_, ok, err := root.Next()
		if err != nil {
			root.Close()
			return 0, err
		}
		if !ok {
			break
		}
		n++
	}
	if err := root.Close(); err != nil {
		return 0, err
	}
	local.Stats.OutputTuples = n
	return n, nil
}
