package sjos

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"sjos/internal/storage"
)

// orderXML builds a little order document with n items; each item
// contributes exactly one match to //order//item/name and one to
// //item[qty >= 5]/name when its qty crosses the bound.
func orderXML(n int) string {
	s := "<order>"
	for i := 0; i < n; i++ {
		s += fmt.Sprintf("<item><name>w%d</name><qty>%d</qty></item>", i, i)
	}
	return s + "</order>"
}

func countMatches(t testing.TB, db *Database, q string) int {
	t.Helper()
	res, err := db.Query(q, MethodDPP)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	return len(res.Matches)
}

func TestIngestInsertDeleteReplace(t *testing.T) {
	db, err := OpenDatabase(&Options{WALFile: storage.NewMemFile()})
	if err != nil {
		t.Fatal(err)
	}
	if !db.IngestEnabled() {
		t.Fatal("ingest not enabled")
	}
	if got := countMatches(t, db, "//order//item/name"); got != 0 {
		t.Fatalf("empty database matched %d", got)
	}

	for i, n := range []int{3, 5, 7} {
		if err := db.InsertString(fmt.Sprintf("o%d", i), orderXML(n)); err != nil {
			t.Fatal(err)
		}
	}
	if got := countMatches(t, db, "//order//item/name"); got != 15 {
		t.Fatalf("after inserts: %d matches, want 15", got)
	}
	if got, want := db.MemberIDs(), []string{"o0", "o1", "o2"}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("MemberIDs = %v, want %v", got, want)
	}

	if err := db.Delete("o1"); err != nil {
		t.Fatal(err)
	}
	if got := countMatches(t, db, "//order//item/name"); got != 10 {
		t.Fatalf("after delete: %d matches, want 10", got)
	}
	if db.HasMember("o1") {
		t.Fatal("deleted member still visible")
	}

	if err := db.ReplaceString("o2", orderXML(2)); err != nil {
		t.Fatal(err)
	}
	if got := countMatches(t, db, "//order//item/name"); got != 5 {
		t.Fatalf("after replace: %d matches, want 5", got)
	}

	// Value predicates keep working across mutations (content index per
	// segment): o0 has qty 0..2, o2 has qty 0..1 -> none reach 5.
	if got := countMatches(t, db, "//item[qty >= 5]/name"); got != 0 {
		t.Fatalf("qty >= 5: %d matches, want 0", got)
	}
	if err := db.InsertString("big", orderXML(8)); err != nil {
		t.Fatal(err)
	}
	if got := countMatches(t, db, "//item[qty >= 5]/name"); got != 3 {
		t.Fatalf("qty >= 5 after insert: %d matches, want 3", got)
	}

	// Error paths leave the database usable.
	if err := db.InsertString("o0", orderXML(1)); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if err := db.Delete("nope"); err == nil {
		t.Fatal("deleting unknown doc succeeded")
	}
	if err := db.ReplaceString("nope", orderXML(1)); err == nil {
		t.Fatal("replacing unknown doc succeeded")
	}
	if err := db.InsertString("", orderXML(1)); err == nil {
		t.Fatal("empty ID insert succeeded")
	}
	if got := countMatches(t, db, "//order//item/name"); got != 13 {
		t.Fatalf("after error paths: %d matches, want 13", got)
	}
}

func TestIngestDisabledOnStaticDatabase(t *testing.T) {
	db := openDB(t)
	if db.IngestEnabled() {
		t.Fatal("static database reports ingest enabled")
	}
	if err := db.InsertString("x", orderXML(1)); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("Insert = %v, want ErrNoWAL", err)
	}
	if err := db.Delete("x"); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("Delete = %v, want ErrNoWAL", err)
	}
	if db.NumMembers() != 1 || db.MemberIDs() != nil {
		t.Fatalf("static membership: %d, %v", db.NumMembers(), db.MemberIDs())
	}
}

func TestIngestSeededFromLoadXML(t *testing.T) {
	static := openDB(t)
	db, err := LoadXMLString(facadeXML, &Options{WALFile: storage.NewMemFile()})
	if err != nil {
		t.Fatal(err)
	}
	if !db.HasMember(SeedDocID) {
		t.Fatalf("seed member %q missing: %v", SeedDocID, db.MemberIDs())
	}
	for _, q := range []string{
		"//manager//employee/name",
		"//manager[.//employee/name]//department/name",
		"//employee[salary >= 40000]/name",
	} {
		if got, want := countMatches(t, db, q), countMatches(t, static, q); got != want {
			t.Errorf("%s: ingest %d matches, static %d", q, got, want)
		}
	}
	// The forest stays queryable as members arrive next to the seed.
	if err := db.InsertString("extra", facadeXML); err != nil {
		t.Fatal(err)
	}
	q := "//manager//employee/name"
	if got, want := countMatches(t, db, q), 2*countMatches(t, static, q); got != want {
		t.Errorf("after second copy: %d matches, want %d", got, want)
	}
}

// mutateForRecovery drives one representative mutation history and returns
// the expected final match count for //order//item/name.
func mutateForRecovery(t *testing.T, db *Database) int {
	t.Helper()
	steps := []struct {
		op string
		id string
		n  int
	}{
		{"ins", "a", 4}, {"ins", "b", 6}, {"ins", "c", 3},
		{"del", "b", 0}, {"rep", "a", 9}, {"ins", "d", 2},
	}
	for _, s := range steps {
		var err error
		switch s.op {
		case "ins":
			err = db.InsertString(s.id, orderXML(s.n))
		case "del":
			err = db.Delete(s.id)
		case "rep":
			err = db.ReplaceString(s.id, orderXML(s.n))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", s.op, s.id, err)
		}
	}
	return 9 + 3 + 2 // a(replaced)=9, c=3, d=2
}

func TestIngestRecovery(t *testing.T) {
	wal := storage.NewMemFile()
	db, err := OpenDatabase(&Options{WALFile: wal})
	if err != nil {
		t.Fatal(err)
	}
	want := mutateForRecovery(t, db)
	if got := countMatches(t, db, "//order//item/name"); got != want {
		t.Fatalf("pre-recovery: %d matches, want %d", got, want)
	}
	wantIDs := fmt.Sprint(db.MemberIDs())

	// Reopen from the same log — replay is idempotent, so recover twice
	// and check both replicas agree with the original.
	for round := 0; round < 2; round++ {
		rec, err := OpenDatabase(&Options{WALFile: wal})
		if err != nil {
			t.Fatalf("recovery round %d: %v", round, err)
		}
		if got := countMatches(t, rec, "//order//item/name"); got != want {
			t.Fatalf("round %d: %d matches, want %d", round, got, want)
		}
		if got := fmt.Sprint(rec.MemberIDs()); got != wantIDs {
			t.Fatalf("round %d: MemberIDs %s, want %s", round, got, wantIDs)
		}
		if got := countMatches(t, rec, "//item[qty >= 5]/name"); got != countMatches(t, db, "//item[qty >= 5]/name") {
			t.Fatalf("round %d: value-probe counts diverge", round)
		}
	}
}

func TestIngestRecoveryAfterCompaction(t *testing.T) {
	wal := storage.NewMemFile()
	db, err := OpenDatabase(&Options{WALFile: wal, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := mutateForRecovery(t, db)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.IngestStats().Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", db.IngestStats().Compactions)
	}
	if got := countMatches(t, db, "//order//item/name"); got != want {
		t.Fatalf("post-compaction: %d matches, want %d", got, want)
	}
	if df := db.IngestStats().DeadFraction; df != 0 {
		t.Fatalf("dead fraction %f after compaction", df)
	}
	// Mutate past the compaction snapshot, then recover: replay starts at
	// the snapshot and applies the tail.
	if err := db.InsertString("post", orderXML(5)); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDatabase(&Options{WALFile: wal})
	if err != nil {
		t.Fatal(err)
	}
	if got := countMatches(t, rec, "//order//item/name"); got != want+5 {
		t.Fatalf("recovered: %d matches, want %d", got, want+5)
	}
}

func TestIngestAutoCompaction(t *testing.T) {
	db, err := OpenDatabase(&Options{WALFile: storage.NewMemFile(), CompactThreshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := db.InsertString(fmt.Sprintf("d%d", i), orderXML(5)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := db.Delete(fmt.Sprintf("d%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.IngestStats()
	if st.Compactions == 0 {
		t.Fatalf("no automatic compaction (dead fraction %f)", st.DeadFraction)
	}
	if st.DeadFraction >= 0.4 {
		t.Fatalf("dead fraction %f still above threshold", st.DeadFraction)
	}
	if got := countMatches(t, db, "//order//item/name"); got != 5 {
		t.Fatalf("%d matches, want 5", got)
	}
}

// TestIngestIncrementalStatsMatchRebuild is the acceptance check for
// incremental statistics: after a pile of inserts and deletes, the
// incrementally maintained statistics must price plans identically to a
// from-scratch RebuildStats.
func TestIngestIncrementalStatsMatchRebuild(t *testing.T) {
	db, err := OpenDatabase(&Options{WALFile: storage.NewMemFile()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := db.InsertString(fmt.Sprintf("d%d", i), orderXML(3+i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"d1", "d4", "d6"} {
		if err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"//order//item/name",
		"//order[.//qty]//item",
		"//item[qty >= 5]/name",
	}
	type priced struct {
		cost    float64
		matches int
	}
	before := make(map[string]priced)
	for _, q := range queries {
		pat, err := ParsePattern(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Optimize(pat, MethodDPP, 0)
		if err != nil {
			t.Fatal(err)
		}
		before[q] = priced{cost: res.Cost, matches: countMatches(t, db, q)}
	}
	verBefore := db.IngestStats().StatsVersion
	db.RebuildStats()
	if v := db.IngestStats().StatsVersion; v == verBefore {
		t.Fatal("RebuildStats did not bump the stats version")
	}
	for _, q := range queries {
		pat, _ := ParsePattern(q)
		res, err := db.Optimize(pat, MethodDPP, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != before[q].cost {
			t.Errorf("%s: incremental cost %f, rebuilt cost %f", q, before[q].cost, res.Cost)
		}
		if got := countMatches(t, db, q); got != before[q].matches {
			t.Errorf("%s: matches changed across rebuild: %d -> %d", q, before[q].matches, got)
		}
	}
}

// TestIngestStatsVersionInvalidatesPlans checks every mutation bumps the
// statistics version, so cached plans from before the mutation are re-keyed.
func TestIngestStatsVersionInvalidatesPlans(t *testing.T) {
	db, err := OpenDatabase(&Options{WALFile: storage.NewMemFile()})
	if err != nil {
		t.Fatal(err)
	}
	vers := []uint64{db.IngestStats().StatsVersion}
	bump := func(what string, err error) {
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		v := db.IngestStats().StatsVersion
		if v <= vers[len(vers)-1] {
			t.Fatalf("%s did not bump stats version (%d -> %d)", what, vers[len(vers)-1], v)
		}
		vers = append(vers, v)
	}
	bump("insert", db.InsertString("a", orderXML(3)))
	bump("insert", db.InsertString("b", orderXML(4)))
	bump("replace", db.ReplaceString("a", orderXML(5)))
	bump("delete", db.Delete("b"))
}

// TestIngestConcurrentReadersSeeCommittedSnapshots hammers queries against
// a database mutating under them: every observed match count must equal a
// committed state's count (each member contributes exactly its item count,
// so any mix of torn/partial visibility breaks the equality).
func TestIngestConcurrentReadersSeeCommittedSnapshots(t *testing.T) {
	db, err := OpenDatabase(&Options{WALFile: storage.NewMemFile(), CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Every member has exactly 4 items: any committed state shows 0 mod 4.
	const items = 4
	legal := func(n int) bool { return n%items == 0 && n >= 0 && n <= 16*items }

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Query("//order//item/name", MethodDPP)
				if err != nil {
					errs <- err
					return
				}
				if !legal(len(res.Matches)) {
					errs <- fmt.Errorf("observed uncommitted state: %d matches", len(res.Matches))
					return
				}
			}
		}()
	}
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("d%d", i)
		if err := db.InsertString(id, orderXML(items)); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if err := db.Delete(fmt.Sprintf("d%d", i-1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestIngestMemberOf(t *testing.T) {
	db, err := OpenDatabase(&Options{WALFile: storage.NewMemFile()})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.InsertString("a", orderXML(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertString("b", orderXML(2)); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("//item/name", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 4 {
		t.Fatalf("%d matches, want 4", len(res.Matches))
	}
	owners := map[string]int{}
	for _, m := range res.Matches {
		id, ok := db.MemberOf(m[len(m)-1])
		if !ok {
			t.Fatalf("no member owns node %d", m[len(m)-1])
		}
		owners[id]++
	}
	if owners["a"] != 2 || owners["b"] != 2 {
		t.Fatalf("owners = %v, want a:2 b:2", owners)
	}
	if _, ok := db.MemberOf(0); ok {
		t.Fatal("synthetic root attributed to a member")
	}
}

// TestOpenDatabaseWALPath exercises the public disk-WAL convenience: a
// database opened by path, mutated, reopened by the same path, must recover
// exactly the committed members — without the caller ever touching a page
// file.
func TestOpenDatabaseWALPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	db, err := OpenDatabase(&Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.InsertString("a", orderXML(2)); err != nil {
		t.Fatal(err)
	}
	if err := db.InsertString("b", orderXML(3)); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("a"); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDatabase(&Options{WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.MemberIDs(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("recovered members %v, want [b]", got)
	}
	if n := countMatches(t, rec, "//order//item/name"); n != 3 {
		t.Fatalf("recovered matches = %d, want 3", n)
	}
	if err := rec.InsertString("c", orderXML(1)); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}

	if _, err := OpenDatabase(&Options{}); err == nil {
		t.Fatal("OpenDatabase without WALFile/WALPath accepted")
	}
	// The exported page-file constructors serve the same role explicitly.
	if f := NewMemPageFile(); f == nil || f.NumPages() != 0 {
		t.Fatal("NewMemPageFile not fresh")
	}
	cp := filepath.Join(t.TempDir(), "x.pages")
	cf, err := CreatePageFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDatabase(&Options{WALFile: cf}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPageFile(cp); err != nil {
		t.Fatal(err)
	}
}
