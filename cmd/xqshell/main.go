// Command xqshell is an interactive shell over a loaded database: type a
// tree pattern (XPath-like twig syntax) or an XQuery FLWOR expression and
// see results; prefix commands inspect the optimizer.
//
//	xqshell -dataset pers
//	xqshell -xml file.xml -method FP
//
// Inside the shell:
//
//	//manager//employee/name          run a pattern query
//	for $m in //manager return $m     run an XQuery query
//	.explain <pattern>                compare all five optimizers
//	.analyze <pattern>                EXPLAIN ANALYZE (est vs actual)
//	.trace <pattern>                  DPP search trace
//	.method DPP|FP|Greedy|...         switch optimizer (bare .method lists valid names)
//	.limit N                          rows to print (default 10)
//	.batch on|off                     toggle batched (vectorized) execution
//	.vidx on|off                      toggle value-index probes (predicate pushdown)
//	.cache                            plan cache statistics
//	.metrics                          process metrics (Prometheus text)
//	.slowlog <dur>|off                set the slow-query threshold
//	.slow                             recent slow-query log entries
//	.quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"sjos"
)

func main() {
	xmlPath := flag.String("xml", "", "XML file to load")
	dataset := flag.String("dataset", "", "generated data set: mbench, dblp or pers")
	fold := flag.Int("fold", 1, "folding factor for -dataset")
	method := flag.String("method", "DPP", "initial optimizer")
	flag.Parse()
	if (*xmlPath == "") == (*dataset == "") {
		fmt.Fprintln(os.Stderr, "xqshell: need exactly one of -xml / -dataset")
		os.Exit(2)
	}
	var db *sjos.Database
	var err error
	if *xmlPath != "" {
		f, ferr := os.Open(*xmlPath)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "xqshell:", ferr)
			os.Exit(1)
		}
		db, err = sjos.LoadXML(f, nil)
		f.Close()
	} else {
		db, err = sjos.GenerateDataset(*dataset, 1, *fold, nil)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqshell:", err)
		os.Exit(1)
	}
	m, err := sjos.ParseMethod(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xqshell:", err)
		os.Exit(1)
	}
	sh := &shell{db: db, method: m, limit: 10, out: os.Stdout}
	fmt.Printf("xqshell: %d element nodes loaded; optimizer %s. '.quit' exits.\n",
		db.NumNodes(), m)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sjos> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		if !sh.processLine(sc.Text()) {
			return
		}
	}
}

// shell holds the interactive session state; processLine is the unit the
// tests drive.
type shell struct {
	db      *sjos.Database
	method  sjos.Method
	limit   int
	nobatch bool
	novidx  bool
	out     io.Writer
}

// processLine handles one input line; it returns false when the session
// should end.
func (sh *shell) processLine(line string) bool {
	line = strings.TrimSpace(line)
	switch {
	case line == "":
		return true
	case line == ".quit" || line == ".exit":
		return false
	case strings.HasPrefix(line, ".method"):
		arg := strings.TrimSpace(strings.TrimPrefix(line, ".method"))
		if arg == "" {
			fmt.Fprintln(sh.out, "optimizer:", sh.method)
			fmt.Fprintln(sh.out, "valid:", strings.Join(sjos.MethodNames(), ", "))
			return true
		}
		m, err := sjos.ParseMethod(arg)
		if err != nil {
			fmt.Fprintln(sh.out, "error:", err)
			return true
		}
		sh.method = m
		fmt.Fprintln(sh.out, "optimizer:", m)
		return true
	case strings.HasPrefix(line, ".limit"):
		arg := strings.TrimSpace(strings.TrimPrefix(line, ".limit"))
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			fmt.Fprintln(sh.out, "error: .limit needs a non-negative integer")
			return true
		}
		sh.limit = n
		return true
	case strings.HasPrefix(line, ".batch"):
		arg := strings.TrimSpace(strings.TrimPrefix(line, ".batch"))
		switch arg {
		case "on":
			sh.nobatch = false
		case "off":
			sh.nobatch = true
		default:
			fmt.Fprintln(sh.out, "error: .batch needs 'on' or 'off'")
			return true
		}
		fmt.Fprintln(sh.out, "batched execution:", arg)
		return true
	case strings.HasPrefix(line, ".vidx"):
		arg := strings.TrimSpace(strings.TrimPrefix(line, ".vidx"))
		switch arg {
		case "on":
			sh.novidx = false
		case "off":
			sh.novidx = true
		default:
			fmt.Fprintln(sh.out, "error: .vidx needs 'on' or 'off'")
			return true
		}
		fmt.Fprintln(sh.out, "value-index probes:", arg)
		return true
	case strings.HasPrefix(line, ".explain"):
		sh.withPattern(line, ".explain", func(p *sjos.Pattern) (string, error) {
			return sh.db.Explain(p)
		})
		return true
	case strings.HasPrefix(line, ".analyze"):
		sh.withPattern(line, ".analyze", func(p *sjos.Pattern) (string, error) {
			return sh.db.ExplainAnalyze(p, sh.method)
		})
		return true
	case strings.HasPrefix(line, ".trace"):
		sh.withPattern(line, ".trace", func(p *sjos.Pattern) (string, error) {
			return sh.db.TraceDPP(p)
		})
		return true
	case line == ".cache":
		cs := sh.db.CacheStats()
		fmt.Fprintf(sh.out, "plan cache: %d/%d entries, %d hits, %d misses, %d coalesced, %d evicted, %d invalidated\n",
			cs.Entries, cs.Capacity, cs.Hits, cs.Misses, cs.Coalesced, cs.Evictions, cs.Invalidations)
		return true
	case line == ".metrics":
		sh.db.WriteMetrics(sh.out)
		return true
	case strings.HasPrefix(line, ".slowlog"):
		arg := strings.TrimSpace(strings.TrimPrefix(line, ".slowlog"))
		if arg == "off" || arg == "0" {
			sh.db.SetSlowQueryLog(0, nil)
			fmt.Fprintln(sh.out, "slow-query log: off")
			return true
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			fmt.Fprintln(sh.out, "error: .slowlog needs a positive duration (e.g. 100ms) or 'off'")
			return true
		}
		sh.db.SetSlowQueryLog(d, nil)
		fmt.Fprintf(sh.out, "slow-query log: threshold %v\n", d)
		return true
	case line == ".slow":
		entries := sh.db.SlowQueries()
		if len(entries) == 0 {
			fmt.Fprintln(sh.out, "slow-query log: empty")
			return true
		}
		for _, e := range entries {
			fmt.Fprintf(sh.out, "%s  %v (optimize %v, execute %v)  %d matches  %s\n",
				e.Pattern, e.Duration, e.OptimizeTime, e.ExecuteTime, e.Matches, e.Method)
			if e.Trace != nil {
				fmt.Fprint(sh.out, indentTrace(e.Trace.Format()))
			}
		}
		return true
	case strings.HasPrefix(line, "."):
		fmt.Fprintln(sh.out, "error: unknown command", strings.Fields(line)[0])
		return true
	case strings.HasPrefix(line, "for"):
		sh.runXQuery(line)
		return true
	default:
		sh.runPattern(line)
		return true
	}
}

// indentTrace indents a multi-line trace rendering for display under its
// slow-log entry header.
func indentTrace(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}

func (sh *shell) withPattern(line, cmd string, f func(*sjos.Pattern) (string, error)) {
	src := strings.TrimSpace(strings.TrimPrefix(line, cmd))
	pat, err := sjos.ParsePattern(src)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	s, err := f(pat)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	fmt.Fprint(sh.out, s)
}

func (sh *shell) runPattern(src string) {
	res, err := sh.db.QueryContext(context.Background(), src,
		sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: sh.method, NoBatch: sh.nobatch, NoValueIndex: sh.novidx}})
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	cached := ""
	if res.CachedPlan {
		cached = ", cached plan"
	}
	fmt.Fprintf(sh.out, "%d matches (optimize %v, execute %v%s)\n",
		len(res.Matches), res.OptimizeTime, res.ExecuteTime, cached)
	for i, m := range res.Matches {
		if i >= sh.limit {
			fmt.Fprintf(sh.out, "... and %d more\n", len(res.Matches)-sh.limit)
			break
		}
		parts := make([]string, len(m))
		for u, id := range m {
			tag := sh.db.TagName(id)
			if v := sh.db.Value(id); v != "" {
				parts[u] = fmt.Sprintf("%s=%q", tag, v)
			} else {
				parts[u] = fmt.Sprintf("%s#%d", tag, id)
			}
		}
		fmt.Fprintf(sh.out, "  (%s)\n", strings.Join(parts, ", "))
	}
}

func (sh *shell) runXQuery(src string) {
	res, err := sh.db.XQuery(src, sh.method)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	fmt.Fprintf(sh.out, "%d rows (optimize %v, execute %v)\n",
		len(res.Rows), res.OptimizeTime, res.ExecuteTime)
	for i, row := range res.Rows {
		if i >= sh.limit {
			fmt.Fprintf(sh.out, "... and %d more\n", len(res.Rows)-sh.limit)
			break
		}
		parts := make([]string, len(row))
		for j, id := range row {
			if v := sh.db.Value(id); v != "" {
				parts[j] = fmt.Sprintf("%q", v)
			} else {
				parts[j] = fmt.Sprintf("%s#%d", sh.db.TagName(id), id)
			}
		}
		fmt.Fprintf(sh.out, "  [%s]\n", strings.Join(parts, ", "))
	}
}
