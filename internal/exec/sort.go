package exec

import (
	"sort"
)

// Sort is the blocking re-order operator: it materialises its entire input,
// sorts it by the document start position of one pattern node's column, and
// then streams the result. It is the only blocking operator, so plans
// without Sort nodes are fully pipelined.
type Sort struct {
	input  Operator
	by     int // pattern node to order by
	col    int
	schema *Schema

	buf    []Tuple
	pos    int
	loaded bool
	err    error // latched load failure: every later Next returns it
	ctx    *Context
}

// NewSort builds a sort of input by pattern node u.
func NewSort(input Operator, u int) (*Sort, error) {
	col, ok := input.Schema().Col(u)
	if !ok {
		return nil, errColumn(u)
	}
	return &Sort{input: input, by: u, col: col, schema: input.Schema()}, nil
}

// Schema implements Operator.
func (s *Sort) Schema() *Schema { return s.schema }

// Open implements Operator.
func (s *Sort) Open(ctx *Context) error {
	s.ctx = ctx
	return s.input.Open(ctx)
}

// Next implements Operator.
func (s *Sort) Next() (Tuple, bool, error) {
	if s.err != nil {
		return nil, false, s.err
	}
	if !s.loaded {
		if err := s.load(); err != nil {
			// Latch the failure: a partially-loaded buffer is not valid
			// output, so every subsequent Next must keep failing instead
			// of serving the unsorted remnant.
			s.err = err
			s.buf = nil
			return nil, false, err
		}
	}
	if s.pos >= len(s.buf) {
		return nil, false, nil
	}
	t := s.buf[s.pos]
	s.pos++
	return t, true, nil
}

// NextBatch implements BatchOperator: the input is materialised through its
// own batched path (one virtual call per input batch), and the sorted
// buffer is then served in batch-sized runs.
func (s *Sort) NextBatch(b *Batch) error {
	b.Reset()
	if s.err != nil {
		return s.err
	}
	if !s.loaded {
		if err := s.loadBatched(); err != nil {
			s.err = err
			s.buf = nil
			return err
		}
	}
	for s.pos < len(s.buf) && !b.Full() {
		b.AppendRow(s.buf[s.pos])
		s.pos++
	}
	return nil
}

func (s *Sort) load() error {
	s.loaded = true
	for {
		t, ok, err := s.input.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.buf = append(s.buf, t)
	}
	s.sortBuf()
	return nil
}

// loadBatched is load over the input's batched path; batch rows are
// ephemeral, so retained tuples are copied into an arena.
func (s *Sort) loadBatched() error {
	s.loaded = true
	bop := AsBatchOperator(s.input)
	in := NewBatch(s.schema.Width())
	var arena nodeArena
	for {
		if err := bop.NextBatch(in); err != nil {
			return err
		}
		if in.Len() == 0 {
			break
		}
		for i := 0; i < in.Len(); i++ {
			s.buf = append(s.buf, arena.copyTuple(in.Row(i)))
		}
	}
	s.sortBuf()
	return nil
}

func (s *Sort) sortBuf() {
	s.ctx.Stats.SortedTuples += len(s.buf)
	doc := s.ctx.Doc
	col := s.col
	// Stable, so equal keys keep their upstream order — deterministic
	// output for result comparison across plans.
	sort.SliceStable(s.buf, func(i, j int) bool {
		return doc.Start(s.buf[i][col]) < doc.Start(s.buf[j][col])
	})
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.buf = nil
	return s.input.Close()
}
