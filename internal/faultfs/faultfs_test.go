package faultfs

import (
	"errors"
	"testing"
	"time"

	"sjos/internal/storage"
)

func seededFile(t *testing.T, pages int) *storage.MemFile {
	t.Helper()
	mf := storage.NewMemFile()
	for i := 0; i < pages; i++ {
		var p storage.Page
		p[storage.PageHeaderSize] = byte(i)
		storage.SealPage(storage.PageID(i), &p)
		if err := mf.WritePage(storage.PageID(i), &p); err != nil {
			t.Fatal(err)
		}
	}
	return mf
}

func TestFailNthReadPermanent(t *testing.T) {
	f := Wrap(seededFile(t, 4), Policy{FailNthRead: 3})
	var p storage.Page
	for i := 1; i <= 2; i++ {
		if err := f.ReadPage(0, &p); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	// Read 3 and every later read fail.
	for i := 3; i <= 5; i++ {
		err := f.ReadPage(0, &p)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: err = %v", i, err)
		}
		if storage.IsTransient(err) {
			t.Fatalf("read %d: permanent fault marked transient", i)
		}
	}
	if f.FaultsInjected() != 3 {
		t.Fatalf("FaultsInjected = %d, want 3", f.FaultsInjected())
	}
}

func TestFailNthReadTransient(t *testing.T) {
	f := Wrap(seededFile(t, 4), Policy{FailNthRead: 2, Transient: true})
	var p storage.Page
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
	err := f.ReadPage(0, &p)
	if !errors.Is(err, ErrInjected) || !storage.IsTransient(err) {
		t.Fatalf("transient nth read: err = %v", err)
	}
	// Only the Nth read fails.
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatalf("read after transient blip: %v", err)
	}
	if f.FaultsInjected() != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", f.FaultsInjected())
	}
}

// TestProbabilisticFaultsDeterministic: the same seed produces the same
// fault schedule; a different seed produces a different one.
func TestProbabilisticFaultsDeterministic(t *testing.T) {
	schedule := func(seed int64) []bool {
		f := Wrap(seededFile(t, 2), Policy{FailProb: 0.3, Seed: seed})
		var p storage.Page
		out := make([]bool, 100)
		for i := range out {
			out[i] = f.ReadPage(0, &p) != nil
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at read %d", i)
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 100-read schedule")
	}
	// Sanity: ~30% fault rate, not 0 or 100.
	n := 0
	for _, failed := range a {
		if failed {
			n++
		}
	}
	if n < 10 || n > 60 {
		t.Fatalf("fault count %d/100 implausible for p=0.3", n)
	}
}

// TestSetPolicyResetsSchedule: SetPolicy with the same seed replays the
// identical fault stream from the start.
func TestSetPolicyResetsSchedule(t *testing.T) {
	f := Wrap(seededFile(t, 2), Policy{FailProb: 0.5, Seed: 42})
	var p storage.Page
	first := make([]bool, 20)
	for i := range first {
		first[i] = f.ReadPage(0, &p) != nil
	}
	f.SetPolicy(Policy{FailProb: 0.5, Seed: 42})
	if f.Reads() != 0 || f.FaultsInjected() != 0 {
		t.Fatal("SetPolicy did not reset counters")
	}
	for i := range first {
		if got := f.ReadPage(0, &p) != nil; got != first[i] {
			t.Fatalf("replayed schedule diverged at read %d", i)
		}
	}
}

func TestCorruptNthRead(t *testing.T) {
	f := Wrap(seededFile(t, 4), Policy{CorruptNthRead: 2})
	var p storage.Page
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(0, &p); err != nil {
		t.Fatalf("clean read fails verification: %v", err)
	}
	// Read 2 is corrupted: ReadPage succeeds but verification fails …
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatalf("corrupted read should succeed at the I/O level: %v", err)
	}
	if err := storage.VerifyPage(1, &p); !storage.IsCorrupt(err) {
		t.Fatalf("corrupted page passes verification: %v", err)
	}
	// … and permanent corruption sticks to that page on every later read.
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(1, &p); !storage.IsCorrupt(err) {
		t.Fatal("at-rest corruption healed itself on re-read")
	}
	// Other pages stay intact.
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(0, &p); err != nil {
		t.Fatalf("unrelated page damaged: %v", err)
	}
}

func TestCorruptNthReadTransient(t *testing.T) {
	f := Wrap(seededFile(t, 2), Policy{CorruptNthRead: 1, Transient: true})
	var p storage.Page
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(1, &p); !storage.IsCorrupt(err) {
		t.Fatal("transient corruption not applied")
	}
	// A torn read heals on retry.
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(1, &p); err != nil {
		t.Fatalf("transient corruption persisted: %v", err)
	}
}

func TestMaxFaultsCap(t *testing.T) {
	f := Wrap(seededFile(t, 2), Policy{FailProb: 1, MaxFaults: 3})
	var p storage.Page
	failures := 0
	for i := 0; i < 10; i++ {
		if f.ReadPage(0, &p) != nil {
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 (MaxFaults cap)", failures)
	}
}

func TestLatencyInjection(t *testing.T) {
	f := Wrap(seededFile(t, 1), Policy{Latency: 5 * time.Millisecond})
	var p storage.Page
	start := time.Now()
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("read returned in %v, want >= 5ms", d)
	}
}

// TestPoolHealsTransientInjectedFaults wires the wrapper under a real
// buffer pool: a transient blip is retried away invisibly.
func TestPoolHealsTransientInjectedFaults(t *testing.T) {
	f := Wrap(seededFile(t, 4), Policy{FailNthRead: 1, Transient: true})
	bp := storage.NewBufferPool(f, 4)
	bp.SetRetryPolicy(storage.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond})
	pg, err := bp.Get(0)
	if err != nil {
		t.Fatalf("pool over transient fault: %v", err)
	}
	if pg[storage.PageHeaderSize] != 0 {
		t.Fatalf("content = %d", pg[storage.PageHeaderSize])
	}
	bp.Unpin(0, false)
	if st := bp.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

func TestFailNthWritePermanent(t *testing.T) {
	f := Wrap(storage.NewMemFile(), Policy{FailNthWrite: 2})
	var p storage.Page
	storage.SealPage(0, &p)
	if err := f.WritePage(0, &p); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	for i := 2; i <= 4; i++ {
		var q storage.Page
		storage.SealPage(1, &q)
		err := f.WritePage(1, &q)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: err = %v", i, err)
		}
		if storage.IsTransient(err) {
			t.Fatalf("write %d: permanent fault marked transient", i)
		}
	}
	// Failed writes must not reach the inner file.
	if n := f.Inner().NumPages(); n != 1 {
		t.Fatalf("inner NumPages = %d, want 1", n)
	}
	st := f.Stats()
	if st.Writes != 4 || st.FaultsInjected != 3 {
		t.Fatalf("Stats = %+v, want Writes=4 FaultsInjected=3", st)
	}
}

func TestFailNthWriteTransient(t *testing.T) {
	f := Wrap(storage.NewMemFile(), Policy{FailNthWrite: 1, Transient: true})
	var p storage.Page
	storage.SealPage(0, &p)
	err := f.WritePage(0, &p)
	if !errors.Is(err, ErrInjected) || !storage.IsTransient(err) {
		t.Fatalf("transient nth write: err = %v", err)
	}
	// Only the Nth write fails; the retry lands.
	if err := f.WritePage(0, &p); err != nil {
		t.Fatalf("write after transient blip: %v", err)
	}
	if n := f.Inner().NumPages(); n != 1 {
		t.Fatalf("inner NumPages = %d, want 1", n)
	}
}

// TestTornWrite: the Nth write reports success but persists only a prefix,
// so the page read back fails checksum verification.
func TestTornWrite(t *testing.T) {
	f := Wrap(storage.NewMemFile(), Policy{TornWrite: 2, Seed: 11})
	for i := 0; i < 3; i++ {
		var p storage.Page
		for j := storage.PageHeaderSize; j < storage.PageSize; j++ {
			p[j] = byte(i + j)
		}
		storage.SealPage(storage.PageID(i), &p)
		if err := f.WritePage(storage.PageID(i), &p); err != nil {
			t.Fatalf("write %d: torn write must report success, got %v", i, err)
		}
	}
	var p storage.Page
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(1, &p); !storage.IsCorrupt(err) {
		t.Fatalf("torn page passes verification: %v", err)
	}
	// Neighbours are intact.
	for _, id := range []storage.PageID{0, 2} {
		if err := f.ReadPage(id, &p); err != nil {
			t.Fatal(err)
		}
		if err := storage.VerifyPage(id, &p); err != nil {
			t.Fatalf("page %d damaged by unrelated torn write: %v", id, err)
		}
	}
	if got := f.FaultsInjected(); got != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", got)
	}
}

// TestTornWriteDeterministic: the same seed tears the same prefix length.
func TestTornWriteDeterministic(t *testing.T) {
	tear := func(seed int64) storage.Page {
		f := Wrap(storage.NewMemFile(), Policy{TornWrite: 1, Seed: seed})
		var p storage.Page
		for j := storage.PageHeaderSize; j < storage.PageSize; j++ {
			p[j] = 0xAB
		}
		storage.SealPage(0, &p)
		if err := f.WritePage(0, &p); err != nil {
			t.Fatal(err)
		}
		var got storage.Page
		if err := f.Inner().ReadPage(0, &got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := tear(5), tear(5)
	if a != b {
		t.Fatal("same seed produced different torn pages")
	}
}

func TestCrashAfterNWritesDeadensFile(t *testing.T) {
	f := Wrap(storage.NewMemFile(), Policy{CrashAfterNWrites: 2})
	var p storage.Page
	for i := 0; i < 2; i++ {
		var q storage.Page
		q[storage.PageHeaderSize] = byte(i)
		storage.SealPage(storage.PageID(i), &q)
		if err := f.WritePage(storage.PageID(i), &q); err != nil {
			t.Fatalf("write %d before kill-point: %v", i, err)
		}
	}
	// Write 3 and everything after — reads included — fail permanently.
	err := f.WritePage(2, &p)
	if !errors.Is(err, ErrCrashed) || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write: err = %v", err)
	}
	if err := f.ReadPage(0, &p); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: err = %v", err)
	}
	if storage.IsTransient(err) {
		t.Fatal("crash marked transient")
	}
	if !f.Crashed() {
		t.Fatal("Crashed() = false after kill-point")
	}
	// The bytes written before the kill-point survive in the inner file.
	inner := f.Inner()
	if n := inner.NumPages(); n != 2 {
		t.Fatalf("inner NumPages = %d, want 2", n)
	}
	for i := 0; i < 2; i++ {
		var q storage.Page
		if err := inner.ReadPage(storage.PageID(i), &q); err != nil {
			t.Fatal(err)
		}
		if err := storage.VerifyPage(storage.PageID(i), &q); err != nil {
			t.Fatalf("surviving page %d damaged: %v", i, err)
		}
		if q[storage.PageHeaderSize] != byte(i) {
			t.Fatalf("surviving page %d content = %d", i, q[storage.PageHeaderSize])
		}
	}
	st := f.Stats()
	if !st.Crashed || st.Writes != 3 || st.Reads != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

// TestCrashKillPointNotArmedByFailedWrite: a write that itself failed does
// not count toward the kill-point.
func TestCrashKillPointNotArmedByFailedWrite(t *testing.T) {
	f := Wrap(storage.NewMemFile(), Policy{FailNthWrite: 1, Transient: true, CrashAfterNWrites: 1})
	var p storage.Page
	storage.SealPage(0, &p)
	if err := f.WritePage(0, &p); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 1: %v", err)
	}
	if f.Crashed() {
		t.Fatal("failed write armed the kill-point")
	}
	// The retry is the first successful write; it lands, then the file dies.
	if err := f.WritePage(0, &p); err != nil {
		t.Fatalf("write 2: %v", err)
	}
	if !f.Crashed() {
		t.Fatal("kill-point did not fire after first successful write")
	}
}

// TestWriteCountersInStats: Stats reports writes alongside reads, and
// SetPolicy resets both.
func TestWriteCountersInStats(t *testing.T) {
	f := Wrap(seededFile(t, 2), Policy{})
	var p storage.Page
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
	storage.SealPage(2, &p)
	if err := f.WritePage(2, &p); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(2, &p); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Reads != 1 || st.Writes != 2 || st.FaultsInjected != 0 || st.Crashed {
		t.Fatalf("Stats = %+v, want Reads=1 Writes=2", st)
	}
	if f.Writes() != 2 {
		t.Fatalf("Writes() = %d, want 2", f.Writes())
	}
	f.SetPolicy(Policy{})
	if st := f.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Fatalf("SetPolicy did not reset write counter: %+v", st)
	}
}
