package sjos

import (
	"sort"
	"testing"
)

func TestXQueryBasic(t *testing.T) {
	db := openDB(t)
	res, err := db.XQuery(`for $m in //manager return $m/name`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, row := range res.Rows {
		names = append(names, db.Value(row[0]))
	}
	sort.Strings(names)
	want := []string{"alice", "carol", "dan"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("names = %v, want %v", names, want)
	}
	if res.PlanText == "" || res.Pattern.N() != 2 {
		t.Fatalf("metadata: %+v", res)
	}
}

func TestXQueryWhereIsExistential(t *testing.T) {
	db := openDB(t)
	// alice has two employees; FLWOR semantics must still return her
	// name once.
	res, err := db.XQuery(`for $m in //manager where $m//employee return $m/name`, MethodFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // alice and carol supervise employees; dan does not
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
}

func TestXQueryTwoVariables(t *testing.T) {
	db := openDB(t)
	res, err := db.XQuery(`
		for $m in //manager, $e in $m//employee
		return $m/name, $e/name`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	// (alice,bob), (alice,eve), (carol,eve).
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row) != 2 {
			t.Fatalf("row width %d", len(row))
		}
	}
}

func TestXQueryValuePredicate(t *testing.T) {
	db := openDB(t)
	res, err := db.XQuery(`
		for $e in //employee
		where $e/salary >= 40000
		return $e/name`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || db.Value(res.Rows[0][0]) != "bob" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestXQueryOrderBy(t *testing.T) {
	db := openDB(t)
	res, err := db.XQuery(`for $m in //manager order by $m return $m/name`, MethodFP)
	if err != nil {
		t.Fatal(err)
	}
	// Document order of managers: alice, carol, dan.
	got := []string{}
	for _, row := range res.Rows {
		got = append(got, db.Value(row[0]))
	}
	if len(got) != 3 || got[0] != "alice" || got[1] != "carol" || got[2] != "dan" {
		t.Fatalf("ordered names = %v", got)
	}
}

func TestXQueryErrors(t *testing.T) {
	db := openDB(t)
	for _, src := range []string{
		``,
		`for $m in //manager`,
		`for $m in //manager return $x`,
	} {
		if _, err := db.XQuery(src, MethodDPP); err == nil {
			t.Errorf("XQuery(%q) succeeded", src)
		}
	}
}
