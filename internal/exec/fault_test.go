package exec

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"sjos/internal/faultfs"
	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// faultyStore builds a store whose page file starts failing permanently at
// the failNth physical read (faultfs.Policy semantics: the Nth and every
// later read fail). The buffer pool is sized at 1 frame so almost every
// access is a physical read.
func faultyStore(t *testing.T, doc *xmltree.Document, failNth int) *storage.Store {
	t.Helper()
	ff := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
	st, err := storage.BuildStoreOn(ff, doc, 1)
	if err != nil {
		t.Fatal(err)
	}
	ff.SetPolicy(faultfs.Policy{FailNthRead: failNth})
	return st
}

// assertNoPins is the pin-leak regression check: after any execution —
// successful or failed — every buffer-pool page must be unpinned.
func assertNoPins(t *testing.T, st *storage.Store) {
	t.Helper()
	if pinned := st.PoolStats().Pinned; pinned != 0 {
		t.Fatalf("pin leak: %d pages still pinned after execution", pinned)
	}
}

func TestScanPropagatesStorageErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	doc := xmltree.RandomDocument(rng, 2000, []string{"a", "b"})
	st := faultyStore(t, doc, 4)
	pat := pattern.MustParse("//a")
	ctx := &Context{Doc: doc, Store: st}
	_, err := Drain(ctx, NewIndexScan(pat, 0))
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("scan error = %v, want injected failure", err)
	}
	assertNoPins(t, st)
}

func TestJoinPropagatesStorageErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	doc := xmltree.RandomDocument(rng, 2000, []string{"a", "b"})
	pat := pattern.MustParse("//a//b")
	for _, algo := range []plan.Algo{plan.AlgoDesc, plan.AlgoAnc} {
		st := faultyStore(t, doc, 11)
		j, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1),
			0, 1, pattern.Descendant, algo)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &Context{Doc: doc, Store: st}
		if _, err := Drain(ctx, j); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("%v: error = %v, want injected failure", algo, err)
		}
		assertNoPins(t, st)
	}
}

func TestSortPropagatesStorageErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	doc := xmltree.RandomDocument(rng, 2000, []string{"a", "b"})
	st := faultyStore(t, doc, 6)
	pat := pattern.MustParse("//a//b")
	j, _ := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1),
		0, 1, pattern.Descendant, plan.AlgoDesc)
	s, err := NewSort(j, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Doc: doc, Store: st}
	if _, err := Drain(ctx, s); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("sort error = %v, want injected failure", err)
	}
	assertNoPins(t, st)
}

// TestRunSurvivesZeroFailures double-checks the fault harness itself: with
// no faults configured, execution succeeds.
func TestRunSurvivesZeroFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doc := xmltree.RandomDocument(rng, 500, []string{"a", "b"})
	st := faultyStore(t, doc, 0)
	pat := pattern.MustParse("//a//b")
	j, _ := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1),
		0, 1, pattern.Descendant, plan.AlgoDesc)
	ctx := &Context{Doc: doc, Store: st}
	got, err := Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceMatches(doc, pat)
	if len(got) != len(want) {
		t.Fatalf("fault-harness store returned %d matches, want %d", len(got), len(want))
	}
	assertNoPins(t, st)
}

// TestParallelExecReleasesPinsOnFailure drives the partition-parallel
// executor into a mid-query storage error and asserts full worker teardown:
// a typed error out, no pinned frames left behind.
func TestParallelExecReleasesPinsOnFailure(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	doc := xmltree.RandomDocument(rng, 4000, []string{"a", "b", "c"})
	pat := pattern.MustParse("//a//b")
	pln := plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	want := len(ReferenceMatches(doc, pat))
	failed := 0
	for _, batch := range []bool{false, true} {
		// A few fault points: early (during the first scans) and later
		// (mid-join), so both open-time and next-time teardown run. A
		// fault point past the mode's physical read count legitimately
		// never fires (the batched path reads far fewer pages), so the
		// contract is differential: correct result or the injected error.
		for _, failNth := range []int{1, 5, 25, 100} {
			st := faultyStore(t, doc, failNth)
			pe := &ParallelExec{Workers: 4, Partitions: 4, Batch: batch}
			base := &Context{Doc: doc, Store: st}
			out, err := pe.Run(context.Background(), base, pat, pln)
			if err == nil {
				if len(out) != want {
					t.Fatalf("batch=%v failNth=%d: %d matches, want %d", batch, failNth, len(out), want)
				}
			} else {
				failed++
				if !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("batch=%v failNth=%d: error = %v, want injected failure", batch, failNth, err)
				}
			}
			assertNoPins(t, st)
		}
	}
	if failed == 0 {
		t.Fatal("no fault point fired in any mode — harness not exercising error paths")
	}
}

// panicOp panics a fixed number of Next calls into the stream.
type panicOp struct {
	inner Operator
	after int
	n     int
}

func (p *panicOp) Schema() *Schema         { return p.inner.Schema() }
func (p *panicOp) Open(ctx *Context) error { return p.inner.Open(ctx) }
func (p *panicOp) Close() error            { return p.inner.Close() }
func (p *panicOp) Next() (Tuple, bool, error) {
	p.n++
	if p.n > p.after {
		panic("injected operator panic")
	}
	return p.inner.Next()
}

// TestParallelExecRecoversWorkerPanics: a panic inside a partition worker
// must surface as a *PanicError from Run — not crash the process (the
// facade's Run-level recover cannot see worker goroutines).
func TestParallelExecRecoversWorkerPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	doc := xmltree.RandomDocument(rng, 3000, []string{"a", "b"})
	st, err := storage.BuildStore(doc, 16)
	if err != nil {
		t.Fatal(err)
	}
	pat := pattern.MustParse("//a//b")
	pln := plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	pe := &ParallelExec{
		Workers:    4,
		Partitions: 4,
		BuildOp: func() (Operator, error) {
			op, err := Build(pat, pln)
			if err != nil {
				return nil, err
			}
			return &panicOp{inner: op, after: 3}, nil
		},
	}
	base := &Context{Doc: doc, Store: st}
	_, err = pe.Run(context.Background(), base, pat, pln)
	var pe2 *PanicError
	if !errors.As(err, &pe2) {
		t.Fatalf("worker panic surfaced as %v, want *PanicError", err)
	}
	if len(pe2.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
}
