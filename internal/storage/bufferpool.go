package storage

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPoolFrames is the default buffer pool capacity: 2048 frames of 8 KB
// = 16 MB, matching the SHORE buffer pool size used in the paper's
// experiments.
const DefaultPoolFrames = 2048

// BufferPool caches pages of a PageFile in a fixed number of frames with an
// LRU replacement policy and pin counting. It is safe for concurrent use.
//
// Physical reads are verified against the page integrity header (see
// SealPage/VerifyPage) and retried under the pool's RetryPolicy when the
// failure is transient or a checksum mismatch; reads are single-flight per
// page (concurrent Gets of a page being loaded wait for the one loader
// instead of issuing duplicate I/O), and the I/O itself — including its
// backoff waits — happens outside the pool lock, so one slow or retrying
// read never stalls unrelated pages.
type BufferPool struct {
	file   PageFile
	frames int

	mu      sync.Mutex
	retry   RetryPolicy
	table   map[PageID]*frame
	lru     *list.List // unpinned frames, front = least recently used
	free    []*frame   // allocated frames whose page read failed, for reuse
	hits    uint64
	misses  uint64
	evicted uint64

	// Lock-free: bumped from the retry loop, which runs without bp.mu.
	retries       atomic.Uint64
	checksumFails atomic.Uint64
}

type frame struct {
	id    PageID
	page  Page
	pins  int
	dirty bool
	elem  *list.Element // position in lru when pins == 0, else nil
	// loading is non-nil while the frame's page is being read in; it is
	// closed when the load finishes (successfully or not). Loading frames
	// hold the loader's pin, so they are never eviction victims.
	loading chan struct{}
}

// PoolStats is a snapshot of buffer pool counters.
type PoolStats struct {
	Hits, Misses, Evicted uint64
	Resident              int
	// Pinned is the total outstanding pin count across resident frames; a
	// quiescent pool must report 0 — the executor leak check.
	Pinned int
	// Retries counts physical re-reads issued by the retry policy;
	// ChecksumFailures counts page reads that failed integrity
	// verification (each failed attempt counts once).
	Retries, ChecksumFailures uint64
}

// ErrPoolFull is returned when every frame is pinned and a new page is
// requested.
var ErrPoolFull = errors.New("storage: buffer pool full (all frames pinned)")

// NewBufferPool creates a pool over file with the given number of frames
// (DefaultPoolFrames if frames <= 0) and the default retry policy.
func NewBufferPool(file PageFile, frames int) *BufferPool {
	if frames <= 0 {
		frames = DefaultPoolFrames
	}
	return &BufferPool{
		file:   file,
		frames: frames,
		retry:  DefaultRetryPolicy,
		table:  make(map[PageID]*frame, frames),
		lru:    list.New(),
	}
}

// SetRetryPolicy replaces the pool's read-retry policy (zero fields fall
// back to DefaultRetryPolicy's values at use).
func (bp *BufferPool) SetRetryPolicy(p RetryPolicy) {
	bp.mu.Lock()
	bp.retry = p
	bp.mu.Unlock()
}

// Get pins page id and returns a pointer to its in-pool copy. The caller
// must Unpin it when done and must not retain the pointer afterwards. It is
// GetCtx with a background context (retry waits cannot be cancelled).
func (bp *BufferPool) Get(id PageID) (*Page, error) {
	return bp.GetCtx(context.Background(), id)
}

// GetCtx is Get under a context: if the page has to be read in (or another
// goroutine is already reading it), cancellation aborts the wait — including
// retry backoffs — and returns ctx's error promptly.
func (bp *BufferPool) GetCtx(ctx context.Context, id PageID) (*Page, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		bp.mu.Lock()
		if fr, ok := bp.table[id]; ok {
			if fr.loading == nil {
				bp.hits++
				bp.pinLocked(fr)
				bp.mu.Unlock()
				return &fr.page, nil
			}
			// Another goroutine is reading this page in: wait for its
			// load to settle, then re-check (it may have failed, in which
			// case this caller retries the load itself).
			ch := fr.loading
			bp.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			continue
		}
		bp.misses++
		fr, evicted, err := bp.allocFrameLocked()
		if err != nil {
			bp.mu.Unlock()
			return nil, err
		}
		// Publish the frame in loading state (pinned by this loader) so
		// concurrent Gets of the same page coalesce onto one read, then
		// do the I/O — and any retry backoff — without the pool lock.
		fr.id = id
		fr.pins = 1
		fr.dirty = false
		ch := make(chan struct{})
		fr.loading = ch
		bp.table[id] = fr
		pol := bp.retry
		bp.mu.Unlock()

		rerr := bp.readVerified(ctx, pol, id, &fr.page)

		bp.mu.Lock()
		fr.loading = nil
		close(ch)
		if rerr != nil {
			// The caller gets an error, so the page never becomes
			// resident: unpublish the frame and return it to the free
			// list for the next Get to reuse (no second victim is evicted
			// for it), leaving the eviction counter untouched — PoolStats
			// only counts replacements that actually brought a page in.
			delete(bp.table, id)
			bp.freeFrameLocked(fr)
			bp.mu.Unlock()
			return nil, rerr
		}
		if evicted {
			bp.evicted++
		}
		bp.mu.Unlock()
		return &fr.page, nil
	}
}

// readVerified reads page id into dst and verifies its integrity header,
// retrying transient failures and checksum mismatches under pol. Permanent
// failures (and exhausted retries) return the last error; corruption
// surfaces as a *CorruptPageError carrying the attempt count.
func (bp *BufferPool) readVerified(ctx context.Context, pol RetryPolicy, id PageID, dst *Page) error {
	pol = pol.normalized()
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := bp.file.ReadPage(id, dst)
		if err == nil {
			verr := VerifyPage(id, dst)
			if verr == nil {
				return nil
			}
			bp.checksumFails.Add(1)
			if ce, ok := verr.(*CorruptPageError); ok {
				ce.Attempts = attempt
			}
			err = verr
		}
		if attempt >= pol.MaxAttempts || !(IsTransient(err) || IsCorrupt(err)) {
			return err
		}
		bp.retries.Add(1)
		if serr := sleep(ctx, pol.backoff(attempt)); serr != nil {
			return serr
		}
	}
}

// Unpin releases one pin on page id; dirty marks the page as modified so it
// is written back on eviction or Flush.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.table[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: Unpin of unpinned page %d", id))
	}
	fr.dirty = fr.dirty || dirty
	fr.pins--
	if fr.pins == 0 {
		fr.elem = bp.lru.PushBack(fr)
	}
}

// Flush writes back all dirty pages, resealing their integrity headers.
// Pinned pages are flushed too (their contents at the time of the call);
// frames still loading are skipped (they cannot be dirty).
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.table {
		if fr.dirty && fr.loading == nil {
			SealPage(fr.id, &fr.page)
			if err := bp.file.WritePage(fr.id, &fr.page); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	return nil
}

// Stats returns a snapshot of the pool's counters.
func (bp *BufferPool) Stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	s := PoolStats{
		Hits:             bp.hits,
		Misses:           bp.misses,
		Evicted:          bp.evicted,
		Resident:         len(bp.table),
		Retries:          bp.retries.Load(),
		ChecksumFailures: bp.checksumFails.Load(),
	}
	for _, fr := range bp.table {
		s.Pinned += fr.pins
	}
	return s
}

// ResetStats zeroes the hit/miss/eviction/retry counters (resident pages
// stay).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.hits, bp.misses, bp.evicted = 0, 0, 0
	bp.retries.Store(0)
	bp.checksumFails.Store(0)
}

// Frames returns the pool capacity in frames.
func (bp *BufferPool) Frames() int { return bp.frames }

func (bp *BufferPool) pinLocked(fr *frame) {
	if fr.pins == 0 && fr.elem != nil {
		bp.lru.Remove(fr.elem)
		fr.elem = nil
	}
	fr.pins++
}

// allocFrameLocked returns a free frame, evicting the LRU unpinned page if
// the pool is at capacity. evicted reports whether a resident page was
// displaced; the caller counts it only once the replacement page is
// actually read in. Loading frames are pinned, so they are never victims.
func (bp *BufferPool) allocFrameLocked() (fr *frame, evicted bool, err error) {
	if n := len(bp.free); n > 0 {
		fr = bp.free[n-1]
		bp.free = bp.free[:n-1]
		return fr, false, nil
	}
	if len(bp.table) < bp.frames {
		return &frame{}, false, nil
	}
	front := bp.lru.Front()
	if front == nil {
		return nil, false, ErrPoolFull
	}
	fr = front.Value.(*frame)
	if fr.dirty {
		SealPage(fr.id, &fr.page)
		if err := bp.file.WritePage(fr.id, &fr.page); err != nil {
			// Write-back failed: the victim stays resident and evictable
			// (it keeps its LRU slot) instead of leaking off both lists.
			return nil, false, err
		}
		fr.dirty = false
	}
	bp.lru.Remove(front)
	fr.elem = nil
	delete(bp.table, fr.id)
	return fr, true, nil
}

// freeFrameLocked returns a frame allocated by allocFrameLocked that was
// never successfully loaded; the next allocation reuses it before evicting
// anyone else.
func (bp *BufferPool) freeFrameLocked(fr *frame) {
	*fr = frame{}
	bp.free = append(bp.free, fr)
}
