package xmltree

import (
	"bufio"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and builds its Document representation.
// Element text content (trimmed, first chunk only) becomes the node Value;
// attributes are exposed as child elements named "@attr" so that attribute
// predicates can be expressed as ordinary pattern nodes, which is how Timber
// models them in its tree algebra.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(bufio.NewReader(r))
	b := NewBuilder()
	depth := 0
	pendingText := InvalidNode // node awaiting its first text chunk
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			id := b.Open(t.Name.Local, "")
			pendingText = id
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Leaf("@"+a.Name.Local, a.Value)
			}
			depth++
		case xml.EndElement:
			if depth == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %q", t.Name.Local)
			}
			b.Close()
			depth--
			pendingText = InvalidNode
		case xml.CharData:
			if pendingText != InvalidNode && b.doc.value[pendingText] == "" {
				// Trim and intern without materialising an intermediate
				// string: repeated values cost no allocation at all.
				if trimmed := bytes.TrimSpace(t); len(trimmed) != 0 {
					b.doc.value[pendingText] = b.InternValue(trimmed)
				}
			}
		}
	}
	return b.Finish()
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// Serialize writes the document back out as XML. Attribute pseudo-elements
// ("@name") are rendered as real attributes, so Parse(Serialize(d)) is
// structurally identical to d. Output is deterministic.
func Serialize(d *Document, w io.Writer) error {
	bw := bufio.NewWriter(w)
	var walk func(n NodeID) error
	walk = func(n NodeID) error {
		name := d.TagName(d.Tag(n))
		if _, err := fmt.Fprintf(bw, "<%s", name); err != nil {
			return err
		}
		children := d.Children(n)
		var real []NodeID
		for _, c := range children {
			cn := d.TagName(d.Tag(c))
			if strings.HasPrefix(cn, "@") {
				fmt.Fprintf(bw, " %s=%q", cn[1:], d.Value(c))
			} else {
				real = append(real, c)
			}
		}
		bw.WriteString(">")
		if v := d.Value(n); v != "" {
			if err := xml.EscapeText(bw, []byte(v)); err != nil {
				return err
			}
		}
		for _, c := range real {
			if err := walk(c); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(bw, "</%s>", name)
		return err
	}
	if err := walk(d.Root()); err != nil {
		return err
	}
	return bw.Flush()
}

// SerializeString is Serialize into a string; intended for tests and tools.
func SerializeString(d *Document) (string, error) {
	var sb strings.Builder
	if err := Serialize(d, &sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}
