package sjos

import (
	"context"
	"fmt"
	"io"
	"strings"

	"sjos/internal/histogram"
	"sjos/internal/xmltree"
)

// The corpus write path. A corpus built with CorpusOptions.ShardWALFile
// routes each mutation to the owning shard (by consistent hashing of the
// document ID, exactly like Build): the shard's primary replica commits it
// through its own WAL, follower replicas apply the already-committed
// mutation without logging, and the corpus then publishes a fresh
// membership directory and re-merged statistics. Queries pin one directory
// and one snapshot per shard, so they always observe committed states.
//
// Durability is per shard: recovering a crashed corpus means rebuilding it
// with the same ShardWALFile mapping (and shard count — the hash ring must
// route IDs identically), which replays every shard's committed log.

// IngestEnabled reports whether the corpus was built with a write path
// (CorpusOptions.ShardWALFile).
func (c *Corpus) IngestEnabled() bool { return c.ingest }

// Insert parses an XML document from r and commits it under id on the
// owning shard. The document is visible to queries exactly when Insert
// returns nil.
func (c *Corpus) Insert(id string, r io.Reader) error {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return err
	}
	return c.mutate("insert", id, doc)
}

// InsertString is Insert over a string.
func (c *Corpus) InsertString(id, src string) error {
	return c.Insert(id, strings.NewReader(src))
}

// Delete commits the removal of the document with the given id.
func (c *Corpus) Delete(id string) error {
	return c.mutate("delete", id, nil)
}

// Replace atomically substitutes the document under id (see
// Database.Replace).
func (c *Corpus) Replace(id string, r io.Reader) error {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return err
	}
	return c.mutate("replace", id, doc)
}

// ReplaceString is Replace over a string.
func (c *Corpus) ReplaceString(id, src string) error {
	return c.Replace(id, strings.NewReader(src))
}

// mutate routes one mutation to its shard and publishes the outcome.
func (c *Corpus) mutate(op, id string, doc *xmltree.Document) error {
	if !c.ingest {
		return ErrNoWAL
	}
	if id == "" {
		return fmt.Errorf("sjos: document needs a non-empty ID")
	}
	// Mutations pass the same admission gate as queries: MaxInFlight
	// bounds them and Drain refuses them — the write endpoints shed load
	// and shut down exactly like the read path.
	release, err := c.svc.admit.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer release()
	c.ingestMu.Lock()
	defer c.ingestMu.Unlock()
	cv := c.view()
	_, exists := cv.byID[id]
	switch op {
	case "insert":
		if exists {
			return fmt.Errorf("sjos: document %q already exists (use Replace)", id)
		}
	default:
		if !exists {
			return fmt.Errorf("sjos: no document %q", id)
		}
	}
	sh := c.shards[c.ring.Shard(id)]

	apply := func(db *Database) error {
		switch op {
		case "insert":
			return db.insertDoc(id, doc)
		case "delete":
			return db.Delete(id)
		default:
			return db.replaceDoc(id, doc)
		}
	}
	// The primary decides the mutation's fate: until its WAL commit
	// succeeds, nothing changed anywhere.
	if err := apply(sh.replicas[0].db); err != nil {
		return err
	}
	// Followers apply the committed mutation; one that cannot has diverged
	// from the shard and leaves routing for good.
	for _, rep := range sh.replicas[1:] {
		if rep.down.Load() {
			continue
		}
		if err := apply(rep.db); err != nil {
			rep.down.Store(true)
		}
	}

	// Publish the new membership directory. Views already pinned keep
	// working: their per-shard snapshots were published by the replica
	// mutations above, and demux tolerates directory/snapshot skew.
	nv := &corpusView{byID: make(map[string]docRef, len(cv.byID)+1)}
	switch op {
	case "insert":
		nv.ids = append(append([]string(nil), cv.ids...), id)
	case "delete":
		nv.ids = make([]string, 0, len(cv.ids)-1)
		for _, d := range cv.ids {
			if d != id {
				nv.ids = append(nv.ids, d)
			}
		}
	default:
		nv.ids = append([]string(nil), cv.ids...)
	}
	for _, d := range nv.ids {
		nv.byID[d] = docRef{shard: c.ring.Shard(d)}
	}
	c.live.Store(nv)
	c.refreshIngestStatsLocked()
	return nil
}

// refreshIngestStatsLocked re-merges the corpus-wide statistics from every
// shard's live member parts and installs them (bumping the corpus stats
// version, which invalidates the corpus plan cache). Caller holds ingestMu.
func (c *Corpus) refreshIngestStatsLocked() {
	var parts []*histogram.Stats
	for _, sh := range c.shards {
		if sh == nil {
			continue
		}
		parts = append(parts, sh.meta().statsParts()...)
	}
	c.svc.setStats(histogram.Merge(parts))
}

// CorpusIngestStats aggregates the write-path state across shards.
type CorpusIngestStats struct {
	// Docs is the live document count; Shards the ring size.
	Docs   int
	Shards int
	// Compactions sums the shards' store rewrites; WALPages their log
	// lengths.
	Compactions int
	WALPages    int
	// BrokenShards counts shards whose primary write path is poisoned;
	// DownReplicas counts followers removed from routing.
	BrokenShards int
	DownReplicas int
}

// IngestStats returns the corpus write path's aggregated state (zero value
// for a read-only corpus).
func (c *Corpus) IngestStats() CorpusIngestStats {
	if !c.ingest {
		return CorpusIngestStats{}
	}
	st := CorpusIngestStats{Docs: c.NumDocs(), Shards: len(c.shards)}
	for _, sh := range c.shards {
		if sh == nil {
			continue
		}
		ist := sh.meta().IngestStats()
		st.Compactions += ist.Compactions
		st.WALPages += ist.WALPages
		if ist.Broken {
			st.BrokenShards++
		}
		for _, rep := range sh.replicas[1:] {
			if rep.down.Load() {
				st.DownReplicas++
			}
		}
	}
	return st
}
