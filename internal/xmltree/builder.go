package xmltree

import (
	"errors"
	"fmt"

	"sjos/internal/intern"
)

// Builder constructs a Document through nested Open/Close calls that mirror
// a depth-first walk of the tree. Positions, levels and parent links are
// assigned on the fly, so building is O(n).
//
//	b := xmltree.NewBuilder()
//	root := b.Open("db", "")
//	b.Open("item", "42")
//	b.Close() // item
//	b.Close() // db
//	doc, err := b.Finish()
type Builder struct {
	doc    *Document
	stack  []NodeID
	nextNo Pos
	err    error

	// vals interns node text values: XML data repeats values heavily, so
	// equal values share one backing string in the finished Document.
	vals *intern.Table
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		doc:  &Document{tagByNm: make(map[string]TagID)},
		vals: intern.New(),
	}
}

// InternValue canonicalises a text value through the builder's intern
// table. Open/OpenTag intern their value argument already; InternValue is
// for callers that patch values in after the fact (e.g. the XML parser's
// deferred text handling).
func (b *Builder) InternValue(v []byte) string { return b.vals.InternBytes(v) }

// Tag interns a tag name, returning its TagID. Repeated calls with the same
// name return the same ID.
func (b *Builder) Tag(name string) TagID {
	if t, ok := b.doc.tagByNm[name]; ok {
		return t
	}
	t := TagID(len(b.doc.tags))
	b.doc.tags = append(b.doc.tags, name)
	b.doc.tagByNm[name] = t
	b.doc.byTag = append(b.doc.byTag, nil)
	return t
}

// Open starts a new element with the given tag name and optional text value,
// as a child of the currently open element (or as the root). It returns the
// new node's ID.
func (b *Builder) Open(tag, value string) NodeID {
	return b.OpenTag(b.Tag(tag), value)
}

// OpenTag is Open with a pre-interned TagID; useful in generator hot loops.
func (b *Builder) OpenTag(t TagID, value string) NodeID {
	d := b.doc
	id := NodeID(len(d.start))
	if len(b.stack) == 0 && id != 0 {
		b.err = errors.New("xmltree: document must have a single root element")
	}
	parent := InvalidNode
	var lvl uint16
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
		lvl = d.level[parent] + 1
	}
	d.start = append(d.start, b.nextNo)
	d.end = append(d.end, 0) // patched in Close
	d.level = append(d.level, lvl)
	d.tag = append(d.tag, t)
	d.parent = append(d.parent, parent)
	d.value = append(d.value, b.vals.Intern(value))
	d.byTag[t] = append(d.byTag[t], id)
	b.nextNo++
	b.stack = append(b.stack, id)
	return id
}

// Close ends the most recently opened element.
func (b *Builder) Close() {
	if len(b.stack) == 0 {
		b.err = errors.New("xmltree: Close without matching Open")
		return
	}
	id := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.doc.end[id] = b.nextNo
	b.nextNo++
}

// Leaf is a convenience for Open immediately followed by Close.
func (b *Builder) Leaf(tag, value string) NodeID {
	id := b.Open(tag, value)
	b.Close()
	return id
}

// Depth returns the number of currently open elements.
func (b *Builder) Depth() int { return len(b.stack) }

// Finish validates balancing and returns the completed Document. The Builder
// must not be reused afterwards.
func (b *Builder) Finish() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmltree: %d elements left open", len(b.stack))
	}
	if b.doc.NumNodes() == 0 {
		return nil, errors.New("xmltree: empty document")
	}
	b.doc.intern = b.vals.Stats()
	b.doc.maxPos = b.doc.end[0]
	return b.doc, nil
}

// MustFinish is Finish that panics on error; for tests and generators whose
// construction logic is statically balanced.
func (b *Builder) MustFinish() *Document {
	d, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return d
}
