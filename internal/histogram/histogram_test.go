package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// exactJoin counts the true number of joining pairs by brute force.
func exactJoin(d *xmltree.Document, a, b xmltree.TagID, ax pattern.Axis) int {
	n := 0
	for _, x := range d.NodesWithTag(a) {
		for _, y := range d.NodesWithTag(b) {
			switch ax {
			case pattern.Descendant:
				if d.IsAncestor(x, y) {
					n++
				}
			case pattern.Child:
				if d.IsParent(x, y) {
					n++
				}
			}
		}
	}
	return n
}

func TestProbLess(t *testing.T) {
	cases := []struct {
		a, b, c, d float64
		want       float64
	}{
		{0, 1, 2, 3, 1},   // X entirely below Y
		{2, 3, 0, 1, 0},   // X entirely above Y
		{0, 1, 0, 1, 0.5}, // identical intervals
		{0, 2, 1, 3, 0.875},
		{0, 4, 1, 3, 0.5},
	}
	for _, c := range cases {
		got := probLess(c.a, c.b, c.c, c.d)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("probLess(%v,%v,%v,%v) = %v, want %v", c.a, c.b, c.c, c.d, got, c.want)
		}
	}
}

func TestProbLessMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.Float64() * 10
		b := a + r.Float64()*10 + 1e-6
		c := r.Float64() * 10
		d := c + r.Float64()*10 + 1e-6
		want := probLess(a, b, c, d)
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			x := a + r.Float64()*(b-a)
			y := c + r.Float64()*(d-c)
			if x < y {
				hits++
			}
		}
		got := float64(hits) / n
		return math.Abs(got-want) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateExactWithFineGrid(t *testing.T) {
	// With one position per bucket, cell-pair estimation degenerates to
	// exact counting: every cell holds nodes of a single (start,end) pair
	// and probLess is 0/1... except equal-coordinate comparisons, which
	// cannot occur across distinct nodes. So the estimate must be exact.
	rng := rand.New(rand.NewSource(9))
	d := xmltree.RandomDocument(rng, 60, []string{"a", "b", "c"})
	s := Build(d, int(d.MaxPos())+1)
	for _, aTag := range []string{"a", "b", "c"} {
		for _, bTag := range []string{"a", "b", "c"} {
			ta, _ := d.LookupTag(aTag)
			tb, _ := d.LookupTag(bTag)
			got := s.EstimateJoin(ta, tb, pattern.Descendant)
			want := float64(exactJoin(d, ta, tb, pattern.Descendant))
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("%s//%s: estimate %v, want %v", aTag, bTag, got, want)
			}
		}
	}
}

func TestEstimateReasonableOnRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		d := xmltree.RandomDocument(rng, 400, []string{"a", "b", "c", "d"})
		s := Build(d, 0)
		ta, _ := d.LookupTag("a")
		tb, _ := d.LookupTag("b")
		est := s.EstimateJoin(ta, tb, pattern.Descendant)
		exact := float64(exactJoin(d, ta, tb, pattern.Descendant))
		// The estimate can never exceed the Cartesian product and must
		// be non-negative.
		if est < 0 || est > s.TagCount(ta)*s.TagCount(tb)+1e-9 {
			t.Fatalf("trial %d: estimate %v out of range", trial, est)
		}
		// Loose accuracy band: within 5x or small absolute error (these
		// are coarse histograms on adversarially random trees).
		if exact > 20 && (est > exact*5 || est < exact/5) {
			t.Errorf("trial %d: estimate %v far from exact %v", trial, est, exact)
		}
	}
}

func TestParentChildBelowDescendant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := xmltree.RandomDocument(rng, 500, []string{"a", "b"})
	s := Build(d, 0)
	ta, _ := d.LookupTag("a")
	tb, _ := d.LookupTag("b")
	desc := s.EstimateJoin(ta, tb, pattern.Descendant)
	child := s.EstimateJoin(ta, tb, pattern.Child)
	if child < 0 || child > desc+1e-9 {
		t.Fatalf("child estimate %v should be within [0, descendant estimate %v]", child, desc)
	}
}

func TestSelectivity(t *testing.T) {
	d, err := xmltree.ParseString(`<db><a><b/><b/></a><a><b/></a><c/></db>`)
	if err != nil {
		t.Fatal(err)
	}
	s := Build(d, int(d.MaxPos())+1)
	ta, _ := d.LookupTag("a")
	tb, _ := d.LookupTag("b")
	sel := s.Selectivity(ta, tb, pattern.Descendant)
	// exact: 3 joining pairs over 2*3 = 0.5
	if math.Abs(sel-0.5) > 1e-9 {
		t.Fatalf("selectivity = %v, want 0.5", sel)
	}
	// Empty side.
	if got := s.Selectivity(ta, xmltree.TagID(99), pattern.Descendant); got != 0 {
		t.Fatalf("selectivity with unknown tag = %v", got)
	}
}

func TestEstimateJoinName(t *testing.T) {
	d, _ := xmltree.ParseString(`<db><a><b/></a></db>`)
	s := Build(d, 0)
	if _, err := s.EstimateJoinName("a", "nosuch", pattern.Child); err == nil {
		t.Fatal("unknown tag should error")
	}
	v, err := s.EstimateJoinName("a", "b", pattern.Child)
	if err != nil || v <= 0 {
		t.Fatalf("EstimateJoinName = %v, %v", v, err)
	}
}

func TestEvalPredicate(t *testing.T) {
	cases := []struct {
		v    string
		op   pattern.CmpOp
		rhs  string
		want bool
	}{
		{"42", pattern.CmpEq, "42", true},
		{"42", pattern.CmpEq, "042", true}, // numeric comparison
		{"42", pattern.CmpNe, "41", true},
		{"9", pattern.CmpLt, "10", true}, // numeric, not lexicographic
		{"abc", pattern.CmpLt, "abd", true},
		{"10", pattern.CmpGe, "10", true},
		{"3.5", pattern.CmpGt, "3", true},
		{"hello world", pattern.CmpContains, "lo wo", true},
		{"hello", pattern.CmpContains, "xyz", false},
		{"x", pattern.CmpNone, "", true},
		{"b", pattern.CmpLe, "a", false},
	}
	for _, c := range cases {
		if got := EvalPredicate(c.v, c.op, c.rhs); got != c.want {
			t.Errorf("EvalPredicate(%q, %v, %q) = %v, want %v", c.v, c.op, c.rhs, got, c.want)
		}
	}
}

func TestPredicateSelectivity(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Open("db", "")
	for i := 0; i < 100; i++ {
		v := "common"
		if i%10 == 0 {
			v = "rare"
		}
		b.Leaf("item", v)
	}
	b.Close()
	d := b.MustFinish()
	s := Build(d, 0)
	ti, _ := d.LookupTag("item")
	sel := s.PredicateSelectivity(ti, pattern.CmpEq, "rare")
	if sel < 0.02 || sel > 0.3 {
		t.Fatalf("selectivity of rare = %v, want ≈ 0.1", sel)
	}
	if got := s.PredicateSelectivity(ti, pattern.CmpNone, ""); got != 1 {
		t.Fatalf("CmpNone selectivity = %v", got)
	}
	// Absent value gets the 1/count floor, never zero.
	if got := s.PredicateSelectivity(ti, pattern.CmpEq, "absent"); got <= 0 {
		t.Fatalf("absent-value selectivity = %v", got)
	}
	// Tag with no values at all.
	td, _ := d.LookupTag("db")
	if got := s.PredicateSelectivity(td, pattern.CmpEq, "x"); got <= 0 || got > 1 {
		t.Fatalf("no-sample selectivity = %v", got)
	}
}

func TestLevelsTracked(t *testing.T) {
	d, _ := xmltree.ParseString(`<a><b><a><b/></a></b></a>`)
	s := Build(d, 0)
	ta, _ := d.LookupTag("a")
	levels := s.sortedLevels(ta)
	if len(levels) != 2 || levels[0] != 0 || levels[1] != 2 {
		t.Fatalf("levels of a = %v", levels)
	}
}
