// Package admission bounds how many queries run concurrently: a
// context-aware semaphore with a bounded wait queue. Callers past the
// in-flight limit wait their turn; callers past the queue limit fail fast
// with ErrOverloaded instead of piling up. Drain flips the controller into
// shutdown: new arrivals get ErrShuttingDown and Drain returns once every
// admitted query has released its slot — the server's graceful-exit
// barrier.
package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is returned when the wait queue is full: shedding load fast
// beats queueing work the server cannot reach.
var ErrOverloaded = errors.New("admission: overloaded (wait queue full)")

// ErrShuttingDown is returned to queries arriving after Drain began.
var ErrShuttingDown = errors.New("admission: shutting down")

// Controller is the admission semaphore. A nil *Controller is valid and
// admits everything (no limit configured).
type Controller struct {
	slots      chan struct{} // semaphore: acquire = send, release = receive
	queueDepth int

	draining  chan struct{} // closed when Drain begins
	drainOnce sync.Once
	drainMu   sync.Mutex   // serialises Drain callers
	collected atomic.Int64 // drain tokens already collected

	waiting  atomic.Int64 // callers blocked on a slot right now
	queued   atomic.Uint64
	rejected atomic.Uint64
}

// Stats is a snapshot of admission counters.
type Stats struct {
	// InFlight is the number of currently held slots; Waiting the callers
	// queued for one.
	InFlight, Waiting int
	// Queued counts acquisitions that had to wait; Rejected counts
	// fast-fails (queue full or shutting down).
	Queued, Rejected uint64
}

// New returns a controller admitting at most maxInFlight queries with up to
// queueDepth more waiting. maxInFlight <= 0 returns nil — the unlimited
// controller. queueDepth < 0 is treated as 0 (no waiting: the limit is a
// hard fast-fail).
func New(maxInFlight, queueDepth int) *Controller {
	if maxInFlight <= 0 {
		return nil
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Controller{
		slots:      make(chan struct{}, maxInFlight),
		queueDepth: queueDepth,
		draining:   make(chan struct{}),
	}
}

// Acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns the release func the caller must invoke
// exactly once when the query finishes, or an error: ErrOverloaded (queue
// full), ErrShuttingDown (drain in progress), or ctx.Err() (caller gave up
// waiting). On a nil controller it is a no-op admit.
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	select {
	case <-c.draining:
		c.rejected.Add(1)
		return nil, ErrShuttingDown
	default:
	}
	// Fast path: a slot is free.
	select {
	case c.slots <- struct{}{}:
		return c.releaseFunc(), nil
	default:
	}
	// Slow path: join the bounded wait queue.
	if int(c.waiting.Add(1)) > c.queueDepth {
		c.waiting.Add(-1)
		c.rejected.Add(1)
		return nil, ErrOverloaded
	}
	c.queued.Add(1)
	defer c.waiting.Add(-1)
	select {
	case c.slots <- struct{}{}:
		// A waiter can win a slot in the same instant Drain begins; give
		// it back so Drain's accounting stays exact (all cap slots held by
		// Drain ⇒ nothing in flight).
		select {
		case <-c.draining:
			<-c.slots
			c.rejected.Add(1)
			return nil, ErrShuttingDown
		default:
		}
		return c.releaseFunc(), nil
	case <-c.draining:
		c.rejected.Add(1)
		return nil, ErrShuttingDown
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *Controller) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-c.slots }) }
}

// Drain stops admitting new queries and waits for every in-flight query to
// release its slot (by acquiring all of them), or until ctx expires —
// returning ctx.Err() with queries still running. Safe to call more than
// once: a repeat call resumes collecting where a timed-out one stopped, and
// returns immediately once the controller is fully drained. A nil
// controller drains instantly.
func (c *Controller) Drain(ctx context.Context) error {
	if c == nil {
		return nil
	}
	c.drainOnce.Do(func() { close(c.draining) })
	c.drainMu.Lock()
	defer c.drainMu.Unlock()
	for int(c.collected.Load()) < cap(c.slots) {
		select {
		case c.slots <- struct{}{}:
			c.collected.Add(1)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Stats returns a snapshot of the controller's counters (zero for nil).
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	inFlight := len(c.slots) - int(c.collected.Load())
	if inFlight < 0 {
		inFlight = 0
	}
	return Stats{
		InFlight: inFlight,
		Waiting:  int(c.waiting.Load()),
		Queued:   c.queued.Load(),
		Rejected: c.rejected.Load(),
	}
}
