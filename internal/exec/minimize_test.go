package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// TestMinimizePreservesProjectedMatches is the semantic property behind
// pattern minimisation: on arbitrary documents, the match set of the
// minimized pattern equals the match set of the original projected onto
// the retained nodes (as a set — projection can collapse duplicates).
func TestMinimizePreservesProjectedMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	sources := []string{
		"//a[b][b]",
		"//a[.//b][b]",
		"//a[b/c]/b/c",
		"//a[b][b][b]",
		"//a[.//b][.//b/c]",
		"//a[b][c][b]",
	}
	for _, src := range sources {
		orig := pattern.MustParse(src)
		min, mapping := pattern.Minimize(orig)
		if min.N() >= orig.N() {
			t.Fatalf("%s: nothing minimized", src)
		}
		for trial := 0; trial < 25; trial++ {
			doc := xmltree.RandomDocument(rng, 2+rng.Intn(120), []string{"a", "b", "c"})
			got := matchSet(ReferenceMatches(doc, min), nil)
			want := matchSet(ReferenceMatches(doc, orig), mapping)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s trial %d: minimized %d distinct matches, projected original %d",
					src, trial, len(got), len(want))
			}
		}
	}
}

// matchSet builds the set of (projected) match tuples. mapping == nil means
// identity; otherwise slot newIdx of the projection holds the value of the
// original slot oldIdx where mapping[oldIdx] == newIdx.
func matchSet(ms []Tuple, mapping []int) map[string]bool {
	out := make(map[string]bool, len(ms))
	for _, m := range ms {
		proj := m
		if mapping != nil {
			n := 0
			for _, nw := range mapping {
				if nw != -1 {
					n++
				}
			}
			proj = make(Tuple, n)
			for old, nw := range mapping {
				if nw != -1 {
					proj[nw] = m[old]
				}
			}
		}
		key := ""
		for _, id := range proj {
			key += fmt.Sprintf("%d,", id)
		}
		out[key] = true
	}
	return out
}
