package sjos

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRunTraceMatchesPlain: a traced Run returns the same matches as an
// untraced one, plus a plan-shaped trace whose root actuals agree with the
// result.
func TestRunTraceMatchesPlain(t *testing.T) {
	db := openDB(t)
	pat := MustParsePattern("//manager//employee/name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := db.Run(context.Background(), pat, res.Plan, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced run carries a trace")
	}
	traced, err := db.Run(context.Background(), pat, res.Plan, RunOptions{ExecOptions: ExecOptions{Trace: true}})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatal("traced run has no trace")
	}
	if !reflect.DeepEqual(traced.Matches, plain.Matches) {
		t.Fatal("tracing changed the result")
	}
	if traced.Trace.Rows != int64(plain.Count) {
		t.Fatalf("trace root rows = %d, result count = %d", traced.Trace.Rows, plain.Count)
	}
	if traced.Trace.Clones != 1 {
		t.Fatalf("serial trace clones = %d, want 1", traced.Trace.Clones)
	}
}

// TestRunTraceParallel: under partition-parallel execution the trace sums
// the per-partition clones and the row totals still match the result.
func TestRunTraceParallel(t *testing.T) {
	db := openDB(t)
	pat := MustParsePattern("//manager//employee/name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := db.Run(context.Background(), pat, res.Plan, RunOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := db.Run(context.Background(), pat, res.Plan, RunOptions{ExecOptions: ExecOptions{Trace: true}, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Trace == nil {
		t.Fatal("parallel traced run has no trace")
	}
	if !reflect.DeepEqual(traced.Matches, plain.Matches) {
		t.Fatal("tracing changed the parallel result")
	}
	if traced.Trace.Rows != int64(plain.Count) {
		t.Fatalf("trace root rows = %d, result count = %d", traced.Trace.Rows, plain.Count)
	}
	if traced.Trace.Clones < 1 {
		t.Fatalf("parallel trace clones = %d", traced.Trace.Clones)
	}
}

// TestQueryMetrics: the registry counts queries, errors, and latency.
func TestQueryMetrics(t *testing.T) {
	db := openDB(t)
	if m := db.Metrics(); m.Query.Queries != 0 {
		t.Fatalf("fresh database metrics: %+v", m.Query)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.QueryContext(context.Background(), "//manager//employee/name", QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}}); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if m.Query.Queries != 3 || m.Query.Errors != 0 || m.Query.InFlight != 0 {
		t.Fatalf("after 3 queries: %+v", m.Query)
	}
	if m.Query.TotalTime <= 0 || m.Query.P50 <= 0 {
		t.Fatalf("latency not recorded: %+v", m.Query)
	}
	if m.Cache.Misses != 1 || m.Cache.Hits != 2 {
		t.Fatalf("cache counters not surfaced: %+v", m.Cache)
	}

	// Failed executions count as errors. Run with a cancelled context so
	// the failure happens inside Run (the metered section).
	pat := MustParsePattern("//manager//employee")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Run(ctx, pat, res.Plan, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	m = db.Metrics()
	if m.Query.Errors != 1 {
		t.Fatalf("error not counted: %+v", m.Query)
	}
}

// TestWriteMetricsText: the Prometheus rendering includes the query,
// plan-cache and buffer-pool families.
func TestWriteMetricsText(t *testing.T) {
	db := openDB(t)
	if _, err := db.Query("//manager//employee/name", MethodDPP); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	db.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"sjos_queries_total 1",
		"sjos_query_errors_total 0",
		"sjos_queries_in_flight 0",
		`sjos_query_latency_seconds{quantile="0.95"}`,
		"sjos_plancache_misses_total 1",
		"sjos_plancache_entries 1",
		"sjos_pool_hits_total",
		"sjos_pool_resident_pages",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteMetrics missing %q\n%s", want, out)
		}
	}
}

// TestSlowQueryLog: a zero-distance threshold catches every query with a
// full entry (fingerprint, timings, trace); raising the threshold stops
// the logging; per-call overrides work without the global hook.
func TestSlowQueryLog(t *testing.T) {
	db := openDB(t)
	var mu sync.Mutex
	var logged []SlowQueryEntry
	db.SetSlowQueryLog(time.Nanosecond, func(e SlowQueryEntry) {
		mu.Lock()
		logged = append(logged, e)
		mu.Unlock()
	})
	src := "//manager//employee/name"
	res, err := db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(logged)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("%d slow entries, want 1", n)
	}
	e := logged[0]
	if e.Pattern == "" || e.Fingerprint == "" {
		t.Fatalf("entry missing identity: %+v", e)
	}
	if e.Method != MethodDPP || e.Matches != len(res.Matches) {
		t.Fatalf("entry: %+v", e)
	}
	if e.Duration < e.OptimizeTime || e.Duration < e.ExecuteTime {
		t.Fatalf("duration %v < parts (%v, %v)", e.Duration, e.OptimizeTime, e.ExecuteTime)
	}
	if e.Trace == nil {
		t.Fatal("slow entry has no operator trace (tracing should auto-enable)")
	}
	if res.Trace == nil {
		t.Fatal("result should carry the trace when the slow log forces tracing")
	}
	if got := db.SlowQueries(); len(got) != 1 || got[0].Fingerprint != e.Fingerprint {
		t.Fatalf("ring: %+v", got)
	}
	if got := db.Metrics().Query.SlowQueries; got != 1 {
		t.Fatalf("slow counter = %d", got)
	}

	// An unreachable threshold logs nothing.
	db.SetSlowQueryLog(time.Hour, nil)
	if _, err := db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}}); err != nil {
		t.Fatal(err)
	}
	if got := db.SlowQueries(); len(got) != 1 {
		t.Fatalf("hour threshold logged: %d entries", len(got))
	}

	// Per-call override wins over the (disabled) global config.
	db.SetSlowQueryLog(0, nil)
	var perCall int
	if _, err := db.QueryContext(context.Background(), src, QueryOptions{
		ExecOptions:        ExecOptions{Method: MethodDPP},
		SlowQueryThreshold: time.Nanosecond,
		OnSlowQuery:        func(SlowQueryEntry) { perCall++ },
	}); err != nil {
		t.Fatal(err)
	}
	if perCall != 1 {
		t.Fatalf("per-call hook fired %d times, want 1", perCall)
	}
}

// TestSlowQueryRingBounded: the in-memory log keeps only the most recent
// entries, oldest first.
func TestSlowQueryRingBounded(t *testing.T) {
	db := openDB(t)
	db.SetSlowQueryLog(time.Nanosecond, nil)
	src := "//manager//employee/name"
	for i := 0; i < 40; i++ {
		if _, err := db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}}); err != nil {
			t.Fatal(err)
		}
	}
	got := db.SlowQueries()
	if len(got) != 32 {
		t.Fatalf("ring holds %d entries, want 32", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatal("ring not oldest-first")
		}
	}
	if got := db.Metrics().Query.SlowQueries; got != 40 {
		t.Fatalf("slow counter = %d, want 40", got)
	}
}

// TestExplainAnalyzeOutput: EXPLAIN ANALYZE prints the operator tree with
// estimated vs actual rows, drift, call counts and wall time.
func TestExplainAnalyzeOutput(t *testing.T) {
	db := openDB(t)
	out, err := db.ExplainAnalyze(MustParsePattern("//manager//employee/name"), MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"est≈", "actual=", "err=", "calls=", "time=", "IndexScan"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze missing %q:\n%s", want, out)
		}
	}
}

// TestObservabilityConcurrent hammers queries (traced and untraced, serial
// and parallel) against concurrent metrics scrapes, slow-log reads and
// threshold flips — the -race correctness test for the whole layer.
func TestObservabilityConcurrent(t *testing.T) {
	db := openDB(t)
	db.SetSlowQueryLog(time.Nanosecond, func(SlowQueryEntry) {})
	par := db.WithParallelism(2)
	src := "//manager//employee/name"
	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d := db
				if g%2 == 0 {
					d = par
				}
				opts := QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP, Trace: i%2 == 0}}
				if _, err := d.QueryContext(context.Background(), src, opts); err != nil {
					errs <- err
					return
				}
				switch i % 3 {
				case 0:
					_ = db.Metrics()
				case 1:
					db.WriteMetrics(&strings.Builder{})
				case 2:
					_ = db.SlowQueries()
				}
				if i == iters/2 && g == 0 {
					db.SetSlowQueryLog(time.Hour, nil)
					db.SetSlowQueryLog(time.Nanosecond, func(SlowQueryEntry) {})
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.Query.Queries != goroutines*iters {
		t.Fatalf("queries = %d, want %d", m.Query.Queries, goroutines*iters)
	}
	if m.Query.InFlight != 0 {
		t.Fatalf("in-flight = %d after quiesce", m.Query.InFlight)
	}
}
