package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sjos"
	"sjos/internal/faultfs"
	"sjos/internal/loadgen"
	"sjos/internal/storage"
)

// ReplicaBenchConfig shapes the hedged-vs-unhedged tail comparison: a
// replicated corpus where one replica of every shard is slow (injected
// per-read latency), serving the same open-loop load twice — once with
// hedged reads off (failover only) and once on.
type ReplicaBenchConfig struct {
	// Docs and Shards size the corpus (<= 0 selects 8 over 4, as
	// LoadBench); Replicas is the store copies per shard (<= 0 selects 2).
	Docs     int
	Shards   int
	Replicas int
	// SlowLatency is the injected per-read delay of each shard's slow
	// replica (<= 0 selects 1ms).
	SlowLatency time.Duration
	// HedgeDelay fixes the hedged run's hedge delay (0 = adaptive p95).
	HedgeDelay time.Duration
	// Rate, Duration, Clients, MaxOutstanding, Method, Seed are exactly
	// LoadBenchConfig's knobs.
	Rate           float64
	Duration       time.Duration
	Clients        int
	MaxOutstanding int
	Method         sjos.Method
	Seed           int64
}

func (c *ReplicaBenchConfig) defaults() {
	if c.Docs <= 0 {
		c.Docs = 8
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas <= 1 {
		c.Replicas = 2
	}
	if c.SlowLatency <= 0 {
		c.SlowLatency = time.Millisecond
	}
	if c.Rate <= 0 {
		c.Rate = 200
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 2 * c.Shards
	}
}

// ReplicaBenchRun is one arm (hedged or unhedged) of the comparison.
type ReplicaBenchRun struct {
	Hedged         bool    `json:"hedged"`
	Offered        int     `json:"offered"`
	Completed      int     `json:"completed"`
	Errors         int     `json:"errors"`
	Shed           int     `json:"shed"`
	Throughput     float64 `json:"throughput_per_sec"`
	P50            string  `json:"p50"`
	P95            string  `json:"p95"`
	P99            string  `json:"p99"`
	Max            string  `json:"max"`
	HedgedRequests uint64  `json:"hedged_requests"`
	Failovers      uint64  `json:"replica_failovers"`
}

// ReplicaBenchResult is the BENCH_replica.json record: the corpus geometry,
// the injected slowness, and the two arms.
type ReplicaBenchResult struct {
	Docs        int             `json:"docs"`
	Shards      int             `json:"shards"`
	Replicas    int             `json:"replicas"`
	Nodes       int             `json:"nodes"`
	Method      string          `json:"method"`
	Rate        float64         `json:"offered_rate_per_sec"`
	Duration    string          `json:"duration"`
	Clients     int             `json:"clients"`
	SlowLatency string          `json:"slow_replica_read_latency"`
	Unhedged    ReplicaBenchRun `json:"unhedged"`
	Hedged      ReplicaBenchRun `json:"hedged"`
}

// replicaBenchArm builds one replicated corpus with replica 1 of every
// shard slowed by cfg.SlowLatency and serves the open-loop load against it.
func replicaBenchArm(cfg ReplicaBenchConfig, hedged bool) (*ReplicaBenchRun, int, error) {
	var mu sync.Mutex
	slow := make(map[int]*faultfs.File)
	b := sjos.NewCorpusBuilder(&sjos.CorpusOptions{
		Shards:           cfg.Shards,
		ReplicasPerShard: cfg.Replicas,
		HedgeDelay:       cfg.HedgeDelay,
		DisableHedging:   !hedged,
		ShardPageFile: func(shard, replica int) sjos.PageFile {
			f := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
			if replica == 1 {
				mu.Lock()
				slow[shard] = f
				mu.Unlock()
			}
			return f
		},
	})
	for i := 0; i < cfg.Docs; i++ {
		id := fmt.Sprintf("pers-%03d", i)
		if err := b.AddDataset(id, "pers", 1, 1, cfg.Seed+int64(i)); err != nil {
			return nil, 0, err
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	// Slow the replicas only after construction so both arms build at full
	// speed on identical stores.
	for _, f := range slow {
		f.SetPolicy(faultfs.Policy{Latency: cfg.SlowLatency})
	}

	var mix []string
	for _, q := range Queries() {
		if q.Dataset == "pers" {
			mix = append(mix, q.Source)
		}
	}
	var next atomic.Int64
	lr, err := loadgen.Run(loadgen.Config{
		Rate:           cfg.Rate,
		Duration:       cfg.Duration,
		Workers:        cfg.Clients,
		MaxOutstanding: cfg.MaxOutstanding,
		Seed:           cfg.Seed,
	}, func() error {
		src := mix[int(next.Add(1)-1)%len(mix)]
		_, qerr := c.QueryContext(context.Background(), src,
			sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: cfg.Method}})
		return qerr
	})
	if err != nil {
		return nil, 0, err
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = c.Drain(drainCtx)

	nodes := 0
	for _, h := range c.Health() {
		nodes += h.Nodes
	}
	m := c.Metrics()
	return &ReplicaBenchRun{
		Hedged:         hedged,
		Offered:        lr.Offered,
		Completed:      lr.Completed,
		Errors:         lr.Errors,
		Shed:           lr.Shed,
		Throughput:     lr.Throughput,
		P50:            lr.P50.String(),
		P95:            lr.P95.String(),
		P99:            lr.P99.String(),
		Max:            lr.Max.String(),
		HedgedRequests: m.Replica.HedgedRequests,
		Failovers:      m.Replica.Failovers,
	}, nodes, nil
}

// ReplicaBench runs the hedged-vs-unhedged comparison: same documents, same
// arrival schedule, same slow replica per shard — the only difference is
// whether a shard query slower than the hedge delay is re-issued on the next
// replica. The two arms' tail quantiles are the experiment's output.
func ReplicaBench(cfg ReplicaBenchConfig) (*ReplicaBenchResult, error) {
	cfg.defaults()
	res := &ReplicaBenchResult{
		Docs:        cfg.Docs,
		Shards:      cfg.Shards,
		Replicas:    cfg.Replicas,
		Method:      cfg.Method.String(),
		Rate:        cfg.Rate,
		Duration:    cfg.Duration.String(),
		Clients:     cfg.Clients,
		SlowLatency: cfg.SlowLatency.String(),
	}
	un, nodes, err := replicaBenchArm(cfg, false)
	if err != nil {
		return nil, err
	}
	res.Unhedged = *un
	res.Nodes = nodes
	he, _, err := replicaBenchArm(cfg, true)
	if err != nil {
		return nil, err
	}
	res.Hedged = *he
	return res, nil
}

// RenderReplicaBench formats the comparison for the terminal.
func RenderReplicaBench(r *ReplicaBenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Hedged-read tails (%d docs / %d shards / %d replicas, one %s-per-read slow replica per shard, %s, %.0f req/s for %s)\n",
		r.Docs, r.Shards, r.Replicas, r.SlowLatency, r.Method, r.Rate, r.Duration)
	row := func(run ReplicaBenchRun) {
		name := "unhedged"
		if run.Hedged {
			name = "hedged"
		}
		fmt.Fprintf(&sb, "%-8s  p50 %-10s p95 %-10s p99 %-10s max %-10s  hedges %d  failovers %d  errors %d\n",
			name, run.P50, run.P95, run.P99, run.Max, run.HedgedRequests, run.Failovers, run.Errors)
	}
	row(r.Unhedged)
	row(r.Hedged)
	return sb.String()
}
