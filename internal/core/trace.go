package core

import (
	"context"
	"fmt"
	"strings"

	"sjos/internal/cost"
	"sjos/internal/pattern"
)

// TraceKind classifies one event of a traced DPP search.
type TraceKind int

// Trace event kinds, mirroring the paper's §3.2.1 worked example (Figure 4):
// statuses are expanded in priority order, successors are generated,
// cheaper routes supersede known statuses, the first complete plan sets
// MinCost, and statuses at or above it die.
const (
	// TraceExpand: a status was taken from the priority list and expanded.
	TraceExpand TraceKind = iota
	// TraceGenerate: a new status was created.
	TraceGenerate
	// TraceImprove: a cheaper route superseded a known status.
	TraceImprove
	// TraceWorse: a route was discarded as no cheaper than the known one.
	TraceWorse
	// TraceDeadend: the Lookahead Rule refused to create a deadend.
	TraceDeadend
	// TraceFinal: a complete plan was reached (MinCost may update).
	TraceFinal
	// TracePruneDead: a status was discarded because its Cost reached
	// the best complete plan ("dead" in Definition of the Pruning Rule).
	TracePruneDead
)

var traceKindNames = [...]string{
	"expand", "generate", "improve", "worse", "deadend", "final", "prune-dead",
}

// String names the event kind.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// TraceEvent is one step of a traced search.
type TraceEvent struct {
	Kind      TraceKind
	Edges     uint32 // joined-edge mask of the status involved
	OrderMask uint32
	Level     int
	Cost      float64
}

// DPPWithTrace runs the DPP search recording every expansion, generation,
// improvement and pruning decision — the machine-checkable version of the
// paper's Figure 4 walk-through. The result is identical to DPP's.
func DPPWithTrace(pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, []TraceEvent, error) {
	var events []TraceEvent
	res, err := dppSearch(context.Background(), pat, est, model, dppConfig{
		name:      "DPP",
		lookahead: true,
		trace:     &events,
	})
	return res, events, err
}

// FormatTrace renders a trace compactly, one event per line, with cluster
// structure spelled out using the pattern's tags.
func FormatTrace(pat *pattern.Pattern, events []TraceEvent) string {
	var sb strings.Builder
	for i, e := range events {
		fmt.Fprintf(&sb, "%3d %-10s lv%d cost=%.0f  %s\n",
			i, e.Kind, e.Level, e.Cost, describeStatus(pat, e.Edges, e.OrderMask))
	}
	return sb.String()
}

// describeStatus renders a status's clusters, bolding each cluster's
// order-by node with a trailing '*' (the paper's figures bold it).
func describeStatus(pat *pattern.Pattern, edges, orderMask uint32) string {
	// Recompute components locally (cheap, n ≤ 30).
	n := pat.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = i
	}
	for v := 1; v < n; v++ {
		if edges&(1<<uint(v)) != 0 {
			comp[v] = comp[pat.Parent[v]]
		}
	}
	var clusters []string
	for root := 0; root < n; root++ {
		var members []string
		for v := 0; v < n; v++ {
			if comp[v] != root {
				continue
			}
			name := pat.Nodes[v].Tag
			if orderMask&(1<<uint(v)) != 0 {
				name += "*"
			}
			members = append(members, name)
		}
		if len(members) > 0 {
			clusters = append(clusters, "{"+strings.Join(members, ",")+"}")
		}
	}
	return strings.Join(clusters, " ")
}
