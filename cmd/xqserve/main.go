// Command xqserve serves one or more query collections over HTTP — the
// observability face of the query service. A collection is a corpus:
// many documents sharded by consistent hashing, queried with scatter-gather.
//
//	xqserve -dataset pers -docs 8 -shards 4 -addr :8377
//	xqserve -dataset pers -docs 8 -shards 4 -replicas 2 -hedge 2ms
//	xqserve -collections staff=pers:8,papers=dblp:4 -shards 4
//	xqserve -xml file.xml -parallel 4 -slowquery 50ms
//
// Endpoints:
//
//	GET /query?q=//manager//name[&method=FP][&limit=10][&count=1][&trace=1][&novidx=1]
//	    evaluate a tree pattern on the default (first) collection; JSON
//	    response with matches, their documents, timings, the plan, and
//	    (with trace=1) the merged per-operator trace
//	GET /collections                     list collections (docs, shards, nodes)
//	GET /collections/{name}/query        evaluate on a named collection
//	GET /collections/{name}/metrics      that collection's Prometheus counters
//	GET /collections/{name}/slow         that collection's slow-query log
//	GET /metrics   Prometheus text exposition (default collection)
//	GET /healthz   per-collection, per-shard health as JSON, including each
//	               replica's routing state (healthy / suspect / probation)
//	               when -replicas > 1
//	GET /slow      recent slow-query log entries (default collection)
//
// With -writable (in-memory WALs) or -waldir (durable on-disk WALs, with
// crash recovery on restart) each collection also serves:
//
//	PUT    /docs/{id}    upsert the XML document in the request body
//	DELETE /docs/{id}    remove the document
//	GET    /ingest       write-path state (docs, WAL pages, compactions)
//	PUT    /collections/{name}/docs/{id}, DELETE .../docs/{id},
//	GET    /collections/{name}/ingest    the same for a named collection
//
// Mutations pass the same admission gate as queries: -maxinflight bounds
// them and shutdown drains refuse them with 503.
//
// A -slowquery threshold logs offending queries (fingerprint, method,
// duration, per-operator trace) to stderr and retains them for /slow.
//
// The server sheds load and exits gracefully: -maxinflight bounds how many
// queries execute at once per collection (with up to -queuedepth more
// waiting; arrivals past that get 503), and on SIGTERM/SIGINT the server
// stops accepting, drains every collection for up to -draintimeout, then
// exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sjos"
	"sjos/internal/storage"
)

func main() {
	xmlPath := flag.String("xml", "", "XML file to serve as a single-document collection")
	dataset := flag.String("dataset", "", "generated data set: mbench, dblp or pers")
	collections := flag.String("collections", "", "comma-separated name=dataset[:docs] collection specs (overrides -xml/-dataset)")
	docs := flag.Int("docs", 1, "documents per collection for -dataset (distinct generator seeds)")
	shards := flag.Int("shards", 0, "shards per collection (0 = one per document, capped at GOMAXPROCS)")
	replicas := flag.Int("replicas", 1, "store replicas per shard (>1 enables health-aware routing and hedged reads)")
	hedge := flag.String("hedge", "auto", "hedged reads: auto (adaptive p95 delay), off, or a fixed delay like 2ms")
	fold := flag.Int("fold", 1, "folding factor for generated data sets")
	method := flag.String("method", "DPP", "default optimizer for /query")
	parallel := flag.Int("parallel", 0, "partition-parallel workers per shard (0 = serial, -1 = GOMAXPROCS)")
	addr := flag.String("addr", ":8377", "listen address")
	slowQuery := flag.Duration("slowquery", 0, "slow-query log threshold (0 = disabled)")
	maxInFlight := flag.Int("maxinflight", 0, "max concurrently executing queries per collection (0 = unlimited)")
	queueDepth := flag.Int("queuedepth", 0, "queries allowed to wait for an execution slot when -maxinflight is set")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "how long shutdown waits for in-flight queries")
	writable := flag.Bool("writable", false, "enable the write endpoints with in-memory per-shard WALs")
	walDir := flag.String("waldir", "", "enable the write endpoints with durable per-shard WALs under this directory (recovers committed state on restart)")
	flag.Parse()

	rep, err := parseHedge(*replicas, *hedge)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xqserve: %v\n", err)
		os.Exit(2)
	}
	wr := writeConfig{enabled: *writable || *walDir != "", dir: *walDir}
	cols, err := buildCollections(*collections, *xmlPath, *dataset, *docs, *shards, *fold, *maxInFlight, *queueDepth, rep, wr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xqserve: %v\n", err)
		os.Exit(2)
	}
	m, err := sjos.ParseMethod(*method)
	if err != nil {
		log.Fatalf("xqserve: %v", err)
	}
	for _, name := range cols.names {
		c := cols.byName[name]
		if *parallel != 0 {
			c = c.WithParallelism(*parallel)
			cols.byName[name] = c
		}
		if *slowQuery > 0 {
			name := name
			c.SetSlowQueryLog(*slowQuery, func(e sjos.SlowQueryEntry) {
				log.Printf("slow query [%s]: %s (%s, fingerprint %s) took %v (optimize %v, execute %v), %d matches",
					name, e.Pattern, e.Method, e.Fingerprint, e.Duration, e.OptimizeTime, e.ExecuteTime, e.Matches)
			})
		}
		log.Printf("xqserve: collection %q: %d documents over %d shards (%d replicas/shard)",
			name, c.NumDocs(), c.NumShards(), rep.perShard)
	}
	log.Printf("xqserve: optimizer %s; listening on %s", m, *addr)
	srv := &http.Server{Addr: *addr, Handler: newMux(cols, m)}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("xqserve: %v", err)
	case <-ctx.Done():
	}
	// Graceful exit: stop accepting connections, then wait for every
	// admitted query in every collection to finish (new arrivals already
	// get 503 via the corpus drains) — all bounded by -draintimeout.
	log.Printf("xqserve: shutting down (draining for up to %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	for _, name := range cols.names {
		if err := cols.byName[name].Drain(dctx); err != nil {
			log.Printf("xqserve: drain %q: %v (queries still running)", name, err)
		}
	}
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("xqserve: shutdown: %v", err)
	}
	log.Printf("xqserve: bye")
}

// collections is the server's routing table: named corpora in registration
// order; the first is the default one behind the legacy top-level routes.
type collections struct {
	names  []string
	byName map[string]*sjos.Corpus
}

func (c *collections) add(name string, corpus *sjos.Corpus) {
	if c.byName == nil {
		c.byName = make(map[string]*sjos.Corpus)
	}
	c.names = append(c.names, name)
	c.byName[name] = corpus
}

func (c *collections) def() *sjos.Corpus { return c.byName[c.names[0]] }

// replication carries the -replicas / -hedge flag settings into corpus
// construction.
type replication struct {
	perShard   int
	hedgeDelay time.Duration
	hedgeOff   bool
}

// parseHedge validates the -replicas count and the -hedge mode: "auto"
// (adaptive p95 delay), "off", or a fixed duration such as "2ms".
func parseHedge(replicas int, hedge string) (replication, error) {
	if replicas < 1 {
		return replication{}, fmt.Errorf("-replicas must be at least 1 (got %d)", replicas)
	}
	r := replication{perShard: replicas}
	switch hedge {
	case "auto", "":
	case "off":
		r.hedgeOff = true
	default:
		d, err := time.ParseDuration(hedge)
		if err != nil || d <= 0 {
			return replication{}, fmt.Errorf("-hedge must be auto, off, or a positive duration (got %q)", hedge)
		}
		r.hedgeDelay = d
	}
	return r, nil
}

// writeConfig carries the -writable / -waldir settings: whether collections
// get a write path, and where its per-shard WALs live (empty = in memory).
type writeConfig struct {
	enabled bool
	dir     string
}

// walFileFunc builds the per-shard WAL supplier for one collection, or nil
// when the server is read-only. With a -waldir, shard s of collection name
// logs to <dir>/<name>/shard-NNN.wal — opened if it exists (recovery),
// created otherwise.
func (wr writeConfig) walFileFunc(name string) (func(int) sjos.PageFile, error) {
	if !wr.enabled {
		return nil, nil
	}
	if wr.dir == "" {
		return func(int) sjos.PageFile { return storage.NewMemFile() }, nil
	}
	dir := filepath.Join(wr.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return func(shard int) sjos.PageFile {
		path := filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", shard))
		if _, err := os.Stat(path); err == nil {
			f, err := storage.OpenDiskFile(path)
			if err != nil {
				log.Fatalf("xqserve: opening WAL %s: %v", path, err)
			}
			return f
		}
		f, err := storage.CreateDiskFile(path)
		if err != nil {
			log.Fatalf("xqserve: creating WAL %s: %v", path, err)
		}
		return f
	}, nil
}

// buildCollections assembles the serving set from the flag spec: either
// explicit -collections entries, or the legacy single -xml / -dataset
// source as the collection "default".
func buildCollections(spec, xmlPath, dataset string, docs, shards, fold, maxInFlight, queueDepth int, rep replication, wr writeConfig) (*collections, error) {
	opts := sjos.Options{MaxInFlight: maxInFlight, QueueDepth: queueDepth}
	cols := &collections{}
	if spec != "" {
		for _, entry := range strings.Split(spec, ",") {
			name, src, ok := strings.Cut(strings.TrimSpace(entry), "=")
			if !ok || name == "" {
				return nil, fmt.Errorf("bad -collections entry %q (want name=dataset[:docs])", entry)
			}
			ds, cnt := src, docs
			if d, n, ok := strings.Cut(src, ":"); ok {
				v, err := strconv.Atoi(n)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("bad document count in -collections entry %q", entry)
				}
				ds, cnt = d, v
			}
			c, err := buildDatasetCorpus(name, ds, cnt, shards, fold, opts, rep, wr)
			if err != nil {
				return nil, err
			}
			cols.add(name, c)
		}
		return cols, nil
	}
	if xmlPath != "" && dataset != "" {
		return nil, errors.New("need at most one of -xml / -dataset / -collections")
	}
	if xmlPath == "" && dataset == "" {
		if !wr.enabled {
			return nil, errors.New("need one of -xml / -dataset / -collections (or -writable / -waldir for an empty writable collection)")
		}
		// A writable server may start empty and be populated over HTTP.
		c, err := buildDatasetCorpus("default", "", 0, shards, fold, opts, rep, wr)
		if err != nil {
			return nil, err
		}
		cols.add("default", c)
		return cols, nil
	}
	if xmlPath != "" {
		f, err := os.Open(xmlPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		db, err := sjos.LoadXML(f, &opts)
		if err != nil {
			return nil, err
		}
		cols.add("default", db.AsCorpus(xmlPath))
		return cols, nil
	}
	c, err := buildDatasetCorpus("default", dataset, docs, shards, fold, opts, rep, wr)
	if err != nil {
		return nil, err
	}
	cols.add("default", c)
	return cols, nil
}

func buildDatasetCorpus(name, dataset string, docs, shards, fold int, opts sjos.Options, rep replication, wr writeConfig) (*sjos.Corpus, error) {
	walFile, err := wr.walFileFunc(name)
	if err != nil {
		return nil, fmt.Errorf("collection %q: %w", name, err)
	}
	if docs < 1 && walFile == nil {
		docs = 1
	}
	b := sjos.NewCorpusBuilder(&sjos.CorpusOptions{
		Options:          opts,
		Shards:           shards,
		ReplicasPerShard: rep.perShard,
		HedgeDelay:       rep.hedgeDelay,
		DisableHedging:   rep.hedgeOff,
		ShardWALFile:     walFile,
	})
	for i := 0; i < docs; i++ {
		id := fmt.Sprintf("%s-%03d", dataset, i)
		if err := b.AddDataset(id, dataset, 1, fold, int64(1+i)); err != nil {
			return nil, fmt.Errorf("collection %q: %w", name, err)
		}
	}
	return b.Build()
}

// queryResponse is the /query JSON payload.
type queryResponse struct {
	Count int `json:"count"`
	// Matches renders each match as tag=value / tag#id strings, one slot
	// per pattern node (omitted under count=1); Docs gives each match's
	// document ID, index-parallel with Matches.
	Matches [][]string `json:"matches,omitempty"`
	Docs    []string   `json:"docs,omitempty"`
	Plan    string     `json:"plan"`
	Cached  bool       `json:"cached_plan"`
	// OptimizeNs and ExecuteNs split the latency in nanoseconds.
	OptimizeNs int64         `json:"optimize_ns"`
	ExecuteNs  int64         `json:"execute_ns"`
	Shards     int           `json:"shards_queried"`
	Trace      *sjos.OpTrace `json:"trace,omitempty"`
}

// collectionInfo is one /collections list entry.
type collectionInfo struct {
	Name   string `json:"name"`
	Docs   int    `json:"docs"`
	Shards int    `json:"shards"`
	Nodes  int    `json:"nodes"`
}

// healthResponse is the /healthz payload: liveness plus per-collection,
// per-shard detail.
type healthResponse struct {
	Status      string                        `json:"status"`
	Collections map[string][]sjos.ShardHealth `json:"collections"`
}

// newMux assembles the HTTP handlers; split from main so tests can drive it
// with httptest.
func newMux(cols *collections, defaultMethod sjos.Method) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		resp := healthResponse{Status: "ok", Collections: make(map[string][]sjos.ShardHealth, len(cols.names))}
		for _, name := range cols.names {
			resp.Collections[name] = cols.byName[name].Health()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("GET /collections", func(w http.ResponseWriter, r *http.Request) {
		out := make([]collectionInfo, 0, len(cols.names))
		for _, name := range cols.names {
			c := cols.byName[name]
			info := collectionInfo{Name: name, Docs: c.NumDocs(), Shards: c.NumShards()}
			for _, h := range c.Health() {
				info.Nodes += h.Nodes
			}
			out = append(out, info)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	named := func(pick func(*http.Request) (*sjos.Corpus, bool), h func(http.ResponseWriter, *http.Request, *sjos.Corpus)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			c, ok := pick(r)
			if !ok {
				http.Error(w, "no such collection", http.StatusNotFound)
				return
			}
			h(w, r, c)
		}
	}
	defC := func(*http.Request) (*sjos.Corpus, bool) { return cols.def(), true }
	byPath := func(r *http.Request) (*sjos.Corpus, bool) {
		c, ok := cols.byName[r.PathValue("name")]
		return c, ok
	}
	metrics := func(w http.ResponseWriter, r *http.Request, c *sjos.Corpus) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.WriteMetrics(w)
	}
	slow := func(w http.ResponseWriter, r *http.Request, c *sjos.Corpus) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.SlowQueries())
	}
	query := func(w http.ResponseWriter, r *http.Request, c *sjos.Corpus) {
		serveQuery(w, r, c, defaultMethod)
	}
	ingest := func(w http.ResponseWriter, r *http.Request, c *sjos.Corpus) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.IngestStats())
	}
	mux.HandleFunc("GET /metrics", named(defC, metrics))
	mux.HandleFunc("GET /slow", named(defC, slow))
	mux.HandleFunc("GET /query", named(defC, query))
	mux.HandleFunc("GET /ingest", named(defC, ingest))
	mux.HandleFunc("PUT /docs/{id}", named(defC, servePut))
	mux.HandleFunc("DELETE /docs/{id}", named(defC, serveDelete))
	mux.HandleFunc("GET /collections/{name}/metrics", named(byPath, metrics))
	mux.HandleFunc("GET /collections/{name}/slow", named(byPath, slow))
	mux.HandleFunc("GET /collections/{name}/query", named(byPath, query))
	mux.HandleFunc("GET /collections/{name}/ingest", named(byPath, ingest))
	mux.HandleFunc("PUT /collections/{name}/docs/{id}", named(byPath, servePut))
	mux.HandleFunc("DELETE /collections/{name}/docs/{id}", named(byPath, serveDelete))
	return mux
}

// writeResponse is the PUT/DELETE /docs/{id} JSON payload.
type writeResponse struct {
	Doc string `json:"doc"`
	// Op says what the upsert resolved to: insert, replace, or delete.
	Op   string `json:"op"`
	Docs int    `json:"docs"`
}

// servePut upserts the XML document in the request body: Insert when the ID
// is new, Replace when it already exists.
func servePut(w http.ResponseWriter, r *http.Request, c *sjos.Corpus) {
	id := r.PathValue("id")
	op := "insert"
	var err error
	if _, exists := c.ShardOf(id); exists {
		op = "replace"
		err = c.Replace(id, r.Body)
	} else {
		err = c.Insert(id, r.Body)
	}
	if err != nil {
		writeMutationError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(writeResponse{Doc: id, Op: op, Docs: c.NumDocs()})
}

func serveDelete(w http.ResponseWriter, r *http.Request, c *sjos.Corpus) {
	id := r.PathValue("id")
	if _, exists := c.ShardOf(id); !exists && c.IngestEnabled() {
		http.Error(w, "no such document", http.StatusNotFound)
		return
	}
	if err := c.Delete(id); err != nil {
		writeMutationError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(writeResponse{Doc: id, Op: "delete", Docs: c.NumDocs()})
}

// writeMutationError maps write-path failures onto HTTP: a read-only
// collection refuses the method, load shed and drains are retryable, a
// poisoned shard is a server fault, and everything else (bad XML, ID
// conflicts) is the client's.
func writeMutationError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, sjos.ErrNoWAL):
		http.Error(w, "collection is read-only (start xqserve with -writable or -waldir)", http.StatusMethodNotAllowed)
	case errors.Is(err, sjos.ErrOverloaded) || errors.Is(err, sjos.ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, sjos.ErrBroken):
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func serveQuery(w http.ResponseWriter, r *http.Request, c *sjos.Corpus, defaultMethod sjos.Method) {
	src := r.URL.Query().Get("q")
	if src == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	m := defaultMethod
	if ms := r.URL.Query().Get("method"); ms != "" {
		var err error
		if m, err = sjos.ParseMethod(ms); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	opts := sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: m}}
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
			return
		}
		opts.Limit = n
	}
	opts.Trace = boolParam(r, "trace")
	opts.NoValueIndex = boolParam(r, "novidx")
	res, err := c.QueryContext(r.Context(), src, opts)
	if err != nil {
		// Load shed and shutdown are retryable service conditions, not
		// client errors.
		if errors.Is(err, sjos.ErrOverloaded) || errors.Is(err, sjos.ErrShuttingDown) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := &queryResponse{
		Count:      res.Count,
		Plan:       res.PlanText,
		Cached:     res.CachedPlan,
		OptimizeNs: res.OptimizeTime.Nanoseconds(),
		ExecuteNs:  res.ExecuteTime.Nanoseconds(),
		Shards:     res.ShardsQueried,
		Trace:      res.Trace,
	}
	if !boolParam(r, "count") {
		resp.Matches, resp.Docs = renderMatches(c, res.Matches)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func boolParam(r *http.Request, name string) bool {
	v := r.URL.Query().Get(name)
	return v == "1" || v == "true" || v == "yes"
}

// renderMatches formats node bindings the way the CLI tools print them,
// plus each match's document ID.
func renderMatches(c *sjos.Corpus, matches []sjos.CorpusMatch) ([][]string, []string) {
	out := make([][]string, len(matches))
	docIDs := make([]string, len(matches))
	for i, m := range matches {
		docIDs[i] = m.DocID
		row := make([]string, len(m.Nodes))
		for u, id := range m.Nodes {
			tag, _ := c.TagName(m.DocID, id)
			if v, _ := c.Value(m.DocID, id); v != "" {
				row[u] = fmt.Sprintf("%s=%q", tag, v)
			} else {
				row[u] = fmt.Sprintf("%s#%d", tag, id)
			}
		}
		out[i] = row
	}
	return out, docIDs
}
