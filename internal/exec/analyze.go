package exec

import (
	"fmt"
	"strings"

	"sjos/internal/pattern"
	"sjos/internal/plan"
)

// Analysis reports one plan operator's estimated vs actual output
// cardinality, in the order plan nodes are visited pre-order. It is the
// cardinality-only view of the richer OpTrace instrumentation.
type Analysis struct {
	Node   *plan.Node
	Actual int
	Est    float64

	acc *traceAcc
}

// BuildAnalyzed compiles a plan with an instrumentation wrapper around
// every operator. The returned analyses are filled in as execution proceeds
// and are valid after the root has been drained and closed.
func BuildAnalyzed(pat *pattern.Pattern, n *plan.Node) (Operator, []*Analysis, error) {
	tb, err := NewTraceBuilder(pat, n)
	if err != nil {
		return nil, nil, err
	}
	op, err := tb.Build()
	if err != nil {
		return nil, nil, err
	}
	var all []*Analysis
	var walk func(a *traceAcc)
	walk = func(a *traceAcc) {
		if a == nil {
			return
		}
		all = append(all, &Analysis{Node: a.node, Est: a.node.EstCard, acc: a})
		walk(a.left)
		walk(a.right)
	}
	walk(tb.root)
	return op, all, nil
}

// Finish snapshots the counters into Actual; call after draining and
// closing the root.
func Finish(all []*Analysis) {
	for _, a := range all {
		if a.acc != nil {
			a.Actual = int(a.acc.rows.Load())
		}
	}
}

// FormatAnalysis renders the plan tree with estimated and actual output
// cardinalities side by side — the cardinality summary of EXPLAIN ANALYZE.
func FormatAnalysis(pat *pattern.Pattern, root *plan.Node, all []*Analysis) string {
	byNode := make(map[*plan.Node]*Analysis, len(all))
	for _, a := range all {
		byNode[a.Node] = a
	}
	var sb strings.Builder
	var walk func(n *plan.Node, depth int)
	walk = func(n *plan.Node, depth int) {
		indent := strings.Repeat("  ", depth)
		switch n.Op {
		case plan.OpIndexScan:
			fmt.Fprintf(&sb, "%sIndexScan %s", indent, opDetail(pat, n))
		case plan.OpSort:
			fmt.Fprintf(&sb, "%sSort %s", indent, opDetail(pat, n))
		case plan.OpStructuralJoin:
			fmt.Fprintf(&sb, "%s%s %s", indent, n.Algo, opDetail(pat, n))
		}
		if a := byNode[n]; a != nil {
			fmt.Fprintf(&sb, "  [est≈%.0f actual=%d err=%s]",
				a.Est, a.Actual, driftRatio(a.Est, int64(a.Actual)))
		}
		sb.WriteString("\n")
		if n.Left != nil {
			walk(n.Left, depth+1)
		}
		if n.Right != nil {
			walk(n.Right, depth+1)
		}
	}
	walk(root, 0)
	return sb.String()
}
