package main

import (
	"strings"
	"testing"

	"sjos"
)

func newShell(t *testing.T) (*shell, *strings.Builder) {
	t.Helper()
	db, err := sjos.LoadXMLString(`<db>
	  <manager><name>alice</name><employee><name>bob</name></employee></manager>
	  <manager><name>carol</name><department><name>ops</name></department></manager>
	</db>`, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	return &shell{db: db, method: sjos.MethodDPP, limit: 10, out: &out}, &out
}

func TestShellPatternQuery(t *testing.T) {
	sh, out := newShell(t)
	if !sh.processLine("//manager/name") {
		t.Fatal("query ended the session")
	}
	s := out.String()
	if !strings.Contains(s, "2 matches") || !strings.Contains(s, `"alice"`) {
		t.Fatalf("output:\n%s", s)
	}
}

func TestShellXQuery(t *testing.T) {
	sh, out := newShell(t)
	sh.processLine(`for $m in //manager where $m/employee return $m/name`)
	s := out.String()
	if !strings.Contains(s, "1 rows") || !strings.Contains(s, `"alice"`) {
		t.Fatalf("output:\n%s", s)
	}
}

func TestShellCommands(t *testing.T) {
	sh, out := newShell(t)
	if sh.processLine(".quit") {
		t.Fatal(".quit should end the session")
	}
	if !sh.processLine("") {
		t.Fatal("blank line should continue")
	}
	sh.processLine(".method FP")
	if sh.method != sjos.MethodFP {
		t.Fatal(".method did not switch")
	}
	sh.processLine(".method BOGUS")
	if !strings.Contains(out.String(), "error:") {
		t.Fatal("bad method not reported")
	}
	sh.processLine(".limit 1")
	if sh.limit != 1 {
		t.Fatal(".limit did not apply")
	}
	out.Reset()
	sh.processLine("//manager/name")
	if !strings.Contains(out.String(), "and 1 more") {
		t.Fatalf("limit not enforced:\n%s", out.String())
	}
	out.Reset()
	sh.processLine(".limit -3")
	sh.processLine(".nonsense")
	if !strings.Contains(out.String(), "error:") {
		t.Fatal("bad commands not reported")
	}
}

func TestShellInspectors(t *testing.T) {
	sh, out := newShell(t)
	sh.processLine(".explain //manager//name")
	if !strings.Contains(out.String(), "FP:") {
		t.Fatalf("explain output:\n%s", out.String())
	}
	out.Reset()
	sh.processLine(".analyze //manager//name")
	if !strings.Contains(out.String(), "actual=") {
		t.Fatalf("analyze output:\n%s", out.String())
	}
	out.Reset()
	sh.processLine(".trace //manager/name")
	if !strings.Contains(out.String(), "expand") {
		t.Fatalf("trace output:\n%s", out.String())
	}
	out.Reset()
	sh.processLine(".explain ///bad[")
	if !strings.Contains(out.String(), "error:") {
		t.Fatal("bad pattern not reported")
	}
}

func TestShellCacheCommand(t *testing.T) {
	sh, out := newShell(t)
	sh.processLine("//manager/name")
	out.Reset()
	sh.processLine("//manager/name")
	if !strings.Contains(out.String(), "cached plan") {
		t.Fatalf("repeat query not marked cached:\n%s", out.String())
	}
	out.Reset()
	sh.processLine(".cache")
	s := out.String()
	if !strings.Contains(s, "plan cache:") || !strings.Contains(s, "1 hits") {
		t.Fatalf(".cache output:\n%s", s)
	}
}

func TestShellQueryErrors(t *testing.T) {
	sh, out := newShell(t)
	sh.processLine("///bad")
	if !strings.Contains(out.String(), "error:") {
		t.Fatal("bad pattern not reported")
	}
	out.Reset()
	sh.processLine("for $x in")
	if !strings.Contains(out.String(), "error:") {
		t.Fatal("bad xquery not reported")
	}
}

func TestShellMetricsCommand(t *testing.T) {
	sh, out := newShell(t)
	sh.processLine("//manager/name")
	out.Reset()
	sh.processLine(".metrics")
	s := out.String()
	if !strings.Contains(s, "sjos_queries_total 1") || !strings.Contains(s, "sjos_pool_resident_pages") {
		t.Fatalf(".metrics output:\n%s", s)
	}
}

func TestShellSlowLogCommands(t *testing.T) {
	sh, out := newShell(t)
	sh.processLine(".slow")
	if !strings.Contains(out.String(), "slow-query log: empty") {
		t.Fatalf(".slow on empty log:\n%s", out.String())
	}
	out.Reset()
	sh.processLine(".slowlog 1ns")
	if !strings.Contains(out.String(), "threshold 1ns") {
		t.Fatalf(".slowlog output:\n%s", out.String())
	}
	sh.processLine("//manager/name")
	out.Reset()
	sh.processLine(".slow")
	s := out.String()
	if !strings.Contains(s, "manager/name") || !strings.Contains(s, "matches") {
		t.Fatalf(".slow output:\n%s", s)
	}
	if !strings.Contains(s, "IndexScan") {
		t.Fatalf(".slow output missing the operator trace:\n%s", s)
	}
	out.Reset()
	sh.processLine(".slowlog off")
	if !strings.Contains(out.String(), "slow-query log: off") {
		t.Fatalf(".slowlog off output:\n%s", out.String())
	}
	out.Reset()
	sh.processLine(".slowlog banana")
	if !strings.Contains(out.String(), "error:") {
		t.Fatalf("bad .slowlog not reported:\n%s", out.String())
	}
}
