package core

import (
	"math/rand"

	"sjos/internal/cost"
	"sjos/internal/pattern"
)

// RandomPlan generates one random valid evaluation plan by walking the
// status space with uniformly random moves (avoiding deadends). The paper
// uses such plans (§4.2.1) to quantify the spread between good and bad
// plans.
func RandomPlan(pat *pattern.Pattern, est *Estimator, model cost.Model, rng *rand.Rand) (*Result, error) {
	sp := newSpace(pat, est, model)
	if sp.numEdges == 0 {
		return sp.singleNode("Random"), nil
	}
	// The one-step deadend filter below cannot see traps two moves ahead
	// (a successor all of whose own successors are deadends), so a walk
	// can occasionally strand; restart until it completes. Theorem 3.1
	// guarantees completing walks exist.
	for attempt := 0; attempt < 1000; attempt++ {
		s := sp.start()
		for !sp.isFinal(s) {
			var cands []candidate
			sp.expand(s, moveOpts{}, func(c candidate) {
				if c.edges != sp.allEdges && !sp.hasMove(c.edges, c.orderMask) {
					return // avoid immediate deadends
				}
				cands = append(cands, c)
			})
			if len(cands) == 0 {
				s = nil // stranded in a deeper trap; restart the walk
				break
			}
			c := cands[rng.Intn(len(cands))]
			s = &status{
				edges:     c.edges,
				orderMask: c.orderMask,
				cost:      c.cost,
				level:     s.level + 1,
				prev:      s,
				via:       c.mv,
				heapIdx:   -1,
			}
		}
		if s != nil {
			return &Result{
				Plan:      sp.finalize(s),
				Cost:      s.cost,
				Algorithm: "Random",
			}, nil
		}
	}
	return nil, errNoPlan
}

// BadPlan samples `samples` random plans and returns the estimated-worst of
// them — the paper's "bad plan" baseline ("randomly (but not exhaustively)
// generated ... and picked the worst of these plans").
func BadPlan(pat *pattern.Pattern, est *Estimator, model cost.Model, samples int, seed int64) (*Result, error) {
	if samples < 1 {
		samples = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var worst *Result
	for i := 0; i < samples; i++ {
		r, err := RandomPlan(pat, est, model, rng)
		if err != nil {
			return nil, err
		}
		if worst == nil || r.Cost > worst.Cost {
			worst = r
		}
	}
	worst.Algorithm = "Bad"
	return worst, nil
}
