package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunOnXMLFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.xml")
	xml := `<db><a><b>one</b></a><a><b>two</b></a></db>`
	if err := os.WriteFile(path, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", 1, "//a/b", "DPP", 10, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunOnDataset(t *testing.T) {
	if err := run("", "pers", 1, "//manager/employee", "FP", 0, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunExplain(t *testing.T) {
	if err := run("", "pers", 1, "//manager//employee/name", "DPP", 0, true); err != nil {
		t.Fatalf("explain: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/no/such/file.xml", "", 1, "//a", "DPP", 0, false); err == nil {
		t.Error("missing file accepted")
	}
	if err := run("", "nope", 1, "//a", "DPP", 0, false); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("", "pers", 1, "///", "DPP", 0, false); err == nil {
		t.Error("bad query accepted")
	}
	if err := run("", "pers", 1, "//a", "BOGUS", 0, false); err == nil {
		t.Error("bad method accepted")
	}
}
