package sjos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"sjos/internal/admission"
	"sjos/internal/histogram"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// The write path. An ingestion-enabled database (Options.WALFile) stores its
// documents as members of an appendable forest over a segmented store, and
// every mutation follows one commit protocol:
//
//  1. Stage: the new member is serialised into sealed page after-images
//     without touching the store file (deletes stage nothing — they only
//     flip a segment dead).
//  2. Log: a WAL transaction (begin record with the member documents, the
//     page after-images, a commit record) is appended and fsynced. The
//     mutation is durable exactly when the commit record is; a torn or
//     missing tail is discarded on recovery.
//  3. Apply: the images are written to the store file and a new immutable
//     (document, store) snapshot is published atomically. In-flight queries
//     finish on the snapshot they pinned.
//
// A failure before the WAL commit leaves the database unchanged and usable.
// A failure after it (the apply could not complete, or the fsync outcome is
// unknowable) poisons the write path — mutations fail with ErrBroken, reads
// continue on the last published snapshot, and reopening from the WAL
// recovers the exact committed state.

// SeedDocID is the member ID under which a document passed to LoadXML /
// OpenImage / GenerateDataset is registered when ingestion is enabled.
const SeedDocID = "doc"

// DefaultCompactThreshold is the dead-node fraction past which a delete or
// replace triggers automatic compaction (see Options.CompactThreshold).
const DefaultCompactThreshold = 0.5

// ErrNoWAL is returned by the mutation entry points of a database built
// without Options.WALFile.
var ErrNoWAL = errors.New("sjos: write path disabled (database built without Options.WALFile)")

// ErrBroken means a mutation failed after its WAL commit (or with an
// unknowable fsync outcome): the in-memory state may trail the durable log,
// so the write path is poisoned. Reads continue on the last published
// snapshot; reopening from the WAL recovers the committed state.
var ErrBroken = errors.New("sjos: write path broken after a committed mutation; reopen from the WAL to recover")

// memberState is the write path's bookkeeping for one member document: the
// standalone document (statistics and snapshot re-logging need it), its node
// span in the forest, its segment index in the store, and its statistics
// part. Dead members stay in the table (spans stay allocated until
// compaction) but leave every published view.
type memberState struct {
	id   string
	doc  *xmltree.Document
	span xmltree.DocSpan
	seg  int
	part *histogram.Stats
	dead bool
}

// ingestState is a database's write-path state, guarded by mu (single
// writer; readers never take it — they use the published snapshot).
type ingestState struct {
	mu sync.Mutex

	// wal is the durable log; nil on corpus replica followers, which apply
	// the primary's already-committed mutations without logging.
	wal    *storage.WAL
	forest *xmltree.Document
	// members is append-only between compactions, in span order; byID
	// indexes the live ones.
	members []*memberState
	byID    map[string]int

	// broken poisons the write path (see ErrBroken).
	broken error

	// Construction-time settings compaction and recovery rebuilds reuse.
	grid        int
	poolFrames  int
	sopts       storage.StoreOptions
	retry       RetryPolicy
	compactThr  float64
	compactFile func() PageFile
	compactions int
}

// seedDoc is one (ID, document) pair a fresh ingestion database starts with.
type seedDoc struct {
	id  string
	doc *xmltree.Document
}

// OpenDatabase opens an ingestion-enabled database from its write-ahead log:
// with an empty WAL it starts empty (the log is seeded with an empty base
// snapshot); with a WAL holding committed transactions it recovers the exact
// committed state — the crash-recovery entry point. opts.WALFile (or the
// WALPath convenience) is required; the store file (Options.PageFile /
// DiskPath / memory) must be fresh, as recovery rebuilds it from the log.
func OpenDatabase(opts *Options) (*Database, error) {
	wal, err := resolveWALFile(opts)
	if err != nil {
		return nil, err
	}
	if wal == nil {
		return nil, fmt.Errorf("sjos: OpenDatabase requires Options.WALFile or Options.WALPath")
	}
	wopts := *opts
	wopts.WALFile = wal
	return buildIngestDatabase(nil, &wopts)
}

// buildIngestDatabase constructs an ingestion-enabled database. With an
// empty WAL the seeds become the initial members and the log is seeded with
// a base snapshot holding them; with a non-empty WAL the state is recovered
// from the log instead, and seeds must be absent (the log is self-contained;
// mixing both would be ambiguous).
func buildIngestDatabase(seeds []seedDoc, opts *Options) (*Database, error) {
	wal, txns, err := storage.OpenWAL(opts.WALFile)
	if err != nil {
		return nil, fmt.Errorf("sjos: opening WAL: %w", err)
	}
	if len(txns) > 0 && len(seeds) > 0 {
		return nil, fmt.Errorf("sjos: WAL already holds %d committed transactions; open without documents (OpenDatabase) to recover", len(txns))
	}
	ing := &ingestState{
		wal:         wal,
		byID:        make(map[string]int),
		grid:        opts.HistogramGrid,
		poolFrames:  opts.PoolFrames,
		sopts:       storage.StoreOptions{NoValueIndex: opts.NoValueIndex},
		retry:       opts.Retry,
		compactThr:  opts.CompactThreshold,
		compactFile: opts.CompactFile,
	}
	if ing.compactThr == 0 {
		ing.compactThr = DefaultCompactThreshold
	}
	if ing.compactFile == nil {
		ing.compactFile = func() PageFile { return storage.NewMemFile() }
	}

	file, err := storeFile(opts)
	if err != nil {
		return nil, err
	}
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("sjos: ingestion store file must be fresh (the WAL is the durable state); got %d pages", file.NumPages())
	}

	var store *storage.Store
	if len(txns) > 0 {
		store, err = ing.recover(txns, file)
	} else {
		store, err = ing.bootstrap(seeds, file)
	}
	if err != nil {
		return nil, err
	}
	if ing.retry != (RetryPolicy{}) {
		store.Pool().SetRetryPolicy(ing.retry)
	}

	svc := newService(nil, opts.HistogramGrid, opts.PlanCacheCapacity)
	svc.admit = admission.New(opts.MaxInFlight, opts.QueueDepth)
	db := &Database{
		dbState: &dbState{
			model:  opts.model(),
			svc:    svc,
			ingest: ing,
		},
	}
	db.publishLocked(ing.forest, store)
	return db, nil
}

// newFollowerIngest builds the write-path state for a corpus replica
// follower: same members and store as the primary, no WAL of its own.
func newFollowerIngest(seeds []seedDoc, opts *Options) (*Database, error) {
	ing := &ingestState{
		byID:        make(map[string]int),
		grid:        opts.HistogramGrid,
		poolFrames:  opts.PoolFrames,
		sopts:       storage.StoreOptions{NoValueIndex: opts.NoValueIndex},
		retry:       opts.Retry,
		compactThr:  opts.CompactThreshold,
		compactFile: opts.CompactFile,
	}
	if ing.compactThr == 0 {
		ing.compactThr = DefaultCompactThreshold
	}
	if ing.compactFile == nil {
		ing.compactFile = func() PageFile { return storage.NewMemFile() }
	}
	file, err := storeFile(opts)
	if err != nil {
		return nil, err
	}
	store, err := ing.bootstrap(seeds, file)
	if err != nil {
		return nil, err
	}
	if ing.retry != (RetryPolicy{}) {
		store.Pool().SetRetryPolicy(ing.retry)
	}
	svc := newService(nil, opts.HistogramGrid, opts.PlanCacheCapacity)
	svc.admit = admission.New(0, 0)
	db := &Database{
		dbState: &dbState{
			model:  opts.model(),
			svc:    svc,
			ingest: ing,
		},
	}
	db.publishLocked(ing.forest, store)
	return db, nil
}

// bootstrap lays a fresh forest store down for the seed members and, when a
// WAL is attached, seeds the log with a base snapshot holding them — the
// record recovery replays from, making the WAL self-contained.
func (ing *ingestState) bootstrap(seeds []seedDoc, file PageFile) (*storage.Store, error) {
	forest := xmltree.NewForest()
	store, err := storage.NewForestStore(file, forest, ing.poolFrames, ing.sopts)
	if err != nil {
		return nil, err
	}
	var walDocs []storage.WALDoc
	for _, sd := range seeds {
		if sd.id == "" {
			return nil, fmt.Errorf("sjos: document needs a non-empty ID")
		}
		if _, dup := ing.byID[sd.id]; dup {
			return nil, fmt.Errorf("sjos: duplicate document ID %q", sd.id)
		}
		nf, span, err := xmltree.AppendMember(forest, sd.doc)
		if err != nil {
			return nil, err
		}
		stage, err := store.StageSegment(nf, span)
		if err != nil {
			return nil, err
		}
		store, err = store.CommitStage(stage)
		if err != nil {
			return nil, err
		}
		forest = nf
		ing.byID[sd.id] = len(ing.members)
		ing.members = append(ing.members, &memberState{
			id:   sd.id,
			doc:  sd.doc,
			span: span,
			seg:  store.NumSegments() - 1,
			part: histogram.Build(sd.doc, ing.grid),
		})
		img, err := docImage(sd.doc)
		if err != nil {
			return nil, err
		}
		walDocs = append(walDocs, storage.WALDoc{ID: sd.id, Image: img})
	}
	if ing.wal != nil {
		if _, err := ing.wal.Append(storage.WALSnapshot, walDocs, nil); err != nil {
			return nil, fmt.Errorf("sjos: seeding WAL base snapshot: %w", err)
		}
	}
	ing.forest = forest
	return store, nil
}

// recover rebuilds the state from the committed WAL transactions: the member
// set of the last base snapshot is rebuilt through the ordinary staging path
// (the layout is a pure function of the append sequence), then each later
// transaction is replayed the same way — with the recomputed page images
// verified byte-for-byte against the logged ones before they are applied.
// The result is exactly the pre-crash committed state.
func (ing *ingestState) recover(txns []storage.WALTxn, file PageFile) (*storage.Store, error) {
	base := -1
	for i, tx := range txns {
		if tx.Op == storage.WALSnapshot {
			base = i
		}
	}
	if base < 0 {
		return nil, fmt.Errorf("sjos: WAL holds no base snapshot; not a database log")
	}
	forest := xmltree.NewForest()
	store, err := storage.NewForestStore(file, forest, ing.poolFrames, ing.sopts)
	if err != nil {
		return nil, err
	}

	appendMember := func(id string, img []byte, logged []storage.WALPageImage) error {
		doc, err := xmltree.ReadImage(bytes.NewReader(img))
		if err != nil {
			return fmt.Errorf("sjos: recovering document %q: %w", id, err)
		}
		nf, span, err := xmltree.AppendMember(forest, doc)
		if err != nil {
			return err
		}
		stage, err := store.StageSegment(nf, span)
		if err != nil {
			return err
		}
		if logged != nil {
			if err := stage.VerifyStage(logged); err != nil {
				return fmt.Errorf("sjos: recovering document %q: %w", id, err)
			}
		}
		store, err = store.CommitStage(stage)
		if err != nil {
			return err
		}
		forest = nf
		ing.byID[id] = len(ing.members)
		ing.members = append(ing.members, &memberState{
			id:   id,
			doc:  doc,
			span: span,
			seg:  store.NumSegments() - 1,
			part: histogram.Build(doc, ing.grid),
		})
		return nil
	}
	dropMember := func(id string, op string) error {
		slot, ok := ing.byID[id]
		if !ok {
			return fmt.Errorf("sjos: WAL %s of unknown document %q", op, id)
		}
		m := ing.members[slot]
		ns, err := store.DropSegment(forest, m.seg)
		if err != nil {
			return err
		}
		store = ns
		m.dead = true
		delete(ing.byID, id)
		return nil
	}

	for _, doc := range txns[base].Docs {
		if err := appendMember(doc.ID, doc.Image, nil); err != nil {
			return nil, err
		}
	}
	for _, tx := range txns[base+1:] {
		switch tx.Op {
		case storage.WALInsert:
			if err := appendMember(tx.Docs[0].ID, tx.Docs[0].Image, tx.Images); err != nil {
				return nil, err
			}
		case storage.WALDelete:
			if err := dropMember(tx.Docs[0].ID, "delete"); err != nil {
				return nil, err
			}
		case storage.WALReplace:
			id := tx.Docs[0].ID
			if err := dropMember(id, "replace"); err != nil {
				return nil, err
			}
			if err := appendMember(id, tx.Docs[0].Image, tx.Images); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sjos: WAL replay: unexpected op %d", tx.Op)
		}
	}
	ing.forest = forest
	return store, nil
}

// docImage serialises a member document for WAL logging.
func docImage(doc *xmltree.Document) ([]byte, error) {
	var buf bytes.Buffer
	if err := xmltree.WriteImage(doc, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// publishLocked installs a new snapshot and the statistics merged over the
// live members' parts — the incremental statistics maintenance: each
// mutation touches only the changed member's part and re-merges (the merge
// is per-tag estimate arithmetic, not a histogram rebuild). The service's
// stats-version bump invalidates every cached plan. Caller holds ing.mu (or
// is still constructing the database).
func (db *Database) publishLocked(forest *xmltree.Document, store *storage.Store) {
	ing := db.ingest
	var members []memberView
	idx := make(map[string]int)
	var parts []*histogram.Stats
	for _, m := range ing.members {
		if m.dead {
			continue
		}
		idx[m.id] = len(members)
		members = append(members, memberView{id: m.id, span: m.span})
		parts = append(parts, m.part)
	}
	db.snap.Store(&dbSnap{doc: forest, store: store, members: members, memberIdx: idx})
	db.svc.setStats(histogram.Merge(parts))
}

// rebuildIngestStatsLocked recomputes every live member's histogram part
// from its document and re-installs the merged statistics. Caller holds
// ing.mu.
func (db *Database) rebuildIngestStatsLocked() {
	ing := db.ingest
	var parts []*histogram.Stats
	for _, m := range ing.members {
		if m.dead {
			continue
		}
		m.part = histogram.Build(m.doc, ing.grid)
		parts = append(parts, m.part)
	}
	db.svc.setStats(histogram.Merge(parts))
}

// brokenErr wraps the poisoning cause under ErrBroken.
func (ing *ingestState) brokenErr() error {
	return fmt.Errorf("%w: %v", ErrBroken, ing.broken)
}

// Insert parses an XML document from r and commits it under id. The
// document is queryable exactly when Insert returns nil; on error the
// database is unchanged (unless the error wraps ErrBroken — see ErrBroken).
func (db *Database) Insert(id string, r io.Reader) error {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return err
	}
	return db.insertDoc(id, doc)
}

// InsertString is Insert over a string.
func (db *Database) InsertString(id, src string) error {
	return db.Insert(id, strings.NewReader(src))
}

func (db *Database) insertDoc(id string, doc *xmltree.Document) error {
	if db.ingest == nil {
		return ErrNoWAL
	}
	if id == "" {
		return fmt.Errorf("sjos: document needs a non-empty ID")
	}
	release, err := db.svc.admit.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer release()
	ing := db.ingest
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.broken != nil {
		return ing.brokenErr()
	}
	if _, dup := ing.byID[id]; dup {
		return fmt.Errorf("sjos: document %q already exists (use Replace)", id)
	}
	return db.appendLocked(storage.WALInsert, id, doc, -1)
}

// Delete commits the removal of the document with the given id. Its
// segment's postings leave every index view; the pages are reclaimed by the
// next compaction (automatic past the dead-fraction threshold).
func (db *Database) Delete(id string) error {
	if db.ingest == nil {
		return ErrNoWAL
	}
	release, err := db.svc.admit.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer release()
	ing := db.ingest
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.broken != nil {
		return ing.brokenErr()
	}
	slot, ok := ing.byID[id]
	if !ok {
		return fmt.Errorf("sjos: no document %q", id)
	}
	if ing.wal != nil {
		if _, err := ing.wal.Append(storage.WALDelete, []storage.WALDoc{{ID: id}}, nil); err != nil {
			return db.walAppendFailed(err)
		}
	}
	m := ing.members[slot]
	sn := db.view()
	store, err := sn.store.DropSegment(ing.forest, m.seg)
	if err != nil {
		// The delete is durably committed but could not be applied — only a
		// programming error can get here (DropSegment does no I/O).
		ing.broken = err
		return ing.brokenErr()
	}
	m.dead = true
	delete(ing.byID, id)
	db.publishLocked(ing.forest, store)
	return db.maybeCompactLocked(store)
}

// Replace atomically substitutes the document under id: one committed
// transaction removes the old version and inserts the new one — readers see
// either both or neither.
func (db *Database) Replace(id string, r io.Reader) error {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return err
	}
	return db.replaceDoc(id, doc)
}

// ReplaceString is Replace over a string.
func (db *Database) ReplaceString(id, src string) error {
	return db.Replace(id, strings.NewReader(src))
}

func (db *Database) replaceDoc(id string, doc *xmltree.Document) error {
	if db.ingest == nil {
		return ErrNoWAL
	}
	release, err := db.svc.admit.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer release()
	ing := db.ingest
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.broken != nil {
		return ing.brokenErr()
	}
	slot, ok := ing.byID[id]
	if !ok {
		return fmt.Errorf("sjos: no document %q (use Insert)", id)
	}
	return db.appendLocked(storage.WALReplace, id, doc, slot)
}

// appendLocked runs the commit protocol for a mutation that appends a
// member: stage, log, fsync, apply, publish. oldSlot >= 0 makes it a
// replace (the old member's segment is dropped in the same transaction).
// Caller holds ing.mu.
func (db *Database) appendLocked(op storage.WALOp, id string, doc *xmltree.Document, oldSlot int) error {
	ing := db.ingest
	sn := db.view()
	forest, span, err := xmltree.AppendMember(ing.forest, doc)
	if err != nil {
		return err
	}
	stage, err := sn.store.StageSegment(forest, span)
	if err != nil {
		return err
	}
	if ing.wal != nil {
		img, err := docImage(doc)
		if err != nil {
			return err
		}
		if _, err := ing.wal.Append(op, []storage.WALDoc{{ID: id, Image: img}}, stage.Images()); err != nil {
			return db.walAppendFailed(err)
		}
	}
	// Point of no return: the transaction is durable. Any failure from here
	// on leaves the in-memory state behind the log — poison the write path.
	store, err := sn.store.CommitStage(stage)
	if err != nil {
		ing.broken = err
		return ing.brokenErr()
	}
	if oldSlot >= 0 {
		old := ing.members[oldSlot]
		store2, err := store.DropSegment(forest, old.seg)
		if err != nil {
			ing.broken = err
			return ing.brokenErr()
		}
		store = store2
		old.dead = true
		delete(ing.byID, id)
	}
	ing.forest = forest
	ing.byID[id] = len(ing.members)
	ing.members = append(ing.members, &memberState{
		id:   id,
		doc:  doc,
		span: span,
		seg:  store.NumSegments() - 1,
		part: histogram.Build(doc, ing.grid),
	})
	db.publishLocked(forest, store)
	return db.maybeCompactLocked(store)
}

// walAppendFailed classifies a WAL append error: ErrWALBroken means the
// commit's durability is unknowable (poison); anything else failed cleanly
// before the commit record, leaving the database unchanged and usable.
func (db *Database) walAppendFailed(err error) error {
	if errors.Is(err, storage.ErrWALBroken) {
		db.ingest.broken = err
		return db.ingest.brokenErr()
	}
	return err
}

// maybeCompactLocked triggers compaction when the dead fraction crossed the
// threshold. Caller holds ing.mu.
func (db *Database) maybeCompactLocked(store *storage.Store) error {
	ing := db.ingest
	if ing.compactThr < 0 || store.DeadFraction() < ing.compactThr {
		return nil
	}
	return db.compactLocked()
}

// Compact rewrites the store without its dead segments: the live members are
// re-logged as a fresh WAL base snapshot (bounding recovery replay), then
// rebuilt into a fresh store file through the same staging path as normal
// appends. Published snapshots in flight stay valid; the new snapshot's
// member spans are renumbered.
func (db *Database) Compact() error {
	if db.ingest == nil {
		return ErrNoWAL
	}
	release, err := db.svc.admit.Acquire(context.Background())
	if err != nil {
		return err
	}
	defer release()
	db.ingest.mu.Lock()
	defer db.ingest.mu.Unlock()
	if db.ingest.broken != nil {
		return db.ingest.brokenErr()
	}
	return db.compactLocked()
}

func (db *Database) compactLocked() error {
	ing := db.ingest
	live := make([]*memberState, 0, len(ing.members))
	for _, m := range ing.members {
		if !m.dead {
			live = append(live, m)
		}
	}
	if ing.wal != nil {
		walDocs := make([]storage.WALDoc, len(live))
		for i, m := range live {
			img, err := docImage(m.doc)
			if err != nil {
				return err
			}
			walDocs[i] = storage.WALDoc{ID: m.id, Image: img}
		}
		// A snapshot changes no logical state: failing to append it leaves
		// the previous log (and the live database) fully intact.
		if _, err := ing.wal.Append(storage.WALSnapshot, walDocs, nil); err != nil {
			return db.walAppendFailed(err)
		}
	}

	forest := xmltree.NewForest()
	file := ing.compactFile()
	store, err := storage.NewForestStore(file, forest, ing.poolFrames, ing.sopts)
	if err != nil {
		return fmt.Errorf("sjos: compaction rebuild: %w", err)
	}
	members := make([]*memberState, 0, len(live))
	byID := make(map[string]int, len(live))
	for _, m := range live {
		nf, span, err := xmltree.AppendMember(forest, m.doc)
		if err != nil {
			return fmt.Errorf("sjos: compaction rebuild: %w", err)
		}
		stage, err := store.StageSegment(nf, span)
		if err != nil {
			return fmt.Errorf("sjos: compaction rebuild: %w", err)
		}
		store, err = store.CommitStage(stage)
		if err != nil {
			return fmt.Errorf("sjos: compaction rebuild: %w", err)
		}
		forest = nf
		byID[m.id] = len(members)
		members = append(members, &memberState{
			id:   m.id,
			doc:  m.doc,
			span: span,
			seg:  store.NumSegments() - 1,
			part: m.part,
		})
	}
	if ing.retry != (RetryPolicy{}) {
		store.Pool().SetRetryPolicy(ing.retry)
	}
	ing.forest = forest
	ing.members = members
	ing.byID = byID
	ing.compactions++
	db.publishLocked(forest, store)
	return nil
}

// IngestEnabled reports whether the database was built with a write path
// (Options.WALFile, or as a corpus ingestion replica).
func (db *Database) IngestEnabled() bool { return db.ingest != nil }

// NumMembers returns the number of live member documents (1 for a static
// database — its single document).
func (db *Database) NumMembers() int {
	sn := db.view()
	if sn.members == nil {
		return 1
	}
	return len(sn.members)
}

// MemberIDs returns the live member document IDs in node-range order (the
// order their matches appear in query results). Static databases return nil.
func (db *Database) MemberIDs() []string {
	sn := db.view()
	if sn.members == nil {
		return nil
	}
	out := make([]string, len(sn.members))
	for i, m := range sn.members {
		out[i] = m.id
	}
	return out
}

// HasMember reports whether a live member with the given ID exists.
func (db *Database) HasMember(id string) bool {
	sn := db.view()
	if sn.memberIdx == nil {
		return false
	}
	_, ok := sn.memberIdx[id]
	return ok
}

// memberOfSpans maps a node ID to the index of the span containing it (the
// spans are disjoint and ascending), or -1.
func memberOfSpans(spans []xmltree.DocSpan, id NodeID) int {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].First > id }) - 1
	if i < 0 || !spans[i].Contains(id) {
		return -1
	}
	return i
}

// MemberOf returns the ID of the live member document owning a matched
// node, for attributing query matches to documents. ok is false for static
// databases and for nodes of no live member (the synthetic root).
func (db *Database) MemberOf(id NodeID) (string, bool) {
	sn := db.view()
	for _, m := range sn.members {
		if m.span.Contains(id) {
			return m.id, true
		}
	}
	return "", false
}

// IngestStats is a snapshot of the write path's state.
type IngestStats struct {
	// Members is the live member count; DeadFraction the fraction of stored
	// nodes belonging to deleted members (compaction reclaims them).
	Members      int
	DeadFraction float64
	// WALPages is the write-ahead log's current length in pages.
	WALPages int
	// Compactions counts store rewrites (explicit and automatic).
	Compactions int
	// StatsVersion is the statistics version mutations bump (plan-cache
	// entries are keyed by it).
	StatsVersion uint64
	// Broken reports a poisoned write path (see ErrBroken).
	Broken bool
}

// IngestStats returns a snapshot of the write path's state (zero value for
// databases without one).
func (db *Database) IngestStats() IngestStats {
	if db.ingest == nil {
		return IngestStats{}
	}
	ing := db.ingest
	ing.mu.Lock()
	defer ing.mu.Unlock()
	_, ver := db.svc.snapshot()
	st := IngestStats{
		Members:      0,
		DeadFraction: db.view().store.DeadFraction(),
		Compactions:  ing.compactions,
		StatsVersion: ver,
		Broken:       ing.broken != nil,
	}
	for _, m := range ing.members {
		if !m.dead {
			st.Members++
		}
	}
	if ing.wal != nil {
		st.WALPages = int(ing.wal.Tail())
	}
	return st
}

// statsParts returns the live members' histogram parts — the corpus merges
// these across shards.
func (db *Database) statsParts() []*histogram.Stats {
	if db.ingest == nil {
		return nil
	}
	db.ingest.mu.Lock()
	defer db.ingest.mu.Unlock()
	var parts []*histogram.Stats
	for _, m := range db.ingest.members {
		if !m.dead {
			parts = append(parts, m.part)
		}
	}
	return parts
}
