package histogram

import (
	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// Multi is a corpus-wide statistics view over per-shard Stats. It exposes
// the same estimation surface as *Stats (tag counts, join selectivities,
// predicate selectivities) against a union tag dictionary of its parts, so
// a corpus planner can optimize one plan against merged statistics.
//
// Because no structural relationship crosses a shard (each shard is a
// disjoint forest of documents), the exact corpus-wide join count is the
// SUM of the per-shard join counts — not an estimate over an overlaid
// position space, where cross-shard cell pairs would contribute phantom
// joins. Multi therefore merges at the estimate level: counts and join
// estimates sum over parts, and predicate selectivities average weighted by
// the tag's population per part.
//
// The TagIDs Multi hands out index its own union dictionary; they are
// unrelated to any part's TagIDs.
type Multi struct {
	names  []string
	byName map[string]xmltree.TagID
	parts  []*Stats
	// local[t][p] is part p's TagID for union tag t; ok[t][p] whether the
	// tag occurs in part p at all.
	local [][]xmltree.TagID
	ok    [][]bool
}

// Merge builds the corpus-wide view over the given per-shard statistics.
// Union TagIDs are assigned deterministically: parts in order, and within a
// part its local TagIDs in order. Nil parts are skipped — a shard whose
// statistics are momentarily unavailable (e.g. a concurrent rebuild swapped
// in a merged view) contributes nothing rather than crashing the merge.
func Merge(parts []*Stats) *Multi {
	live := make([]*Stats, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			live = append(live, p)
		}
	}
	parts = live
	m := &Multi{byName: make(map[string]xmltree.TagID), parts: parts}
	for pi, p := range parts {
		byID := make([]string, len(p.byTag))
		for name, lt := range p.tagByNm {
			byID[lt] = name
		}
		for lt, name := range byID {
			t, seen := m.byName[name]
			if !seen {
				t = xmltree.TagID(len(m.names))
				m.byName[name] = t
				m.names = append(m.names, name)
				m.local = append(m.local, make([]xmltree.TagID, len(parts)))
				m.ok = append(m.ok, make([]bool, len(parts)))
			}
			m.local[t][pi] = xmltree.TagID(lt)
			m.ok[t][pi] = true
		}
	}
	return m
}

// Parts returns the number of merged per-shard statistics.
func (m *Multi) Parts() int { return len(m.parts) }

// Lookup resolves a tag name in the union dictionary.
func (m *Multi) Lookup(name string) (xmltree.TagID, bool) {
	t, ok := m.byName[name]
	return t, ok
}

// TagCount returns the corpus-wide node count for union tag t.
func (m *Multi) TagCount(t xmltree.TagID) float64 {
	if int(t) >= len(m.names) {
		return 0
	}
	total := 0.0
	for pi, p := range m.parts {
		if m.ok[t][pi] {
			total += p.TagCount(m.local[t][pi])
		}
	}
	return total
}

// EstimateJoin sums the per-shard join estimates for (ta, tb, ax): joins
// never cross shards, so the corpus total is exactly the per-shard sum.
func (m *Multi) EstimateJoin(ta, tb xmltree.TagID, ax pattern.Axis) float64 {
	if int(ta) >= len(m.names) || int(tb) >= len(m.names) {
		return 0
	}
	total := 0.0
	for pi, p := range m.parts {
		if m.ok[ta][pi] && m.ok[tb][pi] {
			total += p.EstimateJoin(m.local[ta][pi], m.local[tb][pi], ax)
		}
	}
	return total
}

// Selectivity is the corpus-wide edge selectivity: summed join estimate
// over the corpus-wide Cartesian product. Note this is deliberately NOT the
// average of per-shard selectivities — the denominator spans shard pairs
// that can never join, which is exactly what makes a corpus plan favour
// more selective join orders as the corpus grows.
func (m *Multi) Selectivity(ta, tb xmltree.TagID, ax pattern.Axis) float64 {
	na, nb := m.TagCount(ta), m.TagCount(tb)
	if na == 0 || nb == 0 {
		return 0
	}
	return m.EstimateJoin(ta, tb, ax) / (na * nb)
}

// PredicateSelectivity is the population-weighted average of the per-shard
// predicate selectivities for union tag t.
func (m *Multi) PredicateSelectivity(t xmltree.TagID, op pattern.CmpOp, value string) float64 {
	if int(t) >= len(m.names) {
		return 0
	}
	var weighted, population float64
	for pi, p := range m.parts {
		if !m.ok[t][pi] {
			continue
		}
		lt := m.local[t][pi]
		n := p.TagCount(lt)
		weighted += n * p.PredicateSelectivity(lt, op, value)
		population += n
	}
	if population == 0 {
		return 0
	}
	return weighted / population
}
