package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// valueDoc generates an XML document whose leaf values mix plain integers,
// alternate numeric spellings ("7.0", "07" — same numeric group as "7"),
// non-numeric strings, and absent values, so every eligibility case of the
// value index comes up.
func valueDoc(t *testing.T, rng *rand.Rand, n int) *xmltree.Document {
	t.Helper()
	tags := []string{"num", "mixed", "word"}
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < n; i++ {
		tag := tags[rng.Intn(len(tags))]
		sb.WriteString("<" + tag + ">")
		switch tag {
		case "num": // all-numeric tag: range probes eligible
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&sb, "%d", rng.Intn(12))
			case 1:
				fmt.Fprintf(&sb, "%d.0", rng.Intn(12)) // alternate spelling
			default:
				fmt.Fprintf(&sb, "0%d", rng.Intn(10)) // leading zero spelling
			}
		case "mixed": // numeric values but some empty/word: ranges ineligible
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&sb, "%d", rng.Intn(12))
			case 1:
				fmt.Fprintf(&sb, "w%d", rng.Intn(6))
			default: // empty value (not indexed)
			}
		case "word":
			fmt.Fprintf(&sb, "w%d", rng.Intn(8))
		}
		sb.WriteString("</" + tag + ">")
	}
	sb.WriteString("</root>")
	doc, err := xmltree.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// scanFilterRef computes the reference answer for (tag, op, rhs): the
// document-order IDs of tag nodes whose value satisfies the predicate.
func scanFilterRef(doc *xmltree.Document, tag string, op pattern.CmpOp, rhs string) []xmltree.NodeID {
	tid, ok := doc.LookupTag(tag)
	if !ok {
		return nil
	}
	var out []xmltree.NodeID
	for _, id := range doc.NodesWithTag(tid) {
		if pattern.EvalPredicate(doc.Value(id), op, rhs) {
			out = append(out, id)
		}
	}
	return out
}

// drainProbe consumes a ValueScanner via Next and checks the records.
func drainProbe(t *testing.T, vs ValueScanner) []xmltree.NodeID {
	t.Helper()
	var out []xmltree.NodeID
	var prev xmltree.Pos
	for {
		id, rec, ok, err := vs.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		if len(out) > 0 && rec.Start <= prev {
			t.Fatalf("probe results out of document order at posting %d (start %d after %d)",
				len(out), rec.Start, prev)
		}
		prev = rec.Start
		out = append(out, id)
	}
}

// TestValueProbeMatchesScanFilter is the core semantics property: whenever
// ProbeEligible says yes, the probe's result set must be byte-identical to
// scan+filter with pattern.EvalPredicate — for equality (both numeric-group
// and exact-match paths), every range op over the all-numeric tag, and both
// Next and NextBlock consumption.
func TestValueProbeMatchesScanFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	doc := valueDoc(t, rng, 4000)
	st, err := BuildStore(doc, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasValueIndex() {
		t.Fatal("store built without value index")
	}
	ops := []pattern.CmpOp{pattern.CmpEq, pattern.CmpLt, pattern.CmpLe, pattern.CmpGt, pattern.CmpGe}
	rhss := []string{"0", "3", "7", "7.0", "07", "11", "11.5", "-1", "99", "w3", "w9", ""}
	eligible := 0
	for _, tag := range []string{"num", "mixed", "word"} {
		for _, op := range ops {
			for _, rhs := range rhss {
				if !st.ProbeEligible(tag, op, rhs) {
					continue
				}
				eligible++
				want := scanFilterRef(doc, tag, op, rhs)
				if n, ok := st.ProbeSelectivity(tag, op, rhs); !ok || n != len(want) {
					t.Fatalf("%s %v %q: ProbeSelectivity = %d,%v, want %d", tag, op, rhs, n, ok, len(want))
				}
				vs, ok := st.ProbeValue(tag, op, rhs)
				if !ok {
					t.Fatalf("%s %v %q: eligible but ProbeValue declined", tag, op, rhs)
				}
				if vs.Remaining() != len(want) {
					t.Fatalf("%s %v %q: Remaining = %d, want %d", tag, op, rhs, vs.Remaining(), len(want))
				}
				got := drainProbe(t, vs)
				if len(got) != len(want) {
					t.Fatalf("%s %v %q: probe found %d, scan+filter %d", tag, op, rhs, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s %v %q: posting %d = %d, want %d", tag, op, rhs, i, got[i], want[i])
					}
				}
				// Same answer through block-wise consumption.
				vs2, _ := st.ProbeValue(tag, op, rhs)
				var blk [postingsBlockLen]xmltree.NodeID
				var got2 []xmltree.NodeID
				for {
					n, err := vs2.NextBlock(blk[:])
					if err != nil {
						t.Fatal(err)
					}
					if n == 0 {
						break
					}
					got2 = append(got2, blk[:n]...)
				}
				if len(got2) != len(want) {
					t.Fatalf("%s %v %q: NextBlock found %d, want %d", tag, op, rhs, len(got2), len(want))
				}
				for i := range got2 {
					if got2[i] != want[i] {
						t.Fatalf("%s %v %q: NextBlock posting %d = %d, want %d", tag, op, rhs, i, got2[i], want[i])
					}
				}
			}
		}
	}
	if eligible == 0 {
		t.Fatal("no eligible (tag, op, rhs) combination exercised")
	}
	// The ineligible cases must all be declined: ranges over mixed/word
	// (not all-numeric), contains, not-equal, and equality with "".
	for _, c := range []struct {
		tag string
		op  pattern.CmpOp
		rhs string
	}{
		{"mixed", pattern.CmpLt, "5"},
		{"word", pattern.CmpGe, "3"},
		{"num", pattern.CmpLt, "w1"}, // non-numeric rhs range
		{"num", pattern.CmpNe, "3"},
		{"num", pattern.CmpContains, "3"},
		{"num", pattern.CmpEq, ""},
		{"absent", pattern.CmpEq, "3"},
	} {
		if st.ProbeEligible(c.tag, c.op, c.rhs) {
			t.Fatalf("%s %v %q: expected ineligible", c.tag, c.op, c.rhs)
		}
		if _, ok := st.ProbeValue(c.tag, c.op, c.rhs); ok {
			t.Fatalf("%s %v %q: ProbeValue should decline", c.tag, c.op, c.rhs)
		}
	}
}

// TestValueProbeSeekGEBlockBoundaries builds runs long enough to span
// several compressed blocks and seeks to every block-boundary-adjacent
// position, checking the probe resumes exactly at the first posting with
// Start >= pos — including on merged multi-spelling numeric runs.
func TestValueProbeSeekGEBlockBoundaries(t *testing.T) {
	// ~1500 "num" nodes over 3 spellings of 4 numeric groups: each group's
	// merged run spans multiple 128-posting blocks.
	rng := rand.New(rand.NewSource(97))
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 1500; i++ {
		g := rng.Intn(4)
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&sb, "<num>%d</num>", g)
		case 1:
			fmt.Fprintf(&sb, "<num>%d.0</num>", g)
		default:
			fmt.Fprintf(&sb, "<num>0%d</num>", g)
		}
	}
	sb.WriteString("</root>")
	doc, err := xmltree.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	st, err := BuildStore(doc, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		op  pattern.CmpOp
		rhs string
	}{
		{pattern.CmpEq, "2"},  // merged numeric-group run (3 spellings)
		{pattern.CmpGe, "1"},  // multi-run range
		{pattern.CmpLt, "99"}, // every run
	} {
		all := scanFilterRef(doc, "num", probe.op, probe.rhs)
		if len(all) <= 2*postingsBlockLen {
			t.Fatalf("%v %q: run too short (%d) to cross blocks", probe.op, probe.rhs, len(all))
		}
		// Seek targets: around each block boundary of the reference list,
		// plus the extremes.
		var targets []int
		for b := postingsBlockLen; b < len(all); b += postingsBlockLen {
			targets = append(targets, b-1, b, b+1)
		}
		targets = append(targets, 0, len(all)-1)
		for _, ti := range targets {
			pos := doc.Start(all[ti])
			vs, ok := st.ProbeValue("num", probe.op, probe.rhs)
			if !ok {
				t.Fatalf("%v %q: probe declined", probe.op, probe.rhs)
			}
			if _, err := vs.SeekGE(pos); err != nil {
				t.Fatal(err)
			}
			got := drainProbe(t, vs)
			want := all[ti:]
			if len(got) != len(want) {
				t.Fatalf("%v %q seek@%d: %d postings after seek, want %d",
					probe.op, probe.rhs, ti, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v %q seek@%d: posting %d = %d, want %d",
						probe.op, probe.rhs, ti, i, got[i], want[i])
				}
			}
		}
		// Seeking past the last posting exhausts the probe.
		vs, _ := st.ProbeValue("num", probe.op, probe.rhs)
		if _, err := vs.SeekGE(doc.Start(all[len(all)-1]) + 1); err != nil {
			t.Fatal(err)
		}
		if got := drainProbe(t, vs); len(got) != 0 {
			t.Fatalf("%v %q: seek past end left %d postings", probe.op, probe.rhs, len(got))
		}
	}
}

// TestValueIndexCompressionAndStats checks the compression accounting: the
// encoded postings must be smaller than the 4-bytes-per-posting baseline,
// and ContentStats must reflect probes and block decodes.
func TestValueIndexCompressionAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	doc := valueDoc(t, rng, 6000)
	st, err := BuildStore(doc, 64)
	if err != nil {
		t.Fatal(err)
	}
	cs := st.ContentStats()
	if !cs.ValueIndexed {
		t.Fatal("ContentStats.ValueIndexed = false")
	}
	if cs.ValueRuns == 0 || cs.NumericTags == 0 {
		t.Fatalf("ContentStats runs/numeric = %d/%d, want > 0", cs.ValueRuns, cs.NumericTags)
	}
	if cs.PostingsBytes <= 0 || cs.PostingsBytes >= cs.RawPostingsBytes {
		t.Fatalf("postings %d bytes not smaller than raw %d", cs.PostingsBytes, cs.RawPostingsBytes)
	}
	if cs.ValueProbes != 0 {
		t.Fatalf("fresh store reports %d probes", cs.ValueProbes)
	}
	vs, ok := st.ProbeValue("num", pattern.CmpGe, "0")
	if !ok {
		t.Fatal("probe declined")
	}
	drainProbe(t, vs)
	cs = st.ContentStats()
	if cs.ValueProbes != 1 {
		t.Fatalf("ValueProbes = %d after one probe", cs.ValueProbes)
	}
	if cs.BlocksDecoded == 0 {
		t.Fatal("BlocksDecoded = 0 after draining a probe")
	}
}

// TestNoValueIndexOption checks the escape hatch at the storage layer: a
// store built with NoValueIndex declines every probe and reports itself
// unindexed, while tag scans still work.
func TestNoValueIndexOption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	doc := valueDoc(t, rng, 1000)
	st, err := BuildStoreOnOpts(NewMemFile(), doc, 32, StoreOptions{NoValueIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.HasValueIndex() {
		t.Fatal("NoValueIndex store reports a value index")
	}
	if st.ProbeEligible("num", pattern.CmpEq, "3") {
		t.Fatal("NoValueIndex store claims probe eligibility")
	}
	if _, ok := st.ProbeValue("num", pattern.CmpEq, "3"); ok {
		t.Fatal("NoValueIndex store served a probe")
	}
	cs := st.ContentStats()
	if cs.ValueIndexed || cs.ValueRuns != 0 {
		t.Fatalf("ContentStats = %+v for NoValueIndex store", cs)
	}
	tid, ok := doc.LookupTag("num")
	if !ok {
		t.Fatal("num tag missing")
	}
	if got, want := st.TagCount(tid), doc.TagCount(tid); got != want {
		t.Fatalf("TagCount = %d, want %d", got, want)
	}
}
