// Package storage is the paged storage manager underneath the XML store —
// the stand-in for the SHORE storage manager that Timber uses in the paper.
//
// It provides:
//
//   - PageFile: a page-addressed file abstraction (an in-memory backend is
//     provided; all access is counted so experiments can report physical
//     reads),
//   - BufferPool: a fixed-capacity LRU buffer with pin counts, in the style
//     of a classic database buffer manager (the paper uses a 16 MB SHORE
//     pool; ours defaults to the equivalent number of 8 KB frames),
//   - NodeStore: element nodes serialised as fixed-width records into pages,
//   - TagIndex: the element-tag index that query plans use for leaf access
//     ("index access" in the paper's cost model, cost f_I × n): per-tag
//     postings of NodeIDs in document order, stored in pages.
//
// All reads go through the buffer pool, so its statistics (hits, misses)
// reflect the physical behaviour the cost model's f_IO factor abstracts.
package storage
