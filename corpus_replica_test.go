package sjos

// Replica-set suite: with R store copies per shard, a corpus must survive a
// permanently dead replica of every shard with exact results (failover, not
// error), hedge slow replicas onto fast ones, walk dead replicas through the
// suspect/probation state machine and back on recovery, and keep the corpus
// limit/error race of the scatter sound under -race.

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"sjos/internal/faultfs"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// buildReplicaCorpus builds a corpus with every replica's page file wrapped
// in fault injection (zero policy: faults armed later, so construction-time
// reads succeed). files[shard][replica] is the wrapper.
func buildReplicaCorpus(t *testing.T, ids []string, docs []*xmltree.Document, opts CorpusOptions) (*Corpus, map[int]map[int]*faultfs.File) {
	t.Helper()
	files := make(map[int]map[int]*faultfs.File)
	var mu sync.Mutex
	opts.ShardPageFile = func(shard, replica int) PageFile {
		f := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
		mu.Lock()
		if files[shard] == nil {
			files[shard] = make(map[int]*faultfs.File)
		}
		files[shard][replica] = f
		mu.Unlock()
		return f
	}
	return buildTestCorpus(t, ids, docs, &opts), files
}

// TestCorpusReplicaChaos kills one replica of EVERY shard permanently and
// requires every method × scatter mode × execution mode to return the exact
// fault-free result: with R=2 a dead store copy is a failover, not an error.
func TestCorpusReplicaChaos(t *testing.T) {
	ids, docs := corpusFixtureDocsScale(t, 4, 0.5)
	c, files := buildReplicaCorpus(t, ids, docs, CorpusOptions{
		Shards:           2,
		ReplicasPerShard: 2,
		Options:          Options{PoolFrames: 8},
	})
	for s, reps := range files {
		if len(reps) != 2 {
			t.Fatalf("shard %d built %d replicas, want 2", s, len(reps))
		}
		// Alternate which replica dies so the metadata replica (0) is dead
		// on some shards: planning must not depend on a live replica 0.
		reps[s%2].SetPolicy(faultfs.Policy{FailNthRead: 1})
	}

	pat := MustParsePattern(`//article//author`)
	want := standaloneResults(t, ids, docs, pat)
	if len(want) == 0 {
		t.Fatal("fixture ground truth is empty")
	}
	methods := []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP}
	modes := []struct {
		name string
		opts RunOptions
	}{
		{"serial-batch", RunOptions{}},
		{"serial-tuple", RunOptions{ExecOptions: ExecOptions{NoBatch: true}}},
		{"parallel-batch", RunOptions{Workers: 2}},
		{"parallel-tuple", RunOptions{ExecOptions: ExecOptions{NoBatch: true}, Workers: 2}},
	}
	for _, m := range methods {
		opt, err := c.Optimize(pat, m, 0)
		if err != nil {
			t.Fatalf("%v: optimize: %v", m, err)
		}
		for _, mode := range modes {
			res, err := c.Run(context.Background(), pat, opt.Plan, mode.opts)
			if err != nil {
				t.Fatalf("%v/%s: dead replica leaked as error: %v", m, mode.name, err)
			}
			if !sameCorpusMatches(res.Matches, want) {
				t.Fatalf("%v/%s: result differs from fault-free answer", m, mode.name)
			}
		}
	}

	met := c.Metrics()
	if met.Replica.Failovers == 0 {
		t.Fatal("no failovers recorded despite a dead replica per shard")
	}
	if met.Replica.Suspect == 0 {
		t.Fatal("no replica degraded despite permanent failures")
	}
	deadDegraded := 0
	for _, h := range c.Health() {
		if len(h.Replicas) != 2 {
			t.Fatalf("shard %d health reports %d replicas, want 2", h.Shard, len(h.Replicas))
		}
		dead := h.Shard % 2
		if h.Replicas[dead].State != "healthy" {
			deadDegraded++
		}
		if live := h.Replicas[1-dead]; live.State != "healthy" || live.Successes == 0 {
			t.Fatalf("shard %d live replica: %+v, want healthy with successes", h.Shard, live)
		}
		if h.FaultsInjected == 0 {
			t.Fatalf("shard %d reports no injected faults", h.Shard)
		}
	}
	if deadDegraded == 0 {
		t.Fatal("no dead replica left the healthy state")
	}
	var sb strings.Builder
	c.WriteMetrics(&sb)
	for _, series := range []string{"sjos_hedged_requests_total", "sjos_replica_failovers_total", "sjos_replicas_suspect"} {
		if !strings.Contains(sb.String(), series) {
			t.Fatalf("metrics exposition missing %s", series)
		}
	}
}

// TestCorpusReplicaHedge pins a fixed hedge delay far below a slow replica's
// injected latency: queries routed to the slow copy first must be re-issued
// on the fast copy and still return the exact result.
func TestCorpusReplicaHedge(t *testing.T) {
	ids, docs := corpusFixtureDocs(t, 2)
	c, files := buildReplicaCorpus(t, ids, docs, CorpusOptions{
		Shards:           1,
		ReplicasPerShard: 2,
		HedgeDelay:       2 * time.Millisecond,
	})
	files[0][0].SetPolicy(faultfs.Policy{Latency: 25 * time.Millisecond})

	pat := MustParsePattern(`//article//author`)
	want := standaloneResults(t, ids, docs, pat)
	opt, err := c.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rotation alternates which replica goes first; across a handful of
	// queries some are slow-first and must hedge onto the fast copy.
	for i := 0; i < 8; i++ {
		res, err := c.Run(context.Background(), pat, opt.Plan, RunOptions{})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !sameCorpusMatches(res.Matches, want) {
			t.Fatalf("query %d: hedged result differs", i)
		}
	}
	if met := c.Metrics(); met.Replica.HedgedRequests == 0 {
		t.Fatalf("no hedged requests despite a 25ms-per-read replica and a 2ms hedge delay: %+v", met.Replica)
	}
}

// TestCorpusReplicaProbeRecovery walks a dead replica down to probation and
// back: half-open probes keep testing it (at most one per interval), and the
// first probe after it heals snaps it back to healthy routing.
func TestCorpusReplicaProbeRecovery(t *testing.T) {
	ids, docs := corpusFixtureDocs(t, 2)
	c, files := buildReplicaCorpus(t, ids, docs, CorpusOptions{
		Shards:               1,
		ReplicasPerShard:     2,
		DisableHedging:       true,
		ReplicaProbeInterval: time.Millisecond,
	})
	files[0][1].SetPolicy(faultfs.Policy{FailNthRead: 1})

	pat := MustParsePattern(`//article//author`)
	want := standaloneResults(t, ids, docs, pat)
	opt, err := c.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		t.Helper()
		res, err := c.Run(context.Background(), pat, opt.Plan, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameCorpusMatches(res.Matches, want) {
			t.Fatal("result differs from fault-free answer")
		}
	}
	state := func() string { return c.Health()[0].Replicas[1].State }

	deadline := time.Now().Add(5 * time.Second)
	for state() != "probation" {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck in %q, never reached probation", state())
		}
		run()
		time.Sleep(2 * time.Millisecond) // let the next half-open probe come due
	}

	// Heal the store; the next granted probe routes a real query through the
	// replica, succeeds, and restores it to healthy.
	files[0][1].SetPolicy(faultfs.Policy{})
	for state() != "healthy" {
		if time.Now().After(deadline) {
			t.Fatalf("healed replica stuck in %q", state())
		}
		run()
		time.Sleep(2 * time.Millisecond)
	}
	if h := c.Health()[0].Replicas[1]; h.Successes == 0 {
		t.Fatalf("recovered replica has no recorded successes: %+v", h)
	}
}

// TestCorpusLimitErrorRace exercises interleavings of the scatter's
// limit-satisfied cancellation with a genuinely failing shard (single
// replica, so failover cannot mask it): a real error may be pre-empted by a
// satisfied limit, but the result is then the exact prefix — never a partial
// or wrong answer, and never a swallowed error with a bad result.
func TestCorpusLimitErrorRace(t *testing.T) {
	ids, docs := corpusFixtureDocsScale(t, 4, 0.5)
	c, files := buildReplicaCorpus(t, ids, docs, CorpusOptions{
		Shards:  2,
		Options: Options{PoolFrames: 8},
	})
	pat := MustParsePattern(`//article//author`)
	want := standaloneResults(t, ids, docs, pat)
	if len(want) == 0 || want[0].Doc != 0 {
		t.Fatal("fixture's first document has no matches — prefix test needs one")
	}
	opt, err := c.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	firstShard, ok := c.ShardOf(ids[0])
	if !ok {
		t.Fatal("first document not placed")
	}
	otherShard := -1
	for s := range files {
		if s != firstShard {
			otherShard = s
		}
	}
	if otherShard < 0 {
		t.Fatal("fixture hashed every document to one shard")
	}

	run := func() (*CorpusRunResult, error) {
		res, err := c.Run(context.Background(), pat, opt.Plan, RunOptions{ExecOptions: ExecOptions{Limit: 1}})
		var pe *PanicError
		if errors.As(err, &pe) {
			t.Fatalf("panic escaped as error: %v\n%s", pe, pe.Stack)
		}
		return res, err
	}

	// Baseline under the limit, faults disarmed: establishes the exact
	// prefix and how many physical reads the racing shard performs.
	for _, f := range files[otherShard] {
		f.SetPolicy(faultfs.Policy{})
	}
	base, err := run()
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if !sameCorpusMatches(base.Matches, want[:1]) {
		t.Fatal("baseline limit prefix differs")
	}
	reads := int(files[otherShard][0].Reads())
	if reads == 0 {
		t.Fatal("limited run performed no physical reads on the racing shard — fixture too small for the pool")
	}

	// Case A: the failing shard owns no document of the limit prefix. The
	// limit cancellation and the shard's failure race; whichever wins, the
	// outcome must be the exact prefix or the injected error — at every
	// fault point, repeatedly, under -race.
	for _, p := range faultPoints(reads) {
		for i := 0; i < 3; i++ {
			files[otherShard][0].SetPolicy(faultfs.Policy{FailNthRead: p})
			res, err := run()
			if err != nil {
				if !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("failNth=%d: error = %v, want injected", p, err)
				}
				if res != nil {
					t.Fatalf("failNth=%d: partial result alongside error", p)
				}
				continue
			}
			if !sameCorpusMatches(res.Matches, want[:1]) {
				t.Fatalf("failNth=%d: swallowed fault produced a wrong prefix", p)
			}
		}
	}
	for _, f := range files[otherShard] {
		f.SetPolicy(faultfs.Policy{})
	}

	// Case B: the failing shard owns the prefix's first document, so the
	// limit can never be satisfied without it — the injected error must
	// surface. A fresh corpus keeps the shard's buffer pool cold, so the
	// very first read hits the dead store.
	c2, files2 := buildReplicaCorpus(t, ids, docs, CorpusOptions{
		Shards:  2,
		Options: Options{PoolFrames: 8},
	})
	opt2, err := c2.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	files2[firstShard][0].SetPolicy(faultfs.Policy{FailNthRead: 1})
	res, err := c2.Run(context.Background(), pat, opt2.Plan, RunOptions{ExecOptions: ExecOptions{Limit: 1}})
	if err == nil {
		t.Fatal("prefix shard's injected error was swallowed by the limit")
	}
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("prefix shard: error = %v, want injected", err)
	}
	if res != nil {
		t.Fatal("prefix shard: partial result alongside error")
	}
}

// TestAsCorpusRebuildStats covers the AsCorpus → RebuildStats → RebuildStats
// path, sequentially and concurrently: the one-shard corpus shares its
// service with the database, so rebuilds must re-derive per-shard stats
// rather than read them back through the shared snapshot (which may hold the
// merged view and used to poison histogram.Merge with a nil part).
func TestAsCorpusRebuildStats(t *testing.T) {
	_, docs := corpusFixtureDocs(t, 1)
	db, err := fromDocument(docs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	c := db.AsCorpus("solo")

	query := func() {
		t.Helper()
		res, err := c.Query(`//article//author`, MethodDPP)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count == 0 {
			t.Fatal("rebuilt corpus lost its matches")
		}
	}
	c.RebuildStats()
	c.RebuildStats()
	query()

	// Concurrent rebuilds through both handles interleave setStats calls on
	// the one shared service; every interleaving must stay panic-free and
	// leave usable statistics.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if i%2 == 0 {
					c.RebuildStats()
				} else {
					db.RebuildStats()
				}
			}
		}(i)
	}
	wg.Wait()
	c.RebuildStats()
	query()
	if res, err := db.Query(`//article//author`, MethodDPP); err != nil || len(res.Matches) == 0 {
		t.Fatalf("database view after rebuild storm: res=%v err=%v", res, err)
	}
}

// TestCorpusReplicaDiskPaths checks that every replica of a disk-backed
// shard gets its own image file: replica 0 keeps the PR 7 layout, extra
// replicas get a .rN suffix.
func TestCorpusReplicaDiskPaths(t *testing.T) {
	ids, docs := corpusFixtureDocs(t, 2)
	dir := t.TempDir()
	c := buildTestCorpus(t, ids, docs, &CorpusOptions{
		Shards:           1,
		ReplicasPerShard: 2,
		Options:          Options{DiskPath: dir + "/corpus.img"},
	})
	pat := MustParsePattern(`//article//author`)
	want := standaloneResults(t, ids, docs, pat)
	res, err := c.Query(`//article//author`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCorpusMatches(res.Matches, want) {
		t.Fatal("disk-backed replica corpus result differs")
	}
	for _, p := range []string{dir + "/corpus.img.shard-000", dir + "/corpus.img.shard-000.r1"} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("replica image %s missing: %v", p, err)
		}
	}
}
