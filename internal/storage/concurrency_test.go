package storage

import (
	"sync"
	"testing"

	"sjos/internal/xmltree"
)

// TestBufferPoolConcurrentReaders hammers the pool from many goroutines;
// run with -race to validate the locking discipline.
func TestBufferPoolConcurrentReaders(t *testing.T) {
	f := NewMemFile()
	const pages = 32
	for i := 0; i < pages; i++ {
		var p Page
		p[PageHeaderSize] = byte(i)
		SealPage(PageID(i), &p)
		if err := f.WritePage(PageID(i), &p); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(f, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				id := PageID((i*7 + g*13) % pages)
				pg, err := bp.Get(id)
				if err != nil {
					errs <- err
					return
				}
				if pg[PageHeaderSize] != byte(id) {
					t.Errorf("page %d content %d", id, pg[PageHeaderSize])
				}
				bp.Unpin(id, false)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		// ErrPoolFull is possible if all 8 frames are momentarily
		// pinned by the 8 goroutines plus a loser in the race; the
		// pool reports it rather than deadlocking, which is the
		// documented contract.
		if err != ErrPoolFull {
			t.Fatal(err)
		}
	}
	st := bp.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no traffic recorded")
	}
}

// TestStoreConcurrentScans runs tag scans from multiple goroutines over one
// shared store.
func TestStoreConcurrentScans(t *testing.T) {
	doc := buildDoc(t, 5000)
	st, err := BuildStore(doc, 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tag := xmlTagForTest(doc, g%doc.NumTags())
			want := doc.TagCount(tag)
			sc := st.ScanTag(tag)
			n := 0
			for {
				_, _, ok, err := sc.Next()
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if !ok {
					break
				}
				n++
			}
			if n != want {
				t.Errorf("goroutine %d: scanned %d, want %d", g, n, want)
			}
		}(g)
	}
	wg.Wait()
}

// xmlTagForTest returns the i-th TagID of the document.
func xmlTagForTest(_ *xmltree.Document, i int) xmltree.TagID {
	return xmltree.TagID(i)
}
