package storage

import (
	"context"
	"encoding/binary"
	"fmt"

	"sjos/internal/xmltree"
)

// NodeRecord is the fixed-width on-page representation of an element node:
// the region encoding plus tag and parent link. Text values stay in the
// in-memory Document; structural join processing never touches them.
type NodeRecord struct {
	Start  xmltree.Pos
	End    xmltree.Pos
	Level  uint16
	Tag    xmltree.TagID
	Parent xmltree.NodeID
}

// nodeRecSize is the serialised size of a NodeRecord.
const nodeRecSize = 4 + 4 + 2 + 4 + 4

// nodesPerPage is how many NodeRecords fit in one page's payload (the first
// PageHeaderSize bytes hold the integrity header).
const nodesPerPage = PayloadSize / nodeRecSize

// postingSize is the serialised size of one tag-index posting (a NodeID).
const postingSize = 4

// postingsPerPage is how many postings fit in one page's payload.
const postingsPerPage = PayloadSize / postingSize

// Store is the paged element store plus tag index for one document: the
// stand-in for Timber's SHORE-backed element storage. All page access goes
// through a BufferPool so experiments observe hit/miss behaviour.
type Store struct {
	doc  *storeMeta
	file PageFile
	pool *BufferPool

	nodePages int // node records occupy pages [0, nodePages)
	tagDir    []tagRun
}

// storeMeta holds the document-level metadata the store needs after build.
type storeMeta struct {
	NumNodes int
	NumTags  int
	Tags     []string
}

// tagRun locates one tag's postings inside the postings segment.
type tagRun struct {
	firstPage PageID // page holding the first posting
	offset    int    // posting index within firstPage
	count     int
}

// BuildStore serialises doc into a fresh MemFile and returns a Store reading
// through a buffer pool with the given number of frames (DefaultPoolFrames
// if <= 0).
func BuildStore(doc *xmltree.Document, poolFrames int) (*Store, error) {
	return BuildStoreOn(NewMemFile(), doc, poolFrames)
}

// BuildStoreOn serialises doc into the given (empty) page file — e.g. a
// DiskFile for a persistent database image — and returns a Store reading
// through a buffer pool with the given number of frames.
func BuildStoreOn(file PageFile, doc *xmltree.Document, poolFrames int) (*Store, error) {
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("storage: BuildStoreOn needs an empty file, got %d pages", file.NumPages())
	}
	n := doc.NumNodes()

	// Node segment.
	var page Page
	nodePages := (n + nodesPerPage - 1) / nodesPerPage
	for p := 0; p < nodePages; p++ {
		for i := 0; i < nodesPerPage; i++ {
			id := p*nodesPerPage + i
			if id >= n {
				break
			}
			encodeNode(page[PageHeaderSize+i*nodeRecSize:], doc, xmltree.NodeID(id))
		}
		SealPage(PageID(p), &page)
		if err := file.WritePage(PageID(p), &page); err != nil {
			return nil, fmt.Errorf("storage: build node segment: %w", err)
		}
		page = Page{}
	}

	// Postings segment: all tags' postings concatenated.
	dir := make([]tagRun, doc.NumTags())
	cur := PageID(nodePages)
	inPage := 0
	for t := 0; t < doc.NumTags(); t++ {
		nodes := doc.NodesWithTag(xmltree.TagID(t))
		dir[t] = tagRun{
			firstPage: cur,
			offset:    inPage,
			count:     len(nodes),
		}
		for _, nd := range nodes {
			binary.LittleEndian.PutUint32(page[PageHeaderSize+inPage*postingSize:], uint32(nd))
			inPage++
			if inPage == postingsPerPage {
				SealPage(cur, &page)
				if err := file.WritePage(cur, &page); err != nil {
					return nil, fmt.Errorf("storage: build postings: %w", err)
				}
				page = Page{}
				cur++
				inPage = 0
			}
		}
	}
	if inPage > 0 {
		SealPage(cur, &page)
		if err := file.WritePage(cur, &page); err != nil {
			return nil, fmt.Errorf("storage: build postings: %w", err)
		}
	}

	tags := make([]string, doc.NumTags())
	for t := range tags {
		tags[t] = doc.TagName(xmltree.TagID(t))
	}
	return &Store{
		doc:       &storeMeta{NumNodes: n, NumTags: doc.NumTags(), Tags: tags},
		file:      file,
		pool:      NewBufferPool(file, poolFrames),
		nodePages: nodePages,
		tagDir:    dir,
	}, nil
}

func encodeNode(b []byte, doc *xmltree.Document, id xmltree.NodeID) {
	binary.LittleEndian.PutUint32(b[0:], uint32(doc.Start(id)))
	binary.LittleEndian.PutUint32(b[4:], uint32(doc.End(id)))
	binary.LittleEndian.PutUint16(b[8:], doc.Level(id))
	binary.LittleEndian.PutUint32(b[10:], uint32(doc.Tag(id)))
	binary.LittleEndian.PutUint32(b[14:], uint32(doc.Parent(id)))
}

func decodeNode(b []byte) NodeRecord {
	return NodeRecord{
		Start:  xmltree.Pos(binary.LittleEndian.Uint32(b[0:])),
		End:    xmltree.Pos(binary.LittleEndian.Uint32(b[4:])),
		Level:  binary.LittleEndian.Uint16(b[8:]),
		Tag:    xmltree.TagID(binary.LittleEndian.Uint32(b[10:])),
		Parent: xmltree.NodeID(binary.LittleEndian.Uint32(b[14:])),
	}
}

// NumNodes returns the number of stored element nodes.
func (s *Store) NumNodes() int { return s.doc.NumNodes }

// Pool returns the store's buffer pool (for stats and tests).
func (s *Store) Pool() *BufferPool { return s.pool }

// PoolStats returns a snapshot of the store's buffer pool counters — the
// page-cache hit/miss behaviour of everything executed against this store,
// including concurrent partition-parallel scans (the pool counts under its
// own lock).
func (s *Store) PoolStats() PoolStats { return s.pool.Stats() }

// File returns the underlying page file (for stats and tests).
func (s *Store) File() PageFile { return s.file }

// TagCount returns the number of postings for tag t — the |candidates|
// statistic the optimizer's cost model consumes.
func (s *Store) TagCount(t xmltree.TagID) int {
	if int(t) >= len(s.tagDir) {
		return 0
	}
	return s.tagDir[t].count
}

// Node fetches one node record through the buffer pool.
func (s *Store) Node(id xmltree.NodeID) (NodeRecord, error) {
	return s.NodeCtx(context.Background(), id)
}

// NodeCtx is Node under a context: cancellation aborts page-read waits
// (including the pool's retry backoffs).
func (s *Store) NodeCtx(ctx context.Context, id xmltree.NodeID) (NodeRecord, error) {
	p := PageID(int(id) / nodesPerPage)
	off := PageHeaderSize + (int(id)%nodesPerPage)*nodeRecSize
	pg, err := s.pool.GetCtx(ctx, p)
	if err != nil {
		return NodeRecord{}, err
	}
	rec := decodeNode(pg[off:])
	s.pool.Unpin(p, false)
	return rec, nil
}

// TagScanner iterates one tag's postings in document order, fetching node
// records through the buffer pool. It is the physical realisation of the
// paper's "index access" leaf operator. A scanner opened with ScanTagRange
// is additionally restricted to nodes whose Start position lies inside a
// half-open range — the partition-parallel executor's leaf access path.
type TagScanner struct {
	store *Store
	ctx   context.Context
	run   tagRun
	i     int // postings consumed

	// Range restriction (ScanTagRange only).
	bounded bool
	lo, hi  xmltree.Pos
	seeked  bool // initial binary search for lo performed
}

// ScanTag opens a scanner over tag t's postings.
func (s *Store) ScanTag(t xmltree.TagID) *TagScanner {
	return s.ScanTagCtx(context.Background(), t)
}

// ScanTagCtx is ScanTag under a context: the scanner's page reads — and any
// retry backoffs inside them — abort when ctx is cancelled.
func (s *Store) ScanTagCtx(ctx context.Context, t xmltree.TagID) *TagScanner {
	if ctx == nil {
		ctx = context.Background()
	}
	var run tagRun
	if int(t) < len(s.tagDir) {
		run = s.tagDir[t]
	}
	return &TagScanner{store: s, ctx: ctx, run: run}
}

// ScanTagRange opens a scanner over the subset of tag t's postings whose
// Start position lies in [lo, hi). The scanner seeks to the first in-range
// posting with a binary search over the postings segment (postings are in
// document order, and document order is Start order) on the first Next
// call, so a partition pays O(log n) page reads instead of skipping every
// earlier posting.
func (s *Store) ScanTagRange(t xmltree.TagID, lo, hi xmltree.Pos) *TagScanner {
	return s.ScanTagRangeCtx(context.Background(), t, lo, hi)
}

// ScanTagRangeCtx is ScanTagRange under a context (see ScanTagCtx).
func (s *Store) ScanTagRangeCtx(ctx context.Context, t xmltree.TagID, lo, hi xmltree.Pos) *TagScanner {
	sc := s.ScanTagCtx(ctx, t)
	sc.bounded, sc.lo, sc.hi = true, lo, hi
	return sc
}

// posting reads the i-th posting of the scanner's tag.
func (sc *TagScanner) posting(i int) (xmltree.NodeID, error) {
	global := sc.run.offset + i
	p := sc.run.firstPage + PageID(global/postingsPerPage)
	off := PageHeaderSize + (global%postingsPerPage)*postingSize
	pg, err := sc.store.pool.GetCtx(sc.ctx, p)
	if err != nil {
		return 0, err
	}
	id := xmltree.NodeID(binary.LittleEndian.Uint32(pg[off:]))
	sc.store.pool.Unpin(p, false)
	return id, nil
}

// seek positions the scanner on the first posting with Start >= lo.
func (sc *TagScanner) seek() error {
	sc.seeked = true
	return sc.advanceTo(sc.lo)
}

// advanceTo binary-searches the unread postings [sc.i, count) for the first
// one with Start >= pos and moves the cursor there. Postings are in document
// order, and document order is Start order, so the search costs O(log n)
// positioned page reads through the buffer pool.
func (sc *TagScanner) advanceTo(pos xmltree.Pos) error {
	lo, hi := sc.i, sc.run.count
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		id, err := sc.posting(mid)
		if err != nil {
			return err
		}
		rec, err := sc.store.NodeCtx(sc.ctx, id)
		if err != nil {
			return err
		}
		if rec.Start < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	sc.i = lo
	return nil
}

// SeekGE skips the scanner forward to the first unread posting whose Start
// position is >= pos, bypassing every posting in between without reading it
// sequentially — the index skip-ahead behind the executor's Seeker
// interface. Seeks only move forward: a pos at or before the current
// position is a no-op. It returns how many postings were skipped. For a
// bounded scanner the pending initial seek to the range's Lo runs first, so
// SeekGE never escapes the range's lower bound.
func (sc *TagScanner) SeekGE(pos xmltree.Pos) (int, error) {
	if sc.bounded && !sc.seeked {
		if err := sc.seek(); err != nil {
			return 0, err
		}
	}
	before := sc.i
	if err := sc.advanceTo(pos); err != nil {
		return 0, err
	}
	return sc.i - before, nil
}

// Next returns the next (NodeID, NodeRecord) for the tag. ok is false when
// the postings (or, for a bounded scanner, the in-range postings) are
// exhausted.
func (sc *TagScanner) Next() (xmltree.NodeID, NodeRecord, bool, error) {
	if sc.bounded && !sc.seeked {
		if err := sc.seek(); err != nil {
			return 0, NodeRecord{}, false, err
		}
	}
	if sc.i >= sc.run.count {
		return 0, NodeRecord{}, false, nil
	}
	id, err := sc.posting(sc.i)
	if err != nil {
		return 0, NodeRecord{}, false, err
	}
	rec, err := sc.store.NodeCtx(sc.ctx, id)
	if err != nil {
		return 0, NodeRecord{}, false, err
	}
	if sc.bounded && rec.Start >= sc.hi {
		sc.i = sc.run.count // range exhausted: park at end
		return 0, NodeRecord{}, false, nil
	}
	sc.i++
	return id, rec, true, nil
}

// NextBlock fills ids with the next postings of the tag, returning how many
// were produced (0 at end of stream). It is the batched counterpart of Next:
// each postings page is pinned once per block rather than once per posting,
// and an unbounded scanner fetches no node records at all — the executor
// resolves positions through the in-memory document. A bounded scanner
// still checks each posting's Start against the range end, reading the node
// records with one pin per node page instead of one per posting.
func (sc *TagScanner) NextBlock(ids []xmltree.NodeID) (int, error) {
	if sc.bounded && !sc.seeked {
		if err := sc.seek(); err != nil {
			return 0, err
		}
	}
	n := 0
	for n < len(ids) && sc.i < sc.run.count {
		global := sc.run.offset + sc.i
		p := sc.run.firstPage + PageID(global/postingsPerPage)
		off := global % postingsPerPage
		avail := postingsPerPage - off // postings left on this page
		if rem := sc.run.count - sc.i; avail > rem {
			avail = rem
		}
		if want := len(ids) - n; avail > want {
			avail = want
		}
		pg, err := sc.store.pool.GetCtx(sc.ctx, p)
		if err != nil {
			return n, err
		}
		for k := 0; k < avail; k++ {
			ids[n+k] = xmltree.NodeID(binary.LittleEndian.Uint32(pg[PageHeaderSize+(off+k)*postingSize:]))
		}
		sc.store.pool.Unpin(p, false)
		if sc.bounded {
			kept, err := sc.clipAtRangeEnd(ids[n : n+avail])
			if err != nil {
				return n, err
			}
			n += kept
			sc.i += kept
			if kept < avail {
				sc.i = sc.run.count // range exhausted: park at end
				return n, nil
			}
			continue
		}
		n += avail
		sc.i += avail
	}
	return n, nil
}

// clipAtRangeEnd returns how many leading ids (in document order) still have
// Start < the range end, reading node records with one pin per node page.
func (sc *TagScanner) clipAtRangeEnd(ids []xmltree.NodeID) (int, error) {
	var (
		pg      *Page
		curPage PageID
	)
	defer func() {
		if pg != nil {
			sc.store.pool.Unpin(curPage, false)
		}
	}()
	for k, id := range ids {
		p := PageID(int(id) / nodesPerPage)
		if pg == nil || p != curPage {
			if pg != nil {
				sc.store.pool.Unpin(curPage, false)
				pg = nil
			}
			var err error
			pg, err = sc.store.pool.GetCtx(sc.ctx, p)
			if err != nil {
				return 0, err
			}
			curPage = p
		}
		off := PageHeaderSize + (int(id)%nodesPerPage)*nodeRecSize
		if start := xmltree.Pos(binary.LittleEndian.Uint32(pg[off:])); start >= sc.hi {
			return k, nil
		}
	}
	return len(ids), nil
}

// Remaining returns how many postings are left to scan. For a bounded
// scanner this is an upper bound: the tail beyond the range's end is
// included until the scanner reaches it.
func (sc *TagScanner) Remaining() int { return sc.run.count - sc.i }
