package replica

import (
	"sync"
	"testing"
	"time"
)

func TestTrackerTransitions(t *testing.T) {
	tr := NewTracker(Config{SuspectAfter: 2, ProbationAfter: 4, ProbeInterval: time.Hour})
	if tr.State() != Healthy {
		t.Fatalf("new tracker state = %v, want healthy", tr.State())
	}
	tr.RecordFailure()
	if tr.State() != Healthy {
		t.Fatalf("after 1 failure: %v, want healthy", tr.State())
	}
	tr.RecordFailure()
	if tr.State() != Suspect {
		t.Fatalf("after 2 failures: %v, want suspect", tr.State())
	}
	tr.RecordFailure()
	tr.RecordFailure()
	if tr.State() != Probation {
		t.Fatalf("after 4 failures: %v, want probation", tr.State())
	}
	// Any success snaps back to Healthy and resets the run.
	tr.RecordSuccess()
	if tr.State() != Healthy {
		t.Fatalf("after success: %v, want healthy", tr.State())
	}
	s := tr.Snapshot()
	if s.ConsecutiveFailures != 0 || s.Failures != 4 || s.Successes != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestTrackerHalfOpenProbe(t *testing.T) {
	tr := NewTracker(Config{SuspectAfter: 1, ProbationAfter: 1, ProbeInterval: time.Minute})
	now := time.Now()
	if tr.AllowProbe(now) {
		t.Fatal("healthy replica granted a probe")
	}
	tr.RecordFailure()
	if tr.State() != Probation {
		t.Fatalf("state = %v, want probation", tr.State())
	}
	if !tr.AllowProbe(now) {
		t.Fatal("first probe denied")
	}
	if tr.AllowProbe(now.Add(30 * time.Second)) {
		t.Fatal("second probe granted inside the interval")
	}
	if !tr.AllowProbe(now.Add(2 * time.Minute)) {
		t.Fatal("probe denied after the interval elapsed")
	}
}

func TestTrackerDefaultsAndConcurrency(t *testing.T) {
	tr := NewTracker(Config{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if (i+j)%3 == 0 {
					tr.RecordSuccess()
				} else {
					tr.RecordFailure()
				}
				tr.State()
				tr.AllowProbe(time.Now())
			}
		}(i)
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.Failures+s.Successes != 800 {
		t.Fatalf("lost events: %+v", s)
	}
}

func TestLatencyQuantile(t *testing.T) {
	var l Latency
	if l.Quantile(0.95) != 0 {
		t.Fatal("empty tracker reported a quantile")
	}
	// 90 fast observations, 10 slow ones: p50 stays fast, p95+ sees slow.
	for i := 0; i < 90; i++ {
		l.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		l.Observe(40 * time.Millisecond)
	}
	if p50 := l.Quantile(0.50); p50 > time.Millisecond {
		t.Fatalf("p50 = %v, want fast-bucket bound", p50)
	}
	if p99 := l.Quantile(0.99); p99 < 40*time.Millisecond {
		t.Fatalf("p99 = %v, want >= 40ms", p99)
	}
}
