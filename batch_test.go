package sjos

import (
	"math/rand"
	"testing"
)

// TestBatchedTupleDifferential is the acceptance differential for the
// batched executor: for every optimizer's chosen plan, the batched path
// (the default), the tuple-at-a-time path (NoBatch) and the
// partition-parallel variants of both must produce identical match
// multisets and counts on random documents and patterns.
func TestBatchedTupleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	tags := []string{"a", "b", "c", "d"}
	methods := []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy}
	lanes := []struct {
		name string
		opts RunOptions
	}{
		{"batched", RunOptions{}},
		{"tuple", RunOptions{ExecOptions: ExecOptions{NoBatch: true}}},
		{"batched-parallel", RunOptions{Workers: 3}},
		{"tuple-parallel", RunOptions{ExecOptions: ExecOptions{NoBatch: true}, Workers: 3}},
	}
	for trial := 0; trial < 8; trial++ {
		doc := randomXML(rng, 40+rng.Intn(300), tags)
		db, err := LoadXMLString(doc, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 4; q++ {
			pat := randomTwig(rng, tags, 2+rng.Intn(4))
			for _, m := range methods {
				res, err := db.Optimize(pat, m, 0)
				if err != nil {
					t.Fatalf("trial %d %v on %s: %v", trial, m, pat, err)
				}
				var want []string
				for _, lane := range lanes {
					r, err := db.Run(nil, pat, res.Plan, lane.opts)
					if err != nil {
						t.Fatalf("trial %d %v %s on %s: %v", trial, m, lane.name, pat, err)
					}
					got := canonicalize(r.Matches)
					if lane.name == "batched" {
						want = got
						continue
					}
					if !equalStrings(got, want) {
						t.Fatalf("trial %d: %v %s disagrees with batched on %s: %d vs %d matches",
							trial, m, lane.name, pat, len(got), len(want))
					}
					// CountOnly must agree without materialising.
					rc, err := db.Run(nil, pat, res.Plan, RunOptions{ExecOptions: ExecOptions{NoBatch: lane.opts.NoBatch}, CountOnly: true, Workers: lane.opts.Workers})
					if err != nil {
						t.Fatalf("trial %d %v %s count on %s: %v", trial, m, lane.name, pat, err)
					}
					if rc.Count != len(want) {
						t.Fatalf("trial %d: %v %s CountOnly = %d, want %d",
							trial, m, lane.name, rc.Count, len(want))
					}
				}
			}
		}
	}
}

// TestBatchedLimitAndStats checks the Limit run mode under batching and
// that the batched path reports its root batches through RunResult.Stats.
func TestBatchedLimitAndStats(t *testing.T) {
	db, err := GenerateDataset("pers", 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat := MustParsePattern("//manager//employee/name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := db.Run(nil, pat, res.Plan, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Batches == 0 {
		t.Error("batched run reported zero root batches")
	}
	nb, err := db.Run(nil, pat, res.Plan, RunOptions{ExecOptions: ExecOptions{NoBatch: true}})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Stats.Batches != 0 {
		t.Errorf("tuple run reported %d batches", nb.Stats.Batches)
	}
	if full.Count < 3 {
		t.Fatalf("fixture too small: %d matches", full.Count)
	}
	for _, lim := range []int{1, 2, full.Count + 10} {
		for _, noBatch := range []bool{false, true} {
			r, err := db.Run(nil, pat, res.Plan, RunOptions{ExecOptions: ExecOptions{Limit: lim, NoBatch: noBatch}})
			if err != nil {
				t.Fatal(err)
			}
			want := lim
			if want > full.Count {
				want = full.Count
			}
			if r.Count != want {
				t.Fatalf("limit %d nobatch=%v: got %d matches, want %d", lim, noBatch, r.Count, want)
			}
		}
	}
}

// TestBatchedTraceReportsBatches checks traced batched execution populates
// the per-operator batch counters in the trace.
func TestBatchedTraceReportsBatches(t *testing.T) {
	db, err := GenerateDataset("pers", 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat := MustParsePattern("//manager//employee/name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.Run(nil, pat, res.Plan, RunOptions{ExecOptions: ExecOptions{Trace: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Trace == nil {
		t.Fatal("Trace requested but not returned")
	}
	var walk func(*OpTrace) (int64, int64)
	walk = func(tr *OpTrace) (batches, rows int64) {
		batches, rows = tr.Batches, tr.Rows
		for _, c := range tr.Children {
			b, rw := walk(c)
			batches += b
			rows += rw
		}
		return
	}
	batches, rows := walk(r.Trace)
	if batches == 0 {
		t.Error("traced batched run recorded no batches in the operator trace")
	}
	if rows == 0 {
		t.Error("traced batched run recorded no rows")
	}
	tuple, err := db.Run(nil, pat, res.Plan, RunOptions{ExecOptions: ExecOptions{Trace: true, NoBatch: true}})
	if err != nil {
		t.Fatal(err)
	}
	if tuple.Count != r.Count {
		t.Fatalf("traced lanes disagree: batched %d, tuple %d", r.Count, tuple.Count)
	}
}

// TestMetricsCountBatches checks executions fold their batch and skip
// counters into the process metrics registry.
func TestMetricsCountBatches(t *testing.T) {
	db, err := GenerateDataset("pers", 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("//manager//employee/name", MethodDPP); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().Query.Batches; got == 0 {
		t.Error("metrics snapshot reports zero exec batches after a batched query")
	}
}
