package core

import (
	"context"

	"sjos/internal/cost"
	"sjos/internal/pattern"
	"sjos/internal/plan"
)

// FP optimizes pat with the Fully-Pipelined algorithm (§3.4): only plans
// with no sort operators anywhere are considered. Theorem 3.1 guarantees
// such plans exist producing output ordered by any pattern node, so FP
// always succeeds; it returns the cheapest non-blocking plan. When the
// query names an OrderBy node, only plans ordered by it are considered,
// which shrinks the search further.
//
// The algorithm "picks the pattern up" at each candidate output node N,
// making N the root; the best pipelined plan for each re-rooted subtree is
// computed recursively (memoised per directed edge), and the order in which
// the child subtrees join with N is chosen by enumerating permutations.
func FP(pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	return fp(context.Background(), pat, est, model)
}

// fp is FP with cancellation: the subtree recursion polls ctx, and a
// cancelled search returns ctx's error instead of a plan.
func fp(ctx context.Context, pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := newSpace(pat, est, model)
	if sp.numEdges == 0 {
		return sp.singleNode("FP"), nil
	}
	f := &fpSearch{sp: sp, memo: make(map[[2]int]*fpPlan), ctx: ctx}
	var best *fpPlan
	if r := pat.OrderBy; r != pattern.NoNode {
		best = f.subtree(r, pattern.NoNode)
	} else {
		for r := 0; r < pat.N(); r++ {
			cand := f.subtree(r, pattern.NoNode)
			if best == nil || cand.cost < best.cost {
				best = cand
			}
		}
	}
	if f.cancelled {
		return nil, ctx.Err()
	}
	return &Result{
		Plan:      best.node,
		Cost:      best.cost,
		Algorithm: "FP",
		Counters:  f.counters,
	}, nil
}

// fpPlan is a memoised sub-result: the best fully-pipelined plan for one
// directed subtree, with its output ordered by the subtree root.
type fpPlan struct {
	node *plan.Node
	cost float64 // cumulative: index accesses + joins of the subtree
	mask uint64  // pattern nodes covered
}

type fpSearch struct {
	sp       *space
	memo     map[[2]int]*fpPlan // (root, excludedNeighbor) -> best plan
	counters Counters

	ctx       context.Context
	calls     int  // subtree invocations, for periodic ctx polling
	cancelled bool // once set, the search short-circuits to stub plans
}

// subtree returns the best pipelined plan for the sub-pattern reachable
// from v without crossing the neighbor `from` (pattern.NoNode for the whole
// pattern), producing output ordered by v.
func (f *fpSearch) subtree(v, from int) *fpPlan {
	if !f.cancelled {
		f.calls++
		if f.calls%ctxCheckInterval == 0 && f.ctx.Err() != nil {
			f.cancelled = true
		}
	}
	if f.cancelled {
		// Unwind with an unmemoised stub; fp discards it and returns the
		// context's error.
		return &fpPlan{node: plan.NewIndexScan(v), mask: 1 << uint(v)}
	}
	key := [2]int{v, from}
	if p, ok := f.memo[key]; ok {
		return p
	}
	sp := f.sp
	leaf := plan.NewIndexScan(v)
	leaf.EstCard = sp.est.NodeCard(v)
	leaf.EstCost = sp.model.IndexAccess(leaf.EstCard)

	var kids []int
	for _, nb := range sp.pat.Neighbors(v) {
		if nb != from {
			kids = append(kids, nb)
		}
	}
	if len(kids) == 0 {
		p := &fpPlan{node: leaf, cost: leaf.EstCost, mask: 1 << uint(v)}
		f.memo[key] = p
		f.counters.StatusesGenerated++
		return p
	}
	subs := make([]*fpPlan, len(kids))
	for i, c := range kids {
		subs[i] = f.subtree(c, v)
	}
	var best *fpPlan
	permute(len(kids), func(order []int) {
		f.counters.PlansConsidered++
		acc := leaf
		accMask := uint64(1) << uint(v)
		total := leaf.EstCost
		for _, idx := range order {
			c := kids[idx]
			sub := subs[idx]
			total += sub.cost
			var j *plan.Node
			var joinCost float64
			cardAB := sp.est.ClusterCard(accMask | sub.mask)
			if e, _ := sp.pat.EdgeBetween(v, c); sp.pat.Parent[e] == v {
				// v is the ancestor: Anc keeps the result ordered by v.
				joinCost = sp.model.StackTreeAnc(
					sp.est.ClusterCard(accMask), sp.est.ClusterCard(sub.mask), cardAB)
				j = plan.NewJoin(acc, sub.node, v, c, sp.pat.Axis[e], plan.AlgoAnc)
			} else {
				// c is the ancestor: Desc output is ordered by the
				// descendant v.
				joinCost = sp.model.StackTreeDesc(
					sp.est.ClusterCard(sub.mask), sp.est.ClusterCard(accMask), cardAB)
				j = plan.NewJoin(sub.node, acc, c, v, sp.pat.Axis[v], plan.AlgoDesc)
			}
			total += joinCost
			accMask |= sub.mask
			j.EstCard = sp.est.ClusterCard(accMask)
			j.EstCost = total
			acc = j
		}
		if best == nil || total < best.cost {
			best = &fpPlan{node: acc, cost: total, mask: accMask}
		}
	})
	f.counters.StatusesGenerated++
	f.counters.StatusesExpanded++
	f.memo[key] = best
	return best
}

// permute enumerates all permutations of 0..n-1 (Heap's algorithm),
// invoking yield with each ordering. The slice passed to yield is reused.
func permute(n int, yield func([]int)) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			yield(idx)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				idx[i], idx[k-1] = idx[k-1], idx[i]
			} else {
				idx[0], idx[k-1] = idx[k-1], idx[0]
			}
		}
	}
	rec(n)
}
