// Package shardring implements a consistent-hash ring for assigning
// document IDs to corpus shards.
//
// Each shard contributes a fixed number of virtual points to a 64-bit hash
// circle; a key is owned by the shard of the first point at or after the
// key's hash. Consistent hashing keeps assignments stable under resharding:
// growing an S-shard ring to S+1 shards moves only ~1/(S+1) of the keys,
// because the new shard's points claim arcs from every existing shard
// instead of renumbering the whole key space (the property RadegastXDB-style
// multi-document stores rely on for incremental rebalancing).
package shardring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the default number of virtual points per shard. A few
// hundred points per shard keep the maximum/mean shard load within tens of
// percent for realistic corpus sizes while the ring stays a few KB.
const DefaultReplicas = 256

// Ring is an immutable consistent-hash ring over a fixed shard count. It is
// safe for concurrent use.
type Ring struct {
	shards   int
	replicas int
	hashes   []uint64 // sorted virtual points
	owner    []int    // owner[i] = shard owning hashes[i]
}

// New builds a ring with the given shard count and virtual points per shard
// (replicas <= 0 selects DefaultReplicas). shards must be >= 1.
func New(shards, replicas int) *Ring {
	if shards < 1 {
		shards = 1
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	type point struct {
		h     uint64
		shard int
	}
	pts := make([]point, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			pts = append(pts, point{h: hash64(fmt.Sprintf("shard-%d#%d", s, r)), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		// Ties (vanishingly rare with 64-bit hashes) break towards the
		// lower shard index so the ring stays deterministic.
		return pts[i].shard < pts[j].shard
	})
	rg := &Ring{
		shards:   shards,
		replicas: replicas,
		hashes:   make([]uint64, len(pts)),
		owner:    make([]int, len(pts)),
	}
	for i, p := range pts {
		rg.hashes[i] = p.h
		rg.owner[i] = p.shard
	}
	return rg
}

// Shards returns the ring's shard count.
func (r *Ring) Shards() int { return r.shards }

// Shard returns the shard owning key: the shard of the first virtual point
// at or after the key's hash, wrapping past the top of the circle.
func (r *Ring) Shard(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[i]
}

// hash64 is FNV-1a finished with a splitmix64 mixer. FNV alone spreads the
// short, similar keys used here ("shard-3#17", "doc-0042") unevenly around
// the circle; the finalizer decorrelates the low and high bits so virtual
// points land uniformly. The assignment only needs an even spread, not
// cryptographic strength.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
