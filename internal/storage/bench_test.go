package storage

import (
	"math/rand"
	"testing"

	"sjos/internal/xmltree"
)

// BenchmarkBufferPoolHit measures the pinned-page fast path.
func BenchmarkBufferPoolHit(b *testing.B) {
	f := NewMemFile()
	var p Page
	if err := f.WritePage(0, &p); err != nil {
		b.Fatal(err)
	}
	bp := NewBufferPool(f, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.Get(0); err != nil {
			b.Fatal(err)
		}
		bp.Unpin(0, false)
	}
}

// BenchmarkBufferPoolMiss measures the eviction path: every Get replaces
// the single frame.
func BenchmarkBufferPoolMiss(b *testing.B) {
	f := NewMemFile()
	var p Page
	for i := 0; i < 2; i++ {
		if err := f.WritePage(PageID(i), &p); err != nil {
			b.Fatal(err)
		}
	}
	bp := NewBufferPool(f, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := PageID(i & 1)
		if _, err := bp.Get(id); err != nil {
			b.Fatal(err)
		}
		bp.Unpin(id, false)
	}
}

// BenchmarkTagScan measures a full index scan through the buffer pool —
// the physical work behind the cost model's f_I factor.
func BenchmarkTagScan(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	doc := xmltree.RandomDocument(rng, 100000, []string{"a", "b", "c"})
	st, err := BuildStore(doc, 0)
	if err != nil {
		b.Fatal(err)
	}
	tag, _ := doc.LookupTag("a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := st.ScanTag(tag)
		for {
			_, _, ok, err := sc.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
}

// BenchmarkBuildStore measures store construction (load-time cost).
func BenchmarkBuildStore(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	doc := xmltree.RandomDocument(rng, 100000, []string{"a", "b", "c"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildStore(doc, 0); err != nil {
			b.Fatal(err)
		}
	}
}
