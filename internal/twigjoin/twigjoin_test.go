package twigjoin

import (
	"math/rand"
	"reflect"
	"testing"

	"sjos/internal/exec"
	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

func canonical(ms []Match) [][]xmltree.NodeID {
	out := make([][]xmltree.NodeID, len(ms))
	for i, m := range ms {
		out[i] = m
	}
	ts := make([]exec.Tuple, len(out))
	for i := range out {
		ts[i] = exec.Tuple(out[i])
	}
	exec.SortCanonical(ts)
	for i := range ts {
		out[i] = ts[i]
	}
	return out
}

func refCanonical(doc *xmltree.Document, pat *pattern.Pattern) [][]xmltree.NodeID {
	ref := exec.ReferenceMatches(doc, pat)
	exec.SortCanonical(ref)
	out := make([][]xmltree.NodeID, len(ref))
	for i := range ref {
		out[i] = ref[i]
	}
	return out
}

func checkAgainstReference(t *testing.T, doc *xmltree.Document, src string) {
	t.Helper()
	pat := pattern.MustParse(src)
	got, stats, err := Run(doc, pat)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	want := refCanonical(doc, pat)
	gotC := canonical(got)
	if len(gotC) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(gotC, want) {
		t.Fatalf("%s: TwigStack found %d matches, reference %d", src, len(gotC), len(want))
	}
	if stats.Matches != len(want) {
		t.Errorf("%s: stats.Matches = %d, want %d", src, stats.Matches, len(want))
	}
}

func TestTwigStackOnPersonnelExample(t *testing.T) {
	doc, err := xmltree.ParseString(`<db>
	  <manager><name>alice</name>
	    <employee><name>bob</name></employee>
	    <manager><name>carol</name>
	      <department><name>tools</name></department>
	      <employee><name>eve</name></employee>
	    </manager>
	  </manager>
	  <manager><name>dan</name><department><name>ops</name></department></manager>
	</db>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		"//manager",
		"//manager//name",
		"//manager/name",
		"//manager//employee/name",
		"//manager[.//employee/name]//department/name",
		"//manager[.//employee/name]//manager/department/name",
		"//db//manager[name][employee]",
		`//name[. = "carol"]`,
	} {
		checkAgainstReference(t, doc, src)
	}
}

func TestTwigStackRandomDocuments(t *testing.T) {
	rng := rand.New(rand.NewSource(2023))
	patterns := []string{
		"//a//b",
		"//a/b",
		"//a[b][c]",
		"//a//b//c",
		"//a[.//b/c]//d",
		"//a[b//d][c]",
	}
	for trial := 0; trial < 60; trial++ {
		doc := xmltree.RandomDocument(rng, 2+rng.Intn(150), []string{"a", "b", "c", "d"})
		for _, src := range patterns {
			checkAgainstReference(t, doc, src)
		}
	}
}

func TestTwigStackEmptyCases(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b/></a>`)
	got, _, err := Run(doc, pattern.MustParse("//a//zz"))
	if err != nil || len(got) != 0 {
		t.Fatalf("unknown tag: got %d matches, err %v", len(got), err)
	}
	got, _, err = Run(doc, pattern.MustParse("//b//a"))
	if err != nil || len(got) != 0 {
		t.Fatalf("impossible pattern: got %d matches, err %v", len(got), err)
	}
}

func TestTwigStackSingleNode(t *testing.T) {
	doc, _ := xmltree.ParseString(`<a><b/><b/></a>`)
	got, _, err := Run(doc, pattern.MustParse("//b"))
	if err != nil || len(got) != 2 {
		t.Fatalf("single node: got %d, err %v", len(got), err)
	}
}

// TestTwigStackSkipsIrrelevantNodes verifies the holistic property the
// algorithm exists for: candidates that cannot participate in any match are
// skipped without being pushed.
func TestTwigStackSkipsIrrelevantNodes(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Open("root", "")
	// 100 a-nodes with no b below them, then one a-b pair.
	for i := 0; i < 100; i++ {
		b.Open("a", "")
		b.Leaf("x", "")
		b.Close()
	}
	b.Open("a", "")
	b.Leaf("b", "")
	b.Close()
	b.Close()
	doc := b.MustFinish()
	pat := pattern.MustParse("//a/b")
	got, stats, err := Run(doc, pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
	if stats.Pushes > 4 {
		t.Errorf("TwigStack pushed %d entries; childless a-nodes should be skipped", stats.Pushes)
	}
}
