// Package sjos is a cost-based structural join order optimizer for XML
// tree-pattern queries — a from-scratch Go reproduction of Wu, Patel and
// Jagadish, "Structural Join Order Selection for XML Query Optimization"
// (ICDE 2003), together with every substrate the paper's system (the Timber
// native XML database) provides underneath it: a region-encoded XML store
// with a paged buffer pool and element-tag indexes, the Stack-Tree
// structural join operators, positional-histogram cardinality estimation,
// and a pipelined executor.
//
// # Quick start
//
//	db, err := sjos.LoadXMLString(`<db><a><b/></a></db>`, nil)
//	if err != nil { ... }
//	res, err := db.Query("//a//b", sjos.MethodDPP)
//	if err != nil { ... }
//	fmt.Println(len(res.Matches), "matches via plan:\n", res.PlanText)
//
// # Corpora
//
// Multi-document workloads use the Corpus, the collection-first entry
// point: documents are distributed over shards by consistent hashing of
// their IDs, each shard stores its members as one merged forest over the
// same paged store, and queries are planned once against corpus-wide
// merged statistics, executed on every shard, and gathered in document
// order with document-local node IDs:
//
//	b := sjos.NewCorpusBuilder(&sjos.CorpusOptions{Shards: 4})
//	b.AddXMLString("inventory", `<db><a><b/></a></db>`)
//	b.AddXMLString("archive", `<db><a><b/><b/></a></db>`)
//	c, err := b.Build()
//	if err != nil { ... }
//	res, err := c.Query("//a//b", sjos.MethodDPP)
//	for _, m := range res.Matches { fmt.Println(m.DocID, m.Nodes) }
//
// A corpus answers exactly as the concatenation of standalone
// per-document databases; Database.AsCorpus adapts a single document into
// a one-shard corpus sharing its caches.
//
// # The six optimizers
//
// The paper's algorithms — plus a statistics-free extension — are selected
// with a Method:
//
//	MethodDP      exhaustive dynamic programming — optimal, slowest
//	MethodDPP     DP with pruning — optimal, the recommended default
//	MethodDPAPEB  aggressive pruning, per-level expansion bound Te
//	MethodDPAPLD  aggressive pruning, left-deep plans only
//	MethodFP      fully-pipelined (sort-free) plans only — fastest to
//	              optimize, near-optimal plans, first results stream
//	              immediately
//	MethodGreedy  statistics-free greedy construction — no search at
//	              all (~100× cheaper planning than DP), plans within
//	              15% of optimal on the paper's workloads
//
// Per the paper's conclusions: use DPP when query execution time dominates,
// FP when optimization time matters or results should stream; Greedy when
// planning cost itself must be negligible — mis-plans from its heuristics
// are caught by the adaptive feedback loop (ExecOptions.AdaptiveDrift),
// which evicts cached plans whose runtime row counts drift from their
// estimates.
//
// # Pattern syntax
//
// Patterns use a compact XPath-like twig syntax ("//" = ancestor-descendant,
// "/" = parent-child, "[...]" = branch or predicate, "#" marks the node the
// output must be ordered by):
//
//	//manager[.//employee/name]//department/name
//	/dblp/article[author = "author-7"][year >= 1990]/title
//
// See the examples directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package sjos
