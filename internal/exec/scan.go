package exec

import (
	"fmt"

	"sjos/internal/pattern"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// IndexScan retrieves all candidates for one pattern node through the
// element-tag index, in document order, applying the node's value predicate
// (if any) on the fly. It is the paper's "index access" leaf with cost
// f_I · n.
type IndexScan struct {
	node   int // pattern node fed by this scan
	tag    string
	op     pattern.CmpOp
	value  string
	schema *Schema

	ctx  *Context
	scan *storage.TagScanner
	done bool
	rows int              // scan-local row count; drives the interrupt poll stride
	blk  []xmltree.NodeID // posting block for the batched path
}

// NewIndexScan builds a scan for pattern node u of pat.
func NewIndexScan(pat *pattern.Pattern, u int) *IndexScan {
	nd := pat.Nodes[u]
	return &IndexScan{
		node:   u,
		tag:    nd.Tag,
		op:     nd.Op,
		value:  nd.Value,
		schema: NewSchema(u),
	}
}

// Schema implements Operator.
func (s *IndexScan) Schema() *Schema { return s.schema }

// Open implements Operator.
func (s *IndexScan) Open(ctx *Context) error {
	s.ctx = ctx
	tag, ok := ctx.Doc.LookupTag(s.tag)
	if !ok {
		s.done = true // unknown tag: empty candidate stream
		return nil
	}
	if r := ctx.Range; r != nil {
		s.scan = ctx.Store.ScanTagRangeCtx(ctx.Ctx, tag, r.Lo, r.Hi)
	} else {
		s.scan = ctx.Store.ScanTagCtx(ctx.Ctx, tag)
	}
	return nil
}

// Next implements Operator.
func (s *IndexScan) Next() (Tuple, bool, error) {
	if s.done {
		return nil, false, nil
	}
	for {
		id, _, ok, err := s.scan.Next()
		if err != nil {
			return nil, false, fmt.Errorf("exec: index scan of %q: %w", s.tag, err)
		}
		if !ok {
			s.done = true
			return nil, false, nil
		}
		s.ctx.Stats.ScannedTuples++
		s.rows++
		// Poll for cancellation on long scans (every 4096 rows) so a
		// cancelled parallel query stops even inside a selective scan
		// that produces no output for the driver's drain loop to observe.
		// The stride counter is scan-local: the shared ScannedTuples stats
		// counter advances for every scan in the query, so two interleaved
		// scans could keep it permanently misaligned with any one scan's
		// stride.
		if s.ctx.Interrupt != nil && s.rows&0xfff == 0 {
			if err := s.ctx.Interrupt(); err != nil {
				return nil, false, err
			}
		}
		if s.op != pattern.CmpNone &&
			!pattern.EvalPredicate(s.ctx.Doc.Value(id), s.op, s.value) {
			continue
		}
		return Tuple{id}, true, nil
	}
}

// NextBatch implements BatchOperator: postings are pulled a page-sized block
// at a time straight off the index (no per-posting virtual dispatch, and —
// for predicate-free scans — no node-record reads at all), then appended to
// the batch in a tight loop.
func (s *IndexScan) NextBatch(b *Batch) error {
	b.Reset()
	if s.done {
		return nil
	}
	if s.blk == nil {
		s.blk = make([]xmltree.NodeID, BatchRows)
	}
	for !b.Full() {
		if s.ctx.Interrupt != nil {
			if err := s.ctx.Interrupt(); err != nil {
				return err
			}
		}
		n, err := s.scan.NextBlock(s.blk[:BatchRows-b.Len()])
		if err != nil {
			return fmt.Errorf("exec: index scan of %q: %w", s.tag, err)
		}
		if n == 0 {
			s.done = true
			return nil
		}
		s.ctx.Stats.ScannedTuples += n
		if s.op == pattern.CmpNone {
			b.AppendIDs(s.blk[:n])
			continue
		}
		doc := s.ctx.Doc
		for _, id := range s.blk[:n] {
			if pattern.EvalPredicate(doc.Value(id), s.op, s.value) {
				b.AppendID(id)
			}
		}
	}
	return nil
}

// SeekGE implements Seeker: the scan jumps over every posting whose Start
// position is below pos with a binary search in the index instead of
// reading them.
func (s *IndexScan) SeekGE(pos xmltree.Pos) (int, bool, error) {
	if s.done {
		return 0, true, nil
	}
	skipped, err := s.scan.SeekGE(pos)
	if err != nil {
		return 0, false, fmt.Errorf("exec: index scan of %q: %w", s.tag, err)
	}
	s.ctx.Stats.SkippedTuples += skipped
	return skipped, true, nil
}

// Close implements Operator.
func (s *IndexScan) Close() error { return nil }
