// Command xqrun evaluates one tree-pattern query against an XML file (or a
// generated data set) end to end: parse, optimize, explain, execute.
//
// Usage:
//
//	xqrun -xml file.xml -query '//manager//employee/name'
//	xqrun -dataset pers -query '//manager[.//employee/name]//manager/department/name'
//	xqrun -dataset dblp -fold 10 -method FP -query '//article[author]/title' -limit 5
//	xqrun -dataset pers -explain -query '//manager//employee/name'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sjos"
)

func main() {
	xmlPath := flag.String("xml", "", "XML file to load")
	dataset := flag.String("dataset", "", "generated data set: mbench, dblp or pers")
	fold := flag.Int("fold", 1, "folding factor for -dataset")
	query := flag.String("query", "", "tree pattern (XPath-like twig syntax)")
	method := flag.String("method", "DPP", "optimizer: DP, DPP, DPP', DPAP-EB, DPAP-LD, FP")
	limit := flag.Int("limit", 10, "matches to print (0 = count only)")
	explain := flag.Bool("explain", false, "compare all optimizers instead of executing")
	trace := flag.Bool("trace", false, "print the DPP search trace instead of executing")
	parallel := flag.Int("parallel", 0, "partition-parallel workers (0 = serial, -1 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the query after this duration (0 = none)")
	noCache := flag.Bool("nocache", false, "bypass the plan cache")
	noBatch := flag.Bool("nobatch", false, "disable the batched (vectorized) execution path")
	noVidx := flag.Bool("novidx", false, "disable value-index probes (predicated leaves scan+filter)")
	opTrace := flag.Bool("optrace", false, "print the per-operator execution trace")
	flag.Parse()

	if *query == "" || (*xmlPath == "") == (*dataset == "") {
		fmt.Fprintln(os.Stderr, "xqrun: need -query and exactly one of -xml / -dataset")
		flag.Usage()
		os.Exit(2)
	}
	mode := modeRun
	if *explain {
		mode = modeExplain
	}
	if *trace {
		mode = modeTrace
	}
	cfg := runCfg{
		xmlPath: *xmlPath, dataset: *dataset, fold: *fold,
		query: *query, method: *method, limit: *limit,
		mode: mode, parallel: *parallel,
		timeout: *timeout, noCache: *noCache, noBatch: *noBatch, noVidx: *noVidx, opTrace: *opTrace,
	}
	if err := runWith(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "xqrun: %v\n", err)
		os.Exit(1)
	}
}

type mode int

const (
	modeRun mode = iota
	modeExplain
	modeTrace
)

// runCfg bundles one invocation's settings.
type runCfg struct {
	xmlPath, dataset string
	fold             int
	query, method    string
	limit            int
	mode             mode
	parallel         int
	timeout          time.Duration
	noCache          bool
	noBatch          bool
	noVidx           bool
	opTrace          bool
}

// run keeps the original signature for the tests; explain selects
// modeExplain.
func run(xmlPath, dataset string, fold int, query, method string, limit int, explain bool) error {
	m := modeRun
	if explain {
		m = modeExplain
	}
	return runMode(xmlPath, dataset, fold, query, method, limit, m)
}

func runMode(xmlPath, dataset string, fold int, query, method string, limit int, m mode) error {
	return runWith(runCfg{
		xmlPath: xmlPath, dataset: dataset, fold: fold,
		query: query, method: method, limit: limit, mode: m,
	})
}

// runWith loads the database and evaluates the query per cfg: parallel 0
// runs serial, otherwise queries go through db.WithParallelism(parallel);
// a non-zero timeout cancels the optimize and execute phases through the
// query context.
func runWith(cfg runCfg) error {
	var db *sjos.Database
	var err error
	if cfg.xmlPath != "" {
		f, err2 := os.Open(cfg.xmlPath)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		db, err = sjos.LoadXML(f, nil)
	} else {
		db, err = sjos.GenerateDataset(cfg.dataset, 1, cfg.fold, nil)
	}
	if err != nil {
		return err
	}
	if cfg.parallel != 0 {
		db = db.WithParallelism(cfg.parallel)
		fmt.Printf("database: %d element nodes (parallel execution, %d workers)\n",
			db.NumNodes(), db.Parallelism())
	} else {
		fmt.Printf("database: %d element nodes\n", db.NumNodes())
	}

	pat, err := sjos.ParsePattern(cfg.query)
	if err != nil {
		return err
	}
	switch cfg.mode {
	case modeExplain:
		s, err := db.Explain(pat)
		if err != nil {
			return err
		}
		fmt.Print(s)
		return nil
	case modeTrace:
		s, err := db.TraceDPP(pat)
		if err != nil {
			return err
		}
		fmt.Print(s)
		return nil
	}
	meth, err := sjos.ParseMethod(cfg.method)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	res, err := db.QueryPatternContext(ctx, pat,
		sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: meth, NoCache: cfg.noCache, NoBatch: cfg.noBatch, NoValueIndex: cfg.noVidx, Trace: cfg.opTrace}})
	if err != nil {
		return err
	}
	cachedNote := ""
	if res.CachedPlan {
		cachedNote = " [cached plan]"
	}
	fmt.Printf("optimizer %s considered %d plans in %v (estimated cost %.0f)%s\n",
		cfg.method, res.PlansConsidered, res.OptimizeTime, res.EstCost, cachedNote)
	fmt.Println("plan:")
	fmt.Print(indent(res.PlanText))
	if res.Trace != nil {
		fmt.Println("operator trace:")
		fmt.Print(indent(res.Trace.Format()))
	}
	fmt.Printf("%d matches in %v\n", len(res.Matches), res.ExecuteTime)
	for i, match := range res.Matches {
		if cfg.limit >= 0 && i >= cfg.limit {
			fmt.Printf("... and %d more\n", len(res.Matches)-cfg.limit)
			break
		}
		parts := make([]string, len(match))
		for u, id := range match {
			v := db.Value(id)
			if v == "" {
				parts[u] = fmt.Sprintf("%s#%d", db.TagName(id), id)
			} else {
				parts[u] = fmt.Sprintf("%s=%q", db.TagName(id), v)
			}
		}
		fmt.Printf("  (%s)\n", strings.Join(parts, ", "))
	}
	return nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
