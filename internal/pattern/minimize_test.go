package pattern

import "testing"

func TestMinimizeRemovesDuplicateBranch(t *testing.T) {
	p := MustParse("//a[b][b]")
	m, mapping := Minimize(p)
	if m.N() != 2 {
		t.Fatalf("minimized to %d nodes, want 2:\n%s", m.N(), m)
	}
	if mapping[0] != 0 {
		t.Errorf("root remapped to %d", mapping[0])
	}
	// Exactly one of the two b-branches survives.
	removed := 0
	for _, v := range mapping[1:] {
		if v == -1 {
			removed++
		}
	}
	if removed != 1 {
		t.Fatalf("mapping = %v", mapping)
	}
}

func TestMinimizeChildWitnessesDescendant(t *testing.T) {
	// The child-axis b implies the descendant-axis b, not vice versa.
	p := MustParse("//a[.//b][b]")
	m, mapping := Minimize(p)
	if m.N() != 2 {
		t.Fatalf("minimized to %d nodes:\n%s", m.N(), m)
	}
	if m.Axis[1] != Child {
		t.Fatalf("kept the weaker descendant branch: %s", m)
	}
	if mapping[1] != -1 || mapping[2] != 1 {
		t.Fatalf("mapping = %v", mapping)
	}

	// Reversed: the descendant-axis branch cannot witness the child one.
	p2 := MustParse("//a[b][.//c]")
	m2, _ := Minimize(p2)
	if m2.N() != 3 {
		t.Fatalf("independent branches were merged: %s", m2)
	}
}

func TestMinimizeDeepBranch(t *testing.T) {
	// The whole b/c branch duplicates the trunk b/c.
	p := MustParse("//a[b/c]/b/c")
	m, _ := Minimize(p)
	if m.N() != 3 {
		t.Fatalf("minimized to %d nodes:\n%s", m.N(), m)
	}
}

func TestMinimizeRespectsPredicates(t *testing.T) {
	// Different value predicates: not redundant.
	p := MustParse(`//a[b = "1"][b = "2"]`)
	if m, _ := Minimize(p); m.N() != 3 {
		t.Fatalf("predicate branches wrongly merged: %s", m)
	}
	// Unconstrained b is implied by the constrained one.
	p2 := MustParse(`//a[b][b = "2"]`)
	if m2, _ := Minimize(p2); m2.N() != 2 {
		t.Fatalf("unconstrained branch kept: %s", m2)
	}
	// The constrained one is NOT implied by the unconstrained one.
	p3 := MustParse(`//a[b = "2"]`)
	if m3, _ := Minimize(p3); m3.N() != 2 {
		t.Fatalf("constrained branch dropped: %s", m3)
	}
}

func TestMinimizeKeepsOrderByNode(t *testing.T) {
	p := MustParse("//a[b#][b]")
	m, mapping := Minimize(p)
	if m.N() != 2 {
		t.Fatalf("minimized to %d nodes:\n%s", m.N(), m)
	}
	if mapping[1] == -1 {
		t.Fatal("the OrderBy node was removed")
	}
	if m.OrderBy != mapping[1] {
		t.Fatalf("OrderBy remapped to %d, want %d", m.OrderBy, mapping[1])
	}
}

func TestMinimizeIdentityWhenMinimal(t *testing.T) {
	for _, src := range []string{
		"//a",
		"//a/b//c",
		"//a[b][c]",
		"//manager[.//employee/name]//manager/department/name",
	} {
		p := MustParse(src)
		m, mapping := Minimize(p)
		if m != p {
			t.Errorf("%s: already-minimal pattern was copied", src)
		}
		for i, v := range mapping {
			if v != i {
				t.Errorf("%s: identity mapping broken at %d -> %d", src, i, v)
			}
		}
	}
}

func TestMinimizeTransitiveDuplicates(t *testing.T) {
	// Three copies of the same branch collapse to one.
	p := MustParse("//a[b][b][b]")
	m, _ := Minimize(p)
	if m.N() != 2 {
		t.Fatalf("minimized to %d nodes:\n%s", m.N(), m)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
