module sjos

go 1.24
