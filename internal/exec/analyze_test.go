package exec

import (
	"strings"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/plan"
)

func TestAnalyzedExecutionCountsActuals(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	p := plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	p.EstCard = 42 // arbitrary estimate to carry through
	op, analyses, err := BuildAnalyzed(pat, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, doc)
	n, err := Count(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	Finish(analyses)
	if len(analyses) != 3 {
		t.Fatalf("%d analyses, want 3", len(analyses))
	}
	// Root analysis is first (pre-order).
	if analyses[0].Actual != n {
		t.Fatalf("root actual %d, want %d", analyses[0].Actual, n)
	}
	mgr, _ := doc.LookupTag("manager")
	nm, _ := doc.LookupTag("name")
	if analyses[1].Actual != doc.TagCount(mgr) || analyses[2].Actual != doc.TagCount(nm) {
		t.Fatalf("leaf actuals %d/%d, want %d/%d",
			analyses[1].Actual, analyses[2].Actual, doc.TagCount(mgr), doc.TagCount(nm))
	}
	out := FormatAnalysis(pat, p, analyses)
	for _, want := range []string{"est≈42", "actual=", "err="} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatAnalysis missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzedMatchesPlainExecution(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager[.//employee]//name")
	me := plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoAnc)
	men := plan.NewJoin(me, plan.NewIndexScan(2), 0, 2, pattern.Descendant, plan.AlgoAnc)
	plain, err := RunCount(newCtx(t, doc), pat, men)
	if err != nil {
		t.Fatal(err)
	}
	op, analyses, err := BuildAnalyzed(pat, men)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := Count(newCtx(t, doc), op)
	if err != nil {
		t.Fatal(err)
	}
	Finish(analyses)
	if plain != instr {
		t.Fatalf("instrumented count %d, plain %d", instr, plain)
	}
}

func TestBuildAnalyzedRejectsBadPlans(t *testing.T) {
	pat := pattern.MustParse("//a//b")
	if _, _, err := BuildAnalyzed(pat, &plan.Node{Op: plan.Op(99)}); err == nil {
		t.Fatal("unknown operator accepted")
	}
	if _, _, err := BuildAnalyzed(pat, &plan.Node{Op: plan.OpIndexScan, PatternNode: 7}); err == nil {
		t.Fatal("out-of-range scan accepted")
	}
}
