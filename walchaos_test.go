package sjos

import (
	"context"
	"fmt"
	"testing"

	"sjos/internal/faultfs"
	"sjos/internal/storage"
)

// The kill-point chaos matrix: one scripted mutation history is run with a
// crash (or torn write) injected at every write ordinal of the WAL file in
// turn, then recovered from the surviving bytes. The invariant under test
// is the write path's atomicity: whatever the kill point, the recovered
// database equals a state of the committed history — never a torn blend —
// and every optimization method agrees on it in both execution modes.

// chaosScript is the mutation history; chaosStates[i] is the expected state
// after the first i mutations (distinct match counts, so a count identifies
// the state).
var chaosScript = []struct {
	op string
	id string
	n  int
}{
	{"ins", "a", 3}, {"ins", "b", 4}, {"del", "a", 0}, {"ins", "c", 5}, {"rep", "b", 6},
}

var chaosStates = []struct {
	count int
	ids   string
}{
	{0, "[]"},
	{3, "[a]"},
	{7, "[a b]"},
	{4, "[b]"},
	{9, "[b c]"},
	// Replace drops the old member and appends the new one, so b moves to
	// the end of span order.
	{11, "[c b]"},
}

// applyChaosScript runs the script until the first error, returning how
// many mutations reported success.
func applyChaosScript(db *Database) int {
	for i, s := range chaosScript {
		var err error
		switch s.op {
		case "ins":
			err = db.InsertString(s.id, orderXML(s.n))
		case "del":
			err = db.Delete(s.id)
		case "rep":
			err = db.ReplaceString(s.id, orderXML(s.n))
		}
		if err != nil {
			return i
		}
	}
	return len(chaosScript)
}

// chaosStateOf maps an observed match count back to the history state it
// represents (-1: no committed state has this count — a torn blend).
func chaosStateOf(count int) int {
	for i, st := range chaosStates {
		if st.count == count {
			return i
		}
	}
	return -1
}

// verifyChaosState checks the database is exactly chaosStates[want] under
// all five paper methods, each in batched and tuple-at-a-time execution.
func verifyChaosState(t *testing.T, db *Database, want int, label string) {
	t.Helper()
	if got := fmt.Sprint(db.MemberIDs()); got != chaosStates[want].ids {
		t.Fatalf("%s: members %s, want %s", label, got, chaosStates[want].ids)
	}
	for _, m := range []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP} {
		for _, noBatch := range []bool{false, true} {
			res, err := db.QueryContext(context.Background(), "//order//item/name",
				QueryOptions{ExecOptions: ExecOptions{Method: m, NoBatch: noBatch}})
			if err != nil {
				t.Fatalf("%s: %v noBatch=%v: %v", label, m, noBatch, err)
			}
			if len(res.Matches) != chaosStates[want].count {
				t.Fatalf("%s: %v noBatch=%v: %d matches, want %d",
					label, m, noBatch, len(res.Matches), chaosStates[want].count)
			}
		}
	}
}

// chaosWriteBudget measures how many WAL-file writes the full script costs,
// so the matrix can enumerate every ordinal.
func chaosWriteBudget(t *testing.T) int {
	t.Helper()
	ff := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
	db, err := OpenDatabase(&Options{WALFile: ff, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	ff.SetPolicy(faultfs.Policy{}) // reset counters past the bootstrap snapshot
	if n := applyChaosScript(db); n != len(chaosScript) {
		t.Fatalf("fault-free script stopped at %d", n)
	}
	w := int(ff.Stats().Writes)
	if w == 0 {
		t.Fatal("script wrote nothing to the WAL")
	}
	return w
}

// TestWALChaosKillPointMatrix crashes the WAL file after every write
// ordinal in turn: the surviving mutation must report failure (or, when the
// commit record landed before the lost fsync acknowledgement, may have
// committed), and recovery must land exactly on the committed prefix —
// either fully pre- or fully post-commit of the interrupted transaction.
func TestWALChaosKillPointMatrix(t *testing.T) {
	writes := chaosWriteBudget(t)
	t.Logf("script costs %d WAL writes; crashing after each", writes)
	for k := 1; k <= writes; k++ {
		ff := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
		db, err := OpenDatabase(&Options{WALFile: ff, CompactThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		ff.SetPolicy(faultfs.Policy{CrashAfterNWrites: k})
		committed := applyChaosScript(db)
		label := fmt.Sprintf("kill-point %d (committed %d)", k, committed)
		if committed == len(chaosScript) {
			t.Fatalf("%s: script survived the crash", label)
		}

		// The pre-crash handle must keep serving reads on its last
		// published snapshot, whatever state the write path is in.
		if got := chaosStateOf(countMatches(t, db, "//order//item/name")); got < committed || got > committed+1 {
			t.Fatalf("%s: live handle shows state %d", label, got)
		}

		rec, err := OpenDatabase(&Options{WALFile: ff.Inner()})
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", label, err)
		}
		got := chaosStateOf(countMatches(t, rec, "//order//item/name"))
		if got != committed && got != committed+1 {
			t.Fatalf("%s: recovered state %d, want %d or %d", label, got, committed, committed+1)
		}
		verifyChaosState(t, rec, got, label)

		// The recovered database accepts new work.
		if err := rec.InsertString("fresh", orderXML(2)); err != nil {
			t.Fatalf("%s: post-recovery insert: %v", label, err)
		}
		if n := countMatches(t, rec, "//order//item/name"); n != chaosStates[got].count+2 {
			t.Fatalf("%s: post-recovery insert not visible", label)
		}
	}
}

// TestWALChaosTornWriteMatrix tears every WAL write ordinal in turn: the
// torn page persists a prefix and reports success, so the running process
// never notices — recovery must detect the damage by checksum and land on
// the longest intact committed prefix, never a torn blend.
func TestWALChaosTornWriteMatrix(t *testing.T) {
	writes := chaosWriteBudget(t)
	for k := 1; k <= writes; k++ {
		ff := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
		db, err := OpenDatabase(&Options{WALFile: ff, CompactThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		ff.SetPolicy(faultfs.Policy{TornWrite: k, Seed: int64(k)})
		committed := applyChaosScript(db)
		label := fmt.Sprintf("torn write %d (committed %d)", k, committed)
		if committed != len(chaosScript) {
			t.Fatalf("%s: torn write was visible to the writer", label)
		}
		rec, err := OpenDatabase(&Options{WALFile: ff.Inner()})
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", label, err)
		}
		got := chaosStateOf(countMatches(t, rec, "//order//item/name"))
		if got < 0 || got > committed {
			t.Fatalf("%s: recovered state %d not a committed prefix", label, got)
		}
		verifyChaosState(t, rec, got, label)
	}
}

// TestWALChaosStoreCrash crashes the store file (not the WAL) at every
// write ordinal: the WAL commit always precedes store writes, so the
// failing mutation is durably committed but unapplied — the handle must
// poison its write path (ErrBroken), keep serving the last snapshot, and
// recovery must show the interrupted mutation applied.
func TestWALChaosStoreCrash(t *testing.T) {
	// Budget: store writes over the script (store file faulted, WAL clean).
	wal := storage.NewMemFile()
	sf := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
	db, err := OpenDatabase(&Options{WALFile: wal, PageFile: sf, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	sf.SetPolicy(faultfs.Policy{})
	if n := applyChaosScript(db); n != len(chaosScript) {
		t.Fatalf("fault-free script stopped at %d", n)
	}
	writes := int(sf.Stats().Writes)
	if writes == 0 {
		t.Fatal("script wrote nothing to the store")
	}

	for k := 1; k <= writes; k++ {
		wal := storage.NewMemFile()
		sf := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
		db, err := OpenDatabase(&Options{WALFile: wal, PageFile: sf, CompactThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		sf.SetPolicy(faultfs.Policy{CrashAfterNWrites: k})
		committed := applyChaosScript(db)
		label := fmt.Sprintf("store kill-point %d (committed %d)", k, committed)
		if committed == len(chaosScript) {
			t.Fatalf("%s: script survived the crash", label)
		}
		if !db.IngestStats().Broken {
			t.Fatalf("%s: write path not poisoned after post-commit failure", label)
		}
		if err := db.InsertString("more", orderXML(1)); err == nil {
			t.Fatalf("%s: poisoned handle accepted a mutation", label)
		}

		rec, err := OpenDatabase(&Options{WALFile: wal})
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", label, err)
		}
		got := chaosStateOf(countMatches(t, rec, "//order//item/name"))
		if got != committed+1 {
			t.Fatalf("%s: recovered state %d, want %d (the committed-but-unapplied mutation)",
				label, got, committed+1)
		}
		verifyChaosState(t, rec, got, label)
	}
}
