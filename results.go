package sjos

import (
	"fmt"
	"sort"
	"strings"

	"sjos/internal/histogram"
	"sjos/internal/pattern"
)

// This file implements the post-pattern-match operations the paper lists as
// future work (§6: "expensive operations beyond structural pattern
// matching, such as value-based joins and grouping"): value-based join
// constraints over match bindings, grouping/aggregation of matches, and
// witness rendering of results.

// ValueEq is a value-based join constraint between two pattern nodes: a
// match qualifies only if the text values of the nodes bound to L and R are
// equal. This is the equi-join the paper defers to future work, evaluated
// as a residual predicate over the structural-join result.
type ValueEq struct {
	L, R int
}

// FilterValueJoins returns the matches satisfying every value-based join
// constraint. Constraints reference pattern node indexes of the pattern the
// matches were produced for.
func (db *Database) FilterValueJoins(matches []Match, constraints []ValueEq) ([]Match, error) {
	if len(constraints) == 0 {
		return matches, nil
	}
	for _, c := range constraints {
		if c.L < 0 || c.R < 0 {
			return nil, fmt.Errorf("sjos: value join references negative node (%d,%d)", c.L, c.R)
		}
	}
	out := make([]Match, 0, len(matches))
	for _, m := range matches {
		ok := true
		for _, c := range constraints {
			if c.L >= len(m) || c.R >= len(m) {
				return nil, fmt.Errorf("sjos: value join (%d,%d) out of range for %d-node match", c.L, c.R, len(m))
			}
			if db.Value(m[c.L]) != db.Value(m[c.R]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m)
		}
	}
	return out, nil
}

// QueryWhere runs a pattern query and applies value-based join constraints
// to the result.
func (db *Database) QueryWhere(src string, m Method, constraints []ValueEq) (*QueryResult, error) {
	res, err := db.Query(src, m)
	if err != nil {
		return nil, err
	}
	res.Matches, err = db.FilterValueJoins(res.Matches, constraints)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Group is one group of matches sharing a binding for the grouping node.
type Group struct {
	// Key is the shared document node (the grouping node's binding).
	Key NodeID
	// Matches are the group's members, in the order encountered.
	Matches []Match
}

// GroupBy partitions matches by the document node bound to pattern node u
// (TAX-style grouping on a pattern node). Groups are returned in document
// order of their keys.
func GroupBy(matches []Match, u int) []Group {
	idx := make(map[NodeID]int)
	var groups []Group
	for _, m := range matches {
		if u < 0 || u >= len(m) {
			continue
		}
		key := m[u]
		gi, ok := idx[key]
		if !ok {
			gi = len(groups)
			idx[key] = gi
			groups = append(groups, Group{Key: key})
		}
		groups[gi].Matches = append(groups[gi].Matches, m)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Key < groups[j].Key })
	return groups
}

// CountBy returns per-group match counts, keyed by the grouping node's
// binding.
func CountBy(matches []Match, u int) map[NodeID]int {
	out := make(map[NodeID]int)
	for _, m := range matches {
		if u >= 0 && u < len(m) {
			out[m[u]]++
		}
	}
	return out
}

// AggregateValues applies a fold over the text values of pattern node u
// across the matches of one group; it reports how many values parsed as
// numbers, their sum, min and max (string values that do not parse
// numerically are counted but excluded from the numeric aggregates).
type Aggregate struct {
	Count   int
	Numeric int
	Sum     float64
	Min     float64
	Max     float64
}

// AggregateNode folds the values bound to pattern node u over matches.
func (db *Database) AggregateNode(matches []Match, u int) Aggregate {
	var a Aggregate
	for _, m := range matches {
		if u < 0 || u >= len(m) {
			continue
		}
		a.Count++
		v := db.Value(m[u])
		var f float64
		if _, err := fmt.Sscanf(v, "%g", &f); err == nil {
			if a.Numeric == 0 || f < a.Min {
				a.Min = f
			}
			if a.Numeric == 0 || f > a.Max {
				a.Max = f
			}
			a.Sum += f
			a.Numeric++
		}
	}
	return a
}

// RenderMatch formats one match as a human-readable witness: each pattern
// node with its tag and bound value, nested per the pattern tree.
func (db *Database) RenderMatch(pat *Pattern, m Match) string {
	var sb strings.Builder
	var walk func(u, depth int)
	walk = func(u, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(pat.Nodes[u].Tag)
		if u < len(m) {
			if v := db.Value(m[u]); v != "" {
				fmt.Fprintf(&sb, " = %q", v)
			}
			fmt.Fprintf(&sb, "  (node %d)", m[u])
		}
		sb.WriteString("\n")
		for _, c := range pat.Children(u) {
			walk(c, depth+1)
		}
	}
	walk(0, 0)
	return sb.String()
}

// EvalPredicate exposes the library's value-predicate semantics (numeric
// comparison when both sides parse as numbers, lexicographic otherwise,
// "~" = substring containment) for callers building their own filters.
func EvalPredicate(value string, op pattern.CmpOp, rhs string) bool {
	return histogram.EvalPredicate(value, op, rhs)
}
