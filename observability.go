package sjos

import (
	"fmt"
	"io"
	"sync"
	"time"

	"sjos/internal/exec"
	"sjos/internal/metrics"
	"sjos/internal/pattern"
)

// OpTrace is a plan-shaped per-operator execution trace: wall time per
// iterator phase, Next calls, and actual vs estimated output rows for
// every operator of the executed plan. Produced by Run/QueryContext when
// tracing is enabled (RunOptions.Trace / QueryOptions.Trace, or a
// configured slow-query log).
type OpTrace = exec.OpTrace

// MetricsSnapshot is the process-wide query counters' point-in-time copy.
type MetricsSnapshot = metrics.Snapshot

// Metrics is one observability snapshot of a database: query-level
// counters and latency quantiles, plus the plan cache's and buffer pool's
// own counters. All parallelism views of a database share one Metrics
// source.
type Metrics struct {
	// Query holds queries served, errors, slow queries, the in-flight
	// gauge and the p50/p95/p99 latency quantiles.
	Query MetricsSnapshot
	// Cache is the plan cache's hit/miss/coalesced/eviction counters.
	Cache CacheStats
	// Pool is the buffer pool's page-cache counters, including read
	// retries and checksum failures.
	Pool PoolStats
	// Admission is the admission controller's counters (all zero when no
	// MaxInFlight limit is configured).
	Admission AdmissionStats
	// FaultsInjected counts faults the page file injected, when the store
	// sits on a fault-injecting file (internal/faultfs); 0 otherwise.
	FaultsInjected uint64
	// Content is the store's content-index and compression counters: value
	// probes served, postings blocks decoded, compressed vs raw postings
	// footprint and the document build's string-intern behaviour.
	Content ContentStats
	// Replica holds the corpus replica-routing counters (all zero for a
	// plain single-store Database).
	Replica ReplicaMetrics
}

// ReplicaMetrics is the corpus's replica-routing counters.
type ReplicaMetrics struct {
	// HedgedRequests counts shard queries re-issued on a second replica
	// because the first was slower than the hedge delay.
	HedgedRequests uint64
	// Failovers counts shard queries re-issued on another replica because
	// the previous one returned an error.
	Failovers uint64
	// Suspect is the number of replicas currently in a degraded routing
	// state (suspect or probation).
	Suspect int
}

// Metrics returns a snapshot of the database's observability counters.
func (db *Database) Metrics() Metrics {
	m := Metrics{
		Query:     db.svc.metrics.Snapshot(),
		Cache:     db.CacheStats(),
		Pool:      db.PoolStats(),
		Admission: db.AdmissionStats(),
	}
	// A chaos-mode store reports its injected-fault count through this
	// optional interface (satisfied by *faultfs.File).
	store := db.view().store
	if ff, ok := store.File().(interface{ FaultsInjected() uint64 }); ok {
		m.FaultsInjected = ff.FaultsInjected()
	}
	m.Content = store.ContentStats()
	return m
}

// WriteMetrics renders the database's counters in the Prometheus text
// exposition format (metric prefix "sjos") — the payload of xqserve's
// /metrics endpoint and xqshell's .metrics command.
func (db *Database) WriteMetrics(w io.Writer) {
	writeMetricsText(w, db.Metrics())
}

// writeMetricsText renders one Metrics snapshot in the Prometheus text
// exposition format; shared by Database.WriteMetrics and
// Corpus.WriteMetrics (whose Pool/Content counters aggregate all shards).
func writeMetricsText(w io.Writer, m Metrics) {
	m.Query.WriteText(w, "sjos")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP sjos_%s %s\n# TYPE sjos_%s counter\nsjos_%s %d\n",
			name, help, name, name, v)
	}
	counter("plancache_hits_total", "Plan cache hits.", uint64(m.Cache.Hits))
	counter("plancache_misses_total", "Plan cache misses.", uint64(m.Cache.Misses))
	counter("plancache_coalesced_total", "Optimizations coalesced onto an in-flight run.", uint64(m.Cache.Coalesced))
	counter("plancache_evictions_total", "Plan cache LRU evictions.", uint64(m.Cache.Evictions))
	counter("plancache_drift_evictions_total", "Cached plans evicted by the adaptive est-vs-actual drift check.", m.Query.DriftEvictions)
	fmt.Fprintf(w, "# HELP sjos_plancache_entries Plans currently cached.\n# TYPE sjos_plancache_entries gauge\nsjos_plancache_entries %d\n", m.Cache.Entries)
	counter("pool_hits_total", "Buffer pool page hits.", m.Pool.Hits)
	counter("pool_misses_total", "Buffer pool page misses.", m.Pool.Misses)
	counter("pool_evictions_total", "Buffer pool page evictions.", m.Pool.Evicted)
	fmt.Fprintf(w, "# HELP sjos_pool_resident_pages Pages resident in the buffer pool.\n# TYPE sjos_pool_resident_pages gauge\nsjos_pool_resident_pages %d\n", m.Pool.Resident)
	counter("page_retries_total", "Page reads retried after transient failures or checksum mismatches.", m.Pool.Retries)
	counter("checksum_failures_total", "Page reads that failed checksum or header verification.", m.Pool.ChecksumFailures)
	counter("admission_queued_total", "Queries that waited for an execution slot.", m.Admission.Queued)
	counter("admission_rejected_total", "Queries shed by admission control (queue full or shutting down).", m.Admission.Rejected)
	counter("faults_injected_total", "Faults injected by the page file (chaos mode; 0 in production).", m.FaultsInjected)
	counter("value_index_probes_total", "Value predicates served by content-index probes instead of scan+filter.", m.Content.ValueProbes)
	counter("postings_blocks_decoded_total", "Compressed postings blocks decoded (tag and value index).", m.Content.BlocksDecoded)
	counter("hedged_requests_total", "Shard queries re-issued on a second replica after the hedge delay.", m.Replica.HedgedRequests)
	counter("replica_failovers_total", "Shard queries failed over to another replica after an error.", m.Replica.Failovers)
	fmt.Fprintf(w, "# HELP sjos_replicas_suspect Replicas currently in a degraded routing state (suspect or probation).\n# TYPE sjos_replicas_suspect gauge\nsjos_replicas_suspect %d\n", m.Replica.Suspect)
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP sjos_%s %s\n# TYPE sjos_%s gauge\nsjos_%s %d\n",
			name, help, name, name, v)
	}
	vidx := int64(0)
	if m.Content.ValueIndexed {
		vidx = 1
	}
	gauge("value_index_enabled", "Whether the (tag, value) content index was built.", vidx)
	gauge("postings_bytes", "Encoded size of all postings (tag and value index).", int64(m.Content.PostingsBytes))
	gauge("postings_raw_bytes", "Size the same postings would occupy uncompressed.", int64(m.Content.RawPostingsBytes))
	counter("intern_hits_total", "Value intern-table hits during document build.", m.Content.Intern.Hits)
	counter("intern_misses_total", "Value intern-table misses (distinct values) during document build.", m.Content.Intern.Misses)
	gauge("intern_strings", "Distinct values retained by the intern table.", int64(m.Content.Intern.Strings))
	gauge("intern_bytes_saved", "Value bytes deduplicated by interning.", int64(m.Content.Intern.BytesSaved))
}

// SlowQueryEntry describes one query that crossed the slow-query
// threshold: identity (pattern text and renumbering-invariant
// fingerprint), how it ran, and its per-operator trace.
type SlowQueryEntry struct {
	// Time is when the query finished.
	Time time.Time
	// Pattern is the query's tree-pattern text; Fingerprint its canonical
	// shape encoding (shared by all renumberings of the same query).
	Pattern     string
	Fingerprint string
	// Method is the optimization algorithm the query ran with.
	Method Method
	// Duration is the total latency (optimize + execute); OptimizeTime
	// and ExecuteTime split it.
	Duration     time.Duration
	OptimizeTime time.Duration
	ExecuteTime  time.Duration
	// Matches is the number of results produced; CachedPlan whether the
	// plan came from the plan cache.
	Matches    int
	CachedPlan bool
	// ValueProbes is how many of the query's leaves ran as value-index
	// probes (predicate pushdown) rather than scan+filter.
	ValueProbes int
	// Trace is the query's per-operator execution trace.
	Trace *OpTrace
	// Error and Stack are set only for entries recording a recovered
	// panic: the typed error's message and the goroutine stack captured at
	// panic time. Both are empty for ordinary slow queries.
	Error string
	Stack string
}

// slowRingCap bounds the in-memory log of recent slow queries.
const slowRingCap = 32

// slowLog is the service-shared slow-query configuration and ring buffer.
type slowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	fn        func(SlowQueryEntry)
	ring      []SlowQueryEntry // oldest first
}

func (l *slowLog) config() (time.Duration, func(SlowQueryEntry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold, l.fn
}

func (l *slowLog) record(e SlowQueryEntry) {
	l.mu.Lock()
	if len(l.ring) == slowRingCap {
		copy(l.ring, l.ring[1:])
		l.ring = l.ring[:slowRingCap-1]
	}
	l.ring = append(l.ring, e)
	l.mu.Unlock()
}

func (l *slowLog) entries() []SlowQueryEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQueryEntry, len(l.ring))
	copy(out, l.ring)
	return out
}

// SetSlowQueryLog configures the slow-query log shared by all parallelism
// views of this database: every QueryContext / QueryPatternContext /
// XQueryContext call whose total latency reaches threshold is recorded in
// an in-memory ring (see SlowQueries) and reported to fn, if non-nil.
// While a threshold is active those queries run with per-operator tracing
// enabled so the log can attribute the time; that instrumentation costs a
// few percent per query. threshold <= 0 disables the log.
func (db *Database) SetSlowQueryLog(threshold time.Duration, fn func(SlowQueryEntry)) {
	db.svc.slow.mu.Lock()
	db.svc.slow.threshold = threshold
	db.svc.slow.fn = fn
	db.svc.slow.mu.Unlock()
}

// SlowQueries returns the most recent slow-query log entries, oldest
// first (at most 32 are retained).
func (db *Database) SlowQueries() []SlowQueryEntry {
	return db.svc.slow.entries()
}

// maybeLogSlow applies the slow-query policy to one finished query, for
// Database and Corpus alike.
func (s *service) maybeLogSlow(pat *Pattern, method Method, thr time.Duration, fn func(SlowQueryEntry), optTime, execTime time.Duration, matches int, stats ExecStats, trace *OpTrace, cached bool) {
	total := optTime + execTime
	if thr <= 0 || total < thr {
		return
	}
	fp, _ := pattern.Fingerprint(pat)
	e := SlowQueryEntry{
		Time:         time.Now(),
		Pattern:      pat.String(),
		Fingerprint:  fp,
		Method:       method,
		Duration:     total,
		OptimizeTime: optTime,
		ExecuteTime:  execTime,
		Matches:      matches,
		CachedPlan:   cached,
		ValueProbes:  stats.ValueProbes,
		Trace:        trace,
	}
	s.metrics.SlowQuery()
	s.slow.record(e)
	if fn != nil {
		fn(e)
	}
}
