package storage

import (
	"context"
	"sort"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// The value (content) index: per tag, a postings list for every distinct
// text value (exact-match lookups) and, over the distinct numeric values, a
// sorted directory for range lookups. Postings live in the same compressed
// paged format as the tag index — one postingsWriter lays both segments out
// during the build, so value-index reads flow through the buffer pool,
// checksums and the retry path like every other page access.
//
// Eligibility is deliberately conservative: a probe is offered only when
// the index provably reproduces pattern.EvalPredicate's semantics.
//
//   - CmpEq with a non-numeric rhs: byte-exact lookup. A numeric stored
//     value can never equal a non-numeric rhs (equality would imply equal
//     bytes, hence equal parseability), so the exact map suffices.
//   - CmpEq with a numeric rhs: numeric-group lookup, which merges
//     byte-distinct spellings of one number ("1", "1.0"). Non-numeric
//     stored values compare lexicographically against the rhs and byte
//     equality would again imply parseability, so none can match.
//   - CmpLt/Le/Gt/Ge with a numeric rhs: served from the numeric directory
//     only when every node of the tag has a non-empty numeric value
//     (allNumeric) — otherwise some values would compare lexicographically
//     and the numeric index cannot reproduce that.
//   - Everything else (CmpNe, CmpContains, lexicographic ranges, empty
//     rhs): not eligible; the executor falls back to scan+filter.
type valueIndex struct {
	exact map[valueKey]postingsRun
	nums  []tagNumeric // indexed by TagID
	runs  int          // postings lists persisted (exact groups + merged numeric groups)
}

// valueKey identifies one (tag, value) postings list. Values are the
// document's interned strings, so keys share the document's backing bytes.
type valueKey struct {
	tag xmltree.TagID
	val string
}

// tagNumeric is one tag's numeric-range directory: the distinct numeric
// values in ascending order, each with the postings of all nodes whose
// value parses to that number (regardless of spelling).
type tagNumeric struct {
	allNumeric bool // every node of the tag has a non-empty numeric value
	vals       []float64
	runs       []postingsRun
}

// buildValueIndex groups every tag's nodes by text value and writes the
// groups' postings through w. It returns the index and the raw
// (uncompressed-equivalent) byte count of the lists written.
func buildValueIndex(w *postingsWriter, doc *xmltree.Document) (*valueIndex, int, error) {
	return buildValueIndexOver(w, doc, doc.NodesWithTag)
}

// buildValueIndexOver is buildValueIndex with the per-tag node lists
// supplied by nodesOf — the segment builder passes a span-restricted view so
// one forest member gets its own self-contained index.
func buildValueIndexOver(w *postingsWriter, doc *xmltree.Document, nodesOf func(xmltree.TagID) []xmltree.NodeID) (*valueIndex, int, error) {
	vx := &valueIndex{
		exact: make(map[valueKey]postingsRun),
		nums:  make([]tagNumeric, doc.NumTags()),
	}
	rawBytes := 0
	for t := 0; t < doc.NumTags(); t++ {
		tag := xmltree.TagID(t)
		nodes := nodesOf(tag)
		if len(nodes) == 0 {
			continue
		}
		// Group postings by exact value, in document order. Values are
		// already interned by the document builder, so the map keys alias
		// the document's strings — no new value allocations here.
		groups := make(map[string][]xmltree.NodeID)
		allNumeric := true
		for _, id := range nodes {
			v := doc.Value(id)
			if v == "" {
				allNumeric = false
				continue
			}
			if _, ok := pattern.ParseNumeric(v); !ok {
				allNumeric = false
			}
			groups[v] = append(groups[v], id)
		}
		if len(groups) == 0 {
			continue
		}
		vals := make([]string, 0, len(groups))
		for v := range groups {
			vals = append(vals, v)
		}
		sort.Strings(vals) // deterministic layout
		for _, v := range vals {
			run, err := w.writeRun(groups[v], doc.Start)
			if err != nil {
				return nil, 0, err
			}
			vx.exact[valueKey{tag, v}] = run
			vx.runs++
			rawBytes += rawPostingSize * len(groups[v])
		}
		// Numeric directory: distinct parsed numbers in ascending order.
		// A number spelled one way reuses its exact run; byte-distinct
		// spellings of the same number get one merged run.
		byNum := make(map[float64][]string)
		for _, v := range vals {
			if f, ok := pattern.ParseNumeric(v); ok {
				byNum[f] = append(byNum[f], v)
			}
		}
		if len(byNum) == 0 {
			vx.nums[t] = tagNumeric{allNumeric: false}
			continue
		}
		nums := make([]float64, 0, len(byNum))
		for f := range byNum {
			nums = append(nums, f)
		}
		sort.Float64s(nums)
		tn := tagNumeric{
			allNumeric: allNumeric,
			vals:       nums,
			runs:       make([]postingsRun, len(nums)),
		}
		for i, f := range nums {
			reps := byNum[f]
			if len(reps) == 1 {
				tn.runs[i] = vx.exact[valueKey{tag, reps[0]}]
				continue
			}
			merged := mergeIDLists(groups, reps)
			run, err := w.writeRun(merged, doc.Start)
			if err != nil {
				return nil, 0, err
			}
			tn.runs[i] = run
			vx.runs++
			rawBytes += rawPostingSize * len(merged)
		}
		vx.nums[t] = tn
	}
	return vx, rawBytes, nil
}

// mergeIDLists merges the (sorted) id lists of the given group keys into
// one sorted list.
func mergeIDLists(groups map[string][]xmltree.NodeID, keys []string) []xmltree.NodeID {
	total := 0
	for _, k := range keys {
		total += len(groups[k])
	}
	out := make([]xmltree.NodeID, 0, total)
	for _, k := range keys {
		out = append(out, groups[k]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasValueIndex reports whether the store carries a content index.
func (s *Store) HasValueIndex() bool { return s.vidx != nil }

// ProbeEligible reports whether the value predicate (op, value) on the
// given tag can be served by an index probe with semantics identical to
// scan+filter (see the package comment above for the case analysis). The
// optimizer consults this through the estimator; the executor re-checks it
// when opening a ValueIndexScan.
func (s *Store) ProbeEligible(tag string, op pattern.CmpOp, value string) bool {
	if s.vidx == nil {
		return false
	}
	t, ok := s.tagByName[tag]
	if !ok {
		return false
	}
	switch op {
	case pattern.CmpEq:
		// Empty values are not indexed, and [. = ""] does match them.
		return value != ""
	case pattern.CmpLt, pattern.CmpLe, pattern.CmpGt, pattern.CmpGe:
		if _, numeric := pattern.ParseNumeric(value); !numeric {
			return false // lexicographic range: scan+filter
		}
		return s.vidx.nums[t].allNumeric
	}
	return false
}

// ProbeSelectivity returns the exact number of nodes an eligible probe
// would produce, and whether the probe is eligible at all. The optimizer
// uses it as a perfect cardinality for the indexed leaf.
func (s *Store) ProbeSelectivity(tag string, op pattern.CmpOp, value string) (int, bool) {
	runs, ok := s.probeRuns(tag, op, value)
	if !ok {
		return 0, false
	}
	n := 0
	for _, r := range runs {
		n += r.count
	}
	return n, true
}

// probeRuns resolves the postings runs an eligible probe reads (possibly
// none, for a value absent from the document).
func (s *Store) probeRuns(tag string, op pattern.CmpOp, value string) ([]postingsRun, bool) {
	if !s.ProbeEligible(tag, op, value) {
		return nil, false
	}
	t := s.tagByName[tag]
	if op == pattern.CmpEq {
		if f, numeric := pattern.ParseNumeric(value); numeric {
			tn := &s.vidx.nums[t]
			i := sort.SearchFloat64s(tn.vals, f)
			if i < len(tn.vals) && tn.vals[i] == f {
				return []postingsRun{tn.runs[i]}, true
			}
			return nil, true // value absent: empty probe
		}
		if run, ok := s.vidx.exact[valueKey{t, value}]; ok {
			return []postingsRun{run}, true
		}
		return nil, true
	}
	// Numeric range: select the directory slice satisfying the bound.
	f, _ := pattern.ParseNumeric(value)
	tn := &s.vidx.nums[t]
	lower := sort.SearchFloat64s(tn.vals, f) // first index with vals >= f
	upper := lower
	for upper < len(tn.vals) && tn.vals[upper] == f {
		upper++ // first index with vals > f
	}
	var sel []postingsRun
	switch op {
	case pattern.CmpLt:
		sel = tn.runs[:lower]
	case pattern.CmpLe:
		sel = tn.runs[:upper]
	case pattern.CmpGt:
		sel = tn.runs[upper:]
	case pattern.CmpGe:
		sel = tn.runs[lower:]
	}
	return sel, true
}

// ValueScanner streams the postings of a value-index probe in document
// order, with the same iteration contract as TagScanner: tuple-at-a-time
// Next, block-wise NextBlock, forward-only SeekGE skip-ahead and a
// Remaining upper bound.
type ValueScanner interface {
	Next() (xmltree.NodeID, NodeRecord, bool, error)
	NextBlock(ids []xmltree.NodeID) (int, error)
	SeekGE(pos xmltree.Pos) (int, error)
	Remaining() int
}

// ProbeValue opens a probe scanner for (tag, op, value). ok is false when
// the probe is not eligible (the caller should fall back to scan+filter);
// an eligible probe of an absent value returns an empty scanner.
func (s *Store) ProbeValue(tag string, op pattern.CmpOp, value string) (ValueScanner, bool) {
	return s.ProbeValueCtx(context.Background(), tag, op, value)
}

// ProbeValueCtx is ProbeValue under a context (see ScanTagCtx).
func (s *Store) ProbeValueCtx(ctx context.Context, tag string, op pattern.CmpOp, value string) (ValueScanner, bool) {
	return s.probeValue(ctx, tag, op, value, false, 0, 0)
}

// ProbeValueRangeCtx is ProbeValueCtx restricted to nodes whose Start
// position lies in [lo, hi) — the partition-parallel probe path.
func (s *Store) ProbeValueRangeCtx(ctx context.Context, tag string, op pattern.CmpOp, value string, lo, hi xmltree.Pos) (ValueScanner, bool) {
	return s.probeValue(ctx, tag, op, value, true, lo, hi)
}

func (s *Store) probeValue(ctx context.Context, tag string, op pattern.CmpOp, value string, bounded bool, lo, hi xmltree.Pos) (ValueScanner, bool) {
	runs, ok := s.probeRuns(tag, op, value)
	if !ok {
		return nil, false
	}
	s.shared.probes.Add(1)
	newCursor := func(run postingsRun) *runCursor {
		cur := &runCursor{}
		cur.init(s, ctx, run)
		if bounded {
			cur.restrict(lo, hi)
		}
		return cur
	}
	switch len(runs) {
	case 0:
		return newCursor(postingsRun{}), true
	case 1:
		return newCursor(runs[0]), true
	}
	m := &mergeScanner{store: s, ctx: ctx, kids: make([]mergeKid, len(runs))}
	for i, r := range runs {
		m.kids[i] = mergeKid{cur: newCursor(r), buf: make([]xmltree.NodeID, postingsBlockLen)}
	}
	return m, true
}

// mergeScanner k-way merges several postings runs by NodeID (NodeIDs are
// assigned in document order, so merging by id is merging by Start). Each
// child refills a block-sized buffer via its cursor's NextBlock, so the
// batched path stays block-wise: no per-posting node-record reads, and
// range restriction is already handled inside each child.
type mergeScanner struct {
	store *Store
	ctx   context.Context
	kids  []mergeKid
}

type mergeKid struct {
	cur  *runCursor
	buf  []xmltree.NodeID
	pos  int
	n    int
	done bool
}

// fill tops up one child's buffer if it is empty.
func (m *mergeScanner) fill(k *mergeKid) error {
	if k.done || k.pos < k.n {
		return nil
	}
	n, err := k.cur.NextBlock(k.buf)
	if err != nil {
		return err
	}
	if n == 0 {
		k.done = true
		return nil
	}
	k.pos, k.n = 0, n
	return nil
}

// minKid returns the child holding the smallest buffered id (-1 when all
// children are exhausted). The child count is the number of merged value
// groups — small — so a linear min is cheaper than heap bookkeeping.
func (m *mergeScanner) minKid() (int, error) {
	best := -1
	var bestID xmltree.NodeID
	for i := range m.kids {
		k := &m.kids[i]
		if err := m.fill(k); err != nil {
			return 0, err
		}
		if k.done {
			continue
		}
		if id := k.buf[k.pos]; best < 0 || id < bestID {
			best, bestID = i, id
		}
	}
	return best, nil
}

// Next implements ValueScanner.
func (m *mergeScanner) Next() (xmltree.NodeID, NodeRecord, bool, error) {
	i, err := m.minKid()
	if err != nil {
		return 0, NodeRecord{}, false, err
	}
	if i < 0 {
		return 0, NodeRecord{}, false, nil
	}
	k := &m.kids[i]
	id := k.buf[k.pos]
	k.pos++
	rec, err := m.store.NodeCtx(m.ctx, id)
	if err != nil {
		return 0, NodeRecord{}, false, err
	}
	return id, rec, true, nil
}

// NextBlock implements ValueScanner: the merge happens over in-memory
// buffers, so no node records are read at all.
func (m *mergeScanner) NextBlock(ids []xmltree.NodeID) (int, error) {
	n := 0
	for n < len(ids) {
		i, err := m.minKid()
		if err != nil {
			return n, err
		}
		if i < 0 {
			break
		}
		k := &m.kids[i]
		ids[n] = k.buf[k.pos]
		k.pos++
		n++
	}
	return n, nil
}

// SeekGE implements ValueScanner: each child first drops buffered postings
// below pos (binary search with node-record reads), then delegates the
// remainder of the skip to its cursor.
func (m *mergeScanner) SeekGE(pos xmltree.Pos) (int, error) {
	skipped := 0
	for i := range m.kids {
		k := &m.kids[i]
		if k.pos < k.n {
			lo, hi := k.pos, k.n
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				rec, err := m.store.NodeCtx(m.ctx, k.buf[mid])
				if err != nil {
					return skipped, err
				}
				if rec.Start < pos {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			skipped += lo - k.pos
			k.pos = lo
			if k.pos < k.n {
				continue // target position is inside the buffer
			}
		}
		if k.done {
			continue
		}
		sk, err := k.cur.SeekGE(pos)
		if err != nil {
			return skipped, err
		}
		skipped += sk
	}
	return skipped, nil
}

// Remaining implements ValueScanner (an upper bound, as for TagScanner).
func (m *mergeScanner) Remaining() int {
	n := 0
	for i := range m.kids {
		k := &m.kids[i]
		n += (k.n - k.pos) + k.cur.Remaining()
	}
	return n
}
