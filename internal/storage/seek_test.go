package storage

import (
	"testing"

	"sjos/internal/xmltree"
)

// tagPostings returns the document's postings for tag, in document order,
// as (id, start) pairs — the oracle for the scanner tests below.
func tagPostings(doc *xmltree.Document, tag xmltree.TagID) ([]xmltree.NodeID, []xmltree.Pos) {
	ids := doc.NodesWithTag(tag)
	starts := make([]xmltree.Pos, len(ids))
	for i, id := range ids {
		starts[i] = doc.Start(id)
	}
	return ids, starts
}

// drainScanner collects every remaining posting of sc.
func drainScanner(t *testing.T, sc *TagScanner) []xmltree.NodeID {
	t.Helper()
	var out []xmltree.NodeID
	for {
		id, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, id)
	}
}

func equalIDs(a, b []xmltree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestScanTagRangeBoundaries covers the half-open range contract on exact
// posting positions: Lo on a posting includes it, Hi on a posting excludes
// it, an empty range yields nothing, and a range past the last posting
// yields nothing.
func TestScanTagRangeBoundaries(t *testing.T) {
	doc := buildDoc(t, 4000)
	st, err := BuildStore(doc, 16)
	if err != nil {
		t.Fatal(err)
	}
	tag := xmltree.TagID(0)
	ids, starts := tagPostings(doc, tag)
	if len(ids) < 4 {
		t.Fatalf("need at least 4 postings, got %d", len(ids))
	}
	mid, last := len(ids)/2, len(ids)-1

	cases := []struct {
		name   string
		lo, hi xmltree.Pos
		want   []xmltree.NodeID
	}{
		{"lo exactly on a posting", starts[mid], starts[last] + 1, ids[mid:]},
		{"hi exactly on a posting (excluded)", starts[0], starts[mid], ids[:mid]},
		{"both bounds on postings", starts[1], starts[last], ids[1:last]},
		{"empty range lo==hi", starts[mid], starts[mid], nil},
		{"empty range between postings", starts[mid] + 1, starts[mid] + 1, nil},
		{"range past the last posting", starts[last] + 1, starts[last] + 1000, nil},
		{"range before the first posting", 0, starts[0], nil},
		{"full range", 0, starts[last] + 1, ids},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := drainScanner(t, st.ScanTagRange(tag, tc.lo, tc.hi))
			if !equalIDs(got, tc.want) {
				t.Fatalf("got %d postings, want %d", len(got), len(tc.want))
			}
		})
	}
}

// TestScanTagRangeParksAfterEnd checks that a bounded scanner that hit its
// range end stays exhausted (repeated Next keeps returning !ok).
func TestScanTagRangeParksAfterEnd(t *testing.T) {
	doc := buildDoc(t, 1000)
	st, err := BuildStore(doc, 16)
	if err != nil {
		t.Fatal(err)
	}
	tag := xmltree.TagID(1)
	_, starts := tagPostings(doc, tag)
	sc := st.ScanTagRange(tag, 0, starts[len(starts)/2])
	drainScanner(t, sc)
	for i := 0; i < 3; i++ {
		if _, _, ok, err := sc.Next(); ok || err != nil {
			t.Fatalf("exhausted scanner: ok=%v err=%v", ok, err)
		}
	}
}

// TestSeekGE covers the skip-ahead entry points: seek before the first
// posting, to an exact posting, between postings, past the end, repeated
// and backwards (no-op) seeks — against both plain and range-bounded
// scanners.
func TestSeekGE(t *testing.T) {
	doc := buildDoc(t, 4000)
	st, err := BuildStore(doc, 16)
	if err != nil {
		t.Fatal(err)
	}
	tag := xmltree.TagID(2)
	ids, starts := tagPostings(doc, tag)
	if len(ids) < 8 {
		t.Fatalf("need at least 8 postings, got %d", len(ids))
	}
	last := len(ids) - 1

	t.Run("before first", func(t *testing.T) {
		sc := st.ScanTag(tag)
		skipped, err := sc.SeekGE(0)
		if err != nil || skipped != 0 {
			t.Fatalf("skipped=%d err=%v, want 0, nil", skipped, err)
		}
		if got := drainScanner(t, sc); !equalIDs(got, ids) {
			t.Fatalf("seek to 0 lost postings: %d of %d", len(got), len(ids))
		}
	})
	t.Run("exactly on a posting", func(t *testing.T) {
		sc := st.ScanTag(tag)
		mid := len(ids) / 2
		skipped, err := sc.SeekGE(starts[mid])
		if err != nil || skipped != mid {
			t.Fatalf("skipped=%d err=%v, want %d, nil", skipped, err, mid)
		}
		if got := drainScanner(t, sc); !equalIDs(got, ids[mid:]) {
			t.Fatalf("got %d postings, want %d", len(got), len(ids)-mid)
		}
	})
	t.Run("between postings", func(t *testing.T) {
		sc := st.ScanTag(tag)
		mid := len(ids) / 2
		// A position strictly between posting mid-1 and mid lands on mid.
		pos := starts[mid-1] + 1
		if pos > starts[mid] {
			t.Skip("adjacent postings")
		}
		if _, err := sc.SeekGE(pos); err != nil {
			t.Fatal(err)
		}
		if got := drainScanner(t, sc); !equalIDs(got, ids[mid:]) {
			t.Fatalf("got %d postings, want %d", len(got), len(ids)-mid)
		}
	})
	t.Run("past the end", func(t *testing.T) {
		sc := st.ScanTag(tag)
		skipped, err := sc.SeekGE(starts[last] + 1)
		if err != nil || skipped != len(ids) {
			t.Fatalf("skipped=%d err=%v, want %d, nil", skipped, err, len(ids))
		}
		if got := drainScanner(t, sc); len(got) != 0 {
			t.Fatalf("scanner returned %d postings after seek past end", len(got))
		}
	})
	t.Run("repeated seeks are monotone", func(t *testing.T) {
		sc := st.ScanTag(tag)
		q1, q3 := len(ids)/4, 3*len(ids)/4
		if _, err := sc.SeekGE(starts[q3]); err != nil {
			t.Fatal(err)
		}
		// A backwards seek must not rewind.
		if skipped, err := sc.SeekGE(starts[q1]); err != nil || skipped != 0 {
			t.Fatalf("backwards seek: skipped=%d err=%v", skipped, err)
		}
		if got := drainScanner(t, sc); !equalIDs(got, ids[q3:]) {
			t.Fatalf("got %d postings, want %d", len(got), len(ids)-q3)
		}
	})
	t.Run("interleaved with Next", func(t *testing.T) {
		sc := st.ScanTag(tag)
		for i := 0; i < 2; i++ {
			if _, _, ok, err := sc.Next(); !ok || err != nil {
				t.Fatalf("Next: ok=%v err=%v", ok, err)
			}
		}
		mid := len(ids) / 2
		if _, err := sc.SeekGE(starts[mid]); err != nil {
			t.Fatal(err)
		}
		if got := drainScanner(t, sc); !equalIDs(got, ids[mid:]) {
			t.Fatalf("got %d postings, want %d", len(got), len(ids)-mid)
		}
	})
	t.Run("bounded scanner seeks inside its range", func(t *testing.T) {
		lo, hi := len(ids)/4, 3*len(ids)/4
		sc := st.ScanTagRange(tag, starts[lo], starts[hi])
		// Seeking before the range's Lo must not escape it.
		if _, err := sc.SeekGE(0); err != nil {
			t.Fatal(err)
		}
		mid := len(ids) / 2
		if _, err := sc.SeekGE(starts[mid]); err != nil {
			t.Fatal(err)
		}
		if got := drainScanner(t, sc); !equalIDs(got, ids[mid:hi]) {
			t.Fatalf("got %d postings, want %d", len(got), hi-mid)
		}
	})
}

// TestNextBlockMatchesNext checks the batched read path against the
// tuple-at-a-time scanner for plain, bounded and seek-interleaved scans,
// across block sizes that straddle page boundaries.
func TestNextBlockMatchesNext(t *testing.T) {
	doc := buildDoc(t, 6000)
	st, err := BuildStore(doc, 16)
	if err != nil {
		t.Fatal(err)
	}
	for tg := 0; tg < doc.NumTags(); tg++ {
		tag := xmltree.TagID(tg)
		ids, starts := tagPostings(doc, tag)
		for _, blockSize := range []int{1, 7, 256, 5000} {
			sc := st.ScanTag(tag)
			var got []xmltree.NodeID
			buf := make([]xmltree.NodeID, blockSize)
			for {
				n, err := sc.NextBlock(buf)
				if err != nil {
					t.Fatal(err)
				}
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
			if !equalIDs(got, ids) {
				t.Fatalf("tag %d block %d: got %d postings, want %d", tg, blockSize, len(got), len(ids))
			}
		}
		if len(ids) < 4 {
			continue
		}
		// Bounded block scan agrees with the bounded tuple scan.
		lo, hi := starts[len(ids)/4], starts[3*len(ids)/4]
		want := drainScanner(t, st.ScanTagRange(tag, lo, hi))
		sc := st.ScanTagRange(tag, lo, hi)
		var got []xmltree.NodeID
		buf := make([]xmltree.NodeID, 64)
		for {
			n, err := sc.NextBlock(buf)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if !equalIDs(got, want) {
			t.Fatalf("tag %d bounded block scan: got %d postings, want %d", tg, len(got), len(want))
		}
	}
}
