package storage

import (
	"math/rand"
	"testing"

	"sjos/internal/xmltree"
)

// partitionDoc builds a document with several disjoint top-level subtrees
// (the shape Fold produces) plus recursive nesting of the partition tag.
func partitionTestDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	b := xmltree.NewBuilder()
	b.Open("root", "")
	for i := 0; i < 7; i++ {
		b.Open("a", "")
		b.Open("b", "x")
		b.Close()
		if i%2 == 0 { // nested a inside a: candidate regions must not split
			b.Open("a", "")
			b.Open("b", "y")
			b.Close()
			b.Close()
		}
		b.Close()
	}
	b.Close()
	doc, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestPartitionDocTiles checks the fundamental partition invariants: the
// ranges tile [0, MaxPos+1) in order, and no range boundary splits a
// candidate region of the partition tag.
func TestPartitionDocTiles(t *testing.T) {
	doc := partitionTestDoc(t)
	tagA, ok := doc.LookupTag("a")
	if !ok {
		t.Fatal("tag a missing")
	}
	tagB, _ := doc.LookupTag("b")
	for k := 1; k <= 12; k++ {
		parts := PartitionDoc(doc, tagA, []xmltree.TagID{tagA, tagB}, k)
		if len(parts) == 0 || len(parts) > k {
			t.Fatalf("k=%d: got %d ranges", k, len(parts))
		}
		if parts[0].Lo != 0 || parts[len(parts)-1].Hi != doc.MaxPos()+1 {
			t.Fatalf("k=%d: ranges %v do not span the document", k, parts)
		}
		for i := 1; i < len(parts); i++ {
			if parts[i].Lo != parts[i-1].Hi {
				t.Fatalf("k=%d: gap/overlap between %v and %v", k, parts[i-1], parts[i])
			}
			if parts[i].Lo >= parts[i].Hi {
				t.Fatalf("k=%d: empty range %v", k, parts[i])
			}
		}
		// No candidate region crosses a range boundary.
		for _, c := range doc.NodesWithTag(tagA) {
			for _, r := range parts {
				if r.Contains(doc.Start(c)) {
					if doc.End(c) >= r.Hi {
						t.Fatalf("k=%d: candidate region [%d,%d] crosses range %v",
							k, doc.Start(c), doc.End(c), r)
					}
					break
				}
			}
		}
	}
}

// TestPartitionDocDegenerate covers the cases where partitioning is
// impossible: k<=1, an unknown root tag, and a root tag with a single
// top-level region (the document root itself).
func TestPartitionDocDegenerate(t *testing.T) {
	doc := partitionTestDoc(t)
	tagA, _ := doc.LookupTag("a")
	rootTag, _ := doc.LookupTag("root")
	for name, parts := range map[string][]Range{
		"k=1":      PartitionDoc(doc, tagA, nil, 1),
		"k=0":      PartitionDoc(doc, tagA, nil, 0),
		"no-tag":   PartitionDoc(doc, xmltree.TagID(99), nil, 4),
		"doc-root": PartitionDoc(doc, rootTag, nil, 4),
	} {
		if len(parts) != 1 || parts[0] != FullRange(doc) {
			t.Errorf("%s: got %v, want single full range", name, parts)
		}
	}
}

// TestPartitionDocBalance checks that on a uniformly folded document the
// postings weight is spread roughly evenly.
func TestPartitionDocBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := xmltree.RandomDocument(rng, 300, []string{"a", "b", "c"})
	doc := xmltree.Fold(base, 16)
	tagA, _ := doc.LookupTag("a")
	tagB, _ := doc.LookupTag("b")
	weight := func(r Range) int {
		n := 0
		for _, tg := range []xmltree.TagID{tagA, tagB} {
			for _, nd := range doc.NodesWithTag(tg) {
				if r.Contains(doc.Start(nd)) {
					n++
				}
			}
		}
		return n
	}
	const k = 4
	parts := PartitionDoc(doc, tagA, []xmltree.TagID{tagA, tagB}, k)
	if len(parts) < 2 {
		t.Fatalf("expected multiple partitions, got %v", parts)
	}
	total := 0
	for _, r := range parts {
		total += weight(r)
	}
	for _, r := range parts {
		w := weight(r)
		if w > total/len(parts)*3 {
			t.Errorf("partition %v holds %d of %d postings: badly unbalanced", r, w, total)
		}
	}
}

// TestScanTagRange checks the bounded scanner against a filtered full scan.
func TestScanTagRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	doc := xmltree.RandomDocument(rng, 500, []string{"a", "b", "c"})
	st, err := BuildStore(doc, 0)
	if err != nil {
		t.Fatal(err)
	}
	tagB, _ := doc.LookupTag("b")
	all := doc.NodesWithTag(tagB)
	if len(all) < 10 {
		t.Fatalf("workload too small: %d b nodes", len(all))
	}
	bounds := []Range{
		{0, doc.MaxPos() + 1},                           // full
		{doc.Start(all[3]), doc.Start(all[len(all)-3])}, // interior
		{0, 1},                           // empty prefix
		{doc.MaxPos(), doc.MaxPos() + 1}, // empty suffix
		{doc.Start(all[5]), doc.Start(all[5]) + 1}, // single node
	}
	for _, r := range bounds {
		var want []xmltree.NodeID
		for _, nd := range all {
			if r.Contains(doc.Start(nd)) {
				want = append(want, nd)
			}
		}
		sc := st.ScanTagRange(tagB, r.Lo, r.Hi)
		var got []xmltree.NodeID
		for {
			id, rec, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if rec.Start != doc.Start(id) {
				t.Fatalf("record mismatch for node %d", id)
			}
			got = append(got, id)
		}
		if len(got) != len(want) {
			t.Fatalf("range %v: got %d nodes, want %d", r, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("range %v: node %d = %d, want %d", r, i, got[i], want[i])
			}
		}
	}
}
