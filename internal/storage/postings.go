package storage

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"sjos/internal/xmltree"
)

// Compressed postings: every postings list in the store — one per element
// tag and one per indexed (tag, value) group — is stored as a sequence of
// delta+varint encoded blocks of at most postingsBlockLen NodeIDs. Blocks
// never cross a page boundary, so one block decode pins exactly one page,
// and the per-run block directory (kept in memory, like the tag directory
// itself) carries each block's first NodeID and first Start position. That
// directory makes SeekGE a binary search over in-memory block headers plus
// at most one in-block search, and NextBlock a straight block-by-block
// decode — the skip-ahead and batch contracts of the uncompressed format,
// at a fraction of the on-disk size.
//
// Block wire format (within a page payload):
//
//	uvarint count            — postings in this block (1..postingsBlockLen)
//	uvarint firstID          — the block's first NodeID
//	uvarint delta × (count-1) — id[k] - id[k-1]; strictly positive
const postingsBlockLen = 128

// maxBlockBytes bounds one encoded block (count and first up to 5 bytes,
// every delta up to 5 bytes).
const maxBlockBytes = 2*binary.MaxVarintLen32 + (postingsBlockLen-1)*binary.MaxVarintLen32

// blockRef locates one encoded block and summarises its content. The
// directory entry is what makes block-wise skip-ahead cheap: firstStart is
// consulted without touching the page.
type blockRef struct {
	page       PageID
	off        uint16 // byte offset within the page payload
	n          uint16 // postings in the block
	startIdx   int32  // index of the block's first posting within its run
	firstID    xmltree.NodeID
	firstStart xmltree.Pos
}

// postingsRun is one postings list: its length and the in-memory directory
// of its encoded blocks.
type postingsRun struct {
	count  int
	blocks []blockRef
}

// encodeBlock writes ids (strictly increasing, non-empty) into dst and
// returns the encoded length.
func encodeBlock(dst []byte, ids []xmltree.NodeID) int {
	n := binary.PutUvarint(dst, uint64(len(ids)))
	n += binary.PutUvarint(dst[n:], uint64(ids[0]))
	for k := 1; k < len(ids); k++ {
		n += binary.PutUvarint(dst[n:], uint64(ids[k]-ids[k-1]))
	}
	return n
}

// decodeBlock reads a block from a page payload into dst, validating the
// count against the directory and the strict-increase invariant (a corrupt
// but checksum-passing page must not produce garbage postings silently).
func decodeBlock(payload []byte, ref blockRef, dst []xmltree.NodeID) error {
	b := payload[ref.off:]
	count, n := binary.Uvarint(b)
	if n <= 0 || count != uint64(ref.n) {
		return fmt.Errorf("storage: postings block on page %d: count %d, directory says %d", ref.page, count, ref.n)
	}
	b = b[n:]
	first, n := binary.Uvarint(b)
	if n <= 0 {
		return fmt.Errorf("storage: postings block on page %d: bad first id", ref.page)
	}
	b = b[n:]
	id := xmltree.NodeID(first)
	dst[0] = id
	for k := 1; k < int(ref.n); k++ {
		d, n := binary.Uvarint(b)
		if n <= 0 || d == 0 {
			return fmt.Errorf("storage: postings block on page %d: bad delta at %d", ref.page, k)
		}
		b = b[n:]
		id += xmltree.NodeID(d)
		dst[k] = id
	}
	return nil
}

// postingsWriter appends encoded blocks to consecutive pages of a page
// file, sealing each page (checksum header) as it fills. It serves both the
// tag-postings segment and the value-index segment of a store build.
type postingsWriter struct {
	file    PageFile
	page    Page
	cur     PageID
	off     int // next free byte within the current page's payload
	dirty   bool
	bytes   int // total encoded bytes, for compression accounting
	scratch [maxBlockBytes]byte
}

func newPostingsWriter(file PageFile, first PageID) *postingsWriter {
	return &postingsWriter{file: file, cur: first}
}

// writeRun encodes ids as blocks, appending to the current page and
// advancing to fresh pages as needed; start resolves a NodeID to its Start
// position for the directory (document order is Start order, so a block's
// firstStart orders the whole run).
func (w *postingsWriter) writeRun(ids []xmltree.NodeID, start func(xmltree.NodeID) xmltree.Pos) (postingsRun, error) {
	run := postingsRun{count: len(ids)}
	for i := 0; i < len(ids); i += postingsBlockLen {
		blk := ids[i:]
		if len(blk) > postingsBlockLen {
			blk = blk[:postingsBlockLen]
		}
		enc := encodeBlock(w.scratch[:], blk)
		if w.off+enc > PayloadSize {
			if err := w.flushPage(); err != nil {
				return postingsRun{}, err
			}
		}
		copy(w.page[PageHeaderSize+w.off:], w.scratch[:enc])
		run.blocks = append(run.blocks, blockRef{
			page:       w.cur,
			off:        uint16(w.off),
			n:          uint16(len(blk)),
			startIdx:   int32(i),
			firstID:    blk[0],
			firstStart: start(blk[0]),
		})
		w.off += enc
		w.bytes += enc
		w.dirty = true
	}
	return run, nil
}

// flushPage seals and writes the current page and moves to the next one.
func (w *postingsWriter) flushPage() error {
	SealPage(w.cur, &w.page)
	if err := w.file.WritePage(w.cur, &w.page); err != nil {
		return fmt.Errorf("storage: write postings page %d: %w", w.cur, err)
	}
	w.page = Page{}
	w.cur++
	w.off = 0
	w.dirty = false
	return nil
}

// finish flushes the trailing partial page and returns the first unused
// page id.
func (w *postingsWriter) finish() (PageID, error) {
	if w.dirty {
		if err := w.flushPage(); err != nil {
			return 0, err
		}
	}
	return w.cur, nil
}

// runCursor iterates one postings run in document order through the buffer
// pool, decoding one block at a time. It carries the optional Start-range
// restriction of partition-parallel scans; TagScanner and the value-index
// scanners are thin layers over it.
type runCursor struct {
	store *Store
	ctx   context.Context
	run   postingsRun
	i     int // postings consumed (index within the run)

	blk  int // decoded block index, -1 = none
	bufN int
	buf  [postingsBlockLen]xmltree.NodeID

	// Range restriction (ScanTagRange and partitioned probes only).
	bounded bool
	lo, hi  xmltree.Pos
	seeked  bool // initial seek to lo performed
}

func (sc *runCursor) init(store *Store, ctx context.Context, run postingsRun) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc.store, sc.ctx, sc.run, sc.blk = store, ctx, run, -1
}

func (sc *runCursor) restrict(lo, hi xmltree.Pos) {
	sc.bounded, sc.lo, sc.hi = true, lo, hi
}

// loadBlock decodes block b into the cursor's buffer (one page pin).
func (sc *runCursor) loadBlock(b int) error {
	if sc.blk == b {
		return nil
	}
	ref := sc.run.blocks[b]
	pg, err := sc.store.pool.GetCtx(sc.ctx, ref.page)
	if err != nil {
		return err
	}
	err = decodeBlock(pg[PageHeaderSize:], ref, sc.buf[:ref.n])
	sc.store.pool.Unpin(ref.page, false)
	if err != nil {
		return err
	}
	sc.blk, sc.bufN = b, int(ref.n)
	sc.store.shared.blocksDecoded.Add(1)
	return nil
}

// blockFor returns the index of the block containing posting i.
func (sc *runCursor) blockFor(i int) int {
	// Runs are short directories; the common case advances into the next
	// block, so check it before binary searching.
	if sc.blk >= 0 {
		if ref := sc.run.blocks[sc.blk]; i >= int(ref.startIdx) && i < int(ref.startIdx)+int(ref.n) {
			return sc.blk
		}
		if n := sc.blk + 1; n < len(sc.run.blocks) {
			if ref := sc.run.blocks[n]; i >= int(ref.startIdx) && i < int(ref.startIdx)+int(ref.n) {
				return n
			}
		}
	}
	return sort.Search(len(sc.run.blocks), func(b int) bool {
		return int(sc.run.blocks[b].startIdx) > i
	}) - 1
}

// seek positions the cursor on the first posting with Start >= lo.
func (sc *runCursor) seek() error {
	sc.seeked = true
	return sc.advanceTo(sc.lo)
}

// advanceTo moves the cursor forward to the first unread posting with
// Start >= pos. The block directory is searched in memory; at most one
// block is decoded and binary-searched with node-record reads, so a seek
// costs O(log blocks) memory work plus O(log blockLen) page reads — the
// index skip-ahead behind SeekGE.
func (sc *runCursor) advanceTo(pos xmltree.Pos) error {
	blocks := sc.run.blocks
	b := sort.Search(len(blocks), func(k int) bool {
		return blocks[k].firstStart >= pos
	})
	j := sc.run.count
	if b < len(blocks) {
		j = int(blocks[b].startIdx)
	}
	if b > 0 {
		// The first in-range posting may sit inside the preceding block.
		ref := blocks[b-1]
		if err := sc.loadBlock(b - 1); err != nil {
			return err
		}
		lo, hi := 0, int(ref.n)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			rec, err := sc.store.NodeCtx(sc.ctx, sc.buf[mid])
			if err != nil {
				return err
			}
			if rec.Start < pos {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < int(ref.n) {
			j = int(ref.startIdx) + lo
		}
	}
	if j > sc.i {
		sc.i = j
	}
	return nil
}

// SeekGE skips the cursor forward to the first unread posting whose Start
// position is >= pos; a pos at or before the current position is a no-op.
// It returns how many postings were skipped. For a bounded cursor the
// pending initial seek to the range's Lo runs first, so SeekGE never
// escapes the range's lower bound.
func (sc *runCursor) SeekGE(pos xmltree.Pos) (int, error) {
	if sc.bounded && !sc.seeked {
		if err := sc.seek(); err != nil {
			return 0, err
		}
	}
	before := sc.i
	if err := sc.advanceTo(pos); err != nil {
		return 0, err
	}
	return sc.i - before, nil
}

// Next returns the next (NodeID, NodeRecord) of the run. ok is false when
// the postings (or, for a bounded cursor, the in-range postings) are
// exhausted.
func (sc *runCursor) Next() (xmltree.NodeID, NodeRecord, bool, error) {
	if sc.bounded && !sc.seeked {
		if err := sc.seek(); err != nil {
			return 0, NodeRecord{}, false, err
		}
	}
	if sc.i >= sc.run.count {
		return 0, NodeRecord{}, false, nil
	}
	b := sc.blockFor(sc.i)
	if err := sc.loadBlock(b); err != nil {
		return 0, NodeRecord{}, false, err
	}
	id := sc.buf[sc.i-int(sc.run.blocks[b].startIdx)]
	rec, err := sc.store.NodeCtx(sc.ctx, id)
	if err != nil {
		return 0, NodeRecord{}, false, err
	}
	if sc.bounded && rec.Start >= sc.hi {
		sc.i = sc.run.count // range exhausted: park at end
		return 0, NodeRecord{}, false, nil
	}
	sc.i++
	return id, rec, true, nil
}

// NextBlock fills ids with the run's next postings, returning how many were
// produced (0 at end of stream). Each encoded block is decoded once per
// pass (one page pin per block), and an unbounded cursor fetches no node
// records at all; a bounded cursor clips each decoded slice against the
// range end with one pin per node page.
func (sc *runCursor) NextBlock(ids []xmltree.NodeID) (int, error) {
	if sc.bounded && !sc.seeked {
		if err := sc.seek(); err != nil {
			return 0, err
		}
	}
	n := 0
	for n < len(ids) && sc.i < sc.run.count {
		b := sc.blockFor(sc.i)
		if err := sc.loadBlock(b); err != nil {
			return n, err
		}
		off := sc.i - int(sc.run.blocks[b].startIdx)
		avail := sc.bufN - off
		if want := len(ids) - n; avail > want {
			avail = want
		}
		copy(ids[n:n+avail], sc.buf[off:off+avail])
		if sc.bounded {
			kept, err := sc.clipAtRangeEnd(ids[n : n+avail])
			if err != nil {
				return n, err
			}
			n += kept
			sc.i += kept
			if kept < avail {
				sc.i = sc.run.count // range exhausted: park at end
				return n, nil
			}
			continue
		}
		n += avail
		sc.i += avail
	}
	return n, nil
}

// clipAtRangeEnd returns how many leading ids (in document order) still have
// Start < the range end, reading node records with one pin per node page.
func (sc *runCursor) clipAtRangeEnd(ids []xmltree.NodeID) (int, error) {
	var (
		pg      *Page
		curPage PageID
	)
	defer func() {
		if pg != nil {
			sc.store.pool.Unpin(curPage, false)
		}
	}()
	for k, id := range ids {
		p, off, err := sc.store.nodeSlot(id)
		if err != nil {
			return 0, err
		}
		if pg == nil || p != curPage {
			if pg != nil {
				sc.store.pool.Unpin(curPage, false)
				pg = nil
			}
			pg, err = sc.store.pool.GetCtx(sc.ctx, p)
			if err != nil {
				return 0, err
			}
			curPage = p
		}
		if start := xmltree.Pos(binary.LittleEndian.Uint32(pg[off:])); start >= sc.hi {
			return k, nil
		}
	}
	return len(ids), nil
}

// Remaining returns how many postings are left to scan. For a bounded
// cursor this is an upper bound: the tail beyond the range's end is
// included until the cursor reaches it.
func (sc *runCursor) Remaining() int { return sc.run.count - sc.i }
