// Package histogram implements positional histograms for XML cardinality
// estimation, following Wu/Patel/Jagadish, "Estimating Answer Sizes for XML
// Queries" (EDBT 2002) — the estimator the paper's experiments use ("All
// estimates for the join results were made using positional histograms").
//
// For every element tag, the (Start, End) region coordinates of its nodes
// are summarised in a G×G grid over the document's position space. The
// number of ancestor-descendant pairs between two tags is then estimated
// cell-pair-wise: a pair (a, b) joins iff a.Start < b.Start and
// b.End < a.End, and within a grid cell positions are assumed uniform, so
// each cell pair contributes count_A · count_B · P(aS < bS) · P(bE < aE)
// with the uniform-overlap probabilities in closed form.
//
// The package also keeps per-tag level histograms (to scale descendant
// estimates down to parent-child estimates) and a reservoir sample of text
// values (for value-predicate selectivities).
package histogram

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// DefaultGrid is the default histogram resolution (grid side length).
const DefaultGrid = 48

// sampleCap bounds the per-tag value reservoir sample.
const sampleCap = 256

// cell is one non-empty grid cell.
type cell struct {
	si, ei int // start-bucket and end-bucket index
	n      float64
}

// tagStats summarises one tag's node population.
type tagStats struct {
	count  int
	cells  []cell // sorted by (si, ei)
	siIdx  []int  // siIdx[s] = first index in cells with si >= s; len grid+1
	levels map[uint16]int
	sample []string
}

// Stats holds positional histograms for one document. All methods are safe
// for concurrent use once Build returns (queries share one Stats).
type Stats struct {
	grid    int
	maxPos  float64
	byTag   []tagStats
	tagByNm map[string]xmltree.TagID

	// Join-estimate memo. Reads are lock-free (estimator construction sits
	// on the per-query planning path and re-asks the same few tag pairs);
	// misses copy-on-write under memoMu. The key set is bounded by the
	// document's tag-pair combinations. Keys are the two tags and the axis
	// packed into a uint64 so lookups take the runtime's fast integer-map
	// path instead of hashing a struct.
	memoMu sync.Mutex
	memo   atomic.Pointer[map[uint64]float64]
}

// joinKey packs (ta, tb, ax) into one map key: tb sits in the low half, ta
// above it, and the axis in the top bit.
func joinKey(ta, tb xmltree.TagID, ax pattern.Axis) uint64 {
	k := uint64(ta)<<32 | uint64(tb)
	if ax == pattern.Child {
		k |= 1 << 63
	}
	return k
}

// Build scans doc once and constructs its statistics with the given grid
// resolution. When grid <= 0 the resolution adapts to the document: √n
// clamped to [DefaultGrid, 512], so wide flat documents (whose records are
// much narrower than a coarse bucket) still estimate parent-child joins
// sensibly. The value-sample reservoir uses a fixed seed, so Build is
// deterministic.
func Build(doc *xmltree.Document, grid int) *Stats {
	if grid <= 0 {
		grid = int(math.Sqrt(float64(doc.NumNodes())))
		if grid < DefaultGrid {
			grid = DefaultGrid
		}
		if grid > 512 {
			grid = 512
		}
	}
	s := &Stats{
		grid:    grid,
		maxPos:  float64(doc.MaxPos()) + 1,
		byTag:   make([]tagStats, doc.NumTags()),
		tagByNm: make(map[string]xmltree.TagID, doc.NumTags()),
	}
	for t := 0; t < doc.NumTags(); t++ {
		s.tagByNm[doc.TagName(xmltree.TagID(t))] = xmltree.TagID(t)
	}
	dense := make([][]float64, doc.NumTags())
	rng := rand.New(rand.NewSource(0x5105))
	seen := make([]int, doc.NumTags())
	for i := 0; i < doc.NumNodes(); i++ {
		id := xmltree.NodeID(i)
		t := doc.Tag(id)
		ts := &s.byTag[t]
		ts.count++
		if ts.levels == nil {
			ts.levels = make(map[uint16]int)
		}
		ts.levels[doc.Level(id)]++
		if dense[t] == nil {
			dense[t] = make([]float64, grid*grid)
		}
		si := s.bucket(float64(doc.Start(id)))
		ei := s.bucket(float64(doc.End(id)))
		dense[t][si*grid+ei]++
		// Reservoir-sample the node's text value.
		if v := doc.Value(id); v != "" {
			seen[t]++
			if len(ts.sample) < sampleCap {
				ts.sample = append(ts.sample, v)
			} else if j := rng.Intn(seen[t]); j < sampleCap {
				ts.sample[j] = v
			}
		}
	}
	for t := range dense {
		ts := &s.byTag[t]
		if dense[t] != nil {
			for si := 0; si < grid; si++ {
				for ei := 0; ei < grid; ei++ {
					if n := dense[t][si*grid+ei]; n > 0 {
						ts.cells = append(ts.cells, cell{si: si, ei: ei, n: n})
					}
				}
			}
		}
		// Index the si-sorted cells so join estimation can restrict its
		// scan to the start-bucket range an ancestor cell can contain.
		ts.siIdx = make([]int, grid+1)
		j := 0
		for si := 0; si <= grid; si++ {
			for j < len(ts.cells) && ts.cells[j].si < si {
				j++
			}
			ts.siIdx[si] = j
		}
	}
	return s
}

func (s *Stats) bucket(p float64) int {
	b := int(p / s.maxPos * float64(s.grid))
	if b >= s.grid {
		b = s.grid - 1
	}
	return b
}

// bucketRange returns the [lo, hi) position interval of bucket b.
func (s *Stats) bucketRange(b int) (float64, float64) {
	w := s.maxPos / float64(s.grid)
	return float64(b) * w, float64(b+1) * w
}

// Grid returns the histogram resolution.
func (s *Stats) Grid() int { return s.grid }

// TagCount returns the number of nodes with tag t.
func (s *Stats) TagCount(t xmltree.TagID) float64 {
	if int(t) >= len(s.byTag) {
		return 0
	}
	return float64(s.byTag[t].count)
}

// TagCountName is TagCount by tag name; unknown tags have count 0.
func (s *Stats) TagCountName(name string) float64 {
	t, ok := s.tagByNm[name]
	if !ok {
		return 0
	}
	return s.TagCount(t)
}

// Lookup resolves a tag name.
func (s *Stats) Lookup(name string) (xmltree.TagID, bool) {
	t, ok := s.tagByNm[name]
	return t, ok
}

// EstimateJoin estimates the number of (a, b) node pairs where a node with
// tag ta stands in the given structural relationship (as ancestor/parent)
// to a node with tag tb.
func (s *Stats) EstimateJoin(ta, tb xmltree.TagID, ax pattern.Axis) float64 {
	if int(ta) >= len(s.byTag) || int(tb) >= len(s.byTag) {
		return 0
	}
	k := joinKey(ta, tb, ax)
	if m := s.memo.Load(); m != nil {
		if v, ok := (*m)[k]; ok {
			return v
		}
	}
	desc := s.estimateDescendant(ta, tb)
	v := desc
	if ax == pattern.Child {
		v = desc * s.parentChildRatio(ta, tb)
	}
	s.memoMu.Lock()
	old := s.memo.Load()
	next := make(map[uint64]float64, 8)
	if old != nil {
		for ok, ov := range *old {
			next[ok] = ov
		}
	}
	next[k] = v
	s.memo.Store(&next)
	s.memoMu.Unlock()
	return v
}

// EstimateJoinName is EstimateJoin by tag names.
func (s *Stats) EstimateJoinName(a, b string, ax pattern.Axis) (float64, error) {
	ta, ok := s.tagByNm[a]
	if !ok {
		return 0, fmt.Errorf("histogram: unknown tag %q", a)
	}
	tb, ok := s.tagByNm[b]
	if !ok {
		return 0, fmt.Errorf("histogram: unknown tag %q", b)
	}
	return s.EstimateJoin(ta, tb, ax), nil
}

// Selectivity estimates the edge selectivity: estimated join pairs divided
// by the size of the Cartesian product. Returns 0 when either side is
// empty.
func (s *Stats) Selectivity(ta, tb xmltree.TagID, ax pattern.Axis) float64 {
	na, nb := s.TagCount(ta), s.TagCount(tb)
	if na == 0 || nb == 0 {
		return 0
	}
	return s.EstimateJoin(ta, tb, ax) / (na * nb)
}

func (s *Stats) estimateDescendant(ta, tb xmltree.TagID) float64 {
	ca := s.byTag[ta].cells
	tbStats := &s.byTag[tb]
	total := 0.0
	for _, a := range ca {
		as0, as1 := s.bucketRange(a.si)
		ae0, ae1 := s.bucketRange(a.ei)
		// A descendant must start within a's region, so only b-cells
		// with si in [a.si, a.ei] can contribute; the si index narrows
		// the scan to exactly that range.
		hi := a.ei + 1
		if hi > s.grid {
			hi = s.grid
		}
		for i := tbStats.siIdx[a.si]; i < tbStats.siIdx[hi]; i++ {
			b := tbStats.cells[i]
			if b.ei > a.ei {
				continue // cannot end inside a
			}
			bs0, bs1 := s.bucketRange(b.si)
			be0, be1 := s.bucketRange(b.ei)
			if as0 >= bs1 || be0 >= ae1 {
				continue
			}
			p := probLess(as0, as1, bs0, bs1) * probLess(be0, be1, ae0, ae1)
			if p > 0 {
				total += a.n * b.n * p
			}
		}
	}
	if ta == tb {
		// A node never joins with itself, but the cell-pair sum counts
		// each self-pair with probability P(x<x')·P(e'<e) = 1/4 under
		// the uniform within-cell assumption. Remove that contribution.
		total -= 0.25 * float64(s.byTag[ta].count)
		if total < 0 {
			total = 0
		}
	}
	return total
}

// parentChildRatio estimates the fraction of ancestor-descendant pairs that
// are direct parent-child pairs, from the per-tag level histograms: among
// level combinations that can nest (la < lb), only la+1 == lb can be
// parent-child. Level and position are assumed independent (the standard
// uniformity assumption; exact for the regular datasets used here).
func (s *Stats) parentChildRatio(ta, tb xmltree.TagID) float64 {
	la, lb := s.byTag[ta].levels, s.byTag[tb].levels
	if len(la) == 0 || len(lb) == 0 {
		return 0
	}
	var nested, direct float64
	for al, an := range la {
		for bl, bn := range lb {
			if bl > al {
				w := float64(an) * float64(bn)
				nested += w
				if bl == al+1 {
					direct += w
				}
			}
		}
	}
	if nested == 0 {
		return 0
	}
	return direct / nested
}

// probLess returns P(X < Y) for independent X ~ U[a,b), Y ~ U[c,d).
func probLess(a, b, c, d float64) float64 {
	if b <= c {
		return 1
	}
	if d <= a {
		return 0
	}
	// P(X < Y) = E_Y[ F_X(Y) ] with F_X the clamped linear CDF of X.
	// Integrate F_X over [c,d) piecewise at the knots a and b.
	integral := 0.0
	// Segment of [c,d) below a contributes 0.
	lo := maxf(c, a)
	hi := minf(d, b)
	if hi > lo {
		// Linear part: ∫ (y-a)/(b-a) dy over [lo,hi).
		integral += ((hi-a)*(hi-a) - (lo-a)*(lo-a)) / (2 * (b - a))
	}
	if d > b {
		// Part of [c,d) above b contributes 1 each.
		integral += d - maxf(c, b)
	}
	return integral / (d - c)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// PredicateSelectivity estimates the fraction of tag-t nodes whose text
// value satisfies (op, value), from the reservoir sample. Numeric
// comparison is used when both sides parse as numbers, lexicographic
// otherwise. A floor of 1/count keeps estimates non-zero for equality on
// values absent from the sample.
func (s *Stats) PredicateSelectivity(t xmltree.TagID, op pattern.CmpOp, value string) float64 {
	if op == pattern.CmpNone {
		return 1
	}
	if int(t) >= len(s.byTag) || s.byTag[t].count == 0 {
		return 0
	}
	ts := &s.byTag[t]
	if len(ts.sample) == 0 {
		return 1 / float64(ts.count)
	}
	match := 0
	for _, v := range ts.sample {
		if EvalPredicate(v, op, value) {
			match++
		}
	}
	sel := float64(match) / float64(len(ts.sample))
	if floor := 1 / float64(ts.count); sel < floor {
		sel = floor
	}
	return sel
}

// EvalPredicate reports whether a node text value satisfies (op, rhs). It
// forwards to pattern.EvalPredicate, the single definition of the predicate
// semantics shared by the estimator, the executor's filter operator and the
// value index.
func EvalPredicate(v string, op pattern.CmpOp, rhs string) bool {
	return pattern.EvalPredicate(v, op, rhs)
}

// sortedLevels returns a tag's populated levels in ascending order; used by
// tests and debug tooling.
func (s *Stats) sortedLevels(t xmltree.TagID) []uint16 {
	var out []uint16
	for l := range s.byTag[t].levels {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
