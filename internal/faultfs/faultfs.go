// Package faultfs wraps a storage.PageFile with configurable fault
// injection: deterministic fail-nth-read, seeded probabilistic failures,
// transient-vs-permanent errors, latency injection, and page-bit corruption.
// It is the chaos harness behind the executor's fault differential tests and
// xqbench -chaos — the same wrapper in both places, so what the tests prove
// is what the benchmark exercises.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sjos/internal/storage"
)

// ErrInjected is the base error of every injected read failure; wrap
// detection works through errors.Is on the returned error chain.
var ErrInjected = errors.New("faultfs: injected fault")

// Policy configures which reads fail and how. The zero Policy injects
// nothing. Counters (nth-read indices) are 1-based and count physical
// ReadPage calls on the wrapper since the last SetPolicy.
type Policy struct {
	// FailNthRead fails reads by ordinal: with Transient false the Nth and
	// every later read fail (a device that died); with Transient true only
	// the Nth read fails (a blip retry can heal). 0 disables.
	FailNthRead int
	// FailProb fails each read independently with this probability, drawn
	// from a rand.Rand seeded with Seed — the same seed replays the same
	// fault schedule. Transient applies.
	FailProb float64
	// Seed seeds the probabilistic fault stream (0 is a valid fixed seed).
	Seed int64
	// Transient marks injected failures retryable (storage.MarkTransient),
	// so the buffer pool's RetryPolicy applies to them.
	Transient bool
	// CorruptNthRead flips one payload bit in the Nth read's result instead
	// of failing it: the read "succeeds" but checksum verification must
	// catch it. With Transient false the page is remembered and every later
	// read of it is corrupted too (damage at rest); with Transient true
	// only the Nth read is damaged (a torn read in flight). 0 disables.
	CorruptNthRead int
	// Latency delays every read (sleep before the inner read), for
	// simulating slow devices. 0 disables.
	Latency time.Duration
	// MaxFaults caps the total number of injected faults (failures plus
	// corruptions); once reached, reads pass through untouched. 0 means
	// unlimited.
	MaxFaults int
}

// File wraps an inner storage.PageFile with fault injection under a Policy.
// It is safe for concurrent use.
type File struct {
	inner storage.PageFile

	mu        sync.Mutex
	policy    Policy
	rng       *rand.Rand
	reads     uint64
	faults    uint64
	corrupted map[storage.PageID]bool // pages with permanent at-rest damage
}

// Wrap returns inner behind fault injection with the given policy.
func Wrap(inner storage.PageFile, policy Policy) *File {
	f := &File{inner: inner}
	f.SetPolicy(policy)
	return f
}

// SetPolicy replaces the policy and resets the read/fault counters, the
// probabilistic fault stream, and the permanent-corruption memory — each
// SetPolicy starts a fresh, reproducible fault schedule.
func (f *File) SetPolicy(policy Policy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policy = policy
	f.rng = rand.New(rand.NewSource(policy.Seed))
	f.reads = 0
	f.faults = 0
	f.corrupted = nil
}

// Reads returns how many ReadPage calls the wrapper has seen since the last
// SetPolicy.
func (f *File) Reads() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads
}

// FaultsInjected returns how many reads were sabotaged (failed or
// corrupted) since the last SetPolicy. The facade surfaces it as
// sjos_faults_injected_total.
func (f *File) FaultsInjected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// verdict is the per-read decision taken under the mutex.
type verdict struct {
	fail    bool
	corrupt bool
	ordinal uint64
	latency time.Duration
}

func (f *File) decide(id storage.PageID) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	v := verdict{ordinal: f.reads, latency: f.policy.Latency}
	if f.policy.MaxFaults > 0 && f.faults >= uint64(f.policy.MaxFaults) {
		return v
	}
	p := f.policy
	switch {
	case f.corrupted[id]:
		v.corrupt = true
	case p.CorruptNthRead > 0 && f.reads == uint64(p.CorruptNthRead):
		v.corrupt = true
		if !p.Transient {
			if f.corrupted == nil {
				f.corrupted = make(map[storage.PageID]bool)
			}
			f.corrupted[id] = true
		}
	case p.FailNthRead > 0 && (f.reads == uint64(p.FailNthRead) ||
		(!p.Transient && f.reads > uint64(p.FailNthRead))):
		v.fail = true
	case p.FailProb > 0 && f.rng.Float64() < p.FailProb:
		v.fail = true
	}
	if v.fail || v.corrupt {
		f.faults++
	}
	return v
}

// ReadPage implements storage.PageFile with the policy's faults applied.
func (f *File) ReadPage(id storage.PageID, dst *storage.Page) error {
	v := f.decide(id)
	if v.latency > 0 {
		time.Sleep(v.latency)
	}
	if v.fail {
		err := fmt.Errorf("%w (read #%d, page %d)", ErrInjected, v.ordinal, id)
		if f.transient() {
			return storage.MarkTransient(err)
		}
		return err
	}
	if err := f.inner.ReadPage(id, dst); err != nil {
		return err
	}
	if v.corrupt {
		// Flip one payload bit past the integrity header: the read
		// succeeds but VerifyPage must flag the page.
		dst[storage.PageHeaderSize+int(v.ordinal)%64] ^= 0x01
	}
	return nil
}

func (f *File) transient() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.policy.Transient
}

// WritePage passes through to the inner file.
func (f *File) WritePage(id storage.PageID, src *storage.Page) error {
	return f.inner.WritePage(id, src)
}

// NumPages passes through to the inner file.
func (f *File) NumPages() int { return f.inner.NumPages() }
