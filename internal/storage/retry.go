package storage

import (
	"context"
	"math/rand"
	"time"
)

// RetryPolicy bounds how the buffer pool re-reads a page after a transient
// failure or a checksum mismatch: exponential backoff starting at BaseDelay,
// doubling per attempt, capped at MaxDelay, with a ±Jitter fraction of
// randomisation so concurrent retries de-synchronise. All waits are
// context-aware — a cancelled query abandons its backoff immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of read attempts, including the
	// first. 0 selects DefaultRetryPolicy's value; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the wait before the second attempt; each further wait
	// doubles it. 0 selects DefaultRetryPolicy's value.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 selects DefaultRetryPolicy's value).
	MaxDelay time.Duration
	// Jitter randomises each wait by ±(Jitter × delay); 0 <= Jitter <= 1.
	Jitter float64
}

// DefaultRetryPolicy is the pool's out-of-the-box policy: four attempts with
// 200µs/400µs/800µs backoffs — enough to ride out a torn read or a flaky
// I/O burst without stretching a doomed query past a few milliseconds.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   200 * time.Microsecond,
	MaxDelay:    10 * time.Millisecond,
	Jitter:      0.25,
}

// normalized fills zero fields from DefaultRetryPolicy.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryPolicy.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryPolicy.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryPolicy.MaxDelay
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// backoff returns the wait before attempt+1 (attempt counts completed
// attempts, so the first retry passes 1).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay << uint(attempt-1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		// rand's global source is concurrency-safe; retry determinism is
		// not needed (tests assert outcomes, not wait lengths).
		f := 1 + p.Jitter*(2*rand.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// sleep waits for d or until ctx is cancelled, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
