package sjos

// Corpus differential suite: a corpus over N documents must answer exactly
// as the concatenation of N standalone single-document databases, for every
// optimizer method and every execution mode — plus first-k, count-only,
// shared derived handles, and a chaos run with one failing shard.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sjos/internal/datagen"
	"sjos/internal/faultfs"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// corpusFixtureDocs generates n distinct small dblp-like documents.
func corpusFixtureDocs(t *testing.T, n int) ([]string, []*xmltree.Document) {
	return corpusFixtureDocsScale(t, n, 0.02)
}

func corpusFixtureDocsScale(t *testing.T, n int, scale float64) ([]string, []*xmltree.Document) {
	t.Helper()
	ids := make([]string, n)
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		doc, err := datagen.Generate(datagen.Config{Name: "dblp", Scale: scale, Seed: int64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}[i%6] + strings.Repeat("x", i/6)
		docs[i] = doc
	}
	return ids, docs
}

// buildTestCorpus assembles the documents into a corpus (white-box: adds
// pre-built documents directly, so standalone databases over the very same
// documents are the ground truth).
func buildTestCorpus(t *testing.T, ids []string, docs []*xmltree.Document, opts *CorpusOptions) *Corpus {
	t.Helper()
	b := NewCorpusBuilder(opts)
	for i, doc := range docs {
		if err := b.add(ids[i], doc, nil); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// standaloneResults computes the ground truth: each document queried alone,
// results concatenated in document order.
func standaloneResults(t *testing.T, ids []string, docs []*xmltree.Document, pat *Pattern) []CorpusMatch {
	t.Helper()
	var want []CorpusMatch
	for gi, doc := range docs {
		db, err := fromDocument(doc, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(pat.String(), MethodDPP)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range res.Matches {
			want = append(want, CorpusMatch{DocID: ids[gi], Doc: gi, Nodes: m})
		}
	}
	return want
}

func sameCorpusMatches(got, want []CorpusMatch) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].DocID != want[i].DocID || got[i].Doc != want[i].Doc {
			return false
		}
		if len(got[i].Nodes) != len(want[i].Nodes) {
			return false
		}
		for u := range got[i].Nodes {
			if got[i].Nodes[u] != want[i].Nodes[u] {
				return false
			}
		}
	}
	return true
}

func TestCorpusDifferential(t *testing.T) {
	ids, docs := corpusFixtureDocs(t, 5)
	c := buildTestCorpus(t, ids, docs, &CorpusOptions{Shards: 3})
	if c.NumShards() != 3 || c.NumDocs() != 5 {
		t.Fatalf("shards=%d docs=%d, want 3/5", c.NumShards(), c.NumDocs())
	}
	methods := []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy}
	modes := []struct {
		name string
		opts RunOptions
	}{
		{"serial-batch", RunOptions{}},
		{"serial-tuple", RunOptions{ExecOptions: ExecOptions{NoBatch: true}}},
		{"parallel-batch", RunOptions{Workers: 2}},
		{"parallel-tuple", RunOptions{ExecOptions: ExecOptions{NoBatch: true}, Workers: 2}},
	}
	for _, src := range []string{
		`//article//author`,
		`//article[year < 1980]/title`,
	} {
		pat := MustParsePattern(src)
		want := standaloneResults(t, ids, docs, pat)
		if len(want) == 0 {
			t.Fatalf("%s: ground truth is empty — fixture too small", src)
		}
		for _, m := range methods {
			opt, err := c.Optimize(pat, m, 0)
			if err != nil {
				t.Fatalf("%s/%v: optimize: %v", src, m, err)
			}
			for _, mode := range modes {
				res, err := c.Run(context.Background(), pat, opt.Plan, mode.opts)
				if err != nil {
					t.Fatalf("%s/%v/%s: %v", src, m, mode.name, err)
				}
				if !sameCorpusMatches(res.Matches, want) {
					t.Fatalf("%s/%v/%s: corpus result (%d matches) differs from per-document concatenation (%d)",
						src, m, mode.name, len(res.Matches), len(want))
				}
				if res.Count != len(want) {
					t.Fatalf("%s/%v/%s: Count = %d, want %d", src, m, mode.name, res.Count, len(want))
				}
				if res.ShardsQueried != 3 {
					t.Fatalf("%s/%v/%s: ShardsQueried = %d, want 3", src, m, mode.name, res.ShardsQueried)
				}
			}
		}
	}
}

func TestCorpusLimitAndCountOnly(t *testing.T) {
	ids, docs := corpusFixtureDocs(t, 4)
	c := buildTestCorpus(t, ids, docs, &CorpusOptions{Shards: 2})
	pat := MustParsePattern(`//article//author`)
	want := standaloneResults(t, ids, docs, pat)
	total := len(want)
	if total < 4 {
		t.Fatalf("fixture too small: %d matches", total)
	}
	opt, err := c.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}

	full, err := c.Run(context.Background(), pat, opt.Plan, RunOptions{CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Count != total || full.Matches != nil {
		t.Fatalf("count-only: Count=%d Matches=%v, want %d/nil", full.Count, full.Matches, total)
	}

	for _, k := range []int{1, 2, total - 1, total, total + 7} {
		res, err := c.Run(context.Background(), pat, opt.Plan, RunOptions{ExecOptions: ExecOptions{Limit: k}})
		if err != nil {
			t.Fatalf("limit %d: %v", k, err)
		}
		n := min(k, total)
		if !sameCorpusMatches(res.Matches, want[:n]) {
			t.Fatalf("limit %d: got %d matches, want the first %d of the concatenation", k, len(res.Matches), n)
		}
		// Limit composes with CountOnly: count the limited prefix.
		cres, err := c.Run(context.Background(), pat, opt.Plan, RunOptions{ExecOptions: ExecOptions{Limit: k}, CountOnly: true})
		if err != nil {
			t.Fatalf("limit %d count-only: %v", k, err)
		}
		if cres.Count != n || cres.Matches != nil {
			t.Fatalf("limit %d count-only: Count=%d, want %d", k, cres.Count, n)
		}
	}
}

func TestCorpusQueryContext(t *testing.T) {
	ids, docs := corpusFixtureDocs(t, 3)
	c := buildTestCorpus(t, ids, docs, &CorpusOptions{Shards: 2})
	pat := MustParsePattern(`//article//author`)
	want := standaloneResults(t, ids, docs, pat)

	res, err := c.Query(`//article//author`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCorpusMatches(res.Matches, want) {
		t.Fatalf("QueryContext result differs from per-document concatenation")
	}
	if res.CachedPlan {
		t.Fatal("first query reported a cached plan")
	}
	if res.PlanText == "" || res.Plan == nil {
		t.Fatal("missing plan in query result")
	}

	// Second identical query must hit the corpus plan cache — including
	// through a derived parallel handle, which shares it.
	res2, err := c.WithParallelism(2).QueryContext(context.Background(), `//article//author`, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CachedPlan {
		t.Fatal("derived handle did not see the cached plan")
	}
	if !sameCorpusMatches(res2.Matches, want) {
		t.Fatal("parallel derived-handle result differs")
	}
	if cs := c.CacheStats(); cs.Hits == 0 {
		t.Fatalf("corpus cache stats show no hit: %+v", cs)
	}

	// Tracing produces one merged corpus trace.
	res3, err := c.QueryContext(context.Background(), `//article//author`, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP, Trace: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Trace == nil || res3.Trace.Rows != int64(len(want)) {
		t.Fatalf("merged trace: %+v, want root Rows = %d", res3.Trace, len(want))
	}

	// RebuildStats bumps the stats version: cached plans are invalidated.
	c.RebuildStats()
	res4, err := c.QueryContext(context.Background(), `//article//author`, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
	if err != nil {
		t.Fatal(err)
	}
	if res4.CachedPlan {
		t.Fatal("plan survived a stats rebuild")
	}
	if !sameCorpusMatches(res4.Matches, want) {
		t.Fatal("post-rebuild result differs")
	}
}

// TestCorpusChaosOneShard injects read failures into exactly one shard's
// page file: every query must return either the exact fault-free result or
// the injected typed error — never a partial merge.
func TestCorpusChaosOneShard(t *testing.T) {
	// Large enough documents that the 8-frame pool cannot hold a shard's
	// working set: every run performs physical reads the policy can hit.
	ids, docs := corpusFixtureDocsScale(t, 4, 0.5)
	var faulty *faultfs.File
	c := buildTestCorpus(t, ids, docs, &CorpusOptions{
		Shards:  2,
		Options: Options{PoolFrames: 8},
		ShardPageFile: func(shard, replica int) PageFile {
			f := storage.NewMemFile()
			if shard != 1 {
				return f
			}
			faulty = faultfs.Wrap(f, faultfs.Policy{})
			return faulty
		},
	})
	if faulty == nil {
		t.Fatal("shard 1 was not built on the fault-injecting file")
	}
	pat := MustParsePattern(`//article//author`)
	want := standaloneResults(t, ids, docs, pat)
	opt, err := c.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts RunOptions) (*CorpusRunResult, error) {
		res, err := c.Run(context.Background(), pat, opt.Plan, opts)
		var pe *PanicError
		if errors.As(err, &pe) {
			t.Fatalf("panic escaped as error: %v\n%s", pe, pe.Stack)
		}
		return res, err
	}
	modes := []RunOptions{
		{},
		{Workers: 2},
		{ExecOptions: ExecOptions{NoBatch: true}},
	}
	var fired, healed int
	for _, mode := range modes {
		faulty.SetPolicy(faultfs.Policy{})
		base, err := run(mode)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		if !sameCorpusMatches(base.Matches, want) {
			t.Fatal("baseline differs from per-document concatenation")
		}
		reads := int(faulty.Reads())
		for _, p := range faultPoints(reads) {
			// Permanent failure in one shard: the whole query fails with the
			// injected error (no partial result), or the fault point was past
			// this run's reads and the result is exact.
			faulty.SetPolicy(faultfs.Policy{FailNthRead: p})
			if res, err := run(mode); err != nil {
				fired++
				if !errors.Is(err, faultfs.ErrInjected) {
					t.Fatalf("failNth=%d: error = %v, want injected", p, err)
				}
				if res != nil {
					t.Fatalf("failNth=%d: partial result alongside error", p)
				}
			} else if !sameCorpusMatches(res.Matches, want) {
				t.Fatalf("failNth=%d: result differs from fault-free answer", p)
			}

			// Transient failure: the shard pool's retry loop heals it.
			faulty.SetPolicy(faultfs.Policy{FailNthRead: p, Transient: true})
			res, err := run(mode)
			if err != nil {
				t.Fatalf("transient failNth=%d: %v", p, err)
			}
			if !sameCorpusMatches(res.Matches, want) {
				t.Fatalf("transient failNth=%d: result differs", p)
			}
			if faulty.FaultsInjected() > 0 {
				healed++
			}
		}
	}
	if fired == 0 {
		t.Fatal("no permanent fault ever fired — sweep did not cover the read schedule")
	}
	if healed == 0 {
		t.Fatal("no transient fault was healed")
	}
	// The corpus surfaces the shard's injected-fault count in its health
	// and aggregated metrics (counters reset on SetPolicy, so force one
	// fresh fault and read them while it is live).
	faulty.SetPolicy(faultfs.Policy{FailNthRead: 1, Transient: true, MaxFaults: 1})
	if _, err := run(RunOptions{}); err != nil {
		t.Fatalf("transient warm-up: %v", err)
	}
	var health uint64
	for _, h := range c.Health() {
		health += h.FaultsInjected
	}
	if health == 0 || c.Metrics().FaultsInjected != health {
		t.Fatalf("fault counters: health=%d metrics=%d", health, c.Metrics().FaultsInjected)
	}
}

// TestDerivedHandlesShareState pins the WithParallelism contract for both
// facades: derived handles share the plan cache and the admission
// controller with their parent.
func TestDerivedHandlesShareState(t *testing.T) {
	doc, err := datagen.Generate(datagen.Config{Name: "dblp", Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	db, err := fromDocument(doc, &Options{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`//article//author`, MethodDPP); err != nil {
		t.Fatal(err)
	}
	par := db.WithParallelism(2)
	res, err := par.QueryContext(context.Background(), `//article//author`, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CachedPlan {
		t.Fatal("derived database handle missed the shared plan cache")
	}
	if db.CacheStats() != par.CacheStats() {
		t.Fatal("cache stats diverge across derived handles")
	}
	// Draining the parent shuts down the derived handle too (one shared
	// admission controller), and both observe the rejection counter.
	if err := db.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := par.Query(`//article//author`, MethodDPP); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("derived handle after parent drain: %v, want ErrShuttingDown", err)
	}
	if db.AdmissionStats() != par.AdmissionStats() || db.AdmissionStats().Rejected == 0 {
		t.Fatalf("admission stats diverge or missed the rejection: %+v vs %+v",
			db.AdmissionStats(), par.AdmissionStats())
	}
}

func TestCorpusDrainAndAdmission(t *testing.T) {
	ids, docs := corpusFixtureDocs(t, 2)
	c := buildTestCorpus(t, ids, docs, &CorpusOptions{Shards: 2, Options: Options{MaxInFlight: 2}})
	if _, err := c.Query(`//article//author`, MethodDPP); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err := c.Query(`//article//author`, MethodDPP)
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-drain corpus query: %v, want ErrShuttingDown", err)
	}
	if c.AdmissionStats().Rejected == 0 {
		t.Fatal("corpus admission counters missed the rejection")
	}
	// Derived corpus handles share the drained controller.
	if _, err := c.WithParallelism(2).Query(`//article//author`, MethodDPP); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("derived corpus handle after drain: %v, want ErrShuttingDown", err)
	}
}

func TestCorpusAccessors(t *testing.T) {
	ids, docs := corpusFixtureDocs(t, 4)
	c := buildTestCorpus(t, ids, docs, &CorpusOptions{Shards: 3})
	if got := c.DocIDs(); len(got) != 4 || got[0] != ids[0] || got[3] != ids[3] {
		t.Fatalf("DocIDs = %v", got)
	}
	for _, id := range ids {
		s, ok := c.ShardOf(id)
		if !ok || s < 0 || s >= c.NumShards() {
			t.Fatalf("ShardOf(%q) = %d, %v", id, s, ok)
		}
	}
	if _, ok := c.ShardOf("no-such-doc"); ok {
		t.Fatal("ShardOf found a nonexistent document")
	}

	// Per-document node accessors agree with the standalone document.
	pat := MustParsePattern(`//article/title`)
	want := standaloneResults(t, ids, docs, pat)
	res, err := c.Query(`//article/title`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCorpusMatches(res.Matches, want) {
		t.Fatal("accessor fixture query differs")
	}
	m := res.Matches[0]
	gi := m.Doc
	for u, id := range m.Nodes {
		wantTag := docs[gi].TagName(docs[gi].Tag(id))
		if tag, ok := c.TagName(m.DocID, id); !ok || tag != wantTag {
			t.Fatalf("TagName(%q, %d) = %q, %v; want %q", m.DocID, id, tag, ok, wantTag)
		}
		if val, ok := c.Value(m.DocID, id); !ok || val != docs[gi].Value(id) {
			t.Fatalf("Value mismatch at slot %d", u)
		}
	}
	if _, ok := c.TagName(m.DocID, NodeID(1<<30)); ok {
		t.Fatal("TagName accepted an out-of-range node")
	}

	// Health covers every shard and counts exactly the corpus's documents
	// and nodes (synthetic forest roots excluded).
	var hd, hn int
	for _, h := range c.Health() {
		hd += h.Docs
		hn += h.Nodes
	}
	wantNodes := 0
	for _, d := range docs {
		wantNodes += d.NumNodes()
	}
	if hd != 4 || hn != wantNodes {
		t.Fatalf("health sums: docs=%d nodes=%d, want 4/%d", hd, hn, wantNodes)
	}

	var sb strings.Builder
	c.WriteMetrics(&sb)
	for _, want := range []string{"sjos_queries_total", "sjos_pool_hits_total", "sjos_plancache_hits_total"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("corpus metrics exposition missing %s", want)
		}
	}
}

func TestAsCorpus(t *testing.T) {
	doc, err := datagen.Generate(datagen.Config{Name: "dblp", Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	db, err := fromDocument(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := db.AsCorpus("solo")
	if c.NumDocs() != 1 || c.NumShards() != 1 {
		t.Fatalf("docs=%d shards=%d", c.NumDocs(), c.NumShards())
	}
	want, err := db.Query(`//article//author`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(`//article//author`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != len(want.Matches) || len(got.Matches) != len(want.Matches) {
		t.Fatalf("AsCorpus count = %d, database = %d", got.Count, len(want.Matches))
	}
	for i := range got.Matches {
		if got.Matches[i].DocID != "solo" || got.Matches[i].Doc != 0 {
			t.Fatalf("match %d: %+v", i, got.Matches[i])
		}
		for u := range got.Matches[i].Nodes {
			if got.Matches[i].Nodes[u] != want.Matches[i][u] {
				t.Fatalf("match %d slot %d differs", i, u)
			}
		}
	}
	// One shared plan cache: the corpus query warmed it for the database.
	res, err := db.Query(`//article//author`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CachedPlan {
		t.Fatal("AsCorpus does not share the database's plan cache")
	}
}

func TestCorpusBuilderErrors(t *testing.T) {
	b := NewCorpusBuilder(nil)
	if _, err := b.Build(); err == nil {
		t.Fatal("empty corpus built")
	}
	b = NewCorpusBuilder(nil)
	if err := b.AddXMLString("d1", `<a><b/></a>`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddXMLString("d1", `<a><c/></a>`); err == nil {
		t.Fatal("duplicate document ID accepted")
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build ignored the sticky builder error")
	}
	b = NewCorpusBuilder(nil)
	if err := b.AddXMLString("", `<a/>`); err == nil {
		t.Fatal("empty document ID accepted")
	}
}

func TestCorpusFromXML(t *testing.T) {
	b := NewCorpusBuilder(&CorpusOptions{Shards: 2})
	if err := b.AddXMLString("one", `<lib><book><author>k</author></book></lib>`); err != nil {
		t.Fatal(err)
	}
	if err := b.AddXMLString("two", `<lib><book><author>p</author><author>q</author></book></lib>`); err != nil {
		t.Fatal(err)
	}
	if n := b.NumPending(); n != 2 {
		t.Fatalf("NumPending = %d", n)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`//book//author`, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Fatalf("Count = %d, want 3", res.Count)
	}
	// Document order: all of "one"'s matches before "two"'s.
	if res.Matches[0].DocID != "one" || res.Matches[1].DocID != "two" || res.Matches[2].DocID != "two" {
		t.Fatalf("match order: %v", res.Matches)
	}
}
