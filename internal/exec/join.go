package exec

import (
	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/xmltree"
)

// StackTreeJoin evaluates one pattern edge with the Stack-Tree family of
// merge joins (Al-Khalifa et al., ICDE 2002), generalised to tuple streams:
// the left input is a stream of partial matches ordered by the ancestor
// column, the right input a stream ordered by the descendant column. Both
// variants share the streaming skeleton; they differ in when joined pairs
// are emitted:
//
//   - Desc emits each right tuple's matches immediately (output ordered by
//     the descendant column) and never buffers output;
//   - Anc buffers pairs in per-stack-entry self/inherit lists and releases
//     them when the entry leaves an empty stack (output ordered by the
//     ancestor column). The buffering is what the cost model's
//     2·|AB|·f_IO term charges for.
//
// The join runs in one of two modes, chosen by the first call it receives
// and never mixed: tuple-at-a-time (Next) or batched (NextBatch). The
// batched drivers additionally skip ahead: whenever the stack is empty and
// the next ancestor starts past the current descendant, every right tuple
// before that ancestor is provably dead, so the right input is seeked
// (Seeker) rather than drained.
type StackTreeJoin struct {
	algo    plan.Algo
	axis    pattern.Axis
	left    Operator
	right   Operator
	lCol    int // ancestor column in left schema
	rCol    int // descendant column in right schema
	schema  *Schema
	ctx     *Context
	doc     *xmltree.Document
	started bool

	// Streaming state.
	lTuple Tuple
	lOK    bool
	rTuple Tuple
	rOK    bool
	stack  []*stackEntry

	// Desc emission state: matches of the current right tuple.
	emit    []*stackEntry // stack snapshot (bottom..top) still to pair
	emitIdx int
	emitR   Tuple

	// Anc emission state: released output, consumed from readyHead. The
	// head index (instead of re-slicing ready forward) keeps the backing
	// array reusable and lets emitted slots be released immediately.
	ready     []Tuple
	readyHead int

	// Batched-mode state: block readers over the inputs, an arena for
	// tuples that outlive their input batch (stack copies, Anc buffered
	// pairs), and a reusable copy of the right tuple under emission.
	lr, rr   *batchReader
	arena    nodeArena
	emitRBuf Tuple
}

type stackEntry struct {
	t          xmltree.NodeID // the ancestor node (cached from the tuple)
	end        xmltree.Pos
	level      uint16
	tuple      Tuple
	selfList   []Tuple // Anc only
	inheritLst []Tuple // Anc only
}

// NewStackTreeJoin joins left (ordered by pattern node anc) with right
// (ordered by pattern node desc) on an edge with the given axis, using the
// chosen algorithm variant.
func NewStackTreeJoin(left, right Operator, anc, desc int, ax pattern.Axis, algo plan.Algo) (*StackTreeJoin, error) {
	lCol, ok := left.Schema().Col(anc)
	if !ok {
		return nil, errColumn(anc)
	}
	rCol, ok := right.Schema().Col(desc)
	if !ok {
		return nil, errColumn(desc)
	}
	return &StackTreeJoin{
		algo:   algo,
		axis:   ax,
		left:   left,
		right:  right,
		lCol:   lCol,
		rCol:   rCol,
		schema: left.Schema().Concat(right.Schema()),
	}, nil
}

// Schema implements Operator.
func (j *StackTreeJoin) Schema() *Schema { return j.schema }

// Open implements Operator.
func (j *StackTreeJoin) Open(ctx *Context) error {
	j.ctx = ctx
	j.doc = ctx.Doc
	if err := j.left.Open(ctx); err != nil {
		return err
	}
	if err := j.right.Open(ctx); err != nil {
		j.left.Close()
		return err
	}
	return nil
}

// Close implements Operator.
func (j *StackTreeJoin) Close() error {
	err := j.left.Close()
	if err2 := j.right.Close(); err == nil {
		err = err2
	}
	return err
}

// Next implements Operator.
func (j *StackTreeJoin) Next() (Tuple, bool, error) {
	if !j.started {
		j.started = true
		var err error
		if j.lTuple, j.lOK, err = j.left.Next(); err != nil {
			return nil, false, err
		}
		if j.rTuple, j.rOK, err = j.right.Next(); err != nil {
			return nil, false, err
		}
	}
	if j.algo == plan.AlgoDesc {
		return j.nextDesc()
	}
	return j.nextAnc()
}

// NextBatch implements BatchOperator: the same Stack-Tree drivers, consuming
// the inputs through block readers and producing whole batches, with
// skip-ahead over dead regions of the right input.
func (j *StackTreeJoin) NextBatch(b *Batch) error {
	b.Reset()
	if !j.started {
		j.started = true
		j.lr = newBatchReader(j.left)
		j.rr = newBatchReader(j.right)
		var err error
		if j.lTuple, j.lOK, err = j.lr.next(); err != nil {
			return err
		}
		if j.rTuple, j.rOK, err = j.rr.next(); err != nil {
			return err
		}
	}
	if j.algo == plan.AlgoDesc {
		return j.nextBatchDesc(b)
	}
	return j.nextBatchAnc(b)
}

// joined builds the output tuple for (entry, right): one exact-size
// allocation and two copies — this runs once per output tuple, so it is the
// hottest allocation site in the tuple-at-a-time executor (the batched path
// appends pairs into the output batch or an arena instead).
func (j *StackTreeJoin) joined(e *stackEntry, r Tuple) Tuple {
	out := make(Tuple, len(e.tuple)+len(r))
	n := copy(out, e.tuple)
	copy(out[n:], r)
	return out
}

// matches reports whether a stack entry satisfies the edge's axis with the
// current right node (all stack entries already contain it structurally).
func (j *StackTreeJoin) matches(e *stackEntry, dLevel uint16) bool {
	return j.axis == pattern.Descendant || e.level+1 == dLevel
}

// push moves the current left tuple onto the stack (after expiring dead
// entries) and advances the left input.
func (j *StackTreeJoin) push(expireBefore xmltree.Pos, collect func(*stackEntry)) error {
	j.expire(expireBefore, collect)
	a := j.lTuple[j.lCol]
	j.stack = append(j.stack, &stackEntry{
		t:     a,
		end:   j.doc.End(a),
		level: j.doc.Level(a),
		tuple: j.lTuple,
	})
	j.ctx.Stats.StackOps++
	var err error
	j.lTuple, j.lOK, err = j.left.Next()
	return err
}

// pushBatch is push for the batched drivers: the left tuple aliases the left
// reader's reusable batch, so the stack entry gets an arena copy, and the
// input advances through the reader.
func (j *StackTreeJoin) pushBatch(expireBefore xmltree.Pos, collect func(*stackEntry)) error {
	j.expire(expireBefore, collect)
	a := j.lTuple[j.lCol]
	j.stack = append(j.stack, &stackEntry{
		t:     a,
		end:   j.doc.End(a),
		level: j.doc.Level(a),
		tuple: j.arena.copyTuple(j.lTuple),
	})
	j.ctx.Stats.StackOps++
	var err error
	j.lTuple, j.lOK, err = j.lr.next()
	return err
}

// expire pops entries whose region ends before pos; collect (may be nil)
// observes each popped entry in top-to-bottom order.
func (j *StackTreeJoin) expire(pos xmltree.Pos, collect func(*stackEntry)) {
	for len(j.stack) > 0 {
		top := j.stack[len(j.stack)-1]
		if top.end >= pos {
			return
		}
		j.stack = j.stack[:len(j.stack)-1]
		j.ctx.Stats.StackOps++
		if collect != nil {
			collect(top)
		}
	}
}

// nextDesc is the Stack-Tree-Desc driver.
func (j *StackTreeJoin) nextDesc() (Tuple, bool, error) {
	for {
		// Drain pending emissions for the current right tuple first.
		for j.emitIdx < len(j.emit) {
			e := j.emit[j.emitIdx]
			j.emitIdx++
			if j.matches(e, j.doc.Level(j.emitR[j.rCol])) {
				return j.joined(e, j.emitR), true, nil
			}
		}
		// Keep emit's backing array: the next stack snapshot reuses it
		// instead of allocating per right tuple.
		j.emit, j.emitR = j.emit[:0], nil

		if !j.rOK {
			return nil, false, nil // no right input left: join is done
		}
		dStart := j.doc.Start(j.rTuple[j.rCol])
		if j.lOK && j.doc.Start(j.lTuple[j.lCol]) < dStart {
			if err := j.push(j.doc.Start(j.lTuple[j.lCol]), nil); err != nil {
				return nil, false, err
			}
			continue
		}
		// Process the right tuple against the stack.
		j.expire(dStart, nil)
		if len(j.stack) > 0 {
			j.emit = append(j.emit[:0], j.stack...)
			j.emitIdx = 0
			j.emitR = j.rTuple
		}
		var err error
		j.rTuple, j.rOK, err = j.right.Next()
		if err != nil {
			return nil, false, err
		}
	}
}

// skipRight reports whether the right input can be seeked past a dead
// region, and does so: with an empty stack, every right tuple starting
// before the next ancestor's Start matches nothing (an ancestor always
// starts before its descendants), and with the left input exhausted on an
// empty stack the rest of the right input is dead outright.
func (j *StackTreeJoin) skipRight(dStart xmltree.Pos) (bool, error) {
	if len(j.stack) > 0 {
		return false, nil
	}
	if !j.lOK {
		j.rTuple, j.rOK = nil, false
		return true, nil
	}
	lStart := j.doc.Start(j.lTuple[j.lCol])
	if lStart <= dStart {
		// Equal Start cannot happen across distinct nodes; <= keeps the
		// guard strictly-progressing either way.
		return false, nil
	}
	var err error
	j.rTuple, j.rOK, err = j.rr.seekGE(lStart, j.doc, j.rCol)
	return true, err
}

// nextBatchDesc is the Stack-Tree-Desc driver over batches.
func (j *StackTreeJoin) nextBatchDesc(b *Batch) error {
	doc := j.doc
	for {
		// Drain pending emissions for the current right tuple first.
		if j.emitIdx < len(j.emit) {
			dLevel := doc.Level(j.emitR[j.rCol])
			for j.emitIdx < len(j.emit) {
				if b.Full() {
					return nil
				}
				e := j.emit[j.emitIdx]
				j.emitIdx++
				if j.matches(e, dLevel) {
					b.AppendPair(e.tuple, j.emitR)
				}
			}
		}
		j.emit, j.emitR = j.emit[:0], nil

		if !j.rOK {
			return nil // no right input left: join is done
		}
		if b.Full() {
			return nil
		}
		dStart := doc.Start(j.rTuple[j.rCol])
		if j.lOK && doc.Start(j.lTuple[j.lCol]) < dStart {
			if err := j.pushBatch(doc.Start(j.lTuple[j.lCol]), nil); err != nil {
				return err
			}
			continue
		}
		if skipped, err := j.skipRight(dStart); err != nil {
			return err
		} else if skipped {
			continue
		}
		// Process the right tuple against the stack. The emission snapshot
		// must survive advancing the right reader (which may refill its
		// batch), so the right tuple is copied into the join-owned buffer.
		j.expire(dStart, nil)
		if len(j.stack) > 0 {
			j.emitRBuf = append(j.emitRBuf[:0], j.rTuple...)
			j.emit = append(j.emit[:0], j.stack...)
			j.emitIdx = 0
			j.emitR = j.emitRBuf
		}
		var err error
		j.rTuple, j.rOK, err = j.rr.next()
		if err != nil {
			return err
		}
	}
}

// popReady serves the head of the ready queue and releases its slot; once
// the queue drains the backing array is reset for reuse, so neither it nor
// the emitted tuples stay pinned.
func (j *StackTreeJoin) popReady() Tuple {
	t := j.ready[j.readyHead]
	j.ready[j.readyHead] = nil
	j.readyHead++
	if j.readyHead == len(j.ready) {
		j.ready = j.ready[:0]
		j.readyHead = 0
	}
	return t
}

// nextAnc is the Stack-Tree-Anc driver.
func (j *StackTreeJoin) nextAnc() (Tuple, bool, error) {
	for {
		if j.readyHead < len(j.ready) {
			return j.popReady(), true, nil
		}
		if !j.rOK {
			// No more pairs can form; release everything still on the
			// stack, bottom-most last (it owns the earliest output).
			if len(j.stack) > 0 {
				for len(j.stack) > 0 {
					top := j.stack[len(j.stack)-1]
					j.stack = j.stack[:len(j.stack)-1]
					j.ctx.Stats.StackOps++
					j.release(top)
				}
				continue
			}
			return nil, false, nil
		}
		dStart := j.doc.Start(j.rTuple[j.rCol])
		if j.lOK && j.doc.Start(j.lTuple[j.lCol]) < dStart {
			if err := j.push(j.doc.Start(j.lTuple[j.lCol]), j.release); err != nil {
				return nil, false, err
			}
			continue
		}
		j.expire(dStart, j.release)
		dLevel := j.doc.Level(j.rTuple[j.rCol])
		for _, e := range j.stack {
			if j.matches(e, dLevel) {
				e.selfList = append(e.selfList, j.joined(e, j.rTuple))
				j.ctx.Stats.BufferedPairs++
			}
		}
		var err error
		j.rTuple, j.rOK, err = j.right.Next()
		if err != nil {
			return nil, false, err
		}
	}
}

// nextBatchAnc is the Stack-Tree-Anc driver over batches.
func (j *StackTreeJoin) nextBatchAnc(b *Batch) error {
	doc := j.doc
	for {
		if j.readyHead < len(j.ready) {
			for j.readyHead < len(j.ready) {
				if b.Full() {
					return nil
				}
				b.AppendRow(j.popReady())
			}
			continue
		}
		if !j.rOK {
			if len(j.stack) > 0 {
				for len(j.stack) > 0 {
					top := j.stack[len(j.stack)-1]
					j.stack = j.stack[:len(j.stack)-1]
					j.ctx.Stats.StackOps++
					j.release(top)
				}
				continue
			}
			return nil
		}
		if b.Full() {
			return nil
		}
		dStart := doc.Start(j.rTuple[j.rCol])
		if j.lOK && doc.Start(j.lTuple[j.lCol]) < dStart {
			if err := j.pushBatch(doc.Start(j.lTuple[j.lCol]), j.release); err != nil {
				return err
			}
			continue
		}
		if skipped, err := j.skipRight(dStart); err != nil {
			return err
		} else if skipped {
			continue
		}
		j.expire(dStart, j.release)
		dLevel := doc.Level(j.rTuple[j.rCol])
		for _, e := range j.stack {
			if j.matches(e, dLevel) {
				// Buffered pairs outlive the right reader's batch, so they
				// are built in the arena, not with per-pair allocations.
				e.selfList = append(e.selfList, j.arena.joined(e.tuple, j.rTuple))
				j.ctx.Stats.BufferedPairs++
			}
		}
		var err error
		j.rTuple, j.rOK, err = j.rr.next()
		if err != nil {
			return err
		}
	}
}

// release handles a popped entry in the Anc variant: if an enclosing entry
// remains on the stack, the popped entry's output must wait for it (its
// ancestor column starts earlier), so it is appended to that entry's
// inherit list; otherwise the output is final and moves to the ready queue.
func (j *StackTreeJoin) release(e *stackEntry) {
	out := e.selfList
	out = append(out, e.inheritLst...)
	if len(j.stack) > 0 {
		parent := j.stack[len(j.stack)-1]
		parent.inheritLst = append(parent.inheritLst, out...)
		return
	}
	j.ready = append(j.ready, out...)
}
