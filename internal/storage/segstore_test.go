package storage

import (
	"math/rand"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// buildForest appends the docs to a fresh forest and returns the forest
// document, the member spans, and the segmented store.
func buildForest(t *testing.T, docs []*xmltree.Document) (*xmltree.Document, []xmltree.DocSpan, *Store) {
	t.Helper()
	forest := xmltree.NewForest()
	var spans []xmltree.DocSpan
	for _, d := range docs {
		var span xmltree.DocSpan
		var err error
		forest, span, err = xmltree.AppendMember(forest, d)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, span)
	}
	st, err := BuildForestStoreOn(NewMemFile(), forest, spans, 64, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return forest, spans, st
}

func memberDocs(t *testing.T, n int) []*xmltree.Document {
	t.Helper()
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		docs[i] = xmltree.RandomDocument(rng, 400+130*i, []string{"a", "b", "c", "d"})
	}
	return docs
}

func scanAll(t *testing.T, s *Store, tag xmltree.TagID) []xmltree.NodeID {
	t.Helper()
	var out []xmltree.NodeID
	sc := s.ScanTag(tag)
	for {
		id, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, id)
	}
}

// The appendable forest store must read back exactly like the one-shot
// merged store: AppendMember assigns the same node IDs and positions as
// MergeDocuments, so tag scans agree ID for ID.
func TestForestStoreMatchesMergedStore(t *testing.T) {
	docs := memberDocs(t, 3)
	forest, _, segStore := buildForest(t, docs)

	merged, _, err := xmltree.MergeDocuments(docs)
	if err != nil {
		t.Fatal(err)
	}
	static, err := BuildStore(merged, 64)
	if err != nil {
		t.Fatal(err)
	}

	if forest.NumNodes() != merged.NumNodes() {
		t.Fatalf("forest %d nodes, merged %d", forest.NumNodes(), merged.NumNodes())
	}
	for tg := 0; tg < merged.NumTags(); tg++ {
		name := merged.TagName(xmltree.TagID(tg))
		ft, ok := forest.LookupTag(name)
		if !ok {
			t.Fatalf("forest missing tag %q", name)
		}
		want := scanAll(t, static, xmltree.TagID(tg))
		got := scanAll(t, segStore, ft)
		if len(want) != len(got) {
			t.Fatalf("tag %q: %d vs %d postings", name, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("tag %q posting %d: %d vs %d", name, i, got[i], want[i])
			}
		}
		// Node records agree too. Node 0 is excluded: the forest root
		// keeps the open-ended sentinel end, the merged root a real one.
		for _, id := range got {
			if id == 0 {
				continue
			}
			a, err := segStore.Node(id)
			if err != nil {
				t.Fatal(err)
			}
			b, err := static.Node(id)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("node %d: %+v vs %+v", id, a, b)
			}
		}
	}
}

// Value probes over the combined per-segment indexes must agree with the
// static store's single index.
func TestForestStoreValueProbes(t *testing.T) {
	docs := memberDocs(t, 3)
	_, _, segStore := buildForest(t, docs)
	merged, _, err := xmltree.MergeDocuments(docs)
	if err != nil {
		t.Fatal(err)
	}
	static, err := BuildStore(merged, 64)
	if err != nil {
		t.Fatal(err)
	}

	ops := []pattern.CmpOp{pattern.CmpEq, pattern.CmpLt, pattern.CmpGe}
	vals := []string{"1", "7", "13", "nope", "42"}
	for _, tag := range []string{"a", "b", "c", "d"} {
		for _, op := range ops {
			for _, val := range vals {
				wantN, wantOK := static.ProbeSelectivity(tag, op, val)
				gotN, gotOK := segStore.ProbeSelectivity(tag, op, val)
				if wantOK != gotOK || wantN != gotN {
					t.Fatalf("probe %s %v %q: (%d,%v) vs (%d,%v)", tag, op, val, gotN, gotOK, wantN, wantOK)
				}
				if !wantOK {
					continue
				}
				ws, _ := static.ProbeValue(tag, op, val)
				gs, _ := segStore.ProbeValue(tag, op, val)
				for {
					wid, _, wok, err := ws.Next()
					if err != nil {
						t.Fatal(err)
					}
					gid, _, gok, err := gs.Next()
					if err != nil {
						t.Fatal(err)
					}
					if wok != gok || (wok && wid != gid) {
						t.Fatalf("probe %s %v %q: stream diverged (%d,%v) vs (%d,%v)", tag, op, val, gid, gok, wid, wok)
					}
					if !wok {
						break
					}
				}
			}
		}
	}
}

// Dropping a segment removes exactly its postings from every view, without
// touching other members' IDs.
func TestForestStoreDropSegment(t *testing.T) {
	docs := memberDocs(t, 3)
	forest, spans, segStore := buildForest(t, docs)

	// Member 1 is segment 2 (segment 0 is the synthetic root).
	dropped, err := segStore.DropSegment(forest, 2)
	if err != nil {
		t.Fatal(err)
	}
	span := spans[1]
	for tg := 0; tg < forest.NumTags(); tg++ {
		tag := xmltree.TagID(tg)
		before := scanAll(t, segStore, tag)
		var want []xmltree.NodeID
		for _, id := range before {
			if !span.Contains(id) {
				want = append(want, id)
			}
		}
		got := scanAll(t, dropped, tag)
		if len(got) != len(want) {
			t.Fatalf("tag %d: %d postings after drop, want %d", tg, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("tag %d posting %d: %d vs %d", tg, i, got[i], want[i])
			}
		}
		if segStore.TagCount(tag) != len(before) {
			t.Fatalf("old version mutated by DropSegment")
		}
	}
	if dropped.DeadFraction() <= 0 {
		t.Fatal("dead fraction not reported")
	}
}

// Staged appends only produce page images; adopting them after applying the
// images must behave exactly like the all-at-once build.
func TestForestStoreStageAdopt(t *testing.T) {
	docs := memberDocs(t, 3)

	forest := xmltree.NewForest()
	file := NewMemFile()
	st, err := NewForestStore(file, forest, 64, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		var span xmltree.DocSpan
		forest, span, err = xmltree.AppendMember(forest, d)
		if err != nil {
			t.Fatal(err)
		}
		stage, err := st.StageSegment(forest, span)
		if err != nil {
			t.Fatal(err)
		}
		pagesBefore := file.NumPages()
		if len(stage.Images()) == 0 {
			t.Fatal("stage produced no images")
		}
		if file.NumPages() != pagesBefore {
			t.Fatal("staging touched the file")
		}
		st, err = st.CommitStage(stage)
		if err != nil {
			t.Fatal(err)
		}
	}

	_, _, oneShot := buildForest(t, docs)
	for tg := 0; tg < forest.NumTags(); tg++ {
		a := scanAll(t, st, xmltree.TagID(tg))
		b := scanAll(t, oneShot, xmltree.TagID(tg))
		if len(a) != len(b) {
			t.Fatalf("tag %d: %d vs %d postings", tg, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tag %d posting %d differs", tg, i)
			}
		}
	}
	// Determinism: the incremental file is byte-identical to the one-shot
	// build — the property recovery's redo verification rests on.
	other := oneShot.File().(*MemFile)
	if file.NumPages() != other.NumPages() {
		t.Fatalf("page counts differ: %d vs %d", file.NumPages(), other.NumPages())
	}
	var pa, pb Page
	for i := 0; i < file.NumPages(); i++ {
		if err := file.ReadPage(PageID(i), &pa); err != nil {
			t.Fatal(err)
		}
		if err := other.ReadPage(PageID(i), &pb); err != nil {
			t.Fatal(err)
		}
		if pa != pb {
			t.Fatalf("page %d differs between incremental and one-shot build", i)
		}
	}
}
