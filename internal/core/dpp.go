package core

import (
	"container/heap"
	"context"
	"fmt"

	"sjos/internal/cost"
	"sjos/internal/pattern"
)

// dppConfig selects a member of the DPP/DPAP family; the search loop is
// shared.
type dppConfig struct {
	name         string
	lookahead    bool // the Lookahead Rule: never generate deadend statuses
	te           int  // DPAP-EB expansion bound per level; 0 = unlimited
	leftDeep     bool // DPAP-LD: single growing cluster
	pipelineOnly bool // sorted-move ablation: only sort-free moves

	// trace, when non-nil, records every search decision (see trace.go).
	trace *[]TraceEvent
}

// emit appends a trace event if tracing is enabled.
func (cfg *dppConfig) emit(kind TraceKind, edges, orderMask uint32, level int, cost float64) {
	if cfg.trace != nil {
		*cfg.trace = append(*cfg.trace, TraceEvent{
			Kind: kind, Edges: edges, OrderMask: orderMask, Level: level, Cost: cost,
		})
	}
}

// DPP optimizes pat with Dynamic Programming with Pruning (§3.2):
// best-first expansion ordered by Cost+ubCost, pruning of statuses whose
// Cost reaches the best complete plan found so far, and the Lookahead Rule.
// Like DP it searches the whole space and returns an optimal plan, usually
// at a fraction of DP's optimization cost.
func DPP(pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	return dppSearch(context.Background(), pat, est, model, dppConfig{name: "DPP", lookahead: true})
}

// DPPNoLookahead is DPP without the Lookahead Rule — the paper's DPP′
// baseline used to measure the rule's effectiveness (Table 2).
func DPPNoLookahead(pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	return dppSearch(context.Background(), pat, est, model, dppConfig{name: "DPP'"})
}

// DPPPipelineOnly is the sorted-move ablation (DESIGN.md A2): DPP searching
// only sort-free moves, i.e. exactly the fully-pipelined plan space. By
// Theorem 3.1 it always succeeds, and its optimum must equal FP's — the
// test suite uses this as an independent check of the FP algorithm.
func DPPPipelineOnly(pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	return dppSearch(context.Background(), pat, est, model, dppConfig{name: "DPP-pipe", lookahead: true, pipelineOnly: true})
}

// DPAPEB optimizes with Dynamic Programming with Aggressive Pruning using
// an Expansion Bound (§3.3.1): at most te statuses are expanded per level,
// and once a level saturates no earlier level is expanded again. te must be
// at least 1. The returned plan can be suboptimal.
func DPAPEB(pat *pattern.Pattern, est *Estimator, model cost.Model, te int) (*Result, error) {
	return dpapEB(context.Background(), pat, est, model, te)
}

// dpapEB is DPAPEB with cancellation.
func dpapEB(ctx context.Context, pat *pattern.Pattern, est *Estimator, model cost.Model, te int) (*Result, error) {
	if te < 1 {
		return nil, fmt.Errorf("core: DPAP-EB expansion bound %d, want >= 1", te)
	}
	return dppSearch(ctx, pat, est, model, dppConfig{name: "DPAP-EB", lookahead: true, te: te})
}

// DPAPLD optimizes with Dynamic Programming with Aggressive Pruning
// restricted to left-deep statuses (§3.3.2): at most one cluster may hold
// more than one pattern node (the growing node). The returned plan can be
// suboptimal — the paper's experiments show this is the weakest heuristic.
func DPAPLD(pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	return dppSearch(context.Background(), pat, est, model, dppConfig{name: "DPAP-LD", lookahead: true, leftDeep: true})
}

// statusHeap is the DPP priority list: minimum Cost+ubCost first, with
// deterministic tie-breaking on the status key.
type statusHeap []*status

func (h statusHeap) Len() int { return len(h) }
func (h statusHeap) Less(i, j int) bool {
	pi, pj := h[i].cost+h[i].ub, h[j].cost+h[j].ub
	if pi != pj {
		return pi < pj
	}
	return h[i].key() < h[j].key()
}
func (h statusHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *statusHeap) Push(x any) {
	s := x.(*status)
	s.heapIdx = len(*h)
	*h = append(*h, s)
}
func (h *statusHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	s.heapIdx = -1
	*h = old[:n-1]
	return s
}

func dppSearch(ctx context.Context, pat *pattern.Pattern, est *Estimator, model cost.Model, cfg dppConfig) (*Result, error) {
	sp := newSpace(pat, est, model)
	if sp.numEdges == 0 {
		return sp.singleNode(cfg.name), nil
	}
	var counters Counters
	opts := moveOpts{leftDeepOnly: cfg.leftDeep, pipelineOnly: cfg.pipelineOnly}

	visited := make(map[uint64]*status)
	var pq statusHeap
	s0 := sp.start()
	s0.ub = sp.ubCost(s0.edges)
	visited[s0.key()] = s0
	heap.Push(&pq, s0)

	var bestFinal *status
	minCost := 0.0
	haveMin := false

	// DPAP-EB bookkeeping.
	expandedAt := make([]int, sp.numEdges+1)
	saturated := -1 // highest level whose expansion bound was reached

	pops := 0
	for pq.Len() > 0 {
		pops++
		if pops%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		s := heap.Pop(&pq).(*status)
		if haveMin && s.cost >= minCost {
			cfg.emit(TracePruneDead, s.edges, s.orderMask, s.level, s.cost)
			continue // "dead": cannot improve on the best full plan
		}
		if sp.isFinal(s) {
			cfg.emit(TraceFinal, s.edges, s.orderMask, s.level, s.cost)
			if bestFinal == nil || s.cost < bestFinal.cost {
				bestFinal = s
				minCost, haveMin = s.cost, true
			}
			continue
		}
		if cfg.te > 0 {
			if s.level < saturated || expandedAt[s.level] >= cfg.te {
				continue
			}
			expandedAt[s.level]++
			if expandedAt[s.level] == cfg.te && s.level > saturated {
				saturated = s.level
			}
		}
		counters.StatusesExpanded++
		s.expanded = true
		cfg.emit(TraceExpand, s.edges, s.orderMask, s.level, s.cost)
		sp.expand(s, opts, func(c candidate) {
			if haveMin && c.cost >= minCost {
				cfg.emit(TracePruneDead, c.edges, c.orderMask, s.level+1, c.cost)
				return // dead on arrival: pruned before being considered
			}
			final := c.edges == sp.allEdges
			if cfg.lookahead && !final && !sp.hasMove(c.edges, c.orderMask) {
				cfg.emit(TraceDeadend, c.edges, c.orderMask, s.level+1, c.cost)
				return // Lookahead Rule: the successor is a deadend
			}
			k := uint64(c.edges) | uint64(c.orderMask)<<MaxPatternNodes
			if old, ok := visited[k]; ok {
				if old.cost <= c.cost {
					cfg.emit(TraceWorse, c.edges, c.orderMask, s.level+1, c.cost)
					return
				}
				cfg.emit(TraceImprove, c.edges, c.orderMask, s.level+1, c.cost)
				// A cheaper route to a known status: update it in
				// place. If it was already expanded it re-enters the
				// queue so its successors are re-costed. The sub-plan
				// counts as considered — it supersedes the best route.
				counters.PlansConsidered++
				old.cost, old.prev, old.via = c.cost, s, c.mv
				if old.heapIdx >= 0 {
					heap.Fix(&pq, old.heapIdx)
				} else {
					heap.Push(&pq, old)
				}
				return
			}
			counters.StatusesGenerated++
			counters.PlansConsidered++
			cfg.emit(TraceGenerate, c.edges, c.orderMask, s.level+1, c.cost)
			ns := &status{
				edges:     c.edges,
				orderMask: c.orderMask,
				cost:      c.cost,
				level:     s.level + 1,
				prev:      s,
				via:       c.mv,
				heapIdx:   -1,
				ub:        sp.ubCost(c.edges),
			}
			visited[k] = ns
			heap.Push(&pq, ns)
		})
	}
	if bestFinal == nil {
		if cfg.te > 0 {
			// A very tight expansion bound can strand the search in
			// deadends-at-depth before any full plan is reached. Fall
			// back to the (cheap, always-successful) FP algorithm so
			// DPAP-EB keeps its "always returns a plan" contract.
			fp, err := fp(ctx, pat, est, model)
			if err != nil {
				return nil, err
			}
			fp.Algorithm = cfg.name
			fp.Counters.PlansConsidered += counters.PlansConsidered
			fp.Counters.StatusesGenerated += counters.StatusesGenerated
			fp.Counters.StatusesExpanded += counters.StatusesExpanded
			return fp, nil
		}
		return nil, errNoPlan
	}
	return &Result{
		Plan:      sp.finalize(bestFinal),
		Cost:      bestFinal.cost,
		Algorithm: cfg.name,
		Counters:  counters,
	}, nil
}
