package sjos

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sjos/internal/faultfs"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// resilienceDB builds a small in-memory database with the given options.
func resilienceDB(t *testing.T, seed int64, opts *Options) *Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	doc := xmltree.RandomDocument(rng, 800, []string{"a", "b"})
	db, err := fromDocument(doc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestRunRecoversPanics: a panic under Run must surface as a *PanicError —
// counted in metrics, recorded with its stack in the slow-query ring — and
// leave the database fully usable.
func TestRunRecoversPanics(t *testing.T) {
	db := resilienceDB(t, 21, nil)
	pat := MustParsePattern("//a//b")
	p := mustPlan(t, db, pat, MethodDP)
	db.svc.testHookRun = func() { panic("injected facade panic") }
	_, err := db.Run(context.Background(), pat, p, RunOptions{})
	db.svc.testHookRun = nil
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	m := db.Metrics()
	if m.Query.RecoveredPanics != 1 {
		t.Fatalf("RecoveredPanics = %d, want 1", m.Query.RecoveredPanics)
	}
	if m.Query.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", m.Query.Errors)
	}
	if m.Query.InFlight != 0 {
		t.Fatalf("InFlight = %d after recovery, want 0", m.Query.InFlight)
	}
	entries := db.SlowQueries()
	if len(entries) == 0 {
		t.Fatal("no slow-query entry for the recovered panic")
	}
	last := entries[len(entries)-1]
	if !strings.Contains(last.Error, "injected facade panic") {
		t.Fatalf("ring entry error = %q, want the panic message", last.Error)
	}
	if last.Stack == "" || last.Pattern == "" || last.Fingerprint == "" {
		t.Fatalf("ring entry incomplete: stack=%d bytes, pattern=%q, fp=%q",
			len(last.Stack), last.Pattern, last.Fingerprint)
	}
	// The database survives: the next query runs normally.
	if _, err := db.Run(context.Background(), pat, p, RunOptions{}); err != nil {
		t.Fatalf("query after recovered panic: %v", err)
	}
}

// blockingDB installs a Run hook that parks queries on a channel, so tests
// can hold execution slots open deterministically.
func blockingDB(t *testing.T, opts *Options) (db *Database, entered chan struct{}, unblock chan struct{}) {
	t.Helper()
	db = resilienceDB(t, 22, opts)
	entered = make(chan struct{}, 16)
	unblock = make(chan struct{})
	db.svc.testHookRun = func() {
		entered <- struct{}{}
		<-unblock
	}
	return db, entered, unblock
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionOverloadAndQueue: with MaxInFlight 1 and QueueDepth 1, the
// second query waits its turn and the third is shed with ErrOverloaded.
func TestAdmissionOverloadAndQueue(t *testing.T) {
	db, entered, unblock := blockingDB(t, &Options{MaxInFlight: 1, QueueDepth: 1})
	pat := MustParsePattern("//a//b")
	p := mustPlan(t, db, pat, MethodDP)
	first := make(chan error, 1)
	go func() {
		_, err := db.Run(context.Background(), pat, p, RunOptions{})
		first <- err
	}()
	<-entered // first query holds the only slot
	second := make(chan error, 1)
	go func() {
		_, err := db.Run(context.Background(), pat, p, RunOptions{})
		second <- err
	}()
	waitFor(t, "second query to queue", func() bool { return db.AdmissionStats().Waiting == 1 })
	// Queue full: the third arrival is shed immediately.
	if _, err := db.Run(context.Background(), pat, p, RunOptions{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third query error = %v, want ErrOverloaded", err)
	}
	close(unblock)
	if err := <-first; err != nil {
		t.Fatalf("first query: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("queued query: %v", err)
	}
	st := db.AdmissionStats()
	if st.Queued < 1 || st.Rejected < 1 {
		t.Fatalf("stats = %+v, want Queued >= 1 and Rejected >= 1", st)
	}
	waitFor(t, "slots to release", func() bool { return db.AdmissionStats().InFlight == 0 })
}

// TestAdmissionHonorsCancellation: a caller waiting for a slot gives up when
// its context expires.
func TestAdmissionHonorsCancellation(t *testing.T) {
	db, entered, unblock := blockingDB(t, &Options{MaxInFlight: 1, QueueDepth: 4})
	defer close(unblock)
	pat := MustParsePattern("//a//b")
	p := mustPlan(t, db, pat, MethodDP)
	go db.Run(context.Background(), pat, p, RunOptions{})
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := db.Run(ctx, pat, p, RunOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiting query error = %v, want DeadlineExceeded", err)
	}
}

// TestDrainGraceful: Drain stops new admissions (ErrShuttingDown), waits for
// in-flight queries, honours its context deadline, and is resumable.
func TestDrainGraceful(t *testing.T) {
	db, entered, unblock := blockingDB(t, &Options{MaxInFlight: 2})
	pat := MustParsePattern("//a//b")
	p := mustPlan(t, db, pat, MethodDP)
	running := make(chan error, 1)
	go func() {
		_, err := db.Run(context.Background(), pat, p, RunOptions{})
		running <- err
	}()
	<-entered
	// A query is still in flight: a bounded Drain times out...
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := db.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded Drain = %v, want DeadlineExceeded", err)
	}
	// ...and new arrivals are already refused.
	if _, err := db.Run(context.Background(), pat, p, RunOptions{}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("query during drain = %v, want ErrShuttingDown", err)
	}
	close(unblock)
	if err := <-running; err != nil {
		t.Fatalf("in-flight query: %v", err)
	}
	// The retried Drain resumes and completes; repeating it is a no-op.
	if err := db.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after queries finished: %v", err)
	}
	if err := db.Drain(context.Background()); err != nil {
		t.Fatalf("repeated Drain: %v", err)
	}
}

// TestQueryPathRespectsAdmission: the high-level Query entry points flow
// through Run, so admission errors surface there too.
func TestQueryPathRespectsAdmission(t *testing.T) {
	db, entered, unblock := blockingDB(t, &Options{MaxInFlight: 1})
	pat := MustParsePattern("//a//b")
	go db.QueryPatternContext(context.Background(), pat, QueryOptions{})
	<-entered
	_, err := db.QueryPatternContext(context.Background(), pat, QueryOptions{})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("query error = %v, want ErrOverloaded", err)
	}
	close(unblock)
	waitFor(t, "slot release", func() bool { return db.AdmissionStats().InFlight == 0 })
}

// TestWriteMetricsResilienceCounters: the Prometheus exposition carries the
// new integrity/admission/chaos counters, end to end — a transient injected
// fault is healed by a retry and shows up in every relevant series.
func TestWriteMetricsResilienceCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	doc := xmltree.RandomDocument(rng, 800, []string{"a", "b"})
	ff := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
	db, err := fromDocument(doc, &Options{PageFile: ff, PoolFrames: 4, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ff.SetPolicy(faultfs.Policy{FailNthRead: 1, Transient: true})
	pat := MustParsePattern("//a//b")
	if _, err := db.QueryPatternContext(context.Background(), pat, QueryOptions{}); err != nil {
		t.Fatalf("query over transient fault: %v", err)
	}
	m := db.Metrics()
	if m.FaultsInjected == 0 {
		t.Fatal("FaultsInjected = 0, want > 0")
	}
	if m.Pool.Retries == 0 {
		t.Fatal("Pool.Retries = 0, want > 0 (retry healed the injected fault)")
	}
	var buf bytes.Buffer
	db.WriteMetrics(&buf)
	text := buf.String()
	for _, series := range []string{
		"sjos_recovered_panics_total",
		"sjos_page_retries_total",
		"sjos_checksum_failures_total",
		"sjos_admission_queued_total",
		"sjos_admission_rejected_total",
		"sjos_faults_injected_total",
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("metrics exposition missing %s:\n%s", series, text)
		}
	}
	if !strings.Contains(text, "sjos_page_retries_total 1") {
		t.Fatalf("page retries not reported:\n%s", text)
	}
}
