package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// benchDoc builds a deep random document sized for join micro-benchmarks.
func benchDoc(b *testing.B, n int) (*xmltree.Document, *storage.Store) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	doc := xmltree.RandomDocument(rng, n, []string{"a", "b", "c", "d"})
	st, err := storage.BuildStore(doc, 0)
	if err != nil {
		b.Fatal(err)
	}
	return doc, st
}

// BenchmarkStackTreeDesc measures the streaming Desc join on one edge.
func BenchmarkStackTreeDesc(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		doc, st := benchDoc(b, n)
		pat := pattern.MustParse("//a//b")
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1),
					0, 1, pattern.Descendant, plan.AlgoDesc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Count(&Context{Doc: doc, Store: st}, j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStackTreeAnc measures the buffering Anc variant on the same
// edge; the gap against Desc is what the cost model's f_IO term represents.
func BenchmarkStackTreeAnc(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		doc, st := benchDoc(b, n)
		pat := pattern.MustParse("//a//b")
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1),
					0, 1, pattern.Descendant, plan.AlgoAnc)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Count(&Context{Doc: doc, Store: st}, j); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSortOperator measures the blocking sort the optimizer's f_s term
// models.
func BenchmarkSortOperator(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		doc, st := benchDoc(b, n)
		pat := pattern.MustParse("//a//b")
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j, _ := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1),
					0, 1, pattern.Descendant, plan.AlgoDesc)
				s, err := NewSort(j, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Count(&Context{Doc: doc, Store: st}, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexScan measures leaf access through the buffer pool (f_I).
func BenchmarkIndexScan(b *testing.B) {
	doc, st := benchDoc(b, 100000)
	pat := pattern.MustParse("//a")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(&Context{Doc: doc, Store: st}, NewIndexScan(pat, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceMatches quantifies how much slower the brute-force
// oracle is than a planned execution (it motivates having an optimizer at
// all).
func BenchmarkReferenceMatches(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	doc := xmltree.RandomDocument(rng, 400, []string{"a", "b", "c"})
	pat := pattern.MustParse("//a[b]//c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceMatches(doc, pat)
	}
}
