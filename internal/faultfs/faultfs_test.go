package faultfs

import (
	"errors"
	"testing"
	"time"

	"sjos/internal/storage"
)

func seededFile(t *testing.T, pages int) *storage.MemFile {
	t.Helper()
	mf := storage.NewMemFile()
	for i := 0; i < pages; i++ {
		var p storage.Page
		p[storage.PageHeaderSize] = byte(i)
		storage.SealPage(storage.PageID(i), &p)
		if err := mf.WritePage(storage.PageID(i), &p); err != nil {
			t.Fatal(err)
		}
	}
	return mf
}

func TestFailNthReadPermanent(t *testing.T) {
	f := Wrap(seededFile(t, 4), Policy{FailNthRead: 3})
	var p storage.Page
	for i := 1; i <= 2; i++ {
		if err := f.ReadPage(0, &p); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	// Read 3 and every later read fail.
	for i := 3; i <= 5; i++ {
		err := f.ReadPage(0, &p)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: err = %v", i, err)
		}
		if storage.IsTransient(err) {
			t.Fatalf("read %d: permanent fault marked transient", i)
		}
	}
	if f.FaultsInjected() != 3 {
		t.Fatalf("FaultsInjected = %d, want 3", f.FaultsInjected())
	}
}

func TestFailNthReadTransient(t *testing.T) {
	f := Wrap(seededFile(t, 4), Policy{FailNthRead: 2, Transient: true})
	var p storage.Page
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
	err := f.ReadPage(0, &p)
	if !errors.Is(err, ErrInjected) || !storage.IsTransient(err) {
		t.Fatalf("transient nth read: err = %v", err)
	}
	// Only the Nth read fails.
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatalf("read after transient blip: %v", err)
	}
	if f.FaultsInjected() != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", f.FaultsInjected())
	}
}

// TestProbabilisticFaultsDeterministic: the same seed produces the same
// fault schedule; a different seed produces a different one.
func TestProbabilisticFaultsDeterministic(t *testing.T) {
	schedule := func(seed int64) []bool {
		f := Wrap(seededFile(t, 2), Policy{FailProb: 0.3, Seed: seed})
		var p storage.Page
		out := make([]bool, 100)
		for i := range out {
			out[i] = f.ReadPage(0, &p) != nil
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at read %d", i)
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 100-read schedule")
	}
	// Sanity: ~30% fault rate, not 0 or 100.
	n := 0
	for _, failed := range a {
		if failed {
			n++
		}
	}
	if n < 10 || n > 60 {
		t.Fatalf("fault count %d/100 implausible for p=0.3", n)
	}
}

// TestSetPolicyResetsSchedule: SetPolicy with the same seed replays the
// identical fault stream from the start.
func TestSetPolicyResetsSchedule(t *testing.T) {
	f := Wrap(seededFile(t, 2), Policy{FailProb: 0.5, Seed: 42})
	var p storage.Page
	first := make([]bool, 20)
	for i := range first {
		first[i] = f.ReadPage(0, &p) != nil
	}
	f.SetPolicy(Policy{FailProb: 0.5, Seed: 42})
	if f.Reads() != 0 || f.FaultsInjected() != 0 {
		t.Fatal("SetPolicy did not reset counters")
	}
	for i := range first {
		if got := f.ReadPage(0, &p) != nil; got != first[i] {
			t.Fatalf("replayed schedule diverged at read %d", i)
		}
	}
}

func TestCorruptNthRead(t *testing.T) {
	f := Wrap(seededFile(t, 4), Policy{CorruptNthRead: 2})
	var p storage.Page
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(0, &p); err != nil {
		t.Fatalf("clean read fails verification: %v", err)
	}
	// Read 2 is corrupted: ReadPage succeeds but verification fails …
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatalf("corrupted read should succeed at the I/O level: %v", err)
	}
	if err := storage.VerifyPage(1, &p); !storage.IsCorrupt(err) {
		t.Fatalf("corrupted page passes verification: %v", err)
	}
	// … and permanent corruption sticks to that page on every later read.
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(1, &p); !storage.IsCorrupt(err) {
		t.Fatal("at-rest corruption healed itself on re-read")
	}
	// Other pages stay intact.
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(0, &p); err != nil {
		t.Fatalf("unrelated page damaged: %v", err)
	}
}

func TestCorruptNthReadTransient(t *testing.T) {
	f := Wrap(seededFile(t, 2), Policy{CorruptNthRead: 1, Transient: true})
	var p storage.Page
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(1, &p); !storage.IsCorrupt(err) {
		t.Fatal("transient corruption not applied")
	}
	// A torn read heals on retry.
	if err := f.ReadPage(1, &p); err != nil {
		t.Fatal(err)
	}
	if err := storage.VerifyPage(1, &p); err != nil {
		t.Fatalf("transient corruption persisted: %v", err)
	}
}

func TestMaxFaultsCap(t *testing.T) {
	f := Wrap(seededFile(t, 2), Policy{FailProb: 1, MaxFaults: 3})
	var p storage.Page
	failures := 0
	for i := 0; i < 10; i++ {
		if f.ReadPage(0, &p) != nil {
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("failures = %d, want 3 (MaxFaults cap)", failures)
	}
}

func TestLatencyInjection(t *testing.T) {
	f := Wrap(seededFile(t, 1), Policy{Latency: 5 * time.Millisecond})
	var p storage.Page
	start := time.Now()
	if err := f.ReadPage(0, &p); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("read returned in %v, want >= 5ms", d)
	}
}

// TestPoolHealsTransientInjectedFaults wires the wrapper under a real
// buffer pool: a transient blip is retried away invisibly.
func TestPoolHealsTransientInjectedFaults(t *testing.T) {
	f := Wrap(seededFile(t, 4), Policy{FailNthRead: 1, Transient: true})
	bp := storage.NewBufferPool(f, 4)
	bp.SetRetryPolicy(storage.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond})
	pg, err := bp.Get(0)
	if err != nil {
		t.Fatalf("pool over transient fault: %v", err)
	}
	if pg[storage.PageHeaderSize] != 0 {
		t.Fatalf("content = %d", pg[storage.PageHeaderSize])
	}
	bp.Unpin(0, false)
	if st := bp.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}
