// Package cost implements the paper's cost model (§2.2.2) for the physical
// operations a structural join plan is made of:
//
//	Index access                cost = f_I  · n
//	Sort                        cost = n·log₂n · f_s
//	Stack-Tree-Desc join        cost = 2·|A| · f_st
//	Stack-Tree-Anc join         cost = 2·|AB| · f_IO + 2·|A| · f_st
//
// where |A| is the cardinality of the ancestor-side input and |AB| the join
// result cardinality. The f-factors normalise heterogeneous physical
// operations onto one scale; each deployment has its own constants, so the
// package ships defaults measured against this library's executor plus a
// Calibrate helper that re-measures them on the current machine.
package cost

import (
	"math"
)

// Model carries the normalisation factors of the paper's cost model: the
// four factors of §2.2.2 plus FSC, a small per-tuple streaming term. The
// paper's Stack-Tree formulas keep only each algorithm's dominant terms;
// §2.2.1 states the full cost is "a linear function of the sizes of the
// inputs and the size of the output", and FSC supplies exactly those linear
// terms. It is an order of magnitude below the dominant factors, so it
// never overturns the paper's formulas — it breaks their ties in favour of
// smaller intermediate results, which is what the executor rewards.
//
// A zero Model is unusable; use DefaultModel or Calibrate.
type Model struct {
	FI  float64 // per item retrieved through an index
	FS  float64 // per item·log₂(items) sorted
	FIO float64 // per item of buffered join output written+read (Anc lists)
	FST float64 // per stack operation in a Stack-Tree join
	FSC float64 // per tuple streamed into or out of a join
	FV  float64 // per item retrieved through a value-index probe
}

// DefaultModel returns factors measured against this library's executor on
// commodity x86-64 (see Calibrate and the calibration test). Only ratios
// matter for plan choice; the absolute scale approximates nanoseconds.
func DefaultModel() Model {
	return Model{
		FI:  60, // index access touches postings + node pages
		FS:  25, // comparison sort per item·log₂n
		FIO: 45, // buffered pair written + read back
		FST: 30, // push+pop bookkeeping per input tuple
		FSC: 4,  // merge-step and output-tuple construction
		FV:  75, // value-probe posting: block decode + possible merge step
	}
}

// IndexAccess returns the cost of retrieving n items through a tag index.
func (m Model) IndexAccess(n float64) float64 { return m.FI * n }

// ValueProbe returns the cost of retrieving n items through a value-index
// probe. A probed posting is slightly more expensive than a tag-index
// posting (smaller blocks decode worse, and multi-run probes pay a merge
// step), so FV defaults above FI — the probe wins on cardinality, not on
// per-item rate. Models predating FV (zero value) fall back to 1.25·FI so
// hand-built Model literals in tests and calibration files keep working.
func (m Model) ValueProbe(n float64) float64 {
	fv := m.FV
	if fv <= 0 {
		fv = 1.25 * m.FI
	}
	return fv * n
}

// Sort returns the cost of sorting n items.
func (m Model) Sort(n float64) float64 {
	if n <= 1 {
		return 0
	}
	return n * math.Log2(n) * m.FS
}

// StackTreeDesc returns the cost of a Stack-Tree-Desc join with
// ancestor-side input cardinality a, descendant-side input cardinality b
// and output cardinality ab: the paper's 2·|A|·f_st dominant term plus the
// linear streaming terms.
func (m Model) StackTreeDesc(a, b, ab float64) float64 {
	return 2*a*m.FST + (a+b+ab)*m.FSC
}

// StackTreeAnc returns the cost of a Stack-Tree-Anc join with the same
// cardinalities. The 2·|AB|·f_IO term pays for writing and re-reading the
// self/inherit lists that Anc buffers to emit output in ancestor order.
func (m Model) StackTreeAnc(a, b, ab float64) float64 {
	return 2*ab*m.FIO + 2*a*m.FST + (a+b+ab)*m.FSC
}

// Valid reports whether all factors are positive.
func (m Model) Valid() bool {
	return m.FI > 0 && m.FS > 0 && m.FIO > 0 && m.FST > 0 && m.FSC > 0
}
