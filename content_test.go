package sjos

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomValueXML generates a document whose leaves carry a mix of numeric
// values (several spellings per numeric group), short words and empty
// content, so value predicates hit every eligibility case of the content
// index: exact-match probes, numeric-group merges, range probes over
// all-numeric tags, and ineligible fallbacks.
func randomValueXML(rng *rand.Rand, n int, tags []string) string {
	var sb strings.Builder
	var gen func(budget int) int
	gen = func(budget int) int {
		used := 0
		for used < budget {
			take := 1
			if budget-used > 1 {
				take = 1 + rng.Intn(budget-used)
			}
			tag := tags[rng.Intn(len(tags))]
			sb.WriteString("<" + tag + ">")
			switch rng.Intn(5) {
			case 0:
				fmt.Fprintf(&sb, "%d", rng.Intn(12))
			case 1:
				fmt.Fprintf(&sb, "%d.0", rng.Intn(12)) // alternate numeric spelling
			case 2:
				fmt.Fprintf(&sb, "w%d", rng.Intn(6))
			default: // no value
			}
			gen(take - 1)
			sb.WriteString("</" + tag + ">")
			used += take
		}
		return used
	}
	sb.WriteString("<root>")
	gen(n)
	sb.WriteString("</root>")
	return sb.String()
}

// randomValueTwig is randomTwig with value predicates mixed in: branches
// and chain steps can carry comparison tests drawn from every operator, so
// optimized plans contain both probe-eligible and scan+filter leaves.
func randomValueTwig(rng *rand.Rand, tags []string, n int) *Pattern {
	ops := []string{"=", "!=", "<", "<=", ">", ">=", "~"}
	lits := []string{`"3"`, `"7"`, `"7.0"`, `"11"`, `"w2"`, `"w"`, `"0"`}
	var sb strings.Builder
	sb.WriteString("//" + tags[rng.Intn(len(tags))])
	for i := 1; i < n; i++ {
		tag := tags[rng.Intn(len(tags))]
		switch rng.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, "[%s]", tag)
		case 1:
			fmt.Fprintf(&sb, "[.//%s]", tag)
		case 2:
			fmt.Fprintf(&sb, "/%s", tag)
		case 3:
			fmt.Fprintf(&sb, "//%s", tag)
		default: // value-predicate branch
			fmt.Fprintf(&sb, "[%s %s %s]", tag, ops[rng.Intn(len(ops))], lits[rng.Intn(len(lits))])
		}
	}
	return MustParsePattern(sb.String())
}

// TestValueIndexDifferential is the acceptance differential for predicate
// pushdown: for every optimizer, the value-index lane and the NoValueIndex
// (scan+filter) lane must produce identical match multisets on random
// documents and value-predicated patterns — through batched, tuple and
// partition-parallel execution. Runs under -race in CI (make check).
func TestValueIndexDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	tags := []string{"a", "b", "c", "d"}
	methods := []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy}
	lanes := []struct {
		name     string
		novidx   bool
		nobatch  bool
		parallel bool
	}{
		{"vidx-batched", false, false, false},
		{"vidx-tuple", false, true, false},
		{"novidx-batched", true, false, false},
		{"novidx-tuple", true, true, false},
		{"vidx-parallel", false, false, true},
		{"novidx-parallel", true, false, true},
	}
	totalProbes := 0
	for trial := 0; trial < 6; trial++ {
		doc := randomValueXML(rng, 40+rng.Intn(260), tags)
		db, err := LoadXMLString(doc, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dbp := db.WithParallelism(3)
		for q := 0; q < 3; q++ {
			pat := randomValueTwig(rng, tags, 2+rng.Intn(4))
			for _, m := range methods {
				var want []string
				for _, lane := range lanes {
					target := db
					if lane.parallel {
						target = dbp
					}
					r, err := target.QueryPatternContext(context.Background(), pat,
						QueryOptions{ExecOptions: ExecOptions{Method: m, NoValueIndex: lane.novidx, NoBatch: lane.nobatch}})
					if err != nil {
						t.Fatalf("trial %d %v %s on %s: %v", trial, m, lane.name, pat, err)
					}
					if !lane.novidx {
						totalProbes += r.Exec.ValueProbes
					}
					got := canonicalize(r.Matches)
					if lane.name == lanes[0].name {
						want = got
						continue
					}
					if !equalStrings(got, want) {
						t.Fatalf("trial %d: %v %s disagrees with %s on %s: %d vs %d matches",
							trial, m, lane.name, lanes[0].name, pat, len(got), len(want))
					}
				}
			}
		}
	}
	if totalProbes == 0 {
		t.Fatal("differential never exercised a value-index probe")
	}
}

// TestValueIndexPlanAndStats pins the end-to-end surface of the pushdown
// on a fixed selective query: the plan print, the probe counters, the
// scanned-tuple reduction, and the NoValueIndex escape hatch.
func TestValueIndexPlanAndStats(t *testing.T) {
	db, err := GenerateDataset("dblp", 0.2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat := MustParsePattern(`//article[year < 1980]/title`)
	probe, err := db.QueryPatternContext(context.Background(), pat,
		QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(probe.PlanText, "ValueIndexScan") {
		t.Fatalf("probe plan lacks ValueIndexScan:\n%s", probe.PlanText)
	}
	if probe.Exec.ValueProbes == 0 {
		t.Fatalf("probe lane reported no value probes: %+v", probe.Exec)
	}
	scan, err := db.QueryPatternContext(context.Background(), pat,
		QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP, NoValueIndex: true}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(scan.PlanText, "ValueIndexScan") {
		t.Fatalf("NoValueIndex plan still probes:\n%s", scan.PlanText)
	}
	if scan.Exec.ValueProbes != 0 {
		t.Fatalf("NoValueIndex lane reported %d probes", scan.Exec.ValueProbes)
	}
	if len(probe.Matches) != len(scan.Matches) {
		t.Fatalf("lanes disagree: %d vs %d matches", len(probe.Matches), len(scan.Matches))
	}
	if !equalStrings(canonicalize(probe.Matches), canonicalize(scan.Matches)) {
		t.Fatal("lanes disagree on match sets")
	}
	if probe.Exec.ScannedTuples >= scan.Exec.ScannedTuples {
		t.Fatalf("pushdown did not reduce scanned tuples: probe %d, scan %d",
			probe.Exec.ScannedTuples, scan.Exec.ScannedTuples)
	}
	cs := db.ContentStats()
	if !cs.ValueIndexed || cs.ValueProbes == 0 {
		t.Fatalf("ContentStats = %+v after probe query", cs)
	}
	if cs.PostingsBytes >= cs.RawPostingsBytes {
		t.Fatalf("postings not compressed: %d vs raw %d", cs.PostingsBytes, cs.RawPostingsBytes)
	}
	// The metrics exposition carries the new counters.
	var sb strings.Builder
	db.WriteMetrics(&sb)
	for _, metric := range []string{
		"sjos_value_index_probes_total", "sjos_postings_blocks_decoded_total",
		"sjos_value_index_enabled 1", "sjos_postings_bytes", "sjos_intern_hits_total",
	} {
		if !strings.Contains(sb.String(), metric) {
			t.Fatalf("metrics exposition lacks %s", metric)
		}
	}
}

// TestNoValueIndexDatabaseOption checks the build-time escape hatch: a
// database built with Options.NoValueIndex never probes, even when queries
// don't ask for the per-query hatch, and still answers correctly.
func TestNoValueIndexDatabaseOption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	doc := randomValueXML(rng, 300, []string{"a", "b", "c"})
	ref, err := LoadXMLString(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := LoadXMLString(doc, &Options{NoValueIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if cs := db.ContentStats(); cs.ValueIndexed {
		t.Fatal("NoValueIndex database built a value index")
	}
	pat := MustParsePattern(`//a[b < "7"]`)
	want, err := ref.QueryPattern(pat, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.QueryPattern(pat, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if got.Exec.ValueProbes != 0 {
		t.Fatalf("unindexed database reported %d probes", got.Exec.ValueProbes)
	}
	if !equalStrings(canonicalize(got.Matches), canonicalize(want.Matches)) {
		t.Fatalf("unindexed database disagrees: %d vs %d matches", len(got.Matches), len(want.Matches))
	}
}

// allocsBudgetBatchedProbe bounds allocations per batched value-probe
// query (optimize cached, CountOnly). Measured ~1.1k/op, against ~6.7k
// for the same query tuple-at-a-time; the budget leaves >2x headroom for
// harness noise while still catching a slide back toward the unbatched,
// uninterned figure.
const allocsBudgetBatchedProbe = 2500

// TestBatchedProbeAllocs is the allocs/op regression guard for the
// content-index path: a cached, batched, count-only probe query must stay
// well under the pre-interning allocation figure.
func TestBatchedProbeAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short harnesses")
	}
	db, err := GenerateDataset("dblp", 0.2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat := MustParsePattern(`//article[year < 1980]/title`)
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan.Format(pat), "ValueIndexScan") {
		t.Fatalf("plan lacks ValueIndexScan:\n%s", res.Plan.Format(pat))
	}
	run := func() {
		if _, err := db.Run(context.Background(), pat, res.Plan, RunOptions{CountOnly: true}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the buffer pool and lazy state outside the measurement
	allocs := testing.AllocsPerRun(20, run)
	if allocs > allocsBudgetBatchedProbe {
		t.Fatalf("batched probe query allocates %.0f/op, budget %d", allocs, allocsBudgetBatchedProbe)
	}
	t.Logf("batched probe query: %.0f allocs/op (budget %d)", allocs, allocsBudgetBatchedProbe)
}
