package exec

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/xmltree"
)

// parallelTestPlans returns structurally different valid plans for the
// 4-node pattern //a[.//b/c]//d (a=0 b=1 c=2 d=3): fully-pipelined bushy,
// left-deep with a sort, and bushy over two composites.
func parallelTestPlans() []*plan.Node {
	return []*plan.Node{
		plan.NewJoin(
			plan.NewJoin(plan.NewIndexScan(0),
				plan.NewJoin(plan.NewIndexScan(1), plan.NewIndexScan(2), 1, 2, pattern.Child, plan.AlgoAnc),
				0, 1, pattern.Descendant, plan.AlgoAnc),
			plan.NewIndexScan(3), 0, 3, pattern.Descendant, plan.AlgoAnc),
		plan.NewJoin(
			plan.NewSort(
				plan.NewJoin(
					plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc),
					plan.NewIndexScan(2), 1, 2, pattern.Child, plan.AlgoDesc),
				0),
			plan.NewIndexScan(3), 0, 3, pattern.Descendant, plan.AlgoDesc),
		plan.NewJoin(
			plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(3), 0, 3, pattern.Descendant, plan.AlgoAnc),
			plan.NewJoin(plan.NewIndexScan(1), plan.NewIndexScan(2), 1, 2, pattern.Child, plan.AlgoAnc),
			0, 1, pattern.Descendant, plan.AlgoAnc),
	}
}

// exactEq is element-wise equality in sequence order — the parallel driver
// promises the serial order, not just the serial multiset.
func exactEq(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestParallelRunMatchesSerial checks the core promise on random folded
// documents: for every plan shape and K ∈ {1,2,3,7}, ParallelExec.Run
// returns exactly the serial result sequence, and the merged OutputTuples
// counter matches.
func TestParallelRunMatchesSerial(t *testing.T) {
	pat := pattern.MustParse("//a[.//b/c]//d")
	plans := parallelTestPlans()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		base := xmltree.RandomDocument(rng, 2+rng.Intn(100), []string{"a", "b", "c", "d"})
		doc := xmltree.Fold(base, 1+rng.Intn(5))
		for pi, p := range plans {
			serialCtx := newCtx(t, doc)
			want, err := Run(serialCtx, pat, p)
			if err != nil {
				t.Fatalf("trial %d plan %d serial: %v", trial, pi, err)
			}
			for _, k := range []int{1, 2, 3, 7} {
				pe := &ParallelExec{Workers: k, Partitions: k}
				pctx := newCtx(t, doc)
				got, err := pe.Run(context.Background(), pctx, pat, p)
				if err != nil {
					t.Fatalf("trial %d plan %d k=%d: %v", trial, pi, k, err)
				}
				if !exactEq(got, want) {
					t.Fatalf("trial %d plan %d k=%d: parallel output differs (%d vs %d tuples)",
						trial, pi, k, len(got), len(want))
				}
				if pctx.Stats.OutputTuples != serialCtx.Stats.OutputTuples {
					t.Fatalf("trial %d plan %d k=%d: OutputTuples %d, serial %d",
						trial, pi, k, pctx.Stats.OutputTuples, serialCtx.Stats.OutputTuples)
				}
			}
		}
	}
}

// TestParallelRunCountMatchesSerial checks the count-only path.
func TestParallelRunCountMatchesSerial(t *testing.T) {
	pat := pattern.MustParse("//a[.//b/c]//d")
	plans := parallelTestPlans()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		base := xmltree.RandomDocument(rng, 2+rng.Intn(120), []string{"a", "b", "c", "d"})
		doc := xmltree.Fold(base, 1+rng.Intn(4))
		for pi, p := range plans {
			want, err := RunCount(newCtx(t, doc), pat, p)
			if err != nil {
				t.Fatalf("trial %d plan %d serial: %v", trial, pi, err)
			}
			for _, k := range []int{2, 5} {
				pe := &ParallelExec{Workers: k, Partitions: k}
				pctx := newCtx(t, doc)
				got, err := pe.RunCount(context.Background(), pctx, pat, p)
				if err != nil {
					t.Fatalf("trial %d plan %d k=%d: %v", trial, pi, k, err)
				}
				if got != want {
					t.Fatalf("trial %d plan %d k=%d: count %d, serial %d", trial, pi, k, got, want)
				}
				if pctx.Stats.OutputTuples != want {
					t.Fatalf("trial %d plan %d k=%d: OutputTuples %d, want %d",
						trial, pi, k, pctx.Stats.OutputTuples, want)
				}
			}
		}
	}
}

// TestParallelRunLimitIsSerialPrefix checks that RunLimit(n) returns
// exactly the first n tuples of the serial output for every n.
func TestParallelRunLimitIsSerialPrefix(t *testing.T) {
	pat := pattern.MustParse("//a[.//b/c]//d")
	rng := rand.New(rand.NewSource(11))
	base := xmltree.RandomDocument(rng, 90, []string{"a", "b", "c", "d"})
	doc := xmltree.Fold(base, 6)
	for pi, p := range parallelTestPlans() {
		full, err := Run(newCtx(t, doc), pat, p)
		if err != nil {
			t.Fatalf("plan %d serial: %v", pi, err)
		}
		for n := 0; n <= len(full)+2; n++ {
			pe := &ParallelExec{Workers: 3, Partitions: 5}
			pctx := newCtx(t, doc)
			got, err := pe.RunLimit(context.Background(), pctx, pat, p, n)
			if err != nil {
				t.Fatalf("plan %d limit %d: %v", pi, n, err)
			}
			want := full
			if n < len(full) {
				want = full[:n]
			}
			if !exactEq(got, want) {
				t.Fatalf("plan %d limit %d: got %d tuples, want prefix of %d",
					pi, n, len(got), len(want))
			}
			if pctx.Stats.OutputTuples != len(want) {
				t.Fatalf("plan %d limit %d: OutputTuples %d, want %d",
					pi, n, pctx.Stats.OutputTuples, len(want))
			}
		}
	}
}

// TestParallelRunCancelled checks that a pre-cancelled context aborts a
// multi-partition run with the context's error.
func TestParallelRunCancelled(t *testing.T) {
	pat := pattern.MustParse("//a[.//b/c]//d")
	rng := rand.New(rand.NewSource(13))
	doc := xmltree.Fold(xmltree.RandomDocument(rng, 80, []string{"a", "b", "c", "d"}), 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pe := &ParallelExec{Workers: 2, Partitions: 4}
	if _, err := pe.Run(ctx, newCtx(t, doc), pat, parallelTestPlans()[0]); err == nil {
		t.Fatal("cancelled run reported success")
	}
}

// TestParallelRunDegenerate covers the single-partition fast path (K=1 and
// a pattern whose root tag is absent from the document).
func TestParallelRunDegenerate(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	p := plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	want, err := Run(newCtx(t, doc), pat, p)
	if err != nil {
		t.Fatal(err)
	}
	pe := &ParallelExec{Workers: 1, Partitions: 1}
	got, err := pe.Run(context.Background(), newCtx(t, doc), pat, p)
	if err != nil {
		t.Fatal(err)
	}
	if !exactEq(got, want) {
		t.Fatalf("K=1: got %d tuples, want %d", len(got), len(want))
	}

	missing := pattern.MustParse("//ghost//name")
	mp := plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	pe = &ParallelExec{Workers: 4, Partitions: 4}
	out, err := pe.Run(context.Background(), newCtx(t, doc), missing, mp)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("absent root tag: got %d tuples, want 0", len(out))
	}
}
