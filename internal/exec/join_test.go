package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// newCtx builds an execution context over doc with a generous buffer pool.
func newCtx(t testing.TB, doc *xmltree.Document) *Context {
	t.Helper()
	st, err := storage.BuildStore(doc, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &Context{Doc: doc, Store: st}
}

const personnelXML = `<db>
  <manager><name>alice</name>
    <employee><name>bob</name></employee>
    <manager><name>carol</name>
      <department><name>tools</name></department>
      <employee><name>eve</name></employee>
    </manager>
  </manager>
  <manager><name>dan</name>
    <department><name>ops</name></department>
  </manager>
</db>`

func personnelDoc(t testing.TB) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(personnelXML)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runEdgeJoin joins the 2-node pattern "anc axis desc" with the given
// algorithm and returns normalised, canonically sorted results.
func runEdgeJoin(t *testing.T, doc *xmltree.Document, anc, desc string, ax pattern.Axis, algo plan.Algo) []Tuple {
	t.Helper()
	src := "//" + anc + "/" + desc
	if ax == pattern.Descendant {
		src = "//" + anc + "//" + desc
	}
	pat := pattern.MustParse(src)
	left := NewIndexScan(pat, 0)
	right := NewIndexScan(pat, 1)
	j, err := NewStackTreeJoin(left, right, 0, 1, ax, algo)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, doc)
	out, err := Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	norm := NormalizeAll(j.Schema(), 2, out)
	return norm
}

func refEdgeJoin(doc *xmltree.Document, anc, desc string, ax pattern.Axis) []Tuple {
	src := "//" + anc + "/" + desc
	if ax == pattern.Descendant {
		src = "//" + anc + "//" + desc
	}
	return ReferenceMatches(doc, pattern.MustParse(src))
}

func sortedEq(a, b []Tuple) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	SortCanonical(a)
	SortCanonical(b)
	return reflect.DeepEqual(a, b)
}

func TestStackTreeMatchesReferenceOnPersonnel(t *testing.T) {
	doc := personnelDoc(t)
	for _, ax := range []pattern.Axis{pattern.Child, pattern.Descendant} {
		for _, algo := range []plan.Algo{plan.AlgoDesc, plan.AlgoAnc} {
			for _, edge := range [][2]string{
				{"manager", "employee"},
				{"manager", "manager"},
				{"manager", "name"},
				{"db", "department"},
				{"employee", "name"},
			} {
				got := runEdgeJoin(t, doc, edge[0], edge[1], ax, algo)
				want := refEdgeJoin(doc, edge[0], edge[1], ax)
				if !sortedEq(got, want) {
					t.Errorf("%s %v %s via %v: got %d pairs, want %d",
						edge[0], ax, edge[1], algo, len(got), len(want))
				}
			}
		}
	}
}

func TestDescOutputOrderedByDescendant(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	j, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, doc)
	out, err := Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no output")
	}
	col, _ := j.Schema().Col(1)
	for i := 1; i < len(out); i++ {
		if doc.Start(out[i][col]) < doc.Start(out[i-1][col]) {
			t.Fatalf("output not ordered by descendant at %d", i)
		}
	}
}

func TestAncOutputOrderedByAncestor(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	j, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, plan.AlgoAnc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, doc)
	out, err := Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no output")
	}
	col, _ := j.Schema().Col(0)
	for i := 1; i < len(out); i++ {
		if doc.Start(out[i][col]) < doc.Start(out[i-1][col]) {
			t.Fatalf("output not ordered by ancestor at %d", i)
		}
	}
	if ctx.Stats.BufferedPairs != len(out) {
		t.Errorf("BufferedPairs = %d, want %d", ctx.Stats.BufferedPairs, len(out))
	}
}

// TestStackTreeRandomDocs is the core property test: on random documents,
// both join variants agree with brute force for both axes.
func TestStackTreeRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tags := []string{"a", "b", "c"}
	for trial := 0; trial < 120; trial++ {
		doc := xmltree.RandomDocument(rng, 2+rng.Intn(120), tags)
		for _, ax := range []pattern.Axis{pattern.Child, pattern.Descendant} {
			for _, algo := range []plan.Algo{plan.AlgoDesc, plan.AlgoAnc} {
				a := tags[rng.Intn(len(tags))]
				b := tags[rng.Intn(len(tags))]
				got := runEdgeJoin(t, doc, a, b, ax, algo)
				want := refEdgeJoin(doc, a, b, ax)
				if !sortedEq(got, want) {
					t.Fatalf("trial %d: %s %v %s via %v: got %d, want %d",
						trial, a, ax, b, algo, len(got), len(want))
				}
			}
		}
	}
}

// TestJoinOverTupleStreams joins three pattern nodes, exercising joins whose
// inputs are join outputs (tuple streams with duplicate key nodes).
func TestJoinOverTupleStreams(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager[.//employee]//name")
	// Plan: (manager Anc-join employee) ordered by manager, then
	// Anc-join name, ordered by manager.
	me, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, plan.AlgoAnc)
	if err != nil {
		t.Fatal(err)
	}
	men, err := NewStackTreeJoin(me, NewIndexScan(pat, 2), 0, 2, pattern.Descendant, plan.AlgoAnc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, doc)
	out, err := Drain(ctx, men)
	if err != nil {
		t.Fatal(err)
	}
	got := NormalizeAll(men.Schema(), 3, out)
	want := ReferenceMatches(doc, pat)
	if !sortedEq(got, want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	// Ordered by manager throughout.
	for i := 1; i < len(out); i++ {
		c, _ := men.Schema().Col(0)
		if doc.Start(out[i][c]) < doc.Start(out[i-1][c]) {
			t.Fatal("tuple-stream Anc join broke ancestor order")
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//nosuchtag//name")
	j, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, doc)
	out, err := Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("join with empty left produced %d tuples", len(out))
	}
}

func TestNewStackTreeJoinRejectsMissingColumns(t *testing.T) {
	pat := pattern.MustParse("//a//b")
	if _, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 5, 1, pattern.Descendant, plan.AlgoDesc); err == nil {
		t.Fatal("missing ancestor column accepted")
	}
	if _, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 5, pattern.Descendant, plan.AlgoDesc); err == nil {
		t.Fatal("missing descendant column accepted")
	}
}

func TestStatsCounters(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	j, _ := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	ctx := newCtx(t, doc)
	out, err := Drain(ctx, j)
	if err != nil {
		t.Fatal(err)
	}
	mgr, _ := doc.LookupTag("manager")
	nm, _ := doc.LookupTag("name")
	if want := doc.TagCount(mgr) + doc.TagCount(nm); ctx.Stats.ScannedTuples != want {
		t.Errorf("ScannedTuples = %d, want %d", ctx.Stats.ScannedTuples, want)
	}
	if ctx.Stats.StackOps == 0 {
		t.Error("StackOps not counted")
	}
	if ctx.Stats.BufferedPairs != 0 {
		t.Error("Desc join should buffer nothing")
	}
	if ctx.Stats.OutputTuples != len(out) {
		t.Errorf("OutputTuples = %d, want %d", ctx.Stats.OutputTuples, len(out))
	}
}
