package sjos

import (
	"strings"
	"sync"
	"testing"
)

const facadeXML = `<db>
  <manager><name>alice</name>
    <employee><name>bob</name><salary>50000</salary></employee>
    <manager><name>carol</name>
      <department><name>tools</name></department>
      <employee><name>eve</name></employee>
    </manager>
  </manager>
  <manager><name>dan</name><department><name>ops</name></department></manager>
</db>`

func openDB(t testing.TB) *Database {
	t.Helper()
	db, err := LoadXMLString(facadeXML, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadAndQuery(t *testing.T) {
	db := openDB(t)
	if db.NumNodes() == 0 {
		t.Fatal("empty database")
	}
	res, err := db.Query("//manager//employee/name", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	// employee names under managers: bob (x1 under alice), eve under
	// carol and alice -> bob, eve, eve: alice-bob, alice-eve, carol-eve.
	if len(res.Matches) != 3 {
		t.Fatalf("got %d matches, want 3", len(res.Matches))
	}
	for _, m := range res.Matches {
		if db.TagName(m[0]) != "manager" || db.TagName(m[2]) != "name" {
			t.Fatalf("match binds wrong tags: %v", m)
		}
	}
	if res.PlanText == "" || res.PlansConsidered == 0 || res.EstCost <= 0 {
		t.Errorf("missing result metadata: %+v", res)
	}
}

func TestQueryAllMethodsAgree(t *testing.T) {
	db := openDB(t)
	src := "//manager[.//employee/name]//department/name"
	var want int
	for i, m := range []Method{MethodDP, MethodDPP, MethodDPPNoLookahead, MethodDPAPEB, MethodDPAPLD, MethodFP} {
		res, err := db.Query(src, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if i == 0 {
			want = len(res.Matches)
			if want == 0 {
				t.Fatal("expected matches")
			}
			continue
		}
		if len(res.Matches) != want {
			t.Errorf("%v: %d matches, want %d", m, len(res.Matches), want)
		}
	}
}

func TestQueryWithValuePredicate(t *testing.T) {
	db := openDB(t)
	res, err := db.Query(`//employee[salary >= 40000]/name`, MethodFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 {
		t.Fatalf("got %d matches, want 1", len(res.Matches))
	}
	if db.Value(res.Matches[0][2]) != "bob" {
		t.Fatalf("matched %q", db.Value(res.Matches[0][2]))
	}
}

func TestTwigStackFacadeAgrees(t *testing.T) {
	db := openDB(t)
	src := "//manager[.//employee/name]//department/name"
	qr, err := db.Query(src, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := db.TwigStack(MustParsePattern(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tw) != len(qr.Matches) {
		t.Fatalf("TwigStack %d matches, plans %d", len(tw), len(qr.Matches))
	}
}

func TestBadPlanFacade(t *testing.T) {
	db := openDB(t)
	pat := MustParsePattern("//manager//employee/name")
	bad, err := db.BadPlan(pat, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	good, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Cost < good.Cost {
		t.Fatalf("bad plan cost %v < optimal %v", bad.Cost, good.Cost)
	}
	// Both must execute to the same result count.
	nb, _, err := execCount(db, pat, bad.Plan)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := execCount(db, pat, good.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if nb != ng {
		t.Fatalf("bad plan found %d matches, good plan %d", nb, ng)
	}
}

func TestExplain(t *testing.T) {
	db := openDB(t)
	s, err := db.Explain(MustParsePattern("//manager[.//employee/name]//department/name"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DP:", "DPP:", "DPAP-EB:", "DPAP-LD:", "FP:", "fully-pipelined", "IndexScan"} {
		if !strings.Contains(s, want) {
			t.Errorf("Explain output missing %q", want)
		}
	}
}

func TestGenerateDatasetFacade(t *testing.T) {
	for _, name := range []string{"mbench", "dblp", "pers"} {
		db, err := GenerateDataset(name, 0.05, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if db.NumNodes() == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
	if _, err := GenerateDataset("nope", 1, 1, nil); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	// Folding multiplies matches.
	base, err := GenerateDataset("pers", 0.05, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := GenerateDataset("pers", 0.05, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat := MustParsePattern("//manager/employee")
	b, errB := base.Query("//manager/employee", MethodFP)
	f, errF := folded.QueryPattern(pat, MethodFP)
	if errB != nil || errF != nil {
		t.Fatal(errB, errF)
	}
	if len(f.Matches) != 4*len(b.Matches) {
		t.Fatalf("folding x4: %d matches, base %d", len(f.Matches), len(b.Matches))
	}
}

func TestParseMethodFacade(t *testing.T) {
	m, err := ParseMethod("FP")
	if err != nil || m != MethodFP {
		t.Fatalf("ParseMethod FP = %v, %v", m, err)
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Fatal("bogus method accepted")
	}
}

func TestCalibrateModelFacade(t *testing.T) {
	if m := CalibrateModel(); !m.Valid() {
		t.Fatal("calibrated model invalid")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadXMLString("not xml", nil); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadXMLString("", nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDiskBackedDatabase(t *testing.T) {
	dir := t.TempDir()
	db, err := LoadXMLString(facadeXML, &Options{DiskPath: dir + "/db.pages", PoolFrames: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("//manager//employee/name", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("disk-backed query: %d matches, want 3", len(res.Matches))
	}
}

func TestMinimizePatternFacade(t *testing.T) {
	p := MustParsePattern("//manager[employee][employee]")
	m, mapping := MinimizePattern(p)
	if m.N() != 2 {
		t.Fatalf("minimized to %d nodes", m.N())
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	db := openDB(t)
	a, err := db.QueryPattern(p, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.QueryPattern(m, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct projected matches agree (minimization collapses duplicate
	// branch bindings).
	if len(b.Matches) == 0 || len(b.Matches) > len(a.Matches) {
		t.Fatalf("original %d matches, minimized %d", len(a.Matches), len(b.Matches))
	}
}

func TestExplainAnalyze(t *testing.T) {
	db := openDB(t)
	s, err := db.ExplainAnalyze(MustParsePattern("//manager//employee/name"), MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"actual=", "est≈", "3 matches", "IndexScan"} {
		if !strings.Contains(s, want) {
			t.Errorf("ExplainAnalyze missing %q:\n%s", want, s)
		}
	}
}

func TestPreparedQueries(t *testing.T) {
	db := openDB(t)
	p, err := db.Prepare("//manager//employee/name", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCost <= 0 || p.Plan() == nil || p.Pattern().N() != 3 {
		t.Fatalf("prepared metadata: %+v", p)
	}
	for i := 0; i < 3; i++ {
		ms, _, err := p.Execute()
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 3 {
			t.Fatalf("execution %d: %d matches", i, len(ms))
		}
		n, _, err := p.Count()
		if err != nil || n != 3 {
			t.Fatalf("count %d: %d, %v", i, n, err)
		}
	}
	if _, err := db.Prepare("///", MethodDPP); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestTraceDPPFacade(t *testing.T) {
	db := openDB(t)
	s, err := db.TraceDPP(MustParsePattern("//manager[employee]//department"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"search trace", "expand", "final", "chosen plan"} {
		if !strings.Contains(s, want) {
			t.Errorf("TraceDPP missing %q", want)
		}
	}
}

func TestSaveAndOpenImage(t *testing.T) {
	db := openDB(t)
	path := t.TempDir() + "/db.img"
	if err := db.SaveImageFile(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenImageFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumNodes() != db.NumNodes() {
		t.Fatalf("reloaded %d nodes, want %d", db2.NumNodes(), db.NumNodes())
	}
	a, err := db.Query("//manager//employee/name", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db2.Query("//manager//employee/name", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Matches) != len(b.Matches) {
		t.Fatalf("image query: %d matches, original %d", len(b.Matches), len(a.Matches))
	}
	if _, err := OpenImageFile(t.TempDir()+"/missing.img", nil); err == nil {
		t.Fatal("missing image accepted")
	}
}

// TestConcurrentQueries validates that one Database serves parallel query
// traffic (immutable document, internally locked buffer pool). Run with
// -race.
func TestConcurrentQueries(t *testing.T) {
	db, err := GenerateDataset("pers", 0.5, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//manager//employee/name",
		"//manager[department]//employee",
		"//manager/department/name",
		"//employee[salary >= 60000]",
	}
	methods := []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodFP}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want := -1
			for i := 0; i < 10; i++ {
				src := queries[g%len(queries)]
				res, err := db.Query(src, methods[(g+i)%len(methods)])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if want == -1 {
					want = len(res.Matches)
				} else if len(res.Matches) != want {
					t.Errorf("goroutine %d: count changed %d -> %d", g, want, len(res.Matches))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
