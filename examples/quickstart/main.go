// Quickstart: load an XML document, run a tree-pattern query with the
// recommended DPP optimizer, and inspect the chosen plan.
package main

import (
	"fmt"
	"log"

	"sjos"
)

const doc = `
<library>
  <shelf floor="1">
    <book><title>The Art of Indexing</title><author>Ada</author><year>1999</year></book>
    <book><title>Streams and Stacks</title><author>Brook</author><year>2002</year></book>
  </shelf>
  <shelf floor="2">
    <book><title>Join Orders Considered</title><author>Ada</author><year>2003</year></book>
    <box><book><title>Misplaced Volume</title><author>Cleo</author><year>2001</year></book></box>
  </shelf>
</library>`

func main() {
	db, err := sjos.LoadXMLString(doc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d element nodes\n\n", db.NumNodes())

	// "//" is ancestor-descendant, "/" parent-child, "[...]" a branch.
	// The Misplaced Volume in the box matches too: shelf//book is an
	// ancestor-descendant edge.
	res, err := db.Query(`//shelf[@floor = "2"]//book[author = "Ada"]/title`, sjos.MethodDPP)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("chosen plan (DPP — optimal):")
	fmt.Println(res.PlanText)
	fmt.Printf("%d match(es) in %v (optimization took %v):\n",
		len(res.Matches), res.ExecuteTime, res.OptimizeTime)
	for _, m := range res.Matches {
		// Slots follow pattern-node order: shelf, @floor, book, author, title.
		fmt.Printf("  title %q (author %q)\n", db.Value(m[4]), db.Value(m[3]))
	}
}
