// Tuning: a walk-through of the DPAP-EB expansion bound Te (§3.3.1 / §4.4
// of the paper). Small Te optimizes fast but risks a worse plan; large Te
// converges to DPP. The paper's Figures 7 and 8 show the resulting "U"
// shape of total time — this example reproduces that trade-off and prints
// the sweep, then shows the paper's recommendation in action.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sjos"
)

func main() {
	// Folding the data set ×20 makes execution time matter relative to
	// optimization time (§4.3: bigger data justifies costlier optimizers).
	db, err := sjos.GenerateDataset("pers", 1, 20, nil)
	if err != nil {
		log.Fatal(err)
	}
	pat := sjos.MustParsePattern("//manager[.//employee/name]//manager/department/name")
	fmt.Printf("Pers ×20: %d element nodes\n\n", db.NumNodes())

	fmt.Println("DPAP-EB sweep over the expansion bound Te:")
	fmt.Printf("%-6s %-12s %-12s %-12s %s\n", "Te", "optimize", "execute", "total", "est. cost")
	for te := 1; te <= pat.N(); te++ {
		t0 := time.Now()
		res, err := db.Optimize(pat, sjos.MethodDPAPEB, te)
		if err != nil {
			log.Fatal(err)
		}
		opt := time.Since(t0)
		t1 := time.Now()
		if _, err := db.Run(context.Background(), pat, res.Plan, sjos.RunOptions{CountOnly: true}); err != nil {
			log.Fatal(err)
		}
		eval := time.Since(t1)
		fmt.Printf("%-6d %-12v %-12v %-12v %.0f\n",
			te, opt.Round(time.Microsecond), eval.Round(time.Microsecond),
			(opt + eval).Round(time.Microsecond), res.Cost)
	}

	fmt.Println("\nReference points:")
	for _, m := range []sjos.Method{sjos.MethodDPP, sjos.MethodFP} {
		t0 := time.Now()
		res, err := db.Optimize(pat, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		opt := time.Since(t0)
		t1 := time.Now()
		if _, err := db.Run(context.Background(), pat, res.Plan, sjos.RunOptions{CountOnly: true}); err != nil {
			log.Fatal(err)
		}
		eval := time.Since(t1)
		fmt.Printf("%-6s %-12v %-12v %-12v %.0f\n",
			m, opt.Round(time.Microsecond), eval.Round(time.Microsecond),
			(opt + eval).Round(time.Microsecond), res.Cost)
	}

	fmt.Println("\nPaper's guidance: when execution dominates, skip tuning Te and use DPP;")
	fmt.Println("when optimization time matters (small data, interactive use), use FP.")
}
