package storage

import (
	"math/rand"
	"testing"

	"sjos/internal/xmltree"
)

func buildDoc(t *testing.T, n int) *xmltree.Document {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	return xmltree.RandomDocument(rng, n, []string{"a", "b", "c", "d", "e"})
}

func TestStoreRoundTrip(t *testing.T) {
	doc := buildDoc(t, 5000)
	st, err := BuildStore(doc, 64)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumNodes() != doc.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", st.NumNodes(), doc.NumNodes())
	}
	for i := 0; i < doc.NumNodes(); i += 37 {
		id := xmltree.NodeID(i)
		rec, err := st.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Start != doc.Start(id) || rec.End != doc.End(id) ||
			rec.Level != doc.Level(id) || rec.Tag != doc.Tag(id) || rec.Parent != doc.Parent(id) {
			t.Fatalf("node %d: record %+v does not match document", id, rec)
		}
	}
}

func TestTagScannerMatchesDocument(t *testing.T) {
	doc := buildDoc(t, 3000)
	st, err := BuildStore(doc, 32)
	if err != nil {
		t.Fatal(err)
	}
	for tg := 0; tg < doc.NumTags(); tg++ {
		tag := xmltree.TagID(tg)
		want := doc.NodesWithTag(tag)
		if st.TagCount(tag) != len(want) {
			t.Fatalf("tag %d: TagCount = %d, want %d", tg, st.TagCount(tag), len(want))
		}
		sc := st.ScanTag(tag)
		if sc.Remaining() != len(want) {
			t.Fatalf("tag %d: Remaining = %d, want %d", tg, sc.Remaining(), len(want))
		}
		var prev xmltree.Pos
		for i := 0; ; i++ {
			id, rec, ok, err := sc.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				if i != len(want) {
					t.Fatalf("tag %d: scanner stopped at %d of %d", tg, i, len(want))
				}
				break
			}
			if id != want[i] {
				t.Fatalf("tag %d: posting %d = %d, want %d", tg, i, id, want[i])
			}
			if rec.Tag != tag {
				t.Fatalf("tag %d: posting %d has record tag %d", tg, i, rec.Tag)
			}
			if i > 0 && rec.Start <= prev {
				t.Fatalf("tag %d: postings not in document order", tg)
			}
			prev = rec.Start
		}
	}
}

func TestScanUnknownTag(t *testing.T) {
	doc := buildDoc(t, 100)
	st, err := BuildStore(doc, 8)
	if err != nil {
		t.Fatal(err)
	}
	sc := st.ScanTag(xmltree.TagID(999))
	if _, _, ok, err := sc.Next(); ok || err != nil {
		t.Fatalf("scan of unknown tag: ok=%v err=%v", ok, err)
	}
	if st.TagCount(xmltree.TagID(999)) != 0 {
		t.Fatal("TagCount of unknown tag should be 0")
	}
}

// TestStoreSmallPoolThrashes checks the store remains correct when the pool
// is far smaller than the data, and that misses are actually observed.
func TestStoreSmallPoolThrashes(t *testing.T) {
	doc := buildDoc(t, 20000)
	st, err := BuildStore(doc, 2)
	if err != nil {
		t.Fatal(err)
	}
	tag := xmltree.TagID(0)
	sc := st.ScanTag(tag)
	n := 0
	for {
		_, _, ok, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != doc.TagCount(tag) {
		t.Fatalf("scanned %d, want %d", n, doc.TagCount(tag))
	}
	if st.Pool().Stats().Evicted == 0 {
		t.Fatal("expected evictions with a 2-frame pool")
	}
}
