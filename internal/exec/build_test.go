package exec

import (
	"math/rand"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/xmltree"
)

func TestSortOperator(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	// Desc join output is ordered by name; sorting by manager re-orders.
	j, _ := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	s, err := NewSort(j, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, doc)
	out, err := Drain(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	col, _ := s.Schema().Col(0)
	for i := 1; i < len(out); i++ {
		if doc.Start(out[i][col]) < doc.Start(out[i-1][col]) {
			t.Fatal("sort output not ordered")
		}
	}
	if ctx.Stats.SortedTuples != len(out) {
		t.Errorf("SortedTuples = %d, want %d", ctx.Stats.SortedTuples, len(out))
	}
	if _, err := NewSort(NewIndexScan(pat, 0), 3); err == nil {
		t.Fatal("sort by absent column accepted")
	}
}

func TestIndexScanPredicate(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse(`//name[. = "carol"]`)
	sc := NewIndexScan(pat, 0)
	ctx := newCtx(t, doc)
	out, err := Drain(ctx, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d carols, want 1", len(out))
	}
	if doc.Value(out[0][0]) != "carol" {
		t.Fatalf("matched value %q", doc.Value(out[0][0]))
	}
	// ScannedTuples counts pre-filter work (the f_I cost term).
	nm, _ := doc.LookupTag("name")
	if ctx.Stats.ScannedTuples != doc.TagCount(nm) {
		t.Errorf("ScannedTuples = %d, want %d", ctx.Stats.ScannedTuples, doc.TagCount(nm))
	}
}

func TestBuildAndRunFullPlan(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager[.//employee/name]//department/name")
	// Bushy pipelined plan: (department Anc name) => by department;
	// (employee Anc name) => by employee; (manager Anc emp-branch);
	// then Anc with dept-branch.
	dn := plan.NewJoin(plan.NewIndexScan(3), plan.NewIndexScan(4), 3, 4, pattern.Child, plan.AlgoAnc)
	en := plan.NewJoin(plan.NewIndexScan(1), plan.NewIndexScan(2), 1, 2, pattern.Child, plan.AlgoAnc)
	men := plan.NewJoin(plan.NewIndexScan(0), en, 0, 1, pattern.Descendant, plan.AlgoAnc)
	full := plan.NewJoin(men, dn, 0, 3, pattern.Descendant, plan.AlgoAnc)
	if err := full.Validate(pat, false); err != nil {
		t.Fatalf("test plan invalid: %v", err)
	}
	ctx := newCtx(t, doc)
	got, err := Run(ctx, pat, full)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceMatches(doc, pat)
	if !sortedEq(got, want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("test should produce matches")
	}
	n, err := RunCount(newCtx(t, doc), pat, full)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("RunCount = %d, want %d", n, len(want))
	}
}

func TestBuildRejectsBadPlans(t *testing.T) {
	pat := pattern.MustParse("//a//b")
	if _, err := Build(pat, &plan.Node{Op: plan.OpIndexScan, PatternNode: 9}); err == nil {
		t.Fatal("out-of-range scan accepted")
	}
	if _, err := Build(pat, &plan.Node{Op: plan.Op(99)}); err == nil {
		t.Fatal("unknown operator accepted")
	}
	bad := plan.NewSort(plan.NewIndexScan(0), 1) // sort by column not present
	if _, err := Build(pat, bad); err == nil {
		t.Fatal("sort by absent column accepted")
	}
}

// TestPlansAgreeOnRandomDocuments executes several structurally different
// valid plans for the same 4-node pattern and checks they all produce the
// reference result multiset.
func TestPlansAgreeOnRandomDocuments(t *testing.T) {
	pat := pattern.MustParse("//a[.//b/c]//d") // a=0 b=1 c=2 d=3
	plans := []*plan.Node{
		// Fully pipelined bushy: ((b Anc c) under a via Anc) Anc d.
		plan.NewJoin(
			plan.NewJoin(plan.NewIndexScan(0),
				plan.NewJoin(plan.NewIndexScan(1), plan.NewIndexScan(2), 1, 2, pattern.Child, plan.AlgoAnc),
				0, 1, pattern.Descendant, plan.AlgoAnc),
			plan.NewIndexScan(3), 0, 3, pattern.Descendant, plan.AlgoAnc),
		// Left-deep with sorts: ((a Desc b) ⋈ c) sorted, then d.
		plan.NewJoin(
			plan.NewSort(
				plan.NewJoin(
					plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc),
					plan.NewIndexScan(2), 1, 2, pattern.Child, plan.AlgoDesc),
				0),
			plan.NewIndexScan(3), 0, 3, pattern.Descendant, plan.AlgoDesc),
		// Bushy with both composites: {a,d} ⋈ {b,c}.
		plan.NewJoin(
			plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(3), 0, 3, pattern.Descendant, plan.AlgoAnc),
			plan.NewJoin(plan.NewIndexScan(1), plan.NewIndexScan(2), 1, 2, pattern.Child, plan.AlgoAnc),
			0, 1, pattern.Descendant, plan.AlgoAnc),
	}
	for i, p := range plans {
		if err := p.Validate(pat, false); err != nil {
			t.Fatalf("plan %d invalid: %v", i, err)
		}
	}
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 40; trial++ {
		doc := xmltree.RandomDocument(rng, 2+rng.Intn(150), []string{"a", "b", "c", "d"})
		want := ReferenceMatches(doc, pat)
		for i, p := range plans {
			got, err := Run(newCtx(t, doc), pat, p)
			if err != nil {
				t.Fatalf("trial %d plan %d: %v", trial, i, err)
			}
			if !sortedEq(got, want) {
				t.Fatalf("trial %d plan %d: got %d matches, want %d", trial, i, len(got), len(want))
			}
		}
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(2, 0)
	if s.Width() != 2 {
		t.Fatalf("Width = %d", s.Width())
	}
	if c, ok := s.Col(0); !ok || c != 1 {
		t.Fatalf("Col(0) = %d,%v", c, ok)
	}
	if _, ok := s.Col(7); ok {
		t.Fatal("Col(7) should be absent")
	}
	st := s.Concat(NewSchema(1))
	if st.Width() != 3 {
		t.Fatalf("concat width = %d", st.Width())
	}
	if got := Normalize(st, 3, Tuple{10, 20, 30}); got[0] != 20 || got[1] != 30 || got[2] != 10 {
		t.Fatalf("Normalize = %v", got)
	}
}

func TestLimitOperator(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	j, _ := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	full, err := Drain(newCtx(t, doc), j)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Fatalf("need >= 3 matches, have %d", len(full))
	}
	for _, n := range []int{0, 1, 3, len(full), len(full) + 5, -2} {
		j2, _ := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, plan.AlgoDesc)
		got, err := Drain(newCtx(t, doc), NewLimit(j2, n))
		if err != nil {
			t.Fatal(err)
		}
		want := n
		if n < 0 {
			want = 0
		}
		if want > len(full) {
			want = len(full)
		}
		if len(got) != want {
			t.Fatalf("limit %d: got %d tuples, want %d", n, len(got), want)
		}
	}
}
