package sjos

import (
	"fmt"
	"sync"
	"testing"

	"sjos/internal/faultfs"
	"sjos/internal/storage"
)

// walMap is a stable shard→WAL-file mapping, so a corpus can be rebuilt
// from the same logs (crash recovery).
type walMap struct {
	mu    sync.Mutex
	files map[int]PageFile
}

func newWALMap() *walMap { return &walMap{files: make(map[int]PageFile)} }

func (m *walMap) file(shard int) PageFile {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[shard]
	if !ok {
		f = storage.NewMemFile()
		m.files[shard] = f
	}
	return f
}

func countCorpus(t testing.TB, c *Corpus, q string) int {
	t.Helper()
	res, err := c.Query(q, MethodDPP)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	return res.Count
}

func TestCorpusIngestInsertDeleteReplace(t *testing.T) {
	wals := newWALMap()
	c, err := NewCorpusBuilder(&CorpusOptions{Shards: 3, ShardWALFile: wals.file}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if !c.IngestEnabled() {
		t.Fatal("ingest not enabled")
	}
	if got := countCorpus(t, c, "//order//item/name"); got != 0 {
		t.Fatalf("empty corpus matched %d", got)
	}

	total := 0
	for i := 0; i < 9; i++ {
		n := 2 + i%3
		if err := c.InsertString(fmt.Sprintf("doc%d", i), orderXML(n)); err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if got := countCorpus(t, c, "//order//item/name"); got != total {
		t.Fatalf("after inserts: %d matches, want %d", got, total)
	}
	if c.NumDocs() != 9 {
		t.Fatalf("NumDocs = %d, want 9", c.NumDocs())
	}

	// Document attribution and local numbering survive the scatter.
	res, err := c.Query("//order//item/name", MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	perDoc := map[string]int{}
	for _, m := range res.Matches {
		perDoc[m.DocID]++
		if tag, ok := c.TagName(m.DocID, m.Nodes[len(m.Nodes)-1]); !ok || tag != "name" {
			t.Fatalf("TagName(%s, %d) = %q, %v", m.DocID, m.Nodes[len(m.Nodes)-1], tag, ok)
		}
	}
	for i := 0; i < 9; i++ {
		id := fmt.Sprintf("doc%d", i)
		if perDoc[id] != 2+i%3 {
			t.Fatalf("%s: %d matches, want %d", id, perDoc[id], 2+i%3)
		}
	}

	if err := c.Delete("doc4"); err != nil {
		t.Fatal(err)
	}
	total -= 2 + 4%3
	if got := countCorpus(t, c, "//order//item/name"); got != total {
		t.Fatalf("after delete: %d matches, want %d", got, total)
	}
	if _, ok := c.ShardOf("doc4"); ok {
		t.Fatal("deleted document still routed")
	}

	if err := c.ReplaceString("doc0", orderXML(7)); err != nil {
		t.Fatal(err)
	}
	total += 7 - 2
	if got := countCorpus(t, c, "//order//item/name"); got != total {
		t.Fatalf("after replace: %d matches, want %d", got, total)
	}

	// Error paths.
	if err := c.InsertString("doc0", orderXML(1)); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if err := c.Delete("ghost"); err == nil {
		t.Fatal("deleting unknown doc succeeded")
	}

	// Limit works against the mutable directory.
	lres, err := c.Run(nil, mustPattern(t, "//order//item/name"), mustPlanCorpus(t, c, "//order//item/name"), RunOptions{ExecOptions: ExecOptions{Limit: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if lres.Count != 3 {
		t.Fatalf("limit run: %d matches, want 3", lres.Count)
	}
}

func mustPattern(t testing.TB, src string) *Pattern {
	t.Helper()
	pat, err := ParsePattern(src)
	if err != nil {
		t.Fatal(err)
	}
	return pat
}

func mustPlanCorpus(t testing.TB, c *Corpus, src string) *Plan {
	t.Helper()
	res, err := c.Optimize(mustPattern(t, src), MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

func TestCorpusIngestRecovery(t *testing.T) {
	wals := newWALMap()
	build := func() *Corpus {
		c, err := NewCorpusBuilder(&CorpusOptions{Shards: 3, ShardWALFile: wals.file}).Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := build()
	for i := 0; i < 6; i++ {
		if err := c.InsertString(fmt.Sprintf("doc%d", i), orderXML(3+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete("doc2"); err != nil {
		t.Fatal(err)
	}
	if err := c.ReplaceString("doc5", orderXML(2)); err != nil {
		t.Fatal(err)
	}
	want := countCorpus(t, c, "//order//item/name")

	// "Crash": drop every in-memory structure and rebuild from the WALs
	// alone. The ring is a pure function of (Shards, Replicas), so the
	// same options route every ID to the same log.
	rec := build()
	if got := countCorpus(t, rec, "//order//item/name"); got != want {
		t.Fatalf("recovered corpus: %d matches, want %d", got, want)
	}
	if rec.IngestStats().Docs != 5 {
		t.Fatalf("recovered docs = %d, want 5", rec.IngestStats().Docs)
	}
	for _, id := range []string{"doc0", "doc1", "doc3", "doc4", "doc5"} {
		if _, ok := rec.ShardOf(id); !ok {
			t.Fatalf("recovered corpus lost %s", id)
		}
	}
	if _, ok := rec.ShardOf("doc2"); ok {
		t.Fatal("recovered corpus resurrected doc2")
	}
	// And the recovered corpus keeps accepting writes.
	if err := rec.InsertString("post", orderXML(4)); err != nil {
		t.Fatal(err)
	}
	if got := countCorpus(t, rec, "//order//item/name"); got != want+4 {
		t.Fatalf("post-recovery insert: %d matches, want %d", got, want+4)
	}
}

func TestCorpusIngestSeededBuild(t *testing.T) {
	wals := newWALMap()
	b := NewCorpusBuilder(&CorpusOptions{Shards: 2, ShardWALFile: wals.file})
	for i := 0; i < 4; i++ {
		if err := b.AddXMLString(fmt.Sprintf("seed%d", i), orderXML(3)); err != nil {
			t.Fatal(err)
		}
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := countCorpus(t, c, "//order//item/name"); got != 12 {
		t.Fatalf("%d matches, want 12", got)
	}
	if err := c.InsertString("extra", orderXML(2)); err != nil {
		t.Fatal(err)
	}
	if got := countCorpus(t, c, "//order//item/name"); got != 14 {
		t.Fatalf("%d matches, want 14", got)
	}
	// The seeds were logged as each shard's base snapshot: a rebuild from
	// the WALs alone recovers seeds and later inserts alike.
	rec, err := NewCorpusBuilder(&CorpusOptions{Shards: 2, ShardWALFile: wals.file}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := countCorpus(t, rec, "//order//item/name"); got != 14 {
		t.Fatalf("recovered: %d matches, want 14", got)
	}
}

func TestCorpusIngestFollowerReplicas(t *testing.T) {
	wals := newWALMap()
	var mu sync.Mutex
	followers := make(map[int]*faultfs.File)
	c, err := NewCorpusBuilder(&CorpusOptions{
		Shards:           2,
		ReplicasPerShard: 2,
		ShardWALFile:     wals.file,
		ShardPageFile: func(shard, replica int) PageFile {
			if replica == 0 {
				return storage.NewMemFile()
			}
			ff := faultfs.Wrap(storage.NewMemFile(), faultfs.Policy{})
			mu.Lock()
			followers[shard] = ff
			mu.Unlock()
			return ff
		},
	}).Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := c.InsertString(fmt.Sprintf("doc%d", i), orderXML(3)); err != nil {
			t.Fatal(err)
		}
	}
	if got := countCorpus(t, c, "//order//item/name"); got != 18 {
		t.Fatalf("%d matches, want 18", got)
	}
	if ds := c.IngestStats().DownReplicas; ds != 0 {
		t.Fatalf("%d replicas down before any fault", ds)
	}

	// Kill shard 0's follower store: the next mutation landing on shard 0
	// fails to apply there, and the follower must leave routing while the
	// corpus stays fully available.
	followers[0].SetPolicy(faultfs.Policy{CrashAfterNWrites: 1})
	downed := 0
	for i := 6; i < 12; i++ {
		if err := c.InsertString(fmt.Sprintf("doc%d", i), orderXML(3)); err != nil {
			t.Fatalf("insert with dead follower: %v", err)
		}
	}
	for _, sh := range c.Health() {
		for _, rep := range sh.Replicas {
			if rep.Down {
				downed++
			}
		}
	}
	if downed != 1 {
		t.Fatalf("%d replicas down, want 1", downed)
	}
	if got := c.IngestStats().DownReplicas; got != 1 {
		t.Fatalf("IngestStats.DownReplicas = %d, want 1", got)
	}
	if got := countCorpus(t, c, "//order//item/name"); got != 36 {
		t.Fatalf("after follower death: %d matches, want 36", got)
	}
}

// TestCorpusIngestConcurrentQueries hammers scatter-gather queries while
// the corpus mutates: every observed count must be a committed multiple of
// the per-document match count.
func TestCorpusIngestConcurrentQueries(t *testing.T) {
	wals := newWALMap()
	c, err := NewCorpusBuilder(&CorpusOptions{Shards: 3, ShardWALFile: wals.file}).Build()
	if err != nil {
		t.Fatal(err)
	}
	const items = 3
	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := c.Query("//order//item/name", MethodDPP)
				if err != nil {
					errs <- err
					return
				}
				if res.Count%items != 0 {
					errs <- fmt.Errorf("observed uncommitted state: %d matches", res.Count)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("doc%d", i)
		if err := c.InsertString(id, orderXML(items)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 3 {
			if err := c.Delete(fmt.Sprintf("doc%d", i-2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestCorpusIngestStatsRefresh(t *testing.T) {
	wals := newWALMap()
	c, err := NewCorpusBuilder(&CorpusOptions{Shards: 2, ShardWALFile: wals.file}).Build()
	if err != nil {
		t.Fatal(err)
	}
	_, v0 := c.svc.snapshot()
	if err := c.InsertString("a", orderXML(5)); err != nil {
		t.Fatal(err)
	}
	_, v1 := c.svc.snapshot()
	if v1 <= v0 {
		t.Fatalf("insert did not bump corpus stats version (%d -> %d)", v0, v1)
	}
	// Incremental corpus stats must price plans like a from-scratch
	// rebuild.
	pat := mustPattern(t, "//order//item/name")
	before, err := c.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RebuildStats()
	after, err := c.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if before.Cost != after.Cost {
		t.Fatalf("incremental cost %f, rebuilt cost %f", before.Cost, after.Cost)
	}
}

func TestCorpusStaticHasNoWritePath(t *testing.T) {
	b := NewCorpusBuilder(nil)
	if err := b.AddXMLString("only", orderXML(2)); err != nil {
		t.Fatal(err)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.IngestEnabled() {
		t.Fatal("static corpus reports ingest enabled")
	}
	if err := c.InsertString("x", orderXML(1)); err != ErrNoWAL {
		t.Fatalf("Insert = %v, want ErrNoWAL", err)
	}
}
