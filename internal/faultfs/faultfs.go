// Package faultfs wraps a storage.PageFile with configurable fault
// injection: deterministic fail-nth-read, seeded probabilistic failures,
// transient-vs-permanent errors, latency injection, and page-bit corruption.
// It is the chaos harness behind the executor's fault differential tests and
// xqbench -chaos — the same wrapper in both places, so what the tests prove
// is what the benchmark exercises.
//
// The write side mirrors the read side for the ingestion path: deterministic
// fail-nth-write, torn writes (a prefix of the page is persisted and the
// write reports success — the classic torn-page failure the checksums must
// catch), and a crash kill-point that deadens the file after its Nth write,
// emulating the process dying mid-commit (every later read or write fails
// permanently; the bytes already written survive in the inner file, exactly
// like a disk after power loss).
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"sjos/internal/storage"
)

// ErrInjected is the base error of every injected read failure; wrap
// detection works through errors.Is on the returned error chain.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after a CrashAfterNWrites
// kill-point fired: the file is dead, as if the process holding it had been
// killed. It wraps ErrInjected and is never transient.
var ErrCrashed = fmt.Errorf("%w: crashed (kill-point reached)", ErrInjected)

// Policy configures which reads and writes fail and how. The zero Policy
// injects nothing. Counters (nth-read/nth-write indices) are 1-based and
// count physical ReadPage/WritePage calls on the wrapper since the last
// SetPolicy.
type Policy struct {
	// FailNthRead fails reads by ordinal: with Transient false the Nth and
	// every later read fail (a device that died); with Transient true only
	// the Nth read fails (a blip retry can heal). 0 disables.
	FailNthRead int
	// FailProb fails each read independently with this probability, drawn
	// from a rand.Rand seeded with Seed — the same seed replays the same
	// fault schedule. Transient applies.
	FailProb float64
	// Seed seeds the probabilistic fault stream and the torn-write prefix
	// lengths (0 is a valid fixed seed).
	Seed int64
	// Transient marks injected failures retryable (storage.MarkTransient),
	// so the buffer pool's RetryPolicy applies to them. It applies to read
	// failures and FailNthWrite; torn writes and crashes are never
	// transient.
	Transient bool
	// CorruptNthRead flips one payload bit in the Nth read's result instead
	// of failing it: the read "succeeds" but checksum verification must
	// catch it. With Transient false the page is remembered and every later
	// read of it is corrupted too (damage at rest); with Transient true
	// only the Nth read is damaged (a torn read in flight). 0 disables.
	CorruptNthRead int
	// Latency delays every read (sleep before the inner read), for
	// simulating slow devices. 0 disables.
	Latency time.Duration
	// MaxFaults caps the total number of injected faults (failures plus
	// corruptions, reads and writes alike); once reached, operations pass
	// through untouched. 0 means unlimited.
	MaxFaults int

	// FailNthWrite fails writes by ordinal, mirroring FailNthRead: with
	// Transient false the Nth and every later write fail; with Transient
	// true only the Nth write fails. Nothing is written for a failed
	// write. 0 disables.
	FailNthWrite int
	// TornWrite, on the Nth write, persists only a seed-determined prefix
	// of the page (the rest of the slot keeps stale or zero bytes) and
	// reports success — a torn page the caller cannot see until a later
	// read fails checksum verification. 0 disables.
	TornWrite int
	// CrashAfterNWrites deadens the file after its Nth successful write:
	// writes 1..N reach the inner file, and every later operation — read
	// or write — fails permanently with ErrCrashed. The inner file keeps
	// exactly the bytes written before the kill-point, like a disk after
	// power loss. 0 disables.
	CrashAfterNWrites int
}

// Stats is a point-in-time snapshot of the wrapper's counters.
type Stats struct {
	// Reads and Writes count physical ReadPage/WritePage calls since the
	// last SetPolicy (including failed ones).
	Reads  uint64
	Writes uint64
	// FaultsInjected counts sabotaged operations: failed or corrupted
	// reads, failed or torn writes, and every operation refused after the
	// crash kill-point.
	FaultsInjected uint64
	// Crashed reports whether the CrashAfterNWrites kill-point has fired.
	Crashed bool
}

// File wraps an inner storage.PageFile with fault injection under a Policy.
// It is safe for concurrent use.
type File struct {
	inner storage.PageFile

	mu        sync.Mutex
	policy    Policy
	rng       *rand.Rand
	reads     uint64
	writes    uint64
	faults    uint64
	crashed   bool
	corrupted map[storage.PageID]bool // pages with permanent at-rest damage
}

// Wrap returns inner behind fault injection with the given policy.
func Wrap(inner storage.PageFile, policy Policy) *File {
	f := &File{inner: inner}
	f.SetPolicy(policy)
	return f
}

// Inner returns the wrapped file — the bytes that "survive the crash" when a
// kill-point deadens the wrapper. Recovery tests reopen state from it.
func (f *File) Inner() storage.PageFile { return f.inner }

// SetPolicy replaces the policy and resets the read/write/fault counters,
// the probabilistic fault stream, the crash state and the
// permanent-corruption memory — each SetPolicy starts a fresh, reproducible
// fault schedule.
func (f *File) SetPolicy(policy Policy) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.policy = policy
	f.rng = rand.New(rand.NewSource(policy.Seed))
	f.reads = 0
	f.writes = 0
	f.faults = 0
	f.crashed = false
	f.corrupted = nil
}

// Reads returns how many ReadPage calls the wrapper has seen since the last
// SetPolicy.
func (f *File) Reads() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads
}

// Writes returns how many WritePage calls the wrapper has seen since the
// last SetPolicy.
func (f *File) Writes() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// FaultsInjected returns how many operations were sabotaged (failed,
// corrupted or torn) since the last SetPolicy. The facade surfaces it as
// sjos_faults_injected_total.
func (f *File) FaultsInjected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// Crashed reports whether the CrashAfterNWrites kill-point has fired.
func (f *File) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Stats returns a snapshot of all counters under one lock.
func (f *File) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{Reads: f.reads, Writes: f.writes, FaultsInjected: f.faults, Crashed: f.crashed}
}

// verdict is the per-read decision taken under the mutex.
type verdict struct {
	fail    bool
	crashed bool
	corrupt bool
	ordinal uint64
	latency time.Duration
}

func (f *File) decide(id storage.PageID) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	v := verdict{ordinal: f.reads, latency: f.policy.Latency}
	if f.crashed {
		v.fail, v.crashed = true, true
		f.faults++
		return v
	}
	if f.policy.MaxFaults > 0 && f.faults >= uint64(f.policy.MaxFaults) {
		return v
	}
	p := f.policy
	switch {
	case f.corrupted[id]:
		v.corrupt = true
	case p.CorruptNthRead > 0 && f.reads == uint64(p.CorruptNthRead):
		v.corrupt = true
		if !p.Transient {
			if f.corrupted == nil {
				f.corrupted = make(map[storage.PageID]bool)
			}
			f.corrupted[id] = true
		}
	case p.FailNthRead > 0 && (f.reads == uint64(p.FailNthRead) ||
		(!p.Transient && f.reads > uint64(p.FailNthRead))):
		v.fail = true
	case p.FailProb > 0 && f.rng.Float64() < p.FailProb:
		v.fail = true
	}
	if v.fail || v.corrupt {
		f.faults++
	}
	return v
}

// ReadPage implements storage.PageFile with the policy's faults applied.
func (f *File) ReadPage(id storage.PageID, dst *storage.Page) error {
	v := f.decide(id)
	if v.latency > 0 {
		time.Sleep(v.latency)
	}
	if v.crashed {
		return fmt.Errorf("%w (read #%d, page %d)", ErrCrashed, v.ordinal, id)
	}
	if v.fail {
		err := fmt.Errorf("%w (read #%d, page %d)", ErrInjected, v.ordinal, id)
		if f.transient() {
			return storage.MarkTransient(err)
		}
		return err
	}
	if err := f.inner.ReadPage(id, dst); err != nil {
		return err
	}
	if v.corrupt {
		// Flip one payload bit past the integrity header: the read
		// succeeds but VerifyPage must flag the page.
		dst[storage.PageHeaderSize+int(v.ordinal)%64] ^= 0x01
	}
	return nil
}

func (f *File) transient() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.policy.Transient
}

// writeVerdict is the per-write decision taken under the mutex.
type writeVerdict struct {
	fail    bool
	crashed bool
	tornLen int // > 0: persist only this prefix of the page, report success
	ordinal uint64
}

func (f *File) decideWrite() writeVerdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	v := writeVerdict{ordinal: f.writes}
	if f.crashed {
		v.fail, v.crashed = true, true
		f.faults++
		return v
	}
	p := f.policy
	capped := p.MaxFaults > 0 && f.faults >= uint64(p.MaxFaults)
	switch {
	case capped:
	case p.TornWrite > 0 && f.writes == uint64(p.TornWrite):
		// Persist a strict prefix: at least the integrity header area is
		// started, and at least the last byte is lost, so verification
		// must fail when the slot is read back.
		v.tornLen = storage.PageHeaderSize + f.rng.Intn(storage.PageSize-storage.PageHeaderSize-1)
		f.faults++
	case p.FailNthWrite > 0 && (f.writes == uint64(p.FailNthWrite) ||
		(!p.Transient && f.writes > uint64(p.FailNthWrite))):
		v.fail = true
		f.faults++
	}
	// The kill-point counts successful writes: after the Nth write lands,
	// the file is dead. A write that itself failed does not arm it.
	if p.CrashAfterNWrites > 0 && !v.fail && f.writes >= uint64(p.CrashAfterNWrites) {
		f.crashed = true
	}
	return v
}

// WritePage implements storage.PageFile with the policy's write faults
// applied: fail-nth, torn prefix persistence, and the crash kill-point.
func (f *File) WritePage(id storage.PageID, src *storage.Page) error {
	v := f.decideWrite()
	if v.crashed {
		return fmt.Errorf("%w (write #%d, page %d)", ErrCrashed, v.ordinal, id)
	}
	if v.fail {
		err := fmt.Errorf("%w (write #%d, page %d)", ErrInjected, v.ordinal, id)
		if f.transient() {
			return storage.MarkTransient(err)
		}
		return err
	}
	if v.tornLen > 0 {
		var torn storage.Page
		// Preserve whatever the slot held before the torn write (stale
		// bytes survive past the torn prefix); a fresh slot keeps zeros.
		_ = f.inner.ReadPage(id, &torn)
		copy(torn[:v.tornLen], src[:v.tornLen])
		return f.inner.WritePage(id, &torn)
	}
	return f.inner.WritePage(id, src)
}

// NumPages passes through to the inner file.
func (f *File) NumPages() int { return f.inner.NumPages() }

// Sync implements the optional durability hook the WAL requires
// (interface{ Sync() error }). After the crash kill-point it fails with
// ErrCrashed like every other operation — modelling a process killed
// between issuing writes and the fsync acknowledgement, the exact window
// where a commit's durability is ambiguous. Otherwise it forwards to the
// inner file's Sync when it has one (a MemFile does not; its writes are
// trivially durable).
func (f *File) Sync() error {
	f.mu.Lock()
	if f.crashed {
		f.faults++
		f.mu.Unlock()
		return fmt.Errorf("%w (sync)", ErrCrashed)
	}
	f.mu.Unlock()
	if s, ok := f.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}
