package core

import (
	"fmt"

	"sjos/internal/cost"
	"sjos/internal/pattern"
)

// Census quantifies a pattern's status search space — the measurable form
// of the paper's §3 complexity analysis (O(n·2ⁿ) statuses for DP, with a
// large deadend fraction that the Lookahead Rule avoids generating).
type Census struct {
	// Statuses counts the distinct reachable statuses (including start
	// and final statuses).
	Statuses int
	// Deadends counts reachable non-final statuses with no possible
	// moves (Definition 6).
	Deadends int
	// Finals counts distinct final statuses.
	Finals int
	// PerLevel holds the status count per level (number of joined edges).
	PerLevel []int
}

// CensusSearchSpace enumerates every status reachable from the start status
// by breadth-first expansion, ignoring costs. Intended for analysis and
// tests; the space is exponential in the number of pattern edges, so this
// is restricted to patterns with at most 12 edges.
func CensusSearchSpace(pat *pattern.Pattern) (*Census, error) {
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	if pat.NumEdges() > 12 {
		return nil, fmt.Errorf("core: census limited to 12 edges, pattern has %d", pat.NumEdges())
	}
	// Costs are irrelevant; a uniform estimator keeps expansion defined.
	nodeCard := make([]float64, pat.N())
	edgeSel := make([]float64, pat.N())
	for i := range nodeCard {
		nodeCard[i], edgeSel[i] = 10, 0.1
	}
	est, err := NewManualEstimator(pat, nodeCard, edgeSel)
	if err != nil {
		return nil, err
	}
	sp := newSpace(pat, est, cost.DefaultModel())

	c := &Census{PerLevel: make([]int, pat.NumEdges()+1)}
	seen := make(map[uint64]bool)
	s0 := sp.start()
	frontier := []*status{s0}
	seen[s0.key()] = true
	for len(frontier) > 0 {
		var next []*status
		for _, s := range frontier {
			c.Statuses++
			c.PerLevel[s.level]++
			if sp.isFinal(s) {
				c.Finals++
				continue
			}
			moved := false
			sp.expand(s, moveOpts{}, func(cand candidate) {
				moved = true
				k := uint64(cand.edges) | uint64(cand.orderMask)<<MaxPatternNodes
				if seen[k] {
					return
				}
				seen[k] = true
				next = append(next, &status{
					edges:     cand.edges,
					orderMask: cand.orderMask,
					level:     s.level + 1,
					heapIdx:   -1,
				})
			})
			if !moved {
				c.Deadends++
			}
		}
		frontier = next
	}
	return c, nil
}
