package exec

import (
	"errors"
	"testing"
)

// scriptedOp is a test operator: it serves a fixed tuple list and can be
// scripted to fail at a given Next call, optionally pairing the error with
// a tuple. It records how often it was pulled and closed.
type scriptedOp struct {
	schema  *Schema
	tuples  []Tuple
	failAt  int   // Next index (0-based) that errors; -1 = never
	failTup Tuple // tuple paired with the error (nil = bare error)
	err     error

	pos    int
	nexts  int
	closes int
}

var errScripted = errors.New("scripted operator failure")

func newScriptedOp(tuples []Tuple, failAt int, failTup Tuple) *scriptedOp {
	return &scriptedOp{
		schema: NewSchema(0), tuples: tuples,
		failAt: failAt, failTup: failTup, err: errScripted,
	}
}

func (s *scriptedOp) Schema() *Schema         { return s.schema }
func (s *scriptedOp) Open(ctx *Context) error { return nil }
func (s *scriptedOp) Close() error            { s.closes++; return nil }
func (s *scriptedOp) Next() (Tuple, bool, error) {
	i := s.nexts
	s.nexts++
	if s.failAt >= 0 && i == s.failAt {
		return s.failTup, s.failTup != nil, s.err
	}
	if s.pos >= len(s.tuples) {
		return nil, false, nil
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true, nil
}

// TestSortLatchesLoadError is the regression test for the mid-stream load
// failure: a Sort whose input errors part-way through must keep returning
// the error on every later Next instead of serving the partial, unsorted
// buffer as if it were valid output.
func TestSortLatchesLoadError(t *testing.T) {
	doc := personnelDoc(t)
	in := newScriptedOp([]Tuple{{3}, {1}}, 2, nil) // two tuples, then error
	s, err := NewSort(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := newCtx(t, doc)
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Next(); !errors.Is(err, errScripted) || ok {
		t.Fatalf("first Next: ok=%v err=%v, want the load error", ok, err)
	}
	// The old code set loaded=true on failure and then served the partial
	// buffer here.
	tup, ok, err := s.Next()
	if !errors.Is(err, errScripted) || ok || tup != nil {
		t.Fatalf("second Next after failed load: (%v, %v, %v), want latched error", tup, ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLimitDoesNotDropErrorTuple is the regression test for the Limit
// error path: when the input pairs a tuple with its error, Limit must
// propagate both instead of silently dropping the tuple.
func TestLimitDoesNotDropErrorTuple(t *testing.T) {
	in := newScriptedOp(nil, 0, Tuple{7})
	l := NewLimit(in, 5)
	if err := l.Open(newCtx(t, personnelDoc(t))); err != nil {
		t.Fatal(err)
	}
	tup, ok, err := l.Next()
	if !errors.Is(err, errScripted) {
		t.Fatalf("err = %v, want scripted error", err)
	}
	if !ok || tup == nil || tup[0] != 7 {
		t.Fatalf("(%v, %v) — the error's tuple was dropped", tup, ok)
	}
}

// TestLimitClosesUpstreamEarly verifies the doc's early-termination claim:
// the moment the n-th tuple is delivered, the upstream subtree is Closed —
// and not Closed a second time by Limit.Close.
func TestLimitClosesUpstreamEarly(t *testing.T) {
	in := newScriptedOp([]Tuple{{1}, {2}, {3}}, -1, nil)
	l := NewLimit(in, 2)
	if err := l.Open(newCtx(t, personnelDoc(t))); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok, err := l.Next(); !ok || err != nil {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
	}
	if in.closes != 1 {
		t.Fatalf("input closed %d times after the cap, want 1 (early close)", in.closes)
	}
	// No more pulls after the cap.
	pulls := in.nexts
	if _, ok, err := l.Next(); ok || err != nil {
		t.Fatalf("Next past cap: ok=%v err=%v", ok, err)
	}
	if in.nexts != pulls {
		t.Fatal("Limit kept pulling upstream past the cap")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if in.closes != 1 {
		t.Fatalf("input closed %d times in total, want exactly 1", in.closes)
	}
}

// TestLimitExhaustedInputStopsPulling covers the short-input case: once the
// input reports end of stream, Limit must not pull it again.
func TestLimitExhaustedInputStopsPulling(t *testing.T) {
	in := newScriptedOp([]Tuple{{1}}, -1, nil)
	l := NewLimit(in, 5)
	if err := l.Open(newCtx(t, personnelDoc(t))); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := l.Next(); !ok {
		t.Fatal("first tuple missing")
	}
	if _, ok, _ := l.Next(); ok {
		t.Fatal("unexpected tuple past end")
	}
	pulls := in.nexts
	if _, ok, _ := l.Next(); ok {
		t.Fatal("unexpected tuple past end")
	}
	if in.nexts != pulls {
		t.Fatal("Limit pulled an exhausted input again")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if in.closes != 1 {
		t.Fatalf("input closed %d times, want 1", in.closes)
	}
}

// TestLimitZero keeps the degenerate cap working: no output, exactly one
// upstream Close (via Limit.Close).
func TestLimitZero(t *testing.T) {
	in := newScriptedOp([]Tuple{{1}}, -1, nil)
	l := NewLimit(in, 0)
	if err := l.Open(newCtx(t, personnelDoc(t))); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := l.Next(); ok || err != nil {
		t.Fatalf("Next on zero limit: ok=%v err=%v", ok, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if in.closes != 1 {
		t.Fatalf("input closed %d times, want 1", in.closes)
	}
}
