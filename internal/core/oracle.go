package core

import (
	"sjos/internal/histogram"
	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// NewOracleEstimator builds an estimator whose per-node candidate counts
// and per-edge selectivities are exact (computed by scanning the document
// and counting join pairs with one stack-based merge per edge), instead of
// histogram estimates. Sub-pattern cardinalities still chain edges under
// the independence assumption.
//
// It exists for the cost-model ablation experiments — "how much plan
// quality does estimation error cost?" — and is too expensive for a
// production optimizer path (it touches the whole document per query).
func NewOracleEstimator(pat *pattern.Pattern, doc *xmltree.Document) (*Estimator, error) {
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	nodeCard := make([]float64, pat.N())
	edgeSel := make([]float64, pat.N())
	tags := make([]xmltree.TagID, pat.N())
	known := make([]bool, pat.N())
	for u := 0; u < pat.N(); u++ {
		nd := pat.Nodes[u]
		tag, ok := doc.LookupTag(nd.Tag)
		if !ok {
			continue
		}
		tags[u], known[u] = tag, true
		if nd.Op == pattern.CmpNone {
			nodeCard[u] = float64(doc.TagCount(tag))
			continue
		}
		n := 0
		for _, id := range doc.NodesWithTag(tag) {
			if nd.MatchesValue(doc.Value(id)) {
				n++
			}
		}
		nodeCard[u] = float64(n)
	}
	for v := 1; v < pat.N(); v++ {
		u := pat.Parent[v]
		if !known[u] || !known[v] || nodeCard[u] == 0 || nodeCard[v] == 0 {
			continue
		}
		pairs := histogram.ExactJoinCount(doc, tags[u], tags[v], pat.Axis[v])
		// Selectivity relative to the unfiltered tag populations; value
		// predicates are assumed independent of structure.
		total := float64(doc.TagCount(tags[u])) * float64(doc.TagCount(tags[v]))
		edgeSel[v] = float64(pairs) / total
	}
	return NewManualEstimator(pat, nodeCard, edgeSel)
}
