package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sjos"
	"sjos/internal/loadgen"
)

// LoadBenchConfig shapes the open-loop corpus serving benchmark.
type LoadBenchConfig struct {
	// Docs and Shards size the corpus (pers documents with distinct
	// generator seeds). <= 0 selects 8 documents over 4 shards.
	Docs   int
	Shards int
	// Rate is the offered query arrival rate per second (<= 0 selects 200).
	Rate float64
	// Duration is the load phase length (<= 0 selects 3 s).
	Duration time.Duration
	// Clients is the loadgen worker pool draining arrivals (<= 0 selects
	// 2 × Shards); MaxOutstanding its queue bound (<= 0 selects
	// 4 × Clients).
	Clients        int
	MaxOutstanding int
	// Method is the optimizer every query runs with.
	Method sjos.Method
	// Seed offsets the document generator seeds and seeds the arrival
	// process.
	Seed int64
	// Replicas is the number of store copies per shard (<= 0 selects 1);
	// with more than one, queries route health-aware and hedge per
	// HedgeDelay/DisableHedging.
	Replicas int
	// HedgeDelay fixes the hedged-read delay (0 = adaptive p95).
	HedgeDelay time.Duration
	// DisableHedging turns hedged reads off (failover still applies).
	DisableHedging bool
}

func (c *LoadBenchConfig) defaults() {
	if c.Docs <= 0 {
		c.Docs = 8
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Rate <= 0 {
		c.Rate = 200
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 2 * c.Shards
	}
}

// LoadBenchResult is one load run's record, JSON-shaped for
// BENCH_corpus.json.
type LoadBenchResult struct {
	// Corpus geometry and workload identity.
	Docs     int      `json:"docs"`
	Shards   int      `json:"shards"`
	Nodes    int      `json:"nodes"`
	Method   string   `json:"method"`
	Rate     float64  `json:"offered_rate_per_sec"`
	Duration string   `json:"duration"`
	Clients  int      `json:"clients"`
	Queries  []string `json:"queries"`

	// Open-loop accounting and latency quantiles (arrival-to-completion,
	// queueing included).
	Offered    int     `json:"offered"`
	Started    int     `json:"started"`
	Completed  int     `json:"completed"`
	Errors     int     `json:"errors"`
	Shed       int     `json:"shed"`
	Throughput float64 `json:"throughput_per_sec"`
	P50        string  `json:"p50"`
	P95        string  `json:"p95"`
	P99        string  `json:"p99"`
	Max        string  `json:"max"`

	// Server-side corroboration from the corpus's own metrics.
	ServedQueries uint64 `json:"served_queries"`
	PlanCacheHits int64  `json:"plancache_hits"`
	DrainClean    bool   `json:"drain_clean"`

	// Replica routing counters (zero when Replicas <= 1).
	Replicas       int    `json:"replicas"`
	HedgedRequests uint64 `json:"hedged_requests"`
	Failovers      uint64 `json:"replica_failovers"`
}

// LoadBench builds a sharded corpus of distinct pers documents, offers an
// open-loop Poisson query stream against it (cycling the pers query mix),
// then drains the corpus and reports latency quantiles plus the corpus's
// own served-query accounting.
func LoadBench(cfg LoadBenchConfig) (*LoadBenchResult, error) {
	cfg.defaults()
	b := sjos.NewCorpusBuilder(&sjos.CorpusOptions{
		Shards:           cfg.Shards,
		ReplicasPerShard: cfg.Replicas,
		HedgeDelay:       cfg.HedgeDelay,
		DisableHedging:   cfg.DisableHedging,
	})
	for i := 0; i < cfg.Docs; i++ {
		id := fmt.Sprintf("pers-%03d", i)
		if err := b.AddDataset(id, "pers", 1, 1, cfg.Seed+int64(i)); err != nil {
			return nil, err
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}

	var mix []string
	for _, q := range Queries() {
		if q.Dataset == "pers" {
			mix = append(mix, q.Source)
		}
	}
	res := &LoadBenchResult{
		Docs:     c.NumDocs(),
		Shards:   c.NumShards(),
		Method:   cfg.Method.String(),
		Rate:     cfg.Rate,
		Duration: cfg.Duration.String(),
		Clients:  cfg.Clients,
		Queries:  mix,
	}
	for _, h := range c.Health() {
		res.Nodes += h.Nodes
	}

	var next atomic.Int64
	lr, err := loadgen.Run(loadgen.Config{
		Rate:           cfg.Rate,
		Duration:       cfg.Duration,
		Workers:        cfg.Clients,
		MaxOutstanding: cfg.MaxOutstanding,
		Seed:           cfg.Seed,
	}, func() error {
		src := mix[int(next.Add(1)-1)%len(mix)]
		_, qerr := c.QueryContext(context.Background(), src,
			sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: cfg.Method}})
		return qerr
	})
	if err != nil {
		return nil, err
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res.DrainClean = c.Drain(drainCtx) == nil

	m := c.Metrics()
	res.Offered = lr.Offered
	res.Started = lr.Started
	res.Completed = lr.Completed
	res.Errors = lr.Errors
	res.Shed = lr.Shed
	res.Throughput = lr.Throughput
	res.P50 = lr.P50.String()
	res.P95 = lr.P95.String()
	res.P99 = lr.P99.String()
	res.Max = lr.Max.String()
	res.ServedQueries = m.Query.Queries
	res.PlanCacheHits = m.Cache.Hits
	if cfg.Replicas > 1 {
		res.Replicas = cfg.Replicas
	} else {
		res.Replicas = 1
	}
	res.HedgedRequests = m.Replica.HedgedRequests
	res.Failovers = m.Replica.Failovers
	return res, nil
}

// RenderLoadBench formats one load run for the terminal.
func RenderLoadBench(r *LoadBenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Open-loop corpus serving (%d docs / %d shards / %d nodes, %s, %.0f req/s offered for %s, %d clients)\n",
		r.Docs, r.Shards, r.Nodes, r.Method, r.Rate, r.Duration, r.Clients)
	fmt.Fprintf(&sb, "offered %d  started %d  completed %d  errors %d  shed %d\n",
		r.Offered, r.Started, r.Completed, r.Errors, r.Shed)
	fmt.Fprintf(&sb, "throughput %.1f/s  p50 %s  p95 %s  p99 %s  max %s\n",
		r.Throughput, r.P50, r.P95, r.P99, r.Max)
	fmt.Fprintf(&sb, "server: %d queries served, %d plan-cache hits, drain clean: %v\n",
		r.ServedQueries, r.PlanCacheHits, r.DrainClean)
	return sb.String()
}
