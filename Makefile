# Build, test and benchmark entry points. `make check` is the CI gate:
# go vet plus the full suite under the race detector. `make bench` runs the
# tier-1 suite under the race detector first, then emits benchmark results
# as streamed test2json events into BENCH_parallel.json and the plan-cache
# cold/warm comparison into BENCH_plancache.json.
#
# BENCH selects the benchmark regexp (default: the partition-parallel
# executor benches; use BENCH=. for the full table/figure suite — slow).

GO    ?= go
BENCH ?= Parallel

.PHONY: all build test test-race vet check bench clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: vet test-race

bench: test-race
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -json . | tee BENCH_parallel.json
	$(GO) test -run '^$$' -bench 'PlanCache' -benchmem -json . | tee BENCH_plancache.json

clean:
	rm -f BENCH_parallel.json BENCH_plancache.json
