package exec

import (
	"fmt"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// ValueIndexScan retrieves the candidates for a predicated pattern node by
// probing the store's (tag, value) content index: only the postings that
// satisfy the predicate are read, and no predicate is evaluated per row
// (predicate pushdown). When the store cannot serve the probe — value index
// disabled, or the predicate outside the index's eligible forms — the
// operator falls back to the embedded IndexScan's scan+filter, so a plan
// carrying ValueIndex leaves is always executable.
type ValueIndexScan struct {
	IndexScan
	probe storage.ValueScanner // non-nil once Open chose the probe path
}

// NewValueIndexScan builds a value-index probe for pattern node u of pat.
func NewValueIndexScan(pat *pattern.Pattern, u int) (*ValueIndexScan, error) {
	if pat.Nodes[u].Op == pattern.CmpNone {
		return nil, fmt.Errorf("exec: value-index scan of pattern node %d, which has no predicate", u)
	}
	return &ValueIndexScan{IndexScan: *NewIndexScan(pat, u)}, nil
}

// Open implements Operator: it asks the store for a probe and falls back to
// the tag scan if the store declines.
func (s *ValueIndexScan) Open(ctx *Context) error {
	if ctx.Store != nil {
		var vs storage.ValueScanner
		var ok bool
		if r := ctx.Range; r != nil {
			vs, ok = ctx.Store.ProbeValueRangeCtx(ctx.Ctx, s.tag, s.op, s.value, r.Lo, r.Hi)
		} else {
			vs, ok = ctx.Store.ProbeValueCtx(ctx.Ctx, s.tag, s.op, s.value)
		}
		if ok {
			s.ctx = ctx
			s.probe = vs
			ctx.Stats.ValueProbes++
			return nil
		}
	}
	return s.IndexScan.Open(ctx)
}

// Next implements Operator. Probed postings satisfy the predicate by
// construction, so no per-row evaluation happens here.
func (s *ValueIndexScan) Next() (Tuple, bool, error) {
	if s.probe == nil {
		return s.IndexScan.Next()
	}
	if s.done {
		return nil, false, nil
	}
	id, _, ok, err := s.probe.Next()
	if err != nil {
		return nil, false, fmt.Errorf("exec: value-index scan of %q: %w", s.tag, err)
	}
	if !ok {
		s.done = true
		return nil, false, nil
	}
	s.ctx.Stats.ScannedTuples++
	s.rows++
	if s.ctx.Interrupt != nil && s.rows&0xfff == 0 {
		if err := s.ctx.Interrupt(); err != nil {
			return nil, false, err
		}
	}
	return Tuple{id}, true, nil
}

// NextBatch implements BatchOperator: the batch is filled straight from
// decoded postings blocks — no predicate loop and no node-record reads.
func (s *ValueIndexScan) NextBatch(b *Batch) error {
	if s.probe == nil {
		return s.IndexScan.NextBatch(b)
	}
	b.Reset()
	if s.done {
		return nil
	}
	if s.blk == nil {
		s.blk = make([]xmltree.NodeID, BatchRows)
	}
	for !b.Full() {
		if s.ctx.Interrupt != nil {
			if err := s.ctx.Interrupt(); err != nil {
				return err
			}
		}
		n, err := s.probe.NextBlock(s.blk[:BatchRows-b.Len()])
		if err != nil {
			return fmt.Errorf("exec: value-index scan of %q: %w", s.tag, err)
		}
		if n == 0 {
			s.done = true
			return nil
		}
		s.ctx.Stats.ScannedTuples += n
		b.AppendIDs(s.blk[:n])
	}
	return nil
}

// SeekGE implements Seeker on the probe path (the fallback delegates).
func (s *ValueIndexScan) SeekGE(pos xmltree.Pos) (int, bool, error) {
	if s.probe == nil {
		return s.IndexScan.SeekGE(pos)
	}
	if s.done {
		return 0, true, nil
	}
	skipped, err := s.probe.SeekGE(pos)
	if err != nil {
		return 0, false, fmt.Errorf("exec: value-index scan of %q: %w", s.tag, err)
	}
	s.ctx.Stats.SkippedTuples += skipped
	return skipped, true, nil
}

// buildLeaf compiles an OpIndexScan plan node, honouring its access path.
func buildLeaf(pat *pattern.Pattern, n *plan.Node) (Operator, error) {
	if n.PatternNode < 0 || n.PatternNode >= pat.N() {
		return nil, fmt.Errorf("exec: scan of pattern node %d out of range", n.PatternNode)
	}
	if n.ValueIndex {
		return NewValueIndexScan(pat, n.PatternNode)
	}
	return NewIndexScan(pat, n.PatternNode), nil
}
