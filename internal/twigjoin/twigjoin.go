// Package twigjoin implements TwigStack-style holistic twig joins (Bruno,
// Koudas, Srivastava: "Holistic Twig Joins: Optimal XML Pattern Matching",
// SIGMOD 2002). The paper under reproduction cites this as the multi-way
// alternative it plans to integrate ("we are currently working on ... new
// access methods for ... multi-way structural joins as in [5]"), so this
// package provides the comparison point: one holistic operator matching the
// whole pattern at once, against which the benchmark harness compares the
// binary-join plans picked by the optimizers.
//
// The implementation follows the classic two-phase structure:
//
//  1. a getNext-driven streaming phase pushes candidate nodes onto
//     per-pattern-node stacks, emitting root-to-leaf *path solutions* as
//     compactly-encoded stack chains, and
//  2. a merge phase joins the per-leaf path solutions on their shared
//     prefix nodes into full twig matches.
//
// Parent-child edges are handled by filtering during path enumeration (the
// optimality guarantee of TwigStack only covers descendant edges; with
// child edges it may do extra work, as the original paper notes).
package twigjoin

import (
	"fmt"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// Match is one full pattern match in pattern-node order (slot u holds the
// document node bound to pattern node u).
type Match []xmltree.NodeID

// Stats counts the work done by one TwigStack execution.
type Stats struct {
	Advanced      int // cursor advances across all streams
	Pushes        int // stack pushes
	PathSolutions int // root-to-leaf path solutions emitted
	Matches       int // final twig matches
}

// Run evaluates pat against doc holistically and returns all matches.
func Run(doc *xmltree.Document, pat *pattern.Pattern) ([]Match, *Stats, error) {
	if err := pat.Validate(); err != nil {
		return nil, nil, err
	}
	t := &twig{doc: doc, pat: pat, stats: &Stats{}}
	if err := t.init(); err != nil {
		return nil, nil, err
	}
	if t.empty {
		return nil, t.stats, nil
	}
	t.stream()
	matches := t.merge()
	t.stats.Matches = len(matches)
	return matches, t.stats, nil
}

type stackEntry struct {
	node   xmltree.NodeID
	end    xmltree.Pos
	level  uint16
	parent int // index into the parent pattern node's stack at push time (-1 none)
}

type twig struct {
	doc   *xmltree.Document
	pat   *pattern.Pattern
	stats *Stats
	empty bool

	cand   [][]xmltree.NodeID // per pattern node, sorted candidates
	cursor []int
	stacks [][]stackEntry
	kids   [][]int
	leaves []int

	// pathSols[leaf] collects that leaf's root-to-leaf solutions.
	pathSols map[int][]Match
}

func (t *twig) init() error {
	n := t.pat.N()
	t.cand = make([][]xmltree.NodeID, n)
	t.cursor = make([]int, n)
	t.stacks = make([][]stackEntry, n)
	t.kids = make([][]int, n)
	t.pathSols = make(map[int][]Match)
	for u := 0; u < n; u++ {
		nd := t.pat.Nodes[u]
		tag, ok := t.doc.LookupTag(nd.Tag)
		if !ok {
			t.empty = true
			return nil
		}
		for _, id := range t.doc.NodesWithTag(tag) {
			if nd.Op != pattern.CmpNone &&
				!nd.MatchesValue(t.doc.Value(id)) {
				continue
			}
			t.cand[u] = append(t.cand[u], id)
		}
		if len(t.cand[u]) == 0 {
			t.empty = true
			return nil
		}
		t.kids[u] = t.pat.Children(u)
	}
	for u := 0; u < n; u++ {
		if len(t.kids[u]) == 0 {
			t.leaves = append(t.leaves, u)
		}
	}
	return nil
}

// eof reports whether pattern node q's stream is exhausted.
func (t *twig) eof(q int) bool { return t.cursor[q] >= len(t.cand[q]) }

// posInf is the virtual start position of an exhausted stream: past every
// real position, so exhausted streams lose every getNext comparison.
const posInf = ^xmltree.Pos(0)

// nextL returns the start position of q's current candidate (∞ at eof).
func (t *twig) nextL(q int) xmltree.Pos {
	if t.eof(q) {
		return posInf
	}
	return t.doc.Start(t.cand[q][t.cursor[q]])
}

func (t *twig) nextR(q int) xmltree.Pos { return t.doc.End(t.cand[q][t.cursor[q]]) }

func (t *twig) advance(q int) {
	t.cursor[q]++
	t.stats.Advanced++
}

// getNext returns the pattern node whose current candidate is guaranteed to
// participate in the next action (the classic TwigStack getNext, with
// exhausted streams treated as positioned at ∞). The returned node is
// exhausted only when no stream in q's subtree can make progress any more.
func (t *twig) getNext(q int) int {
	if len(t.kids[q]) == 0 {
		return q
	}
	nmin, nmax := -1, -1
	for _, qi := range t.kids[q] {
		ni := t.getNext(qi)
		if ni != qi && !t.eof(ni) {
			return ni // a descendant needs processing first
		}
		if nmin == -1 || t.nextL(qi) < t.nextL(nmin) {
			nmin = qi
		}
		if nmax == -1 || t.nextL(qi) > t.nextL(nmax) {
			nmax = qi
		}
	}
	for !t.eof(q) && t.nextR(q) < t.nextL(nmax) {
		t.advance(q)
	}
	if !t.eof(q) && t.nextL(q) < t.nextL(nmin) {
		return q
	}
	return nmin
}

// cleanStack pops entries of q's stack that end before pos.
func (t *twig) cleanStack(q int, pos xmltree.Pos) {
	s := t.stacks[q]
	for len(s) > 0 && s[len(s)-1].end < pos {
		s = s[:len(s)-1]
	}
	t.stacks[q] = s
}

// stream is phase 1: it drives getNext until no stream can contribute any
// further, emitting path solutions at leaves.
func (t *twig) stream() {
	root := 0
	for {
		q := t.getNext(root)
		if t.eof(q) {
			return // no subtree can make progress any more
		}
		cur := t.cand[q][t.cursor[q]]
		p := t.pat.Parent[q]
		if p != pattern.NoNode {
			t.cleanStack(p, t.doc.Start(cur))
		}
		if p == pattern.NoNode || len(t.stacks[p]) > 0 {
			t.cleanStack(q, t.doc.Start(cur))
			parentIdx := -1
			if p != pattern.NoNode {
				parentIdx = len(t.stacks[p]) - 1
			}
			t.stacks[q] = append(t.stacks[q], stackEntry{
				node:   cur,
				end:    t.doc.End(cur),
				level:  t.doc.Level(cur),
				parent: parentIdx,
			})
			t.stats.Pushes++
			if len(t.kids[q]) == 0 {
				t.emitPaths(q)
				t.stacks[q] = t.stacks[q][:len(t.stacks[q])-1]
			}
		}
		t.advance(q)
	}
}

// emitPaths enumerates the root-to-leaf path solutions ending at the entry
// just pushed on leaf q's stack, filtering parent-child edges by level.
func (t *twig) emitPaths(leaf int) {
	// The pattern nodes on the path root..leaf.
	var path []int
	for u := leaf; u != pattern.NoNode; u = t.pat.Parent[u] {
		path = append(path, u)
		if u == 0 {
			break
		}
	}
	// path[0]=leaf ... path[len-1]=root.
	binding := make(Match, len(path))
	var rec func(i int, stackIdx int)
	rec = func(i, stackIdx int) {
		q := path[i]
		e := t.stacks[q][stackIdx]
		binding[i] = e.node
		if i == len(path)-1 {
			sol := make(Match, len(path))
			copy(sol, binding)
			t.pathSols[leaf] = append(t.pathSols[leaf], sol)
			t.stats.PathSolutions++
			return
		}
		// All parent-stack entries at or below e.parent contain e's node.
		pq := path[i+1]
		ax := t.pat.Axis[q]
		for j := e.parent; j >= 0; j-- {
			pe := t.stacks[pq][j]
			if ax == pattern.Child && pe.level+1 != e.level {
				continue
			}
			rec(i+1, j)
		}
	}
	rec(0, len(t.stacks[leaf])-1)
}

// merge is phase 2: join per-leaf path solutions on shared pattern nodes
// into full twig matches.
func (t *twig) merge() []Match {
	n := t.pat.N()
	// Start from the first leaf's solutions; join in the rest.
	var acc []Match
	var bound []bool
	for li, leaf := range t.leaves {
		path := pathNodes(t.pat, leaf)
		sols := t.pathSols[leaf]
		if len(sols) == 0 {
			return nil
		}
		if li == 0 {
			bound = make([]bool, n)
			for _, s := range sols {
				m := make(Match, n)
				for i := range m {
					m[i] = xmltree.InvalidNode
				}
				for i, u := range path {
					m[u] = s[i]
				}
				acc = append(acc, m)
			}
			for _, u := range path {
				bound[u] = true
			}
			continue
		}
		// Shared nodes between acc's bound set and this path.
		var shared, fresh []int
		for i, u := range path {
			if bound[u] {
				shared = append(shared, i)
			} else {
				fresh = append(fresh, i)
			}
		}
		// Hash the new path solutions by their shared-node bindings.
		idx := make(map[string][]Match, len(sols))
		for _, s := range sols {
			idx[joinKey(s, shared)] = append(idx[joinKey(s, shared)], s)
		}
		var next []Match
		for _, m := range acc {
			key := joinKeyFromMatch(m, path, shared)
			for _, s := range idx[key] {
				nm := make(Match, n)
				copy(nm, m)
				for _, i := range fresh {
					nm[path[i]] = s[i]
				}
				next = append(next, nm)
			}
		}
		acc = next
		for _, u := range path {
			bound[u] = true
		}
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// pathNodes returns the pattern nodes from leaf up to the root,
// leaf-first — the same order emitPaths binds them in.
func pathNodes(pat *pattern.Pattern, leaf int) []int {
	var path []int
	for u := leaf; ; u = pat.Parent[u] {
		path = append(path, u)
		if u == 0 {
			break
		}
	}
	return path
}

func joinKey(s Match, shared []int) string {
	b := make([]byte, 0, len(shared)*12)
	for _, i := range shared {
		b = fmt.Appendf(b, "%d,", s[i])
	}
	return string(b)
}

func joinKeyFromMatch(m Match, path []int, shared []int) string {
	b := make([]byte, 0, len(shared)*12)
	for _, i := range shared {
		b = fmt.Appendf(b, "%d,", m[path[i]])
	}
	return string(b)
}
