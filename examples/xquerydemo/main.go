// XQuery demo: the FLWOR-subset frontend (the §2.1 translation from XQuery
// to tree patterns) against the personnel data set — including the paper's
// running example expressed as the query a user would actually write.
package main

import (
	"fmt"
	"log"

	"sjos"
)

func main() {
	db, err := sjos.GenerateDataset("pers", 1, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pers data set: %d element nodes\n\n", db.NumNodes())

	// The paper's Example 2.2 as FLWOR: for each manager A, the names of
	// supervised employees and of departments directly run by subordinate
	// managers.
	res, err := db.XQuery(`
		for $a in //manager, $d in $a//manager
		where $a//employee/name and $d/department/name
		return $a/name, $d/department/name`, sjos.MethodDPP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 2.2 (optimize %v, execute %v): %d rows; compiled pattern:\n  %s\n",
		res.OptimizeTime, res.ExecuteTime, len(res.Rows), res.Pattern)
	for i, row := range res.Rows {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  manager %-8q runs department %q (via a subordinate)\n",
			db.Value(row[0]), db.Value(row[1]))
	}

	// Value predicates and ordered output.
	res, err = db.XQuery(`
		for $e in //employee
		where $e/salary >= 100000
		order by $e
		return $e/name, $e/salary`, sjos.MethodFP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhighly paid employees (document order): %d\n", len(res.Rows))
	for i, row := range res.Rows {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s earns %s\n", db.Value(row[0]), db.Value(row[1]))
	}

	// Show the plan the optimizer chose for the compiled pattern.
	fmt.Println("\nplan for the last query:")
	fmt.Print(res.PlanText)
}
