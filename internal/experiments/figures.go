package experiments

import (
	"context"
	"strconv"
	"time"

	"sjos"
)

// FigureBar is one bar of Figures 7/8: an algorithm configuration with its
// optimization and plan-execution times — the two stacked components of
// total query evaluation time.
type FigureBar struct {
	Label string
	Opt   time.Duration
	Eval  time.Duration
}

// Total returns the stacked total query evaluation time.
func (b FigureBar) Total() time.Duration { return b.Opt + b.Eval }

// Figure78 regenerates the paper's Figure 7 (fold = 100) and Figure 8
// (fold = 1): DPAP-EB runs for Te = 1 … number of pattern nodes on
// Q.Pers.3.d, flanked by the other algorithms for comparison.
func Figure78(fold int) ([]FigureBar, error) {
	q, err := QueryByID(PersQuery3)
	if err != nil {
		return nil, err
	}
	db, err := Dataset(q.Dataset, fold)
	if err != nil {
		return nil, err
	}
	pat, err := sjos.ParsePattern(q.Source)
	if err != nil {
		return nil, err
	}

	var bars []FigureBar
	measure := func(label string, optimize func() (*sjos.OptimizeResult, error)) error {
		var res *sjos.OptimizeResult
		opt, err := timeIt(optRepeat, func() error {
			var e error
			res, e = optimize()
			return e
		})
		if err != nil {
			return err
		}
		eval, err := timeIt(evalRepeat, func() error {
			_, e := db.Run(context.Background(), pat, res.Plan, sjos.RunOptions{CountOnly: true})
			return e
		})
		if err != nil {
			return err
		}
		bars = append(bars, FigureBar{Label: label, Opt: opt, Eval: eval})
		return nil
	}

	for _, m := range []sjos.Method{sjos.MethodDP, sjos.MethodDPP} {
		m := m
		if err := measure(m.String(), func() (*sjos.OptimizeResult, error) {
			return db.Optimize(pat, m, 0)
		}); err != nil {
			return nil, err
		}
	}
	for te := 1; te <= pat.N(); te++ {
		te := te
		label := "DPAP-EB(" + strconv.Itoa(te) + ")"
		if err := measure(label, func() (*sjos.OptimizeResult, error) {
			return db.Optimize(pat, sjos.MethodDPAPEB, te)
		}); err != nil {
			return nil, err
		}
	}
	for _, m := range []sjos.Method{sjos.MethodDPAPLD, sjos.MethodFP} {
		m := m
		if err := measure(m.String(), func() (*sjos.OptimizeResult, error) {
			return db.Optimize(pat, m, 0)
		}); err != nil {
			return nil, err
		}
	}
	return bars, nil
}
