// Command xqbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	xqbench -table 1            # Table 1: opt + eval time, 8 queries × 5 algorithms
//	xqbench -table 2            # Table 2: opt time & plans considered, Q.Pers.3.d
//	xqbench -table 3            # Table 3: eval time vs folding factor (×1 ×10 ×100)
//	xqbench -table 3 -full      # ... including the ×500 fold (slow, needs ~2 GB)
//	xqbench -figure 7           # Figure 7: DPAP-EB Te sweep, fold ×100
//	xqbench -figure 8           # Figure 8: DPAP-EB Te sweep, fold ×1
//	xqbench -cachebench         # plan cache: cold vs warm optimize phase
//	xqbench -batchbench         # batched executor vs tuple-at-a-time, table 3 workload
//	xqbench -contentbench       # value-index probes vs scan+filter, selective predicates
//	xqbench -table 3 -nobatch   # run table 3 tuple-at-a-time (batching escape hatch)
//	xqbench -chaos              # fault-injected runs: every result correct or typed error
//	xqbench -loadbench          # open-loop corpus serving: p50/p95/p99 under Poisson load
//	xqbench -replicabench       # hedged vs unhedged tails with a slow replica per shard
//	xqbench -plannerbench       # plan-search vs execution time, all methods, stress shapes
//	xqbench -plannerquick       # the planner lane as a fast CI smoke test
//	xqbench -churnbench         # queries under concurrent WAL-committed document churn
//	xqbench -churnquick         # the churn lane as a fast CI smoke test
//	xqbench -all                # everything (without -full folds)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sjos"
	"sjos/internal/core"
	"sjos/internal/experiments"
)

func main() {
	table := flag.Int("table", 0, "regenerate table 1, 2 or 3")
	figure := flag.Int("figure", 0, "regenerate figure 7 or 8")
	all := flag.Bool("all", false, "regenerate every table and figure")
	full := flag.Bool("full", false, "include the x500 fold in table 3 (slow)")
	census := flag.Bool("census", false, "print the status search-space census for the benchmark patterns (§3 complexity)")
	parallel := flag.Int("parallel", 0, "run table 3 partition-parallel with this many workers (0 = serial, -1 = GOMAXPROCS)")
	cachebench := flag.Bool("cachebench", false, "measure cold vs warm (plan-cached) optimize time per benchmark query")
	batchbench := flag.Bool("batchbench", false, "measure batched vs tuple-at-a-time execution on the table 3 workload")
	contentbench := flag.Bool("contentbench", false, "measure value-index predicate pushdown vs scan+filter")
	nobatch := flag.Bool("nobatch", false, "run table 3 tuple-at-a-time instead of batched (escape hatch)")
	method := flag.String("method", "DPP", "optimizer for -cachebench and -batchbench")
	chaos := flag.Bool("chaos", false, "drive all queries and methods over a fault-injecting store")
	chaosIters := flag.Int("chaositers", 0, "fault iterations per query x method for -chaos (0 = default)")
	chaosProb := flag.Float64("chaosprob", 0, "per-read transient fault probability for -chaos (0 = default)")
	chaosSeed := flag.Int64("chaosseed", 1, "fault schedule seed for -chaos")
	loadbench := flag.Bool("loadbench", false, "open-loop load benchmark against a sharded corpus")
	loadrate := flag.Float64("loadrate", 0, "offered query rate per second for -loadbench (0 = default)")
	loadduration := flag.Duration("loadduration", 0, "load phase length for -loadbench (0 = default)")
	loadclients := flag.Int("loadclients", 0, "client workers for -loadbench (0 = default)")
	loaddocs := flag.Int("loaddocs", 0, "corpus documents for -loadbench (0 = default)")
	loadshards := flag.Int("loadshards", 0, "corpus shards for -loadbench (0 = default)")
	loadout := flag.String("loadout", "BENCH_corpus.json", "JSON result file for -loadbench (empty = stdout only)")
	loadreplicas := flag.Int("loadreplicas", 0, "store replicas per shard for -loadbench (0 = 1; >1 enables hedged routing)")
	replicabench := flag.Bool("replicabench", false, "hedged vs unhedged tail comparison with one slow replica per shard")
	replicaslow := flag.Duration("replicaslow", 0, "per-read latency of each shard's slow replica for -replicabench (0 = default)")
	replicahedge := flag.Duration("replicahedge", 0, "fixed hedge delay for -replicabench and -loadbench (0 = adaptive p95)")
	replicaout := flag.String("replicaout", "BENCH_replica.json", "JSON result file for -replicabench (empty = stdout only)")
	plannerbench := flag.Bool("plannerbench", false, "measure plan-search vs execution time for every method across Table-3 and stress workloads")
	plannerquick := flag.Bool("plannerquick", false, "the planner lane at fold x1 with small timing budgets (CI smoke test)")
	plannerout := flag.String("plannerout", "BENCH_planner.json", "JSON result file for -plannerbench (empty = stdout only)")
	churnbench := flag.Bool("churnbench", false, "measure query latency under concurrent document churn (WAL-committed inserts/replaces/deletes)")
	churnquick := flag.Bool("churnquick", false, "the churn lane shrunk to a CI smoke test")
	churnrate := flag.Float64("churnrate", 0, "offered mutation rate per second for -churnbench (0 = default)")
	churnout := flag.String("churnout", "BENCH_churn.json", "JSON result file for -churnbench (empty = stdout only)")
	flag.Parse()

	if *census {
		if err := printCensus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "xqbench: census: %v\n", err)
			os.Exit(1)
		}
		if !*all && *table == 0 && *figure == 0 {
			return
		}
	}
	if !*all && !*census && !*cachebench && !*batchbench && !*contentbench && !*chaos && !*loadbench && !*replicabench && !*plannerbench && !*plannerquick && !*churnbench && !*churnquick && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "xqbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	if *churnbench || *churnquick {
		run("churnbench", func() error {
			m, err := sjos.ParseMethod(*method)
			if err != nil {
				return err
			}
			res, err := experiments.ChurnBench(experiments.ChurnBenchConfig{
				Docs:       *loaddocs,
				Shards:     *loadshards,
				QueryRate:  *loadrate,
				MutateRate: *churnrate,
				Duration:   *loadduration,
				Clients:    *loadclients,
				Method:     m,
				Seed:       1,
				Quick:      *churnquick,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderChurnBench(res))
			if err := res.Verify(); err != nil {
				return err
			}
			if *churnout != "" {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*churnout, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *churnout)
			}
			return nil
		})
		if !*all && !*plannerbench && !*plannerquick && !*loadbench && !*replicabench && !*chaos && !*cachebench && !*batchbench && !*contentbench && *table == 0 && *figure == 0 {
			return
		}
	}
	if *plannerbench || *plannerquick {
		run("plannerbench", func() error {
			res, err := experiments.PlannerBench(experiments.PlannerConfig{Quick: *plannerquick})
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderPlannerBench(res))
			if *plannerout != "" {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*plannerout, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *plannerout)
			}
			return nil
		})
		if !*all && !*loadbench && !*replicabench && !*chaos && !*cachebench && !*batchbench && !*contentbench && *table == 0 && *figure == 0 {
			return
		}
	}
	if *loadbench {
		run("loadbench", func() error {
			m, err := sjos.ParseMethod(*method)
			if err != nil {
				return err
			}
			res, err := experiments.LoadBench(experiments.LoadBenchConfig{
				Docs:       *loaddocs,
				Shards:     *loadshards,
				Rate:       *loadrate,
				Duration:   *loadduration,
				Clients:    *loadclients,
				Method:     m,
				Seed:       1,
				Replicas:   *loadreplicas,
				HedgeDelay: *replicahedge,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderLoadBench(res))
			if res.Completed == 0 || res.Throughput <= 0 {
				return fmt.Errorf("no queries completed under load")
			}
			if !res.DrainClean {
				return fmt.Errorf("corpus did not drain cleanly after the load phase")
			}
			if *loadout != "" {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*loadout, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *loadout)
			}
			return nil
		})
		if !*all && !*replicabench && !*chaos && !*cachebench && !*batchbench && !*contentbench && *table == 0 && *figure == 0 {
			return
		}
	}
	if *replicabench {
		run("replicabench", func() error {
			m, err := sjos.ParseMethod(*method)
			if err != nil {
				return err
			}
			res, err := experiments.ReplicaBench(experiments.ReplicaBenchConfig{
				Docs:        *loaddocs,
				Shards:      *loadshards,
				Replicas:    *loadreplicas,
				SlowLatency: *replicaslow,
				HedgeDelay:  *replicahedge,
				Rate:        *loadrate,
				Duration:    *loadduration,
				Clients:     *loadclients,
				Method:      m,
				Seed:        1,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderReplicaBench(res))
			if res.Unhedged.Completed == 0 || res.Hedged.Completed == 0 {
				return fmt.Errorf("no queries completed under load")
			}
			if *replicaout != "" {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*replicaout, append(blob, '\n'), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n", *replicaout)
			}
			return nil
		})
		if !*all && !*chaos && !*cachebench && !*batchbench && !*contentbench && *table == 0 && *figure == 0 {
			return
		}
	}
	if *chaos {
		run("chaos", func() error {
			cfg := experiments.ChaosConfig{Iters: *chaosIters, Prob: *chaosProb, Seed: *chaosSeed}
			rows, err := experiments.Chaos(cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderChaos(rows, cfg))
			return nil
		})
		if !*all && !*cachebench && !*batchbench && !*contentbench && *table == 0 && *figure == 0 {
			return
		}
	}
	if *cachebench {
		run("cachebench", func() error {
			m, err := sjos.ParseMethod(*method)
			if err != nil {
				return err
			}
			rows, err := experiments.CacheBench(m, 3)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderCacheBench(rows))
			return nil
		})
		if !*all && !*batchbench && !*contentbench && *table == 0 && *figure == 0 {
			return
		}
	}
	if *batchbench {
		run("batchbench", func() error {
			m, err := sjos.ParseMethod(*method)
			if err != nil {
				return err
			}
			folds := []int{1, 10, 100}
			if *full {
				folds = append(folds, 500)
			}
			rows, err := experiments.BatchBench(m, folds)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderBatchBench(rows, m))
			return nil
		})
		if !*all && !*contentbench && *table == 0 && *figure == 0 {
			return
		}
	}
	if *contentbench {
		run("contentbench", func() error {
			m, err := sjos.ParseMethod(*method)
			if err != nil {
				return err
			}
			folds := []int{1, 10, 100}
			if *full {
				folds = append(folds, 500)
			}
			rows, err := experiments.ContentBench(m, folds)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderContentBench(rows, m))
			return nil
		})
		if !*all && *table == 0 && *figure == 0 {
			return
		}
	}
	if *all || *table == 1 {
		run("table 1", func() error {
			rows, err := experiments.Table1()
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTable1(rows))
			return nil
		})
	}
	if *all || *table == 2 {
		run("table 2", func() error {
			cols, err := experiments.Table2(experiments.PersQuery3)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTable2(cols, experiments.PersQuery3))
			return nil
		})
	}
	if *all || *table == 3 {
		run("table 3", func() error {
			folds := []int{1, 10, 100}
			if *full {
				folds = append(folds, 500)
			}
			var rows []experiments.Table3Row
			var err error
			switch {
			case *parallel != 0:
				fmt.Printf("(partition-parallel execution, %d workers)\n", *parallel)
				rows, err = experiments.Table3Parallel(folds, *parallel)
			case *nobatch:
				fmt.Println("(tuple-at-a-time execution, -nobatch)")
				rows, err = experiments.Table3NoBatch(folds)
			default:
				rows, err = experiments.Table3(folds)
			}
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTable3(rows))
			return nil
		})
	}
	if *all || *figure == 7 {
		run("figure 7", func() error {
			bars, err := experiments.Figure78(100)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFigure(bars, 100))
			return nil
		})
	}
	if *all || *figure == 8 {
		run("figure 8", func() error {
			bars, err := experiments.Figure78(1)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderFigure(bars, 1))
			return nil
		})
	}
}

// printCensus writes the search-space census for every benchmark query's
// pattern: the measurable form of §3's complexity analysis (statuses,
// deadends, per-level growth).
func printCensus(w *os.File) error {
	fmt.Fprintln(w, "Status search-space census (Definition 1-6; deadends per Definition 6)")
	fmt.Fprintf(w, "%-14s %-7s %-9s %-9s %-7s %s\n",
		"Query", "nodes", "statuses", "deadends", "finals", "per level")
	for _, q := range experiments.Queries() {
		pat, err := sjos.ParsePattern(q.Source)
		if err != nil {
			return err
		}
		c, err := core.CensusSearchSpace(pat)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %-7d %-9d %-9d %-7d %v\n",
			q.ID, pat.N(), c.Statuses, c.Deadends, c.Finals, c.PerLevel)
	}
	return nil
}
