package core

import (
	"math"
	"strings"
	"testing"

	"sjos/internal/pattern"
)

// figure4Pattern: the worked example of §3.2.1 uses a 4-node pattern with
// one branch (Figure 4's status0 has four possible initial moves after
// lookahead: 3 edges, some alternatives deadend-filtered).
func figure4Pattern() *pattern.Pattern {
	return pattern.MustParse("//a[b]//c/d")
}

// TestDPPTraceReplaysFigure4Narrative asserts the structural properties of
// the paper's Example 3.6 walk-through on a traced DPP run:
//
//  1. expansions follow non-decreasing... no — priority order (Cost+ubCost),
//     which the example calls "the status with the lowest Cost+ubCost is
//     always expanded first";
//  2. a complete plan is reached while unexpanded statuses remain, and
//     after it appears, "dead" statuses are pruned (the example's status9
//     and status4);
//  3. the Lookahead Rule generates no deadend statuses;
//  4. the result equals exhaustive DP's optimum.
func TestDPPTraceReplaysFigure4Narrative(t *testing.T) {
	pat := figure4Pattern()
	est := skewedEstimator(t, pat, 13)
	res, events, err := DPPWithTrace(pat, est, testModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no trace recorded")
	}

	var sawFinal, prunedAfterFinal bool
	var finals int
	for i, e := range events {
		switch e.Kind {
		case TraceFinal:
			sawFinal = true
			finals++
		case TracePruneDead:
			if sawFinal {
				prunedAfterFinal = true
			} else {
				t.Fatalf("event %d: pruning before any complete plan exists", i)
			}
		case TraceGenerate:
			// Lookahead: every generated non-final status has a move.
			if e.Edges != uint32(0b1110) { // not final (3 edges: bits 1..3)
				sp := newSpace(pat, est, testModel())
				if !sp.hasMove(e.Edges, e.OrderMask) {
					t.Fatalf("event %d: deadend status generated", i)
				}
			}
		}
	}
	if !sawFinal {
		t.Fatal("trace never reached a final status")
	}
	if finals > 1 && !prunedAfterFinal {
		t.Log("note: no dead statuses pruned after the first full plan (tiny search)")
	}

	dp, err := DP(pat, est, testModel())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dp.Cost-res.Cost) > 1e-9*dp.Cost {
		t.Fatalf("traced DPP cost %v, DP %v", res.Cost, dp.Cost)
	}
}

func TestFormatTrace(t *testing.T) {
	pat := figure4Pattern()
	est := skewedEstimator(t, pat, 21)
	_, events, err := DPPWithTrace(pat, est, testModel())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTrace(pat, events)
	for _, want := range []string{"expand", "generate", "final", "{a"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTrace missing %q:\n%s", want, out)
		}
	}
	// The start status shows every node as its own ordered cluster.
	if !strings.Contains(out, "{a*} {b*} {c*} {d*}") {
		t.Errorf("start status not rendered:\n%s", out)
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceExpand.String() != "expand" || TracePruneDead.String() != "prune-dead" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(TraceKind(99).String(), "99") {
		t.Fatal("unknown kind should include the number")
	}
}
