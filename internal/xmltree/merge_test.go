package xmltree

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestMergeDocumentsStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tags := []string{"a", "b", "c", "d"}
	docs := []*Document{
		RandomDocument(rng, 37, tags),
		RandomDocument(rng, 1, tags),
		RandomDocument(rng, 120, tags[:2]),
	}
	m, spans, err := MergeDocuments(docs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged document fails validation: %v", err)
	}
	wantNodes := 1
	for _, d := range docs {
		wantNodes += d.NumNodes()
	}
	if m.NumNodes() != wantNodes {
		t.Fatalf("merged NumNodes = %d, want %d", m.NumNodes(), wantNodes)
	}
	if m.TagName(m.Tag(0)) != MergedRootTag {
		t.Fatalf("node 0 tag = %q, want synthetic root", m.TagName(m.Tag(0)))
	}
	if len(spans) != len(docs) {
		t.Fatalf("got %d spans, want %d", len(spans), len(docs))
	}
	// Per-member structure preserved exactly under the span offset.
	for i, d := range docs {
		sp := spans[i]
		if sp.Nodes != d.NumNodes() {
			t.Fatalf("member %d span holds %d nodes, want %d", i, sp.Nodes, d.NumNodes())
		}
		for j := 0; j < d.NumNodes(); j++ {
			local, merged := NodeID(j), sp.First+NodeID(j)
			if !sp.Contains(merged) || sp.Local(merged) != local {
				t.Fatalf("member %d node %d: span arithmetic broken", i, j)
			}
			if m.TagName(m.Tag(merged)) != d.TagName(d.Tag(local)) {
				t.Fatalf("member %d node %d: tag mismatch", i, j)
			}
			if m.Value(merged) != d.Value(local) {
				t.Fatalf("member %d node %d: value mismatch", i, j)
			}
			if m.Level(merged) != d.Level(local)+1 {
				t.Fatalf("member %d node %d: level %d, want %d", i, j, m.Level(merged), d.Level(local)+1)
			}
			wantParent := sp.First // member root hangs off the synthetic root
			if p := d.Parent(local); p != InvalidNode {
				wantParent = p + sp.First
			} else {
				wantParent = 0
			}
			if m.Parent(merged) != wantParent {
				t.Fatalf("member %d node %d: parent %d, want %d", i, j, m.Parent(merged), wantParent)
			}
		}
	}
	// Structural joins never cross member boundaries: a member root is
	// never an ancestor of another member's node.
	for i := range docs {
		for j := range docs {
			if i == j {
				continue
			}
			if m.IsAncestor(spans[i].First, spans[j].First) {
				t.Fatalf("member %d root is ancestor of member %d root", i, j)
			}
		}
	}
}

func TestMergeDocumentsErrors(t *testing.T) {
	if _, _, err := MergeDocuments(nil); err == nil {
		t.Error("MergeDocuments(nil) must fail")
	}
	b := NewBuilder()
	b.Open(MergedRootTag, "")
	b.Close()
	bad := b.MustFinish()
	if _, _, err := MergeDocuments([]*Document{bad}); err == nil {
		t.Error("reserved root tag collision must fail")
	}
}

func TestMergeSingleDocument(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := RandomDocument(rng, 25, []string{"x", "y"})
	m, spans, err := MergeDocuments([]*Document{d})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if spans[0].First != 1 || spans[0].Nodes != 25 {
		t.Fatalf("span = %+v, want {1 25}", spans[0])
	}
}

// TestMergeDocumentsDepthOverflow: a member with a node already at the
// uint16 level ceiling cannot be pushed one level deeper; the old code
// silently wrapped the level to 0 and corrupted level-sensitive execution.
func TestMergeDocumentsDepthOverflow(t *testing.T) {
	b := NewBuilder()
	for i := 0; i <= math.MaxUint16; i++ { // levels 0 .. 65535
		b.Open("n", "")
	}
	for i := 0; i <= math.MaxUint16; i++ {
		b.Close()
	}
	deep := b.MustFinish()
	if got := deep.Level(NodeID(deep.NumNodes() - 1)); got != math.MaxUint16 {
		t.Fatalf("deepest node level = %d, want %d", got, math.MaxUint16)
	}

	shallow := RandomDocument(rand.New(rand.NewSource(1)), 10, []string{"a"})
	_, _, err := MergeDocuments([]*Document{shallow, deep})
	var de *DepthOverflowError
	if !errors.As(err, &de) {
		t.Fatalf("MergeDocuments err = %v, want *DepthOverflowError", err)
	}
	if de.Member != 1 || de.Depth != math.MaxUint16 {
		t.Fatalf("error detail = %+v, want member 1 at depth %d", de, math.MaxUint16)
	}

	// A member at one short of the ceiling still merges: the shifted level
	// lands exactly on MaxUint16 without wrapping.
	if m, _, err := MergeDocuments([]*Document{shallow}); err != nil || m == nil {
		t.Fatalf("shallow-only merge failed: %v", err)
	}
}
