package exec

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/xmltree"
)

// OpTrace is one operator's instrumentation record in a plan-shaped trace
// tree: wall time split by iterator phase, Next-call and output-tuple
// counts, and the optimizer's cardinality estimate for est-vs-actual drift
// analysis (the paper's core feedback signal). Durations are cumulative —
// an operator's Next time includes the Next time of its children, and under
// partition-parallel execution the times of all clones are summed, so they
// can exceed the query's wall-clock latency.
type OpTrace struct {
	// Op names the physical operator ("IndexScan", "Sort", "STJ-Desc",
	// "STJ-Anc"); Detail renders its arguments against the pattern.
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`
	// EstRows is the optimizer's estimated output cardinality; Rows the
	// actual output tuple count.
	EstRows float64 `json:"est_rows"`
	Rows    int64   `json:"rows"`
	// NextCalls counts Next invocations (Rows + one end-of-stream call per
	// clone, fewer under an early-terminating Limit).
	NextCalls int64 `json:"next_calls"`
	// Batches counts NextBatch invocations on the batched path (0 under
	// tuple-at-a-time execution); Skipped counts index postings the
	// operator bypassed via skip-ahead seeks.
	Batches int64 `json:"batches,omitempty"`
	Skipped int64 `json:"skipped,omitempty"`
	// Clones is the number of operator instances that fed this record: 1
	// for serial execution, one per partition for parallel runs.
	Clones int64 `json:"clones"`
	// OpenTime, NextTime and CloseTime are the wall time spent in each
	// iterator phase, summed over clones.
	OpenTime  time.Duration `json:"open_ns"`
	NextTime  time.Duration `json:"next_ns"`
	CloseTime time.Duration `json:"close_ns"`
	// Children are the operator's inputs in plan order.
	Children []*OpTrace `json:"children,omitempty"`
}

// WallTime is the operator's total instrumented time across all phases.
func (t *OpTrace) WallTime() time.Duration {
	return t.OpenTime + t.NextTime + t.CloseTime
}

// Format renders the trace tree one operator per line, annotated with
// estimated vs actual rows, the est/actual drift ratio, Next calls and
// wall time — the body of EXPLAIN ANALYZE.
func (t *OpTrace) Format() string {
	var sb strings.Builder
	var walk func(n *OpTrace, depth int)
	walk = func(n *OpTrace, depth int) {
		fmt.Fprintf(&sb, "%s%s %s  [est≈%.0f actual=%d err=%s calls=%d",
			strings.Repeat("  ", depth), n.Op, n.Detail,
			n.EstRows, n.Rows, driftRatio(n.EstRows, n.Rows), n.NextCalls)
		if n.Batches > 0 {
			fmt.Fprintf(&sb, " batches=%d", n.Batches)
		}
		if n.Skipped > 0 {
			fmt.Fprintf(&sb, " skipped=%d", n.Skipped)
		}
		fmt.Fprintf(&sb, " time=%v]\n", n.WallTime().Round(time.Microsecond))
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t, 0)
	return sb.String()
}

// Merge folds another trace of the same plan shape into t, summing every
// counter and duration recursively. The corpus driver uses it to collapse
// per-shard traces of one shared plan into a single corpus-wide trace;
// EstRows stays corpus-level (the merged-statistics estimate), so it is kept
// from t rather than summed. Shapes are matched positionally — children
// beyond t's own are ignored, which cannot happen when both traces were
// built from the same plan.
func (t *OpTrace) Merge(o *OpTrace) {
	if o == nil {
		return
	}
	t.Rows += o.Rows
	t.NextCalls += o.NextCalls
	t.Batches += o.Batches
	t.Skipped += o.Skipped
	t.Clones += o.Clones
	t.OpenTime += o.OpenTime
	t.NextTime += o.NextTime
	t.CloseTime += o.CloseTime
	for i, c := range t.Children {
		if i < len(o.Children) {
			c.Merge(o.Children[i])
		}
	}
}

// MaxDrift returns the worst per-operator estimation drift in the trace
// tree and the operator it occurred at. Drift is symmetric — max(est/actual,
// actual/est), with both sides floored at one row so empty operators
// compare cleanly — making 1.0 a perfect estimate and either direction of
// mis-estimation (over or under) count equally. It is the adaptive
// feedback signal: a cached plan whose worst operator drifts past the
// configured threshold is evicted and re-planned.
func (t *OpTrace) MaxDrift() (float64, *OpTrace) {
	worst, at := 1.0, t
	var walk func(n *OpTrace)
	walk = func(n *OpTrace) {
		e, a := n.EstRows, float64(n.Rows)
		if e < 1 {
			e = 1
		}
		if a < 1 {
			a = 1
		}
		d := e / a
		if d < 1 {
			d = 1 / d
		}
		if d > worst {
			worst, at = d, n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return worst, at
}

// driftRatio renders est/actual ("-" when either side is zero).
func driftRatio(est float64, actual int64) string {
	if actual <= 0 || est <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", est/float64(actual))
}

// traceAcc is the shared accumulator behind one plan node's OpTrace. Every
// operator clone built by the owning TraceBuilder flushes its local
// counters here (atomically, on Close), so serial and partition-parallel
// executions feed the same plan-shaped trace.
type traceAcc struct {
	node        *plan.Node
	left, right *traceAcc

	rows      atomic.Int64
	nextCalls atomic.Int64
	batches   atomic.Int64
	skipped   atomic.Int64
	clones    atomic.Int64
	openNs    atomic.Int64
	nextNs    atomic.Int64
	closeNs   atomic.Int64
}

// TraceBuilder compiles instrumented operator trees for one plan. Build may
// be called many times (the parallel driver builds one clone per
// partition); all clones accumulate into the same per-plan-node counters,
// and Trace snapshots them as a plan-shaped OpTrace tree.
type TraceBuilder struct {
	pat  *pattern.Pattern
	plan *plan.Node
	root *traceAcc
	accs map[*plan.Node]*traceAcc
}

// NewTraceBuilder prepares tracing for plan p over pat.
func NewTraceBuilder(pat *pattern.Pattern, p *plan.Node) (*TraceBuilder, error) {
	tb := &TraceBuilder{pat: pat, plan: p, accs: make(map[*plan.Node]*traceAcc)}
	root, err := tb.mirror(p)
	if err != nil {
		return nil, err
	}
	tb.root = root
	return tb, nil
}

// mirror builds the accumulator tree in the plan's shape.
func (tb *TraceBuilder) mirror(n *plan.Node) (*traceAcc, error) {
	switch n.Op {
	case plan.OpIndexScan, plan.OpSort, plan.OpStructuralJoin:
	default:
		return nil, fmt.Errorf("exec: unknown plan operator %d", n.Op)
	}
	a := &traceAcc{node: n}
	var err error
	if n.Left != nil {
		if a.left, err = tb.mirror(n.Left); err != nil {
			return nil, err
		}
	}
	if n.Right != nil && n.Op == plan.OpStructuralJoin {
		if a.right, err = tb.mirror(n.Right); err != nil {
			return nil, err
		}
	}
	tb.accs[n] = a
	return a, nil
}

// Build compiles a fresh instrumented operator tree accumulating into this
// builder's trace.
func (tb *TraceBuilder) Build() (Operator, error) {
	return buildWrapped(tb.pat, tb.plan, func(n *plan.Node, op Operator) Operator {
		return &traced{inner: op, acc: tb.accs[n]}
	})
}

// Trace snapshots the accumulated counters as a plan-shaped trace tree.
// Valid any time; per-clone counters land when each clone is Closed.
func (tb *TraceBuilder) Trace() *OpTrace {
	return tb.snapshot(tb.root)
}

func (tb *TraceBuilder) snapshot(a *traceAcc) *OpTrace {
	if a == nil {
		return nil
	}
	t := &OpTrace{
		Op:        opName(a.node),
		Detail:    opDetail(tb.pat, a.node),
		EstRows:   a.node.EstCard,
		Rows:      a.rows.Load(),
		NextCalls: a.nextCalls.Load(),
		Batches:   a.batches.Load(),
		Skipped:   a.skipped.Load(),
		Clones:    a.clones.Load(),
		OpenTime:  time.Duration(a.openNs.Load()),
		NextTime:  time.Duration(a.nextNs.Load()),
		CloseTime: time.Duration(a.closeNs.Load()),
	}
	for _, c := range []*traceAcc{a.left, a.right} {
		if s := tb.snapshot(c); s != nil {
			t.Children = append(t.Children, s)
		}
	}
	return t
}

// opName names a plan node's physical operator.
func opName(n *plan.Node) string {
	switch n.Op {
	case plan.OpIndexScan:
		if n.ValueIndex {
			return "ValueIndexScan"
		}
		return "IndexScan"
	case plan.OpSort:
		return "Sort"
	case plan.OpStructuralJoin:
		return n.Algo.String()
	}
	return fmt.Sprintf("Op(%d)", n.Op)
}

// opDetail renders a plan node's arguments against the pattern, matching
// the plan formatter's tag($node) convention.
func opDetail(pat *pattern.Pattern, n *plan.Node) string {
	tag := func(u int) string {
		if u >= 0 && u < pat.N() {
			return fmt.Sprintf("%s($%d)", pat.Nodes[u].Tag, u)
		}
		return fmt.Sprintf("$%d", u)
	}
	switch n.Op {
	case plan.OpIndexScan:
		return tag(n.PatternNode)
	case plan.OpSort:
		return "by " + tag(n.SortBy)
	case plan.OpStructuralJoin:
		return fmt.Sprintf("%s %s %s", tag(n.AncNode), n.Axis, tag(n.DescNode))
	}
	return ""
}

// traced wraps one operator instance with phase timers and output counters.
// Counters stay clone-local (no synchronisation on the Next path) and are
// flushed into the shared accumulator once, when the operator is Closed.
type traced struct {
	inner  Operator
	innerB BatchOperator // lazily bound batched view of inner
	acc    *traceAcc

	rows      int64
	nextCalls int64
	batches   int64
	skipped   int64
	openNs    int64
	nextNs    int64
	closeNs   int64
	flushed   bool
}

// Schema implements Operator.
func (t *traced) Schema() *Schema { return t.inner.Schema() }

// Open implements Operator.
func (t *traced) Open(ctx *Context) error {
	start := time.Now()
	err := t.inner.Open(ctx)
	t.openNs += int64(time.Since(start))
	return err
}

// Next implements Operator.
func (t *traced) Next() (Tuple, bool, error) {
	start := time.Now()
	tup, ok, err := t.inner.Next()
	t.nextNs += int64(time.Since(start))
	t.nextCalls++
	if ok {
		t.rows++
	}
	return tup, ok, err
}

// NextBatch implements BatchOperator with one timing sample and one counter
// update per batch rather than per tuple — this is what collapses tracing
// overhead on the batched path.
func (t *traced) NextBatch(b *Batch) error {
	if t.innerB == nil {
		t.innerB = AsBatchOperator(t.inner)
	}
	start := time.Now()
	err := t.innerB.NextBatch(b)
	t.nextNs += int64(time.Since(start))
	t.batches++
	t.rows += int64(b.Len())
	return err
}

// SeekGE implements Seeker by delegating to the wrapped operator (if it can
// seek), recording the skipped postings in the trace.
func (t *traced) SeekGE(pos xmltree.Pos) (int, bool, error) {
	skipped, ok, err := trySeek(t.inner, pos)
	if ok {
		t.skipped += int64(skipped)
	}
	return skipped, ok, err
}

// Close implements Operator; it flushes this clone's counters into the
// shared trace exactly once.
func (t *traced) Close() error {
	start := time.Now()
	err := t.inner.Close()
	t.closeNs += int64(time.Since(start))
	t.flush()
	return err
}

func (t *traced) flush() {
	if t.flushed || t.acc == nil {
		return
	}
	t.flushed = true
	t.acc.rows.Add(t.rows)
	t.acc.nextCalls.Add(t.nextCalls)
	t.acc.batches.Add(t.batches)
	t.acc.skipped.Add(t.skipped)
	t.acc.clones.Add(1)
	t.acc.openNs.Add(t.openNs)
	t.acc.nextNs.Add(t.nextNs)
	t.acc.closeNs.Add(t.closeNs)
}
