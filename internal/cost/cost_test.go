package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	if !DefaultModel().Valid() {
		t.Fatal("DefaultModel must be valid")
	}
	if (Model{}).Valid() {
		t.Fatal("zero model must be invalid")
	}
}

func TestFormulas(t *testing.T) {
	m := Model{FI: 2, FS: 3, FIO: 5, FST: 7, FSC: 1}
	if got := m.IndexAccess(10); got != 20 {
		t.Errorf("IndexAccess = %v", got)
	}
	if got := m.Sort(8); math.Abs(got-8*3*3) > 1e-9 {
		t.Errorf("Sort(8) = %v, want 72", got)
	}
	if got := m.Sort(1); got != 0 {
		t.Errorf("Sort(1) = %v, want 0", got)
	}
	if got := m.Sort(0); got != 0 {
		t.Errorf("Sort(0) = %v, want 0", got)
	}
	if got := m.StackTreeDesc(100, 30, 40); got != 2*100*7+(100+30+40)*1 {
		t.Errorf("StackTreeDesc = %v", got)
	}
	if got := m.StackTreeAnc(100, 30, 40); got != 2*40*5+2*100*7+(100+30+40)*1 {
		t.Errorf("StackTreeAnc = %v", got)
	}
}

// Anc is never cheaper than Desc on the same input — the optimizer relies
// on Desc being the baseline algorithm.
func TestAncDominatesDesc(t *testing.T) {
	m := DefaultModel()
	f := func(a, b, ab uint16) bool {
		return m.StackTreeAnc(float64(a), float64(b), float64(ab)) >=
			m.StackTreeDesc(float64(a), float64(b), float64(ab))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortMonotone(t *testing.T) {
	m := DefaultModel()
	f := func(n uint16) bool {
		a, b := float64(n), float64(n)+1
		return m.Sort(b) >= m.Sort(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateProducesValidModel(t *testing.T) {
	m := Calibrate()
	if !m.Valid() {
		t.Fatalf("Calibrate returned invalid model: %+v", m)
	}
	// Sanity: all factors within a plausible nanosecond range.
	for name, f := range map[string]float64{"FI": m.FI, "FS": m.FS, "FIO": m.FIO, "FST": m.FST, "FSC": m.FSC} {
		if f <= 0 || f > 1e6 {
			t.Errorf("factor %s = %v out of range", name, f)
		}
	}
}
