package core

import (
	"fmt"
	"math/bits"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// Estimator supplies the cardinality estimates the cost model needs:
// per-pattern-node candidate counts and per-edge join selectivities, chained
// into sub-pattern (cluster) cardinalities under the usual independence
// assumption:
//
//	|C| = Π_{i ∈ C} |cand(i)| · Π_{(u,v) ⊆ C} sel(u,v)
//
// Per-edge selectivities come from positional histograms (internal/
// histogram), exactly as in the paper's experimental setup.
type Estimator struct {
	pat      *pattern.Pattern
	nodeCard []float64 // per pattern node, after value-predicate selectivity
	scanCard []float64 // per pattern node, before predicate (full tag scan)
	probe    []bool    // per pattern node: value-index probe available
	edgeSel  []float64 // per edge id (1..n-1); [0] unused
	memo     map[uint64]float64
}

// ProbeEligibility answers whether a value predicate on a tag can be
// served by a content-index probe with scan+filter semantics. It is
// implemented by *storage.Store; declared here so core does not depend on
// the storage package.
type ProbeEligibility interface {
	ProbeEligible(tag string, op pattern.CmpOp, value string) bool
}

// ProbeSelectivity optionally refines ProbeEligibility with the exact
// probe result count. Stores implement it, making the indexed leaf's
// cardinality estimate exact.
type ProbeSelectivity interface {
	ProbeSelectivity(tag string, op pattern.CmpOp, value string) (int, bool)
}

// StatsSource is the statistics surface the estimator consumes: tag
// resolution, tag population counts, value-predicate selectivities and
// per-edge join selectivities. *histogram.Stats implements it for a single
// document; *histogram.Multi implements it corpus-wide over per-shard
// statistics. Declared here so core stays independent of how statistics are
// aggregated.
type StatsSource interface {
	Lookup(name string) (xmltree.TagID, bool)
	TagCount(t xmltree.TagID) float64
	PredicateSelectivity(t xmltree.TagID, op pattern.CmpOp, value string) float64
	Selectivity(ta, tb xmltree.TagID, ax pattern.Axis) float64
}

// NewEstimator derives an estimator for pat from document (or corpus)
// statistics.
func NewEstimator(pat *pattern.Pattern, stats StatsSource) (*Estimator, error) {
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	if pat.N() > MaxPatternNodes {
		return nil, fmt.Errorf("core: pattern has %d nodes, maximum is %d", pat.N(), MaxPatternNodes)
	}
	e := &Estimator{
		pat:      pat,
		nodeCard: make([]float64, pat.N()),
		scanCard: make([]float64, pat.N()),
		probe:    make([]bool, pat.N()),
		edgeSel:  make([]float64, pat.N()),
		memo:     make(map[uint64]float64),
	}
	for u := 0; u < pat.N(); u++ {
		nd := pat.Nodes[u]
		tag, ok := stats.Lookup(nd.Tag)
		if !ok {
			e.nodeCard[u] = 0
			continue
		}
		card := stats.TagCount(tag)
		e.scanCard[u] = card
		if nd.Op != pattern.CmpNone {
			card *= stats.PredicateSelectivity(tag, nd.Op, nd.Value)
		}
		e.nodeCard[u] = card
	}
	for v := 1; v < pat.N(); v++ {
		u := pat.Parent[v]
		ta, okA := stats.Lookup(pat.Nodes[u].Tag)
		tb, okB := stats.Lookup(pat.Nodes[v].Tag)
		if !okA || !okB {
			e.edgeSel[v] = 0
			continue
		}
		e.edgeSel[v] = stats.Selectivity(ta, tb, pat.Axis[v])
	}
	return e, nil
}

// NewManualEstimator builds an estimator from explicit statistics: nodeCard
// per pattern node and edgeSel per edge id (index 0 ignored). It backs unit
// tests and what-if experiments where exact control of cardinalities is
// needed.
func NewManualEstimator(pat *pattern.Pattern, nodeCard, edgeSel []float64) (*Estimator, error) {
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	if pat.N() > MaxPatternNodes {
		return nil, fmt.Errorf("core: pattern has %d nodes, maximum is %d", pat.N(), MaxPatternNodes)
	}
	if len(nodeCard) != pat.N() || len(edgeSel) != pat.N() {
		return nil, fmt.Errorf("core: statistics lengths %d/%d, want %d", len(nodeCard), len(edgeSel), pat.N())
	}
	return &Estimator{
		pat:      pat,
		nodeCard: append([]float64(nil), nodeCard...),
		scanCard: append([]float64(nil), nodeCard...),
		probe:    make([]bool, pat.N()),
		edgeSel:  append([]float64(nil), edgeSel...),
		memo:     make(map[uint64]float64),
	}, nil
}

// EnableValueIndex marks pattern nodes whose value predicate the given
// store can serve by an index probe; the planner then weighs a probe of
// NodeCard(u) postings against a scan of ScanCard(u) postings for those
// leaves. When pe also implements ProbeSelectivity, the indexed leaf's
// cardinality estimate is replaced by the exact probe result count (the
// index knows precisely how many postings it will return). Not calling
// this — or passing nil — leaves every leaf on the scan+filter path.
func (e *Estimator) EnableValueIndex(pe ProbeEligibility) {
	if pe == nil {
		return
	}
	ps, exact := pe.(ProbeSelectivity)
	for u := 0; u < e.pat.N(); u++ {
		nd := e.pat.Nodes[u]
		if nd.Op == pattern.CmpNone || !pe.ProbeEligible(nd.Tag, nd.Op, nd.Value) {
			continue
		}
		e.probe[u] = true
		if exact {
			if n, ok := ps.ProbeSelectivity(nd.Tag, nd.Op, nd.Value); ok {
				e.nodeCard[u] = float64(n)
			}
		}
	}
	// Cluster cardinalities depend on nodeCard; drop any memoised values.
	e.memo = make(map[uint64]float64)
}

// NodeCard returns the estimated candidate count for pattern node u.
func (e *Estimator) NodeCard(u int) float64 { return e.nodeCard[u] }

// ScanCard returns the estimated full tag-scan size for pattern node u —
// what an unindexed leaf must read before filtering. For nodes without a
// predicate it equals NodeCard.
func (e *Estimator) ScanCard(u int) float64 { return e.scanCard[u] }

// ProbeOK reports whether pattern node u's predicate can be served by a
// value-index probe (see EnableValueIndex).
func (e *Estimator) ProbeOK(u int) bool { return e.probe[u] }

// EdgeSelectivity returns the estimated selectivity of edge v.
func (e *Estimator) EdgeSelectivity(v int) float64 { return e.edgeSel[v] }

// ClusterCard estimates the cardinality of the joined sub-pattern whose
// node set is given as a bitmask. The mask must induce a connected
// sub-pattern (as all status clusters do); the estimate multiplies node
// candidate counts with the selectivities of all pattern edges internal to
// the mask.
func (e *Estimator) ClusterCard(mask uint64) float64 {
	if c, ok := e.memo[mask]; ok {
		return c
	}
	card := 1.0
	for u := 0; u < e.pat.N(); u++ {
		if mask&(1<<uint(u)) == 0 {
			continue
		}
		card *= e.nodeCard[u]
		if u > 0 {
			p := e.pat.Parent[u]
			if mask&(1<<uint(p)) != 0 {
				card *= e.edgeSel[u]
			}
		}
	}
	e.memo[mask] = card
	return card
}

// TotalCard estimates the full pattern-match cardinality.
func (e *Estimator) TotalCard() float64 {
	return e.ClusterCard((uint64(1) << uint(e.pat.N())) - 1)
}

// MaxPatternNodes bounds the pattern size the optimizers accept; it keeps
// the status encodings within machine words. Patterns in XML workloads are
// far smaller.
const MaxPatternNodes = 30

// popcount is a readability alias used across the search code.
func popcount(m uint32) int { return bits.OnesCount32(m) }
