package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// fmtDur renders a duration compactly with ~3 significant digits, using the
// unit that keeps the number readable.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// RenderTable1 formats Table 1 in the paper's layout: per query, an Opt.
// and Eval. column for each algorithm plus the bad-plan column.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1. Query Optimization and Query Plan Evaluation Times\n")
	fmt.Fprintf(&sb, "%-14s", "Query")
	for _, m := range Methods() {
		fmt.Fprintf(&sb, " | %-10s %-10s", m.String()+" Opt", "Eval")
	}
	sb.WriteString(" | Bad Eval\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s", r.Query.ID)
		for _, m := range Methods() {
			c := r.Cells[m.String()]
			fmt.Fprintf(&sb, " | %-10s %-10s", fmtDur(c.Opt), fmtDur(c.Eval))
		}
		fmt.Fprintf(&sb, " | %s\n", fmtDur(r.BadEval))
	}
	return sb.String()
}

// RenderTable2 formats Table 2: optimization time and plans considered.
func RenderTable2(cols []Table2Col, queryID string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2. Optimization Time and Plans Considered for %s\n", queryID)
	fmt.Fprintf(&sb, "%-12s", "")
	for _, c := range cols {
		fmt.Fprintf(&sb, " %10s", c.Method)
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-12s", "OpTime")
	for _, c := range cols {
		fmt.Fprintf(&sb, " %10s", fmtDur(c.Opt))
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "%-12s", "# of Plans")
	for _, c := range cols {
		fmt.Fprintf(&sb, " %10d", c.PlansConsidered)
	}
	sb.WriteString("\n")
	return sb.String()
}

// RenderTable3 formats Table 3: execution time per algorithm and folding
// factor.
func RenderTable3(rows []Table3Row) string {
	var folds []int
	if len(rows) > 0 {
		for f := range rows[0].Eval {
			folds = append(folds, f)
		}
		sort.Ints(folds)
	}
	var sb strings.Builder
	sb.WriteString("Table 3. Data Size and Query Plan Execution Time for " + PersQuery3 + "\n")
	fmt.Fprintf(&sb, "%-10s", "")
	for _, f := range folds {
		fmt.Fprintf(&sb, " %12s", fmt.Sprintf("x%d", f))
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s", r.Method)
		for _, f := range folds {
			fmt.Fprintf(&sb, " %12s", fmtDur(r.Eval[f]))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// RenderFigure formats Figures 7/8 as a textual bar chart of stacked
// optimization + execution time.
func RenderFigure(bars []FigureBar, fold int) string {
	name := "Figure 8"
	if fold != 1 {
		name = "Figure 7"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s. Query Evaluation Time Breakdown for %s, Folding Factor = %d\n",
		name, PersQuery3, fold)
	var maxTotal time.Duration
	for _, b := range bars {
		if b.Total() > maxTotal {
			maxTotal = b.Total()
		}
	}
	const width = 42
	for _, b := range bars {
		optW, evalW := 0, 0
		if maxTotal > 0 {
			optW = int(float64(b.Opt) / float64(maxTotal) * width)
			evalW = int(float64(b.Eval) / float64(maxTotal) * width)
		}
		fmt.Fprintf(&sb, "%-12s |%s%s %s opt + %s eval = %s\n",
			b.Label,
			strings.Repeat("#", optW),
			strings.Repeat("-", evalW),
			fmtDur(b.Opt), fmtDur(b.Eval), fmtDur(b.Total()))
	}
	sb.WriteString("(# = optimization time, - = plan execution time)\n")
	return sb.String()
}
