package storage

import (
	"fmt"
	"os"
	"sync"
)

// DiskFile is a PageFile backed by an operating-system file. It is the
// persistent counterpart of MemFile: pages are written at fixed offsets
// with WriteAt/ReadAt, so a database image survives process restarts and
// the buffer pool's hit/miss behaviour translates into real I/O.
type DiskFile struct {
	mu     sync.Mutex
	f      *os.File
	pages  int
	reads  uint64
	writes uint64
}

// CreateDiskFile creates (or truncates) a page file at path.
func CreateDiskFile(path string) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create disk file: %w", err)
	}
	return &DiskFile{f: f}, nil
}

// OpenDiskFile opens an existing page file at path.
func OpenDiskFile(path string) (*DiskFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open disk file: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat disk file: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s: size %d not page-aligned", path, st.Size())
	}
	return &DiskFile{f: f, pages: int(st.Size() / PageSize)}, nil
}

// ReadPage implements PageFile.
func (d *DiskFile) ReadPage(id PageID, dst *Page) error {
	d.mu.Lock()
	if int(id) >= d.pages {
		d.mu.Unlock()
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, d.pages)
	}
	d.reads++
	d.mu.Unlock()
	_, err := d.f.ReadAt(dst[:], int64(id)*PageSize)
	if err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements PageFile.
func (d *DiskFile) WritePage(id PageID, src *Page) error {
	d.mu.Lock()
	if int(id) > d.pages {
		d.mu.Unlock()
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, d.pages)
	}
	grow := int(id) == d.pages
	d.writes++
	d.mu.Unlock()
	if _, err := d.f.WriteAt(src[:], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if grow {
		d.mu.Lock()
		if int(id) == d.pages {
			d.pages++
		}
		d.mu.Unlock()
	}
	return nil
}

// NumPages implements PageFile.
func (d *DiskFile) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pages
}

// Reads returns the number of page reads served.
func (d *DiskFile) Reads() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads
}

// Writes returns the number of page writes served.
func (d *DiskFile) Writes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// Sync flushes the file to stable storage.
func (d *DiskFile) Sync() error { return d.f.Sync() }

// Close syncs and closes the file.
func (d *DiskFile) Close() error {
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}
