package twigjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// BenchmarkTwigStack measures holistic evaluation on random documents of
// growing size, for a selective and an unselective twig.
func BenchmarkTwigStack(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1000, 10000, 100000} {
		doc := xmltree.RandomDocument(rng, n, []string{"a", "b", "c", "d"})
		for _, src := range []string{"//a/b", "//a[.//b/c]//d"} {
			if n > 10000 && src != "//a/b" {
				// The unselective twig's match set grows
				// combinatorially on random documents; at 100k nodes
				// materialising it needs tens of GB. Skip it — the
				// selective twig covers the large-input scaling.
				continue
			}
			pat := pattern.MustParse(src)
			b.Run(fmt.Sprintf("n=%d/%s", n, src), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := Run(doc, pat); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
