package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"sjos"
)

func TestQueriesParseAndHaveShapes(t *testing.T) {
	shapes := map[byte]int{'a': 3, 'b': 4, 'c': 5, 'd': 6}
	for _, q := range Queries() {
		pat, err := sjos.ParsePattern(q.Source)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		shape := q.ID[len(q.ID)-1]
		if want := shapes[shape]; pat.N() != want {
			t.Errorf("%s: %d nodes, shape %c wants %d", q.ID, pat.N(), shape, want)
		}
	}
	if _, err := QueryByID("nope"); err == nil {
		t.Fatal("unknown query accepted")
	}
	if _, err := QueryByID(PersQuery3); err != nil {
		t.Fatal(err)
	}
}

func TestQueriesHaveMatchesOnTheirDatasets(t *testing.T) {
	for _, q := range Queries() {
		db, err := Dataset(q.Dataset, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(q.Source, sjos.MethodFP)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		if len(res.Matches) == 0 {
			t.Errorf("%s: zero matches — the benchmark query is vacuous", q.ID)
		}
	}
}

func TestDatasetCaching(t *testing.T) {
	a, err := Dataset("pers", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Dataset("pers", 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not cached")
	}
	c, err := Dataset("pers", 2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different folds share a database")
	}
	if _, err := Dataset("nope", 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunQueryAndBadPlan(t *testing.T) {
	q, _ := QueryByID("Q.Pers.1.a")
	db, err := Dataset(q.Dataset, 1)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := RunQuery(db, q, sjos.MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if cell.Matches == 0 || cell.EstCost <= 0 {
		t.Fatalf("cell = %+v", cell)
	}
	evalBad, estBad, err := RunBadPlan(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if estBad < cell.EstCost {
		t.Errorf("bad plan estimate %v below optimal %v", estBad, cell.EstCost)
	}
	_ = evalBad
}

func TestTable2Shape(t *testing.T) {
	cols, err := Table2(PersQuery3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 6 {
		t.Fatalf("%d columns, want 6", len(cols))
	}
	byName := map[string]int{}
	for _, c := range cols {
		byName[c.Method] = c.PlansConsidered
		if c.PlansConsidered <= 0 {
			t.Errorf("%s considered %d plans", c.Method, c.PlansConsidered)
		}
	}
	// The paper's Table 2 ordering: DP > DPP' > DPP >= DPAP-EB > FP, and
	// FP is the smallest of all.
	if !(byName["DP"] > byName["DPP'"] && byName["DPP'"] > byName["DPP"]) {
		t.Errorf("effort ordering violated: %v", byName)
	}
	if !(byName["DPP"] >= byName["DPAP-EB"]) {
		t.Errorf("DPAP-EB should not exceed DPP: %v", byName)
	}
	for name, v := range byName {
		if name != "FP" && v < byName["FP"] {
			t.Errorf("FP (%d) should consider the fewest plans, but %s = %d", byName["FP"], name, v)
		}
	}
	out := RenderTable2(cols, PersQuery3)
	if !strings.Contains(out, "# of Plans") || !strings.Contains(out, "DPP'") {
		t.Errorf("render missing parts:\n%s", out)
	}
}

func TestTable3SmallFolds(t *testing.T) {
	rows, err := Table3([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Methods())+1 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Eval) != 2 {
			t.Errorf("%s: %d folds measured", r.Method, len(r.Eval))
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "bad plan") || !strings.Contains(out, "x2") {
		t.Errorf("render missing parts:\n%s", out)
	}
}

func TestFigure78SmallFold(t *testing.T) {
	bars, err := Figure78(1)
	if err != nil {
		t.Fatal(err)
	}
	// DP, DPP, EB(1..6), DPAP-LD, FP = 10 bars.
	if len(bars) != 10 {
		t.Fatalf("%d bars", len(bars))
	}
	seen := map[string]bool{}
	for _, b := range bars {
		seen[b.Label] = true
		if b.Total() <= 0 {
			t.Errorf("%s: zero total", b.Label)
		}
	}
	for _, want := range []string{"DP", "DPP", "DPAP-EB(1)", "DPAP-EB(6)", "DPAP-LD", "FP"} {
		if !seen[want] {
			t.Errorf("missing bar %s", want)
		}
	}
	out := RenderFigure(bars, 1)
	if !strings.Contains(out, "Figure 8") || !strings.Contains(out, "DPAP-EB(3)") {
		t.Errorf("render missing parts:\n%s", out)
	}
	if !strings.Contains(RenderFigure(bars, 100), "Figure 7") {
		t.Error("fold 100 should render as Figure 7")
	}
}

// TestTable1SmokeOnPers runs the Table 1 measurement machinery on the Pers
// queries only (the full table is exercised by cmd/xqbench and the
// benchmarks; mbench/dblp builds are comparatively slow for unit tests).
func TestTable1SmokeOnPers(t *testing.T) {
	db, err := Dataset("pers", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries() {
		if q.Dataset != "pers" {
			continue
		}
		row := Table1Row{Query: q, Cells: map[string]Cell{}}
		for _, m := range Methods() {
			cell, err := RunQuery(db, q, m)
			if err != nil {
				t.Fatalf("%s %v: %v", q.ID, m, err)
			}
			row.Cells[m.String()] = cell
		}
		out := RenderTable1([]Table1Row{row})
		if !strings.Contains(out, q.ID) {
			t.Errorf("render missing %s", q.ID)
		}
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[string]string{
		"0s":    "0",
		"250ns": "250ns",
		"12µs":  "12.0µs",
		"3ms":   "3.00ms",
		"2.5s":  "2.50s",
	}
	for in, want := range cases {
		d, err := parseDur(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%s) = %q, want %q", in, got, want)
		}
	}
}

// parseDur wraps time.ParseDuration for the fmtDur test.
func parseDur(s string) (time.Duration, error) { return time.ParseDuration(s) }

// TestFoldingScalesAllQueries is the integration form of the §4.3 folding
// property: every benchmark query's match count scales exactly linearly
// with the folding factor, under every optimizer.
func TestFoldingScalesAllQueries(t *testing.T) {
	for _, q := range Queries() {
		if q.Dataset != "pers" {
			continue // mbench/dblp fold builds are slow for unit tests
		}
		base, err := Dataset(q.Dataset, 1)
		if err != nil {
			t.Fatal(err)
		}
		folded, err := Dataset(q.Dataset, 3)
		if err != nil {
			t.Fatal(err)
		}
		pat, err := sjos.ParsePattern(q.Source)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range Methods() {
			rb, err := base.Optimize(pat, m, 0)
			if err != nil {
				t.Fatal(err)
			}
			rbase, err := base.Run(context.Background(), pat, rb.Plan, sjos.RunOptions{CountOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			nb := rbase.Count
			rf, err := folded.Optimize(pat, m, 0)
			if err != nil {
				t.Fatal(err)
			}
			rfold, err := folded.Run(context.Background(), pat, rf.Plan, sjos.RunOptions{CountOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			nf := rfold.Count
			if nf != 3*nb {
				t.Errorf("%s %v: folded count %d, want %d", q.ID, m, nf, 3*nb)
			}
		}
	}
}

func TestReplicaBenchSmoke(t *testing.T) {
	res, err := ReplicaBench(ReplicaBenchConfig{
		Docs:        2,
		Shards:      1,
		Replicas:    2,
		SlowLatency: 500 * time.Microsecond,
		HedgeDelay:  time.Millisecond,
		Rate:        150,
		Duration:    400 * time.Millisecond,
		Clients:     4,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []ReplicaBenchRun{res.Unhedged, res.Hedged} {
		if run.Completed == 0 {
			t.Fatalf("arm hedged=%v completed nothing: %+v", run.Hedged, run)
		}
		if run.Errors != 0 {
			t.Fatalf("arm hedged=%v had %d errors — a slow replica must not fail queries", run.Hedged, run.Errors)
		}
	}
	if res.Unhedged.HedgedRequests != 0 {
		t.Fatalf("unhedged arm hedged %d requests", res.Unhedged.HedgedRequests)
	}
	if res.Hedged.HedgedRequests == 0 {
		t.Fatal("hedged arm never hedged despite a slow replica and a 1ms delay")
	}
	if out := RenderReplicaBench(res); !strings.Contains(out, "hedged") || !strings.Contains(out, "p99") {
		t.Fatalf("render missing fields:\n%s", out)
	}
}

func TestChurnBenchSmoke(t *testing.T) {
	res, err := ChurnBench(ChurnBenchConfig{
		Docs:       2,
		Shards:     2,
		QueryRate:  40,
		MutateRate: 25,
		Duration:   400 * time.Millisecond,
		Clients:    4,
		Scale:      0.2,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("churn run inconsistent: %v\n%+v", err, res)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed under churn")
	}
	if res.Inserts+res.Replaces+res.Deletes == 0 {
		t.Fatal("no mutations committed")
	}
	if res.WALPages == 0 {
		t.Fatal("mutations committed but no WAL pages recorded")
	}
	if out := RenderChurnBench(res); !strings.Contains(out, "mutations:") || !strings.Contains(out, "stats consistent: true") {
		t.Fatalf("render missing fields:\n%s", out)
	}
}
