// Bibliography: querying the DBLP-like data set — shallow, wide documents
// where parent-child joins dominate — including value predicates, ordered
// output, and the holistic TwigStack comparison.
package main

import (
	"fmt"
	"log"

	"sjos"
)

func main() {
	db, err := sjos.GenerateDataset("dblp", 1, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DBLP-like data set: %d element nodes\n\n", db.NumNodes())

	// 1. Selective lookup with value predicates.
	res, err := db.Query(`//article[author = "author-7"]/title`, sjos.MethodDPP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("articles by author-7: %d\n", len(res.Matches))
	for i, m := range res.Matches {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %s\n", db.Value(m[2]))
	}

	// 2. Ordered output: '#' requests the result sorted by that node.
	// FP guarantees a sort-free plan producing exactly this order.
	res, err = db.Query(`//inproceedings#[author]/cite/label`, sjos.MethodFP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncited inproceedings (ordered by paper): %d matches, plan:\n", len(res.Matches))
	fmt.Println(res.PlanText)

	// 3. Holistic comparison: the same twig via TwigStack (the multi-way
	// join the paper cites as future work) must agree with the plan.
	pat := sjos.MustParsePattern(`//article[author][cite/label]/title`)
	planned, err := db.QueryPattern(pat, sjos.MethodDPP)
	if err != nil {
		log.Fatal(err)
	}
	holistic, err := db.TwigStack(pat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cited articles with authors: structural-join plan found %d, TwigStack found %d\n",
		len(planned.Matches), len(holistic))
	if len(planned.Matches) != len(holistic) {
		log.Fatal("mismatch between binary joins and holistic twig join!")
	}

	// 4. Range predicate over numeric text.
	res, err = db.Query(`//article[year >= 2000]/title`, sjos.MethodDPP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("articles from 2000 on: %d\n", len(res.Matches))
}
