package storage

import (
	"bytes"
	"fmt"
	"sort"

	"sjos/internal/xmltree"
)

// Segmented stores back the ingestion path. A segmented store holds an
// appendable forest (xmltree.NewForest / AppendMember) as a sequence of
// segments — the synthetic root, then one per member document — each with
// its own node pages, tag postings and value index, laid out in one
// contiguous page run. Store versions are immutable: a mutation stages a
// new segment against a capture file (producing the page after-images the
// WAL logs), and adopting the stage yields a NEW Store value that shares
// the page file, buffer pool and counters with its predecessor. Because a
// segment only ever appends pages past every older version's tail and a
// delete touches no pages at all, published versions and the shared page
// cache stay valid under concurrent readers — the ingestion layer swaps an
// atomic pointer and in-flight queries finish on the version they started
// with.
//
// Readers see one combined view per version: the per-tag postings runs of
// the live segments concatenated in NodeID order (block directories are
// in-memory, so concatenation is pointer work — no page I/O), and one
// combined value index built the same way. Scan, skip-ahead, probe and
// merge machinery is exactly the static store's; only the node-record
// locator differs (see Store.nodeSlot).

// segment is one contiguous NodeID slice of the forest and its pages.
type segment struct {
	first    xmltree.NodeID
	count    int
	nodeBase PageID // node records occupy [nodeBase, nodeBase+nodePages)
	dir      map[xmltree.TagID]postingsRun
	vix      *valueIndex // per-segment; nil with NoValueIndex
	dead     bool
}

// SegmentStage is a staged (not yet durable) segment append: the sealed
// page after-images to log and apply, plus the metadata the adopting store
// version takes over.
type SegmentStage struct {
	seg      *segment
	forest   *xmltree.Document
	images   []WALPageImage
	endPage  PageID
	encBytes int
	rawBytes int
}

// Images returns the stage's sealed page after-images — the WAL's physical
// redo records.
func (st *SegmentStage) Images() []WALPageImage { return st.images }

// captureFile collects sequential page writes in memory instead of touching
// the real file: the staging path runs the ordinary store builders against
// it, so live commit, initial build and recovery replay all share one
// layout-defining code path.
type captureFile struct {
	base   PageID
	images []WALPageImage
}

func (c *captureFile) WritePage(id PageID, src *Page) error {
	if want := c.base + PageID(len(c.images)); id != want {
		return fmt.Errorf("storage: capture file: write page %d, want %d", id, want)
	}
	c.images = append(c.images, WALPageImage{Page: id, Data: *src})
	return nil
}

func (c *captureFile) ReadPage(id PageID, dst *Page) error {
	if id >= c.base && int(id-c.base) < len(c.images) {
		*dst = c.images[id-c.base].Data
		return nil
	}
	return fmt.Errorf("storage: capture file: read of unwritten page %d", id)
}

func (c *captureFile) NumPages() int { return int(c.base) + len(c.images) }

// spanNodes returns the tag's postings restricted to one member span. The
// forest's per-tag lists are in NodeID order, so the restriction is two
// binary searches on the shared slice.
func spanNodes(doc *xmltree.Document, t xmltree.TagID, span xmltree.DocSpan) []xmltree.NodeID {
	all := doc.NodesWithTag(t)
	end := span.First + xmltree.NodeID(span.Nodes)
	lo := sort.Search(len(all), func(i int) bool { return all[i] >= span.First })
	hi := sort.Search(len(all), func(i int) bool { return all[i] >= end })
	return all[lo:hi]
}

// planSegment serialises one member span of the forest as a fresh segment
// starting at page base, entirely into capture images.
func planSegment(forest *xmltree.Document, span xmltree.DocSpan, base PageID, opts StoreOptions) (*SegmentStage, error) {
	cf := &captureFile{base: base}
	n := span.Nodes
	nodePages := (n + nodesPerPage - 1) / nodesPerPage
	var page Page
	for p := 0; p < nodePages; p++ {
		for i := 0; i < nodesPerPage; i++ {
			local := p*nodesPerPage + i
			if local >= n {
				break
			}
			encodeNode(page[PageHeaderSize+i*nodeRecSize:], forest, span.First+xmltree.NodeID(local))
		}
		id := base + PageID(p)
		SealPage(id, &page)
		if err := cf.WritePage(id, &page); err != nil {
			return nil, err
		}
		page = Page{}
	}

	nodesOf := func(t xmltree.TagID) []xmltree.NodeID { return spanNodes(forest, t, span) }
	w := newPostingsWriter(cf, base+PageID(nodePages))
	dir := make(map[xmltree.TagID]postingsRun)
	rawBytes := 0
	for t := 0; t < forest.NumTags(); t++ {
		ids := nodesOf(xmltree.TagID(t))
		if len(ids) == 0 {
			continue
		}
		run, err := w.writeRun(ids, forest.Start)
		if err != nil {
			return nil, fmt.Errorf("storage: stage segment postings: %w", err)
		}
		dir[xmltree.TagID(t)] = run
		rawBytes += rawPostingSize * len(ids)
	}
	var vx *valueIndex
	if !opts.NoValueIndex {
		var vxRaw int
		var err error
		vx, vxRaw, err = buildValueIndexOver(w, forest, nodesOf)
		if err != nil {
			return nil, fmt.Errorf("storage: stage segment value index: %w", err)
		}
		rawBytes += vxRaw
	}
	end, err := w.finish()
	if err != nil {
		return nil, err
	}
	return &SegmentStage{
		seg:      &segment{first: span.First, count: n, nodeBase: base, dir: dir, vix: vx},
		forest:   forest,
		images:   cf.images,
		endPage:  end,
		encBytes: w.bytes,
		rawBytes: rawBytes,
	}, nil
}

// NewForestStore lays the forest's synthetic root down on an empty file and
// returns a segmented store with zero members. Members are added with
// StageSegment / AdoptStage.
func NewForestStore(file PageFile, forest *xmltree.Document, poolFrames int, opts StoreOptions) (*Store, error) {
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("storage: NewForestStore needs an empty file, got %d pages", file.NumPages())
	}
	if !forest.IsForest() {
		return nil, fmt.Errorf("storage: NewForestStore needs an appendable forest document")
	}
	s := &Store{
		file:   file,
		pool:   NewBufferPool(file, poolFrames),
		segs:   []*segment{},
		opts:   opts,
		shared: &storeCounters{},
	}
	st, err := planSegment(forest, xmltree.DocSpan{First: 0, Nodes: 1}, 0, opts)
	if err != nil {
		return nil, err
	}
	if err := s.writeImages(st.images); err != nil {
		return nil, err
	}
	return s.AdoptStage(st), nil
}

// BuildForestStoreOn builds a segmented store for a forest with existing
// members (one segment per span, in order) on an empty file. The layout is
// a pure function of (forest, spans): recovery rebuilds it bit-identically
// by replaying the same appends.
func BuildForestStoreOn(file PageFile, forest *xmltree.Document, spans []xmltree.DocSpan, poolFrames int, opts StoreOptions) (*Store, error) {
	s, err := NewForestStore(file, forest, poolFrames, opts)
	if err != nil {
		return nil, err
	}
	for _, span := range spans {
		st, err := s.StageSegment(forest, span)
		if err != nil {
			return nil, err
		}
		if err := s.writeImages(st.images); err != nil {
			return nil, err
		}
		s = s.AdoptStage(st)
	}
	return s, nil
}

// NumSegments returns the number of segments (the synthetic root counts);
// the next StageSegment adds segment index NumSegments.
func (s *Store) NumSegments() int { return len(s.segs) }

// TailPage returns the next free page of a segmented store.
func (s *Store) TailPage() PageID { return s.tailPage }

// IsSegmented reports whether the store is an appendable forest store.
func (s *Store) IsSegmented() bool { return s.segs != nil }

// StageSegment serialises the forest member at span as the store's next
// segment without touching the store's file: the returned stage carries the
// sealed page after-images for the WAL. forest must be the version that
// already contains the member.
func (s *Store) StageSegment(forest *xmltree.Document, span xmltree.DocSpan) (*SegmentStage, error) {
	if s.segs == nil {
		return nil, fmt.Errorf("storage: StageSegment on a static store")
	}
	return planSegment(forest, span, s.tailPage, s.opts)
}

// writeImages applies sealed page images to the store's file in order.
func (s *Store) writeImages(images []WALPageImage) error {
	for i := range images {
		if err := s.file.WritePage(images[i].Page, &images[i].Data); err != nil {
			return fmt.Errorf("storage: apply page %d: %w", images[i].Page, err)
		}
	}
	return nil
}

// CommitStage writes the stage's pages to the store's file, fsyncs when the
// file supports it, and returns the successor version. The caller must have
// made the mutation durable (WAL commit) first.
func (s *Store) CommitStage(st *SegmentStage) (*Store, error) {
	if err := s.writeImages(st.images); err != nil {
		return nil, err
	}
	if sy, ok := s.file.(syncer); ok {
		if err := sy.Sync(); err != nil {
			return nil, fmt.Errorf("storage: fsync after segment apply: %w", err)
		}
	}
	return s.AdoptStage(st), nil
}

// VerifyStage checks that the stage's computed images are byte-identical to
// the WAL's logged images — the recovery pass's redo consistency check.
func (st *SegmentStage) VerifyStage(logged []WALPageImage) error {
	if len(logged) != len(st.images) {
		return fmt.Errorf("storage: recovery image count %d, staged %d", len(logged), len(st.images))
	}
	for i := range logged {
		if logged[i].Page != st.images[i].Page || !bytes.Equal(logged[i].Data[:], st.images[i].Data[:]) {
			return fmt.Errorf("storage: recovery image mismatch at page %d", logged[i].Page)
		}
	}
	return nil
}

// AdoptStage returns the successor Store version with the staged segment
// live. The stage's pages must already be in the file (CommitStage does
// both). The successor shares file, pool and counters with s; s itself
// stays valid for in-flight readers.
func (s *Store) AdoptStage(st *SegmentStage) *Store {
	segs := make([]*segment, len(s.segs), len(s.segs)+1)
	copy(segs, s.segs)
	segs = append(segs, st.seg)
	return s.rebuildVersion(st.forest, segs, st.endPage,
		s.postingsBytes+st.encBytes, s.rawPostingsBytes+st.rawBytes)
}

// DropSegment returns the successor version with segment idx marked dead:
// its postings leave every combined view, so no scan or probe can produce
// its nodes. No page is touched — the dead segment's pages are reclaimed by
// compaction.
func (s *Store) DropSegment(forest *xmltree.Document, idx int) (*Store, error) {
	if s.segs == nil {
		return nil, fmt.Errorf("storage: DropSegment on a static store")
	}
	if idx <= 0 || idx >= len(s.segs) {
		return nil, fmt.Errorf("storage: DropSegment index %d of %d", idx, len(s.segs))
	}
	if s.segs[idx].dead {
		return nil, fmt.Errorf("storage: segment %d already dead", idx)
	}
	segs := make([]*segment, len(s.segs))
	copy(segs, s.segs)
	dead := *segs[idx]
	dead.dead = true
	segs[idx] = &dead
	return s.rebuildVersion(forest, segs, s.tailPage, s.postingsBytes, s.rawPostingsBytes), nil
}

// DeadFraction reports the fraction of stored nodes belonging to dead
// segments — the compaction trigger signal.
func (s *Store) DeadFraction() float64 {
	dead, total := 0, 0
	for _, sg := range s.segs {
		total += sg.count
		if sg.dead {
			dead += sg.count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(dead) / float64(total)
}

// rebuildVersion assembles a successor Store: new segment table, combined
// directories rebuilt from the live segments, shared file/pool/counters.
func (s *Store) rebuildVersion(forest *xmltree.Document, segs []*segment, tail PageID, encBytes, rawBytes int) *Store {
	numTags := forest.NumTags()
	tags := make([]string, numTags)
	byName := make(map[string]xmltree.TagID, numTags)
	for t := 0; t < numTags; t++ {
		tags[t] = forest.TagName(xmltree.TagID(t))
		byName[tags[t]] = xmltree.TagID(t)
	}
	dir, vx := combineSegments(segs, numTags, !s.opts.NoValueIndex)
	return &Store{
		doc:              &storeMeta{NumNodes: forest.NumNodes(), NumTags: numTags, Tags: tags},
		file:             s.file,
		pool:             s.pool,
		tagDir:           dir,
		tagByName:        byName,
		vidx:             vx,
		segs:             segs,
		tailPage:         tail,
		opts:             s.opts,
		postingsBytes:    encBytes,
		rawPostingsBytes: rawBytes,
		internStats:      forest.InternStats(),
		shared:           s.shared,
	}
}

// concatRun appends run b after run a: block directory entries keep their
// pages and offsets, b's run-relative start indexes shift by a's count.
// Correctness needs b's NodeIDs (and Start positions) strictly above a's —
// guaranteed by concatenating segments in NodeID order.
func concatRun(a, b postingsRun) postingsRun {
	if a.count == 0 {
		return b
	}
	if b.count == 0 {
		return a
	}
	blocks := make([]blockRef, 0, len(a.blocks)+len(b.blocks))
	blocks = append(blocks, a.blocks...)
	for _, ref := range b.blocks {
		ref.startIdx += int32(a.count)
		blocks = append(blocks, ref)
	}
	return postingsRun{count: a.count + b.count, blocks: blocks}
}

// combineSegments builds the combined per-version read view: one postings
// run per tag and one value index, concatenated over the live segments in
// segment (= NodeID) order. All work is over in-memory block directories.
func combineSegments(segs []*segment, numTags int, withVidx bool) ([]postingsRun, *valueIndex) {
	dir := make([]postingsRun, numTags)
	live := make([]*segment, 0, len(segs))
	for _, sg := range segs {
		if !sg.dead {
			live = append(live, sg)
		}
	}
	for _, sg := range live {
		for t, run := range sg.dir {
			if int(t) < numTags {
				dir[t] = concatRun(dir[t], run)
			}
		}
	}
	if !withVidx {
		return dir, nil
	}
	vx := &valueIndex{
		exact: make(map[valueKey]postingsRun),
		nums:  make([]tagNumeric, numTags),
	}
	for _, sg := range live {
		if sg.vix == nil {
			continue
		}
		vx.runs += sg.vix.runs
		for k, run := range sg.vix.exact {
			vx.exact[k] = concatRun(vx.exact[k], run)
		}
	}
	for t := 0; t < numTags; t++ {
		tag := xmltree.TagID(t)
		allNumeric := true
		present := false
		byNum := make(map[float64]postingsRun)
		var keys []float64
		for _, sg := range live {
			if sg.dir[tag].count == 0 {
				continue // segment has no nodes of this tag
			}
			present = true
			var tn *tagNumeric
			if sg.vix != nil && t < len(sg.vix.nums) {
				tn = &sg.vix.nums[t]
			}
			if tn == nil || !tn.allNumeric {
				allNumeric = false
			}
			if tn != nil {
				for i, f := range tn.vals {
					if _, seen := byNum[f]; !seen {
						keys = append(keys, f)
					}
					byNum[f] = concatRun(byNum[f], tn.runs[i])
				}
			}
		}
		if !present || len(keys) == 0 {
			vx.nums[t] = tagNumeric{}
			continue
		}
		sort.Float64s(keys)
		tn := tagNumeric{allNumeric: allNumeric, vals: keys, runs: make([]postingsRun, len(keys))}
		for i, f := range keys {
			tn.runs[i] = byNum[f]
		}
		vx.nums[t] = tn
	}
	return dir, vx
}
