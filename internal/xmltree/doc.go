// Package xmltree implements the XML document model used throughout the
// library: a rooted, ordered, node-labelled tree stored column-wise with the
// classic region ("interval") encoding.
//
// Every element node carries a (Start, End, Level) triple assigned by a
// depth-first pre-order traversal:
//
//   - Start is the pre-order number of the node's open tag,
//   - End is the number assigned after the whole subtree has been visited,
//   - Level is the depth (the document root has level 0).
//
// The encoding makes structural predicates O(1):
//
//	a is an ancestor of d  ⇔  a.Start < d.Start && d.End < a.End
//	a is the parent of d   ⇔  ancestor && a.Level+1 == d.Level
//
// and document order coincides with Start order, which is exactly what the
// Stack-Tree structural join family requires of its inputs.
//
// Node identifiers (NodeID) are dense indexes in document order, so a sorted
// slice of NodeIDs is automatically sorted by Start.
package xmltree
