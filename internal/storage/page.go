package storage

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the size of every page in bytes.
const PageSize = 8192

// PageID addresses a page within a PageFile.
type PageID uint32

// Page is one fixed-size block of bytes.
type Page [PageSize]byte

// PageFile is the abstraction of a page-addressed file. Implementations must
// be safe for concurrent use.
type PageFile interface {
	// ReadPage copies page id into dst.
	ReadPage(id PageID, dst *Page) error
	// WritePage stores src as page id, extending the file if id is the
	// next unallocated page.
	WritePage(id PageID, src *Page) error
	// NumPages returns the current number of allocated pages.
	NumPages() int
}

// ErrPageOutOfRange is returned for reads past the end of a file or writes
// that would leave a hole.
var ErrPageOutOfRange = errors.New("storage: page out of range")

// MemFile is an in-memory PageFile that counts physical accesses. It is the
// only backend the library ships (the module is offline and self-contained);
// the counters make "disk" traffic observable to tests and experiments.
type MemFile struct {
	mu     sync.RWMutex
	pages  []*Page
	reads  uint64
	writes uint64
}

// NewMemFile returns an empty in-memory page file.
func NewMemFile() *MemFile { return &MemFile{} }

// ReadPage implements PageFile.
func (f *MemFile) ReadPage(id PageID, dst *Page) error {
	f.mu.Lock()
	if int(id) >= len(f.pages) {
		f.mu.Unlock()
		return fmt.Errorf("%w: read page %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	src := f.pages[id]
	f.reads++
	f.mu.Unlock()
	*dst = *src
	return nil
}

// WritePage implements PageFile.
func (f *MemFile) WritePage(id PageID, src *Page) error {
	cp := *src
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case int(id) < len(f.pages):
		f.pages[id] = &cp
	case int(id) == len(f.pages):
		f.pages = append(f.pages, &cp)
	default:
		return fmt.Errorf("%w: write page %d of %d", ErrPageOutOfRange, id, len(f.pages))
	}
	f.writes++
	return nil
}

// NumPages implements PageFile.
func (f *MemFile) NumPages() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.pages)
}

// Reads returns the number of physical page reads served.
func (f *MemFile) Reads() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.reads
}

// Writes returns the number of physical page writes served.
func (f *MemFile) Writes() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.writes
}
