// Command xqgen emits one of the synthetic benchmark data sets as XML on
// stdout, so the workloads can be inspected or loaded into other tools.
//
// Usage:
//
//	xqgen -dataset pers                  # base size (≈ 5k nodes)
//	xqgen -dataset mbench -scale 0.1     # smaller variant
//	xqgen -dataset dblp -fold 3 > d.xml  # folded ×3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sjos/internal/datagen"
	"sjos/internal/xmltree"
)

func main() {
	dataset := flag.String("dataset", "", "data set: mbench, dblp or pers")
	scale := flag.Float64("scale", 1, "size multiplier")
	fold := flag.Int("fold", 1, "folding factor")
	seed := flag.Int64("seed", 0, "generator seed")
	format := flag.String("format", "xml", "output format: xml or image (binary, for sjos.OpenImage)")
	flag.Parse()
	if *dataset == "" {
		flag.Usage()
		os.Exit(2)
	}
	doc, err := datagen.Generate(datagen.Config{Name: *dataset, Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xqgen: %v\n", err)
		os.Exit(1)
	}
	doc = xmltree.Fold(doc, *fold)
	w := bufio.NewWriter(os.Stdout)
	switch *format {
	case "xml":
		err = xmltree.Serialize(doc, w)
	case "image":
		err = xmltree.WriteImage(doc, w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "xqgen: %v\n", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "xqgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "xqgen: wrote %d element nodes\n", doc.NumNodes())
}
