package metrics

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBounds(t *testing.T) {
	if got := bucketBound(0); got != time.Microsecond {
		t.Fatalf("bucketBound(0) = %v", got)
	}
	if got := bucketBound(10); got != 1024*time.Microsecond {
		t.Fatalf("bucketBound(10) = %v", got)
	}
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{time.Millisecond, 10},
		{24 * time.Hour, numBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.d); got != c.want {
			t.Errorf("bucketFor(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestRegistryCounters(t *testing.T) {
	var r Registry
	r.QueryStarted()
	r.QueryStarted()
	if got := r.Snapshot().InFlight; got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	r.QueryFinished(time.Millisecond, nil)
	r.QueryFinished(2*time.Millisecond, errors.New("boom"))
	r.SlowQuery()
	s := r.Snapshot()
	if s.Queries != 2 || s.Errors != 1 || s.SlowQueries != 1 || s.InFlight != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.TotalTime != 3*time.Millisecond {
		t.Fatalf("TotalTime = %v", s.TotalTime)
	}
}

func TestQuantiles(t *testing.T) {
	var r Registry
	// 90 fast queries at ~1ms, 10 slow at ~100ms.
	for i := 0; i < 90; i++ {
		r.QueryStarted()
		r.QueryFinished(time.Millisecond, nil)
	}
	for i := 0; i < 10; i++ {
		r.QueryStarted()
		r.QueryFinished(100*time.Millisecond, nil)
	}
	s := r.Snapshot()
	// Quantiles are bucket upper bounds: 1ms lands in the bucket bounded
	// by ~1.024ms, 100ms in the one bounded by ~131ms.
	if s.P50 > 2*time.Millisecond {
		t.Fatalf("P50 = %v, want ~1ms bucket bound", s.P50)
	}
	if s.P95 < 50*time.Millisecond || s.P95 > 200*time.Millisecond {
		t.Fatalf("P95 = %v, want ~131ms bucket bound", s.P95)
	}
	if s.P99 != s.P95 {
		t.Fatalf("P99 = %v, want same bucket as P95 (%v)", s.P99, s.P95)
	}
	if s.Quantile(0) > 2*time.Millisecond {
		t.Fatalf("Quantile(0) = %v", s.Quantile(0))
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s Snapshot
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}

func TestWriteText(t *testing.T) {
	var r Registry
	r.QueryStarted()
	r.QueryFinished(time.Millisecond, nil)
	var b strings.Builder
	r.Snapshot().WriteText(&b, "sjos")
	out := b.String()
	for _, want := range []string{
		"# TYPE sjos_queries_total counter",
		"sjos_queries_total 1",
		"sjos_query_errors_total 0",
		"sjos_slow_queries_total 0",
		"# TYPE sjos_queries_in_flight gauge",
		"sjos_queries_in_flight 0",
		"# TYPE sjos_query_latency_seconds summary",
		`sjos_query_latency_seconds{quantile="0.5"}`,
		`sjos_query_latency_seconds{quantile="0.99"}`,
		"sjos_query_latency_seconds_sum 0.001",
		"sjos_query_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q\n%s", want, out)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.QueryStarted()
				r.QueryFinished(time.Duration(i)*time.Microsecond, nil)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Queries != 8000 || s.InFlight != 0 {
		t.Fatalf("after concurrent load: %+v", s)
	}
	var total uint64
	for _, c := range s.buckets {
		total += c
	}
	if total != 8000 {
		t.Fatalf("histogram total = %d, want 8000", total)
	}
}
