package sjos

import (
	"context"
	"fmt"
	"strings"

	"sjos/internal/core"
	"sjos/internal/exec"
)

// Explain optimizes pat with every algorithm and renders a comparison: per
// algorithm the estimated cost, search effort, plan shape classification,
// and the plan tree itself. It is the facade's EXPLAIN statement.
func (db *Database) Explain(pat *Pattern) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pattern: %s\n", pat.String())
	for _, m := range []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP, MethodGreedy} {
		res, err := db.Optimize(pat, m, 0)
		if err != nil {
			return "", fmt.Errorf("sjos: explain %v: %w", m, err)
		}
		shape := "bushy"
		if res.Plan.LeftDeep() {
			shape = "left-deep"
		}
		pipe := "blocking"
		if res.Plan.FullyPipelined() {
			pipe = "fully-pipelined"
		}
		fmt.Fprintf(&sb, "\n%s: estimated cost %.0f, %d plans considered, %s, %s\n",
			m, res.Cost, res.Counters.PlansConsidered, shape, pipe)
		sb.WriteString(res.Plan.Format(pat))
	}
	return sb.String(), nil
}

// ExplainAnalyze optimizes pat with the given method, executes the chosen
// plan with per-operator instrumentation, and renders the plan-shaped
// trace: wall time, Next calls, and actual vs estimated output rows per
// operator (est/actual drift is the optimizer's core feedback signal) —
// the library's EXPLAIN ANALYZE. It reports total matches and the
// execution's buffer-pool and plan-cache behaviour alongside.
func (db *Database) ExplainAnalyze(pat *Pattern, m Method) (string, error) {
	res, err := db.Optimize(pat, m, 0)
	if err != nil {
		return "", err
	}
	tb, err := exec.NewTraceBuilder(pat, res.Plan)
	if err != nil {
		return "", err
	}
	op, err := tb.Build()
	if err != nil {
		return "", err
	}
	sn := db.view()
	before := sn.store.PoolStats()
	ctx := &exec.Context{Doc: sn.doc, Store: sn.store}
	// Analyze runs the batched path — the execution default — so the trace
	// reports batches, rows and skip-ahead postings per operator.
	n, err := exec.CountBatched(ctx, op)
	if err != nil {
		return "", err
	}
	after := sn.store.PoolStats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "pattern: %s\n%s plan, estimated cost %.0f, %d matches\n",
		pat.String(), m, res.Cost, n)
	trace := tb.Trace()
	sb.WriteString(trace.Format())
	// The drift summary makes adaptive evictions explainable from the CLI:
	// the worst est-vs-actual ratio is exactly what noteDrift compares
	// against the AdaptiveDrift threshold.
	worst, at := trace.MaxDrift()
	fmt.Fprintf(&sb, "max drift: %.2fx at %s %s (adaptive eviction threshold %.0fx)\n",
		worst, at.Op, at.Detail, DefaultAdaptiveDrift)
	hits, misses := after.Hits-before.Hits, after.Misses-before.Misses
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses) * 100
	}
	fmt.Fprintf(&sb, "buffer pool: %d hits, %d misses (%.1f%% hit rate)\n",
		hits, misses, rate)
	cs := db.CacheStats()
	fmt.Fprintf(&sb, "plan cache: %d/%d entries, %d hits, %d misses, %d coalesced, %d evicted\n",
		cs.Entries, cs.Capacity, cs.Hits, cs.Misses, cs.Coalesced, cs.Evictions)
	return sb.String(), nil
}

// TraceDPP runs a traced DPP search for pat and renders every expansion,
// generation and pruning decision — the machine-generated counterpart of
// the paper's Figure 4 optimization walk-through. Intended for debugging
// and teaching; the chosen plan is appended after the trace.
func (db *Database) TraceDPP(pat *Pattern) (string, error) {
	stats, _ := db.svc.snapshot()
	est, err := core.NewEstimator(pat, stats)
	if err != nil {
		return "", err
	}
	res, events, err := core.DPPWithTrace(pat, est, db.model)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "DPP search trace for %s (%d events)\n", pat.String(), len(events))
	sb.WriteString(core.FormatTrace(pat, events))
	fmt.Fprintf(&sb, "chosen plan (cost %.0f):\n%s", res.Cost, res.Plan.Format(pat))
	return sb.String(), nil
}

// Prepared is a pattern whose plan has been optimized once and can be
// executed repeatedly — the optimizer's work is amortised across
// executions (useful when the same query shape runs against one database
// many times).
type Prepared struct {
	db   *Database
	pat  *Pattern
	plan *Plan
	// EstCost is the optimizer's estimate for the prepared plan.
	EstCost float64
}

// Prepare parses and optimizes src once, returning a reusable handle.
func (db *Database) Prepare(src string, m Method) (*Prepared, error) {
	pat, err := ParsePattern(src)
	if err != nil {
		return nil, err
	}
	res, err := db.Optimize(pat, m, 0)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, pat: pat, plan: res.Plan, EstCost: res.Cost}, nil
}

// Pattern returns the prepared pattern.
func (p *Prepared) Pattern() *Pattern { return p.pat }

// Plan returns the prepared physical plan.
func (p *Prepared) Plan() *Plan { return p.plan }

// Execute runs the prepared plan, returning matches in pattern-node order.
func (p *Prepared) Execute() ([]Match, ExecStats, error) {
	res, err := p.db.Run(context.Background(), p.pat, p.plan, RunOptions{})
	if err != nil {
		return nil, ExecStats{}, err
	}
	return res.Matches, res.Stats, nil
}

// Count runs the prepared plan, returning only the match count.
func (p *Prepared) Count() (int, ExecStats, error) {
	res, err := p.db.Run(context.Background(), p.pat, p.plan, RunOptions{CountOnly: true})
	if err != nil {
		return 0, ExecStats{}, err
	}
	return res.Count, res.Stats, nil
}
