package histogram

import (
	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

// ExactJoinCount counts, without materialising them, the structural join
// pairs between two tags: the number of (a, b) pairs where a tag-ta node is
// an ancestor (Descendant axis) or parent (Child axis) of a tag-tb node. It
// runs one stack-based merge over the two document-ordered candidate lists
// — the counting analogue of Stack-Tree-Desc — in O(|A| + |B| + depth).
//
// It backs the oracle estimator used by the cost-model ablation experiments
// and serves as an exact reference for the positional-histogram estimates.
func ExactJoinCount(doc *xmltree.Document, ta, tb xmltree.TagID, ax pattern.Axis) int {
	as := doc.NodesWithTag(ta)
	bs := doc.NodesWithTag(tb)
	if len(as) == 0 || len(bs) == 0 {
		return 0
	}
	type entry struct {
		end   xmltree.Pos
		level uint16
	}
	var stack []entry
	count := 0
	i, j := 0, 0
	for j < len(bs) {
		bStart := doc.Start(bs[j])
		if i < len(as) && doc.Start(as[i]) < bStart {
			a := as[i]
			aStart := doc.Start(a)
			for len(stack) > 0 && stack[len(stack)-1].end < aStart {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, entry{end: doc.End(a), level: doc.Level(a)})
			i++
			continue
		}
		for len(stack) > 0 && stack[len(stack)-1].end < bStart {
			stack = stack[:len(stack)-1]
		}
		if ax == pattern.Descendant {
			count += len(stack)
		} else {
			// Parent-child: stack entries are nested, so levels are
			// strictly increasing; only an entry at level-1 matches,
			// but duplicates cannot occur (two equal-level entries
			// cannot nest), so scan from the top.
			bl := doc.Level(bs[j])
			for k := len(stack) - 1; k >= 0; k-- {
				if stack[k].level+1 == bl {
					count++
					break
				}
				if stack[k].level+1 < bl {
					break
				}
			}
		}
		j++
	}
	return count
}
