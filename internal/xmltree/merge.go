package xmltree

import (
	"fmt"
	"math"

	"sjos/internal/intern"
)

// DepthOverflowError reports a MergeDocuments member that cannot be placed
// below a synthetic root: one of its nodes already sits at the uint16 level
// ceiling, so shifting every level by one would silently wrap to 0 and
// corrupt level-sensitive execution (child-axis joins, level predicates).
type DepthOverflowError struct {
	// Member is the index of the offending document in the merge input.
	Member int
	// Depth is the offending node's level in the member's own numbering.
	Depth int
}

func (e *DepthOverflowError) Error() string {
	return fmt.Sprintf("xmltree: MergeDocuments: member %d has a node at depth %d; merging below a synthetic root would overflow the uint16 level", e.Member, e.Depth)
}

// MergedRootTag is the reserved tag of the synthetic root a MergeDocuments
// call places above the member documents. The NUL byte cannot appear in an
// XML element name, so the tag can never collide with a parsed document's
// tags and never matches a query pattern node.
const MergedRootTag = "\x00doc-forest"

// DocSpan locates one member document inside a merged document: its nodes
// occupy the dense NodeID range [First, First+Nodes), in the member's own
// pre-order. Subtracting First converts a merged NodeID back into the
// member document's standalone numbering.
type DocSpan struct {
	First NodeID
	Nodes int
}

// Local converts a merged-document node ID into the member's standalone
// numbering.
func (s DocSpan) Local(id NodeID) NodeID { return id - s.First }

// Contains reports whether the merged node ID belongs to this member.
func (s DocSpan) Contains(id NodeID) bool {
	return id >= s.First && int(id-s.First) < s.Nodes
}

// MergeDocuments combines member documents into one Document under a
// synthetic root carrying MergedRootTag — the per-shard "forest" layout of
// a multi-document corpus. Every member keeps its internal structure
// exactly: node IDs stay dense and in the member's pre-order (shifted by a
// per-member offset, reported as a DocSpan), positions shift uniformly, and
// levels shift by one (below the synthetic root). Because member regions
// are disjoint, no structural relationship — and therefore no pattern
// match — ever crosses a member boundary, and the synthetic root's tag
// never matches a query node; a query against the merged document returns
// exactly the union of the per-member answers, in member order.
func MergeDocuments(docs []*Document) (*Document, []DocSpan, error) {
	if len(docs) == 0 {
		return nil, nil, fmt.Errorf("xmltree: MergeDocuments needs at least one document")
	}
	total := 1 // synthetic root
	for i, d := range docs {
		if d == nil || d.NumNodes() == 0 {
			return nil, nil, fmt.Errorf("xmltree: MergeDocuments: member %d is empty", i)
		}
		if _, collides := d.LookupTag(MergedRootTag); collides {
			return nil, nil, fmt.Errorf("xmltree: MergeDocuments: member %d uses the reserved root tag", i)
		}
		for _, lv := range d.level {
			if lv == math.MaxUint16 {
				return nil, nil, &DepthOverflowError{Member: i, Depth: int(lv)}
			}
		}
		total += d.NumNodes()
	}

	m := &Document{
		start:   make([]Pos, 1, total),
		end:     make([]Pos, 1, total),
		level:   make([]uint16, 1, total),
		tag:     make([]TagID, 1, total),
		parent:  make([]NodeID, 1, total),
		value:   make([]string, 1, total),
		tagByNm: make(map[string]TagID),
	}
	rootTag := m.internTag(MergedRootTag)
	m.start[0] = 0
	m.level[0] = 0
	m.tag[0] = rootTag
	m.parent[0] = InvalidNode
	m.byTag[rootTag] = append(m.byTag[rootTag], 0)

	spans := make([]DocSpan, len(docs))
	var internStats intern.Stats
	posOff := Pos(1)
	for i, d := range docs {
		n := d.NumNodes()
		nodeOff := NodeID(len(m.start))
		spans[i] = DocSpan{First: nodeOff, Nodes: n}
		// Remap the member's tag dictionary into the union dictionary.
		remap := make([]TagID, d.NumTags())
		for t := 0; t < d.NumTags(); t++ {
			remap[t] = m.internTag(d.TagName(TagID(t)))
		}
		for j := 0; j < n; j++ {
			id := NodeID(j)
			parent := NodeID(0) // member root hangs off the synthetic root
			if p := d.parent[id]; p != InvalidNode {
				parent = p + nodeOff
			}
			t := remap[d.tag[id]]
			m.start = append(m.start, d.start[id]+posOff)
			m.end = append(m.end, d.end[id]+posOff)
			m.level = append(m.level, d.level[id]+1)
			m.tag = append(m.tag, t)
			m.parent = append(m.parent, parent)
			m.value = append(m.value, d.value[id])
			// Appending per member keeps each postings list sorted: node
			// IDs only grow across members.
			m.byTag[t] = append(m.byTag[t], id+nodeOff)
		}
		posOff += d.MaxPos() + 1
		is := d.InternStats()
		internStats.Hits += is.Hits
		internStats.Misses += is.Misses
		internStats.Strings += is.Strings
		internStats.BytesSaved += is.BytesSaved
	}
	m.end[0] = posOff
	m.maxPos = posOff
	m.intern = internStats
	return m, spans, nil
}

// internTag adds a tag name to the merged dictionary (or returns the
// existing ID).
func (d *Document) internTag(name string) TagID {
	if t, ok := d.tagByNm[name]; ok {
		return t
	}
	t := TagID(len(d.tags))
	d.tags = append(d.tags, name)
	d.tagByNm[name] = t
	d.byTag = append(d.byTag, nil)
	return t
}
