// Personnel: the paper's running example (Example 2.2 / Figure 1) on the
// Pers data set — "for each manager A, list the names of the employees
// supervised by A, and the name of any department directly supervised by
// another manager who is a subordinate of A" — comparing what each
// optimization algorithm picks for it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sjos"
)

func main() {
	db, err := sjos.GenerateDataset("pers", 1, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pers data set: %d element nodes\n\n", db.NumNodes())

	// The Figure 1 pattern: A=manager, B=employee, C=name, D=manager,
	// E=department, F=name; A-B and A-D are "//" edges, the rest "/".
	pat := sjos.MustParsePattern("//manager[.//employee/name]//manager/department/name")

	fmt.Println("How each algorithm evaluates the Figure 1 pattern:")
	fmt.Println()
	for _, m := range []sjos.Method{
		sjos.MethodDP, sjos.MethodDPP, sjos.MethodDPAPEB, sjos.MethodDPAPLD, sjos.MethodFP,
	} {
		t0 := time.Now()
		res, err := db.Optimize(pat, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		opt := time.Since(t0)
		t1 := time.Now()
		rr, err := db.Run(context.Background(), pat, res.Plan, sjos.RunOptions{CountOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		n := rr.Count
		eval := time.Since(t1)
		shape := "bushy"
		if res.Plan.LeftDeep() {
			shape = "left-deep"
		}
		pipe := "has blocking sorts"
		if res.Plan.FullyPipelined() {
			pipe = "fully pipelined"
		}
		fmt.Printf("%-8s  opt %-10v eval %-10v %6d matches  cost≈%-9.0f %s, %s\n",
			m, opt.Round(time.Microsecond), eval.Round(time.Microsecond), n, res.Cost, shape, pipe)
	}

	// And the cautionary tale: a randomly chosen bad plan.
	bad, err := db.BadPlan(pat, 40, 1)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	if _, err := db.Run(context.Background(), pat, bad.Plan, sjos.RunOptions{CountOnly: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s  opt %-10s eval %-10v %s cost≈%.0f\n",
		"bad", "-", time.Since(t0).Round(time.Microsecond), "                      ", bad.Cost)

	fmt.Println("\nThe DPP plan in full:")
	res, err := db.Optimize(pat, sjos.MethodDPP, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Plan.Format(pat))
}
