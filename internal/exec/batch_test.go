package exec

import (
	"math/rand"
	"strings"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/xmltree"
)

// runEdgeJoinBatched is runEdgeJoin driven through the batched path on a
// freshly built tree (one mode per operator instance).
func runEdgeJoinBatched(t *testing.T, doc *xmltree.Document, anc, desc string, ax pattern.Axis, algo plan.Algo) []Tuple {
	t.Helper()
	src := "//" + anc + "/" + desc
	if ax == pattern.Descendant {
		src = "//" + anc + "//" + desc
	}
	pat := pattern.MustParse(src)
	j, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, ax, algo)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DrainBatched(newCtx(t, doc), j)
	if err != nil {
		t.Fatal(err)
	}
	return NormalizeAll(j.Schema(), 2, out)
}

// TestBatchMatchesTupleRandomDocs is the executor's core differential
// property: on random documents, the batched path must produce exactly the
// tuple path's multiset for both axes and both join algorithms.
func TestBatchMatchesTupleRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tags := []string{"a", "b", "c"}
	for trial := 0; trial < 120; trial++ {
		doc := xmltree.RandomDocument(rng, 2+rng.Intn(120), tags)
		for _, ax := range []pattern.Axis{pattern.Child, pattern.Descendant} {
			for _, algo := range []plan.Algo{plan.AlgoDesc, plan.AlgoAnc} {
				a := tags[rng.Intn(len(tags))]
				b := tags[rng.Intn(len(tags))]
				got := runEdgeJoinBatched(t, doc, a, b, ax, algo)
				want := runEdgeJoin(t, doc, a, b, ax, algo)
				if !sortedEq(got, want) {
					t.Fatalf("trial %d: %s %v %s via %v: batched %d, tuple %d",
						trial, a, ax, b, algo, len(got), len(want))
				}
			}
		}
	}
}

// TestBatchMultiJoinPipeline batches a join over join outputs (tuple
// streams), plus a Sort and a Limit on top — the full operator zoo in one
// batched tree.
func TestBatchMultiJoinPipeline(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager[.//employee]//name")
	build := func() Operator {
		me, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, plan.AlgoAnc)
		if err != nil {
			t.Fatal(err)
		}
		men, err := NewStackTreeJoin(me, NewIndexScan(pat, 2), 0, 2, pattern.Descendant, plan.AlgoAnc)
		if err != nil {
			t.Fatal(err)
		}
		return men
	}
	op := build()
	got, err := DrainBatched(newCtx(t, doc), op)
	if err != nil {
		t.Fatal(err)
	}
	want := ReferenceMatches(doc, pat)
	if !sortedEq(NormalizeAll(op.Schema(), 3, got), want) {
		t.Fatalf("batched pipeline: got %d matches, want %d", len(got), len(want))
	}

	srt, err := NewSort(build(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := DrainBatched(newCtx(t, doc), srt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != len(want) {
		t.Fatalf("batched sort: got %d rows, want %d", len(sorted), len(want))
	}
	col, _ := srt.Schema().Col(2)
	for i := 1; i < len(sorted); i++ {
		if doc.Start(sorted[i][col]) < doc.Start(sorted[i-1][col]) {
			t.Fatal("batched sort output out of order")
		}
	}

	for _, n := range []int{0, 1, 3, len(want), len(want) + 5} {
		lim, err := DrainBatched(newCtx(t, doc), NewLimit(build(), n))
		if err != nil {
			t.Fatal(err)
		}
		wantN := n
		if wantN > len(want) {
			wantN = len(want)
		}
		if len(lim) != wantN {
			t.Fatalf("batched limit %d: got %d rows, want %d", n, len(lim), wantN)
		}
	}
}

// TestBatchLimitNotSeekable guards the deliberate hole in the Unwrap chain:
// a skip-ahead probe must not reach through a Limit, because seeking past
// rows the Limit has not counted would break its cap accounting.
func TestBatchLimitNotSeekable(t *testing.T) {
	pat := pattern.MustParse("//a//b")
	l := NewLimit(NewIndexScan(pat, 0), 1)
	if _, ok, _ := trySeek(l, 10); ok {
		t.Fatal("trySeek reached through a Limit; seeks would bypass the row cap")
	}
}

// TestTrySeekUnwrapsAdapters checks the seek probe walks the adapter chain
// down to the scan — the dynamic-dispatch hole Go embedding leaves is
// bridged by explicit Unwrap methods.
func TestTrySeekUnwrapsAdapters(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	s := NewIndexScan(pat, 1)
	if err := s.Open(newCtx(t, doc)); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wrapped Operator = batchFromTuples{s}
	if _, ok, err := trySeek(wrapped, 0); !ok || err != nil {
		t.Fatalf("trySeek through adapter: ok=%v err=%v, want seekable", ok, err)
	}
}

// TestIndexScanSkipAhead seeks a scan past a dead region and checks the
// skipped postings are counted and the remaining stream is intact.
func TestIndexScanSkipAhead(t *testing.T) {
	// 40 b leaves, then an a subtree holding 2 more bs: a seek to the a's
	// Start position must bypass the 40 dead bs.
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < 40; i++ {
		sb.WriteString("<b></b>")
	}
	sb.WriteString("<a><b></b><c><b></b></c></a></r>")
	doc, err := xmltree.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	pat := pattern.MustParse("//a//b")
	ctx := newCtx(t, doc)
	s := NewIndexScan(pat, 1)
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	aTag, _ := doc.LookupTag("a")
	aStart := doc.Start(doc.NodesWithTag(aTag)[0])
	skipped, ok, err := s.SeekGE(aStart)
	if err != nil || !ok {
		t.Fatalf("SeekGE: ok=%v err=%v", ok, err)
	}
	if skipped != 40 {
		t.Fatalf("SeekGE skipped %d postings, want 40", skipped)
	}
	if ctx.Stats.SkippedTuples != 40 {
		t.Fatalf("SkippedTuples = %d, want 40", ctx.Stats.SkippedTuples)
	}
	var rest int
	for {
		tup, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if doc.Start(tup[0]) < aStart {
			t.Fatal("scan produced a row from the skipped region")
		}
		rest++
	}
	if rest != 2 {
		t.Fatalf("post-seek scan produced %d rows, want 2", rest)
	}
}

// TestJoinSkipAheadEndToEnd drives the whole skip-ahead path: a sparse
// ancestor stream over a dense descendant stream must trigger seeks (counted
// in SkippedTuples) and still produce exactly the tuple path's result.
func TestJoinSkipAheadEndToEnd(t *testing.T) {
	// Dead regions of bs between sparse as; only bs inside as match. Each
	// dead region is bigger than one Batch so the skip must reach the
	// storage layer rather than being absorbed by the reader's in-buffer
	// binary search.
	var sb strings.Builder
	sb.WriteString("<r>")
	for blk := 0; blk < 3; blk++ {
		for i := 0; i < BatchRows+200; i++ {
			sb.WriteString("<b></b>")
		}
		sb.WriteString("<a><b></b></a>")
	}
	sb.WriteString("</r>")
	doc, err := xmltree.ParseString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []plan.Algo{plan.AlgoDesc, plan.AlgoAnc} {
		pat := pattern.MustParse("//a//b")
		j, err := NewStackTreeJoin(NewIndexScan(pat, 0), NewIndexScan(pat, 1), 0, 1, pattern.Descendant, algo)
		if err != nil {
			t.Fatal(err)
		}
		ctx := newCtx(t, doc)
		got, err := DrainBatched(ctx, j)
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceMatches(doc, pat)
		if !sortedEq(NormalizeAll(j.Schema(), 2, got), want) {
			t.Fatalf("%v: skip-ahead changed results: got %d, want %d", algo, len(got), len(want))
		}
		if ctx.Stats.SkippedTuples == 0 {
			t.Errorf("%v: no postings skipped on a workload built of dead regions", algo)
		}
		if ctx.Stats.Batches == 0 {
			t.Errorf("%v: Stats.Batches not counted", algo)
		}
	}
}

// TestAncReadyQueueReleasesSlots is the regression test for the ready-queue
// retention fix: consuming the queue must nil out served slots and reset the
// queue once drained, instead of re-slicing forward and pinning every served
// tuple in the backing array.
func TestAncReadyQueueReleasesSlots(t *testing.T) {
	j := &StackTreeJoin{}
	tuples := []Tuple{{1}, {2}, {3}}
	j.ready = append(j.ready, tuples...)
	for i, want := range tuples {
		got := j.popReady()
		if got[0] != want[0] {
			t.Fatalf("popReady #%d = %v, want %v", i, got, want)
		}
		if i < len(tuples)-1 {
			if j.ready[i] != nil {
				t.Fatalf("served slot %d still pins its tuple", i)
			}
			if j.readyHead != i+1 {
				t.Fatalf("readyHead = %d, want %d", j.readyHead, i+1)
			}
		}
	}
	if len(j.ready) != 0 || j.readyHead != 0 {
		t.Fatalf("drained queue not reset: len=%d head=%d", len(j.ready), j.readyHead)
	}
	// The reset queue must be reusable in place.
	j.ready = append(j.ready, Tuple{4})
	if got := j.popReady(); got[0] != 4 {
		t.Fatalf("reused queue served %v, want [4]", got)
	}
}

// TestIndexScanLocalInterruptCounter is the regression test for the
// interrupt-poll stride: it must tick on a scan-local counter, not the
// context's shared ScannedTuples (which other operators also bump, making
// the stride drift under concurrent scans).
func TestIndexScanLocalInterruptCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	doc := xmltree.RandomDocument(rng, 9000, []string{"a"})
	pat := pattern.MustParse("//a//a")
	ctx := newCtx(t, doc)
	polls := 0
	ctx.Interrupt = func() error { polls++; return nil }
	// Pre-poison the shared counter: a stride keyed off it would start
	// mid-cycle, while the scan-local stride is unaffected.
	ctx.Stats.ScannedTuples = 1<<20 + 17
	s := NewIndexScan(pat, 0)
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	s.Close()
	if s.rows != n {
		t.Fatalf("scan-local row counter = %d after %d rows", s.rows, n)
	}
	if want := n / 0x1000; polls != want {
		t.Fatalf("interrupt polled %d times over %d rows, want %d (scan-local 0x1000 stride)",
			polls, n, want)
	}
}

// TestBatchAppendersAndTruncate unit-tests the Batch container itself.
func TestBatchAppendersAndTruncate(t *testing.T) {
	b := NewBatch(2)
	b.AppendRow(Tuple{1, 2})
	b.AppendPair(Tuple{3}, Tuple{4})
	if b.Len() != 2 || b.Width() != 2 {
		t.Fatalf("len=%d width=%d, want 2/2", b.Len(), b.Width())
	}
	if got := b.Row(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Row(1) = %v, want [3 4]", got)
	}
	b.Truncate(1)
	if b.Len() != 1 {
		t.Fatalf("after Truncate(1): len=%d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Fatal("Reset left rows behind")
	}
	ids := NewBatch(1)
	ids.AppendID(9)
	ids.AppendIDs([]xmltree.NodeID{10, 11})
	if ids.Len() != 3 || ids.Row(2)[0] != 11 {
		t.Fatalf("ID appenders broken: len=%d", ids.Len())
	}
}

// TestBatchReaderSeekWithinBuffer checks the reader's binary search over
// buffered rows (the in-buffer half of seekGE).
func TestBatchReaderSeekWithinBuffer(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//name")
	s := NewIndexScan(pat, 0)
	ctx := newCtx(t, doc)
	if err := s.Open(ctx); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := newBatchReader(s)
	first, ok, err := r.next()
	if err != nil || !ok {
		t.Fatalf("empty name scan: ok=%v err=%v", ok, err)
	}
	// Seek to a position past the first few names: result must be the first
	// name at or after it, same as scanning forward.
	nmTag, _ := doc.LookupTag("name")
	names := doc.NodesWithTag(nmTag)
	if len(names) < 3 {
		t.Fatal("fixture too small")
	}
	target := doc.Start(names[2])
	got, ok, err := r.seekGE(target, doc, 0)
	if err != nil || !ok {
		t.Fatalf("seekGE: ok=%v err=%v", ok, err)
	}
	if doc.Start(got[0]) < target {
		t.Fatalf("seekGE returned a row before the target position")
	}
	if got[0] == first[0] {
		t.Fatal("seekGE did not advance")
	}
	// And fully past the end: stream must terminate cleanly.
	if _, ok, err := r.seekGE(xmltree.Pos(1<<30), doc, 0); ok || err != nil {
		t.Fatalf("seekGE past end: ok=%v err=%v, want end of stream", ok, err)
	}
}

// TestBatchVsTupleBuiltPlans cross-checks complete built plans (via the
// optimizer-facing Build/Run path) between the tuple and batched drivers,
// against the brute-force reference, on left-deep and branching shapes.
func TestBatchVsTupleBuiltPlans(t *testing.T) {
	doc := personnelDoc(t)
	cases := []struct {
		src string
		p   *plan.Node
	}{
		{"//manager//employee/name",
			plan.NewJoin(
				plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc),
				plan.NewIndexScan(2), 1, 2, pattern.Child, plan.AlgoDesc)},
		{"//manager[.//department]//name",
			plan.NewJoin(
				plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoAnc),
				plan.NewIndexScan(2), 0, 2, pattern.Descendant, plan.AlgoDesc)},
		{"//db//manager//employee",
			plan.NewJoin(
				plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc),
				plan.NewIndexScan(2), 1, 2, pattern.Descendant, plan.AlgoDesc)},
	}
	for _, tc := range cases {
		pat := pattern.MustParse(tc.src)
		if err := tc.p.Validate(pat, false); err != nil {
			t.Fatalf("%s: test plan invalid: %v", tc.src, err)
		}
		gotB, err := RunBatched(newCtx(t, doc), pat, tc.p)
		if err != nil {
			t.Fatalf("%s batched: %v", tc.src, err)
		}
		gotT, err := Run(newCtx(t, doc), pat, tc.p)
		if err != nil {
			t.Fatalf("%s tuple: %v", tc.src, err)
		}
		want := ReferenceMatches(doc, pat)
		if !sortedEq(gotB, want) || !sortedEq(gotT, want) {
			t.Fatalf("%s: batched %d, tuple %d, reference %d matches",
				tc.src, len(gotB), len(gotT), len(want))
		}
		nb, err := RunCountBatched(newCtx(t, doc), pat, tc.p)
		if err != nil {
			t.Fatalf("%s count batched: %v", tc.src, err)
		}
		if nb != len(want) {
			t.Fatalf("%s: CountBatched = %d, want %d", tc.src, nb, len(want))
		}
	}
}
