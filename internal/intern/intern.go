// Package intern provides a small string intern table. XML documents repeat
// text values heavily (categorical fields, enumerations, numeric codes), so
// the document builder and the content index canonicalise value strings
// through a Table: equal values share one backing allocation, cutting both
// retained memory and the per-value allocations on the load path.
package intern

// Table deduplicates strings. It is not safe for concurrent use; the
// builders that own one run single-threaded.
type Table struct {
	m          map[string]string
	hits       uint64
	misses     uint64
	bytesSaved uint64
}

// New returns an empty intern table.
func New() *Table {
	return &Table{m: make(map[string]string)}
}

// Intern returns the canonical copy of s, registering s itself on first
// sight. The empty string is always canonical.
func (t *Table) Intern(s string) string {
	if s == "" {
		return ""
	}
	if c, ok := t.m[s]; ok {
		t.hits++
		t.bytesSaved += uint64(len(s))
		return c
	}
	t.misses++
	t.m[s] = s
	return s
}

// InternBytes is Intern for a byte slice: a hit costs no allocation at all
// (the map lookup does not materialise the key), so repeated values read
// from a parser or an image stream are deduplicated for free.
func (t *Table) InternBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if c, ok := t.m[string(b)]; ok {
		t.hits++
		t.bytesSaved += uint64(len(b))
		return c
	}
	t.misses++
	s := string(b)
	t.m[s] = s
	return s
}

// Stats is a point-in-time snapshot of a Table's behaviour.
type Stats struct {
	// Strings is the number of distinct strings held.
	Strings uint64
	// Hits and Misses count Intern calls that found / registered a string.
	Hits   uint64
	Misses uint64
	// BytesSaved is the total length of deduplicated (hit) strings — the
	// allocation volume interning avoided retaining.
	BytesSaved uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 for an unused table.
func (s Stats) HitRate() float64 {
	n := s.Hits + s.Misses
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

// Stats returns a snapshot of the table's counters.
func (t *Table) Stats() Stats {
	return Stats{
		Strings:    uint64(len(t.m)),
		Hits:       t.hits,
		Misses:     t.misses,
		BytesSaved: t.bytesSaved,
	}
}
