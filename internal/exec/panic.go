package exec

import (
	"fmt"
	"runtime"
)

// PanicError is a panic converted into an ordinary error at a goroutine
// boundary: parallel partition workers recover their own panics into it so
// a bug in one partition fails the query instead of crashing the process.
// The facade's Run-level recovery wraps the same way for the serial path.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: recovered panic: %v", e.Value)
}

// RecoverPanic converts a recovered panic value (from recover()) into a
// *PanicError with the current stack captured. Returns nil for a nil value
// so it can be called unconditionally in a defer.
func RecoverPanic(v any) error {
	if v == nil {
		return nil
	}
	buf := make([]byte, 64<<10)
	return &PanicError{Value: v, Stack: buf[:runtime.Stack(buf, false)]}
}
