package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sjos"
)

// PlannerConfig tunes the planning-cost benchmark (xqbench -plannerbench).
type PlannerConfig struct {
	// Folds are the folding factors for the Table-3 workload (0 = the
	// paper's ×1, ×10, ×100).
	Folds []int
	// OptBudget and EvalBudget bound the wall-clock each cell spends
	// timing optimization resp. execution (0 = 250ms / 1s). Best-of
	// repetition stops once the budget is spent, so the microsecond-scale
	// optimizers get thousands of reps while DP on the stress shapes gets
	// only a few — without fixed rep counts making either end degenerate.
	OptBudget  time.Duration
	EvalBudget time.Duration
	// Quick shrinks the lane to a CI smoke test: fold ×1 only and small
	// timing budgets.
	Quick bool
}

// PlannerWorkload is one query shape the planner lane measures.
type PlannerWorkload struct {
	ID      string
	Dataset string
	Source  string
	Fold    int
	// Table3 marks the workloads drawn from the paper's Table 3; the
	// headline optimize-time speedup is taken over these.
	Table3 bool
}

// plannerWorkloads returns the lane's workload list: Q.Pers.3.d at each
// fold (the Table-3 configuration), plus a deep-chain and a wide-fanout
// stress shape on the same vocabulary at fold ×1. The stress shapes stay at
// 7 nodes so exhaustive DP remains tractable enough to time.
func plannerWorkloads(folds []int) ([]PlannerWorkload, error) {
	q, err := QueryByID(PersQuery3)
	if err != nil {
		return nil, err
	}
	var ws []PlannerWorkload
	for _, f := range folds {
		ws = append(ws, PlannerWorkload{
			ID:      fmt.Sprintf("%s@x%d", q.ID, f),
			Dataset: q.Dataset,
			Source:  q.Source,
			Fold:    f,
			Table3:  true,
		})
	}
	ws = append(ws,
		PlannerWorkload{
			ID:      "deep-chain@x1",
			Dataset: "pers",
			Source:  "//manager//manager//manager//manager//manager/department/name",
			Fold:    1,
		},
		PlannerWorkload{
			ID:      "wide-fanout@x1",
			Dataset: "pers",
			Source:  "//manager[.//employee/name][department/name]//manager/name",
			Fold:    1,
		},
	)
	return ws, nil
}

// PlannerCell is one workload × method measurement.
type PlannerCell struct {
	// Opt and Eval are best-of-N timings of plan search resp. plan
	// execution; Total is their sum — the latency a cold (uncached) query
	// would pay end to end.
	Opt   time.Duration
	Eval  time.Duration
	Total time.Duration
	// EstCost and PlansConsidered describe the search: its cost estimate
	// for the chosen plan and its effort.
	EstCost         float64
	PlansConsidered int
	// Matches is the plan's result count; all methods must agree.
	Matches int
}

// PlannerRow holds one workload's cells plus the two derived ratios the
// lane exists to report.
type PlannerRow struct {
	Workload PlannerWorkload
	Cells    map[string]PlannerCell // keyed by method name
	// OptSpeedupVsDP is DP's optimize time over Greedy's: how much plan
	// search the statistics-free orderer avoids.
	OptSpeedupVsDP float64
	// GreedyTotalOverBest is Greedy's opt+eval total over the best
	// cost-based method's total: what the avoided search costs in plan
	// quality. 1.0 means Greedy's end-to-end latency matches the best
	// cost-based plan; values above 1 are the slowdown factor.
	GreedyTotalOverBest float64
}

// PlannerResult is the planner lane's full output (BENCH_planner.json).
type PlannerResult struct {
	Config PlannerConfig
	Rows   []PlannerRow
	// MinOptSpeedupVsDP is the smallest DP/Greedy optimize-time ratio over
	// the Table-3 workloads; MaxGreedyTotalOverBest the largest
	// Greedy-total over best-cost-based-total ratio over all workloads.
	// Together they are the lane's acceptance headline: search is cheaper
	// by at least the former, end-to-end latency worse by at most the
	// latter.
	MinOptSpeedupVsDP      float64
	MaxGreedyTotalOverBest float64
}

// timeItBudget is timeIt with a wall-clock budget instead of a fixed count:
// it runs f up to maxN times, stops early once the cumulative time spent
// exceeds budget (always completing at least one run), and returns the best
// duration.
func timeItBudget(budget time.Duration, maxN int, f func() error) (time.Duration, error) {
	var best, spent time.Duration
	for i := 0; i < maxN; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		d := time.Since(t0)
		spent += d
		if i == 0 || d < best {
			best = d
		}
		if spent >= budget {
			break
		}
	}
	return best, nil
}

// Per-cell repetition caps for the budgeted timers: optimization cells are
// microseconds (allow many reps inside the budget), execution cells are
// milliseconds and up.
const (
	plannerOptMaxN  = 2000
	plannerEvalMaxN = 25
)

// PlannerBench measures plan-search time and resulting plan-execution time
// for every optimizer method across the Table-3 workloads plus deep-chain
// and wide-fanout stress shapes. Every method must produce the same match
// count on each workload; a mismatch aborts the lane.
func PlannerBench(cfg PlannerConfig) (*PlannerResult, error) {
	folds := cfg.Folds
	if len(folds) == 0 {
		folds = []int{1, 10, 100}
	}
	optBudget, evalBudget := cfg.OptBudget, cfg.EvalBudget
	if cfg.Quick {
		folds = []int{1}
		if optBudget <= 0 {
			optBudget = 20 * time.Millisecond
		}
		if evalBudget <= 0 {
			evalBudget = 100 * time.Millisecond
		}
	}
	if optBudget <= 0 {
		optBudget = 250 * time.Millisecond
	}
	if evalBudget <= 0 {
		evalBudget = time.Second
	}
	cfg.Folds, cfg.OptBudget, cfg.EvalBudget = folds, optBudget, evalBudget

	workloads, err := plannerWorkloads(folds)
	if err != nil {
		return nil, err
	}
	res := &PlannerResult{Config: cfg}
	for _, w := range workloads {
		db, err := Dataset(w.Dataset, w.Fold)
		if err != nil {
			return nil, err
		}
		pat, err := sjos.ParsePattern(w.Source)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.ID, err)
		}
		row := PlannerRow{Workload: w, Cells: map[string]PlannerCell{}}
		matches := -1
		for _, m := range Methods() {
			var opt *sjos.OptimizeResult
			optT, err := timeItBudget(optBudget, plannerOptMaxN, func() error {
				var e error
				opt, e = db.Optimize(pat, m, 0)
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("%s %v: optimize: %w", w.ID, m, err)
			}
			var n int
			evalT, err := timeItBudget(evalBudget, plannerEvalMaxN, func() error {
				r, e := db.Run(context.Background(), pat, opt.Plan, sjos.RunOptions{CountOnly: true})
				if e == nil {
					n = r.Count
				}
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("%s %v: execute: %w", w.ID, m, err)
			}
			if matches == -1 {
				matches = n
			} else if n != matches {
				return nil, fmt.Errorf("%s: %v found %d matches, others %d", w.ID, m, n, matches)
			}
			row.Cells[m.String()] = PlannerCell{
				Opt:             optT,
				Eval:            evalT,
				Total:           optT + evalT,
				EstCost:         opt.Cost,
				PlansConsidered: opt.Counters.PlansConsidered,
				Matches:         n,
			}
		}
		greedy := row.Cells[sjos.MethodGreedy.String()]
		dp := row.Cells[sjos.MethodDP.String()]
		if greedy.Opt > 0 {
			row.OptSpeedupVsDP = float64(dp.Opt) / float64(greedy.Opt)
		}
		bestTotal := time.Duration(0)
		for _, m := range Methods() {
			if m == sjos.MethodGreedy {
				continue
			}
			if t := row.Cells[m.String()].Total; bestTotal == 0 || t < bestTotal {
				bestTotal = t
			}
		}
		if bestTotal > 0 {
			row.GreedyTotalOverBest = float64(greedy.Total) / float64(bestTotal)
		}
		res.Rows = append(res.Rows, row)

		if w.Table3 && (res.MinOptSpeedupVsDP == 0 || row.OptSpeedupVsDP < res.MinOptSpeedupVsDP) {
			res.MinOptSpeedupVsDP = row.OptSpeedupVsDP
		}
		if row.GreedyTotalOverBest > res.MaxGreedyTotalOverBest {
			res.MaxGreedyTotalOverBest = row.GreedyTotalOverBest
		}
	}
	return res, nil
}

// RenderPlannerBench formats the planner lane as an aligned text table with
// the two headline ratios underneath.
func RenderPlannerBench(res *PlannerResult) string {
	var sb strings.Builder
	sb.WriteString("Planner bench: plan-search time vs resulting execution time\n")
	fmt.Fprintf(&sb, "%-18s %-8s %10s %10s %10s %12s %8s\n",
		"Workload", "Method", "opt", "eval", "total", "est cost", "plans")
	for _, r := range res.Rows {
		for _, name := range methodNamesInOrder() {
			c := r.Cells[name]
			fmt.Fprintf(&sb, "%-18s %-8s %10s %10s %10s %12.0f %8d\n",
				r.Workload.ID, name, fmtDur(c.Opt), fmtDur(c.Eval), fmtDur(c.Total),
				c.EstCost, c.PlansConsidered)
		}
		fmt.Fprintf(&sb, "%-18s ratios: Greedy optimizes %.0fx faster than DP; total %.2fx of best cost-based\n",
			r.Workload.ID, r.OptSpeedupVsDP, r.GreedyTotalOverBest)
	}
	fmt.Fprintf(&sb, "headline: Greedy opt >= %.0fx faster than DP on Table-3 workloads; total <= %.2fx of best cost-based everywhere\n",
		res.MinOptSpeedupVsDP, res.MaxGreedyTotalOverBest)
	return sb.String()
}

// methodNamesInOrder returns Methods() as display names.
func methodNamesInOrder() []string {
	var names []string
	for _, m := range Methods() {
		names = append(names, m.String())
	}
	return names
}
