package xmltree

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// BenchmarkBuilder measures programmatic document construction.
func BenchmarkBuilder(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(1))
				RandomDocument(rng, n, []string{"a", "b", "c"})
			}
		})
	}
}

// BenchmarkParse measures the XML text ingestion path.
func BenchmarkParse(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	doc := RandomDocument(rng, 20000, []string{"a", "b", "c"})
	text, err := SerializeString(doc)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFold measures the folding-factor replication used by the
// data-scaling experiment.
func BenchmarkFold(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	doc := RandomDocument(rng, 5000, []string{"a", "b", "c"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fold(doc, 10)
	}
}

// BenchmarkIsAncestor measures the O(1) structural predicate at the heart
// of every join.
func BenchmarkIsAncestor(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	doc := RandomDocument(rng, 100000, []string{"a", "b"})
	n := NodeID(doc.NumNodes() - 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc.IsAncestor(0, n&NodeID(i|1))
	}
}
