package sjos

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// TestParallelExecuteProperty is the facade-level property test: on random
// documents and random twigs, ExecuteParallel with K ∈ {1,2,3,7} returns
// exactly the serial result sequence — same matches, same document order —
// and the same OutputTuples total. testing/quick drives the seed space.
func TestParallelExecuteProperty(t *testing.T) {
	methods := []Method{MethodDP, MethodDPP, MethodFP}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tags := []string{"a", "b", "c", "d"}
		db, err := LoadXMLString(randomXML(rng, 20+rng.Intn(200), tags), nil)
		if err != nil {
			t.Logf("seed %d: load: %v", seed, err)
			return false
		}
		for q := 0; q < 3; q++ {
			pat := randomTwig(rng, tags, 2+rng.Intn(4))
			res, err := db.Optimize(pat, methods[rng.Intn(len(methods))], 0)
			if err != nil {
				t.Logf("seed %d: optimize %s: %v", seed, pat, err)
				return false
			}
			want, wantStats, err := execAll(db, pat, res.Plan)
			if err != nil {
				t.Logf("seed %d: serial %s: %v", seed, pat, err)
				return false
			}
			for _, k := range []int{1, 2, 3, 7} {
				got, gotStats, err := execParallel(db, pat, res.Plan, k)
				if err != nil {
					t.Logf("seed %d k=%d: %s: %v", seed, k, pat, err)
					return false
				}
				if len(got) != len(want) {
					t.Logf("seed %d k=%d: %s: %d matches, serial %d",
						seed, k, pat, len(got), len(want))
					return false
				}
				for i := range got {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Logf("seed %d k=%d: %s: match %d differs", seed, k, pat, i)
						return false
					}
				}
				if gotStats.OutputTuples != wantStats.OutputTuples {
					t.Logf("seed %d k=%d: %s: OutputTuples %d, serial %d",
						seed, k, pat, gotStats.OutputTuples, wantStats.OutputTuples)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelStatsMatchSerial compares the merged parallel counters with
// serial execution on the personnel benchmark workload. The semantic
// counters (OutputTuples, BufferedPairs, SortedTuples) must match exactly:
// they count real tuples, and the partitions produce exactly the serial
// tuple set. ScannedTuples and StackOps measure physical work, which can
// differ by a few units per partition boundary — a streaming join stops
// consuming its left input when the right side exhausts, and serial and
// partitioned runs reach that point at different places — so those are
// held to a 1% tolerance.
func TestParallelStatsMatchSerial(t *testing.T) {
	db, err := GenerateDataset("pers", 1, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"//manager//employee/name",
		"//manager[.//employee/name]//manager/department/name",
		"//manager/department[name]",
	}
	for _, src := range queries {
		pat := MustParsePattern(src)
		res, err := db.Optimize(pat, MethodDPP, 0)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		_, serial, err := execAll(db, pat, res.Plan)
		if err != nil {
			t.Fatalf("%s serial: %v", src, err)
		}
		for _, k := range []int{2, 4} {
			_, par, err := execParallel(db, pat, res.Plan, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", src, k, err)
			}
			if par.OutputTuples != serial.OutputTuples ||
				par.BufferedPairs != serial.BufferedPairs ||
				par.SortedTuples != serial.SortedTuples {
				t.Errorf("%s k=%d: semantic counters diverge: parallel %+v, serial %+v",
					src, k, par, serial)
			}
			within := func(got, want int) bool {
				d := got - want
				if d < 0 {
					d = -d
				}
				return d*100 <= want
			}
			if !within(par.ScannedTuples, serial.ScannedTuples) ||
				!within(par.StackOps, serial.StackOps) {
				t.Errorf("%s k=%d: work counters off by >1%%: parallel %+v, serial %+v",
					src, k, par, serial)
			}
		}
	}
}

// TestParallelViewRouting checks WithParallelism: the view routes Execute,
// ExecuteCount and ExecuteLimit through the parallel driver while the
// original database stays serial, and both agree.
func TestParallelViewRouting(t *testing.T) {
	db := openDB(t)
	if db.Parallelism() != 0 {
		t.Fatalf("fresh database parallelism = %d, want 0", db.Parallelism())
	}
	pdb := db.WithParallelism(3)
	if pdb.Parallelism() != 3 || db.Parallelism() != 0 {
		t.Fatalf("parallelism: view %d (want 3), base %d (want 0)",
			pdb.Parallelism(), db.Parallelism())
	}
	if auto := db.WithParallelism(0).Parallelism(); auto < 1 {
		t.Fatalf("WithParallelism(0) resolved to %d workers", auto)
	}
	pat := MustParsePattern("//manager//name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := execAll(db, pat, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := execAll(pdb, pat, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel view Execute: %d matches, serial %d", len(got), len(want))
	}
	n, _, err := execCount(pdb, pat, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("parallel view ExecuteCount = %d, want %d", n, len(want))
	}
	if len(want) > 1 {
		lim, _, err := execLimit(pdb, pat, res.Plan, len(want)-1)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lim, want[:len(want)-1]) {
			t.Fatalf("parallel view ExecuteLimit: got %d, want prefix %d",
				len(lim), len(want)-1)
		}
	}
}

// TestParallelSharedDatabase hammers one shared Database from many
// goroutines mixing serial and parallel execution — the -race companion to
// the property test: the store, buffer pool and parallel driver must be
// safe for concurrent use.
func TestParallelSharedDatabase(t *testing.T) {
	db := openDB(t)
	pat := MustParsePattern("//manager[.//employee]//name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := execAll(db, pat, res.Plan)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				var got []Match
				var err error
				if g%2 == 0 {
					got, _, err = execParallel(db, pat, res.Plan, 1+g%4)
				} else {
					got, _, err = execAll(db, pat, res.Plan)
				}
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d: result diverged (%d vs %d matches)",
						g, len(got), len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
