package core

import (
	"context"

	"reflect"
	"testing"

	"sjos/internal/exec"
	"sjos/internal/pattern"
	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// checkPlansProduceReference optimizes pat with every method and verifies
// each chosen plan executes to the brute-force reference result.
func checkPlansProduceReference(t *testing.T, doc *xmltree.Document, pat *pattern.Pattern, est *Estimator) {
	t.Helper()
	st, err := storage.BuildStore(doc, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := exec.ReferenceMatches(doc, pat)
	exec.SortCanonical(want)
	for _, m := range allMethods() {
		r, err := Optimize(context.Background(), pat, est, testModel(), m, nil)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := r.Plan.Validate(pat, true); err != nil {
			t.Fatalf("%v: invalid plan: %v", m, err)
		}
		// The physical ordering promise: the root's OrderedBy column
		// arrives sorted by document position.
		op, err := exec.Build(pat, r.Plan)
		if err != nil {
			t.Fatalf("%v: build: %v", m, err)
		}
		ctx := &exec.Context{Doc: doc, Store: st}
		raw, err := exec.Drain(ctx, op)
		if err != nil {
			t.Fatalf("%v: execution: %v", m, err)
		}
		if col, ok := op.Schema().Col(r.Plan.OrderedBy); ok {
			for i := 1; i < len(raw); i++ {
				if doc.Start(raw[i][col]) < doc.Start(raw[i-1][col]) {
					t.Fatalf("%v: output not ordered by node %d at row %d\n%s",
						m, r.Plan.OrderedBy, i, r.Plan.Format(pat))
				}
			}
		}
		got := exec.NormalizeAll(op.Schema(), pat.N(), raw)
		exec.SortCanonical(got)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: plan produced %d matches, reference %d\n%s",
				m, len(got), len(want), r.Plan.Format(pat))
		}
	}
}
