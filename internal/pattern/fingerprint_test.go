package pattern

import "testing"

// buildFig1 builds the paper's Figure-1 pattern with children inserted in
// the given sibling order, producing structurally identical patterns under
// different node numberings.
func buildFig1(order [2]string) *Pattern {
	b := NewBuilder("manager")
	for _, tag := range order {
		switch tag {
		case "dept":
			d := b.Kid(b.Root(), "department")
			b.Kid(d, "name")
		case "emp":
			e := b.Desc(b.Root(), "employee")
			b.Where(b.Kid(e, "salary"), CmpGe, "50000")
		}
	}
	return b.Pattern()
}

func TestFingerprintInvariantUnderRenumbering(t *testing.T) {
	a := buildFig1([2]string{"dept", "emp"})
	c := buildFig1([2]string{"emp", "dept"})
	fpA, canonA := Fingerprint(a)
	fpC, canonC := Fingerprint(c)
	if fpA != fpC {
		t.Fatalf("fingerprints differ for isomorphic patterns:\n%s\n%s", fpA, fpC)
	}
	// The composed mapping a-node -> canonical -> c-node must be an
	// isomorphism: same tags, predicates and axes edge by edge.
	invC := InversePermutation(canonC)
	iso := make([]int, a.N())
	for u := 0; u < a.N(); u++ {
		iso[u] = invC[canonA[u]]
	}
	for u := 0; u < a.N(); u++ {
		v := iso[u]
		if a.Nodes[u] != c.Nodes[v] {
			t.Fatalf("node %d maps to %d with different label: %+v vs %+v",
				u, v, a.Nodes[u], c.Nodes[v])
		}
		if u == 0 {
			continue
		}
		if iso[a.Parent[u]] != c.Parent[v] {
			t.Fatalf("edge into %d not preserved: parent %d -> %d, want %d",
				u, a.Parent[u], c.Parent[v], iso[a.Parent[u]])
		}
		if a.Axis[u] != c.Axis[v] {
			t.Fatalf("axis of edge into %d not preserved", u)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := MustParse("//manager//employee/name")
	variants := []string{
		"//manager/employee/name",            // axis change
		"//manager//employee/salary",         // tag change
		"//manager//employee/name#",          // order-by change
		`//manager//employee/name[. >= "x"]`, // predicate added
		"//manager//employee",                // node removed
		"//manager[.//employee]/name",        // shape change
		`//manager//employee/name[. = "x"]`,  // different op than >=
	}
	fpBase, _ := Fingerprint(base)
	for _, src := range variants {
		p := MustParse(src)
		fp, _ := Fingerprint(p)
		if fp == fpBase {
			t.Errorf("pattern %q collides with base fingerprint", src)
		}
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	p := MustParse(`//a[b/c][.//d[. = "1"]]//e`)
	fp1, canon1 := Fingerprint(p)
	fp2, canon2 := Fingerprint(p)
	if fp1 != fp2 {
		t.Fatal("fingerprint not deterministic")
	}
	for i := range canon1 {
		if canon1[i] != canon2[i] {
			t.Fatal("canonical permutation not deterministic")
		}
	}
	// canon must be a permutation of 0..n-1 with the root first.
	if canon1[0] != 0 {
		t.Fatalf("root must map to canonical index 0, got %d", canon1[0])
	}
	seen := make([]bool, len(canon1))
	for _, c := range canon1 {
		if c < 0 || c >= len(seen) || seen[c] {
			t.Fatalf("canon is not a permutation: %v", canon1)
		}
		seen[c] = true
	}
}

func TestFingerprintSingleNode(t *testing.T) {
	p := MustParse("/doc")
	fp, canon := Fingerprint(p)
	if fp == "" || len(canon) != 1 || canon[0] != 0 {
		t.Fatalf("single-node fingerprint: %q %v", fp, canon)
	}
}
