package core

import (
	"context"
	"fmt"

	"sjos/internal/cost"
	"sjos/internal/pattern"
	"sjos/internal/plan"
	"sjos/internal/xmltree"
)

// Greedy optimizes pat with a statistics-free greedy join orderer. Unlike
// the paper's five cost-based algorithms it never consults positional
// histograms or estimated join selectivities to choose the join order:
// joins are ranked by cheap signals that are visible in the pattern and the
// store's postings directory alone —
//
//   - the tag postings length (a count, not a histogram): smaller postings
//     lists bind fewer candidates and shrink intermediates sooner;
//   - value-predicate eligibility: a leaf whose predicate the content index
//     can serve (ProbeEligible) is the most selective access path and joins
//     first; a predicated-but-unindexed leaf ranks next;
//   - edge kind: a parent-child edge ("/") is structurally tighter than an
//     ancestor-descendant edge ("//"), so `/` children attach before `//`
//     children of the same promise.
//
// Construction follows FP's re-rooting scheme (§3.4): the pattern is picked
// up at the output node (OrderBy, or — when the query leaves the order free
// — the ancestor endpoint of the deepest `//` edge, so that the explosive
// loose joins run in the cheaper Desc orientation) and each child subtree
// joins the accumulated intermediate
// with the Stack-Tree variant that keeps the output ordered by the root —
// Anc when the root is the ancestor, Desc when it is the descendant. The
// one exception is the final join of a free-order pattern: its output order
// is never consumed, so it takes whichever orientation the cost model
// prefers. By Theorem 3.1 such a fully-pipelined plan always exists, so
// greedy construction has no deadends and needs no backtracking: it costs
// exactly one plan. Estimated cardinalities and costs are still annotated onto the
// plan (they feed the adaptive est-vs-actual drift check), but they never
// influence the join order.
//
// When some leaf's postings list is provably empty (a tag absent from the
// document), every intermediate containing it is empty too: the empty
// subtree joins first and ranking terminates early — the remaining children
// attach in pattern order, since ordering zero-row joins is pointless.
func Greedy(pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	return greedy(context.Background(), pat, est, model)
}

// Relative ranking factors. They express a priority order, not a
// calibrated estimate: an index-probed predicate is assumed far more
// selective than an unindexed one, which beats no predicate at all, and a
// `//` edge loosens whatever promise a subtree makes.
const (
	greedyProbeBoost  = 16 // ProbeEligible leaves first
	greedyPredBoost   = 4  // predicated-but-unindexed leaves next
	greedyDescPenalty = 2  // "//" binds looser than "/"
)

// greedySignals is the per-pattern input of the greedy builder: ranking
// signals plus the cardinality annotations carried onto the plan. Both
// entry points — the Estimator-backed one used by Optimize and the direct
// StatsSource one used by the facade's fast path — reduce to this shape, so
// they construct identical plans from identical statistics.
//
// The arrays are fixed-size (MaxPatternNodes) so the whole struct lives in
// the caller's stack frame: an optimize call heap-allocates only the plan
// nodes and the Result, which is what keeps the fast path sub-microsecond.
type greedySignals struct {
	scanCard [MaxPatternNodes]float64 // per node: tag postings length (pre-predicate)
	nodeCard [MaxPatternNodes]float64 // per node: post-predicate candidates (annotation)
	edgeSel  [MaxPatternNodes]float64 // per edge id (annotation); [0] unused
	leafCost [MaxPatternNodes]float64 // per node: chosen access-path cost
	score    [MaxPatternNodes]float64 // per node: ranking signal, lower binds tighter
	probe    [MaxPatternNodes]bool    // per node: leaf runs as a value-index probe
	eligible [MaxPatternNodes]bool    // per node: content index can serve the predicate
}

// finish computes each node's ranking score and leaf access path from the
// already-filled cardinalities. sig.eligible marks nodes whose predicate
// the content index can serve; the probe is chosen when it is also
// estimated cheaper than the scan (the same rule newSpace applies).
func (sig *greedySignals) finish(pat *pattern.Pattern, model cost.Model) {
	for u := 0; u < pat.N(); u++ {
		s := sig.scanCard[u]
		switch {
		case sig.eligible[u]:
			s /= greedyProbeBoost
		case pat.Nodes[u].Op != pattern.CmpNone:
			s /= greedyPredBoost
		}
		sig.score[u] = s
		c := model.IndexAccess(sig.scanCard[u])
		if sig.eligible[u] {
			if probe := model.ValueProbe(sig.nodeCard[u]); probe < c {
				c = probe
				sig.probe[u] = true
			}
		}
		sig.leafCost[u] = c
	}
}

// greedy is the Estimator-backed entry point used by Optimize: signals are
// read off an already-built estimator. The whole construction is one pass,
// so a single upfront ctx poll suffices.
func greedy(ctx context.Context, pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := pat.N()
	var b greedyBuilder
	sig := &b.sig
	for u := 0; u < n; u++ {
		sig.scanCard[u] = est.ScanCard(u)
		sig.nodeCard[u] = est.NodeCard(u)
		sig.eligible[u] = est.ProbeOK(u)
	}
	for e := 1; e < n; e++ {
		sig.edgeSel[e] = est.EdgeSelectivity(e)
	}
	sig.finish(pat, model)
	return b.build(pat, model), nil
}

// GreedyFromStats is the facade's fast path for MethodGreedy: it plans
// straight from the statistics surface without constructing an Estimator or
// a search space — no histogram work beyond one memoised selectivity lookup
// per edge for the plan's cost annotations. Given the same statistics it
// produces exactly the plan Optimize(MethodGreedy) produces.
func GreedyFromStats(ctx context.Context, pat *pattern.Pattern, stats StatsSource, pe ProbeEligibility, model cost.Model) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !model.Valid() {
		return nil, fmt.Errorf("core: invalid cost model %+v", model)
	}
	if err := pat.Validate(); err != nil {
		return nil, err
	}
	n := pat.N()
	if n > MaxPatternNodes {
		return nil, fmt.Errorf("core: pattern has %d nodes, maximum is %d", n, MaxPatternNodes)
	}
	var b greedyBuilder
	sig := &b.sig
	var tags [MaxPatternNodes]xmltree.TagID
	var known [MaxPatternNodes]bool
	ps, exact := pe.(ProbeSelectivity)
	for u := 0; u < n; u++ {
		nd := pat.Nodes[u]
		// Patterns repeat tag names (self-joins, shared leaf tags); reuse an
		// earlier node's resolution instead of re-hashing the string.
		tag, ok, seen := xmltree.TagID(0), false, false
		for w := 0; w < u; w++ {
			if pat.Nodes[w].Tag == nd.Tag {
				tag, ok, seen = tags[w], known[w], true
				break
			}
		}
		if !seen {
			tag, ok = stats.Lookup(nd.Tag)
		}
		if !ok {
			continue // absent tag: zero cards, provably-empty leaf
		}
		tags[u], known[u] = tag, true
		card := stats.TagCount(tag)
		sig.scanCard[u] = card
		if nd.Op != pattern.CmpNone {
			card *= stats.PredicateSelectivity(tag, nd.Op, nd.Value)
			if pe != nil && pe.ProbeEligible(nd.Tag, nd.Op, nd.Value) {
				sig.eligible[u] = true
				if exact {
					if exactN, ok := ps.ProbeSelectivity(nd.Tag, nd.Op, nd.Value); ok {
						card = float64(exactN)
					}
				}
			}
		}
		sig.nodeCard[u] = card
	}
	for e := 1; e < n; e++ {
		if known[e] && known[pat.Parent[e]] {
			sig.edgeSel[e] = stats.Selectivity(tags[pat.Parent[e]], tags[e], pat.Axis[e])
		}
	}
	sig.finish(pat, model)
	return b.build(pat, model), nil
}

// gplan is one assembled subtree during greedy construction: a pipelined
// plan ordered by its subtree root. card is the intermediate's estimated
// cardinality, maintained incrementally — under the estimator's
// independence model, joining disjoint clusters A and B over edge e gives
// |A ⋈ B| = |A| · |B| · sel(e), so no cluster-mask memo is needed.
type gplan struct {
	node  *plan.Node
	cost  float64 // cumulative estimated cost (annotation only)
	card  float64 // estimated intermediate cardinality
	score float64 // min node score in the subtree: its selectivity promise
	empty bool    // subtree contains a provably-empty leaf
}

// greedyBuilder threads the shared state through the subtree recursion. The
// nodes slice is the single backing allocation for every plan operator
// (2n-1 of them: n leaves, n-1 joins). pool/keys/taken are bump-allocated
// ranking scratch shared by all recursion frames — a frame's children
// occupy [base, top), the recursion below uses slots above, and the frame
// releases its range on return, so total usage never exceeds the edge
// count. The signals are embedded by value and the scratch is fixed-size,
// so the whole builder lives in the entry point's stack frame — the only
// pointers reachable from the returned Result are the pattern and the heap
// nodes slice.
type greedyBuilder struct {
	sig      greedySignals
	pat      *pattern.Pattern
	model    cost.Model
	nodes    []plan.Node
	pool     [MaxPatternNodes]gplan
	keys     [MaxPatternNodes]float64
	taken    [MaxPatternNodes]bool
	top      int
	counters Counters
}

// build assembles the greedy plan from the filled signals: rooted at the
// pattern's output node (OrderBy, else the heuristic root below), child
// subtrees attach in ranking order.
func (b *greedyBuilder) build(pat *pattern.Pattern, model cost.Model) *Result {
	b.pat = pat
	b.model = model
	b.nodes = make([]plan.Node, 0, 2*pat.N()-1)
	root := pat.OrderBy
	if root == pattern.NoNode {
		// Free output order: root at the ancestor endpoint of the deepest
		// Descendant-axis edge. Edges above the root run as Stack-Tree-Desc,
		// which never pays Anc's 2·|AB|·f_IO output-buffering term, so the
		// loose `//` edges — the ones whose join outputs explode — belong on
		// the spine above the root, deferred past the tight joins below it.
		// Depth and axis are pattern structure: the rule is statistics-free.
		root = 0
		bestDepth := 0
		for e := 1; e < pat.N(); e++ {
			if pat.Axis[e] != pattern.Descendant {
				continue
			}
			d := 0
			for u := e; u != 0; u = pat.Parent[u] {
				d++
			}
			if d > bestDepth {
				bestDepth, root = d, pat.Parent[e]
			}
		}
	}
	var pl gplan
	b.subtree(root, pattern.NoNode, &pl)
	return &Result{
		Plan:      pl.node,
		Cost:      pl.cost,
		Algorithm: "Greedy",
		Counters:  b.counters,
	}
}

// alloc hands out one operator from the backing slice.
func (b *greedyBuilder) alloc() *plan.Node {
	b.nodes = b.nodes[:len(b.nodes)+1]
	return &b.nodes[len(b.nodes)-1]
}

// addSub builds the subtree entered from v through c and files it in the
// current frame's scratch range with its ranking key.
func (b *greedyBuilder) addSub(v, c int) {
	slot := b.top
	b.top++
	b.subtree(c, v, &b.pool[slot]) // uses slots above the reservation
	key := b.pool[slot].score
	e := c
	if v != 0 && b.pat.Parent[v] == c {
		e = v
	}
	if b.pat.Axis[e] == pattern.Descendant {
		key *= greedyDescPenalty
	}
	b.keys[slot], b.taken[slot] = key, false
}

// subtree assembles the greedy plan for the sub-pattern reachable from v
// without crossing `from`, producing output ordered by v and written into
// *out (pointer discipline keeps 48-byte gplan copies off the hot path).
// Each directed edge is visited exactly once, so no memoisation is needed.
func (b *greedyBuilder) subtree(v, from int, out *gplan) {
	pat, sig := b.pat, &b.sig
	b.counters.StatusesGenerated++
	// The backing slice is freshly zeroed, so nodes are written field by
	// field rather than via whole-struct literals (which would re-copy the
	// zero fields).
	leaf := b.alloc()
	leaf.Op = plan.OpIndexScan
	leaf.PatternNode = v
	leaf.OrderedBy = v
	leaf.ValueIndex = sig.probe[v]
	leaf.EstCard = sig.nodeCard[v]
	leaf.EstCost = sig.leafCost[v]
	*out = gplan{
		node:  leaf,
		cost:  leaf.EstCost,
		card:  leaf.EstCard,
		score: sig.score[v],
		empty: sig.scanCard[v] == 0,
	}

	// Build each adjacent subtree (parent first, then children — pattern
	// order) and its ranking key.
	base := b.top
	if v != 0 && pat.Parent[v] != from {
		b.addSub(v, pat.Parent[v])
	}
	for c := 1; c < pat.N(); c++ {
		if pat.Parent[c] == v && c != from {
			b.addSub(v, c)
		}
	}
	if b.top == base {
		return
	}
	b.counters.StatusesExpanded++

	// The very last join of the root frame produces the query result: when
	// the pattern leaves the output order free, that join may use whichever
	// Stack-Tree orientation is cheaper — nothing downstream consumes its
	// order. (FP gets the same freedom by trying every root.)
	free := from == pattern.NoNode && pat.OrderBy == pattern.NoNode
	for k := base; k < b.top; k++ {
		pick := -1
		if out.empty {
			// Early termination: the accumulated intermediate is provably
			// empty, every further join yields zero rows — stop ranking and
			// attach the rest in pattern order.
			for i := base; i < b.top; i++ {
				if !b.taken[i] {
					pick = i
					break
				}
			}
		} else {
			for i := base; i < b.top; i++ {
				if !b.taken[i] && (pick < 0 || b.keys[i] < b.keys[pick]) {
					pick = i
				}
			}
		}
		b.taken[pick] = true
		b.counters.PlansConsidered++
		b.join(v, out, &b.pool[pick], free && k == b.top-1)
	}
	b.top = base
}

// join attaches one child subtree to the accumulator, keeping the output
// ordered by v: Stack-Tree-Anc when v is the edge's ancestor endpoint,
// Stack-Tree-Desc when it is the descendant (exactly FP's move set). A
// flexible join — the root frame's last join on a free-order pattern — is
// released from the ordered-by-v obligation and takes whichever orientation
// the cost model prefers.
func (b *greedyBuilder) join(v int, acc, sub *gplan, flexible bool) {
	pat, model := b.pat, b.model
	c := sub.node.OrderedBy
	// Edge ids are the lower endpoint: edge v when c is v's parent, edge c
	// when v is c's.
	e := c
	if v != 0 && pat.Parent[v] == c {
		e = v
	}
	// Orient the inputs: anc/desc are the ancestor- and descendant-side
	// subtrees of the edge, regardless of which one holds the accumulator.
	anc, desc, ancID, descID := acc, sub, v, c
	if e != c {
		anc, desc, ancID, descID = sub, acc, c, v
	}
	cardAB := anc.card * desc.card * b.sig.edgeSel[e]
	var stepCost float64
	useDesc := descID == v
	if flexible {
		ac := model.StackTreeAnc(anc.card, desc.card, cardAB)
		dc := model.StackTreeDesc(anc.card, desc.card, cardAB)
		useDesc, stepCost = dc < ac, ac
		if useDesc {
			stepCost = dc
		}
	} else if useDesc {
		stepCost = model.StackTreeDesc(anc.card, desc.card, cardAB)
	} else {
		stepCost = model.StackTreeAnc(anc.card, desc.card, cardAB)
	}
	total := acc.cost + sub.cost + stepCost
	algo, ordered := plan.AlgoAnc, ancID
	if useDesc {
		algo, ordered = plan.AlgoDesc, descID
	}
	j := b.alloc()
	j.Op = plan.OpStructuralJoin
	j.Left = anc.node
	j.Right = desc.node
	j.AncNode = ancID
	j.DescNode = descID
	j.Axis = pat.Axis[e]
	j.Algo = algo
	j.OrderedBy = ordered
	j.EstCard = cardAB
	j.EstCost = total
	// Fold the joined subtree back into the accumulator in place.
	acc.node = j
	acc.cost = total
	acc.card = cardAB
	if sub.score < acc.score {
		acc.score = sub.score
	}
	acc.empty = acc.empty || sub.empty
}
