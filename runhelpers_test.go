package sjos

import "context"

// Test-local conveniences over Run, replacing the removed Execute* wrappers:
// the tests below exercise the Run API exclusively, these just keep the
// call sites compact.

func execAll(db *Database, pat *Pattern, p *Plan) ([]Match, ExecStats, error) {
	res, err := db.Run(context.Background(), pat, p, RunOptions{})
	if err != nil {
		return nil, ExecStats{}, err
	}
	return res.Matches, res.Stats, nil
}

func execCount(db *Database, pat *Pattern, p *Plan) (int, ExecStats, error) {
	res, err := db.Run(context.Background(), pat, p, RunOptions{CountOnly: true})
	if err != nil {
		return 0, ExecStats{}, err
	}
	return res.Count, res.Stats, nil
}

func execLimit(db *Database, pat *Pattern, p *Plan, n int) ([]Match, ExecStats, error) {
	if n <= 0 {
		return []Match{}, ExecStats{}, nil
	}
	res, err := db.Run(context.Background(), pat, p, RunOptions{ExecOptions: ExecOptions{Limit: n}})
	if err != nil {
		return nil, ExecStats{}, err
	}
	return res.Matches, res.Stats, nil
}

func execParallel(db *Database, pat *Pattern, p *Plan, k int) ([]Match, ExecStats, error) {
	if k <= 0 {
		k = -1
	}
	res, err := db.Run(context.Background(), pat, p, RunOptions{Workers: k})
	if err != nil {
		return nil, ExecStats{}, err
	}
	return res.Matches, res.Stats, nil
}

func execParallelCount(db *Database, pat *Pattern, p *Plan, k int) (int, ExecStats, error) {
	if k <= 0 {
		k = -1
	}
	res, err := db.Run(context.Background(), pat, p, RunOptions{Workers: k, CountOnly: true})
	if err != nil {
		return 0, ExecStats{}, err
	}
	return res.Count, res.Stats, nil
}
