package plan

import (
	"strings"
	"testing"

	"sjos/internal/pattern"
)

// testPattern builds //a[//b/c]//d — nodes a=0 b=1 c=2 d=3,
// edges: (0,1) desc, (1,2) child, (0,3) desc.
func testPattern() *pattern.Pattern {
	return pattern.MustParse("//a[.//b/c]//d")
}

// pipelinedPlan builds ((a ⋈ b) ⋈ c) ⋈ d without sorts:
// join a//b with Anc (ordered by a)... then we need order by b for b/c.
// Instead: join b/c first (Anc: ordered by b), join a//(bc) (Anc: by a),
// then a//d (Anc: by a).
func pipelinedPlan() *Node {
	bc := NewJoin(NewIndexScan(1), NewIndexScan(2), 1, 2, pattern.Child, AlgoAnc)
	abc := NewJoin(NewIndexScan(0), bc, 0, 1, pattern.Descendant, AlgoAnc)
	return NewJoin(abc, NewIndexScan(3), 0, 3, pattern.Descendant, AlgoAnc)
}

func TestValidateAcceptsGoodPlan(t *testing.T) {
	p := testPattern()
	n := pipelinedPlan()
	if err := n.Validate(p, false); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if !n.FullyPipelined() {
		t.Error("plan has no sorts, should be fully pipelined")
	}
	if n.Joins() != 3 || n.Sorts() != 0 {
		t.Errorf("Joins=%d Sorts=%d", n.Joins(), n.Sorts())
	}
	if n.Columns() != 0b1111 {
		t.Errorf("Columns = %b", n.Columns())
	}
}

func TestValidateRejectsBadOrdering(t *testing.T) {
	p := testPattern()
	// a//b with Desc output (ordered by b), then join (ab)//d requires
	// order by a — broken.
	ab := NewJoin(NewIndexScan(0), NewIndexScan(1), 0, 1, pattern.Descendant, AlgoDesc)
	bc := NewJoin(ab, NewIndexScan(2), 1, 2, pattern.Child, AlgoDesc)
	bad := NewJoin(bc, NewIndexScan(3), 0, 3, pattern.Descendant, AlgoDesc)
	if err := bad.Validate(p, false); err == nil {
		t.Fatal("plan with wrong input ordering accepted")
	}
	// Fixing with a sort makes it valid.
	fixed := NewJoin(NewSort(bc, 0), NewIndexScan(3), 0, 3, pattern.Descendant, AlgoDesc)
	if err := fixed.Validate(p, false); err != nil {
		t.Fatalf("sorted plan rejected: %v", err)
	}
	if fixed.FullyPipelined() {
		t.Error("plan with sort claims fully pipelined")
	}
	if fixed.Sorts() != 1 {
		t.Errorf("Sorts = %d", fixed.Sorts())
	}
}

func TestValidateRejectsStructuralMistakes(t *testing.T) {
	p := testPattern()

	// Missing edge: joins only 2 of 3 edges.
	bc := NewJoin(NewIndexScan(1), NewIndexScan(2), 1, 2, pattern.Child, AlgoAnc)
	abc := NewJoin(NewIndexScan(0), bc, 0, 1, pattern.Descendant, AlgoAnc)
	if err := abc.Validate(p, false); err == nil {
		t.Error("incomplete plan accepted")
	}

	// Join on a non-edge (b,d).
	bd := NewJoin(NewIndexScan(1), NewIndexScan(3), 1, 3, pattern.Descendant, AlgoDesc)
	if err := bd.Validate(p, false); err == nil {
		t.Error("join on non-edge accepted")
	}

	// Wrong axis on edge (1,2): pattern says Child.
	wrongAxis := NewJoin(NewIndexScan(1), NewIndexScan(2), 1, 2, pattern.Descendant, AlgoAnc)
	full := NewJoin(NewJoin(NewIndexScan(0), wrongAxis, 0, 1, pattern.Descendant, AlgoAnc),
		NewIndexScan(3), 0, 3, pattern.Descendant, AlgoAnc)
	if err := full.Validate(p, false); err == nil {
		t.Error("wrong axis accepted")
	}

	// Swapped ancestor/descendant.
	swapped := NewJoin(NewIndexScan(2), NewIndexScan(1), 2, 1, pattern.Child, AlgoAnc)
	if err := swapped.validate(p, map[int]bool{}); err == nil {
		t.Error("swapped edge direction accepted")
	}
}

func TestValidateRequireOrder(t *testing.T) {
	p := pattern.MustParse("//a#[.//b/c]//d")
	n := pipelinedPlan() // ordered by a = node 0
	if err := n.Validate(p, true); err != nil {
		t.Fatalf("order-satisfying plan rejected: %v", err)
	}
	// A Desc top join is ordered by d, violating the required order.
	bc := NewJoin(NewIndexScan(1), NewIndexScan(2), 1, 2, pattern.Child, AlgoAnc)
	abc := NewJoin(NewIndexScan(0), bc, 0, 1, pattern.Descendant, AlgoAnc)
	byD := NewJoin(abc, NewIndexScan(3), 0, 3, pattern.Descendant, AlgoDesc)
	if err := byD.Validate(p, true); err == nil {
		t.Fatal("order-violating plan accepted with requireOrder")
	}
	if err := byD.Validate(p, false); err != nil {
		t.Fatalf("order-violating plan should pass without requireOrder: %v", err)
	}
}

func TestLeftDeep(t *testing.T) {
	// pipelinedPlan grows one intermediate at a time — left-deep in the
	// paper's status sense (a single growing cluster), even though the
	// composite sits on the right of the second join.
	if !pipelinedPlan().LeftDeep() {
		t.Error("single-growing-cluster plan should be left-deep")
	}
	// A genuinely bushy plan joins two composites: {a,d} ⋈ {b,c}.
	bc := NewJoin(NewIndexScan(1), NewIndexScan(2), 1, 2, pattern.Child, AlgoAnc)
	ad := NewJoin(NewIndexScan(0), NewIndexScan(3), 0, 3, pattern.Descendant, AlgoAnc)
	bushy := NewJoin(ad, bc, 0, 1, pattern.Descendant, AlgoAnc)
	if err := bushy.Validate(testPattern(), false); err != nil {
		t.Fatalf("bushy plan invalid: %v", err)
	}
	if bushy.LeftDeep() {
		t.Error("bushy plan classified left-deep")
	}
	// Build a genuinely left-deep plan: ((a⋈b)⋈c)⋈d with sorts.
	ab := NewJoin(NewIndexScan(0), NewIndexScan(1), 0, 1, pattern.Descendant, AlgoDesc)
	abc := NewJoin(ab, NewIndexScan(2), 1, 2, pattern.Child, AlgoDesc)
	abcd := NewJoin(NewSort(abc, 0), NewIndexScan(3), 0, 3, pattern.Descendant, AlgoDesc)
	if !abcd.LeftDeep() {
		t.Error("left-deep plan not recognised")
	}
}

func TestFormat(t *testing.T) {
	p := testPattern()
	s := pipelinedPlan().Format(p)
	for _, want := range []string{"STJ-Anc", "IndexScan a($0)", "IndexScan d($3)", "//"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
}

func TestAlgoString(t *testing.T) {
	if AlgoDesc.String() != "STJ-Desc" || AlgoAnc.String() != "STJ-Anc" {
		t.Fatal("Algo.String mismatch")
	}
}
