// Package core implements the paper's contribution: cost-based structural
// join order selection for XML tree-pattern queries (§3).
//
// The search space is the status graph of §3.1.1. A status captures an
// intermediate stage of evaluation: the pattern nodes are partitioned into
// clusters (connected sub-patterns already joined), and each cluster's
// intermediate result is ordered by the document position of exactly one of
// its nodes (a consequence of using Stack-Tree joins, whose outputs are
// ordered by one of the join nodes). A move evaluates one remaining pattern
// edge with a Stack-Tree join, optionally followed by a sort of the move's
// output; it requires both input clusters to be ordered by the edge's
// endpoints.
//
// Five optimization algorithms search this space:
//
//	DP      — exhaustive level-synchronous dynamic programming (§3.1)
//	DPP     — dynamic programming with pruning: best-first expansion on
//	          Cost+ubCost, dead-status pruning against the best full plan,
//	          and the Lookahead Rule that refuses to generate deadend
//	          statuses (§3.2); DPP′ disables the lookahead
//	DPAP-EB — DPP plus a per-level expansion bound Te (§3.3.1)
//	DPAP-LD — DPP restricted to left-deep statuses: a single growing
//	          cluster (§3.3.2)
//	FP      — fully-pipelined plans only: no sorts anywhere, found by
//	          re-rooting the pattern and enumerating child join orders
//	          (§3.4); guaranteed to return the cheapest non-blocking plan
//
// All of them produce a plan.Node tree executable by internal/exec, plus
// search statistics (number of alternative plans considered, statuses
// generated/expanded) matching the measurements reported in the paper's
// Table 2.
package core
