package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestDiskFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := CreateDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var p Page
		p[0] = byte(i + 1)
		p[PageSize-1] = byte(i + 100)
		if err := d.WritePage(PageID(i), &p); err != nil {
			t.Fatal(err)
		}
	}
	if d.NumPages() != 5 {
		t.Fatalf("NumPages = %d", d.NumPages())
	}
	var p Page
	if err := d.ReadPage(3, &p); err != nil {
		t.Fatal(err)
	}
	if p[0] != 4 || p[PageSize-1] != 103 {
		t.Fatalf("page 3 content = %d/%d", p[0], p[PageSize-1])
	}
	if err := d.ReadPage(9, &p); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("read past end: %v", err)
	}
	if err := d.WritePage(7, &p); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("write with hole: %v", err)
	}
	if d.Reads() != 1 || d.Writes() != 5 {
		t.Fatalf("Reads/Writes = %d/%d", d.Reads(), d.Writes())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskFilePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	d, err := CreateDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var p Page
	copy(p[:], "hello pages")
	if err := d.WritePage(0, &p); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 1 {
		t.Fatalf("reopened NumPages = %d", d2.NumPages())
	}
	var q Page
	if err := d2.ReadPage(0, &q); err != nil {
		t.Fatal(err)
	}
	if string(q[:11]) != "hello pages" {
		t.Fatalf("content lost: %q", q[:11])
	}
}

func TestOpenDiskFileErrors(t *testing.T) {
	if _, err := OpenDiskFile(filepath.Join(t.TempDir(), "absent.db")); err == nil {
		t.Fatal("opening a missing file should fail")
	}
	// Misaligned file.
	path := filepath.Join(t.TempDir(), "bad.db")
	if err := os.WriteFile(path, []byte("not a page"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskFile(path); err == nil {
		t.Fatal("misaligned file accepted")
	}
}

func TestBufferPoolOverDiskFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pooled.db")
	d, err := CreateDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 10; i++ {
		var p Page
		p[PageHeaderSize] = byte(i)
		SealPage(PageID(i), &p)
		if err := d.WritePage(PageID(i), &p); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(d, 3)
	for round := 0; round < 2; round++ {
		for i := 0; i < 10; i++ {
			pg, err := bp.Get(PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			if pg[PageHeaderSize] != byte(i) {
				t.Fatalf("page %d content %d", i, pg[PageHeaderSize])
			}
			bp.Unpin(PageID(i), false)
		}
	}
	if bp.Stats().Evicted == 0 {
		t.Fatal("expected evictions")
	}
}
