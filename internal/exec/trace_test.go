package exec

import (
	"strings"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/plan"
)

func TestTraceBuilderSerial(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	p := plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	p.EstCard = 42
	tb, err := NewTraceBuilder(pat, p)
	if err != nil {
		t.Fatal(err)
	}
	op, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(newCtx(t, doc), op)
	if err != nil {
		t.Fatal(err)
	}
	tr := tb.Trace()
	if tr.Op != "STJ-Desc" {
		t.Fatalf("root op = %q", tr.Op)
	}
	if tr.Rows != int64(n) {
		t.Fatalf("root rows = %d, want %d", tr.Rows, n)
	}
	// Rows + one end-of-stream call in a full drain.
	if tr.NextCalls != int64(n)+1 {
		t.Fatalf("root next calls = %d, want %d", tr.NextCalls, n+1)
	}
	if tr.Clones != 1 {
		t.Fatalf("root clones = %d, want 1", tr.Clones)
	}
	if tr.EstRows != 42 {
		t.Fatalf("root est = %v, want 42", tr.EstRows)
	}
	if len(tr.Children) != 2 {
		t.Fatalf("%d children, want 2", len(tr.Children))
	}
	mgr, _ := doc.LookupTag("manager")
	nm, _ := doc.LookupTag("name")
	if tr.Children[0].Rows != int64(doc.TagCount(mgr)) || tr.Children[1].Rows != int64(doc.TagCount(nm)) {
		t.Fatalf("leaf rows %d/%d, want %d/%d", tr.Children[0].Rows, tr.Children[1].Rows,
			doc.TagCount(mgr), doc.TagCount(nm))
	}
	for _, c := range tr.Children {
		if c.Op != "IndexScan" {
			t.Fatalf("child op = %q", c.Op)
		}
	}
	out := tr.Format()
	for _, want := range []string{"STJ-Desc", "IndexScan", "manager($0)", "name($1)", "est≈42", "actual=", "calls=", "time="} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

// TestTraceBuilderMultipleClones simulates the partition-parallel driver:
// several clones built from one TraceBuilder accumulate into a single
// plan-shaped trace.
func TestTraceBuilderMultipleClones(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager//name")
	p := plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoDesc)
	tb, err := NewTraceBuilder(pat, p)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 3; i++ {
		op, err := tb.Build()
		if err != nil {
			t.Fatal(err)
		}
		n, err := Count(newCtx(t, doc), op)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	tr := tb.Trace()
	if tr.Clones != 3 {
		t.Fatalf("clones = %d, want 3", tr.Clones)
	}
	if tr.Rows != int64(total) {
		t.Fatalf("rows = %d, want %d summed over clones", tr.Rows, total)
	}
}

func TestTraceBuilderMatchesPlainExecution(t *testing.T) {
	doc := personnelDoc(t)
	pat := pattern.MustParse("//manager[.//employee]//name")
	me := plan.NewJoin(plan.NewIndexScan(0), plan.NewIndexScan(1), 0, 1, pattern.Descendant, plan.AlgoAnc)
	men := plan.NewJoin(me, plan.NewIndexScan(2), 0, 2, pattern.Descendant, plan.AlgoAnc)
	plain, err := RunCount(newCtx(t, doc), pat, men)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTraceBuilder(pat, men)
	if err != nil {
		t.Fatal(err)
	}
	op, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(newCtx(t, doc), op)
	if err != nil {
		t.Fatal(err)
	}
	if n != plain {
		t.Fatalf("traced count %d, plain %d", n, plain)
	}
	if tr := tb.Trace(); tr.Rows != int64(plain) {
		t.Fatalf("trace rows %d, want %d", tr.Rows, plain)
	}
}

func TestTraceBuilderRejectsBadPlans(t *testing.T) {
	pat := pattern.MustParse("//a//b")
	if _, err := NewTraceBuilder(pat, &plan.Node{Op: plan.Op(99)}); err == nil {
		t.Fatal("unknown operator accepted")
	}
}

func TestTracedFlushOnce(t *testing.T) {
	in := newScriptedOp([]Tuple{{1}, {2}}, -1, nil)
	acc := &traceAcc{node: plan.NewIndexScan(0)}
	tr := &traced{inner: in, acc: acc}
	if err := tr.Open(newCtx(t, personnelDoc(t))); err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok, err := tr.Next(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
	}
	tr.Close()
	tr.Close() // double Close must not double-count
	if got := acc.rows.Load(); got != 2 {
		t.Fatalf("acc rows = %d, want 2", got)
	}
	if got := acc.clones.Load(); got != 1 {
		t.Fatalf("acc clones = %d, want 1", got)
	}
}
