package pattern

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse builds a Pattern from a small XPath-like twig syntax:
//
//	path       := ("/" | "//")? step ( ("/" | "//") step )*
//	step       := name marker? predicate*
//	predicate  := "[" ( path | valuetest ) "]"
//	valuetest  := ("." | "@" name) op literal
//	op         := "=" | "!=" | "<" | "<=" | ">" | ">=" | "~"   ("~" = contains)
//	literal    := '"' chars '"' | bareword
//	marker     := "#"    (at most one; requests the result be ordered by
//	                      this node's document position)
//
// Examples:
//
//	//manager[.//employee/name]//department/name
//	/db/item[@id = "42"]/price
//	//manager#[employee][department]
//
// A leading "/" or "//" is permitted and ignored for the first step (the
// pattern root is simply the first named node). Attribute tests "@x op v"
// become child pattern nodes with tag "@x", matching how the document model
// stores attributes.
func Parse(s string) (*Pattern, error) {
	p := &parser{in: s}
	pat, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("pattern: parse %q: %w", s, err)
	}
	return pat, nil
}

// MustParse is Parse that panics on error; for tests and examples with
// static pattern strings.
func MustParse(s string) *Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	in  string
	pos int
	pat Pattern
}

func (p *parser) parse() (*Pattern, error) {
	p.pat = Pattern{OrderBy: NoNode}
	if _, err := p.path(NoNode); err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("unexpected %q at offset %d", p.rest(), p.pos)
	}
	if err := p.pat.Validate(); err != nil {
		return nil, err
	}
	return &p.pat, nil
}

// path parses a step chain attached under parent (NoNode for the pattern
// root) and returns the index of the chain's last node.
func (p *parser) path(parent int) (int, error) {
	cur := parent
	first := true
	for {
		p.skipSpace()
		ax := Child
		switch {
		case p.eat("//"):
			ax = Descendant
		case p.eat("/"):
		case first:
			// A relative first step is fine.
		default:
			if cur == parent {
				return 0, fmt.Errorf("expected step at offset %d", p.pos)
			}
			return cur, nil
		}
		p.skipSpace()
		name := p.name()
		if name == "" {
			if first {
				return 0, fmt.Errorf("expected element name at offset %d", p.pos)
			}
			return cur, nil
		}
		idx, err := p.addNode(cur, name, ax, first && parent == NoNode)
		if err != nil {
			return 0, err
		}
		if p.eat("#") {
			if p.pat.OrderBy != NoNode {
				return 0, fmt.Errorf("duplicate order-by marker at offset %d", p.pos)
			}
			p.pat.OrderBy = idx
		}
		for {
			p.skipSpace()
			if !p.eat("[") {
				break
			}
			if err := p.predicate(idx); err != nil {
				return 0, err
			}
			p.skipSpace()
			if !p.eat("]") {
				return 0, fmt.Errorf("expected ] at offset %d", p.pos)
			}
		}
		cur = idx
		first = false
	}
}

func (p *parser) addNode(parent int, tag string, ax Axis, isRoot bool) (int, error) {
	if isRoot {
		if len(p.pat.Nodes) != 0 {
			return 0, fmt.Errorf("internal: duplicate root")
		}
		p.pat.Nodes = append(p.pat.Nodes, Node{Tag: tag})
		p.pat.Parent = append(p.pat.Parent, NoNode)
		p.pat.Axis = append(p.pat.Axis, Child)
		return 0, nil
	}
	p.pat.Nodes = append(p.pat.Nodes, Node{Tag: tag})
	p.pat.Parent = append(p.pat.Parent, parent)
	p.pat.Axis = append(p.pat.Axis, ax)
	return len(p.pat.Nodes) - 1, nil
}

func (p *parser) predicate(owner int) error {
	p.skipSpace()
	switch {
	case p.peek("./") || p.peek(".//"):
		p.eat(".") // ".//x" and "./x" are the same as "//x" and "/x" here
		_, err := p.path(owner)
		return err
	case p.peek("."):
		p.eat(".")
		return p.valueTest(owner)
	case p.peek("@"):
		p.eat("@")
		name := p.name()
		if name == "" {
			return fmt.Errorf("expected attribute name at offset %d", p.pos)
		}
		idx, err := p.addNode(owner, "@"+name, Child, false)
		if err != nil {
			return err
		}
		p.skipSpace()
		if p.peekOp() == CmpNone {
			return nil // existence test only
		}
		return p.valueTest(idx)
	default:
		last, err := p.path(owner)
		if err != nil {
			return err
		}
		// A trailing comparison applies to the predicate path's last
		// node: [salary >= 40000] ≡ [salary[. >= 40000]].
		p.skipSpace()
		if p.peekOp() != CmpNone {
			return p.valueTest(last)
		}
		return nil
	}
}

func (p *parser) valueTest(owner int) error {
	p.skipSpace()
	op := p.peekOp()
	if op == CmpNone {
		return fmt.Errorf("expected comparison operator at offset %d", p.pos)
	}
	p.eatOp(op)
	p.skipSpace()
	lit, err := p.literal()
	if err != nil {
		return err
	}
	if p.pat.Nodes[owner].Op != CmpNone {
		return fmt.Errorf("node %d already has a value predicate", owner)
	}
	p.pat.Nodes[owner].Op = op
	p.pat.Nodes[owner].Value = lit
	return nil
}

func (p *parser) literal() (string, error) {
	if p.eat(`"`) {
		end := strings.IndexByte(p.in[p.pos:], '"')
		if end < 0 {
			return "", fmt.Errorf("unterminated string literal at offset %d", p.pos)
		}
		s := p.in[p.pos : p.pos+end]
		p.pos += end + 1
		return s, nil
	}
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == ']' || c == '[' || c == ' ' || c == '/' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected literal at offset %d", p.pos)
	}
	return p.in[start:p.pos], nil
}

func (p *parser) peekOp() CmpOp {
	r := p.in[p.pos:]
	switch {
	case strings.HasPrefix(r, "!="):
		return CmpNe
	case strings.HasPrefix(r, "<="):
		return CmpLe
	case strings.HasPrefix(r, ">="):
		return CmpGe
	case strings.HasPrefix(r, "="):
		return CmpEq
	case strings.HasPrefix(r, "<"):
		return CmpLt
	case strings.HasPrefix(r, ">"):
		return CmpGt
	case strings.HasPrefix(r, "~"):
		return CmpContains
	}
	return CmpNone
}

func (p *parser) eatOp(op CmpOp) {
	switch op {
	case CmpNe, CmpLe, CmpGe:
		p.pos += 2
	default:
		p.pos++
	}
}

func (p *parser) name() string {
	start := p.pos
	for p.pos < len(p.in) {
		r := rune(p.in[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' && p.pos > start {
			p.pos++
			continue
		}
		break
	}
	return p.in[start:p.pos]
}

func (p *parser) eat(tok string) bool {
	if strings.HasPrefix(p.in[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) peek(tok string) bool { return strings.HasPrefix(p.in[p.pos:], tok) }

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) rest() string {
	r := p.in[p.pos:]
	if len(r) > 12 {
		r = r[:12] + "…"
	}
	return r
}
