package cost

import (
	"sort"
	"time"
)

// Calibrate measures the four cost factors with micro-benchmarks that mimic
// the corresponding physical operations (posting traversal, comparison
// sort, buffered list append+scan, stack push/pop), returning a Model in
// nanoseconds per unit. It is intentionally quick (a few milliseconds) and
// approximate: the optimizers only need the *ratios* to be sane.
//
// The paper makes the same point — "the specific constants used in the
// linear functions are dependent on the system implementation and machine
// characteristics".
func Calibrate() Model {
	const n = 1 << 15
	m := Model{}

	// f_I: sequential fetch of n postings with a record decode each.
	postings := make([]uint64, n)
	for i := range postings {
		postings[i] = uint64(i) * 2654435761
	}
	start := time.Now()
	var sink uint64
	for _, p := range postings {
		sink += p >> 7 // stand-in for record decode
	}
	m.FI = perUnit(time.Since(start), n)

	// f_s: comparison sort of n items, normalised by n·log₂n.
	vals := make([]int, n)
	for i := range vals {
		vals[i] = int(postings[i])
	}
	start = time.Now()
	sort.Ints(vals)
	m.FS = perUnit(time.Since(start), n*15) // log₂(2¹⁵) = 15

	// f_IO: append n pairs to a buffered list and scan them back.
	type pair struct{ a, b uint32 }
	start = time.Now()
	buf := make([]pair, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, pair{uint32(i), uint32(i)})
	}
	for _, p := range buf {
		sink += uint64(p.a)
	}
	m.FIO = perUnit(time.Since(start), n)

	// f_st: n stack pushes and pops.
	stack := make([]uint32, 0, 64)
	start = time.Now()
	for i := 0; i < n; i++ {
		stack = append(stack, uint32(i))
		if len(stack) > 32 {
			stack = stack[:0]
		}
	}
	m.FST = perUnit(time.Since(start), n)

	// f_V: value-probe posting — varint-style decode plus a merge compare.
	start = time.Now()
	var acc uint64
	for _, p := range postings {
		v := p
		for v >= 0x80 { // stand-in for uvarint delta decode
			v >>= 7
		}
		acc += v
		if acc > sink {
			sink = acc
		}
	}
	m.FV = perUnit(time.Since(start), n)

	// f_sc: streaming one tuple through a merge step (compare + copy).
	start = time.Now()
	var prev uint64
	for _, p := range postings {
		if p > prev {
			prev = p
		}
		sink += prev
	}
	m.FSC = perUnit(time.Since(start), n)

	_ = sink
	// Guard against timer quantisation producing zeros.
	def := DefaultModel()
	if m.FI <= 0 {
		m.FI = def.FI
	}
	if m.FS <= 0 {
		m.FS = def.FS
	}
	if m.FIO <= 0 {
		m.FIO = def.FIO
	}
	if m.FST <= 0 {
		m.FST = def.FST
	}
	if m.FSC <= 0 {
		m.FSC = def.FSC
	}
	if m.FV <= 0 {
		m.FV = def.FV
	}
	return m
}

func perUnit(d time.Duration, units int) float64 {
	return float64(d.Nanoseconds()) / float64(units)
}
