// Package exec is the physical query executor: a Volcano-style iterator
// interpreter for the plans of internal/plan, over the stores of
// internal/storage.
//
// It implements the operator set the paper's plans are made of:
//
//   - IndexScan — candidate retrieval for one pattern node through the
//     element-tag index (with value predicates applied on the fly),
//   - Stack-Tree-Desc and Stack-Tree-Anc structural joins (Al-Khalifa et
//     al., ICDE 2002), generalised from node lists to tuple streams the way
//     Timber evaluates multi-edge patterns: each input is a stream of
//     partial matches ordered by the document position of its join column,
//   - Sort — the only blocking operator; it materialises its input.
//
// Fully-pipelined plans therefore genuinely stream: the first result tuple
// is produced before the inputs are exhausted, and no intermediate result
// is ever materialised.
package exec

import (
	"context"
	"fmt"

	"sjos/internal/storage"
	"sjos/internal/xmltree"
)

// Tuple is one partial match: a vector of document nodes. Which pattern
// node each slot binds is described by the operator's Schema. Tuples
// returned by Next are immutable and may be retained by the caller.
type Tuple []xmltree.NodeID

// Schema maps pattern nodes to tuple slots.
type Schema struct {
	cols []int       // slot -> pattern node
	pos  map[int]int // pattern node -> slot
}

// NewSchema builds a schema with the given pattern-node-per-slot layout.
func NewSchema(cols ...int) *Schema {
	s := &Schema{cols: cols, pos: make(map[int]int, len(cols))}
	for i, c := range cols {
		s.pos[c] = i
	}
	return s
}

// Concat returns the schema of a join output: left slots then right slots.
func (s *Schema) Concat(t *Schema) *Schema {
	return NewSchema(append(append([]int{}, s.cols...), t.cols...)...)
}

// Width returns the number of slots.
func (s *Schema) Width() int { return len(s.cols) }

// Col returns the slot holding the given pattern node.
func (s *Schema) Col(patternNode int) (int, bool) {
	c, ok := s.pos[patternNode]
	return c, ok
}

// Cols returns the slot layout (pattern node per slot). Callers must not
// modify the returned slice.
func (s *Schema) Cols() []int { return s.cols }

// Stats counts the physical work done during one execution; each counter
// corresponds to a term of the paper's cost model.
type Stats struct {
	ScannedTuples int // index-scan outputs (f_I term)
	StackOps      int // pushes + pops in Stack-Tree joins (f_st term)
	BufferedPairs int // pairs written to Anc self/inherit lists (f_IO term)
	SortedTuples  int // tuples materialised by Sort operators (f_s term)
	OutputTuples  int // tuples produced by the plan root
	Batches       int // root-level NextBatch calls on the batched path
	SkippedTuples int // index postings bypassed by skip-ahead seeks
	ValueProbes   int // value-index probes opened (predicate pushdown leaves)
}

// Add accumulates o's counters into s. The partition-parallel driver uses
// it to merge per-worker statistics into the shared totals; because the
// partitions tile the document, the merged counters are comparable to a
// serial execution's.
func (s *Stats) Add(o Stats) {
	s.ScannedTuples += o.ScannedTuples
	s.StackOps += o.StackOps
	s.BufferedPairs += o.BufferedPairs
	s.SortedTuples += o.SortedTuples
	s.OutputTuples += o.OutputTuples
	s.Batches += o.Batches
	s.SkippedTuples += o.SkippedTuples
	s.ValueProbes += o.ValueProbes
}

// Context carries the execution environment shared by all operators of one
// plan.
type Context struct {
	Doc   *xmltree.Document
	Store *storage.Store
	Stats Stats

	// Ctx, when non-nil, is threaded into the store's page reads so a
	// cancelled query aborts I/O waits (including buffer-pool retry
	// backoffs) instead of only being noticed at the next Interrupt poll.
	Ctx context.Context

	// Range, when non-nil, restricts every IndexScan to candidates whose
	// Start position lies in [Range.Lo, Range.Hi). The partition-parallel
	// driver runs one plan clone per disjoint range; nil (the default)
	// scans the whole document.
	Range *storage.Range

	// Interrupt, when non-nil, is polled periodically by long-running
	// operators; a non-nil result aborts the execution with that error.
	// The parallel driver points it at the worker context's Err so
	// cancelled queries stop scanning promptly.
	Interrupt func() error
}

// Operator is the Volcano iterator contract. Usage: Open, repeated Next
// until ok is false, Close. Operators are single-use.
type Operator interface {
	// Schema describes the operator's output layout; valid before Open.
	Schema() *Schema
	// Open prepares the operator (and its subtree) for iteration.
	Open(ctx *Context) error
	// Next returns the next output tuple; ok is false at end of stream.
	Next() (t Tuple, ok bool, err error)
	// Close releases resources; must be called exactly once after Open.
	Close() error
}

// Drain runs op to completion, returning all output tuples.
func Drain(ctx *Context, op Operator) ([]Tuple, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	var out []Tuple
	for {
		if len(out)&63 == 0 && ctx.Interrupt != nil {
			if err := ctx.Interrupt(); err != nil {
				op.Close()
				return nil, err
			}
		}
		t, ok, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	ctx.Stats.OutputTuples = len(out)
	return out, nil
}

// Count runs op to completion, returning only the output cardinality.
func Count(ctx *Context, op Operator) (int, error) {
	if err := op.Open(ctx); err != nil {
		return 0, err
	}
	n := 0
	for {
		if n&63 == 0 && ctx.Interrupt != nil {
			if err := ctx.Interrupt(); err != nil {
				op.Close()
				return 0, err
			}
		}
		_, ok, err := op.Next()
		if err != nil {
			op.Close()
			return 0, err
		}
		if !ok {
			break
		}
		n++
	}
	if err := op.Close(); err != nil {
		return 0, err
	}
	ctx.Stats.OutputTuples = n
	return n, nil
}

// errColumn builds the error for a pattern node missing from a schema; this
// indicates a malformed plan, which Build should have rejected.
func errColumn(patternNode int) error {
	return fmt.Errorf("exec: pattern node %d not present in input schema", patternNode)
}
