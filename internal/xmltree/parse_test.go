package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sampleXML = `<db>
  <manager id="1">alice
    <name>alice</name>
    <employee><name>bob</name></employee>
    <manager><department><name>tools</name></department></manager>
  </manager>
  <employee><name>dan</name></employee>
</db>`

func TestParseBasics(t *testing.T) {
	d, err := ParseString(sampleXML)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	mgr := mustTag(t, d, "manager")
	if got := d.TagCount(mgr); got != 2 {
		t.Errorf("manager count = %d, want 2", got)
	}
	// Attribute became a pseudo-element child.
	attr, ok := d.LookupTag("@id")
	if !ok {
		t.Fatal("@id pseudo-element missing")
	}
	a := d.NodesWithTag(attr)[0]
	if d.Value(a) != "1" {
		t.Errorf("@id value = %q, want 1", d.Value(a))
	}
	if d.Parent(a) != d.NodesWithTag(mgr)[0] {
		t.Error("@id not attached to manager")
	}
	// First text chunk captured as value.
	if v := d.Value(d.NodesWithTag(mgr)[0]); v != "alice" {
		t.Errorf("manager value = %q, want alice", v)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "<a><b></a></b>", "<a>", "text only"} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	d, err := ParseString(sampleXML)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s, err := SerializeString(d)
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	d2, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse: %v\nserialized: %s", err, s)
	}
	if !structurallyEqual(d, d2) {
		t.Fatalf("round trip not structurally identical:\n%s", s)
	}
}

// structurallyEqual compares two documents node by node (tag names, levels,
// relative order, values).
func structurallyEqual(a, b *Document) bool {
	if a.NumNodes() != b.NumNodes() {
		return false
	}
	for i := 0; i < a.NumNodes(); i++ {
		ai, bi := NodeID(i), NodeID(i)
		if a.TagName(a.Tag(ai)) != b.TagName(b.Tag(bi)) ||
			a.Level(ai) != b.Level(bi) ||
			a.Value(ai) != b.Value(bi) {
			return false
		}
	}
	return true
}

func TestSerializeRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tags := []string{"alpha", "beta", "gamma"}
	f := func(seed int64, size uint8) bool {
		d := RandomDocument(rand.New(rand.NewSource(seed)), int(size%50)+1, tags)
		s, err := SerializeString(d)
		if err != nil {
			return false
		}
		d2, err := ParseString(s)
		if err != nil {
			return false
		}
		return structurallyEqual(d, d2)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeEscaping(t *testing.T) {
	b := NewBuilder()
	b.Open("r", "a < b & c")
	b.Close()
	d := b.MustFinish()
	s, err := SerializeString(d)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(s, "a < b & c") {
		t.Fatalf("unescaped output: %s", s)
	}
	d2, err := ParseString(s)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d2.Value(0) != "a < b & c" {
		t.Fatalf("value = %q", d2.Value(0))
	}
}

func TestFold(t *testing.T) {
	d, err := ParseString(sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	base := d.NumNodes()
	for _, k := range []int{1, 2, 5, 10} {
		f := Fold(d, k)
		if k == 1 {
			if f != d {
				t.Error("Fold(d,1) should return d unchanged")
			}
			continue
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("fold %d: %v", k, err)
		}
		if got, want := f.NumNodes(), base*k+1; got != want {
			t.Errorf("fold %d: NumNodes = %d, want %d", k, got, want)
		}
		mgr := mustTag(t, d, "manager")
		fm, ok := f.LookupTag("manager")
		if !ok {
			t.Fatalf("fold %d: manager tag lost", k)
		}
		if got, want := f.TagCount(fm), d.TagCount(mgr)*k; got != want {
			t.Errorf("fold %d: manager count = %d, want %d", k, got, want)
		}
	}
}

// TestFoldDisjoint verifies the key property §4.3 relies on: copies occupy
// disjoint ranges, so cross-copy containment never holds.
func TestFoldDisjoint(t *testing.T) {
	d, _ := ParseString(sampleXML)
	f := Fold(d, 3)
	roots := f.Children(f.Root())
	if len(roots) != 3 {
		t.Fatalf("fold root has %d children, want 3", len(roots))
	}
	for i := 0; i < len(roots); i++ {
		for j := 0; j < len(roots); j++ {
			if i != j && f.IsAncestor(roots[i], roots[j]) {
				t.Fatalf("copies %d and %d overlap", i, j)
			}
		}
	}
}
