package xmltree

import (
	"fmt"
	"math"

	"sjos/internal/intern"
)

// forestRootEnd is the region end of an appendable forest's synthetic root.
// A merged document built in one shot (MergeDocuments) can close its root
// exactly, but an appendable forest grows: closing the root at the current
// high-water mark would force a rewrite of node 0's record on every append,
// racing concurrent readers of the shared column arrays and of the
// persisted root page. Instead the root's region is "everything" — the
// sentinel keeps containment trivially true for any member appended later —
// and the real position high-water mark lives in Document.maxPos.
const forestRootEnd = ^Pos(0)

// NewForest returns an empty appendable forest: just the synthetic root
// (MergedRootTag, level 0) with an open-ended region. Members are added with
// AppendMember; a forest with zero members matches no query pattern.
func NewForest() *Document {
	d := &Document{
		start:   []Pos{0},
		end:     []Pos{forestRootEnd},
		level:   []uint16{0},
		tag:     []TagID{0},
		parent:  []NodeID{InvalidNode},
		value:   []string{""},
		tagByNm: make(map[string]TagID),
	}
	rootTag := d.internTag(MergedRootTag)
	d.tag[0] = rootTag
	d.byTag[rootTag] = []NodeID{0}
	return d
}

// IsForest reports whether d is an appendable forest (built by NewForest /
// AppendMember) rather than a one-shot document.
func (d *Document) IsForest() bool {
	return len(d.end) > 0 && d.end[0] == forestRootEnd
}

// AppendMember returns a new forest version with member appended under the
// synthetic root, plus the span its nodes occupy. The input forest is not
// modified and stays valid: versions share backing arrays copy-on-write
// style (an append writes only indices past every older version's length),
// which makes a version swap O(columns) instead of O(nodes). The caller
// must serialize AppendMember calls and always append to the newest
// version — the ingestion layer's single-writer mutex guarantees both.
func AppendMember(f *Document, member *Document) (*Document, DocSpan, error) {
	if !f.IsForest() {
		return nil, DocSpan{}, fmt.Errorf("xmltree: AppendMember target is not a forest")
	}
	if member == nil || member.NumNodes() == 0 {
		return nil, DocSpan{}, fmt.Errorf("xmltree: AppendMember: member is empty")
	}
	if _, collides := member.LookupTag(MergedRootTag); collides {
		return nil, DocSpan{}, fmt.Errorf("xmltree: AppendMember: member uses the reserved root tag")
	}
	for _, lv := range member.level {
		if lv == math.MaxUint16 {
			return nil, DocSpan{}, &DepthOverflowError{Member: -1, Depth: int(lv)}
		}
	}

	n := member.NumNodes()
	nf := &Document{
		start:  f.start,
		end:    f.end,
		level:  f.level,
		tag:    f.tag,
		parent: f.parent,
		value:  f.value,
		tags:   f.tags,
		// The tag map and the postings outer slice are mutated per version
		// (interning, per-tag appends), so they are copied; the column
		// slices and inner postings only ever grow past older lengths.
		tagByNm: make(map[string]TagID, len(f.tagByNm)),
		byTag:   append([][]NodeID(nil), f.byTag...),
		maxPos:  f.maxPos,
		intern:  f.intern,
	}
	for name, t := range f.tagByNm {
		nf.tagByNm[name] = t
	}

	nodeOff := NodeID(len(f.start))
	posOff := f.maxPos + 1
	span := DocSpan{First: nodeOff, Nodes: n}

	remap := make([]TagID, member.NumTags())
	for t := 0; t < member.NumTags(); t++ {
		remap[t] = nf.internTag(member.TagName(TagID(t)))
	}
	for j := 0; j < n; j++ {
		id := NodeID(j)
		parent := NodeID(0) // member root hangs off the synthetic root
		if p := member.parent[id]; p != InvalidNode {
			parent = p + nodeOff
		}
		t := remap[member.tag[id]]
		nf.start = append(nf.start, member.start[id]+posOff)
		nf.end = append(nf.end, member.end[id]+posOff)
		nf.level = append(nf.level, member.level[id]+1)
		nf.tag = append(nf.tag, t)
		nf.parent = append(nf.parent, parent)
		nf.value = append(nf.value, member.value[id])
		nf.byTag[t] = append(nf.byTag[t], id+nodeOff)
	}
	nf.maxPos = posOff + member.MaxPos()

	is := member.InternStats()
	nf.intern = intern.Stats{
		Hits:       f.intern.Hits + is.Hits,
		Misses:     f.intern.Misses + is.Misses,
		Strings:    f.intern.Strings + is.Strings,
		BytesSaved: f.intern.BytesSaved + is.BytesSaved,
	}
	return nf, span, nil
}
