package histogram

import (
	"math"
	"testing"

	"sjos/internal/pattern"
	"sjos/internal/xmltree"
)

func buildDoc(t *testing.T, build func(b *xmltree.Builder)) *xmltree.Document {
	t.Helper()
	b := xmltree.NewBuilder()
	build(b)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// twoParts builds two small documents with overlapping but distinct tag
// sets — "b" only in the first, "c" only in the second, "a" in both.
func twoParts(t *testing.T) (*Stats, *Stats) {
	t.Helper()
	d1 := buildDoc(t, func(b *xmltree.Builder) {
		b.Open("a", "")
		b.Open("b", "1")
		b.Close()
		b.Open("b", "2")
		b.Close()
		b.Close()
	})
	d2 := buildDoc(t, func(b *xmltree.Builder) {
		b.Open("a", "")
		b.Open("c", "x")
		b.Close()
		b.Open("a", "3")
		b.Close()
		b.Close()
	})
	return Build(d1, 8), Build(d2, 8)
}

func TestMultiTagCounts(t *testing.T) {
	s1, s2 := twoParts(t)
	m := Merge([]*Stats{s1, s2})
	if m.Parts() != 2 {
		t.Fatalf("Parts() = %d, want 2", m.Parts())
	}
	for _, tc := range []struct {
		name string
		want float64
	}{{"a", 3}, {"b", 2}, {"c", 1}} {
		tag, ok := m.Lookup(tc.name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", tc.name)
		}
		if got := m.TagCount(tag); got != tc.want {
			t.Errorf("TagCount(%q) = %g, want %g", tc.name, got, tc.want)
		}
	}
	if _, ok := m.Lookup("absent"); ok {
		t.Error("Lookup of absent tag must fail")
	}
}

// TestMultiJoinIsPerPartSum: joins never cross parts, so the merged join
// estimate must be the sum of per-part estimates with the union tags mapped
// back to each part's local IDs.
func TestMultiJoinIsPerPartSum(t *testing.T) {
	s1, s2 := twoParts(t)
	m := Merge([]*Stats{s1, s2})
	ua, _ := m.Lookup("a")
	ub, _ := m.Lookup("b")

	want := 0.0
	for _, p := range []*Stats{s1, s2} {
		la, okA := p.Lookup("a")
		lb, okB := p.Lookup("b")
		if okA && okB {
			want += p.EstimateJoin(la, lb, pattern.Descendant)
		}
	}
	if got := m.EstimateJoin(ua, ub, pattern.Descendant); math.Abs(got-want) > 1e-9 {
		t.Errorf("EstimateJoin = %g, want per-part sum %g", got, want)
	}
	// "b" lives only in part 1, so the a//b estimate must equal part 1's.
	if got, want := m.EstimateJoin(ua, ub, pattern.Descendant), want; got != want {
		t.Errorf("single-part tag: merged estimate %g != part estimate %g", got, want)
	}
	// Selectivity divides the summed joins by the corpus-wide product.
	na, nb := m.TagCount(ua), m.TagCount(ub)
	if got, want := m.Selectivity(ua, ub, pattern.Descendant), want/(na*nb); math.Abs(got-want) > 1e-12 {
		t.Errorf("Selectivity = %g, want %g", got, want)
	}
}

func TestMultiDisjointTagsNeverJoin(t *testing.T) {
	s1, s2 := twoParts(t)
	m := Merge([]*Stats{s1, s2})
	ub, _ := m.Lookup("b") // only part 1
	uc, _ := m.Lookup("c") // only part 2
	if got := m.EstimateJoin(ub, uc, pattern.Descendant); got != 0 {
		t.Errorf("tags from different parts must never join, got %g", got)
	}
	if got := m.Selectivity(ub, uc, pattern.Descendant); got != 0 {
		t.Errorf("selectivity across parts must be 0, got %g", got)
	}
}

// TestMultiPredicateWeighting: the merged predicate selectivity is the
// population-weighted average of the per-part selectivities.
func TestMultiPredicateWeighting(t *testing.T) {
	s1, s2 := twoParts(t)
	m := Merge([]*Stats{s1, s2})
	ua, _ := m.Lookup("a")
	la1, _ := s1.Lookup("a")
	la2, _ := s2.Lookup("a")
	n1, n2 := s1.TagCount(la1), s2.TagCount(la2)
	p1 := s1.PredicateSelectivity(la1, pattern.CmpEq, "3")
	p2 := s2.PredicateSelectivity(la2, pattern.CmpEq, "3")
	want := (n1*p1 + n2*p2) / (n1 + n2)
	if got := m.PredicateSelectivity(ua, pattern.CmpEq, "3"); math.Abs(got-want) > 1e-12 {
		t.Errorf("PredicateSelectivity = %g, want weighted %g", got, want)
	}
	if got := m.PredicateSelectivity(ua, pattern.CmpNone, ""); got != 1 {
		t.Errorf("CmpNone selectivity = %g, want 1", got)
	}
}

func TestMultiDeterministicTagIDs(t *testing.T) {
	s1, s2 := twoParts(t)
	a := Merge([]*Stats{s1, s2})
	b := Merge([]*Stats{s1, s2})
	for _, name := range []string{"a", "b", "c"} {
		ta, _ := a.Lookup(name)
		tb, _ := b.Lookup(name)
		if ta != tb {
			t.Fatalf("union TagID for %q differs across Merge calls: %d vs %d", name, ta, tb)
		}
	}
}

// TestMergeSkipsNilParts: a nil part (a shard whose stats snapshot was
// momentarily a merged view during a concurrent rebuild) must contribute
// nothing — the old code dereferenced it and panicked.
func TestMergeSkipsNilParts(t *testing.T) {
	s1, s2 := twoParts(t)
	m := Merge([]*Stats{s1, nil, s2, nil})
	if m.Parts() != 2 {
		t.Fatalf("Parts() = %d, want 2 (nil parts skipped)", m.Parts())
	}
	ref := Merge([]*Stats{s1, s2})
	for _, name := range []string{"a", "b", "c"} {
		gt, ok := m.Lookup(name)
		rt, rok := m.Lookup(name)
		if !ok || !rok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		if got, want := m.TagCount(gt), ref.TagCount(rt); got != want {
			t.Errorf("TagCount(%q) = %g, want %g", name, got, want)
		}
	}
	if allNil := Merge([]*Stats{nil, nil}); allNil.Parts() != 0 {
		t.Fatalf("all-nil merge Parts() = %d, want 0", allNil.Parts())
	}
}
