package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"sjos"
)

// contentQueries are the predicate-pushdown workload: selective value
// predicates over the DBLP-like data set, one exercising the numeric-range
// directory (year is all-numeric, uniform over 33 values) and one the
// exact-match postings (booktitle has ~300 distinct values).
var contentQueries = []struct {
	ID     string
	Source string
}{
	{"range/year", `//article[year < 1975]/title`},
	{"eq/booktitle", `//inproceedings[booktitle = "conf-7"]/author`},
}

// ContentBenchRow compares one (query, fold) cell executed through
// value-index probes against the scan+filter escape hatch (NoValueIndex).
type ContentBenchRow struct {
	Query   string
	Fold    int
	Probe   time.Duration // best execution with value-index probes
	Scan    time.Duration // best execution with NoValueIndex (scan+filter)
	Speedup float64
	Matches int
	Probes  int // value-index probes opened on the probe lane
	// ScannedProbe / ScannedScan are the tuples each lane's leaves
	// produced — the work the pushdown avoids.
	ScannedProbe int
	ScannedScan  int
}

// ContentBench measures value-index predicate pushdown against scan+filter
// on selective-predicate queries over the DBLP data set, across folding
// factors. Per cell both lanes optimize and execute independently (the
// plans differ: ValueIndexScan vs IndexScan leaves); their match counts
// must agree, a divergence is an error.
func ContentBench(m sjos.Method, folds []int) ([]ContentBenchRow, error) {
	var rows []ContentBenchRow
	for _, q := range contentQueries {
		pat, err := sjos.ParsePattern(q.Source)
		if err != nil {
			return nil, err
		}
		for _, fold := range folds {
			db, err := Dataset("dblp", fold)
			if err != nil {
				return nil, err
			}
			row := ContentBenchRow{Query: q.ID, Fold: fold, Matches: -1}
			lane := func(noVidx bool) (time.Duration, error) {
				best := time.Duration(1<<63 - 1)
				for i := 0; i < evalRepeat; i++ {
					r, err := db.QueryPatternContext(context.Background(), pat,
						sjos.QueryOptions{ExecOptions: sjos.ExecOptions{Method: m, NoValueIndex: noVidx}})
					if err != nil {
						return 0, err
					}
					// Time only the execution phase: after the first round the
					// plan cache absorbs the optimize phase anyway, and the
					// pushdown's effect is on execution.
					if r.ExecuteTime < best {
						best = r.ExecuteTime
					}
					if row.Matches == -1 {
						row.Matches = len(r.Matches)
					} else if len(r.Matches) != row.Matches {
						return 0, fmt.Errorf("%s x%d: novidx=%v found %d matches, other lane %d",
							q.ID, fold, noVidx, len(r.Matches), row.Matches)
					}
					if noVidx {
						row.ScannedScan = r.Exec.ScannedTuples
					} else {
						row.Probes = r.Exec.ValueProbes
						row.ScannedProbe = r.Exec.ScannedTuples
					}
				}
				return best, nil
			}
			if row.Probe, err = lane(false); err != nil {
				return nil, err
			}
			if row.Scan, err = lane(true); err != nil {
				return nil, err
			}
			if row.Probe > 0 {
				row.Speedup = float64(row.Scan) / float64(row.Probe)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderContentBench formats the pushdown comparison as a table, followed
// by the store's compression footprint for the largest fold measured.
func RenderContentBench(rows []ContentBenchRow, m sjos.Method) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Value-index probes vs scan+filter (dblp, %s)\n", m)
	fmt.Fprintf(&sb, "%-14s %-6s %12s %12s %9s %9s %7s %10s %10s\n",
		"Query", "Fold", "probe", "scan", "speedup", "matches", "probes", "scanned", "filtered")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s x%-5d %12v %12v %8.2fx %9d %7d %10d %10d\n",
			r.Query, r.Fold, r.Probe, r.Scan, r.Speedup, r.Matches, r.Probes,
			r.ScannedProbe, r.ScannedScan)
	}
	if len(rows) > 0 {
		maxFold := 0
		for _, r := range rows {
			if r.Fold > maxFold {
				maxFold = r.Fold
			}
		}
		if db, err := Dataset("dblp", maxFold); err == nil {
			cs := db.ContentStats()
			ratio := 0.0
			if cs.RawPostingsBytes > 0 {
				ratio = float64(cs.PostingsBytes) / float64(cs.RawPostingsBytes)
			}
			fmt.Fprintf(&sb, "postings x%d: %d bytes encoded / %d raw (%.0f%%), %d value runs, interning saved %d bytes\n",
				maxFold, cs.PostingsBytes, cs.RawPostingsBytes, 100*ratio,
				cs.ValueRuns, cs.Intern.BytesSaved)
		}
	}
	return sb.String()
}
