package plancache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(fp string) Key { return Key{Fingerprint: fp, Method: 1} }

func TestGetPutLRU(t *testing.T) {
	c := New[int](2)
	c.Put(key("a"), 1)
	c.Put(key("b"), 2)
	if v, ok := c.Get(key("a")); !ok || v != 1 {
		t.Fatalf("a: got %d,%v", v, ok)
	}
	c.Put(key("c"), 3) // evicts b (a was refreshed by the Get above)
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a should have survived")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestKeyFieldsDistinguish(t *testing.T) {
	c := New[int](8)
	base := Key{Fingerprint: "fp", Method: 1, Te: 0, StatsVersion: 0}
	c.Put(base, 1)
	for i, k := range []Key{
		{Fingerprint: "fp2", Method: 1},
		{Fingerprint: "fp", Method: 2},
		{Fingerprint: "fp", Method: 1, Te: 3},
		{Fingerprint: "fp", Method: 1, StatsVersion: 1},
	} {
		if _, ok := c.Get(k); ok {
			t.Errorf("variant %d should miss", i)
		}
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	c := New[int](8)
	var computes atomic.Int32
	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once

	const n = 8
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute(context.Background(), key("q"), func() (int, error) {
				once.Do(func() { close(entered) })
				computes.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	<-entered // the leader is inside compute; everyone else must coalesce
	// Each waiter increments Coalesced before blocking on the flight, so
	// polling the counter deterministically waits until all n-1 waiters
	// are parked; only then may the leader finish.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced != n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never coalesced: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("goroutine %d got %d", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (stats %+v)", st.Misses, st)
	}
	if st.Coalesced != n-1 {
		t.Fatalf("coalesced = %d, want %d (stats %+v)", st.Coalesced, n-1, st)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	c := New[int](8)
	boom := errors.New("boom")
	_, _, err := c.GetOrCompute(context.Background(), key("q"), func() (int, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result must not be cached")
	}
	v, _, err := c.GetOrCompute(context.Background(), key("q"), func() (int, error) {
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("retry after error: %d, %v", v, err)
	}
}

func TestWaiterRetriesAfterLeaderCancelled(t *testing.T) {
	c := New[int](8)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inCompute := make(chan struct{})
	var second atomic.Int32

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // leader: its own context is cancelled mid-compute
		defer wg.Done()
		_, _, err := c.GetOrCompute(leaderCtx, key("q"), func() (int, error) {
			close(inCompute)
			<-leaderCtx.Done()
			return 0, leaderCtx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v", err)
		}
	}()
	go func() { // waiter with a live context: must retry and succeed
		defer wg.Done()
		<-inCompute
		v, _, err := c.GetOrCompute(context.Background(), key("q"), func() (int, error) {
			second.Add(1)
			return 9, nil
		})
		if err != nil || v != 9 {
			t.Errorf("waiter: %d, %v", v, err)
		}
	}()
	<-inCompute
	time.Sleep(5 * time.Millisecond) // let the waiter block on the flight
	cancelLeader()
	wg.Wait()
	if second.Load() == 0 {
		// The waiter may have become the leader itself or joined a newer
		// flight; either way its compute must have run, since the cache
		// held no value.
		t.Fatal("waiter never recomputed after leader cancellation")
	}
}

func TestWaiterContextCancelledWhileWaiting(t *testing.T) {
	c := New[int](8)
	inCompute := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.GetOrCompute(context.Background(), key("q"), func() (int, error) {
			close(inCompute)
			<-release
			return 1, nil
		})
	}()
	<-inCompute
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, key("q"), func() (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestClear(t *testing.T) {
	c := New[int](8)
	for i := 0; i < 5; i++ {
		c.Put(key(fmt.Sprintf("k%d", i)), i)
	}
	if n := c.Clear(); n != 5 {
		t.Fatalf("Clear removed %d, want 5", n)
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty after Clear")
	}
	if st := c.Stats(); st.Invalidations != 5 {
		t.Fatalf("invalidations = %d", st.Invalidations)
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	c := New[int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("k%d", i%24))
				switch i % 5 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					c.GetOrCompute(context.Background(), k, func() (int, error) { return i, nil })
				case 3:
					c.Stats()
				case 4:
					if i%50 == 4 {
						c.Clear()
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
