package core

import (
	"context"
	"errors"
	"sort"

	"sjos/internal/cost"
	"sjos/internal/pattern"
	"sjos/internal/plan"
)

// ctxCheckInterval is how many status expansions a search performs between
// context polls. Cancellation latency is therefore bounded by the cost of
// expanding that many statuses — microseconds — while the poll itself stays
// off the per-candidate hot path.
const ctxCheckInterval = 64

// errNoPlan is returned if a search finds no complete plan; this cannot
// happen for well-formed patterns (Theorem 3.1 guarantees at least the
// fully-pipelined plans exist) and indicates an internal inconsistency.
var errNoPlan = errors.New("core: search completed without finding a plan")

// singleNode handles the degenerate one-node pattern shared by all
// algorithms: the plan is a bare index scan.
func (sp *space) singleNode(name string) *Result {
	leaf := plan.NewIndexScan(0)
	leaf.ValueIndex = sp.leafProbe[0]
	leaf.EstCard = sp.est.NodeCard(0)
	leaf.EstCost = sp.scanCost
	return &Result{Plan: leaf, Cost: sp.scanCost, Algorithm: name}
}

// DP optimizes pat with the exhaustive dynamic programming algorithm of
// §3.1: statuses are developed strictly level by level; every possible move
// from every status is considered, and for each distinct status only the
// cheapest way of reaching it is retained.
func DP(pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	return dp(context.Background(), pat, est, model)
}

// dp is DP with cancellation: ctx is polled as the DP table expands (every
// ctxCheckInterval status expansions), so runaway searches on large
// patterns can be abandoned mid-level.
func dp(ctx context.Context, pat *pattern.Pattern, est *Estimator, model cost.Model) (*Result, error) {
	sp := newSpace(pat, est, model)
	if sp.numEdges == 0 {
		return sp.singleNode("DP"), nil
	}
	var counters Counters
	cur := map[uint64]*status{}
	s0 := sp.start()
	cur[s0.key()] = s0
	for lv := 0; lv < sp.numEdges; lv++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next := make(map[uint64]*status)
		for _, s := range sortedStatuses(cur) {
			counters.StatusesExpanded++
			if counters.StatusesExpanded%ctxCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			sp.expand(s, moveOpts{}, func(c candidate) {
				counters.PlansConsidered++
				k := uint64(c.edges) | uint64(c.orderMask)<<MaxPatternNodes
				old, ok := next[k]
				if ok && old.cost <= c.cost {
					return
				}
				if !ok {
					counters.StatusesGenerated++
				}
				next[k] = &status{
					edges:     c.edges,
					orderMask: c.orderMask,
					cost:      c.cost,
					level:     lv + 1,
					prev:      s,
					via:       c.mv,
					heapIdx:   -1,
				}
			})
		}
		cur = next
	}
	best := pickBestFinal(sp, cur)
	if best == nil {
		return nil, errNoPlan
	}
	return &Result{
		Plan:      sp.finalize(best),
		Cost:      best.cost,
		Algorithm: "DP",
		Counters:  counters,
	}, nil
}

// sortedStatuses returns the map's statuses in deterministic (key) order so
// equal-cost ties always break the same way.
func sortedStatuses(m map[uint64]*status) []*status {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]*status, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// pickBestFinal selects the cheapest final status from the last DP level.
// Final-move generation already folded in any sort required by the query's
// OrderBy, so costs are directly comparable.
func pickBestFinal(sp *space, finals map[uint64]*status) *status {
	var best *status
	for _, s := range sortedStatuses(finals) {
		if !sp.isFinal(s) {
			continue
		}
		if best == nil || s.cost < best.cost {
			best = s
		}
	}
	return best
}
