// Package experiments defines the paper's experimental workloads (§4) and
// the drivers that regenerate every table and figure of the evaluation:
//
//	Table 1  — optimization and plan-execution time for eight queries
//	           across the five algorithms, plus the random bad-plan baseline
//	Table 2  — optimization time and number of plans considered for
//	           Q.Pers.3.d across DP, DPP′, DPP, DPAP-EB, DPAP-LD, FP
//	Table 3  — plan execution time vs. data folding factor (×1 … ×500)
//	Figure 7 — DPAP-EB Te sweep at folding factor 100 (opt + eval time)
//	Figure 8 — the same sweep at folding factor 1
//
// It is consumed by cmd/xqbench and by the repository-root benchmarks. The
// package deliberately uses only the public sjos facade, so it doubles as
// an integration test of the published API.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"sjos"
)

// Query is one benchmark query, named as in the paper:
// Q.<DataSet>.<Num>.<PatternShape>.
type Query struct {
	ID      string
	Dataset string
	Source  string
}

// Queries returns the eight queries of Table 1. The paper's Figure 6 shows
// the pattern shapes only abstractly; these concrete queries reproduce the
// stated shapes (a = 3-node path, b = 4-node one-branch twig, c = 5-node
// two-branch twig, d = the 6-node Figure 1 pattern) on each data set's
// vocabulary. Q.Pers.3.d is the paper's running example query verbatim
// (Example 2.2).
func Queries() []Query {
	return []Query{
		{ID: "Q.Mbench.1.a", Dataset: "mbench", Source: "//eNest//eNest/eOccasional"},
		{ID: "Q.Mbench.2.b", Dataset: "mbench", Source: "//eNest[eOccasional]//eNest/aSixtyFour"},
		{ID: "Q.DBLP.1.b", Dataset: "dblp", Source: "//inproceedings[author]/cite/label"},
		{ID: "Q.DBLP.2.c", Dataset: "dblp", Source: "//article[author][cite/label]/title"},
		{ID: "Q.Pers.1.a", Dataset: "pers", Source: "//manager//employee/name"},
		{ID: "Q.Pers.2.c", Dataset: "pers", Source: "//manager[department/name]//employee/name"},
		{ID: "Q.Pers.3.d", Dataset: "pers", Source: "//manager[.//employee/name]//manager/department/name"},
		{ID: "Q.Pers.4.d", Dataset: "pers", Source: "//manager[.//manager//employee/name]/department/name"},
	}
}

// QueryByID returns the named query.
func QueryByID(id string) (Query, error) {
	for _, q := range Queries() {
		if q.ID == id {
			return q, nil
		}
	}
	return Query{}, fmt.Errorf("experiments: unknown query %q", id)
}

// PersQuery3 is the representative query used by Tables 2-3 and Figures
// 7-8.
const PersQuery3 = "Q.Pers.3.d"

// Methods returns the algorithms in the paper's column order for Table 1,
// extended with the repo's statistics-free Greedy orderer as a sixth
// column — every table and differential suite that iterates Methods()
// covers it automatically.
func Methods() []sjos.Method {
	return []sjos.Method{
		sjos.MethodDP, sjos.MethodDPP, sjos.MethodDPAPEB, sjos.MethodDPAPLD,
		sjos.MethodFP, sjos.MethodGreedy,
	}
}

// MethodsTable2 returns the algorithms in Table 2's column order
// (including the DPP′ ablation).
func MethodsTable2() []sjos.Method {
	return []sjos.Method{
		sjos.MethodDP, sjos.MethodDPPNoLookahead, sjos.MethodDPP,
		sjos.MethodDPAPEB, sjos.MethodDPAPLD, sjos.MethodFP,
	}
}

// datasets caches built databases per (name, fold): dataset construction
// (including histogram builds) dominates otherwise when many experiments
// run in one process.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*sjos.Database{}
)

// Dataset returns the named data set at the given folding factor, built at
// the base scales documented in DESIGN.md. Results are cached per process.
func Dataset(name string, fold int) (*sjos.Database, error) {
	if fold < 1 {
		fold = 1
	}
	key := fmt.Sprintf("%s/x%d", name, fold)
	dsMu.Lock()
	defer dsMu.Unlock()
	if db, ok := dsCache[key]; ok {
		return db, nil
	}
	db, err := sjos.GenerateDataset(name, 1, fold, nil)
	if err != nil {
		return nil, err
	}
	dsCache[key] = db
	return db, nil
}

// DropCaches clears the dataset cache (used by memory-sensitive tests).
func DropCaches() {
	dsMu.Lock()
	defer dsMu.Unlock()
	dsCache = map[string]*sjos.Database{}
}

// timeIt measures f with best-of-n repetition (the standard defence
// against scheduler noise in microbenchmarks): it runs f n times and
// returns the minimum duration.
func timeIt(n int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Repetition counts for the measurement drivers: optimization is
// microseconds (repeat more), execution is milliseconds-to-seconds.
const (
	optRepeat  = 7
	evalRepeat = 3
)

// BadPlanSamples is how many random plans the bad-plan baseline draws; the
// worst is kept (§4.2.1 samples "randomly but not exhaustively").
const BadPlanSamples = 40

// badPlanSeed keeps the bad-plan baseline reproducible.
const badPlanSeed = 20030301 // ICDE 2003
