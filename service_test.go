package sjos

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestQueryContextCacheWarm: the second identical query is served from the
// plan cache with byte-identical matches.
func TestQueryContextCacheWarm(t *testing.T) {
	db := openDB(t)
	src := "//manager//employee/name"
	cold, err := db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CachedPlan {
		t.Fatal("first query cannot be a cache hit")
	}
	warm, err := db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CachedPlan {
		t.Fatal("second identical query must hit the plan cache")
	}
	if !reflect.DeepEqual(cold.Matches, warm.Matches) {
		t.Fatal("cached plan produced different matches")
	}
	if warm.PlanText != cold.PlanText || warm.EstCost != cold.EstCost {
		t.Fatalf("cached plan metadata diverged: %q vs %q", warm.PlanText, cold.PlanText)
	}
	cs := db.CacheStats()
	if cs.Misses != 1 || cs.Hits != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats: %+v", cs)
	}
}

// TestPlanCacheMethodsDistinct: different methods (and DPAP-EB bounds) get
// separate entries, while te=0 and te=NumEdges share one.
func TestPlanCacheMethodsDistinct(t *testing.T) {
	db := openDB(t)
	src := "//manager//employee/name"
	for _, m := range []Method{MethodDPP, MethodFP} {
		if _, err := db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: m}}); err != nil {
			t.Fatal(err)
		}
	}
	if cs := db.CacheStats(); cs.Misses != 2 || cs.Entries != 2 {
		t.Fatalf("methods must not share entries: %+v", cs)
	}
	pat := MustParsePattern(src)
	// te=0 defaults to NumEdges: the explicit equivalent must hit.
	if _, err := db.QueryPatternContext(context.Background(), pat, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPAPEB}}); err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryPatternContext(context.Background(), pat, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPAPEB, Te: pat.NumEdges()}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CachedPlan {
		t.Fatal("te=0 and te=NumEdges must share a cache entry")
	}
}

// TestPlanCacheRenumberingInvariance: two sources whose only difference is
// branch order produce differently numbered patterns of the same canonical
// shape — the second must be a cache hit, and its remapped plan must
// execute correctly against its own numbering.
func TestPlanCacheRenumberingInvariance(t *testing.T) {
	db := openDB(t)
	a := "//manager[.//employee/name][.//department/name]"
	b := "//manager[.//department/name][.//employee/name]"
	ra, err := db.QueryContext(context.Background(), a, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := db.QueryContext(context.Background(), b, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
	if err != nil {
		t.Fatal(err)
	}
	if !rb.CachedPlan {
		t.Fatal("structurally equivalent query must hit the cache")
	}
	if len(ra.Matches) != len(rb.Matches) {
		t.Fatalf("match counts diverge: %d vs %d", len(ra.Matches), len(rb.Matches))
	}
	// Same bindings, modulo the node renumbering: compare the manager
	// bindings (node 0 in both) as multisets via sorted order.
	for i := range ra.Matches {
		if ra.Matches[i][0] != rb.Matches[i][0] {
			t.Fatalf("match %d: manager binding %v vs %v", i, ra.Matches[i][0], rb.Matches[i][0])
		}
	}
	if cs := db.CacheStats(); cs.Misses != 1 || cs.Hits != 1 {
		t.Fatalf("cache stats: %+v", cs)
	}
}

// TestPlanCacheConcurrent: many goroutines issuing the same query must
// coalesce onto one optimizer run (exercises single-flight under -race).
func TestPlanCacheConcurrent(t *testing.T) {
	db := openDB(t)
	src := "//manager[.//employee/name]//department/name"
	const n = 16
	results := make([]*QueryResult, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			results[i], errs[i] = db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}})
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].Matches, results[0].Matches) {
			t.Fatalf("goroutine %d: divergent matches", i)
		}
	}
	cs := db.CacheStats()
	if cs.Misses != 1 {
		t.Fatalf("optimizer ran %d times for one query shape: %+v", cs.Misses, cs)
	}
	if cs.Hits+cs.Coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d: %+v", cs.Hits+cs.Coalesced, n-1, cs)
	}
}

// TestRebuildStatsInvalidates: rebuilding statistics empties the cache and
// forces re-optimization, while queries keep working.
func TestRebuildStatsInvalidates(t *testing.T) {
	db := openDB(t)
	src := "//manager//employee/name"
	if _, err := db.Query(src, MethodDPP); err != nil {
		t.Fatal(err)
	}
	if cs := db.CacheStats(); cs.Entries != 1 {
		t.Fatalf("expected one cached entry: %+v", cs)
	}
	db.RebuildStats()
	cs := db.CacheStats()
	if cs.Entries != 0 || cs.Invalidations != 1 {
		t.Fatalf("rebuild must clear the cache: %+v", cs)
	}
	res, err := db.Query(src, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if res.CachedPlan {
		t.Fatal("post-rebuild query must re-optimize")
	}
	if db.CacheStats().Misses != 2 {
		t.Fatalf("stats: %+v", db.CacheStats())
	}
}

// TestNoCacheBypass: NoCache neither reads nor populates the cache.
func TestNoCacheBypass(t *testing.T) {
	db := openDB(t)
	src := "//manager//employee/name"
	for i := 0; i < 2; i++ {
		res, err := db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP, NoCache: true}})
		if err != nil {
			t.Fatal(err)
		}
		if res.CachedPlan {
			t.Fatal("NoCache result marked cached")
		}
	}
	cs := db.CacheStats()
	if cs.Entries != 0 || cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("NoCache touched the cache: %+v", cs)
	}
}

// TestSharedCacheAcrossViews: WithParallelism views share one cache.
func TestSharedCacheAcrossViews(t *testing.T) {
	db := openDB(t)
	src := "//manager//employee/name"
	par := db.WithParallelism(2)
	if _, err := par.Query(src, MethodDPP); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(src, MethodDPP)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CachedPlan {
		t.Fatal("serial view must hit the plan cached by the parallel view")
	}
	if cs := db.CacheStats(); cs.Misses != 1 || cs.Hits != 1 {
		t.Fatalf("views don't share the cache: %+v", cs)
	}
}

// TestQueryContextCancelled: a pre-cancelled context aborts the query in
// both serial and parallel modes, before any optimizer or executor work.
func TestQueryContextCancelled(t *testing.T) {
	db := openDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, d := range map[string]*Database{"serial": db, "parallel": db.WithParallelism(2)} {
		if _, err := d.QueryContext(ctx, "//manager//employee/name", QueryOptions{ExecOptions: ExecOptions{Method: MethodDPP}}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s query: err = %v, want context.Canceled", name, err)
		}
		if _, err := d.OptimizeContext(ctx, MustParsePattern("//manager//employee"), MethodDP, 0); !errors.Is(err, context.Canceled) {
			t.Errorf("%s optimize: err = %v, want context.Canceled", name, err)
		}
		pat := MustParsePattern("//manager//employee")
		plan, err := d.Optimize(pat, MethodDPP, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(ctx, pat, plan.Plan, RunOptions{}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s run: err = %v, want context.Canceled", name, err)
		}
	}
}

// fuelCtx has a non-nil Done channel (that never closes) and an Err that
// flips to Canceled after a fixed number of polls — a deterministic way to
// cancel "mid-execution" at exactly the Nth interrupt poll.
type fuelCtx struct {
	context.Context
	fuel int
}

func (c *fuelCtx) Err() error {
	if c.fuel > 0 {
		c.fuel--
		return nil
	}
	return context.Canceled
}

// TestRunCancelMidExecution: the serial executor's interrupt polls abort an
// in-progress Drain; the error surfaces from Run.
func TestRunCancelMidExecution(t *testing.T) {
	db, err := GenerateDataset("pers", 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat := MustParsePattern("//manager//employee/name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, cancel := context.WithCancel(context.Background())
	defer cancel() // keeps Done non-nil without ever closing it mid-test
	ctx := &fuelCtx{Context: base, fuel: 3}
	if _, err := db.Run(ctx, pat, res.Plan, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunCancelParallelPrompt: cancelling a parallel Run mid-flight makes
// it return promptly with the context error.
func TestRunCancelParallelPrompt(t *testing.T) {
	db, err := GenerateDataset("pers", 4, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	pat := MustParsePattern("//manager//manager//employee/name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(500 * time.Microsecond)
		cancel()
	}()
	start := time.Now()
	_, rerr := db.Run(ctx, pat, res.Plan, RunOptions{Workers: 4})
	elapsed := time.Since(start)
	if rerr == nil {
		t.Skip("execution finished before the cancel landed")
	}
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", rerr)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %v to return", elapsed)
	}
}

// TestRunOptionsModes: Run's option combinations agree with each other.
func TestRunOptionsModes(t *testing.T) {
	db := openDB(t)
	pat := MustParsePattern("//manager//employee/name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := db.Run(context.Background(), pat, res.Plan, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Count != len(full.Matches) || full.Count == 0 {
		t.Fatalf("full run: %+v", full)
	}
	cnt, err := db.Run(context.Background(), pat, res.Plan, RunOptions{CountOnly: true})
	if err != nil || cnt.Count != full.Count || cnt.Matches != nil {
		t.Fatalf("count-only: %+v, %v", cnt, err)
	}
	lim, err := db.Run(context.Background(), pat, res.Plan, RunOptions{ExecOptions: ExecOptions{Limit: 2}})
	if err != nil || len(lim.Matches) != 2 || !reflect.DeepEqual(lim.Matches, full.Matches[:2]) {
		t.Fatalf("limit: %+v, %v", lim, err)
	}
	par, err := db.Run(context.Background(), pat, res.Plan, RunOptions{Workers: 3})
	if err != nil || !reflect.DeepEqual(par.Matches, full.Matches) {
		t.Fatalf("parallel run diverges: %v", err)
	}
	pcnt, err := db.Run(context.Background(), pat, res.Plan, RunOptions{Workers: -1, CountOnly: true})
	if err != nil || pcnt.Count != full.Count {
		t.Fatalf("parallel count: %+v, %v", pcnt, err)
	}
	plim, err := db.Run(context.Background(), pat, res.Plan, RunOptions{ExecOptions: ExecOptions{Limit: 2}, Workers: 2})
	if err != nil || !reflect.DeepEqual(plim.Matches, full.Matches[:2]) {
		t.Fatalf("parallel limit: %+v, %v", plim, err)
	}
}

// TestWarmCacheOptimizeSpeedup: the acceptance criterion — a warm-cache
// optimize phase at least 10x faster than a cold one, with byte-identical
// matches. DP on a 7-node pattern makes the cold phase comfortably
// measurable.
func TestWarmCacheOptimizeSpeedup(t *testing.T) {
	db := openDB(t)
	src := "//manager[.//employee/name][.//department/name]//employee/name"
	opts := QueryOptions{ExecOptions: ExecOptions{Method: MethodDP}}

	cold := time.Duration(1<<63 - 1)
	var coldRes *QueryResult
	for i := 0; i < 3; i++ {
		r, err := db.QueryContext(context.Background(), src, QueryOptions{ExecOptions: ExecOptions{Method: MethodDP, NoCache: true}})
		if err != nil {
			t.Fatal(err)
		}
		if r.OptimizeTime < cold {
			cold, coldRes = r.OptimizeTime, r
		}
	}
	if _, err := db.QueryContext(context.Background(), src, opts); err != nil {
		t.Fatal(err) // populate the cache
	}
	warm := time.Duration(1<<63 - 1)
	var warmRes *QueryResult
	for i := 0; i < 3; i++ {
		r, err := db.QueryContext(context.Background(), src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !r.CachedPlan {
			t.Fatal("warm query missed the cache")
		}
		if r.OptimizeTime < warm {
			warm, warmRes = r.OptimizeTime, r
		}
	}
	if !reflect.DeepEqual(coldRes.Matches, warmRes.Matches) {
		t.Fatal("warm matches differ from cold matches")
	}
	if cold < 50*time.Microsecond {
		t.Skipf("cold optimize too fast to compare reliably (%v)", cold)
	}
	if warm*10 > cold {
		t.Fatalf("warm optimize %v not 10x faster than cold %v", warm, cold)
	}
}
