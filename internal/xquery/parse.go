package xquery

import (
	"fmt"
	"strings"
	"unicode"

	"sjos/internal/pattern"
)

// parse builds the AST for the FLWOR subset. The grammar:
//
//	query    := "for" bind ("," bind)*
//	            ("where" cond ("and" cond)*)?
//	            ("order" "by" varpath)?
//	            "return" varpath ("," varpath)*
//	bind     := "$" name "in" varpath
//	varpath  := "$" name steps? | steps
//	steps    := (("/" | "//") name)+
//	cond     := varpath (op literal)?
//	op       := "=" | "!=" | "<" | "<=" | ">" | ">=" | "~"
//	literal  := '"' chars '"' | bareword
func parse(src string) (*ast, error) {
	p := &qparser{toks: lex(src)}
	return p.query()
}

// ---- lexer ----

type token struct {
	kind tokKind
	text string
	pos  int
}

type tokKind int

const (
	tokEOF  tokKind = iota
	tokWord         // identifiers and keywords
	tokVar          // $name
	tokSlash
	tokDSlash
	tokComma
	tokOp     // comparison operator
	tokString // quoted literal (text without quotes)
	tokNumber
)

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '$':
			j := i + 1
			for j < len(src) && isNameByte(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tokVar, text: src[i+1 : j], pos: i})
			i = j
		case c == '/':
			if i+1 < len(src) && src[i+1] == '/' {
				toks = append(toks, token{kind: tokDSlash, text: "//", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSlash, text: "/", pos: i})
				i++
			}
		case c == ',':
			toks = append(toks, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				j++
			}
			if j >= len(src) {
				toks = append(toks, token{kind: tokString, text: src[i+1:], pos: i})
				i = len(src)
			} else {
				toks = append(toks, token{kind: tokString, text: src[i+1 : j], pos: i})
				i = j + 1
			}
		case strings.ContainsRune("=!<>~", rune(c)):
			j := i + 1
			if j < len(src) && src[j] == '=' {
				j++
			}
			toks = append(toks, token{kind: tokOp, text: src[i:j], pos: i})
			i = j
		case unicode.IsDigit(rune(c)) || c == '-' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1])):
			j := i + 1
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], pos: i})
			i = j
		case isNameByte(c):
			j := i
			for j < len(src) && isNameByte(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tokWord, text: src[i:j], pos: i})
			i = j
		default:
			// Unknown byte: emit as a word so the parser reports it.
			toks = append(toks, token{kind: tokWord, text: string(c), pos: i})
			i++
		}
	}
	return append(toks, token{kind: tokEOF, pos: len(src)})
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '@' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// ---- parser ----

type qparser struct {
	toks []token
	i    int
}

func (p *qparser) peek() token { return p.toks[p.i] }
func (p *qparser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *qparser) word(s string) bool {
	if p.peek().kind == tokWord && p.peek().text == s {
		p.i++
		return true
	}
	return false
}

func (p *qparser) errf(format string, args ...any) error {
	return fmt.Errorf(format+" (at offset %d)", append(args, p.peek().pos)...)
}

func (p *qparser) query() (*ast, error) {
	a := &ast{}
	if !p.word("for") {
		return nil, p.errf("expected 'for'")
	}
	for {
		b, err := p.binding()
		if err != nil {
			return nil, err
		}
		a.bindings = append(a.bindings, *b)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if p.word("where") {
		for {
			c, err := p.condition()
			if err != nil {
				return nil, err
			}
			a.wheres = append(a.wheres, *c)
			if !p.word("and") {
				break
			}
		}
	}
	if p.word("order") {
		if !p.word("by") {
			return nil, p.errf("expected 'by' after 'order'")
		}
		vp, err := p.varPath()
		if err != nil {
			return nil, err
		}
		a.orderBy = vp
	}
	if !p.word("return") {
		return nil, p.errf("expected 'return'")
	}
	for {
		vp, err := p.varPath()
		if err != nil {
			return nil, err
		}
		a.returns = append(a.returns, *vp)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after query", p.peek().text)
	}
	return a, nil
}

func (p *qparser) binding() (*binding, error) {
	if p.peek().kind != tokVar {
		return nil, p.errf("expected variable")
	}
	name := p.next().text
	if name == "" {
		return nil, p.errf("empty variable name")
	}
	if !p.word("in") {
		return nil, p.errf("expected 'in'")
	}
	vp, err := p.varPath()
	if err != nil {
		return nil, err
	}
	return &binding{name: name, path: *vp}, nil
}

func (p *qparser) condition() (*condition, error) {
	vp, err := p.varPath()
	if err != nil {
		return nil, err
	}
	c := &condition{path: *vp, op: pattern.CmpNone}
	if p.peek().kind == tokOp {
		opText := p.next().text
		op, err := parseOp(opText)
		if err != nil {
			return nil, err
		}
		lit := p.next()
		if lit.kind != tokString && lit.kind != tokNumber && lit.kind != tokWord {
			return nil, p.errf("expected literal after %q", opText)
		}
		c.op, c.value = op, lit.text
	}
	return c, nil
}

func parseOp(s string) (pattern.CmpOp, error) {
	switch s {
	case "=", "==":
		return pattern.CmpEq, nil
	case "!=":
		return pattern.CmpNe, nil
	case "<":
		return pattern.CmpLt, nil
	case "<=":
		return pattern.CmpLe, nil
	case ">":
		return pattern.CmpGt, nil
	case ">=":
		return pattern.CmpGe, nil
	case "~":
		return pattern.CmpContains, nil
	}
	return pattern.CmpNone, fmt.Errorf("xquery: unknown operator %q", s)
}

func (p *qparser) varPath() (*varPath, error) {
	vp := &varPath{}
	switch p.peek().kind {
	case tokVar:
		vp.root = p.next().text
	case tokSlash, tokDSlash:
		// absolute
	default:
		return nil, p.errf("expected variable or path")
	}
	for {
		var ax pattern.Axis
		switch p.peek().kind {
		case tokSlash:
			ax = pattern.Child
		case tokDSlash:
			ax = pattern.Descendant
		default:
			if vp.root == "" && len(vp.steps) == 0 {
				return nil, p.errf("expected path step")
			}
			return vp, nil
		}
		p.next()
		if p.peek().kind != tokWord {
			return nil, p.errf("expected element name after %q", ax.String())
		}
		vp.steps = append(vp.steps, step{axis: ax, tag: p.next().text})
	}
}
