// Package replica tracks the health of shard replicas for routing
// decisions. Each replica of a shard's store gets one Tracker: consecutive
// read failures walk it Healthy → Suspect → Probation, any success snaps it
// back to Healthy, and a degraded replica is half-open — at most one probe
// request per ProbeInterval is let through to discover recovery (or, for a
// suspect replica, to keep its state machine decaying toward probation),
// everything else routes around it.
//
// The package also provides a lock-free latency Tracker the corpus uses to
// derive its hedged-read delay from observed shard latencies (percentile
// based, so the hedge fires only when a request is already slower than its
// peers).
package replica

import (
	"sync"
	"time"
)

// State is a replica's routing condition.
type State int32

const (
	// Healthy replicas take traffic in rotation.
	Healthy State = iota
	// Suspect replicas (a few consecutive failures) are deprioritised:
	// they serve only as failover or hedge targets behind healthy ones.
	Suspect
	// Probation replicas (sustained consecutive failures) are routed
	// around entirely, except for one half-open probe per ProbeInterval.
	Probation
)

// String renders the state for health endpoints and logs.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Probation:
		return "probation"
	}
	return "unknown"
}

// Config shapes the state machine. The zero value selects the defaults.
type Config struct {
	// SuspectAfter is the consecutive-failure count that moves a healthy
	// replica to Suspect (default 2).
	SuspectAfter int
	// ProbationAfter is the consecutive-failure count that moves a suspect
	// replica to Probation (default 4). Must be >= SuspectAfter.
	ProbationAfter int
	// ProbeInterval spaces the half-open probes of a probation replica
	// (default 500ms).
	ProbeInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.ProbationAfter <= 0 {
		c.ProbationAfter = 4
	}
	if c.ProbationAfter < c.SuspectAfter {
		c.ProbationAfter = c.SuspectAfter
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	return c
}

// Tracker is one replica's health state machine. All methods are safe for
// concurrent use.
type Tracker struct {
	cfg Config

	mu          sync.Mutex
	state       State
	consecFails int
	lastProbe   time.Time
	failures    uint64
	successes   uint64
}

// NewTracker returns a Healthy tracker under the given config.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults()}
}

// State returns the replica's current routing state.
func (t *Tracker) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// RecordSuccess notes one successful request: the consecutive-failure run
// ends and the replica returns to Healthy (the half-open probe succeeding is
// exactly this path).
func (t *Tracker) RecordSuccess() {
	t.mu.Lock()
	t.successes++
	t.consecFails = 0
	t.state = Healthy
	t.mu.Unlock()
}

// RecordFailure notes one failed request (an I/O error, a checksum failure
// that survived the retry loop, or a recovered panic) and applies the
// Healthy → Suspect → Probation transitions.
func (t *Tracker) RecordFailure() {
	t.mu.Lock()
	t.failures++
	t.consecFails++
	switch {
	case t.consecFails >= t.cfg.ProbationAfter:
		t.state = Probation
	case t.consecFails >= t.cfg.SuspectAfter:
		t.state = Suspect
	}
	t.mu.Unlock()
}

// AllowProbe reports whether a degraded (suspect or probation) replica's
// half-open probe is due at now, and if so claims it: at most one caller per
// ProbeInterval gets true, so exactly one request is let through to test
// recovery — without it a degraded replica behind a healthy sibling would
// never see traffic again, so it could neither decay to probation nor heal.
// For Healthy replicas it returns false — they are routed normally.
func (t *Tracker) AllowProbe(now time.Time) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state == Healthy {
		return false
	}
	if !t.lastProbe.IsZero() && now.Sub(t.lastProbe) < t.cfg.ProbeInterval {
		return false
	}
	t.lastProbe = now
	return true
}

// Snapshot is a point-in-time copy of a tracker's counters.
type Snapshot struct {
	State               State
	ConsecutiveFailures int
	Failures, Successes uint64
}

// Snapshot returns the tracker's current state and counters.
func (t *Tracker) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Snapshot{
		State:               t.state,
		ConsecutiveFailures: t.consecFails,
		Failures:            t.failures,
		Successes:           t.successes,
	}
}
