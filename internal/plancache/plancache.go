// Package plancache is a bounded, concurrency-safe LRU cache for optimized
// query plans with single-flight deduplication of concurrent misses.
//
// The motivation is the paper's own premise: optimization is expensive
// enough to be worth doing well (its Table 2 counts plans considered; DP
// blows up past 8 pattern nodes), while production workloads re-issue a
// small set of structurally recurring query shapes. Keying the cache by the
// canonical pattern fingerprint (internal/pattern), the chosen method, the
// DPAP-EB bound and the statistics version makes one optimizer run serve
// every structurally equivalent query until the statistics change.
//
// Single-flight semantics: when N goroutines miss on the same key
// simultaneously, exactly one (the leader) runs the compute function; the
// others wait for its result. A leader failure is never cached. If the
// leader fails because *its own* context was cancelled, waiting callers
// whose contexts are still live retry the computation rather than
// inheriting a cancellation that was not theirs.
package plancache

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Key identifies one cached plan. Method and Te are opaque to the cache
// (the facade passes core.Method and the effective DPAP-EB bound);
// StatsVersion changes whenever the statistics are rebuilt, so stale plans
// are unreachable immediately even before they fall off the LRU list.
type Key struct {
	Fingerprint  string
	Method       int
	Te           int
	StatsVersion uint64
	// NoVidx marks plans optimized with the value index disabled; they
	// must not be served to (or from) value-index-enabled calls, whose
	// leaves may differ.
	NoVidx bool
}

// Stats is a snapshot of the cache's behaviour counters.
type Stats struct {
	// Hits counts lookups served from the cache.
	Hits int64
	// Misses counts lookups that ran the compute function (the leader of
	// each single-flight group).
	Misses int64
	// Coalesced counts lookups that waited on another goroutine's
	// in-flight computation instead of running their own.
	Coalesced int64
	// Evictions counts entries dropped by the LRU bound; Invalidations
	// counts entries dropped by Clear.
	Evictions     int64
	Invalidations int64
	// Entries and Capacity describe the current occupancy.
	Entries  int
	Capacity int
}

// Cache is the LRU + single-flight cache. The zero value is not usable;
// construct with New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	inflight map[Key]*call[V]

	hits, misses, coalesced, evictions, invalidations int64
}

type lruEntry[V any] struct {
	key Key
	val V
}

// call is one in-flight computation; done is closed once val/err are set.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// DefaultCapacity bounds the cache when the caller passes 0.
const DefaultCapacity = 256

// New constructs a cache holding at most capacity entries (0 selects
// DefaultCapacity; capacity is clamped to at least 1).
func New[V any](capacity int) *Cache[V] {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
		inflight: make(map[Key]*call[V]),
	}
}

// Get returns the cached value for k, if present, marking it recently used.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts (or refreshes) a value without single-flight coordination.
func (c *Cache[V]) Put(k Key, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(k, v)
}

// put inserts under c.mu.
func (c *Cache[V]) put(k Key, v V) {
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry[V]).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&lruEntry[V]{key: k, val: v})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
		c.evictions++
	}
}

// GetOrCompute returns the value for k, computing it at most once across
// concurrent callers. The boolean reports whether the caller avoided the
// computation (a cache hit, or a wait coalesced onto another goroutine's
// computation). A compute error is returned uncached; ctx cancels the wait
// (and, for the leader, should cancel the computation itself — compute
// closures are expected to observe the same ctx).
func (c *Cache[V]) GetOrCompute(ctx context.Context, k Key, compute func() (V, error)) (V, bool, error) {
	var zero V
	for {
		c.mu.Lock()
		if el, ok := c.items[k]; ok {
			c.ll.MoveToFront(el)
			c.hits++
			v := el.Value.(*lruEntry[V]).val
			c.mu.Unlock()
			return v, true, nil
		}
		if cl, ok := c.inflight[k]; ok {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return zero, false, ctx.Err()
			}
			if cl.err == nil {
				return cl.val, true, nil
			}
			// The leader failed. If it failed only because its own
			// context died while ours is still live, try again (the
			// retry either becomes the new leader or joins a newer
			// flight); otherwise propagate the real failure.
			if ctx.Err() == nil && isContextErr(cl.err) {
				continue
			}
			return zero, false, cl.err
		}
		cl := &call[V]{done: make(chan struct{})}
		c.inflight[k] = cl
		c.misses++
		c.mu.Unlock()

		cl.val, cl.err = compute()
		c.mu.Lock()
		delete(c.inflight, k)
		if cl.err == nil {
			c.put(k, cl.val)
		}
		c.mu.Unlock()
		close(cl.done)
		if cl.err != nil {
			return zero, false, cl.err
		}
		return cl.val, false, nil
	}
}

// isContextErr reports whether err is a context cancellation or deadline.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Invalidate drops the entry for k, if cached, reporting whether an entry
// was removed (counted as an invalidation). In-flight computations under k
// are unaffected: they re-insert when they finish, exactly as with Clear.
// The adaptive feedback loop uses this to evict one mis-estimated plan
// without disturbing the rest of the cache.
func (c *Cache[V]) Invalidate(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, k)
	c.invalidations++
	return true
}

// Clear drops every cached entry (in-flight computations are unaffected;
// they re-insert under their own key when they finish). It returns the
// number of entries removed.
func (c *Cache[V]) Clear() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.items = make(map[Key]*list.Element)
	c.invalidations += int64(n)
	return n
}

// Len returns the current number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the behaviour counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Coalesced:     c.coalesced,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
		Capacity:      c.capacity,
	}
}
