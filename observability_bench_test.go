package sjos

import (
	"context"
	"testing"

	"sjos/internal/admission"
)

// BenchmarkObservabilityOverhead quantifies what the observability layer
// costs on the BenchmarkParallelExecute workload (Q.Pers.3.d, Pers ×100,
// count-only; EXPERIMENTS.md records the ratios):
//
//	raw       — the unmetered execution path (db.run), exactly what Run
//	            did before the observability layer existed
//	disabled  — db.Run with tracing off: the metrics registry's atomic
//	            counters, the panic-recovery defer and the (nil, no-op)
//	            admission check are the only additions (acceptance bar:
//	            <5% vs raw; with page checksums it must stay <3% over the
//	            seed's metered path)
//	admitted  — db.Run with an uncontended admission controller installed:
//	            adds one channel send/receive per query
//	traced    — db.Run with per-operator tracing on
//
// A white-box benchmark (package sjos) so the raw lane can bypass the
// metering wrapper and the admitted lane can install a controller.
func BenchmarkObservabilityOverhead(b *testing.B) {
	db, err := GenerateDataset("pers", 1, 100, nil)
	if err != nil {
		b.Fatal(err)
	}
	pat := MustParsePattern("//manager[.//employee/name]//manager/department/name")
	res, err := db.Optimize(pat, MethodDPP, 0)
	if err != nil {
		b.Fatal(err)
	}
	want, err := db.run(context.Background(), pat, res.Plan, RunOptions{CountOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		label string
		opts  RunOptions
		fn    func(context.Context, *Pattern, *Plan, RunOptions) (*RunResult, error)
		admit *admission.Controller
	}{
		{"raw", RunOptions{CountOnly: true}, db.run, nil},
		{"disabled", RunOptions{CountOnly: true}, db.Run, nil},
		{"admitted", RunOptions{CountOnly: true}, db.Run, admission.New(64, 64)},
		{"traced", RunOptions{ExecOptions: ExecOptions{Trace: true}, CountOnly: true}, db.Run, nil},
	} {
		b.Run(v.label, func(b *testing.B) {
			db.svc.admit = v.admit
			defer func() { db.svc.admit = nil }()
			for i := 0; i < b.N; i++ {
				rr, err := v.fn(context.Background(), pat, res.Plan, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				if rr.Count != want.Count {
					b.Fatalf("count %d, want %d", rr.Count, want.Count)
				}
			}
		})
	}
}
