package core

import (
	"fmt"

	"sjos/internal/cost"
	"sjos/internal/pattern"
)

// Method selects an optimization algorithm.
type Method int

// The optimization algorithms of the paper (§3), plus the DPP′ ablation.
const (
	MethodDP Method = iota
	MethodDPP
	MethodDPPNoLookahead
	MethodDPAPEB
	MethodDPAPLD
	MethodFP
)

// String names the method as in the paper.
func (m Method) String() string {
	switch m {
	case MethodDP:
		return "DP"
	case MethodDPP:
		return "DPP"
	case MethodDPPNoLookahead:
		return "DPP'"
	case MethodDPAPEB:
		return "DPAP-EB"
	case MethodDPAPLD:
		return "DPAP-LD"
	case MethodFP:
		return "FP"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all methods in the paper's presentation order.
func Methods() []Method {
	return []Method{MethodDP, MethodDPP, MethodDPAPEB, MethodDPAPLD, MethodFP}
}

// ParseMethod resolves a method name (as printed by String, case-exact).
func ParseMethod(s string) (Method, error) {
	for _, m := range []Method{MethodDP, MethodDPP, MethodDPPNoLookahead, MethodDPAPEB, MethodDPAPLD, MethodFP} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown method %q", s)
}

// Options tunes method-specific behaviour.
type Options struct {
	// Te is the DPAP-EB expansion bound. When 0, the bound defaults to
	// the number of edges in the pattern, which is the setting the
	// paper's Table 1 uses.
	Te int
}

// Optimize runs the selected algorithm and returns its chosen plan.
func Optimize(pat *pattern.Pattern, est *Estimator, model cost.Model, m Method, opts *Options) (*Result, error) {
	if !model.Valid() {
		return nil, fmt.Errorf("core: invalid cost model %+v", model)
	}
	switch m {
	case MethodDP:
		return DP(pat, est, model)
	case MethodDPP:
		return DPP(pat, est, model)
	case MethodDPPNoLookahead:
		return DPPNoLookahead(pat, est, model)
	case MethodDPAPEB:
		te := 0
		if opts != nil {
			te = opts.Te
		}
		if te == 0 {
			te = pat.NumEdges()
		}
		if te < 1 {
			te = 1
		}
		return DPAPEB(pat, est, model, te)
	case MethodDPAPLD:
		return DPAPLD(pat, est, model)
	case MethodFP:
		return FP(pat, est, model)
	default:
		return nil, fmt.Errorf("core: unknown method %d", int(m))
	}
}
